// The paper's closing vision (§2.2): "we envision a corporate social site
// where employees and customers can interact and share experiences and
// resources. A corporate site shares many features with CourseRank."
//
// This example rebuilds that scenario on the same substrates — custom
// schema, entity search with data clouds over *products* instead of
// courses, and a FlexRecs workflow recommending products — showing that
// nothing in the stack is course-specific.

#include <cstdio>

#include "core/data_cloud.h"
#include "core/flexrecs_engine.h"
#include "core/workflow_parser.h"
#include "query/sql_engine.h"
#include "search/inverted_index.h"
#include "search/searcher.h"
#include "storage/database.h"

using courserank::cloud::CloudBuilder;
using courserank::flexrecs::FlexRecsEngine;
using courserank::flexrecs::ParseWorkflow;
using courserank::query::ParamMap;
using courserank::query::SqlEngine;
using courserank::search::EntityDefinition;
using courserank::search::InvertedIndex;
using courserank::search::Searcher;
using courserank::storage::Database;
using courserank::storage::Value;

namespace {

int Fail(const courserank::Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

courserank::Status BuildCorporateWorld(Database& db) {
  SqlEngine sql(&db);
  const char* kSetup[] = {
      "CREATE TABLE Products (ProductID INT NOT NULL, Name TEXT NOT NULL, "
      "Description TEXT, Category TEXT NOT NULL, PRIMARY KEY (ProductID))",
      "CREATE TABLE People (PersonID INT NOT NULL, Name TEXT NOT NULL, "
      "Kind TEXT NOT NULL, PRIMARY KEY (PersonID))",
      "CREATE TABLE Reviews (PersonID INT NOT NULL, ProductID INT NOT NULL, "
      "Text TEXT NOT NULL, Stars DOUBLE NOT NULL, "
      "PRIMARY KEY (PersonID, ProductID))",

      "INSERT INTO Products VALUES "
      "(1, 'Meridian Laptop 14', 'thin aluminum laptop with all day "
      "battery', 'hardware'), "
      "(2, 'Meridian Laptop 16 Pro', 'workstation laptop for video and "
      "compile workloads', 'hardware'), "
      "(3, 'Drift Wireless Mouse', 'low latency wireless mouse', "
      "'accessories'), "
      "(4, 'Atlas Backup Service', 'cloud backup with hourly snapshots', "
      "'software'), "
      "(5, 'Atlas Sync Client', 'file sync client for the atlas cloud', "
      "'software'), "
      "(6, 'Field Notes App', 'offline note taking for site engineers', "
      "'software')",

      "INSERT INTO People VALUES (1, 'Ana', 'employee'), "
      "(2, 'Raj', 'customer'), (3, 'Mei', 'customer'), "
      "(4, 'Tom', 'employee')",

      "INSERT INTO Reviews VALUES "
      "(1, 1, 'battery life is outstanding for travel', 5.0), "
      "(1, 4, 'snapshots saved a client project twice', 5.0), "
      "(2, 1, 'keyboard feels great, battery solid', 4.0), "
      "(2, 3, 'latency is fine but battery drains fast', 3.0), "
      "(3, 2, 'compile times dropped by half', 5.0), "
      "(3, 4, 'restore flow confused me at first', 3.0), "
      "(4, 5, 'sync conflicts resolved cleanly', 4.0), "
      "(4, 6, 'works offline in the field, perfect', 5.0)",
  };
  for (const char* stmt : kSetup) {
    CR_RETURN_IF_ERROR(sql.Execute(stmt).status());
  }
  CR_RETURN_IF_ERROR(
      db.AddForeignKey("Reviews", "ProductID", "Products", "ProductID"));
  CR_RETURN_IF_ERROR(
      db.AddForeignKey("Reviews", "PersonID", "People", "PersonID"));
  return courserank::Status::OK();
}

}  // namespace

int main() {
  Database db;
  if (auto s = BuildCorporateWorld(db); !s.ok()) return Fail(s);

  // --- a "product" search entity spanning catalog + reviews --------------
  EntityDefinition def;
  def.name = "product";
  def.primary_table = "Products";
  def.key_column = "ProductID";
  def.display_column = "Name";
  def.fields = {
      {"name", 3.0, "Products", "Name", "ProductID"},
      {"description", 1.5, "Products", "Description", "ProductID"},
      {"reviews", 1.0, "Reviews", "Text", "ProductID"},
  };
  InvertedIndex index(def);
  if (auto s = index.Build(db); !s.ok()) return Fail(s);
  Searcher searcher(&index);

  std::printf("> search: battery\n");
  auto results = searcher.Search("battery");
  if (!results.ok()) return Fail(results.status());
  for (const auto& hit : results->hits) {
    std::printf("    %5.2f  %s\n", hit.score,
                index.doc(hit.doc).display.c_str());
  }
  CloudBuilder clouds(&index, {.min_doc_count = 1});
  std::printf("  cloud: %s\n\n",
              clouds.Build(*results).ToString().c_str());

  // --- FlexRecs over products --------------------------------------------
  FlexRecsEngine engine(&db);
  const char* kDsl = R"(
# products liked by people whose review stars correlate with the target's
people  = TABLE People
reviews = TABLE Reviews
ext     = EXTEND people WITH reviews ON PersonID = PersonID COLLECT ProductID, Stars AS stars
target  = SELECT ext WHERE PersonID = $person
others  = SELECT ext WHERE PersonID <> $person
similar = RECOMMEND others AGAINST target USING inv_euclidean(stars, stars) AGG max SCORE sim TOP 3
products = TABLE Products
scored  = RECOMMEND products AGAINST similar USING rating_of(ProductID, stars) AGG avg SCORE score
mine    = SELECT reviews WHERE PersonID = $person
fresh   = EXCEPT scored ON ProductID = ProductID FROM mine
top     = TOPK fresh BY score DESC LIMIT 3
RETURN top
)";
  auto wf = ParseWorkflow(kDsl);
  if (!wf.ok()) return Fail(wf.status());
  if (auto s = engine.RegisterStrategy("product_cf", std::move(*wf));
      !s.ok()) {
    return Fail(s);
  }

  for (int64_t person : {2, 3}) {
    ParamMap params;
    params["person"] = Value(person);
    auto recs = engine.RunStrategy("product_cf", params);
    if (!recs.ok()) return Fail(recs.status());
    std::printf("> recommendations for person %lld:\n%s\n",
                static_cast<long long>(person), recs->ToString(3).c_str());
  }

  std::printf("same substrates, different domain — the focused-social-site "
              "stack is generic.\n");
  return 0;
}
