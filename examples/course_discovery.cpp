// The Fig. 3/4 discovery session, scripted: a student searches "american",
// reads the data cloud, clicks a term to refine, and also stumbles onto the
// paper's serendipity example ("greek science" finding a history-of-science
// course she would never have browsed to).

#include <cstdio>

#include "core/data_cloud.h"
#include "gen/generator.h"
#include "social/site.h"

using courserank::cloud::CloudBuilder;
using courserank::cloud::DataCloud;
using courserank::gen::GenConfig;
using courserank::gen::Generator;
using courserank::search::ResultSet;

namespace {

int Fail(const courserank::Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

void ShowResults(const courserank::social::CourseRankSite& site,
                 const ResultSet& results, size_t n) {
  for (size_t i = 0; i < n && i < results.hits.size(); ++i) {
    std::printf("    %5.2f  %s\n", results.hits[i].score,
                site.index().doc(results.hits[i].doc).display.c_str());
  }
}

}  // namespace

int main() {
  std::printf("generating the campus (takes a few seconds)...\n");
  Generator generator(GenConfig::Small(2026));
  auto site_or = generator.Generate();
  if (!site_or.ok()) return Fail(site_or.status());
  auto site = std::move(site_or).value();
  if (auto s = site->BuildSearchIndex(); !s.ok()) return Fail(s);

  auto searcher_or = site->MakeSearcher();
  if (!searcher_or.ok()) return Fail(searcher_or.status());
  const auto& searcher = *searcher_or;
  CloudBuilder cloud_builder(&site->index());

  // --- Fig. 3: the initial search -------------------------------------
  std::printf("\n> search: american\n");
  auto results_or = searcher.Search("american");
  if (!results_or.ok()) return Fail(results_or.status());
  ResultSet results = std::move(*results_or);
  std::printf("  %zu of %zu courses match; top results:\n", results.size(),
              site->index().num_docs());
  ShowResults(*site, results, 5);

  DataCloud cloud = cloud_builder.Build(results);
  std::printf("  cloud: %s\n", cloud.ToString().c_str());

  // --- Fig. 4: click a cloud term to refine ----------------------------
  // Pick the highest-scored phrase term, like a user drawn to the biggest
  // font.
  std::string clicked;
  for (const auto& term : cloud.terms) {
    if (term.is_phrase) {
      clicked = term.display;
      break;
    }
  }
  if (clicked.empty() && !cloud.terms.empty()) {
    clicked = cloud.terms[0].display;
  }
  std::printf("\n> click cloud term: \"%s\"\n", clicked.c_str());
  auto refined_or = searcher.Refine(results, clicked);
  if (!refined_or.ok()) return Fail(refined_or.status());
  std::printf("  narrowed to %zu courses:\n", refined_or->size());
  ShowResults(*site, *refined_or, 5);
  DataCloud refined_cloud = cloud_builder.Build(*refined_or);
  std::printf("  updated cloud: %s\n", refined_cloud.ToString().c_str());

  // --- serendipity: "greek science" ------------------------------------
  // The classics student looking for "something related to Greece" finds
  // the history-of-science course through its description.
  std::printf("\n> search: greek science\n");
  auto greek_or = searcher.Search("greek science");
  if (!greek_or.ok()) return Fail(greek_or.status());
  std::printf("  %zu match(es):\n", greek_or->size());
  ShowResults(*site, *greek_or, 3);

  // --- ranking question from §3.1 ---------------------------------------
  // "should a course that mentions 'Java' in its title score like one that
  // mentions it in student comments?" — compare the two ranking modes.
  std::printf("\n> search: java   (title-weighted vs flat ranking)\n");
  auto weighted = searcher.Search("java");
  courserank::search::SearchOptions flat_opts;
  flat_opts.ranking = courserank::search::RankingMode::kTfIdf;
  courserank::search::Searcher flat(&site->index(), flat_opts);
  auto unweighted = flat.Search("java");
  if (!weighted.ok() || !unweighted.ok()) return Fail(weighted.status());
  // --- course descriptor page (Fig. 1 left) for the top refined hit ------
  if (!refined_or->hits.empty()) {
    const auto& doc = site->index().doc(refined_or->hits[0].doc);
    auto viewer = generator.artifacts().active_students[0];
    auto page = site->GetCourseDescriptor(viewer, doc.key.AsInt());
    if (!page.ok()) return Fail(page.status());
    std::printf("\n> open the top result's course page:\n%s",
                page->ToString().c_str());
  }

  std::printf("  bm25f(title-boosted) top hit:  %s\n",
              weighted->hits.empty()
                  ? "(none)"
                  : site->index().doc(weighted->hits[0].doc).display.c_str());
  std::printf("  tf-idf(flat) top hit:          %s\n",
              unweighted->hits.empty()
                  ? "(none)"
                  : site->index()
                        .doc(unweighted->hits[0].doc)
                        .display.c_str());
  return 0;
}
