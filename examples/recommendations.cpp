// A FlexRecs tour (§3.2): run the canned strategies on a generated campus,
// show the compiled SQL sequence behind Fig. 5(b), and — the paper's key
// pitch — define a brand-new personalized strategy at runtime from DSL
// text, without touching engine code.

#include <cstdio>
#include <map>

#include "core/workflow_parser.h"
#include "gen/generator.h"
#include "social/site.h"

using courserank::gen::GenConfig;
using courserank::gen::Generator;
using courserank::query::ParamMap;
using courserank::storage::Value;

namespace {

int Fail(const courserank::Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

/// A student with at least `n` ratings.
int64_t PickRater(const courserank::social::CourseRankSite& site, size_t n) {
  const auto* ratings = site.db().FindTable("Ratings");
  std::map<int64_t, size_t> counts;
  ratings->Scan([&](courserank::storage::RowId,
                    const courserank::storage::Row& row) {
    ++counts[row[0].AsInt()];
  });
  for (const auto& [student, count] : counts) {
    if (count >= n) return student;
  }
  return counts.begin()->first;
}

}  // namespace

int main() {
  std::printf("generating the campus...\n");
  Generator generator(GenConfig::Small(7));
  auto site_or = generator.Generate();
  if (!site_or.ok()) return Fail(site_or.status());
  auto site = std::move(site_or).value();
  auto& engine = site->flexrecs();

  // --- what the admin registered ----------------------------------------
  std::printf("\nregistered strategies:\n");
  for (const std::string& name : engine.StrategyNames()) {
    std::printf("  %s\n", name.c_str());
  }

  // --- Fig. 5(b), with its compiled form ---------------------------------
  int64_t student = PickRater(*site, 4);
  std::printf("\n=== user_cf for student %lld ===\n",
              static_cast<long long>(student));
  auto explain = engine.ExplainStrategy("user_cf");
  if (!explain.ok()) return Fail(explain.status());
  std::printf("%s\n", explain->c_str());

  ParamMap params;
  params["student"] = Value(student);
  auto recs = engine.RunStrategy("user_cf", params);
  if (!recs.ok()) return Fail(recs.status());
  std::printf("%s\n", recs->ToString(5).c_str());

  // --- "recommended quarters in which to take a given course" ------------
  ParamMap quarter_params;
  quarter_params["course"] = Value(generator.artifacts().calculus);
  auto quarters = engine.RunStrategy("best_quarter", quarter_params);
  if (!quarters.ok()) return Fail(quarters.status());
  std::printf("=== best quarter to take Calculus ===\n%s\n",
              quarters->ToString().c_str());

  // --- majors for the undeclared -----------------------------------------
  auto majors = engine.RunStrategy("recommend_major", params);
  if (!majors.ok()) return Fail(majors.status());
  std::printf("=== recommended majors for student %lld ===\n%s\n",
              static_cast<long long>(student), majors->ToString(3).c_str());

  // --- the admin writes a NEW strategy at runtime ------------------------
  // "Recommend courses from departments the student has done well in,
  // ranked by community rating" — composed purely in the DSL.
  // Note: joins between materialized intermediate relations run as
  // physical operators over unqualified schemas, so the SQL steps rename
  // their outputs to keep join keys unambiguous.
  const char* kCustomDsl = R"(
# courses from departments where the student averaged >= 3.5,
# ranked by average community rating
good_depts = SQL SELECT c.DepID AS strong_dep, AVG(e.Grade) AS avg_grade FROM Enrollment e JOIN Courses c ON e.CourseID = c.CourseID WHERE e.SuID = $student AND e.Grade IS NOT NULL GROUP BY c.DepID HAVING avg_grade >= 3.5
rated    = SQL SELECT CourseID AS rated_course, AVG(Score) AS community FROM Ratings GROUP BY CourseID
courses  = TABLE Courses
liked    = JOIN courses WITH good_depts ON DepID = strong_dep
scored   = JOIN liked WITH rated ON CourseID = rated_course
enrolled = TABLE Enrollment
mine     = SELECT enrolled WHERE SuID = $student
fresh    = EXCEPT scored ON CourseID = CourseID FROM mine
top      = TOPK fresh BY community DESC LIMIT 5
RETURN top
)";
  auto custom = courserank::flexrecs::ParseWorkflow(kCustomDsl);
  if (!custom.ok()) return Fail(custom.status());
  if (auto s = engine.RegisterStrategy("strong_dept_picks",
                                       std::move(*custom));
      !s.ok()) {
    return Fail(s);
  }
  auto custom_recs = engine.RunStrategy("strong_dept_picks", params);
  if (!custom_recs.ok()) return Fail(custom_recs.status());
  std::printf("=== custom runtime-defined strategy: strong_dept_picks ===\n%s",
              custom_recs->ToString(5).c_str());
  return 0;
}
