// The Fig. 1 (right) Planner and Requirement Tracker flows: a student
// builds a hand-made catalog's four-year plan, the validator flags
// conflicts/prereq/overload problems, the planner prints per-quarter GPA,
// and the tracker reports progress toward the major.

#include <cstdio>

#include "planner/plan.h"
#include "planner/prereq.h"
#include "planner/requirements.h"
#include "planner/scheduler.h"
#include "social/site.h"

using courserank::Quarter;
using courserank::Term;
using courserank::TimeSlot;
using courserank::kFri;
using courserank::kMon;
using courserank::kThu;
using courserank::kTue;
using courserank::kWed;
using courserank::planner::AcademicPlan;
using courserank::planner::PlanIssueKindName;
using courserank::planner::PrereqGraph;
using courserank::planner::ReqPtr;
using courserank::planner::RequirementNode;
using courserank::planner::RequirementTracker;
using courserank::social::CourseRankSite;

namespace {

int Fail(const courserank::Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

template <typename T>
T Must(courserank::Result<T> r) {
  if (!r.ok()) {
    std::fprintf(stderr, "fatal: %s\n", r.status().ToString().c_str());
    std::abort();
  }
  return std::move(r).value();
}

}  // namespace

int main() {
  auto site = Must(CourseRankSite::Create());

  // --- a small hand-made catalog ----------------------------------------
  auto cs = Must(site->AddDepartment("CS", "Computer Science",
                                     "Engineering"));
  auto math = Must(site->AddDepartment("MATH", "Mathematics",
                                       "Humanities and Sciences"));
  auto intro = Must(site->AddCourse(cs, 106, "Programming Methodology",
                                    "intro programming in java", 5));
  auto ds = Must(site->AddCourse(cs, 161, "Data Structures and Algorithms",
                                 "lists trees graphs complexity", 5));
  auto os = Must(site->AddCourse(cs, 240, "Operating Systems",
                                 "processes memory filesystems", 4));
  auto dbs = Must(site->AddCourse(cs, 245, "Database Systems",
                                  "relational model query processing", 4));
  auto calc = Must(site->AddCourse(math, 41, "Calculus I",
                                   "derivatives and integrals", 5));

  if (auto s = site->AddPrereq(ds, intro); !s.ok()) return Fail(s);
  if (auto s = site->AddPrereq(os, ds); !s.ok()) return Fail(s);
  if (auto s = site->AddPrereq(dbs, ds); !s.ok()) return Fail(s);

  TimeSlot mwf9{static_cast<uint8_t>(kMon | kWed | kFri), 9 * 60, 9 * 60 + 50};
  TimeSlot mwf11{static_cast<uint8_t>(kMon | kWed | kFri), 11 * 60,
                 11 * 60 + 50};
  TimeSlot tth13{static_cast<uint8_t>(kTue | kThu), 13 * 60, 14 * 60 + 20};
  for (int year : {2007, 2008}) {
    Must(site->AddOffering(intro, year, Quarter::kAutumn, "Prof. Sahami",
                           mwf9));
    Must(site->AddOffering(calc, year, Quarter::kAutumn, "Prof. Simon",
                           mwf11));
    Must(site->AddOffering(ds, year, Quarter::kWinter, "Prof. Roberts",
                           mwf9));
    Must(site->AddOffering(os, year, Quarter::kSpring, "Prof. Mazieres",
                           tth13));
    // Databases deliberately collides with OS — the only Spring sections
    // overlap.
    Must(site->AddOffering(dbs, year, Quarter::kSpring, "Prof. Widom",
                           tth13));
  }

  if (auto s = site->RegisterStudent(1, "Sally", "Sophomore", cs); !s.ok()) {
    return Fail(s);
  }

  // --- what Sally already took (with grades) -----------------------------
  if (auto s = site->ReportCourseTaken(1, intro, 2007, Quarter::kAutumn, 4.0);
      !s.ok()) {
    return Fail(s);
  }
  if (auto s = site->ReportCourseTaken(1, calc, 2007, Quarter::kAutumn, 3.3);
      !s.ok()) {
    return Fail(s);
  }
  if (auto s = site->ReportCourseTaken(1, ds, 2007, Quarter::kWinter, 3.7);
      !s.ok()) {
    return Fail(s);
  }
  // --- and what she plans ------------------------------------------------
  if (auto s = site->PlanCourse(1, os, 2008, Quarter::kSpring); !s.ok()) {
    return Fail(s);
  }
  if (auto s = site->PlanCourse(1, dbs, 2008, Quarter::kSpring); !s.ok()) {
    return Fail(s);
  }

  auto plan = Must(AcademicPlan::FromDatabase(site->db(), 1));
  std::printf("=== Sally's plan ===\n%s\n",
              Must(plan.ToString(site->db())).c_str());

  auto graph = Must(PrereqGraph::Build(site->db()));
  auto issues = Must(plan.Validate(site->db(), graph));
  std::printf("=== validation ===\n");
  if (issues.empty()) {
    std::printf("no issues\n");
  }
  for (const auto& issue : issues) {
    std::printf("[%s] %s\n", PlanIssueKindName(issue.kind),
                issue.message.c_str());
  }

  // Fix the conflict: move Databases a year later.
  std::printf("\nmoving Database Systems to Spring 2009... no, wait — it is\n"
              "not offered in 2009; moving OS instead is also impossible.\n"
              "Dropping Databases from Spring 2008:\n");
  if (auto s = site->UnplanCourse(1, dbs, 2008, Quarter::kSpring); !s.ok()) {
    return Fail(s);
  }
  plan = Must(AcademicPlan::FromDatabase(site->db(), 1));
  issues = Must(plan.Validate(site->db(), graph));
  std::printf("validation now reports %zu issue(s)\n\n", issues.size());

  // --- requirement tracker -----------------------------------------------
  RequirementTracker tracker(&site->db());
  std::vector<ReqPtr> kids;
  kids.push_back(RequirementNode::Course("programming intro", intro));
  kids.push_back(RequirementNode::Course("data structures", ds));
  kids.push_back(RequirementNode::NOfSet("one systems course", 1, {os, dbs}));
  kids.push_back(RequirementNode::UnitsFromDept("math: 5 units", math, 0, 5));
  if (auto s = tracker.DefineProgram(
          cs, RequirementNode::AllOf("CS major", std::move(kids)));
      !s.ok()) {
    return Fail(s);
  }

  auto report = Must(tracker.CheckStudent(cs, 1));
  std::printf("=== requirement tracker: CS major ===\n%s",
              report.ToString().c_str());
  std::printf("\n(the systems requirement stays open until OS is actually "
              "taken — planned\n courses do not count toward requirements)\n");

  // --- schedule suggester --------------------------------------------------
  // "Shop for classes": let the planner place the remaining courses.
  courserank::planner::ScheduleRequest request;
  request.wanted = {os, dbs};
  request.first_term = {2008, Quarter::kAutumn};
  request.num_terms = 3;
  auto suggestion = Must(courserank::planner::SuggestSchedule(
      site->db(), graph, /*completed=*/{intro, ds, calc}, request));
  std::printf("\n=== schedule suggestion for the remaining courses ===\n");
  for (const auto& placement : suggestion.placements) {
    std::printf("  take course %lld in %s\n",
                static_cast<long long>(placement.course),
                placement.term.ToString().c_str());
  }
  for (const auto& unplaced : suggestion.unplaced) {
    std::printf("  could not place course %lld: %s\n",
                static_cast<long long>(unplaced.course),
                unplaced.reason.c_str());
  }
  return 0;
}
