// Quickstart: generate a small CourseRank community, search it, build a
// data cloud, refine like Fig. 3/4, and run the two Fig. 5 FlexRecs
// workflows.

#include <cstdio>

#include "core/data_cloud.h"
#include "gen/generator.h"
#include "obs/metrics.h"
#include "social/site.h"

using courserank::gen::GenConfig;
using courserank::gen::Generator;

namespace {

int Fail(const courserank::Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

}  // namespace

int main() {
  // 1. Generate a deterministic synthetic community (scaled-down campus).
  Generator generator(GenConfig::Small(/*seed=*/7));
  auto site_or = generator.Generate();
  if (!site_or.ok()) return Fail(site_or.status());
  auto site = std::move(site_or).value();

  auto stats_or = site->GetStats();
  if (!stats_or.ok()) return Fail(stats_or.status());
  const auto& stats = *stats_or;
  std::printf("community: %zu courses, %zu students (%zu active), "
              "%zu ratings, %zu comments\n",
              stats.courses, stats.students, stats.active_students,
              stats.ratings, stats.comments);

  // 2. Build the course search index (title + description + instructors +
  //    comments form one search entity).
  if (auto s = site->BuildSearchIndex(); !s.ok()) return Fail(s);

  auto searcher_or = site->MakeSearcher();
  if (!searcher_or.ok()) return Fail(searcher_or.status());
  const auto& searcher = *searcher_or;

  // 3. Search "american" and summarize the results with a data cloud.
  auto results_or = searcher.Search("american");
  if (!results_or.ok()) return Fail(results_or.status());
  const auto& results = *results_or;
  std::printf("\nsearch 'american': %zu of %zu courses\n", results.size(),
              site->index().num_docs());

  courserank::cloud::CloudBuilder cloud_builder(&site->index());
  courserank::cloud::DataCloud cloud = cloud_builder.Build(results);
  std::printf("cloud: %s\n", cloud.ToString().c_str());

  // 4. Click a cloud term to refine (Fig. 4).
  auto refined_or = searcher.Refine(results, "african american");
  if (!refined_or.ok()) return Fail(refined_or.status());
  std::printf("\nrefine by 'african american': %zu matches\n",
              refined_or->size());

  // 5. FlexRecs: related courses for a course title (Fig. 5a) ...
  courserank::query::ParamMap params;
  params["title"] = courserank::storage::Value("Introduction to Programming");
  params["year"] =
      courserank::storage::Value(static_cast<int64_t>(2006));
  auto related_or = site->flexrecs().RunStrategy("related_courses", params);
  if (!related_or.ok()) return Fail(related_or.status());
  std::printf("\nrelated courses (Fig. 5a):\n%s",
              related_or->ToString(5).c_str());

  // 6. ... and user-based collaborative filtering (Fig. 5b).
  courserank::query::ParamMap cf_params;
  cf_params["student"] = courserank::storage::Value(
      static_cast<int64_t>(generator.artifacts().active_students[0]));
  auto cf_or = site->flexrecs().RunStrategy("user_cf", cf_params);
  if (!cf_or.ok()) return Fail(cf_or.status());
  std::printf("\nrecommended courses (Fig. 5b):\n%s",
              cf_or->ToString(5).c_str());

  // 7. Everything above was observed: dump the process-wide metrics the
  //    run accumulated (Prometheus text; RenderJson() for JSON).
  std::printf("\nmetrics:\n%s",
              courserank::obs::MetricsRegistry::Default()
                  .RenderPrometheus()
                  .c_str());

  std::printf("\nquickstart OK\n");
  return 0;
}
