// E7 — the Planner and Requirement Tracker (§2.1): plan validation and
// requirement matching at paper scale, with the greedy-vs-maximum-matching
// ablation DESIGN.md calls out.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.h"
#include "planner/plan.h"
#include "planner/prereq.h"
#include "planner/requirements.h"

namespace courserank::bench {
namespace {

using planner::AcademicPlan;
using planner::MatchStrategy;
using planner::PrereqGraph;
using planner::ReqPtr;
using planner::RequirementNode;
using planner::RequirementTracker;

/// A program assembled from the campus's most-taken courses, with
/// deliberately overlapping requirement sets: "breadth" (2 of the top 8)
/// is listed before "core" (2 of the top 4), so first-fit greedy tends to
/// burn core-eligible courses on breadth — the double-counting hazard the
/// maximum-matching assignment exists to avoid.
ReqPtr OverlappingProgram(const World& world) {
  const auto* enrollment = world.site->db().FindTable("Enrollment");
  std::map<int64_t, size_t> counts;
  enrollment->Scan([&](storage::RowId, const storage::Row& row) {
    ++counts[row[1].AsInt()];
  });
  std::vector<std::pair<size_t, int64_t>> by_popularity;
  for (const auto& [course, n] : counts) by_popularity.push_back({n, course});
  std::sort(by_popularity.rbegin(), by_popularity.rend());

  std::vector<int64_t> top8;
  for (size_t i = 0; i < 8 && i < by_popularity.size(); ++i) {
    top8.push_back(by_popularity[i].second);
  }
  std::vector<int64_t> top4(top8.begin(),
                            top8.begin() + std::min<size_t>(4, top8.size()));
  std::vector<ReqPtr> kids;
  kids.push_back(RequirementNode::NOfSet("breadth: two of the top eight", 2,
                                         top8));
  kids.push_back(RequirementNode::NOfSet("core: two of the top four", 2,
                                         std::move(top4)));
  return RequirementNode::AllOf("overlapping program", std::move(kids));
}

void PrintPlannerReport() {
  auto& world = PaperWorld();
  auto graph = PrereqGraph::Build(world.site->db());
  CR_CHECK(graph.ok());

  std::printf("\n=== E7: Planner / Requirement Tracker at paper scale ===\n");
  std::printf("  prereq graph: %zu edges, acyclic\n", graph->num_edges());

  // Validate the first 200 active students' merged plans.
  size_t with_issues = 0;
  size_t total_issues = 0;
  size_t checked = 0;
  for (size_t i = 0; i < 200; ++i) {
    auto plan = AcademicPlan::FromDatabase(
        world.site->db(), world.artifacts().active_students[i]);
    CR_CHECK(plan.ok());
    auto issues = plan->Validate(world.site->db(), *graph);
    CR_CHECK(issues.ok());
    with_issues += !issues->empty();
    total_issues += issues->size();
    ++checked;
  }
  std::printf("  plan validation over %zu students: %zu plans with issues, "
              "%.1f issues/plan\n",
              checked, with_issues,
              static_cast<double>(total_issues) /
                  static_cast<double>(checked));

  // Requirement matching vs greedy: count students where the strategies
  // disagree (the matching win the ablation looks for).
  RequirementTracker tracker(&world.site->db());
  CR_CHECK(tracker.DefineProgram(world.artifacts().cs_dept,
                                 OverlappingProgram(world)).ok());
  size_t matched_ok = 0;
  size_t greedy_ok = 0;
  for (size_t i = 0; i < 500; ++i) {
    auto a = tracker.CheckStudent(world.artifacts().cs_dept,
                                  world.artifacts().active_students[i],
                                  MatchStrategy::kMaximumMatching);
    auto b = tracker.CheckStudent(world.artifacts().cs_dept,
                                  world.artifacts().active_students[i],
                                  MatchStrategy::kGreedy);
    CR_CHECK(a.ok());
    CR_CHECK(b.ok());
    matched_ok += a->satisfied;
    greedy_ok += b->satisfied;
  }
  std::printf("  requirement check over 500 students (overlapping program): matching satisfies "
              "%zu, greedy %zu\n",
              matched_ok, greedy_ok);
  std::printf("  (matching >= greedy always; a gap means greedy "
              "double-counted away a completion)\n");
}

void BM_PlanFromDatabase(benchmark::State& state) {
  auto& world = PaperWorld();
  size_t i = 0;
  for (auto _ : state) {
    auto plan = AcademicPlan::FromDatabase(
        world.site->db(),
        world.artifacts()
            .active_students[i++ % world.artifacts().active_students.size()]);
    benchmark::DoNotOptimize(plan);
  }
}
BENCHMARK(BM_PlanFromDatabase)->Unit(benchmark::kMicrosecond);

void BM_PlanValidate(benchmark::State& state) {
  auto& world = PaperWorld();
  static auto* graph =
      new Result<PrereqGraph>(PrereqGraph::Build(world.site->db()));
  CR_CHECK(graph->ok());
  auto plan = AcademicPlan::FromDatabase(
      world.site->db(), world.artifacts().active_students[0]);
  CR_CHECK(plan.ok());
  for (auto _ : state) {
    auto issues = plan->Validate(world.site->db(), **graph);
    benchmark::DoNotOptimize(issues);
  }
}
BENCHMARK(BM_PlanValidate)->Unit(benchmark::kMicrosecond);

void BM_PrereqGraphBuild(benchmark::State& state) {
  auto& world = PaperWorld();
  for (auto _ : state) {
    auto graph = PrereqGraph::Build(world.site->db());
    benchmark::DoNotOptimize(graph);
  }
}
BENCHMARK(BM_PrereqGraphBuild)->Unit(benchmark::kMillisecond);

void BM_RequirementCheck(benchmark::State& state) {
  auto& world = PaperWorld();
  RequirementTracker tracker(&world.site->db());
  CR_CHECK(tracker.DefineProgram(world.artifacts().cs_dept,
                                 OverlappingProgram(world)).ok());
  MatchStrategy strategy = state.range(0) == 0
                               ? MatchStrategy::kMaximumMatching
                               : MatchStrategy::kGreedy;
  size_t i = 0;
  for (auto _ : state) {
    auto report = tracker.CheckStudent(
        world.artifacts().cs_dept,
        world.artifacts()
            .active_students[i++ % world.artifacts().active_students.size()],
        strategy);
    benchmark::DoNotOptimize(report);
  }
  state.SetLabel(state.range(0) == 0 ? "matching" : "greedy");
}
BENCHMARK(BM_RequirementCheck)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace courserank::bench

int main(int argc, char** argv) {
  courserank::bench::PrintPlannerReport();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
