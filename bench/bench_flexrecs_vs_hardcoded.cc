// E6 — the §3.2 challenge: what does FlexRecs' declarative indirection cost
// against "the recommendation algorithm embedded in the system code"? The
// hard-coded CF engine and the user_cf strategy implement the same
// algorithm; we measure latency and top-k agreement, plus a similarity-
// function ablation.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>
#include <set>

#include "bench_util.h"
#include "core/baseline_recommender.h"
#include "core/workflow_parser.h"

namespace courserank::bench {
namespace {

using flexrecs::HardcodedCf;
using query::ParamMap;
using storage::Value;

std::vector<int64_t> StudentsWithRatings(const World& world, size_t min_n,
                                         size_t how_many) {
  const auto* ratings = world.site->db().FindTable("Ratings");
  std::map<int64_t, size_t> counts;
  ratings->Scan([&](storage::RowId, const storage::Row& row) {
    ++counts[row[0].AsInt()];
  });
  std::vector<int64_t> out;
  for (const auto& [student, n] : counts) {
    if (n >= min_n) out.push_back(student);
    if (out.size() >= how_many) break;
  }
  return out;
}

void PrintAgreement() {
  auto& world = PaperWorld();
  auto cf = HardcodedCf::Build(world.site->db());
  CR_CHECK(cf.ok());

  std::printf("\n=== E6: FlexRecs user_cf vs hard-coded CF ===\n");
  std::vector<int64_t> students = StudentsWithRatings(world, 5, 10);
  double total_overlap = 0.0;
  size_t measured = 0;
  for (int64_t student : students) {
    auto baseline = cf->RecommendFor(student);
    if (!baseline.ok() || baseline->empty()) continue;
    ParamMap params;
    params["student"] = Value(student);
    auto flex = world.site->flexrecs().RunStrategy("user_cf", params);
    CR_CHECK(flex.ok());
    if (flex->rows.empty()) continue;

    std::set<int64_t> base_set;
    for (const auto& r : *baseline) base_set.insert(r.course_id);
    auto ci = flex->schema.FindColumn("CourseID");
    size_t agree = 0;
    for (const auto& row : flex->rows) {
      agree += base_set.count(row[*ci].AsInt());
    }
    total_overlap += static_cast<double>(agree) /
                     static_cast<double>(flex->rows.size());
    ++measured;
  }
  std::printf("  top-10 agreement over %zu students: %.0f%%\n", measured,
              100.0 * total_overlap / std::max<size_t>(measured, 1));
  std::printf("  (identical algorithm; residual disagreement is "
              "tie-breaking)\n");
}

void BM_HardcodedCfBuild(benchmark::State& state) {
  auto& world = PaperWorld();
  for (auto _ : state) {
    auto cf = HardcodedCf::Build(world.site->db());
    benchmark::DoNotOptimize(cf);
  }
}
BENCHMARK(BM_HardcodedCfBuild)->Unit(benchmark::kMillisecond);

void BM_HardcodedCfRecommend(benchmark::State& state) {
  auto& world = PaperWorld();
  static auto* cf =
      new Result<HardcodedCf>(HardcodedCf::Build(world.site->db()));
  CR_CHECK(cf->ok());
  int64_t student = StudentsWithRatings(world, 5, 1)[0];
  for (auto _ : state) {
    auto recs = (*cf)->RecommendFor(student);
    benchmark::DoNotOptimize(recs);
  }
}
BENCHMARK(BM_HardcodedCfRecommend)->Unit(benchmark::kMillisecond);

void BM_FlexRecsUserCf(benchmark::State& state) {
  auto& world = PaperWorld();
  ParamMap params;
  params["student"] = Value(StudentsWithRatings(world, 5, 1)[0]);
  for (auto _ : state) {
    auto rel = world.site->flexrecs().RunStrategy("user_cf", params);
    benchmark::DoNotOptimize(rel);
  }
}
BENCHMARK(BM_FlexRecsUserCf)->Unit(benchmark::kMillisecond);

/// Ablation: neighbor similarity function choice in the Fig. 5(b) shape.
void BM_SimilarityAblation(benchmark::State& state) {
  auto& world = PaperWorld();
  static const char* kFns[] = {"inv_euclidean", "inv_manhattan", "cosine",
                               "pearson", "jaccard"};
  const char* fn = kFns[state.range(0)];
  std::string dsl = std::string(R"(
students = TABLE Students
ratings  = TABLE Ratings
ext      = EXTEND students WITH ratings ON SuID = SuID COLLECT CourseID, Score AS ratings
target   = SELECT ext WHERE SuID = $student
others   = SELECT ext WHERE SuID <> $student
similar  = RECOMMEND others AGAINST target USING )") +
                    fn + R"((ratings, ratings) AGG max SCORE sim TOP 25
RETURN similar
)";
  auto wf = flexrecs::ParseWorkflow(dsl);
  CR_CHECK(wf.ok());
  ParamMap params;
  params["student"] = Value(StudentsWithRatings(world, 5, 1)[0]);
  for (auto _ : state) {
    auto rel = world.site->flexrecs().Run(**wf, params);
    benchmark::DoNotOptimize(rel);
  }
  state.SetLabel(fn);
}
BENCHMARK(BM_SimilarityAblation)->Arg(0)->Arg(1)->Arg(2)->Arg(3)->Arg(4)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace courserank::bench

int main(int argc, char** argv) {
  courserank::bench::PrintAgreement();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
