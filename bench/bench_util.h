#ifndef COURSERANK_BENCH_BENCH_UTIL_H_
#define COURSERANK_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <memory>
#include <string>

#include "common/logging.h"
#include "gen/generator.h"
#include "obs/metrics.h"
#include "social/site.h"

namespace courserank::bench {

/// A generated world shared by the benchmarks of one binary. Built lazily
/// once; benchmarks only read.
struct World {
  std::unique_ptr<gen::Generator> generator;
  std::unique_ptr<social::CourseRankSite> site;

  const gen::GenArtifacts& artifacts() const {
    return generator->artifacts();
  }
};

inline World BuildWorld(const gen::GenConfig& config, bool build_index) {
  World world;
  world.generator = std::make_unique<gen::Generator>(config);
  auto site = world.generator->Generate();
  CR_CHECK(site.ok());
  world.site = std::move(*site);
  if (build_index) CR_CHECK(world.site->BuildSearchIndex().ok());
  return world;
}

/// The paper-scale corpus (18,605 courses, 134k comments, 50.3k ratings);
/// ~8s to build, done once per binary.
inline World& PaperWorld() {
  static World* world = [] {
    std::fprintf(stderr,
                 "[bench] generating paper-scale corpus (~8s, once)...\n");
    return new World(BuildWorld(gen::GenConfig::PaperScale(), true));
  }();
  return *world;
}

/// A small corpus for micro-benchmarks where paper scale adds nothing.
inline World& SmallWorld() {
  static World* world =
      new World(BuildWorld(gen::GenConfig::Small(42), true));
  return *world;
}

/// JSON snapshot of every process-wide metric the run touched, for
/// embedding under a "metrics" key in BENCH_*.json dumps. What the query
/// path did (cache hit rates, postings advanced, rows scanned) then rides
/// along with the timings it explains.
inline std::string MetricsSnapshotJson() {
  return obs::MetricsRegistry::Default().RenderJson();
}

}  // namespace courserank::bench

#endif  // COURSERANK_BENCH_BENCH_UTIL_H_
