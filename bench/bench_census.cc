// E1 — paper §2 deployment statistics and Table 1's CourseRank column,
// measured on the generated system rather than asserted.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.h"

namespace courserank::bench {
namespace {

void PrintCensus() {
  auto& world = PaperWorld();
  auto stats = world.site->GetStats();
  CR_CHECK(stats.ok());

  std::printf("\n=== E1: paper §2 census (paper -> measured) ===\n");
  struct Line {
    const char* what;
    size_t paper;
    size_t measured;
  };
  const Line lines[] = {
      {"courses", 18605, stats->courses},
      {"comments", 134000, stats->comments},
      {"ratings", 50300, stats->ratings},
      {"students total", 14000, stats->students},
      {"students active", 9000, stats->active_students},
  };
  for (const Line& l : lines) {
    std::printf("  %-16s %8zu -> %8zu  (%.1f%%)\n", l.what, l.paper,
                l.measured,
                100.0 * static_cast<double>(l.measured) /
                    static_cast<double>(l.paper));
  }
  std::printf("  also generated: %zu departments, %zu offerings, %zu "
              "enrollments, %zu plans,\n"
              "                  %zu questions, %zu answers, %zu textbooks, "
              "%zu faculty, %zu staff\n",
              stats->departments, stats->offerings, stats->enrollments,
              stats->plans, stats->questions, stats->answers,
              stats->textbooks, stats->faculty, stats->staff);

  std::printf("\n=== Table 1: the CourseRank column, measured ===\n");
  std::printf("  data:   centrally stored            -> %zu tables in one catalog\n",
              world.site->db().TableNames().size());
  std::printf("  data:   user contributed + official -> %zu user rows + %zu official rows\n",
              stats->comments + stats->ratings + stats->enrollments,
              stats->courses + stats->offerings);
  std::printf("  access: closed community            -> %zu authenticated members, 0 anonymous\n",
              stats->students + stats->faculty + stats->staff);
  std::printf("  users:  real ids, 3 constituencies  -> %zu students / %zu faculty / %zu staff\n",
              stats->students, stats->faculty, stats->staff);
  Status integrity = world.site->db().CheckIntegrity();
  std::printf("  integrity: referential check        -> %s\n",
              integrity.ok() ? "OK" : integrity.ToString().c_str());
}

void BM_GetStats(benchmark::State& state) {
  auto& world = PaperWorld();
  for (auto _ : state) {
    auto stats = world.site->GetStats();
    benchmark::DoNotOptimize(stats);
  }
}
BENCHMARK(BM_GetStats)->Unit(benchmark::kMillisecond);

void BM_IntegrityCheck(benchmark::State& state) {
  auto& world = PaperWorld();
  for (auto _ : state) {
    Status s = world.site->db().CheckIntegrity();
    benchmark::DoNotOptimize(s);
  }
}
BENCHMARK(BM_IntegrityCheck)->Unit(benchmark::kMillisecond);

void BM_GeneratePaperScale(benchmark::State& state) {
  for (auto _ : state) {
    World world = BuildWorld(gen::GenConfig::PaperScale(), false);
    benchmark::DoNotOptimize(world.site);
  }
}
BENCHMARK(BM_GeneratePaperScale)
    ->Unit(benchmark::kSecond)
    ->Iterations(1);

}  // namespace
}  // namespace courserank::bench

int main(int argc, char** argv) {
  courserank::bench::PrintCensus();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
