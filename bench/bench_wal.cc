// E11 — durability cost: WAL append throughput (buffered vs fsync-per-append,
// small vs wide rows), replay speed, and full snapshot+WAL recovery time.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <filesystem>
#include <string>

#include "common/logging.h"
#include "common/rng.h"
#include "common/status.h"
#include "storage/database.h"
#include "storage/snapshot.h"
#include "storage/wal.h"

namespace courserank::bench {
namespace {

using namespace courserank::storage;
namespace fs = std::filesystem;

std::string TempPath(const std::string& name) {
  return (fs::temp_directory_path() / ("cr_bench_wal_" + name)).string();
}

Schema EventsSchema() {
  return Schema({{"id", ValueType::kInt, false},
                 {"payload", ValueType::kString, true},
                 {"score", ValueType::kDouble, true}});
}

Row MakeRow(int64_t id, size_t payload_bytes) {
  return {Value(id), Value(std::string(payload_bytes, 'x')),
          Value(static_cast<double>(id) * 0.25)};
}

/// Append throughput. Arg 0: payload bytes. Arg 1: fsync each append (0/1).
void BM_WalAppend(benchmark::State& state) {
  size_t payload_bytes = static_cast<size_t>(state.range(0));
  WalOptions options;
  options.sync_each_append = state.range(1) != 0;
  std::string path = TempPath("append.log");
  fs::remove(path);
  auto wal = WalWriter::Open(path, options);
  CR_CHECK(wal.ok());
  int64_t id = 0;
  size_t bytes = 0;
  for (auto _ : state) {
    Row row = MakeRow(id, payload_bytes);
    auto lsn = (*wal)->AppendMutation(WalRecordType::kInsert, "events",
                                      static_cast<RowId>(id), row);
    CR_CHECK(lsn.ok());
    ++id;
    bytes += payload_bytes;
  }
  state.SetItemsProcessed(state.iterations());
  state.SetBytesProcessed(static_cast<int64_t>(bytes));
  wal->reset();
  fs::remove(path);
}
BENCHMARK(BM_WalAppend)
    ->Args({16, 0})
    ->Args({256, 0})
    ->Args({4096, 0})
    ->Args({16, 1})
    ->Args({256, 1});

/// Replay throughput over a log of `range(0)` insert records.
void BM_WalReplay(benchmark::State& state) {
  int64_t n = state.range(0);
  std::string path = TempPath("replay.log");
  fs::remove(path);
  {
    auto wal = WalWriter::Open(path);
    CR_CHECK(wal.ok());
    for (int64_t i = 0; i < n; ++i) {
      CR_CHECK((*wal)
                   ->AppendMutation(WalRecordType::kInsert, "events",
                                    static_cast<RowId>(i), MakeRow(i, 64))
                   .ok());
    }
    CR_CHECK((*wal)->Sync().ok());
  }
  for (auto _ : state) {
    uint64_t applied = 0;
    auto stats = ReplayWal(path, 0, [&](const WalRecord&) {
      ++applied;
      return Status::OK();
    });
    CR_CHECK(stats.ok() && applied == static_cast<uint64_t>(n));
    benchmark::DoNotOptimize(stats);
  }
  state.SetItemsProcessed(state.iterations() * n);
  fs::remove(path);
}
BENCHMARK(BM_WalReplay)->Arg(1000)->Arg(10000)->Unit(benchmark::kMillisecond);

/// End-to-end recovery: load a snapshot of `range(0)` rows and replay a WAL
/// tail of `range(1)` further mutations into it.
void BM_Recovery(benchmark::State& state) {
  int64_t snapshot_rows = state.range(0);
  int64_t wal_tail = state.range(1);
  std::string snap = TempPath("recover_snap");
  std::string wal_path = TempPath("recover.log");
  fs::remove_all(snap);
  fs::remove(wal_path);
  {
    Database db;
    CR_CHECK(db.CreateTable("events", EventsSchema(), {"id"}).ok());
    for (int64_t i = 0; i < snapshot_rows; ++i) {
      CR_CHECK(db.Insert("events", MakeRow(i, 64)).ok());
    }
    CR_CHECK(SaveDatabase(db, snap).ok());
    auto wal = WalWriter::Open(wal_path);
    CR_CHECK(wal.ok());
    db.AttachWal(wal->get());
    for (int64_t i = snapshot_rows; i < snapshot_rows + wal_tail; ++i) {
      CR_CHECK(db.Insert("events", MakeRow(i, 64)).ok());
    }
    CR_CHECK((*wal)->Sync().ok());
  }
  for (auto _ : state) {
    auto recovered = RecoverDatabase(snap, wal_path);
    CR_CHECK(recovered.ok());
    CR_CHECK(recovered->db->FindTable("events")->size() ==
             static_cast<size_t>(snapshot_rows + wal_tail));
    benchmark::DoNotOptimize(recovered);
  }
  state.SetItemsProcessed(state.iterations() * (snapshot_rows + wal_tail));
  fs::remove_all(snap);
  fs::remove(wal_path);
}
BENCHMARK(BM_Recovery)
    ->Args({10000, 0})
    ->Args({10000, 1000})
    ->Args({0, 10000})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace courserank::bench

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
