// E8 — the §2.2 grade-distribution claims: (a) "the official Engineering
// grade distributions seem to be very close to the corresponding
// self-reported ones" — measured as total-variation distance per
// department; (b) k-anonymity suppression of tiny cohorts.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.h"
#include "social/grades.h"
#include "social/privacy.h"

namespace courserank::bench {
namespace {

using social::DepartmentOfficial;
using social::DepartmentSelfReported;
using social::GradeDistribution;
using social::PrivacyGuard;
using social::PrivacyPolicy;
using social::TotalVariation;

void PrintGradeReport() {
  auto& world = PaperWorld();
  const auto& db = world.site->db();

  std::printf("\n=== E8: official vs self-reported grade distributions ===\n");
  std::printf("  paper: \"official Engineering grade distributions seem to "
              "be very close to the\n         corresponding self-reported "
              "ones\"\n");
  std::printf("  %-10s %10s %10s %14s\n", "dept", "official", "reported",
              "TV distance");
  const auto* departments = db.FindTable("Departments");
  size_t shown = 0;
  double tv_sum = 0.0;
  size_t tv_n = 0;
  departments->Scan([&](storage::RowId, const storage::Row& row) {
    auto official = DepartmentOfficial(db, row[0].AsInt());
    auto reported = DepartmentSelfReported(db, row[0].AsInt());
    if (!official.ok() || !reported.ok()) return;
    if (official->total() < 200 || reported->total() < 200) return;
    double tv = TotalVariation(*official, *reported);
    tv_sum += tv;
    ++tv_n;
    if (shown < 8) {
      std::printf("  %-10s %10lld %10lld %14.3f\n",
                  row[1].AsString().c_str(),
                  static_cast<long long>(official->total()),
                  static_cast<long long>(reported->total()), tv);
      ++shown;
    }
  });
  std::printf("  mean TV distance over %zu departments: %.3f "
              "(0 = identical, 1 = disjoint)\n",
              tv_n, tv_sum / std::max<size_t>(tv_n, 1));

  // k-anonymity suppression sweep.
  std::printf("\n  suppression rate vs min-cohort threshold (self-reported "
              "per course):\n");
  for (int64_t k : {2, 5, 10, 20}) {
    PrivacyGuard guard(&db, PrivacyPolicy{.min_cohort = k});
    size_t suppressed = 0;
    size_t total = 0;
    for (size_t i = 0; i < 2000; ++i) {
      auto dist =
          guard.VisibleDistribution(world.artifacts().courses[i]);
      ++total;
      if (!dist.ok()) ++suppressed;
    }
    std::printf("    k=%-3lld -> %5.1f%% of courses suppressed\n",
                static_cast<long long>(k),
                100.0 * static_cast<double>(suppressed) /
                    static_cast<double>(total));
  }
}

void BM_CourseDistribution(benchmark::State& state) {
  auto& world = PaperWorld();
  size_t i = 0;
  for (auto _ : state) {
    auto dist = social::SelfReportedDistribution(
        world.site->db(),
        world.artifacts().courses[i++ % world.artifacts().courses.size()]);
    benchmark::DoNotOptimize(dist);
  }
}
BENCHMARK(BM_CourseDistribution)->Unit(benchmark::kMicrosecond);

void BM_DepartmentDistribution(benchmark::State& state) {
  auto& world = PaperWorld();
  for (auto _ : state) {
    auto dist = DepartmentSelfReported(world.site->db(),
                                       world.artifacts().cs_dept);
    benchmark::DoNotOptimize(dist);
  }
}
BENCHMARK(BM_DepartmentDistribution)->Unit(benchmark::kMillisecond);

void BM_PrivacyGuardedView(benchmark::State& state) {
  auto& world = PaperWorld();
  PrivacyGuard guard(&world.site->db());
  size_t i = 0;
  for (auto _ : state) {
    auto dist = guard.VisibleDistribution(
        world.artifacts().courses[i++ % world.artifacts().courses.size()]);
    benchmark::DoNotOptimize(dist);
  }
}
BENCHMARK(BM_PrivacyGuardedView)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace courserank::bench

int main(int argc, char** argv) {
  courserank::bench::PrintGradeReport();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
