// E3 — Fig. 4: clicking "African American" in the Fig. 3 cloud narrows 1160
// results to 123 (10.6%). Measures the refinement path and the ablation of
// incremental refinement vs re-running the conjunctive query from scratch.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.h"
#include "core/data_cloud.h"
#include "search/searcher.h"

namespace courserank::bench {
namespace {

using cloud::CloudBuilder;
using cloud::DataCloud;

void PrintFig4() {
  auto& world = PaperWorld();
  auto searcher = world.site->MakeSearcher();
  CR_CHECK(searcher.ok());
  auto base = searcher->Search("american");
  CR_CHECK(base.ok());
  auto refined = searcher->Refine(*base, "african american");
  CR_CHECK(refined.ok());

  std::printf("\n=== E3: Fig. 4 — refine by \"African American\" ===\n");
  std::printf("  paper:    1160 -> 123 matches (10.6%% of results)\n");
  std::printf("  measured: %zu -> %zu matches (%.1f%% of results)\n",
              base->size(), refined->size(),
              100.0 * static_cast<double>(refined->size()) /
                  static_cast<double>(base->size()));
  std::printf("  top refined results:\n");
  for (size_t i = 0; i < 5 && i < refined->hits.size(); ++i) {
    std::printf("    %.3f  %s\n", refined->hits[i].score,
                world.site->index().doc(refined->hits[i].doc).display.c_str());
  }
  CloudBuilder builder(&world.site->index());
  DataCloud cloud = builder.Build(*refined);
  std::printf("  updated cloud (%zu terms): %s\n", cloud.terms.size(),
              cloud.ToString().c_str());

  // Cross-check: refinement equals the from-scratch conjunctive query.
  auto direct = searcher->SearchTerms(refined->terms);
  CR_CHECK(direct.ok());
  std::printf("  refinement == from-scratch query: %s (%zu vs %zu)\n",
              direct->size() == refined->size() ? "yes" : "NO",
              refined->size(), direct->size());
}

void BM_RefineIncremental(benchmark::State& state) {
  auto& world = PaperWorld();
  auto searcher = world.site->MakeSearcher();
  CR_CHECK(searcher.ok());
  auto base = searcher->Search("american");
  CR_CHECK(base.ok());
  for (auto _ : state) {
    auto refined = searcher->Refine(*base, "african american");
    benchmark::DoNotOptimize(refined);
  }
}
BENCHMARK(BM_RefineIncremental)->Unit(benchmark::kMillisecond);

void BM_RefineFromScratch(benchmark::State& state) {
  // Ablation baseline: rerun the whole conjunctive query instead of
  // intersecting the prior result set.
  auto& world = PaperWorld();
  auto searcher = world.site->MakeSearcher();
  CR_CHECK(searcher.ok());
  auto base = searcher->Search("american");
  CR_CHECK(base.ok());
  auto refined = searcher->Refine(*base, "african american");
  CR_CHECK(refined.ok());
  for (auto _ : state) {
    auto direct = searcher->SearchTerms(refined->terms);
    benchmark::DoNotOptimize(direct);
  }
}
BENCHMARK(BM_RefineFromScratch)->Unit(benchmark::kMillisecond);

void BM_RefinePlusCloud(benchmark::State& state) {
  // The full Fig. 4 interaction: click -> narrowed results -> new cloud.
  auto& world = PaperWorld();
  auto searcher = world.site->MakeSearcher();
  CR_CHECK(searcher.ok());
  auto base = searcher->Search("american");
  CR_CHECK(base.ok());
  CloudBuilder builder(&world.site->index());
  for (auto _ : state) {
    auto refined = searcher->Refine(*base, "african american");
    DataCloud cloud = builder.Build(*refined);
    benchmark::DoNotOptimize(cloud);
  }
}
BENCHMARK(BM_RefinePlusCloud)->Unit(benchmark::kMillisecond);

/// Chained refinement depth sweep: each click intersects a smaller set, so
/// latency should fall with depth.
void BM_RefinementChain(benchmark::State& state) {
  auto& world = PaperWorld();
  auto searcher = world.site->MakeSearcher();
  CR_CHECK(searcher.ok());
  CloudBuilder builder(&world.site->index());
  const int depth = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto results = searcher->Search("american");
    CR_CHECK(results.ok());
    search::ResultSet current = std::move(*results);
    for (int d = 0; d < depth && !current.hits.empty(); ++d) {
      DataCloud cloud = builder.Build(current);
      if (cloud.terms.empty()) break;
      auto next = searcher->Refine(current, cloud.terms[0].term);
      if (!next.ok()) break;
      current = std::move(*next);
    }
    benchmark::DoNotOptimize(current);
  }
}
BENCHMARK(BM_RefinementChain)->Arg(1)->Arg(2)->Arg(3)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace courserank::bench

int main(int argc, char** argv) {
  courserank::bench::PrintFig4();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
