// E5 — the §3.1 challenge "how do we dynamically and efficiently compute
// the data cloud": inverted-index search vs the naive full-scan baseline,
// and clouds from precomputed term vectors vs re-analysis, swept over
// catalog sizes up to the paper scale.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/data_cloud.h"
#include "search/naive_search.h"
#include "search/query_cache.h"
#include "search/searcher.h"

namespace courserank::bench {
namespace {

using cloud::CachingCloudBuilder;
using cloud::CloudBuilder;
using search::CachingSearcher;
using search::MatchStrategy;
using search::NaiveSearcher;
using search::SearchOptions;
using search::Searcher;

/// Worlds at several catalog scales, generated once.
World& WorldAtScale(int courses) {
  static std::map<int, World>* worlds = new std::map<int, World>();
  auto it = worlds->find(courses);
  if (it == worlds->end()) {
    gen::GenConfig config = gen::GenConfig::PaperScale();
    double factor = static_cast<double>(courses) /
                    static_cast<double>(config.num_courses);
    config.num_courses = courses;
    config.num_students = std::max<size_t>(
        100, static_cast<size_t>(config.num_students * factor));
    config.num_ratings = static_cast<size_t>(config.num_ratings * factor);
    config.num_comments = static_cast<size_t>(config.num_comments * factor);
    config.num_departments = 26;
    std::fprintf(stderr, "[bench] generating %d-course corpus...\n", courses);
    it = worlds->emplace(courses, BuildWorld(config, true)).first;
  }
  return it->second;
}

void PrintScalingTable() {
  std::printf("\n=== E5: inverted index vs naive scan (query \"american\") "
              "===\n");
  std::printf("  %-10s %12s %14s %10s\n", "courses", "indexed(ms)",
              "naive-scan(ms)", "speedup");
  for (int courses : {1000, 4000, 18605}) {
    World& world = WorldAtScale(courses);
    auto searcher = world.site->MakeSearcher();
    CR_CHECK(searcher.ok());
    NaiveSearcher naive(&world.site->db(), search::MakeCourseEntity());

    auto time_of = [](auto&& fn) {
      auto t0 = std::chrono::steady_clock::now();
      fn();
      auto t1 = std::chrono::steady_clock::now();
      return std::chrono::duration<double, std::milli>(t1 - t0).count();
    };
    double indexed = time_of([&] {
      auto r = searcher->Search("american");
      CR_CHECK(r.ok());
    });
    double scan = time_of([&] {
      auto r = naive.Search("american");
      CR_CHECK(r.ok());
    });
    std::printf("  %-10d %12.3f %14.1f %9.0fx\n", courses, indexed, scan,
                scan / std::max(indexed, 1e-6));
  }
}

// ---------------------------------------------------------------- JSON out

/// Median ns/op over `iters` timed runs of `fn`.
template <typename Fn>
double TimeNs(Fn&& fn, int iters) {
  std::vector<double> samples;
  samples.reserve(iters);
  for (int i = 0; i < iters; ++i) {
    auto t0 = std::chrono::steady_clock::now();
    fn();
    auto t1 = std::chrono::steady_clock::now();
    samples.push_back(
        std::chrono::duration<double, std::nano>(t1 - t0).count());
  }
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

struct JsonRow {
  std::string name;
  int scale;
  double ns_per_op;
};

/// Machine-readable perf trajectory for future PRs: ns/op per benchmark
/// per corpus scale, written to BENCH_search.json in the working dir.
void WriteBenchJson() {
  std::vector<JsonRow> rows;
  auto add = [&](const std::string& name, int scale, double ns) {
    rows.push_back({name, scale, ns});
    std::fprintf(stderr, "  %-40s scale=%-6d %14.0f ns/op\n", name.c_str(),
                 scale, ns);
  };

  std::fprintf(stderr, "\n[bench] BENCH_search.json rows:\n");
  const char* kConjunctive = "american politics";
  for (int courses : {1000, 4000, 18605}) {
    World& world = WorldAtScale(courses);
    const auto& index = world.site->index();

    SearchOptions intersect_opts;  // default: postings intersection
    SearchOptions filter_opts;     // the seed's per-doc DocContains loop
    filter_opts.strategy = MatchStrategy::kPerDocFilter;
    Searcher intersect(&index, intersect_opts);
    Searcher filter(&index, filter_opts);

    int iters = courses > 10000 ? 15 : 31;
    add("cold_conjunctive_intersection", courses, TimeNs([&] {
          auto r = intersect.Search(kConjunctive);
          CR_CHECK(r.ok());
          benchmark::DoNotOptimize(r);
        }, iters));
    add("cold_conjunctive_perdoc_filter", courses, TimeNs([&] {
          auto r = filter.Search(kConjunctive);
          CR_CHECK(r.ok());
          benchmark::DoNotOptimize(r);
        }, iters));

    CachingSearcher cached(&index);
    CR_CHECK(cached.Search(kConjunctive).ok());  // warm the entry
    add("warm_repeated_query_cached", courses, TimeNs([&] {
          auto r = cached.Search(kConjunctive);
          CR_CHECK(r.ok());
          benchmark::DoNotOptimize(r);
        }, 101));

    // The Fig. 4 cloud-click workload: base query then a refinement,
    // repeated as users bounce between the two result pages.
    auto base = cached.Search("american");
    CR_CHECK(base.ok());
    CR_CHECK(cached.Refine(**base, "politics").ok());
    add("warm_refined_query_cached", courses, TimeNs([&] {
          auto r = cached.Refine(**base, "politics");
          CR_CHECK(r.ok());
          benchmark::DoNotOptimize(r);
        }, 101));
    Searcher plain(&index);
    auto plain_base = plain.Search("american");
    CR_CHECK(plain_base.ok());
    add("cold_refined_query", courses, TimeNs([&] {
          auto r = plain.Refine(*plain_base, "politics");
          CR_CHECK(r.ok());
          benchmark::DoNotOptimize(r);
        }, iters));

    // Cloud accumulation over the result term vectors, cold vs cached.
    CloudBuilder clouds(&index);
    add("cold_cloud_build", courses, TimeNs([&] {
          auto c = clouds.Build(**base);
          benchmark::DoNotOptimize(c);
        }, iters));
    CachingCloudBuilder cached_clouds(&index);
    CR_CHECK(cached_clouds.Build(**base) != nullptr);
    add("warm_cloud_build_cached", courses, TimeNs([&] {
          auto c = cached_clouds.Build(**base);
          benchmark::DoNotOptimize(c);
        }, 101));
  }

  std::FILE* f = std::fopen("BENCH_search.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "[bench] cannot write BENCH_search.json\n");
    return;
  }
  std::fprintf(f, "{\n  \"benchmark\": \"bench_search_scaling\",\n"
               "  \"unit\": \"ns/op\",\n  \"rows\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"scale\": %d, \"ns_per_op\": %.0f}%s\n",
                 rows[i].name.c_str(), rows[i].scale, rows[i].ns_per_op,
                 i + 1 < rows.size() ? "," : "");
  }
  // Metrics snapshot of everything the bench run just exercised. A new
  // top-level key only — the existing benchmark/unit/rows keys and their
  // shapes are a stable contract for cross-PR comparisons.
  std::string metrics = MetricsSnapshotJson();
  std::fprintf(f, "  ],\n  \"metrics\": %s\n}\n", metrics.c_str());
  std::fclose(f);
  std::fprintf(stderr, "[bench] wrote BENCH_search.json (%zu rows)\n",
               rows.size());
}

void BM_IndexedSearch(benchmark::State& state) {
  World& world = WorldAtScale(static_cast<int>(state.range(0)));
  auto searcher = world.site->MakeSearcher();
  CR_CHECK(searcher.ok());
  for (auto _ : state) {
    auto r = searcher->Search("american");
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_IndexedSearch)->Arg(1000)->Arg(4000)->Arg(18605)
    ->Unit(benchmark::kMillisecond);

void BM_ConjunctiveIntersection(benchmark::State& state) {
  World& world = WorldAtScale(static_cast<int>(state.range(0)));
  Searcher searcher(&world.site->index());
  for (auto _ : state) {
    auto r = searcher.Search("american politics");
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_ConjunctiveIntersection)->Arg(1000)->Arg(4000)->Arg(18605)
    ->Unit(benchmark::kMicrosecond);

void BM_ConjunctivePerDocFilter(benchmark::State& state) {
  // The seed's candidate loop: one DocContains + ScoreTerm (string hash +
  // binary searches) per candidate per term.
  World& world = WorldAtScale(static_cast<int>(state.range(0)));
  SearchOptions opts;
  opts.strategy = MatchStrategy::kPerDocFilter;
  Searcher searcher(&world.site->index(), opts);
  for (auto _ : state) {
    auto r = searcher.Search("american politics");
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_ConjunctivePerDocFilter)->Arg(1000)->Arg(4000)->Arg(18605)
    ->Unit(benchmark::kMicrosecond);

void BM_CachedRepeatedSearch(benchmark::State& state) {
  World& world = WorldAtScale(18605);
  CachingSearcher cached(&world.site->index());
  CR_CHECK(cached.Search("american politics").ok());
  for (auto _ : state) {
    auto r = cached.Search("american politics");
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_CachedRepeatedSearch)->Unit(benchmark::kMicrosecond);

void BM_NaiveScanSearch(benchmark::State& state) {
  World& world = WorldAtScale(static_cast<int>(state.range(0)));
  NaiveSearcher naive(&world.site->db(), search::MakeCourseEntity());
  for (auto _ : state) {
    auto r = naive.Search("american");
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_NaiveScanSearch)->Arg(1000)->Arg(4000)
    ->Unit(benchmark::kMillisecond)->Iterations(3);

void BM_CloudPrecomputed(benchmark::State& state) {
  World& world = WorldAtScale(18605);
  auto searcher = world.site->MakeSearcher();
  CR_CHECK(searcher.ok());
  auto results = searcher->Search("american");
  CR_CHECK(results.ok());
  CloudBuilder builder(&world.site->index());
  for (auto _ : state) {
    auto cloud = builder.Build(*results);
    benchmark::DoNotOptimize(cloud);
  }
}
BENCHMARK(BM_CloudPrecomputed)->Unit(benchmark::kMillisecond);

void BM_CloudReanalysis(benchmark::State& state) {
  // Ablation baseline: re-tokenize every result document per cloud.
  World& world = WorldAtScale(18605);
  auto searcher = world.site->MakeSearcher();
  CR_CHECK(searcher.ok());
  auto results = searcher->Search("american");
  CR_CHECK(results.ok());
  CloudBuilder builder(&world.site->index());
  for (auto _ : state) {
    auto cloud = builder.BuildByReanalysis(*results);
    benchmark::DoNotOptimize(cloud);
  }
}
BENCHMARK(BM_CloudReanalysis)->Unit(benchmark::kMillisecond);

void BM_IndexBuild(benchmark::State& state) {
  World& world = WorldAtScale(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    search::InvertedIndex index(search::MakeCourseEntity());
    CR_CHECK(index.Build(world.site->db()).ok());
    benchmark::DoNotOptimize(index);
  }
}
BENCHMARK(BM_IndexBuild)->Arg(1000)->Arg(18605)
    ->Unit(benchmark::kMillisecond)->Iterations(2);

void BM_IncrementalRefresh(benchmark::State& state) {
  // Cost of refreshing one course entity after a comment lands, vs the full
  // rebuild above.
  World& world = WorldAtScale(18605);
  auto& index =
      const_cast<search::InvertedIndex&>(world.site->index());
  storage::Value key(world.artifacts().courses[0]);
  for (auto _ : state) {
    CR_CHECK(index.Refresh(world.site->db(), key).ok());
  }
}
BENCHMARK(BM_IncrementalRefresh)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace courserank::bench

int main(int argc, char** argv) {
  courserank::bench::PrintScalingTable();
  courserank::bench::WriteBenchJson();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
