// E5 — the §3.1 challenge "how do we dynamically and efficiently compute
// the data cloud": inverted-index search vs the naive full-scan baseline,
// and clouds from precomputed term vectors vs re-analysis, swept over
// catalog sizes up to the paper scale.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <map>

#include "bench_util.h"
#include "core/data_cloud.h"
#include "search/naive_search.h"
#include "search/searcher.h"

namespace courserank::bench {
namespace {

using cloud::CloudBuilder;
using search::NaiveSearcher;
using search::Searcher;

/// Worlds at several catalog scales, generated once.
World& WorldAtScale(int courses) {
  static std::map<int, World>* worlds = new std::map<int, World>();
  auto it = worlds->find(courses);
  if (it == worlds->end()) {
    gen::GenConfig config = gen::GenConfig::PaperScale();
    double factor = static_cast<double>(courses) /
                    static_cast<double>(config.num_courses);
    config.num_courses = courses;
    config.num_students = std::max<size_t>(
        100, static_cast<size_t>(config.num_students * factor));
    config.num_ratings = static_cast<size_t>(config.num_ratings * factor);
    config.num_comments = static_cast<size_t>(config.num_comments * factor);
    config.num_departments = 26;
    std::fprintf(stderr, "[bench] generating %d-course corpus...\n", courses);
    it = worlds->emplace(courses, BuildWorld(config, true)).first;
  }
  return it->second;
}

void PrintScalingTable() {
  std::printf("\n=== E5: inverted index vs naive scan (query \"american\") "
              "===\n");
  std::printf("  %-10s %12s %14s %10s\n", "courses", "indexed(ms)",
              "naive-scan(ms)", "speedup");
  for (int courses : {1000, 4000, 18605}) {
    World& world = WorldAtScale(courses);
    auto searcher = world.site->MakeSearcher();
    CR_CHECK(searcher.ok());
    NaiveSearcher naive(&world.site->db(), search::MakeCourseEntity());

    auto time_of = [](auto&& fn) {
      auto t0 = std::chrono::steady_clock::now();
      fn();
      auto t1 = std::chrono::steady_clock::now();
      return std::chrono::duration<double, std::milli>(t1 - t0).count();
    };
    double indexed = time_of([&] {
      auto r = searcher->Search("american");
      CR_CHECK(r.ok());
    });
    double scan = time_of([&] {
      auto r = naive.Search("american");
      CR_CHECK(r.ok());
    });
    std::printf("  %-10d %12.3f %14.1f %9.0fx\n", courses, indexed, scan,
                scan / std::max(indexed, 1e-6));
  }
}

void BM_IndexedSearch(benchmark::State& state) {
  World& world = WorldAtScale(static_cast<int>(state.range(0)));
  auto searcher = world.site->MakeSearcher();
  CR_CHECK(searcher.ok());
  for (auto _ : state) {
    auto r = searcher->Search("american");
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_IndexedSearch)->Arg(1000)->Arg(4000)->Arg(18605)
    ->Unit(benchmark::kMillisecond);

void BM_NaiveScanSearch(benchmark::State& state) {
  World& world = WorldAtScale(static_cast<int>(state.range(0)));
  NaiveSearcher naive(&world.site->db(), search::MakeCourseEntity());
  for (auto _ : state) {
    auto r = naive.Search("american");
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_NaiveScanSearch)->Arg(1000)->Arg(4000)
    ->Unit(benchmark::kMillisecond)->Iterations(3);

void BM_CloudPrecomputed(benchmark::State& state) {
  World& world = WorldAtScale(18605);
  auto searcher = world.site->MakeSearcher();
  CR_CHECK(searcher.ok());
  auto results = searcher->Search("american");
  CR_CHECK(results.ok());
  CloudBuilder builder(&world.site->index());
  for (auto _ : state) {
    auto cloud = builder.Build(*results);
    benchmark::DoNotOptimize(cloud);
  }
}
BENCHMARK(BM_CloudPrecomputed)->Unit(benchmark::kMillisecond);

void BM_CloudReanalysis(benchmark::State& state) {
  // Ablation baseline: re-tokenize every result document per cloud.
  World& world = WorldAtScale(18605);
  auto searcher = world.site->MakeSearcher();
  CR_CHECK(searcher.ok());
  auto results = searcher->Search("american");
  CR_CHECK(results.ok());
  CloudBuilder builder(&world.site->index());
  for (auto _ : state) {
    auto cloud = builder.BuildByReanalysis(*results);
    benchmark::DoNotOptimize(cloud);
  }
}
BENCHMARK(BM_CloudReanalysis)->Unit(benchmark::kMillisecond);

void BM_IndexBuild(benchmark::State& state) {
  World& world = WorldAtScale(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    search::InvertedIndex index(search::MakeCourseEntity());
    CR_CHECK(index.Build(world.site->db()).ok());
    benchmark::DoNotOptimize(index);
  }
}
BENCHMARK(BM_IndexBuild)->Arg(1000)->Arg(18605)
    ->Unit(benchmark::kMillisecond)->Iterations(2);

void BM_IncrementalRefresh(benchmark::State& state) {
  // Cost of refreshing one course entity after a comment lands, vs the full
  // rebuild above.
  World& world = WorldAtScale(18605);
  auto& index =
      const_cast<search::InvertedIndex&>(world.site->index());
  storage::Value key(world.artifacts().courses[0]);
  for (auto _ : state) {
    CR_CHECK(index.Refresh(world.site->db(), key).ok());
  }
}
BENCHMARK(BM_IncrementalRefresh)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace courserank::bench

int main(int argc, char** argv) {
  courserank::bench::PrintScalingTable();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
