// E13 — Execution-engine ablations (DESIGN.md §11): morsel-parallel
// FlexRecs/SQL execution, scan pushdown, and bounded top-k. Measures each
// shipped strategy serial vs parallel at paper scale, sweeps the worker
// count, and isolates the single-threaded planner gains (pushdown + TopN
// vs full scan + sort). Writes BENCH_flexrecs.json in the same shape as
// BENCH_search.json ({benchmark, unit, rows:[{name, scale, ns_per_op}],
// metrics}); for the *_threads rows "scale" is the worker count, otherwise
// the course count.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/thread_pool.h"
#include "core/strategies.h"
#include "query/sql_engine.h"

namespace courserank::bench {
namespace {

using query::ExecOptions;
using query::ParamMap;
using query::PlannerOptions;
using query::SqlEngine;
using storage::Value;

constexpr int kPaperCourses = 18605;

ExecOptions SerialExec() {
  ExecOptions o;
  o.parallel = false;
  return o;  // columnar stays on: this is the shipped serial configuration
}

/// Row-at-a-time oracle: columnar kernels and the memoized recommend
/// scorer disabled (DESIGN.md §12 ablation baseline).
ExecOptions RowSerialExec() {
  ExecOptions o;
  o.parallel = false;
  o.columnar = false;
  return o;
}

ExecOptions ParallelExec(ThreadPool* pool = nullptr) {
  ExecOptions o;
  o.parallel = true;
  o.min_parallel_rows = 0;  // benches measure the fan-out itself
  o.pool = pool;
  return o;
}

int64_t StudentWithRatings(const World& world, size_t min_ratings) {
  const auto* ratings = world.site->db().FindTable("Ratings");
  std::map<int64_t, size_t> counts;
  ratings->Scan([&](storage::RowId, const storage::Row& row) {
    ++counts[row[0].AsInt()];
  });
  for (const auto& [student, n] : counts) {
    if (n >= min_ratings) return student;
  }
  return counts.begin()->first;
}

template <typename Fn>
double TimeNs(Fn&& fn, int iters) {
  std::vector<double> samples;
  samples.reserve(iters);
  for (int i = 0; i < iters; ++i) {
    auto t0 = std::chrono::steady_clock::now();
    fn();
    auto t1 = std::chrono::steady_clock::now();
    samples.push_back(
        std::chrono::duration<double, std::nano>(t1 - t0).count());
  }
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

struct JsonRow {
  std::string name;
  int scale;
  double ns_per_op;
};

/// The strategies whose execution is dominated by the recommend scoring
/// loop and the relational operators this PR parallelizes.
std::vector<std::pair<std::string, ParamMap>> StrategyWorkload(
    const World& world) {
  ParamMap by_student{{"student", Value(StudentWithRatings(world, 5))}};
  return {
      {"related_courses",
       {{"title", Value("Introduction to Programming")},
        {"year", Value(int64_t{2006})}}},
      {"user_cf", by_student},
      {"weighted_user_cf", by_student},
      {"grade_cf", by_student},
      {"major_popular", {{"major", Value(world.artifacts().departments[0])}}},
  };
}

/// Machine-readable perf trajectory for future PRs, written to
/// BENCH_flexrecs.json in the working dir.
void WriteBenchJson() {
  auto& world = PaperWorld();
  auto& engine = world.site->flexrecs();
  std::vector<JsonRow> rows;
  auto add = [&](const std::string& name, int scale, double ns) {
    rows.push_back({name, scale, ns});
    std::fprintf(stderr, "  %-40s scale=%-6d %14.0f ns/op\n", name.c_str(),
                 scale, ns);
  };

  std::fprintf(stderr, "\n[bench] BENCH_flexrecs.json rows:\n");

  // Row-oracle vs columnar-serial vs morsel-parallel per strategy, paper
  // scale. The *_row_serial rows isolate the columnar/vectorized win from
  // parallelism (EXPERIMENTS.md E14).
  auto workload = StrategyWorkload(world);
  for (const auto& [name, params] : workload) {
    engine.set_exec_options(RowSerialExec());
    add(name + "_row_serial", kPaperCourses, TimeNs([&] {
          auto rel = engine.RunStrategy(name, params);
          CR_CHECK(rel.ok());
          benchmark::DoNotOptimize(rel);
        }, 9));
    engine.set_exec_options(SerialExec());
    add(name + "_serial", kPaperCourses, TimeNs([&] {
          auto rel = engine.RunStrategy(name, params);
          CR_CHECK(rel.ok());
          benchmark::DoNotOptimize(rel);
        }, 9));
    engine.set_exec_options(ParallelExec());
    add(name + "_parallel", kPaperCourses, TimeNs([&] {
          auto rel = engine.RunStrategy(name, params);
          CR_CHECK(rel.ok());
          benchmark::DoNotOptimize(rel);
        }, 9));
  }

  // Worker-count sweep over the heaviest scoring strategy ("scale" is the
  // worker count here). Each run uses its own pool so the sweep measures
  // pool width, not shared-pool contention.
  for (int threads : {1, 2, 4, 8}) {
    ThreadPool pool(static_cast<size_t>(threads));
    engine.set_exec_options(ParallelExec(&pool));
    add("user_cf_threads", threads, TimeNs([&] {
          auto rel = engine.RunStrategy("user_cf", workload[1].second);
          CR_CHECK(rel.ok());
          benchmark::DoNotOptimize(rel);
        }, 9));
  }
  engine.set_exec_options(ExecOptions{});

  // Single-threaded planner ablation: scan pushdown (predicate + column
  // pruning) and bounded top-k vs full materialization + stable sort.
  const std::string sql =
      "SELECT Title, Units FROM Courses WHERE Units >= 3 "
      "ORDER BY Title LIMIT 10";
  SqlEngine plain(&world.site->db());
  plain.set_planner_options(PlannerOptions{false, false});
  plain.set_exec_options(SerialExec());
  SqlEngine pushed(&world.site->db());
  pushed.set_planner_options(PlannerOptions{true, true});
  pushed.set_exec_options(SerialExec());
  add("sql_topk_scan_plain", kPaperCourses, TimeNs([&] {
        auto rel = plain.Execute(sql);
        CR_CHECK(rel.ok());
        benchmark::DoNotOptimize(rel);
      }, 25));
  add("sql_topk_scan_pushdown", kPaperCourses, TimeNs([&] {
        auto rel = pushed.Execute(sql);
        CR_CHECK(rel.ok());
        benchmark::DoNotOptimize(rel);
      }, 25));
  // Pushdown with the vectorized chunk scan disabled — isolates the
  // compiled-predicate kernel from the planner rewrite.
  SqlEngine pushed_row(&world.site->db());
  pushed_row.set_planner_options(PlannerOptions{true, true});
  pushed_row.set_exec_options(RowSerialExec());
  add("sql_topk_scan_pushdown_row", kPaperCourses, TimeNs([&] {
        auto rel = pushed_row.Execute(sql);
        CR_CHECK(rel.ok());
        benchmark::DoNotOptimize(rel);
      }, 25));

  // Flat-hash vs map-backed operator ablation (EXPERIMENTS.md E16): the
  // same paper-scale hash join and grouped aggregate with the RowKeyTable
  // path on (the shipped default) and off (the historical
  // std::unordered_map build). The names carry the _join_ / _agg_
  // substrings that verify-bench-regression gates with --series.
  const std::string join_sql =
      "SELECT c.Title, r.Score FROM Ratings r "
      "JOIN Courses c ON r.CourseID = c.CourseID WHERE r.Score >= 4";
  const std::string agg_sql =
      "SELECT CourseID, COUNT(*) AS n, AVG(Score) AS mean "
      "FROM Ratings GROUP BY CourseID";
  SqlEngine flat_engine(&world.site->db());
  flat_engine.set_exec_options(SerialExec());
  SqlEngine map_engine(&world.site->db());
  ExecOptions map_exec = SerialExec();
  map_exec.flat_hash = false;
  map_engine.set_exec_options(map_exec);
  add("sql_join_flat", kPaperCourses, TimeNs([&] {
        auto rel = flat_engine.Execute(join_sql);
        CR_CHECK(rel.ok());
        benchmark::DoNotOptimize(rel);
      }, 9));
  add("sql_join_map", kPaperCourses, TimeNs([&] {
        auto rel = map_engine.Execute(join_sql);
        CR_CHECK(rel.ok());
        benchmark::DoNotOptimize(rel);
      }, 9));
  add("sql_agg_flat", kPaperCourses, TimeNs([&] {
        auto rel = flat_engine.Execute(agg_sql);
        CR_CHECK(rel.ok());
        benchmark::DoNotOptimize(rel);
      }, 9));
  add("sql_agg_map", kPaperCourses, TimeNs([&] {
        auto rel = map_engine.Execute(agg_sql);
        CR_CHECK(rel.ok());
        benchmark::DoNotOptimize(rel);
      }, 9));

  // Fusion-tier ablation (EXPERIMENTS.md E18): the fused-pipeline
  // compilation tier on (shipped default) and off at both layers —
  // ExecOptions::fuse=false runs every FusedPipelineNode interpreted and
  // PlannerOptions::fuse_pipelines=false disables join-side conjunct
  // pushdown and Filter+Project collapsing. The names carry the _fused_
  // substring that verify-bench-regression gates with --series.
  {
    ExecOptions no_fuse_exec = SerialExec();
    no_fuse_exec.fuse = false;
    PlannerOptions no_fuse_planner;
    no_fuse_planner.fuse_pipelines = false;
    for (const char* name : {"related_courses", "user_cf"}) {
      const ParamMap& params =
          name == std::string("related_courses") ? workload[0].second
                                                 : workload[1].second;
      engine.set_exec_options(SerialExec());
      engine.set_planner_options(PlannerOptions{});
      add(std::string(name) + "_fused_on", kPaperCourses, TimeNs([&] {
            auto rel = engine.RunStrategy(name, params);
            CR_CHECK(rel.ok());
            benchmark::DoNotOptimize(rel);
          }, 9));
      engine.set_exec_options(no_fuse_exec);
      engine.set_planner_options(no_fuse_planner);
      add(std::string(name) + "_fused_off", kPaperCourses, TimeNs([&] {
            auto rel = engine.RunStrategy(name, params);
            CR_CHECK(rel.ok());
            benchmark::DoNotOptimize(rel);
          }, 9));
    }
    engine.set_exec_options(ExecOptions{});
    engine.set_planner_options(PlannerOptions{});

    // The same ablation on the dominant SQL shape: an inner join whose
    // per-side WHERE conjuncts push into the scans under the fusion tier.
    const std::string fused_sql =
        "SELECT DISTINCT c.CourseID, c.Title FROM Courses c "
        "JOIN Offerings o ON c.CourseID = o.CourseID WHERE o.Year = 2006";
    SqlEngine fused_engine(&world.site->db());
    fused_engine.set_exec_options(SerialExec());
    SqlEngine unfused_engine(&world.site->db());
    unfused_engine.set_planner_options(no_fuse_planner);
    unfused_engine.set_exec_options(no_fuse_exec);
    add("sql_join_fused_on", kPaperCourses, TimeNs([&] {
          auto rel = fused_engine.Execute(fused_sql);
          CR_CHECK(rel.ok());
          benchmark::DoNotOptimize(rel);
        }, 9));
    add("sql_join_fused_off", kPaperCourses, TimeNs([&] {
          auto rel = unfused_engine.Execute(fused_sql);
          CR_CHECK(rel.ok());
          benchmark::DoNotOptimize(rel);
        }, 9));
  }

  // Profiling A/B (EXPERIMENTS.md E15): the same pushdown query and the
  // heaviest strategy with the profile collector attached. "profiled" pays
  // for Push/Pop + NowNs per operator plus the flight-recorder submit;
  // "plain" (above / *_parallel) is the profiling-off baseline and must be
  // unaffected because the collector is a null-pointer check per operator.
  pushed.set_profiling(true);
  add("sql_topk_scan_pushdown_profiled", kPaperCourses, TimeNs([&] {
        auto rel = pushed.Execute(sql);
        CR_CHECK(rel.ok());
        benchmark::DoNotOptimize(rel);
      }, 25));
  pushed.set_profiling(false);
  // Back-to-back pair for the strategy path: the box drifts over a full
  // run, so the off-baseline is re-measured adjacent to the profiled run
  // rather than reusing user_cf_parallel from the loop above.
  engine.set_exec_options(ParallelExec());
  add("user_cf_parallel_ab_plain", kPaperCourses, TimeNs([&] {
        auto rel = engine.RunStrategy("user_cf", workload[1].second);
        CR_CHECK(rel.ok());
        benchmark::DoNotOptimize(rel);
      }, 9));
  engine.set_profiling(true);
  add("user_cf_parallel_profiled", kPaperCourses, TimeNs([&] {
        auto rel = engine.RunStrategy("user_cf", workload[1].second);
        CR_CHECK(rel.ok());
        benchmark::DoNotOptimize(rel);
      }, 9));
  engine.set_profiling(false);
  engine.set_exec_options(ExecOptions{});

  std::FILE* f = std::fopen("BENCH_flexrecs.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "[bench] cannot write BENCH_flexrecs.json\n");
    return;
  }
  std::fprintf(f, "{\n  \"benchmark\": \"bench_exec\",\n"
               "  \"unit\": \"ns/op\",\n  \"rows\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"scale\": %d, \"ns_per_op\": %.0f}%s\n",
                 rows[i].name.c_str(), rows[i].scale, rows[i].ns_per_op,
                 i + 1 < rows.size() ? "," : "");
  }
  // Metrics snapshot of everything the run exercised (exec morsel/pushdown
  // counters included). The benchmark/unit/rows keys and their shapes are
  // a stable contract for cross-PR comparisons.
  std::string metrics = MetricsSnapshotJson();
  std::fprintf(f, "  ],\n  \"metrics\": %s\n}\n", metrics.c_str());
  std::fclose(f);
  std::fprintf(stderr, "[bench] wrote BENCH_flexrecs.json (%zu rows)\n",
               rows.size());
}

void BM_UserCfExec(benchmark::State& state) {
  auto& world = PaperWorld();
  auto& engine = world.site->flexrecs();
  engine.set_exec_options(state.range(0) == 0 ? SerialExec()
                                              : ParallelExec());
  ParamMap params;
  params["student"] = Value(StudentWithRatings(world, 5));
  for (auto _ : state) {
    auto rel = engine.RunStrategy("user_cf", params);
    benchmark::DoNotOptimize(rel);
  }
  engine.set_exec_options(ExecOptions{});
  state.SetLabel(state.range(0) == 0 ? "serial" : "parallel");
}
BENCHMARK(BM_UserCfExec)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_SqlTopKScan(benchmark::State& state) {
  auto& world = PaperWorld();
  SqlEngine engine(&world.site->db());
  engine.set_planner_options(state.range(0) == 0
                                 ? PlannerOptions{false, false}
                                 : PlannerOptions{true, true});
  engine.set_exec_options(SerialExec());
  for (auto _ : state) {
    auto rel = engine.Execute(
        "SELECT Title, Units FROM Courses WHERE Units >= 3 "
        "ORDER BY Title LIMIT 10");
    benchmark::DoNotOptimize(rel);
  }
  state.SetLabel(state.range(0) == 0 ? "plain" : "pushdown+topk");
}
BENCHMARK(BM_SqlTopKScan)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace courserank::bench

int main(int argc, char** argv) {
  courserank::bench::WriteBenchJson();
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
