// E2 — Fig. 3: keyword search "American" over course entities plus the data
// cloud summarizing the result set. Reproduces the result-set shape
// (1160/18605 in the paper) and measures search + cloud latency, including
// the field-weighting ablation (title-boosted BM25F vs flat TF-IDF).

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.h"
#include "core/data_cloud.h"
#include "search/searcher.h"

namespace courserank::bench {
namespace {

using cloud::CloudBuilder;
using cloud::CloudOptions;
using cloud::DataCloud;
using cloud::TermScoring;
using search::ResultSet;
using search::Searcher;

void PrintFig3() {
  auto& world = PaperWorld();
  auto searcher = world.site->MakeSearcher();
  CR_CHECK(searcher.ok());
  auto results = searcher->Search("american");
  CR_CHECK(results.ok());

  std::printf("\n=== E2: Fig. 3 — search \"American\" ===\n");
  std::printf("  paper:    1160 of 18605 courses (6.23%%)\n");
  std::printf("  measured: %zu of %zu courses (%.2f%%)\n", results->size(),
              world.site->index().num_docs(),
              100.0 * static_cast<double>(results->size()) /
                  static_cast<double>(world.site->index().num_docs()));

  std::printf("  top results:\n");
  for (size_t i = 0; i < 5 && i < results->hits.size(); ++i) {
    std::printf("    %.3f  %s\n", results->hits[i].score,
                world.site->index().doc(results->hits[i].doc).display.c_str());
  }

  CloudBuilder builder(&world.site->index());
  DataCloud cloud = builder.Build(*results);
  std::printf("  cloud (%zu terms): %s\n", cloud.terms.size(),
              cloud.ToString().c_str());

  // Paper Fig. 3 concepts that must surface.
  for (const char* expected : {"latin american", "african american",
                               "politics"}) {
    std::printf("  contains \"%s\": %s\n", expected,
                cloud.Contains(expected) ? "yes" : "NO");
  }
}

void BM_SearchAmerican(benchmark::State& state) {
  auto& world = PaperWorld();
  auto searcher = world.site->MakeSearcher();
  CR_CHECK(searcher.ok());
  for (auto _ : state) {
    auto results = searcher->Search("american");
    benchmark::DoNotOptimize(results);
  }
}
BENCHMARK(BM_SearchAmerican)->Unit(benchmark::kMillisecond);

void BM_SearchTwoTerms(benchmark::State& state) {
  auto& world = PaperWorld();
  auto searcher = world.site->MakeSearcher();
  CR_CHECK(searcher.ok());
  for (auto _ : state) {
    auto results = searcher->Search("greek science");
    benchmark::DoNotOptimize(results);
  }
}
BENCHMARK(BM_SearchTwoTerms)->Unit(benchmark::kMillisecond);

void BM_CloudFromResults(benchmark::State& state) {
  auto& world = PaperWorld();
  auto searcher = world.site->MakeSearcher();
  CR_CHECK(searcher.ok());
  auto results = searcher->Search("american");
  CR_CHECK(results.ok());
  CloudBuilder builder(&world.site->index());
  for (auto _ : state) {
    DataCloud cloud = builder.Build(*results);
    benchmark::DoNotOptimize(cloud);
  }
}
BENCHMARK(BM_CloudFromResults)->Unit(benchmark::kMillisecond);

void BM_SearchPlusCloud(benchmark::State& state) {
  // The full Fig. 3 interaction end to end.
  auto& world = PaperWorld();
  auto searcher = world.site->MakeSearcher();
  CR_CHECK(searcher.ok());
  CloudBuilder builder(&world.site->index());
  for (auto _ : state) {
    auto results = searcher->Search("american");
    DataCloud cloud = builder.Build(*results);
    benchmark::DoNotOptimize(cloud);
  }
}
BENCHMARK(BM_SearchPlusCloud)->Unit(benchmark::kMillisecond);

/// Ablation: the §3.1 ranking question — title-weighted BM25F vs flat
/// TF-IDF over the same query.
void BM_RankingMode(benchmark::State& state) {
  auto& world = PaperWorld();
  search::SearchOptions opts;
  opts.ranking = state.range(0) == 0 ? search::RankingMode::kBm25f
                                     : search::RankingMode::kTfIdf;
  Searcher searcher(&world.site->index(), opts);
  for (auto _ : state) {
    auto results = searcher.Search("american");
    benchmark::DoNotOptimize(results);
  }
  state.SetLabel(state.range(0) == 0 ? "bm25f" : "tfidf");
}
BENCHMARK(BM_RankingMode)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

/// Ablation: cloud term scoring modes.
void BM_CloudScoring(benchmark::State& state) {
  auto& world = PaperWorld();
  auto searcher = world.site->MakeSearcher();
  CR_CHECK(searcher.ok());
  auto results = searcher->Search("american");
  CR_CHECK(results.ok());
  CloudOptions opts;
  opts.scoring = static_cast<TermScoring>(state.range(0));
  CloudBuilder builder(&world.site->index(), opts);
  for (auto _ : state) {
    DataCloud cloud = builder.Build(*results);
    benchmark::DoNotOptimize(cloud);
  }
  static const char* kLabels[] = {"tfidf", "tf", "popularity"};
  state.SetLabel(kLabels[state.range(0)]);
}
BENCHMARK(BM_CloudScoring)->Arg(0)->Arg(1)->Arg(2)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace courserank::bench

int main(int argc, char** argv) {
  courserank::bench::PrintFig3();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
