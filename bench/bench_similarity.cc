// E10b — similarity-function throughput: the inner loop of every recommend
// operator, over sparse rating vectors of realistic sizes.

#include <benchmark/benchmark.h>

#include "common/logging.h"
#include "common/rng.h"
#include "core/similarity.h"

namespace courserank::bench {
namespace {

using flexrecs::SimilarityLibrary;
using storage::Value;

/// Sparse rating vector with `n` entries over a 2000-course key space.
Value MakePairs(Rng& rng, size_t n) {
  Value::List list;
  for (size_t i = 0; i < n; ++i) {
    list.push_back(Value(Value::List{
        Value(static_cast<int64_t>(rng.NextBounded(2000))),
        Value(1.0 + static_cast<double>(rng.NextBounded(9)) / 2.0)}));
  }
  return Value(std::move(list));
}

void BM_PairSimilarity(benchmark::State& state) {
  static const char* kFns[] = {"jaccard",       "cosine",       "pearson",
                               "inv_euclidean", "inv_manhattan"};
  const char* name = kFns[state.range(0)];
  SimilarityLibrary library;
  auto fn = library.Get(name);
  CR_CHECK(fn.ok());

  Rng rng(42);
  const size_t vector_size = static_cast<size_t>(state.range(1));
  std::vector<Value> vectors;
  for (int i = 0; i < 64; ++i) vectors.push_back(MakePairs(rng, vector_size));

  size_t i = 0;
  for (auto _ : state) {
    auto r = (*fn)(vectors[i % 64], vectors[(i + 17) % 64]);
    benchmark::DoNotOptimize(r);
    ++i;
  }
  state.SetLabel(std::string(name) + "/n=" +
                 std::to_string(vector_size));
}
BENCHMARK(BM_PairSimilarity)
    ->ArgsProduct({{0, 1, 2, 3, 4}, {8, 32, 128}});

void BM_TitleSimilarity(benchmark::State& state) {
  static const char* kFns[] = {"token_jaccard", "trigram", "levenshtein"};
  const char* name = kFns[state.range(0)];
  SimilarityLibrary library;
  auto fn = library.Get(name);
  CR_CHECK(fn.ok());
  Value a("Introduction to Programming Methodology");
  Value b("Advanced Programming Abstractions and Paradigms");
  for (auto _ : state) {
    auto r = (*fn)(a, b);
    benchmark::DoNotOptimize(r);
  }
  state.SetLabel(name);
}
BENCHMARK(BM_TitleSimilarity)->Arg(0)->Arg(1)->Arg(2);

void BM_RatingOfLookup(benchmark::State& state) {
  SimilarityLibrary library;
  auto fn = library.Get("rating_of");
  CR_CHECK(fn.ok());
  Rng rng(7);
  Value pairs = MakePairs(rng, 32);
  for (auto _ : state) {
    auto r = (*fn)(Value(static_cast<int64_t>(rng.NextBounded(2000))),
                   pairs);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_RatingOfLookup);

}  // namespace
}  // namespace courserank::bench

BENCHMARK_MAIN();
