// Static-analysis latency: the analyzer runs on every Compile() and on the
// admin lint path, so a representative workflow must analyze in well under
// 100µs — cheap enough to never justify skipping it.

#include <benchmark/benchmark.h>

#include "analysis/analyzer.h"
#include "core/strategies.h"
#include "core/workflow_optimizer.h"
#include "core/workflow_parser.h"
#include "social/site.h"

namespace courserank {
namespace {

/// Fixture shared across iterations: canonical catalog + parsed user_cf
/// workflow (the deepest canned strategy: two ε-extends, two recommends,
/// except, topk).
struct AnalysisFixture {
  std::unique_ptr<social::CourseRankSite> site;
  flexrecs::NodePtr workflow;

  static AnalysisFixture& Get() {
    static AnalysisFixture f = [] {
      AnalysisFixture out;
      out.site = std::move(social::CourseRankSite::Create()).value();
      out.workflow = std::move(flexrecs::ParseWorkflow(
                                   flexrecs::strategies::UserCfDsl()))
                         .value();
      return out;
    }();
    return f;
  }
};

/// Analyze the parsed user_cf operator tree (the Compile()-path cost).
void BM_AnalyzeWorkflow(benchmark::State& state) {
  AnalysisFixture& f = AnalysisFixture::Get();
  analysis::Analyzer analyzer(&f.site->db(),
                              &f.site->flexrecs().library());
  for (auto _ : state) {
    analysis::DiagnosticBag diags;
    analyzer.AnalyzeWorkflow(*f.workflow, &diags);
    benchmark::DoNotOptimize(diags);
  }
}
BENCHMARK(BM_AnalyzeWorkflow);

/// Parse + analyze from DSL text (the lint-CLI path cost).
void BM_LintDsl(benchmark::State& state) {
  AnalysisFixture& f = AnalysisFixture::Get();
  analysis::Analyzer analyzer(&f.site->db(),
                              &f.site->flexrecs().library());
  std::string dsl = flexrecs::strategies::UserCfDsl();
  for (auto _ : state) {
    analysis::DiagnosticBag diags = analyzer.LintDsl(dsl);
    benchmark::DoNotOptimize(diags);
  }
}
BENCHMARK(BM_LintDsl);

/// Analyze one joined SQL statement (the per-statement validator cost).
void BM_AnalyzeSql(benchmark::State& state) {
  AnalysisFixture& f = AnalysisFixture::Get();
  analysis::Analyzer analyzer(&f.site->db(), nullptr);
  std::string sql =
      "SELECT c.Title, AVG(r.Score) AS avg_score FROM Courses c JOIN "
      "Ratings r ON c.CourseID = r.CourseID WHERE c.Units >= 3 GROUP BY "
      "c.Title ORDER BY avg_score DESC LIMIT 10";
  for (auto _ : state) {
    analysis::DiagnosticBag diags = analyzer.LintSql(sql);
    benchmark::DoNotOptimize(diags);
  }
}
BENCHMARK(BM_AnalyzeSql);

/// Property inference on top of analysis: the per-node table EXPLAIN
/// STATIC and lint --properties pay for (DESIGN.md §15).
void BM_AnalyzeWorkflowProperties(benchmark::State& state) {
  AnalysisFixture& f = AnalysisFixture::Get();
  analysis::Analyzer analyzer(&f.site->db(),
                              &f.site->flexrecs().library());
  for (auto _ : state) {
    analysis::DiagnosticBag diags;
    analysis::Analyzer::WorkflowAnalysis wa =
        analyzer.AnalyzeWorkflowProperties(*f.workflow, &diags);
    benchmark::DoNotOptimize(wa);
  }
}
BENCHMARK(BM_AnalyzeWorkflowProperties);

/// CR5xx rewrite verification: optimizer pass + double analysis + property
/// comparison — the extra Compile() cost when verify_rewrites is on.
void BM_VerifyWorkflowRewrite(benchmark::State& state) {
  AnalysisFixture& f = AnalysisFixture::Get();
  analysis::Analyzer analyzer(&f.site->db(),
                              &f.site->flexrecs().library());
  flexrecs::NodePtr optimized = flexrecs::OptimizeWorkflow(
      f.workflow->Clone());
  for (auto _ : state) {
    analysis::DiagnosticBag diags;
    bool ok = analyzer.VerifyWorkflowRewrite(*f.workflow, *optimized, &diags);
    benchmark::DoNotOptimize(ok);
  }
}
BENCHMARK(BM_VerifyWorkflowRewrite);

}  // namespace
}  // namespace courserank

BENCHMARK_MAIN();
