// E4 — Fig. 5: the two FlexRecs workflows of the paper. 5(a) ranks courses
// by title similarity to a target course; 5(b) finds students similar to a
// target by inverse Euclidean distance of ratings (via ε-extend) and ranks
// courses by the average rating of the similar students. Reports the
// compiled SQL sequence and measures compile and execute latency.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.h"
#include "core/strategies.h"
#include "core/workflow_optimizer.h"
#include "core/workflow_parser.h"

namespace courserank::bench {
namespace {

using flexrecs::CompiledWorkflow;
using flexrecs::NodePtr;
using flexrecs::ParseWorkflow;
using query::ParamMap;
using storage::Value;

int64_t StudentWithRatings(const World& world, size_t min_ratings) {
  const auto* ratings = world.site->db().FindTable("Ratings");
  std::map<int64_t, size_t> counts;
  ratings->Scan([&](storage::RowId, const storage::Row& row) {
    ++counts[row[0].AsInt()];
  });
  for (const auto& [student, n] : counts) {
    if (n >= min_ratings) return student;
  }
  return counts.begin()->first;
}

void PrintFig5() {
  auto& world = PaperWorld();
  auto& engine = world.site->flexrecs();

  std::printf("\n=== E4: Fig. 5(a) — related-course workflow ===\n");
  auto explain_a = engine.ExplainStrategy("related_courses");
  CR_CHECK(explain_a.ok());
  std::printf("%s", explain_a->c_str());

  ParamMap params_a;
  params_a["title"] = Value("Introduction to Programming");
  params_a["year"] = Value(int64_t{2006});
  auto rel_a = engine.RunStrategy("related_courses", params_a);
  CR_CHECK(rel_a.ok());
  std::printf("related to 'Introduction to Programming' (2006):\n%s\n",
              rel_a->ToString(5).c_str());

  std::printf("=== E4: Fig. 5(b) — collaborative-filtering workflow ===\n");
  auto explain_b = engine.ExplainStrategy("user_cf");
  CR_CHECK(explain_b.ok());
  std::printf("%s", explain_b->c_str());

  int64_t student = StudentWithRatings(world, 5);
  ParamMap params_b;
  params_b["student"] = Value(student);
  auto rel_b = engine.RunStrategy("user_cf", params_b);
  CR_CHECK(rel_b.ok());
  std::printf("recommendations for student %lld:\n%s\n",
              static_cast<long long>(student), rel_b->ToString(5).c_str());
}

void BM_CompileFig5a(benchmark::State& state) {
  auto& world = PaperWorld();
  auto wf = ParseWorkflow(flexrecs::strategies::RelatedCoursesDsl());
  CR_CHECK(wf.ok());
  for (auto _ : state) {
    auto compiled = world.site->flexrecs().Compile(**wf);
    benchmark::DoNotOptimize(compiled);
  }
}
BENCHMARK(BM_CompileFig5a)->Unit(benchmark::kMicrosecond);

void BM_ParseDsl(benchmark::State& state) {
  for (auto _ : state) {
    auto wf = ParseWorkflow(flexrecs::strategies::UserCfDsl());
    benchmark::DoNotOptimize(wf);
  }
}
BENCHMARK(BM_ParseDsl)->Unit(benchmark::kMicrosecond);

void BM_Fig5aRelatedCourses(benchmark::State& state) {
  auto& world = PaperWorld();
  ParamMap params;
  params["title"] = Value("Introduction to Programming");
  params["year"] = Value(int64_t{2006});
  for (auto _ : state) {
    auto rel = world.site->flexrecs().RunStrategy("related_courses", params);
    benchmark::DoNotOptimize(rel);
  }
}
BENCHMARK(BM_Fig5aRelatedCourses)->Unit(benchmark::kMillisecond);

void BM_Fig5bUserCf(benchmark::State& state) {
  // Arg 0 forces the serial execution path; arg 1 enables morsel-parallel
  // scoring and operators even for small intermediates (DESIGN.md §11).
  auto& world = PaperWorld();
  auto& engine = world.site->flexrecs();
  query::ExecOptions exec;
  exec.parallel = state.range(0) != 0;
  exec.min_parallel_rows = 0;
  engine.set_exec_options(exec);
  ParamMap params;
  params["student"] = Value(StudentWithRatings(world, 5));
  for (auto _ : state) {
    auto rel = engine.RunStrategy("user_cf", params);
    benchmark::DoNotOptimize(rel);
  }
  engine.set_exec_options(query::ExecOptions{});
  state.SetLabel(state.range(0) == 0 ? "serial" : "parallel");
}
BENCHMARK(BM_Fig5bUserCf)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_Fig5bWeighted(benchmark::State& state) {
  auto& world = PaperWorld();
  ParamMap params;
  params["student"] = Value(StudentWithRatings(world, 5));
  for (auto _ : state) {
    auto rel =
        world.site->flexrecs().RunStrategy("weighted_user_cf", params);
    benchmark::DoNotOptimize(rel);
  }
}
BENCHMARK(BM_Fig5bWeighted)->Unit(benchmark::kMillisecond);

void BM_GradeCf(benchmark::State& state) {
  auto& world = PaperWorld();
  ParamMap params;
  params["student"] = Value(StudentWithRatings(world, 5));
  for (auto _ : state) {
    auto rel = world.site->flexrecs().RunStrategy("grade_cf", params);
    benchmark::DoNotOptimize(rel);
  }
}
BENCHMARK(BM_GradeCf)->Unit(benchmark::kMillisecond);

void BM_MajorPopular(benchmark::State& state) {
  auto& world = PaperWorld();
  ParamMap params;
  params["major"] = Value(world.artifacts().departments[0]);
  for (auto _ : state) {
    auto rel = world.site->flexrecs().RunStrategy("major_popular", params);
    benchmark::DoNotOptimize(rel);
  }
}
BENCHMARK(BM_MajorPopular)->Unit(benchmark::kMillisecond);

void BM_RecommendMajor(benchmark::State& state) {
  auto& world = PaperWorld();
  ParamMap params;
  params["student"] = Value(StudentWithRatings(world, 5));
  for (auto _ : state) {
    auto rel = world.site->flexrecs().RunStrategy("recommend_major", params);
    benchmark::DoNotOptimize(rel);
  }
}
BENCHMARK(BM_RecommendMajor)->Unit(benchmark::kMillisecond);

void BM_BestQuarter(benchmark::State& state) {
  auto& world = PaperWorld();
  ParamMap params;
  params["course"] = Value(world.artifacts().calculus);
  for (auto _ : state) {
    auto rel = world.site->flexrecs().RunStrategy("best_quarter", params);
    benchmark::DoNotOptimize(rel);
  }
}
BENCHMARK(BM_BestQuarter)->Unit(benchmark::kMillisecond);

/// Workflow-optimizer ablation (§3.2 "How can we optimize the execution of
/// workflows?"): a Select above a Recommend. Unoptimized, the recommend
/// scores all 18,605 courses and the filter runs after; optimized, the
/// Select pushes below the operator and merges into its compiled SQL.
void BM_OptimizerAblation(benchmark::State& state) {
  auto& world = PaperWorld();
  auto wf = ParseWorkflow(R"(
courses = TABLE Courses
target  = SELECT courses WHERE CourseID = $course
scored  = RECOMMEND courses AGAINST target USING token_jaccard(Title, Title) AGG max SCORE s
cheap   = SELECT scored WHERE Units = 3
top     = TOPK cheap BY s DESC LIMIT 10
RETURN top
)");
  CR_CHECK(wf.ok());
  NodePtr plan = state.range(0) == 0
                     ? (*wf)->Clone()
                     : flexrecs::OptimizeWorkflow((*wf)->Clone(), nullptr);
  ParamMap params;
  params["course"] = Value(world.artifacts().intro_programming);
  for (auto _ : state) {
    auto rel = world.site->flexrecs().Run(*plan, params);
    benchmark::DoNotOptimize(rel);
  }
  state.SetLabel(state.range(0) == 0 ? "raw" : "optimized");
}
BENCHMARK(BM_OptimizerAblation)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace courserank::bench

int main(int argc, char** argv) {
  courserank::bench::PrintFig5();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
