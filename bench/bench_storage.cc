// E10a — substrate micro-benchmarks: table scans, index probes, joins, and
// the SQL layer, at the row counts the paper-scale corpus produces.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "core/workflow.h"
#include "query/sql_engine.h"
#include "query/sql_parser.h"

namespace courserank::bench {
namespace {

using query::SqlEngine;
using storage::Value;

void BM_TableScan(benchmark::State& state) {
  auto& world = PaperWorld();
  const auto* enrollment = world.site->db().FindTable("Enrollment");
  for (auto _ : state) {
    int64_t sum = 0;
    enrollment->Scan([&](storage::RowId, const storage::Row& row) {
      sum += row[0].AsInt();
    });
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(enrollment->size()));
}
BENCHMARK(BM_TableScan)->Unit(benchmark::kMillisecond);

void BM_PrimaryKeyProbe(benchmark::State& state) {
  auto& world = PaperWorld();
  const auto* courses = world.site->db().FindTable("Courses");
  size_t i = 0;
  for (auto _ : state) {
    auto rid = courses->FindByPrimaryKey(
        {Value(world.artifacts().courses[i++ %
                                         world.artifacts().courses.size()])});
    benchmark::DoNotOptimize(rid);
  }
}
BENCHMARK(BM_PrimaryKeyProbe);

void BM_SecondaryIndexLookup(benchmark::State& state) {
  auto& world = PaperWorld();
  const auto* ratings = world.site->db().FindTable("Ratings");
  size_t i = 0;
  for (auto _ : state) {
    auto ids = ratings->LookupEqual(
        {"CourseID"},
        {Value(world.artifacts().courses[i++ %
                                         world.artifacts().courses.size()])});
    benchmark::DoNotOptimize(ids);
  }
}
BENCHMARK(BM_SecondaryIndexLookup);

void BM_InsertDelete(benchmark::State& state) {
  // Insert + delete one row so the table size is stable across iterations.
  auto& world = PaperWorld();
  auto* ratings = world.site->db().FindTable("Ratings");
  int64_t student = world.artifacts().active_students[0];
  // A course the student has definitely not rated: use a fresh fake course
  // id... must satisfy FK, so insert via table directly (bench measures the
  // storage layer, not FK checks).
  int64_t course = world.artifacts().courses.back();
  // Ensure no existing rating row blocks the PK.
  if (auto existing = ratings->FindByPrimaryKey({Value(student),
                                                 Value(course)});
      existing.ok()) {
    CR_CHECK(ratings->Delete(*existing).ok());
  }
  for (auto _ : state) {
    auto id = ratings->Insert(
        {Value(student), Value(course), Value(3.0), Value(1)});
    CR_CHECK(id.ok());
    CR_CHECK(ratings->Delete(*id).ok());
  }
}
BENCHMARK(BM_InsertDelete);

void BM_SqlPointQuery(benchmark::State& state) {
  auto& world = PaperWorld();
  SqlEngine sql(&world.site->db());
  query::ParamMap params;
  params["id"] = Value(world.artifacts().intro_programming);
  for (auto _ : state) {
    auto rel = sql.Execute("SELECT * FROM Courses WHERE CourseID = $id",
                           params);
    benchmark::DoNotOptimize(rel);
  }
}
BENCHMARK(BM_SqlPointQuery)->Unit(benchmark::kMillisecond);

void BM_SqlJoinAggregate(benchmark::State& state) {
  auto& world = PaperWorld();
  SqlEngine sql(&world.site->db());
  for (auto _ : state) {
    auto rel = sql.Execute(
        "SELECT c.DepID AS dept, COUNT(*) AS n, AVG(r.Score) AS mean "
        "FROM Ratings r JOIN Courses c ON r.CourseID = c.CourseID "
        "GROUP BY c.DepID ORDER BY n DESC LIMIT 10");
    benchmark::DoNotOptimize(rel);
  }
}
BENCHMARK(BM_SqlJoinAggregate)->Unit(benchmark::kMillisecond);

void BM_SqlParseOnly(benchmark::State& state) {
  for (auto _ : state) {
    auto stmt = query::ParseSql(
        "SELECT a, b, COUNT(*) AS n FROM t JOIN u ON t.x = u.y "
        "WHERE a > 3 AND b LIKE '%z%' GROUP BY a, b ORDER BY n DESC "
        "LIMIT 10");
    benchmark::DoNotOptimize(stmt);
  }
}
BENCHMARK(BM_SqlParseOnly);

void BM_ExtendOperator(benchmark::State& state) {
  // The ε-extend over the full Ratings table — FlexRecs' hot substrate op.
  auto& world = PaperWorld();
  auto wf = std::move(flexrecs::Workflow::Table("Students")
                          .Extend(flexrecs::Workflow::Table("Ratings"),
                                  "SuID", "SuID", {"CourseID", "Score"},
                                  "ratings"))
                .Build().value();
  for (auto _ : state) {
    auto rel = world.site->flexrecs().Run(*wf);
    benchmark::DoNotOptimize(rel);
  }
}
BENCHMARK(BM_ExtendOperator)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace courserank::bench

BENCHMARK_MAIN();
