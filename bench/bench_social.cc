// E9 — the §2.2 social lessons: incentive schemes (Yahoo-style points vs
// CourseRank's capped scheme under a gaming user), question routing
// precision, and comment trust ranking throughput.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.h"
#include "social/comments.h"
#include "social/forum.h"
#include "social/incentives.h"
#include "social/schema.h"

namespace courserank::bench {
namespace {

using social::IncentiveEngine;
using social::IncentiveScheme;
using social::QuestionRouter;

void PrintIncentiveSimulation() {
  std::printf("\n=== E9: incentive schemes under a point farmer ===\n");
  std::printf("  paper: \"Users often try to boost their reputation by "
              "exploiting these schemes.\"\n");
  // A farmer posts 20 junk comments and 20 junk answers in one day; an
  // honest user posts 2 comments and 1 answer per day for 10 days.
  for (bool yahoo : {true, false}) {
    storage::Database db;
    CR_CHECK(social::CreateCourseRankSchema(&db).ok());
    CR_CHECK(db.Insert("Users", {storage::Value(int64_t{1}),
                                 storage::Value("farmer"),
                                 storage::Value("student")})
                 .ok());
    CR_CHECK(db.Insert("Users", {storage::Value(int64_t{2}),
                                 storage::Value("honest"),
                                 storage::Value("student")})
                 .ok());
    IncentiveEngine engine(&db, yahoo ? IncentiveScheme::YahooAnswers()
                                      : IncentiveScheme::CourseRank());
    const char* action = yahoo ? "answer" : "comment";
    for (int i = 0; i < 40; ++i) {
      CR_CHECK(engine.Record(1, action, /*day=*/1).ok());
    }
    for (int day = 1; day <= 10; ++day) {
      for (int i = 0; i < 2; ++i) {
        CR_CHECK(engine.Record(2, action, day).ok());
      }
    }
    std::printf("  %-22s farmer(1 day, 40 posts)=%lld pts, "
                "honest(10 days, 20 posts)=%lld pts\n",
                yahoo ? "yahoo_answers:" : "courserank(capped):",
                static_cast<long long>(*engine.PointsOf(1)),
                static_cast<long long>(*engine.PointsOf(2)));
  }
  std::printf("  (the daily cap bounds what one burst of spam can earn)\n");
}

void PrintRoutingPrecision() {
  auto& world = PaperWorld();
  CR_CHECK(world.site->router().Build().ok());

  // For questions built from a department's vocabulary, a routed candidate
  // is a hit when they took >= 1 course in that department.
  const auto& db = world.site->db();
  const auto* courses = db.FindTable("Courses");
  const auto* enrollment = db.FindTable("Enrollment");

  size_t hits = 0;
  size_t total = 0;
  for (size_t d = 0; d < 8; ++d) {
    int64_t dept = world.artifacts().departments[d];
    // Use two content words from a random course title of the dept.
    auto ids = courses->LookupEqual({"DepID"}, {storage::Value(dept)});
    if (ids.empty()) continue;
    const std::string& title = courses->Get(ids[0])->at(3).AsString();
    auto candidates = world.site->router().Route(
        "who can help with " + title + "?", 5);
    CR_CHECK(candidates.ok());
    for (const auto& candidate : *candidates) {
      ++total;
      for (auto rid : enrollment->LookupEqual(
               {"SuID"}, {storage::Value(candidate.user)})) {
        const storage::Row* row = enrollment->Get(rid);
        auto crow = courses->FindByPrimaryKey({(*row)[1]});
        if (crow.ok() && courses->Get(*crow)->at(1).AsInt() == dept) {
          ++hits;
          break;
        }
      }
    }
  }
  std::printf("\n  question routing: %zu of %zu routed candidates took a "
              "course in the topic department (%.0f%%)\n",
              hits, total,
              100.0 * static_cast<double>(hits) /
                  std::max<size_t>(total, 1));
}

void BM_RouterBuild(benchmark::State& state) {
  auto& world = PaperWorld();
  for (auto _ : state) {
    QuestionRouter router(&world.site->db());
    CR_CHECK(router.Build().ok());
    benchmark::DoNotOptimize(router);
  }
}
BENCHMARK(BM_RouterBuild)->Unit(benchmark::kMillisecond)->Iterations(2);

void BM_RouteQuestion(benchmark::State& state) {
  auto& world = PaperWorld();
  static QuestionRouter* router = [] {
    auto* r = new QuestionRouter(&PaperWorld().site->db());
    CR_CHECK(r->Build().ok());
    return r;
  }();
  for (auto _ : state) {
    auto candidates =
        router->Route("how hard are the algorithms problem sets?", 10);
    benchmark::DoNotOptimize(candidates);
  }
}
BENCHMARK(BM_RouteQuestion)->Unit(benchmark::kMillisecond);

void BM_CommentTrustRanking(benchmark::State& state) {
  auto& world = PaperWorld();
  social::CommentRanker ranker(&world.site->db());
  size_t i = 0;
  for (auto _ : state) {
    auto ranked = ranker.RankedForCourse(
        world.artifacts().courses[i++ % world.artifacts().courses.size()]);
    benchmark::DoNotOptimize(ranked);
  }
}
BENCHMARK(BM_CommentTrustRanking)->Unit(benchmark::kMicrosecond);

void BM_IncentiveRecord(benchmark::State& state) {
  auto& world = PaperWorld();
  int64_t user = world.artifacts().active_students[0];
  int day = 500;
  for (auto _ : state) {
    auto pts = world.site->incentives().Record(user, "rating", ++day);
    benchmark::DoNotOptimize(pts);
  }
}
BENCHMARK(BM_IncentiveRecord)->Unit(benchmark::kMicrosecond);

void BM_Leaderboard(benchmark::State& state) {
  auto& world = PaperWorld();
  for (auto _ : state) {
    auto board = world.site->incentives().Leaderboard(20);
    benchmark::DoNotOptimize(board);
  }
}
BENCHMARK(BM_Leaderboard)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace courserank::bench

int main(int argc, char** argv) {
  courserank::bench::PrintIncentiveSimulation();
  courserank::bench::PrintRoutingPrecision();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
