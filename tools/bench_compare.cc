// bench_compare: diffs two BENCH_*.json files (the {benchmark, unit,
// rows:[{name, scale, ns_per_op}]} shape bench_exec and bench_search write)
// and fails when any series regressed past a threshold.
//
//   bench_compare OLD.json NEW.json [--threshold PCT] [--series a,b,...]
//
// A row is matched by (name, scale). Rows present in only one file are
// reported but never fail the run — benchmarks come and go across PRs.
// --series restricts the comparison to row names containing any of the
// given substrings. Exit codes: 0 ok, 1 regression past threshold,
// 2 usage / parse error.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

namespace {

struct BenchRow {
  std::string name;
  long scale = 0;
  double ns_per_op = 0.0;
};

/// Pulls the quoted string after `"key":` starting at `from`; npos-safe.
bool ScanString(const std::string& text, size_t obj_start, size_t obj_end,
                const char* key, std::string* out) {
  std::string needle = std::string("\"") + key + "\"";
  size_t k = text.find(needle, obj_start);
  if (k == std::string::npos || k >= obj_end) return false;
  size_t q1 = text.find('"', text.find(':', k));
  if (q1 == std::string::npos || q1 >= obj_end) return false;
  size_t q2 = text.find('"', q1 + 1);
  if (q2 == std::string::npos || q2 > obj_end) return false;
  *out = text.substr(q1 + 1, q2 - q1 - 1);
  return true;
}

bool ScanNumber(const std::string& text, size_t obj_start, size_t obj_end,
                const char* key, double* out) {
  std::string needle = std::string("\"") + key + "\"";
  size_t k = text.find(needle, obj_start);
  if (k == std::string::npos || k >= obj_end) return false;
  size_t colon = text.find(':', k);
  if (colon == std::string::npos || colon >= obj_end) return false;
  char* end = nullptr;
  double v = std::strtod(text.c_str() + colon + 1, &end);
  if (end == text.c_str() + colon + 1) return false;
  *out = v;
  return true;
}

/// Tolerant row scanner: finds every {...} object that carries name, scale
/// and ns_per_op. Ignores the metrics blob and any other structure.
bool LoadRows(const char* path, std::vector<BenchRow>* rows) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "bench_compare: cannot open %s\n", path);
    return false;
  }
  std::stringstream ss;
  ss << in.rdbuf();
  std::string text = ss.str();

  size_t pos = 0;
  while ((pos = text.find("\"ns_per_op\"", pos)) != std::string::npos) {
    size_t obj_start = text.rfind('{', pos);
    size_t obj_end = text.find('}', pos);
    if (obj_start == std::string::npos || obj_end == std::string::npos) break;
    BenchRow row;
    double scale = 0.0;
    if (ScanString(text, obj_start, obj_end, "name", &row.name) &&
        ScanNumber(text, obj_start, obj_end, "scale", &scale) &&
        ScanNumber(text, obj_start, obj_end, "ns_per_op", &row.ns_per_op)) {
      row.scale = static_cast<long>(scale);
      rows->push_back(std::move(row));
    }
    pos = obj_end;
  }
  if (rows->empty()) {
    std::fprintf(stderr, "bench_compare: no benchmark rows in %s\n", path);
    return false;
  }
  return true;
}

int Usage() {
  std::fprintf(stderr,
               "usage: bench_compare OLD.json NEW.json [--threshold PCT] "
               "[--series a,b,...]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  const char* old_path = nullptr;
  const char* new_path = nullptr;
  double threshold = 25.0;
  std::vector<std::string> series;

  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threshold") == 0) {
      if (++i >= argc) return Usage();
      char* end = nullptr;
      threshold = std::strtod(argv[i], &end);
      if (end == argv[i] || threshold < 0) return Usage();
    } else if (std::strcmp(argv[i], "--series") == 0) {
      if (++i >= argc) return Usage();
      std::string list = argv[i];
      size_t start = 0;
      while (start <= list.size()) {
        size_t comma = list.find(',', start);
        if (comma == std::string::npos) comma = list.size();
        if (comma > start) series.push_back(list.substr(start, comma - start));
        start = comma + 1;
      }
    } else if (old_path == nullptr) {
      old_path = argv[i];
    } else if (new_path == nullptr) {
      new_path = argv[i];
    } else {
      return Usage();
    }
  }
  if (old_path == nullptr || new_path == nullptr) return Usage();

  std::vector<BenchRow> old_rows, new_rows;
  if (!LoadRows(old_path, &old_rows) || !LoadRows(new_path, &new_rows)) {
    return 2;
  }

  auto selected = [&](const std::string& name) {
    if (series.empty()) return true;
    for (const std::string& s : series) {
      if (name.find(s) != std::string::npos) return true;
    }
    return false;
  };

  std::map<std::pair<std::string, long>, double> baseline;
  for (const BenchRow& r : old_rows) baseline[{r.name, r.scale}] = r.ns_per_op;

  int regressions = 0;
  int compared = 0;
  for (const BenchRow& r : new_rows) {
    if (!selected(r.name)) continue;
    auto it = baseline.find({r.name, r.scale});
    if (it == baseline.end()) {
      std::printf("  new      %-40s scale=%-6ld %14.0f ns/op\n",
                  r.name.c_str(), r.scale, r.ns_per_op);
      continue;
    }
    ++compared;
    double old_ns = it->second;
    double delta_pct =
        old_ns > 0 ? 100.0 * (r.ns_per_op - old_ns) / old_ns : 0.0;
    const char* tag = "ok      ";
    if (delta_pct > threshold) {
      tag = "REGRESS ";
      ++regressions;
    } else if (delta_pct < -threshold) {
      tag = "improved";
    }
    std::printf("  %s %-40s scale=%-6ld %14.0f -> %14.0f ns/op  (%+.1f%%)\n",
                tag, r.name.c_str(), r.scale, old_ns, r.ns_per_op, delta_pct);
    baseline.erase(it);
  }
  for (const auto& [key, ns] : baseline) {
    if (!selected(key.first)) continue;
    std::printf("  removed  %-40s scale=%-6ld %14.0f ns/op\n",
                key.first.c_str(), key.second, ns);
  }

  if (compared == 0) {
    std::fprintf(stderr, "bench_compare: no comparable rows\n");
    return 2;
  }
  if (regressions > 0) {
    std::fprintf(stderr,
                 "bench_compare: %d series regressed more than %.0f%%\n",
                 regressions, threshold);
    return 1;
  }
  std::printf("bench_compare: %d series within %.0f%%\n", compared, threshold);
  return 0;
}
