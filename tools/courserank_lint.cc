// courserank_lint: static analysis for FlexRecs workflow DSL and SQL.
//
// Reads workflow text from files (or stdin when none are given), runs the
// analyzer against the canonical CourseRank catalog, and prints diagnostics
// as text or JSON. Exit code 0 = clean, 1 = errors found, 2 = usage or I/O
// problem — suitable as a CI gate for strategy definitions.
//
//   courserank_lint strategy.wf            lint a workflow file
//   cat strategy.wf | courserank_lint      lint stdin
//   courserank_lint --sql query.sql        lint a SQL statement
//   courserank_lint --json --pedantic f.wf machine-readable, all checks
//   courserank_lint --properties f.wf      per-node inferred plan properties

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/analyzer.h"
#include "analysis/fusion.h"
#include "analysis/plan_properties.h"
#include "core/workflow_parser.h"
#include "query/sql_parser.h"
#include "social/site.h"

namespace {

int Usage(std::ostream& out, int code) {
  out << "usage: courserank_lint [options] [file...]\n"
         "Lints FlexRecs workflow DSL (or SQL) against the CourseRank "
         "schema.\n"
         "Reads stdin when no files are given.\n\n"
         "options:\n"
         "  --sql         treat input as a SQL statement, not workflow DSL\n"
         "  --json        print diagnostics as JSON\n"
         "  --pedantic    enable advisory checks (CR402 unbounded result)\n"
         "  --properties  print the per-node inferred plan properties\n"
         "                (cardinality bounds, keys, sort order, non-NULL\n"
         "                columns — DESIGN.md §15); with --json the\n"
         "                output becomes {\"diagnostics\",\"properties\"}\n"
         "  --help        show this message\n\n"
         "diagnostic codes:\n"
         "  CR0xx  syntax (CR001 DSL parse, CR002 SQL parse)\n"
         "  CR1xx  name resolution (tables, columns, similarity functions)\n"
         "  CR2xx  type errors (predicates, projections, recommend inputs)\n"
         "  CR3xx  predicate analysis (constant folding, contradictions)\n"
         "  CR4xx  plan shape (cartesian products, unbounded results)\n"
         "  CR5xx  rewrite soundness: CR500 unanalyzable after rewrite,\n"
         "         CR501 schema changed, CR502 cardinality bound weakened,\n"
         "         CR503 sort guarantee lost, CR504 uniqueness key lost,\n"
         "         CR505 non-NULL guarantee lost, CR510 runtime static-\n"
         "         claim violation (ExecOptions::check_static_claims)\n";
  return code;
}

}  // namespace

int main(int argc, char** argv) {
  bool as_sql = false;
  bool as_json = false;
  bool pedantic = false;
  bool properties = false;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--sql") {
      as_sql = true;
    } else if (arg == "--json") {
      as_json = true;
    } else if (arg == "--pedantic") {
      pedantic = true;
    } else if (arg == "--properties") {
      properties = true;
    } else if (arg == "--help" || arg == "-h") {
      return Usage(std::cout, 0);
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "unknown option: " << arg << "\n";
      return Usage(std::cerr, 2);
    } else {
      files.push_back(arg);
    }
  }

  // The canonical catalog: schema plus the default similarity library.
  auto site = courserank::social::CourseRankSite::Create();
  if (!site.ok()) {
    std::cerr << "failed to build catalog: " << site.status().message()
              << "\n";
    return 2;
  }
  courserank::analysis::AnalyzerOptions options;
  options.pedantic = pedantic;
  courserank::analysis::Analyzer analyzer(
      &(*site)->db(), &(*site)->flexrecs().library(), options);

  struct Input {
    std::string name;
    std::string text;
  };
  std::vector<Input> inputs;
  if (files.empty()) {
    std::ostringstream buf;
    buf << std::cin.rdbuf();
    inputs.push_back({"<stdin>", buf.str()});
  } else {
    for (const std::string& path : files) {
      std::ifstream in(path);
      if (!in) {
        std::cerr << "cannot read " << path << "\n";
        return 2;
      }
      std::ostringstream buf;
      buf << in.rdbuf();
      inputs.push_back({path, buf.str()});
    }
  }

  bool any_errors = false;
  for (const Input& input : inputs) {
    courserank::analysis::DiagnosticBag diags =
        as_sql ? analyzer.LintSql(input.text)
               : analyzer.LintDsl(input.text);
    any_errors = any_errors || diags.has_errors();
    // The per-node property table re-parses and re-analyzes; cheap (the
    // analyzer is microseconds per workflow) and keeps LintDsl/LintSql as
    // the single source of diagnostics.
    std::vector<courserank::analysis::NodeProperties> nodes;
    std::string fusion;
    if (properties) {
      courserank::analysis::DiagnosticBag scratch;
      if (as_sql) {
        auto parsed = courserank::query::ParseSql(input.text);
        if (parsed.ok()) {
          auto sa = analyzer.AnalyzeStatementProperties(*parsed, &scratch);
          nodes.push_back({0, "statement", sa.schema, sa.props});
        }
      } else {
        auto parsed = courserank::flexrecs::ParseWorkflow(input.text, nullptr);
        if (parsed.ok()) {
          auto wa = analyzer.AnalyzeWorkflowProperties(**parsed, &scratch);
          nodes = std::move(wa.nodes);
          // σ/π/ε chain report (DESIGN.md §16): which runs the engine fuses
          // into single pipeline kernels, and where and why a chain breaks.
          fusion = courserank::analysis::RenderFusionChains(
              courserank::analysis::ExtractFusionChains(**parsed));
        }
      }
    }
    if (as_json) {
      if (properties) {
        std::cout << "{\"diagnostics\":" << diags.ToJson() << ",\"properties\":"
                  << courserank::analysis::PropertiesToJson(nodes) << "}\n";
      } else {
        std::cout << diags.ToJson() << "\n";
      }
      continue;
    }
    if (inputs.size() > 1 && (!diags.empty() || properties)) {
      std::cout << input.name << ":\n";
    }
    std::cout << diags.ToText();
    if (properties) {
      std::cout << courserank::analysis::RenderPropertiesTable(nodes);
      std::cout << fusion;
    }
  }
  return any_errors ? 1 : 0;
}
