# Empty dependencies file for corporate_site.
# This may be replaced when dependencies are built.
