file(REMOVE_RECURSE
  "CMakeFiles/corporate_site.dir/corporate_site.cpp.o"
  "CMakeFiles/corporate_site.dir/corporate_site.cpp.o.d"
  "corporate_site"
  "corporate_site.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/corporate_site.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
