file(REMOVE_RECURSE
  "CMakeFiles/course_discovery.dir/course_discovery.cpp.o"
  "CMakeFiles/course_discovery.dir/course_discovery.cpp.o.d"
  "course_discovery"
  "course_discovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/course_discovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
