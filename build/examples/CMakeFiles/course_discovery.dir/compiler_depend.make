# Empty compiler generated dependencies file for course_discovery.
# This may be replaced when dependencies are built.
