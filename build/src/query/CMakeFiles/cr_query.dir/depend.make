# Empty dependencies file for cr_query.
# This may be replaced when dependencies are built.
