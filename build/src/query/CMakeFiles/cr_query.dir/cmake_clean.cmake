file(REMOVE_RECURSE
  "CMakeFiles/cr_query.dir/expr.cc.o"
  "CMakeFiles/cr_query.dir/expr.cc.o.d"
  "CMakeFiles/cr_query.dir/plan.cc.o"
  "CMakeFiles/cr_query.dir/plan.cc.o.d"
  "CMakeFiles/cr_query.dir/relation.cc.o"
  "CMakeFiles/cr_query.dir/relation.cc.o.d"
  "CMakeFiles/cr_query.dir/sql_engine.cc.o"
  "CMakeFiles/cr_query.dir/sql_engine.cc.o.d"
  "CMakeFiles/cr_query.dir/sql_parser.cc.o"
  "CMakeFiles/cr_query.dir/sql_parser.cc.o.d"
  "libcr_query.a"
  "libcr_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cr_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
