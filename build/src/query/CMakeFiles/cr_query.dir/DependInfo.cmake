
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/query/expr.cc" "src/query/CMakeFiles/cr_query.dir/expr.cc.o" "gcc" "src/query/CMakeFiles/cr_query.dir/expr.cc.o.d"
  "/root/repo/src/query/plan.cc" "src/query/CMakeFiles/cr_query.dir/plan.cc.o" "gcc" "src/query/CMakeFiles/cr_query.dir/plan.cc.o.d"
  "/root/repo/src/query/relation.cc" "src/query/CMakeFiles/cr_query.dir/relation.cc.o" "gcc" "src/query/CMakeFiles/cr_query.dir/relation.cc.o.d"
  "/root/repo/src/query/sql_engine.cc" "src/query/CMakeFiles/cr_query.dir/sql_engine.cc.o" "gcc" "src/query/CMakeFiles/cr_query.dir/sql_engine.cc.o.d"
  "/root/repo/src/query/sql_parser.cc" "src/query/CMakeFiles/cr_query.dir/sql_parser.cc.o" "gcc" "src/query/CMakeFiles/cr_query.dir/sql_parser.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/storage/CMakeFiles/cr_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
