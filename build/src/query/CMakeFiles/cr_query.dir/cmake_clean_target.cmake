file(REMOVE_RECURSE
  "libcr_query.a"
)
