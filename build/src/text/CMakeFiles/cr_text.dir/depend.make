# Empty dependencies file for cr_text.
# This may be replaced when dependencies are built.
