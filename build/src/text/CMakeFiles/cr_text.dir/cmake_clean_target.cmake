file(REMOVE_RECURSE
  "libcr_text.a"
)
