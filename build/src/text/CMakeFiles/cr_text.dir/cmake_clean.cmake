file(REMOVE_RECURSE
  "CMakeFiles/cr_text.dir/analyzer.cc.o"
  "CMakeFiles/cr_text.dir/analyzer.cc.o.d"
  "CMakeFiles/cr_text.dir/stemmer.cc.o"
  "CMakeFiles/cr_text.dir/stemmer.cc.o.d"
  "CMakeFiles/cr_text.dir/stopwords.cc.o"
  "CMakeFiles/cr_text.dir/stopwords.cc.o.d"
  "CMakeFiles/cr_text.dir/tokenizer.cc.o"
  "CMakeFiles/cr_text.dir/tokenizer.cc.o.d"
  "libcr_text.a"
  "libcr_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cr_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
