
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/search/entity.cc" "src/search/CMakeFiles/cr_search.dir/entity.cc.o" "gcc" "src/search/CMakeFiles/cr_search.dir/entity.cc.o.d"
  "/root/repo/src/search/inverted_index.cc" "src/search/CMakeFiles/cr_search.dir/inverted_index.cc.o" "gcc" "src/search/CMakeFiles/cr_search.dir/inverted_index.cc.o.d"
  "/root/repo/src/search/naive_search.cc" "src/search/CMakeFiles/cr_search.dir/naive_search.cc.o" "gcc" "src/search/CMakeFiles/cr_search.dir/naive_search.cc.o.d"
  "/root/repo/src/search/searcher.cc" "src/search/CMakeFiles/cr_search.dir/searcher.cc.o" "gcc" "src/search/CMakeFiles/cr_search.dir/searcher.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/storage/CMakeFiles/cr_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/cr_text.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
