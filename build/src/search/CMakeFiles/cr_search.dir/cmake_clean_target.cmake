file(REMOVE_RECURSE
  "libcr_search.a"
)
