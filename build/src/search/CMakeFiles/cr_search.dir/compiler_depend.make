# Empty compiler generated dependencies file for cr_search.
# This may be replaced when dependencies are built.
