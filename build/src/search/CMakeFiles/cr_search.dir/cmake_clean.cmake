file(REMOVE_RECURSE
  "CMakeFiles/cr_search.dir/entity.cc.o"
  "CMakeFiles/cr_search.dir/entity.cc.o.d"
  "CMakeFiles/cr_search.dir/inverted_index.cc.o"
  "CMakeFiles/cr_search.dir/inverted_index.cc.o.d"
  "CMakeFiles/cr_search.dir/naive_search.cc.o"
  "CMakeFiles/cr_search.dir/naive_search.cc.o.d"
  "CMakeFiles/cr_search.dir/searcher.cc.o"
  "CMakeFiles/cr_search.dir/searcher.cc.o.d"
  "libcr_search.a"
  "libcr_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cr_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
