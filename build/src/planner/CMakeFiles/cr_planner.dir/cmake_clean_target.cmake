file(REMOVE_RECURSE
  "libcr_planner.a"
)
