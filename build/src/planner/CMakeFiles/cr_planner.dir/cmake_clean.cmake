file(REMOVE_RECURSE
  "CMakeFiles/cr_planner.dir/plan.cc.o"
  "CMakeFiles/cr_planner.dir/plan.cc.o.d"
  "CMakeFiles/cr_planner.dir/prereq.cc.o"
  "CMakeFiles/cr_planner.dir/prereq.cc.o.d"
  "CMakeFiles/cr_planner.dir/requirements.cc.o"
  "CMakeFiles/cr_planner.dir/requirements.cc.o.d"
  "CMakeFiles/cr_planner.dir/scheduler.cc.o"
  "CMakeFiles/cr_planner.dir/scheduler.cc.o.d"
  "libcr_planner.a"
  "libcr_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cr_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
