# Empty compiler generated dependencies file for cr_planner.
# This may be replaced when dependencies are built.
