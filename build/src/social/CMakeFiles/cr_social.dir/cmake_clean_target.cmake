file(REMOVE_RECURSE
  "libcr_social.a"
)
