
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/social/auth.cc" "src/social/CMakeFiles/cr_social.dir/auth.cc.o" "gcc" "src/social/CMakeFiles/cr_social.dir/auth.cc.o.d"
  "/root/repo/src/social/comments.cc" "src/social/CMakeFiles/cr_social.dir/comments.cc.o" "gcc" "src/social/CMakeFiles/cr_social.dir/comments.cc.o.d"
  "/root/repo/src/social/forum.cc" "src/social/CMakeFiles/cr_social.dir/forum.cc.o" "gcc" "src/social/CMakeFiles/cr_social.dir/forum.cc.o.d"
  "/root/repo/src/social/grades.cc" "src/social/CMakeFiles/cr_social.dir/grades.cc.o" "gcc" "src/social/CMakeFiles/cr_social.dir/grades.cc.o.d"
  "/root/repo/src/social/incentives.cc" "src/social/CMakeFiles/cr_social.dir/incentives.cc.o" "gcc" "src/social/CMakeFiles/cr_social.dir/incentives.cc.o.d"
  "/root/repo/src/social/model.cc" "src/social/CMakeFiles/cr_social.dir/model.cc.o" "gcc" "src/social/CMakeFiles/cr_social.dir/model.cc.o.d"
  "/root/repo/src/social/privacy.cc" "src/social/CMakeFiles/cr_social.dir/privacy.cc.o" "gcc" "src/social/CMakeFiles/cr_social.dir/privacy.cc.o.d"
  "/root/repo/src/social/schema.cc" "src/social/CMakeFiles/cr_social.dir/schema.cc.o" "gcc" "src/social/CMakeFiles/cr_social.dir/schema.cc.o.d"
  "/root/repo/src/social/site.cc" "src/social/CMakeFiles/cr_social.dir/site.cc.o" "gcc" "src/social/CMakeFiles/cr_social.dir/site.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/cr_core.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/cr_query.dir/DependInfo.cmake"
  "/root/repo/build/src/search/CMakeFiles/cr_search.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/cr_text.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/cr_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
