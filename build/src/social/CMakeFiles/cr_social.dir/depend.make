# Empty dependencies file for cr_social.
# This may be replaced when dependencies are built.
