file(REMOVE_RECURSE
  "CMakeFiles/cr_social.dir/auth.cc.o"
  "CMakeFiles/cr_social.dir/auth.cc.o.d"
  "CMakeFiles/cr_social.dir/comments.cc.o"
  "CMakeFiles/cr_social.dir/comments.cc.o.d"
  "CMakeFiles/cr_social.dir/forum.cc.o"
  "CMakeFiles/cr_social.dir/forum.cc.o.d"
  "CMakeFiles/cr_social.dir/grades.cc.o"
  "CMakeFiles/cr_social.dir/grades.cc.o.d"
  "CMakeFiles/cr_social.dir/incentives.cc.o"
  "CMakeFiles/cr_social.dir/incentives.cc.o.d"
  "CMakeFiles/cr_social.dir/model.cc.o"
  "CMakeFiles/cr_social.dir/model.cc.o.d"
  "CMakeFiles/cr_social.dir/privacy.cc.o"
  "CMakeFiles/cr_social.dir/privacy.cc.o.d"
  "CMakeFiles/cr_social.dir/schema.cc.o"
  "CMakeFiles/cr_social.dir/schema.cc.o.d"
  "CMakeFiles/cr_social.dir/site.cc.o"
  "CMakeFiles/cr_social.dir/site.cc.o.d"
  "libcr_social.a"
  "libcr_social.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cr_social.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
