file(REMOVE_RECURSE
  "CMakeFiles/cr_core.dir/baseline_recommender.cc.o"
  "CMakeFiles/cr_core.dir/baseline_recommender.cc.o.d"
  "CMakeFiles/cr_core.dir/data_cloud.cc.o"
  "CMakeFiles/cr_core.dir/data_cloud.cc.o.d"
  "CMakeFiles/cr_core.dir/flexrecs_engine.cc.o"
  "CMakeFiles/cr_core.dir/flexrecs_engine.cc.o.d"
  "CMakeFiles/cr_core.dir/similarity.cc.o"
  "CMakeFiles/cr_core.dir/similarity.cc.o.d"
  "CMakeFiles/cr_core.dir/strategies.cc.o"
  "CMakeFiles/cr_core.dir/strategies.cc.o.d"
  "CMakeFiles/cr_core.dir/workflow.cc.o"
  "CMakeFiles/cr_core.dir/workflow.cc.o.d"
  "CMakeFiles/cr_core.dir/workflow_optimizer.cc.o"
  "CMakeFiles/cr_core.dir/workflow_optimizer.cc.o.d"
  "CMakeFiles/cr_core.dir/workflow_parser.cc.o"
  "CMakeFiles/cr_core.dir/workflow_parser.cc.o.d"
  "libcr_core.a"
  "libcr_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cr_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
