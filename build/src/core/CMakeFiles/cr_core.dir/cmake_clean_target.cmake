file(REMOVE_RECURSE
  "libcr_core.a"
)
