
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/baseline_recommender.cc" "src/core/CMakeFiles/cr_core.dir/baseline_recommender.cc.o" "gcc" "src/core/CMakeFiles/cr_core.dir/baseline_recommender.cc.o.d"
  "/root/repo/src/core/data_cloud.cc" "src/core/CMakeFiles/cr_core.dir/data_cloud.cc.o" "gcc" "src/core/CMakeFiles/cr_core.dir/data_cloud.cc.o.d"
  "/root/repo/src/core/flexrecs_engine.cc" "src/core/CMakeFiles/cr_core.dir/flexrecs_engine.cc.o" "gcc" "src/core/CMakeFiles/cr_core.dir/flexrecs_engine.cc.o.d"
  "/root/repo/src/core/similarity.cc" "src/core/CMakeFiles/cr_core.dir/similarity.cc.o" "gcc" "src/core/CMakeFiles/cr_core.dir/similarity.cc.o.d"
  "/root/repo/src/core/strategies.cc" "src/core/CMakeFiles/cr_core.dir/strategies.cc.o" "gcc" "src/core/CMakeFiles/cr_core.dir/strategies.cc.o.d"
  "/root/repo/src/core/workflow.cc" "src/core/CMakeFiles/cr_core.dir/workflow.cc.o" "gcc" "src/core/CMakeFiles/cr_core.dir/workflow.cc.o.d"
  "/root/repo/src/core/workflow_optimizer.cc" "src/core/CMakeFiles/cr_core.dir/workflow_optimizer.cc.o" "gcc" "src/core/CMakeFiles/cr_core.dir/workflow_optimizer.cc.o.d"
  "/root/repo/src/core/workflow_parser.cc" "src/core/CMakeFiles/cr_core.dir/workflow_parser.cc.o" "gcc" "src/core/CMakeFiles/cr_core.dir/workflow_parser.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/query/CMakeFiles/cr_query.dir/DependInfo.cmake"
  "/root/repo/build/src/search/CMakeFiles/cr_search.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/cr_text.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/cr_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
