file(REMOVE_RECURSE
  "CMakeFiles/cr_gen.dir/generator.cc.o"
  "CMakeFiles/cr_gen.dir/generator.cc.o.d"
  "CMakeFiles/cr_gen.dir/vocab.cc.o"
  "CMakeFiles/cr_gen.dir/vocab.cc.o.d"
  "libcr_gen.a"
  "libcr_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cr_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
