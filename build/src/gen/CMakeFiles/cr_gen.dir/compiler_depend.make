# Empty compiler generated dependencies file for cr_gen.
# This may be replaced when dependencies are built.
