file(REMOVE_RECURSE
  "libcr_gen.a"
)
