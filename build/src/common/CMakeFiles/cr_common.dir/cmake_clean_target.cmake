file(REMOVE_RECURSE
  "libcr_common.a"
)
