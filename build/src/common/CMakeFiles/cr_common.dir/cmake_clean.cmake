file(REMOVE_RECURSE
  "CMakeFiles/cr_common.dir/rng.cc.o"
  "CMakeFiles/cr_common.dir/rng.cc.o.d"
  "CMakeFiles/cr_common.dir/status.cc.o"
  "CMakeFiles/cr_common.dir/status.cc.o.d"
  "CMakeFiles/cr_common.dir/strings.cc.o"
  "CMakeFiles/cr_common.dir/strings.cc.o.d"
  "CMakeFiles/cr_common.dir/term.cc.o"
  "CMakeFiles/cr_common.dir/term.cc.o.d"
  "libcr_common.a"
  "libcr_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cr_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
