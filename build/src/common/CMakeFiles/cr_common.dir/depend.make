# Empty dependencies file for cr_common.
# This may be replaced when dependencies are built.
