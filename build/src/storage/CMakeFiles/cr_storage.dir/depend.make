# Empty dependencies file for cr_storage.
# This may be replaced when dependencies are built.
