file(REMOVE_RECURSE
  "CMakeFiles/cr_storage.dir/csv.cc.o"
  "CMakeFiles/cr_storage.dir/csv.cc.o.d"
  "CMakeFiles/cr_storage.dir/database.cc.o"
  "CMakeFiles/cr_storage.dir/database.cc.o.d"
  "CMakeFiles/cr_storage.dir/schema.cc.o"
  "CMakeFiles/cr_storage.dir/schema.cc.o.d"
  "CMakeFiles/cr_storage.dir/snapshot.cc.o"
  "CMakeFiles/cr_storage.dir/snapshot.cc.o.d"
  "CMakeFiles/cr_storage.dir/table.cc.o"
  "CMakeFiles/cr_storage.dir/table.cc.o.d"
  "CMakeFiles/cr_storage.dir/value.cc.o"
  "CMakeFiles/cr_storage.dir/value.cc.o.d"
  "libcr_storage.a"
  "libcr_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cr_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
