file(REMOVE_RECURSE
  "libcr_storage.a"
)
