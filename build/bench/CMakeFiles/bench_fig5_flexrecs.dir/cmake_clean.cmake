file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_flexrecs.dir/bench_fig5_flexrecs.cc.o"
  "CMakeFiles/bench_fig5_flexrecs.dir/bench_fig5_flexrecs.cc.o.d"
  "bench_fig5_flexrecs"
  "bench_fig5_flexrecs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_flexrecs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
