# Empty dependencies file for bench_fig5_flexrecs.
# This may be replaced when dependencies are built.
