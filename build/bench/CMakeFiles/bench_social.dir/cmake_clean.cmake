file(REMOVE_RECURSE
  "CMakeFiles/bench_social.dir/bench_social.cc.o"
  "CMakeFiles/bench_social.dir/bench_social.cc.o.d"
  "bench_social"
  "bench_social.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_social.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
