file(REMOVE_RECURSE
  "CMakeFiles/bench_flexrecs_vs_hardcoded.dir/bench_flexrecs_vs_hardcoded.cc.o"
  "CMakeFiles/bench_flexrecs_vs_hardcoded.dir/bench_flexrecs_vs_hardcoded.cc.o.d"
  "bench_flexrecs_vs_hardcoded"
  "bench_flexrecs_vs_hardcoded.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_flexrecs_vs_hardcoded.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
