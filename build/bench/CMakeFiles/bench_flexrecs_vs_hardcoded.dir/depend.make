# Empty dependencies file for bench_flexrecs_vs_hardcoded.
# This may be replaced when dependencies are built.
