file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_cloud.dir/bench_fig3_cloud.cc.o"
  "CMakeFiles/bench_fig3_cloud.dir/bench_fig3_cloud.cc.o.d"
  "bench_fig3_cloud"
  "bench_fig3_cloud.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_cloud.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
