# Empty dependencies file for bench_fig3_cloud.
# This may be replaced when dependencies are built.
