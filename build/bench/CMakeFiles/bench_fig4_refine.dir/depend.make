# Empty dependencies file for bench_fig4_refine.
# This may be replaced when dependencies are built.
