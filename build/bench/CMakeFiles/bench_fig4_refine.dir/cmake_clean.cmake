file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_refine.dir/bench_fig4_refine.cc.o"
  "CMakeFiles/bench_fig4_refine.dir/bench_fig4_refine.cc.o.d"
  "bench_fig4_refine"
  "bench_fig4_refine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_refine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
