# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/storage_value_test[1]_include.cmake")
include("/root/repo/build/tests/storage_table_test[1]_include.cmake")
include("/root/repo/build/tests/query_expr_test[1]_include.cmake")
include("/root/repo/build/tests/query_plan_test[1]_include.cmake")
include("/root/repo/build/tests/sql_test[1]_include.cmake")
include("/root/repo/build/tests/text_test[1]_include.cmake")
include("/root/repo/build/tests/search_test[1]_include.cmake")
include("/root/repo/build/tests/cloud_test[1]_include.cmake")
include("/root/repo/build/tests/similarity_test[1]_include.cmake")
include("/root/repo/build/tests/workflow_test[1]_include.cmake")
include("/root/repo/build/tests/strategies_test[1]_include.cmake")
include("/root/repo/build/tests/social_test[1]_include.cmake")
include("/root/repo/build/tests/planner_test[1]_include.cmake")
include("/root/repo/build/tests/gen_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/optimizer_test[1]_include.cmake")
include("/root/repo/build/tests/snapshot_test[1]_include.cmake")
include("/root/repo/build/tests/scheduler_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
