
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/snapshot_test.cc" "tests/CMakeFiles/snapshot_test.dir/snapshot_test.cc.o" "gcc" "tests/CMakeFiles/snapshot_test.dir/snapshot_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gen/CMakeFiles/cr_gen.dir/DependInfo.cmake"
  "/root/repo/build/src/planner/CMakeFiles/cr_planner.dir/DependInfo.cmake"
  "/root/repo/build/src/social/CMakeFiles/cr_social.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/cr_core.dir/DependInfo.cmake"
  "/root/repo/build/src/search/CMakeFiles/cr_search.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/cr_text.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/cr_query.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/cr_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
