#ifndef COURSERANK_QUERY_SQL_ENGINE_H_
#define COURSERANK_QUERY_SQL_ENGINE_H_

#include <functional>
#include <string>
#include <utility>

#include "common/status.h"
#include "query/plan.h"
#include "query/profile.h"
#include "query/sql_ast.h"
#include "storage/database.h"

namespace courserank::query {

/// Executes SQL text against a Database. SELECTs are planned into the
/// physical operators of plan.h; INSERT/UPDATE/DELETE/CREATE TABLE mutate
/// the database and return a one-row relation with an `affected` count.
///
/// This is the "conventional DBMS" the FlexRecs engine compiles workflows
/// into (paper §3.2).
/// Planner rewrites that change the plan shape but never the result; both
/// on by default, individually switchable for A/B tests and benchmarks.
struct PlannerOptions {
  /// Push single-table WHERE predicates, the referenced-column subset, and
  /// ORDER-BY-free LIMITs into the table scan.
  bool scan_pushdown = true;
  /// Fuse ORDER BY + LIMIT into a bounded top-k heap (TopN) instead of a
  /// full sort.
  bool bounded_topk = true;
  /// Elide a DISTINCT whose input already carries a uniqueness key entirely
  /// inside the visible select list — the static properties prove the dedup
  /// is a no-op (DESIGN.md §15).
  bool distinct_elision = true;
  /// Build the inner-join hash table over the left input when static
  /// cardinality bounds say it is much smaller than the right relation
  /// (JoinBuildSide::kLeft — output stays byte-identical).
  bool join_build_side = true;
  /// Fusion tier (DESIGN.md §16): push per-side WHERE conjuncts of inner
  /// joins into the individual table scans, and collapse the residual
  /// Filter + bare-column Project above a join into one FusedPipelineNode.
  bool fuse_pipelines = true;
  /// Rewrite-soundness check (CR5xx): after planning, re-plan with every
  /// rewrite off and verify the optimized root never weakens the baseline's
  /// static claims. On in debug builds — the configuration ctest runs — and
  /// off in release, where the double planning would tax the hot path.
#ifdef NDEBUG
  bool verify_rewrites = false;
#else
  bool verify_rewrites = true;
#endif
};

class SqlEngine {
 public:
  /// Inspects a parsed statement before execution; a non-OK status rejects
  /// the statement. Installed by layers that know how to validate (the
  /// FlexRecs engine plugs in the static analyzer) without cr_query
  /// depending on them.
  using Validator = std::function<Status(const Statement&)>;

  explicit SqlEngine(storage::Database* db) : db_(db) {}

  void set_validator(Validator v) { validator_ = std::move(v); }

  /// Planner rewrites applied by PlanSelect.
  void set_planner_options(const PlannerOptions& o) { planner_ = o; }
  const PlannerOptions& planner_options() const { return planner_; }

  /// Execution options stamped into every ExecContext this engine creates.
  void set_exec_options(const ExecOptions& o) { exec_ = o; }
  const ExecOptions& exec_options() const { return exec_; }

  /// Always-on profiling: every statement this engine executes collects a
  /// QueryProfile and submits it to the process-wide ProfileRecorder.
  /// Off (the default), profiling costs one null check per operator.
  void set_profiling(bool on) { profiling_ = on; }
  bool profiling() const { return profiling_; }

  /// Parses, plans, and executes one statement. Statements prefixed with
  /// `EXPLAIN` (plan only) or `EXPLAIN ANALYZE` (execute + profile) return
  /// a one-column `plan` relation, one row per rendered line.
  Result<Relation> Execute(const std::string& sql, const ParamMap& params = {});

  /// Executes one statement, collecting its profile into `profile`
  /// (statement text, total wall ns, and for SELECTs the per-operator plan
  /// tree). Collect-only: nothing is submitted to the ProfileRecorder —
  /// callers that embed the profile elsewhere (FlexRecs workflow steps) use
  /// this. No EXPLAIN prefix handling.
  Result<Relation> Execute(const std::string& sql, const ParamMap& params,
                           QueryProfile* profile);

  /// Executes one statement with profiling and submits the profile to
  /// ProfileRecorder::Default() (feeding /debug/profiles and the slow-query
  /// log). `out` optionally receives a copy-free view of the same profile.
  Result<Relation> ExecuteProfiled(const std::string& sql,
                                   const ParamMap& params = {},
                                   QueryProfile* out = nullptr);

  /// Executes `sql` and renders the profiled plan: the Explain() tree
  /// annotated per node with rows in/out, selectivity, self time and % of
  /// total, morsel fan-out, and columnar/pushdown flags.
  Result<std::string> ExplainAnalyze(const std::string& sql,
                                     const ParamMap& params = {});

  /// Plans a SELECT statement into a physical plan without executing it.
  Result<PlanPtr> PlanSelect(const SelectStmt& stmt) const;

  /// Parses a SELECT and returns its physical plan tree rendering.
  Result<std::string> Explain(const std::string& sql);

  /// Parses a SELECT and renders its plan tree annotated per node with the
  /// planner's StaticClaims ("EXPLAIN STATIC <select>" routes here).
  Result<std::string> ExplainStatic(const std::string& sql);

  storage::Database* db() { return db_; }

 private:
  /// The statement pipeline shared by all Execute flavors: parse, validate,
  /// plan, run. With `profile` non-null, SELECT plans execute under a
  /// ProfileCollector and `profile->root` receives the operator tree (DML
  /// leaves it null); the caller stamps statement text and total wall time.
  Result<Relation> ExecuteStatement(const std::string& sql,
                                    const ParamMap& params,
                                    QueryProfile* profile);

  /// PlanSelect with an explicit option set (PlanSelect passes planner_;
  /// the rewrite verifier passes the all-off baseline).
  Result<PlanPtr> PlanSelectWith(const SelectStmt& stmt,
                                 const PlannerOptions& opts) const;

  /// CR5xx rewrite-soundness check: re-plans `stmt` with every rewrite off
  /// and fails when `optimized`'s root claims weaken the baseline's (raised
  /// cardinality bound, lost sort/key/non-NULL guarantee).
  Status VerifyPlannedRewrites(const SelectStmt& stmt,
                               const PlanNode& optimized) const;

  Result<Relation> ExecuteInsert(const InsertStmt& stmt,
                                 const ParamMap& params);
  Result<Relation> ExecuteUpdate(const UpdateStmt& stmt,
                                 const ParamMap& params);
  Result<Relation> ExecuteDelete(const DeleteStmt& stmt,
                                 const ParamMap& params);
  Result<Relation> ExecuteCreateTable(const CreateTableStmt& stmt);

  storage::Database* db_;
  Validator validator_;
  PlannerOptions planner_;
  ExecOptions exec_;
  bool profiling_ = false;
};

}  // namespace courserank::query

#endif  // COURSERANK_QUERY_SQL_ENGINE_H_
