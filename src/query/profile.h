#ifndef COURSERANK_QUERY_PROFILE_H_
#define COURSERANK_QUERY_PROFILE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace courserank::query {

/// Per-operator measurements for one execution of one plan node
/// (DESIGN.md §13). The tree mirrors the Explain() tree exactly: `describe`
/// is the same line Explain() prints for the node and `children` follow the
/// same order, so a rendered profile is the annotated Explain output.
struct PlanProfileNode {
  std::string describe;

  /// Inclusive wall time of Execute on this node, children included.
  uint64_t wall_ns = 0;
  /// Rows this operator consumed: the sum of its children's rows_out, or —
  /// for table scans — the rows examined in storage (pushed-down predicates
  /// examine rows they never materialize).
  uint64_t rows_in = 0;
  uint64_t rows_out = 0;

  /// Morsel fan-out this operator ran with; 1 is the serial path.
  uint64_t morsels = 1;
  bool parallel = false;
  /// Took a vectorized path: compiled-predicate kernel, chunked scan, or
  /// the memoized recommend scorer.
  bool columnar = false;
  /// Scan executed pushed-down work (predicate / columns / limit).
  bool pushdown = false;
  /// Dictionary-encoded comparisons the vectorized scan answered by id.
  uint64_t dict_hits = 0;
  /// RowKeyTable stats for hash-keyed operators (join / aggregate /
  /// distinct / union / ε-extend on the flat_hash path): distinct keys
  /// built, probe lookups, slot inspections across build + probe, and the
  /// longest RowRefList chain (rows under the most-duplicated key).
  uint64_t hash_entries = 0;
  uint64_t hash_probes = 0;
  uint64_t hash_steps = 0;
  uint64_t hash_max_chain = 0;
  bool error = false;

  std::vector<std::unique_ptr<PlanProfileNode>> children;

  /// Operator name: `describe` up to its first '('.
  std::string op() const;
  /// Wall time minus the children's wall time, clamped at zero. Summing
  /// self_ns over a tree telescopes back to the root's wall_ns exactly.
  uint64_t self_ns() const;
};

/// Builds a PlanProfileNode tree as a plan executes. PlanNode::Execute
/// pushes a node before running and pops it after, so the collector's stack
/// mirrors the live Execute recursion — which stays on one thread by the
/// morsel contract (workers run operator bodies, never Execute), so no
/// synchronization is needed. Popping a child credits its rows_out to the
/// parent's rows_in.
class ProfileCollector {
 public:
  ProfileCollector() = default;
  ProfileCollector(const ProfileCollector&) = delete;
  ProfileCollector& operator=(const ProfileCollector&) = delete;

  PlanProfileNode* Push(std::string describe);
  void Pop(PlanProfileNode* node, uint64_t wall_ns, uint64_t rows_out,
           bool error);

  /// The node whose Execute is currently running (operators use it to stamp
  /// morsel/columnar annotations); null outside any Execute.
  PlanProfileNode* current() {
    return stack_.empty() ? nullptr : stack_.back();
  }

  /// Detaches and returns the most recently completed root, or null when
  /// nothing finished. Plans executed back-to-back on one collector each
  /// produce their own root.
  std::unique_ptr<PlanProfileNode> TakeRoot();

 private:
  std::vector<std::unique_ptr<PlanProfileNode>> roots_;
  std::vector<PlanProfileNode*> stack_;
};

/// One profiled statement: the plan profile plus end-to-end wall time
/// (parse + plan + execute), which is what the per-node percentages are
/// computed against.
struct QueryProfile {
  std::string statement;
  uint64_t total_ns = 0;
  std::unique_ptr<PlanProfileNode> root;  // null for DML / failed parses

  /// Annotated Explain-shaped text: one header line, then one line per
  /// operator with rows in/out, selectivity, self time, and % of total.
  std::string Render() const;
  std::string RenderJson() const;
};

/// "412ns" / "12.5us" / "3.1ms" / "1.24s" — fixed render for profiles.
std::string FormatNs(uint64_t ns);

/// Appends the annotated text rendering of `node` (and its subtree) at
/// `indent`, with self-time percentages against `total_ns`.
void AppendProfileText(const PlanProfileNode& node, uint64_t total_ns,
                       int indent, std::string* out);

/// Appends the JSON object rendering of `node` (and its subtree).
void AppendProfileJson(const PlanProfileNode& node, std::string* out);

}  // namespace courserank::query

#endif  // COURSERANK_QUERY_PROFILE_H_
