#ifndef COURSERANK_QUERY_RELATION_H_
#define COURSERANK_QUERY_RELATION_H_

#include <string>
#include <vector>

#include "storage/schema.h"
#include "storage/value.h"

namespace courserank::query {

using storage::Row;
using storage::Schema;
using storage::Value;

/// A materialized intermediate result: schema plus row set. Every plan
/// operator consumes and produces Relations.
struct Relation {
  Schema schema;
  std::vector<Row> rows;

  size_t size() const { return rows.size(); }
  bool empty() const { return rows.empty(); }

  /// ASCII table for examples and debugging; prints at most `max_rows` rows
  /// followed by a count line.
  std::string ToString(size_t max_rows = 20) const;
};

}  // namespace courserank::query

#endif  // COURSERANK_QUERY_RELATION_H_
