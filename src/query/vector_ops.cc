#include "query/vector_ops.h"

#include <algorithm>
#include <optional>
#include <string>
#include <utility>

#include "storage/column.h"

namespace courserank::query {
namespace {

using storage::ColumnChunk;
using storage::ColumnEncoding;
using storage::ColumnVector;
using storage::Row;
using storage::StringDictionary;
using storage::Value;
using storage::ValueType;

// Sign of a double-space difference. Callers handle NaN explicitly before
// using it, so the loops order exactly like Value::Compare's total order.
inline int Sign(double d) { return d < 0 ? -1 : (d > 0 ? 1 : 0); }

inline bool Decide(BinaryOp op, int c) {
  switch (op) {
    case BinaryOp::kEq:
      return c == 0;
    case BinaryOp::kNe:
      return c != 0;
    case BinaryOp::kLt:
      return c < 0;
    case BinaryOp::kLe:
      return c <= 0;
    case BinaryOp::kGt:
      return c > 0;
    case BinaryOp::kGe:
      return c >= 0;
    default:
      return false;  // unreachable: only comparisons compile
  }
}

/// Mirror a comparison across `=`: `lit OP col` becomes `col Flip(OP) lit`.
inline BinaryOp Flip(BinaryOp op) {
  switch (op) {
    case BinaryOp::kLt:
      return BinaryOp::kGt;
    case BinaryOp::kLe:
      return BinaryOp::kGe;
    case BinaryOp::kGt:
      return BinaryOp::kLt;
    case BinaryOp::kGe:
      return BinaryOp::kLe;
    default:
      return op;  // Eq/Ne are symmetric
  }
}

/// Predicate whose value is the same for every row (e.g. a comparison
/// against a NULL literal, or a literal TRUE/FALSE).
class ConstPred final : public CompiledPredicate {
 public:
  explicit ConstPred(uint8_t state) : state_(state) {}

  uint8_t EvalRow(const Row&) const override { return state_; }

  void EvalChunk(const ColumnChunk& chunk, const StringDictionary&,
                 uint8_t* out, VectorStats*) const override {
    std::fill(out, out + chunk.size(), state_);
  }

 private:
  uint8_t state_;
};

/// `col OP lit` where lit is a non-null constant. Never errors: comparison
/// over Value::Compare is total across types.
class CmpPred final : public CompiledPredicate {
 public:
  CmpPred(size_t col, BinaryOp op, Value lit)
      : col_(col), op_(op), lit_(std::move(lit)) {}

  uint8_t EvalRow(const Row& row) const override {
    const Value& v = row[col_];
    if (v.is_null()) return kSelNull;
    return Decide(op_, v.Compare(lit_)) ? kSelTrue : kSelFalse;
  }

  void EvalChunk(const ColumnChunk& chunk, const StringDictionary& dict,
                 uint8_t* out, VectorStats* stats) const override {
    const ColumnVector& cv = chunk.columns[col_];
    const size_t n = chunk.size();
    const uint8_t* nulls = cv.nulls().data();

    // Exact int loop: INT cells vs INT literal compare in int64 space.
    if (cv.encoding() == ColumnEncoding::kInt64 &&
        lit_.type() == ValueType::kInt) {
      const int64_t* xs = cv.ints().data();
      const int64_t b = lit_.AsInt();
      for (size_t i = 0; i < n; ++i) {
        int c = xs[i] < b ? -1 : (xs[i] > b ? 1 : 0);
        out[i] = nulls[i] ? kSelNull
                          : (Decide(op_, c) ? kSelTrue : kSelFalse);
      }
      return;
    }

    // INT cells vs DOUBLE literal: exact mixed compare (same helper as
    // Value::Compare, so ints beyond 2^53 and NaN literals match the row
    // oracle bit-for-bit).
    if (cv.encoding() == ColumnEncoding::kInt64 &&
        lit_.type() == ValueType::kDouble) {
      const int64_t* xs = cv.ints().data();
      const double b = lit_.AsDouble();
      for (size_t i = 0; i < n; ++i) {
        int c = storage::CompareInt64Double(xs[i], b);
        out[i] = nulls[i] ? kSelNull
                          : (Decide(op_, c) ? kSelTrue : kSelFalse);
      }
      return;
    }
    // Double-space loop. Valid whenever every per-cell comparison the row
    // oracle would do is itself double-vs-double: DOUBLE literals always
    // are; INT literals only when they round-trip through double (then
    // double order == int order for the round-tripping cells a kDouble
    // chunk is guaranteed to hold). NaN cells sort below every non-NaN and
    // equal to each other, mirroring Value::Compare's total order.
    if (cv.encoding() == ColumnEncoding::kDouble &&
        (lit_.type() == ValueType::kDouble ||
         (lit_.type() == ValueType::kInt &&
          storage::Int64RoundTripsDouble(lit_.AsInt())))) {
      const double* xs = cv.doubles().data();
      const double b = lit_.type() == ValueType::kDouble
                           ? lit_.AsDouble()
                           : static_cast<double>(lit_.AsInt());
      if (b != b) {  // NaN literal: every non-NaN cell sorts above it
        for (size_t i = 0; i < n; ++i) {
          int c = xs[i] != xs[i] ? 0 : 1;
          out[i] = nulls[i] ? kSelNull
                            : (Decide(op_, c) ? kSelTrue : kSelFalse);
        }
        return;
      }
      for (size_t i = 0; i < n; ++i) {
        int c = xs[i] != xs[i] ? -1 : Sign(xs[i] - b);
        out[i] = nulls[i] ? kSelNull
                          : (Decide(op_, c) ? kSelTrue : kSelFalse);
      }
      return;
    }

    // Dictionary equality: intern the literal once and compare ids —
    // no string bytes touched per row. Ids are insertion-ordered, not
    // lexicographic, so only Eq/Ne qualify; ordered ops fall through to
    // the generic loop, which decodes via dict.At().
    if (cv.encoding() == ColumnEncoding::kDict &&
        lit_.type() == ValueType::kString &&
        (op_ == BinaryOp::kEq || op_ == BinaryOp::kNe)) {
      std::optional<StringDictionary::Id> id = dict.Find(lit_.AsString());
      const StringDictionary::Id* ids = cv.ids().data();
      const bool want_eq = op_ == BinaryOp::kEq;
      if (!id.has_value()) {
        // Literal absent from the dictionary: no cell can equal it.
        const uint8_t miss = want_eq ? kSelFalse : kSelTrue;
        for (size_t i = 0; i < n; ++i) out[i] = nulls[i] ? kSelNull : miss;
      } else {
        const StringDictionary::Id b = *id;
        for (size_t i = 0; i < n; ++i) {
          out[i] = nulls[i] ? kSelNull
                            : (((ids[i] == b) == want_eq) ? kSelTrue
                                                          : kSelFalse);
        }
      }
      if (stats != nullptr) stats->dict_hits += n;
      return;
    }

    // Cross-type comparison against a uniformly-encoded chunk: every
    // non-null cell has the same type rank, so the comparison is one
    // constant. (kValue chunks are mixed and take the generic loop.)
    std::optional<int> rank_c = ConstantRank(cv.encoding(), lit_);
    if (rank_c.has_value()) {
      const uint8_t r = Decide(op_, *rank_c) ? kSelTrue : kSelFalse;
      for (size_t i = 0; i < n; ++i) out[i] = nulls[i] ? kSelNull : r;
      return;
    }

    // Generic loop: per-cell Value::Compare semantics via CompareCell.
    for (size_t i = 0; i < n; ++i) {
      out[i] = nulls[i] ? kSelNull
                        : (Decide(op_, cv.CompareCell(i, lit_, dict))
                               ? kSelTrue
                               : kSelFalse);
    }
  }

 private:
  /// When every non-null cell of an `enc` chunk compares to `lit` purely by
  /// type rank, the shared -1/1 result; nullopt when ranks can tie.
  static std::optional<int> ConstantRank(ColumnEncoding enc,
                                         const Value& lit) {
    int cell_rank;
    switch (enc) {
      case ColumnEncoding::kInt64:
      case ColumnEncoding::kDouble:
        cell_rank = 2;
        break;
      case ColumnEncoding::kBool:
        cell_rank = 1;
        break;
      case ColumnEncoding::kDict:
        cell_rank = 3;
        break;
      default:
        return std::nullopt;
    }
    int lit_rank;
    switch (lit.type()) {
      case ValueType::kBool:
        lit_rank = 1;
        break;
      case ValueType::kInt:
      case ValueType::kDouble:
        lit_rank = 2;
        break;
      case ValueType::kString:
        lit_rank = 3;
        break;
      case ValueType::kList:
        lit_rank = 4;
        break;
      default:
        return std::nullopt;  // NULL literals never reach CmpPred
    }
    if (cell_rank == lit_rank) return std::nullopt;
    return cell_rank < lit_rank ? -1 : 1;
  }

  size_t col_;
  BinaryOp op_;
  Value lit_;
};

class IsNullPred final : public CompiledPredicate {
 public:
  IsNullPred(size_t col, bool negated) : col_(col), negated_(negated) {}

  uint8_t EvalRow(const Row& row) const override {
    return (row[col_].is_null() != negated_) ? kSelTrue : kSelFalse;
  }

  void EvalChunk(const ColumnChunk& chunk, const StringDictionary&,
                 uint8_t* out, VectorStats*) const override {
    const ColumnVector& cv = chunk.columns[col_];
    const uint8_t* nulls = cv.nulls().data();
    const size_t n = chunk.size();
    const uint8_t on_null = negated_ ? kSelFalse : kSelTrue;
    const uint8_t on_value = negated_ ? kSelTrue : kSelFalse;
    for (size_t i = 0; i < n; ++i) out[i] = nulls[i] ? on_null : on_value;
  }

 private:
  size_t col_;
  bool negated_;
};

class InListPred final : public CompiledPredicate {
 public:
  InListPred(size_t col, std::vector<Value> values)
      : col_(col), values_(std::move(values)) {}

  uint8_t EvalRow(const Row& row) const override {
    const Value& v = row[col_];
    if (v.is_null()) return kSelNull;
    for (const Value& cand : values_) {
      if (v.Compare(cand) == 0) return kSelTrue;
    }
    return kSelFalse;
  }

  void EvalChunk(const ColumnChunk& chunk, const StringDictionary& dict,
                 uint8_t* out, VectorStats*) const override {
    const ColumnVector& cv = chunk.columns[col_];
    const uint8_t* nulls = cv.nulls().data();
    const size_t n = chunk.size();
    for (size_t i = 0; i < n; ++i) {
      if (nulls[i]) {
        out[i] = kSelNull;
        continue;
      }
      uint8_t r = kSelFalse;
      for (const Value& cand : values_) {
        if (cv.CompareCell(i, cand, dict) == 0) {
          r = kSelTrue;
          break;
        }
      }
      out[i] = r;
    }
  }

 private:
  size_t col_;
  std::vector<Value> values_;
};

class NotPred final : public CompiledPredicate {
 public:
  explicit NotPred(CompiledPredicatePtr child) : child_(std::move(child)) {}

  uint8_t EvalRow(const Row& row) const override {
    return Invert(child_->EvalRow(row));
  }

  void EvalChunk(const ColumnChunk& chunk, const StringDictionary& dict,
                 uint8_t* out, VectorStats* stats) const override {
    child_->EvalChunk(chunk, dict, out, stats);
    const size_t n = chunk.size();
    for (size_t i = 0; i < n; ++i) out[i] = Invert(out[i]);
  }

 private:
  static uint8_t Invert(uint8_t s) {
    return s == kSelNull ? kSelNull : (s == kSelTrue ? kSelFalse : kSelTrue);
  }

  CompiledPredicatePtr child_;
};

/// Kleene AND/OR. The compiled subset is pure and error-free, so always
/// evaluating both sides is unobservable relative to the row oracle's
/// short-circuit.
class AndOrPred final : public CompiledPredicate {
 public:
  AndOrPred(bool is_and, CompiledPredicatePtr lhs, CompiledPredicatePtr rhs)
      : is_and_(is_and), lhs_(std::move(lhs)), rhs_(std::move(rhs)) {}

  uint8_t EvalRow(const Row& row) const override {
    return Merge(lhs_->EvalRow(row), rhs_->EvalRow(row));
  }

  void EvalChunk(const ColumnChunk& chunk, const StringDictionary& dict,
                 uint8_t* out, VectorStats* stats) const override {
    const size_t n = chunk.size();
    std::vector<uint8_t> rhs(n);
    lhs_->EvalChunk(chunk, dict, out, stats);
    rhs_->EvalChunk(chunk, dict, rhs.data(), stats);
    for (size_t i = 0; i < n; ++i) out[i] = Merge(out[i], rhs[i]);
  }

 private:
  uint8_t Merge(uint8_t a, uint8_t b) const {
    const uint8_t absorbing = is_and_ ? kSelFalse : kSelTrue;
    if (a == absorbing || b == absorbing) return absorbing;
    if (a == kSelNull || b == kSelNull) return kSelNull;
    return is_and_ ? kSelTrue : kSelFalse;
  }

  bool is_and_;
  CompiledPredicatePtr lhs_;
  CompiledPredicatePtr rhs_;
};

/// Classifies a sub-expression as a column reference or a constant
/// (literal / resolvable parameter). Anything else — including a missing
/// parameter, which must surface its Bind error on the row path — stays
/// kNone and makes the compile refuse.
class LeafClassifier final : public ExprVisitor {
 public:
  explicit LeafClassifier(const ParamMap& params) : params_(params) {}

  enum class Kind { kNone, kColumn, kConst };

  Kind kind = Kind::kNone;
  std::string column;
  Value value;

  void VisitColumn(const std::string& name) override {
    kind = Kind::kColumn;
    column = name;
  }
  void VisitLiteral(const Value& v) override {
    kind = Kind::kConst;
    value = v;
  }
  void VisitParam(const std::string& name) override {
    auto it = params_.find(name);
    if (it != params_.end()) {
      kind = Kind::kConst;
      value = it->second;
    }
  }

 private:
  const ParamMap& params_;
};

/// Recursive compiler. Refusal (result_ == nullptr after a visit) is the
/// default for every construct outside the error-free subset.
class Compiler final : public ExprVisitor {
 public:
  Compiler(const Schema& schema, const ParamMap& params)
      : schema_(schema), params_(params) {}

  CompiledPredicatePtr Compile(const Expr& e) {
    result_.reset();
    e.Accept(*this);
    return std::move(result_);
  }

  void VisitLiteral(const Value& v) override {
    // A bare literal in predicate position: TRUE/FALSE/NULL are safe. A
    // non-bool literal is row-dependent-free too, but under NOT/AND/OR the
    // row oracle errors on it, so refuse rather than track context.
    if (v.is_null()) {
      result_ = std::make_unique<ConstPred>(kSelNull);
    } else if (v.type() == ValueType::kBool) {
      result_ = std::make_unique<ConstPred>(v.AsBool() ? kSelTrue : kSelFalse);
    }
  }

  void VisitParam(const std::string& name) override {
    auto it = params_.find(name);
    if (it == params_.end()) return;
    VisitLiteral(it->second);
  }

  void VisitUnary(UnaryOp op, const Expr& operand) override {
    if (op != UnaryOp::kNot) return;
    CompiledPredicatePtr child = Compile(operand);
    if (child != nullptr) result_ = std::make_unique<NotPred>(std::move(child));
  }

  void VisitBinary(BinaryOp op, const Expr& lhs, const Expr& rhs) override {
    if (op == BinaryOp::kAnd || op == BinaryOp::kOr) {
      CompiledPredicatePtr l = Compile(lhs);
      if (l == nullptr) return;
      CompiledPredicatePtr r = Compile(rhs);
      if (r == nullptr) {
        result_.reset();
        return;
      }
      result_ = std::make_unique<AndOrPred>(op == BinaryOp::kAnd,
                                            std::move(l), std::move(r));
      return;
    }
    switch (op) {
      case BinaryOp::kEq:
      case BinaryOp::kNe:
      case BinaryOp::kLt:
      case BinaryOp::kLe:
      case BinaryOp::kGt:
      case BinaryOp::kGe:
        break;
      default:
        result_.reset();  // arithmetic / LIKE can error mid-row
        return;
    }

    LeafClassifier a(params_);
    lhs.Accept(a);
    LeafClassifier b(params_);
    rhs.Accept(b);
    using Kind = LeafClassifier::Kind;
    result_.reset();
    if (a.kind == Kind::kColumn && b.kind == Kind::kConst) {
      MakeCmp(a.column, op, std::move(b.value));
    } else if (a.kind == Kind::kConst && b.kind == Kind::kColumn) {
      MakeCmp(b.column, Flip(op), std::move(a.value));
    }
    // col-vs-col, nested expressions: refuse.
  }

  void VisitIsNull(const Expr& operand, bool negated) override {
    LeafClassifier leaf(params_);
    operand.Accept(leaf);
    result_.reset();
    if (leaf.kind == LeafClassifier::Kind::kColumn) {
      std::optional<size_t> col = schema_.FindColumn(leaf.column);
      if (col.has_value()) {
        result_ = std::make_unique<IsNullPred>(*col, negated);
      }
    } else if (leaf.kind == LeafClassifier::Kind::kConst) {
      result_ = std::make_unique<ConstPred>(
          (leaf.value.is_null() != negated) ? kSelTrue : kSelFalse);
    }
  }

  void VisitInList(const Expr& operand,
                   const std::vector<Value>& values) override {
    LeafClassifier leaf(params_);
    operand.Accept(leaf);
    result_.reset();
    if (leaf.kind != LeafClassifier::Kind::kColumn) return;
    std::optional<size_t> col = schema_.FindColumn(leaf.column);
    if (!col.has_value()) return;
    result_ = std::make_unique<InListPred>(*col, values);
  }

  // VisitCall: inherited no-op leaves result_ null → refused.

 private:
  void MakeCmp(const std::string& column, BinaryOp op, Value lit) {
    // Unresolvable / ambiguous names refuse, so Bind reports the error
    // identically on the fallback path.
    std::optional<size_t> col = schema_.FindColumn(column);
    if (!col.has_value()) return;
    if (lit.is_null()) {
      // x OP NULL is NULL for every row (comparisons are NULL-strict).
      result_ = std::make_unique<ConstPred>(kSelNull);
      return;
    }
    result_ = std::make_unique<CmpPred>(*col, op, std::move(lit));
  }

  const Schema& schema_;
  const ParamMap& params_;
  CompiledPredicatePtr result_;
};

}  // namespace

CompiledPredicatePtr CompilePredicate(const Expr& predicate,
                                      const Schema& schema,
                                      const ParamMap& params) {
  Compiler compiler(schema, params);
  return compiler.Compile(predicate);
}

namespace {

/// Leaf taxonomy for the structural checker: like LeafClassifier, but a
/// parameter counts as a (potential) constant without being resolved.
class LeafShape final : public ExprVisitor {
 public:
  enum class Kind { kNone, kColumn, kLiteral, kParam };
  Kind kind = Kind::kNone;

  void VisitColumn(const std::string&) override { kind = Kind::kColumn; }
  void VisitLiteral(const Value&) override { kind = Kind::kLiteral; }
  void VisitParam(const std::string&) override { kind = Kind::kParam; }
};

/// Structural twin of Compiler: accepts exactly the shapes Compiler can
/// compile, minus name resolution and parameter binding. A bare top-level
/// parameter is refused (its value's type is unknowable at plan time).
class ShapeChecker final : public ExprVisitor {
 public:
  bool ok = false;

  void VisitLiteral(const Value& v) override {
    ok = v.is_null() || v.type() == ValueType::kBool;
  }
  void VisitUnary(UnaryOp op, const Expr& operand) override {
    ok = op == UnaryOp::kNot && CompilableShape(operand);
  }
  void VisitBinary(BinaryOp op, const Expr& lhs, const Expr& rhs) override {
    if (op == BinaryOp::kAnd || op == BinaryOp::kOr) {
      ok = CompilableShape(lhs) && CompilableShape(rhs);
      return;
    }
    switch (op) {
      case BinaryOp::kEq:
      case BinaryOp::kNe:
      case BinaryOp::kLt:
      case BinaryOp::kLe:
      case BinaryOp::kGt:
      case BinaryOp::kGe:
        break;
      default:
        return;  // arithmetic / LIKE can error mid-row
    }
    LeafShape a;
    lhs.Accept(a);
    LeafShape b;
    rhs.Accept(b);
    using Kind = LeafShape::Kind;
    auto constish = [](Kind k) {
      return k == Kind::kLiteral || k == Kind::kParam;
    };
    ok = (a.kind == Kind::kColumn && constish(b.kind)) ||
         (constish(a.kind) && b.kind == Kind::kColumn);
  }
  void VisitIsNull(const Expr& operand, bool) override {
    LeafShape leaf;
    operand.Accept(leaf);
    ok = leaf.kind != LeafShape::Kind::kNone;
  }
  void VisitInList(const Expr& operand, const std::vector<Value>&) override {
    LeafShape leaf;
    operand.Accept(leaf);
    ok = leaf.kind == LeafShape::Kind::kColumn;
  }
  // VisitColumn / VisitParam / VisitCall: inherited no-op keeps ok=false.
};

}  // namespace

bool CompilableShape(const Expr& predicate) {
  ShapeChecker checker;
  predicate.Accept(checker);
  return checker.ok;
}

}  // namespace courserank::query
