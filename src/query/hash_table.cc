#include "query/hash_table.h"

#include <cstring>

#include "common/logging.h"
#include "common/thread_pool.h"

namespace courserank::query {

using storage::HashMix64;
using storage::Row;
using storage::Value;
using storage::ValueType;

namespace {

/// FNV-1a offset basis: the RowHash seed, so table hashes equal
/// storage::RowHash over the same cells.
constexpr uint64_t kHashSeed = 0xcbf29ce484222325ULL;

/// Canonical bit pattern all NaN payloads collapse to (NaN == NaN under
/// Value::Compare's total order).
constexpr uint64_t kCanonicalNaN = 0x7ff8000000000000ULL;

/// Doubles at or beyond these bounds are outside int64 range.
constexpr double kInt64Lo = -9223372036854775808.0;
constexpr double kInt64Hi = 9223372036854775808.0;

/// Initial slot cap: partitions with more distinct keys than this grow via
/// saved-hash re-scatter, so duplicate-heavy inputs (DISTINCT over few
/// uniques) never over-allocate up front.
constexpr size_t kInitialSlotCap = size_t{1} << 14;

}  // namespace

RowKeyTable::RowKeyTable(size_t width, bool build_chains)
    : width_(width), build_chains_(build_chains) {}

RowKeyTable::~RowKeyTable() = default;

void RowKeyTable::Reserve(size_t n) {
  arena_.resize(n * width_);
  hashes_.resize(n);
  has_null_.resize(n);
  tags_.resize(n * width_);
  codes_.resize(n * width_);
}

void RowKeyTable::EncodeCell(const Value& v, uint8_t* tag, uint64_t* code) {
  switch (v.type()) {
    case ValueType::kNull:
      *tag = kTagNull;
      *code = 0;
      return;
    case ValueType::kBool:
      *tag = v.AsBool() ? kTagTrue : kTagFalse;
      *code = 0;
      return;
    case ValueType::kInt:
      *tag = kTagInt;
      *code = static_cast<uint64_t>(v.AsInt());
      return;
    case ValueType::kDouble: {
      double d = v.AsDouble();
      if (d != d) {
        *tag = kTagReal;
        *code = kCanonicalNaN;
        return;
      }
      if (d == 0.0) d = 0.0;  // -0.0 == 0.0 → one equality class
      if (d >= kInt64Lo && d < kInt64Hi) {
        int64_t i = static_cast<int64_t>(d);
        if (static_cast<double>(i) == d) {
          // Integral double: same class as the matching int (1 == 1.0).
          *tag = kTagInt;
          *code = static_cast<uint64_t>(i);
          return;
        }
      }
      uint64_t bits;
      std::memcpy(&bits, &d, sizeof(bits));
      *tag = kTagReal;
      *code = bits;
      return;
    }
    case ValueType::kString:
      *tag = kTagStr;
      *code = 0;  // interned per partition at Build
      return;
    case ValueType::kList:
      *tag = kTagList;
      *code = 0;  // equality via Value::Compare on the arena cells
      return;
  }
  *tag = kTagNull;
  *code = 0;
}

/// Shared staging body: `assign(dst, c)` materializes cell c into the
/// arena slot. One pass computes the canonical hash, null flag, tag, and
/// code per cell.
template <typename Assign>
void RowKeyTable::StageImpl(size_t i, Assign&& assign) {
  Value* dst = &arena_[i * width_];
  size_t off = i * width_;
  uint64_t h = kHashSeed;
  uint8_t null = 0;
  for (size_t c = 0; c < width_; ++c) {
    assign(&dst[c], c);
    h = HashMix64(h ^ dst[c].Hash());
    if (dst[c].is_null()) null = 1;
    EncodeCell(dst[c], &tags_[off + c], &codes_[off + c]);
  }
  hashes_[i] = h;
  has_null_[i] = null;
}

void RowKeyTable::StageRow(size_t i, const Row& row) {
  CR_CHECK(row.size() == width_);
  StageImpl(i, [&](Value* dst, size_t c) { *dst = row[c]; });
}

void RowKeyTable::StageCols(size_t i, const Row& row,
                            const std::vector<size_t>& cols) {
  StageImpl(i, [&](Value* dst, size_t c) { *dst = row[cols[c]]; });
}

void RowKeyTable::StageMove1(size_t i, Value&& v) {
  StageImpl(i, [&](Value* dst, size_t) { *dst = std::move(v); });
}

void RowKeyTable::StageMove(size_t i, Row& key) {
  CR_CHECK(key.size() == width_);
  StageImpl(i, [&](Value* dst, size_t c) { *dst = std::move(key[c]); });
}

bool RowKeyTable::StagedKeysEqual(size_t a, size_t b) const {
  size_t oa = a * width_;
  size_t ob = b * width_;
  for (size_t c = 0; c < width_; ++c) {
    uint8_t t = tags_[oa + c];
    if (t != tags_[ob + c]) return false;
    if (t == kTagList) {
      if (arena_[oa + c].Compare(arena_[ob + c]) != 0) return false;
    } else if (codes_[oa + c] != codes_[ob + c]) {
      return false;
    }
  }
  return true;
}

void RowKeyTable::GrowPartition(Partition& part) {
  size_t cap = (part.mask + 1) * 2;
  std::vector<uint64_t> old_hash = std::move(part.slot_hash);
  std::vector<uint32_t> old_entry = std::move(part.slot_entry);
  part.slot_hash.assign(cap, 0);
  part.slot_entry.assign(cap, 0);
  part.mask = cap - 1;
  // Saved-hash re-scatter: no key material is touched, just the slots.
  for (size_t s = 0; s < old_entry.size(); ++s) {
    if (old_entry[s] == 0) continue;
    size_t idx = old_hash[s] & part.mask;
    while (part.slot_entry[idx] != 0) idx = (idx + 1) & part.mask;
    part.slot_hash[idx] = old_hash[s];
    part.slot_entry[idx] = old_entry[s];
  }
  ++part.resizes;
}

void RowKeyTable::BuildPartition(Partition& part, bool skip_null_keys) {
  const size_t nkeys = part.keys.size();
  if (nkeys == 0) return;
  size_t want = nkeys + nkeys / 2 + 8;  // ~0.7 target load
  size_t cap = 16;
  while (cap < want && cap < kInitialSlotCap) cap <<= 1;
  part.slot_hash.assign(cap, 0);
  part.slot_entry.assign(cap, 0);
  part.mask = cap - 1;
  part.first_row.reserve(nkeys);
  part.entry_rows.reserve(nkeys);

  for (uint32_t i : part.keys) {
    if (skip_null_keys && has_null_[i] != 0) continue;
    // Dictionary-id codes for string cells: interning happens here, inside
    // the partition's single build thread, in ascending staged order — so
    // ids are deterministic and identical serial vs parallel.
    size_t off = size_t{i} * width_;
    for (size_t c = 0; c < width_; ++c) {
      if (tags_[off + c] == kTagStr) {
        codes_[off + c] = part.dict.Intern(arena_[off + c].AsString());
      }
    }

    if ((part.size + 1) * 10 > (part.mask + 1) * 7) GrowPartition(part);
    const uint64_t h = hashes_[i];
    size_t idx = h & part.mask;
    uint32_t local;
    for (;;) {
      ++part.build_steps;
      uint32_t se = part.slot_entry[idx];
      if (se == 0) {
        local = static_cast<uint32_t>(part.size);
        part.slot_hash[idx] = h;
        part.slot_entry[idx] = local + 1;
        ++part.size;
        part.first_row.push_back(i);
        part.entry_rows.push_back(0);
        if (build_chains_) {
          part.head.push_back(kNoEntry);
          part.tail.push_back(kNoEntry);
        }
        break;
      }
      if (part.slot_hash[idx] == h &&
          StagedKeysEqual(part.first_row[se - 1], i)) {
        local = se - 1;
        break;
      }
      idx = (idx + 1) & part.mask;
    }
    local_entry_[i] = local;
    ++part.entry_rows[local];
    if (build_chains_) {
      uint32_t t = part.tail[local];
      if (t != kNoEntry && part.batches[t].count < Batch::kBatchRows) {
        part.batches[t].rows[part.batches[t].count++] = i;
      } else {
        // Forward-linked batches keep chain iteration in ascending staged
        // order — the same order the old per-key vectors accumulated.
        uint32_t nb = static_cast<uint32_t>(part.batches.size());
        part.batches.push_back(Batch{});
        Batch& b = part.batches.back();
        b.rows[0] = i;
        b.count = 1;
        if (t == kNoEntry) {
          part.head[local] = nb;
        } else {
          part.batches[t].next = nb;
        }
        part.tail[local] = nb;
      }
    }
  }
}

void RowKeyTable::Build(size_t n, bool skip_null_keys, ThreadPool* pool) {
  CR_CHECK(!built_);
  staged_n_ = n;
  local_entry_.assign(n, kNoEntry);

  // Scatter staged indices into their partitions, ascending.
  size_t counts[kNumPartitions] = {0};
  for (size_t i = 0; i < n; ++i) ++counts[PartitionOfHash(hashes_[i])];
  for (size_t p = 0; p < kNumPartitions; ++p) parts_[p].keys.reserve(counts[p]);
  for (size_t i = 0; i < n; ++i) {
    parts_[PartitionOfHash(hashes_[i])].keys.push_back(
        static_cast<uint32_t>(i));
  }

  // Each partition owns a disjoint slice of the key space (and of the
  // staged arrays it writes: codes of its keys, local_entry_ of its keys),
  // so partitions build concurrently without synchronization and the merged
  // result is identical to the serial build.
  if (pool != nullptr && pool->num_threads() > 1 && n >= kNumPartitions) {
    pool->ParallelFor(kNumPartitions, 1, [&](size_t, size_t begin, size_t end) {
      for (size_t p = begin; p < end; ++p) {
        BuildPartition(parts_[p], skip_null_keys);
      }
    });
  } else {
    for (size_t p = 0; p < kNumPartitions; ++p) {
      BuildPartition(parts_[p], skip_null_keys);
    }
  }

  // Merge in partition order: global entry ids are base + local.
  uint32_t base = 0;
  for (size_t p = 0; p < kNumPartitions; ++p) {
    parts_[p].base = base;
    base += static_cast<uint32_t>(parts_[p].size);
  }
  total_entries_ = base;
  built_ = true;
}

size_t RowKeyTable::PartitionOfEntry(uint32_t entry) const {
  for (size_t p = kNumPartitions; p-- > 1;) {
    if (parts_[p].size > 0 && entry >= parts_[p].base) return p;
  }
  return 0;
}

size_t RowKeyTable::LeaderRow(uint32_t entry) const {
  const Partition& part = parts_[PartitionOfEntry(entry)];
  return part.first_row[entry - part.base];
}

size_t RowKeyTable::EntryRows(uint32_t entry) const {
  const Partition& part = parts_[PartitionOfEntry(entry)];
  return part.entry_rows[entry - part.base];
}

/// Shared probe body: `cell(c)` yields the c-th probe cell.
template <typename GetCell>
uint32_t RowKeyTable::FindImpl(GetCell&& cell, uint64_t* steps) const {
  uint64_t h = kHashSeed;
  for (size_t c = 0; c < width_; ++c) h = HashMix64(h ^ cell(c).Hash());
  const Partition& part = parts_[PartitionOfHash(h)];
  if (part.size == 0) return kNoEntry;

  // Probe-side tag/code scratch, allocation-free for realistic key widths.
  uint8_t tag_inline[8];
  uint64_t code_inline[8];
  std::vector<uint8_t> tag_heap;
  std::vector<uint64_t> code_heap;
  uint8_t* tags = tag_inline;
  uint64_t* codes = code_inline;
  if (width_ > 8) {
    tag_heap.resize(width_);
    code_heap.resize(width_);
    tags = tag_heap.data();
    codes = code_heap.data();
  }
  for (size_t c = 0; c < width_; ++c) {
    EncodeCell(cell(c), &tags[c], &codes[c]);
    if (tags[c] == kTagStr) {
      // Dictionary-id fast path: a string the build side never interned
      // cannot match any entry — miss without inspecting a slot.
      auto id = part.dict.Find(cell(c).AsString());
      if (!id.has_value()) return kNoEntry;
      codes[c] = *id;
    }
  }

  size_t idx = h & part.mask;
  for (;;) {
    ++*steps;
    uint32_t se = part.slot_entry[idx];
    if (se == 0) return kNoEntry;
    if (part.slot_hash[idx] == h) {
      uint32_t cand = se - 1;
      size_t off = size_t{part.first_row[cand]} * width_;
      bool eq = true;
      for (size_t c = 0; c < width_; ++c) {
        uint8_t t = tags_[off + c];
        if (t != tags[c]) {
          eq = false;
          break;
        }
        if (t == kTagList) {
          if (arena_[off + c].Compare(cell(c)) != 0) {
            eq = false;
            break;
          }
        } else if (codes_[off + c] != codes[c]) {
          eq = false;
          break;
        }
      }
      if (eq) return part.base + cand;
    }
    idx = (idx + 1) & part.mask;
  }
}

uint32_t RowKeyTable::FindRow(const Row& row, uint64_t* steps) const {
  return FindImpl([&](size_t c) -> const Value& { return row[c]; }, steps);
}

uint32_t RowKeyTable::FindCols(const Row& row, const std::vector<size_t>& cols,
                               uint64_t* steps) const {
  return FindImpl([&](size_t c) -> const Value& { return row[cols[c]]; },
                  steps);
}

uint32_t RowKeyTable::Find1(const Value& v, uint64_t* steps) const {
  return FindImpl([&](size_t) -> const Value& { return v; }, steps);
}

void RowKeyTable::AddProbeStats(uint64_t probes, uint64_t steps) const {
  probes_.fetch_add(probes, std::memory_order_relaxed);
  probe_steps_.fetch_add(steps, std::memory_order_relaxed);
}

HashTableStats RowKeyTable::stats() const {
  HashTableStats s;
  s.staged = staged_n_;
  s.entries = total_entries_;
  s.probes = probes_.load(std::memory_order_relaxed);
  s.probe_steps = probe_steps_.load(std::memory_order_relaxed);
  for (const Partition& part : parts_) {
    s.build_steps += part.build_steps;
    s.resizes += part.resizes;
    for (uint32_t rows : part.entry_rows) {
      if (rows > s.max_chain) s.max_chain = rows;
    }
  }
  return s;
}

}  // namespace courserank::query
