#ifndef COURSERANK_QUERY_HASH_TABLE_H_
#define COURSERANK_QUERY_HASH_TABLE_H_

// RowKeyTable: the shared open-addressing hash table behind HashJoin,
// Aggregate, Distinct/Union dedup, ε-extend grouping and EXCEPT
// (DESIGN.md §14). Replaces the std::unordered_map<Row, ...> states with:
//
//  - Keys materialized ONCE into a flat Value arena (no per-probe Row
//    copies, no per-row heap allocation in the old key_of lambdas).
//  - Canonicalized 64-bit row hashes (storage::RowHash over the canonical
//    Value::Hash) saved in the slots, so resize re-scatters without
//    re-hashing and equality checks short-circuit on the saved hash.
//  - Linear-probing slots (two parallel arrays: hash + entry id) with
//    power-of-two capacity and a 0.7 load-factor growth trigger.
//  - Radix partitioning by the lead bits of the hash: each partition owns a
//    disjoint slice of the key space, so the build side parallelizes across
//    partitions on the ThreadPool while the serial result stays
//    byte-identical (each partition processes its keys in ascending staged
//    order, and entry numbering is merged in partition order).
//  - RowRefList-style batched collision chains: per-key row lists live in
//    fixed-size forward-linked batches in a per-partition arena instead of
//    one std::vector<size_t> per key.
//  - Per-cell canonical equality codes with a dictionary-id fast path for
//    string keys: strings are interned into a per-partition
//    StringDictionary at build, so probe-side misses return without a
//    single byte compare and hits compare one uint32.

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/dictionary.h"
#include "storage/value.h"

namespace courserank {
class ThreadPool;
}

namespace courserank::query {

/// Build/probe statistics, surfaced through PlanProfileNode and the
/// cr_exec_hash_* metrics.
struct HashTableStats {
  uint64_t staged = 0;       ///< keys staged (input rows seen)
  uint64_t entries = 0;      ///< distinct keys across all partitions
  uint64_t build_steps = 0;  ///< slot inspections during build
  uint64_t probes = 0;       ///< Find() calls (caller-reported)
  uint64_t probe_steps = 0;  ///< slot inspections during probes
  uint64_t max_chain = 0;    ///< rows under the most-duplicated key
  uint64_t resizes = 0;      ///< saved-hash re-scatters
};

class RowKeyTable {
 public:
  static constexpr uint32_t kNoEntry = 0xffffffffu;
  /// Partition = lead bits of the canonical hash. Slot indexing uses the
  /// low bits, so the two never alias.
  static constexpr int kRadixBits = 4;
  static constexpr size_t kNumPartitions = size_t{1} << kRadixBits;

  /// `width` cells per key. `build_chains` turns on the RowRefList batches
  /// (joins and ε-extend need per-key row lists; aggregates and dedup only
  /// need the group id per staged key).
  RowKeyTable(size_t width, bool build_chains);
  ~RowKeyTable();
  RowKeyTable(const RowKeyTable&) = delete;
  RowKeyTable& operator=(const RowKeyTable&) = delete;

  // ---- staging ----------------------------------------------------------

  /// Pre-sizes the staging arrays for `n` keys so Stage() calls touch
  /// disjoint slices and can run morsel-parallel.
  void Reserve(size_t n);

  /// Staging copies (or moves) the key cells into the arena and computes
  /// the canonical hash, null flag, and equality codes. All variants are
  /// thread-safe for distinct `i` (morsel-parallel staging).
  void StageRow(size_t i, const storage::Row& row);  ///< whole row is key
  void StageCols(size_t i, const storage::Row& row,
                 const std::vector<size_t>& cols);   ///< row[cols[c]] cells
  void StageMove1(size_t i, storage::Value&& v);     ///< width-1 key
  /// Moves the cells out of `key` (aggregate path: the evaluated key row is
  /// owned by nobody else). `key` is left moved-from but reusable.
  void StageMove(size_t i, storage::Row& key);

  /// True when staged key `i` contains a SQL NULL cell.
  bool StagedHasNull(size_t i) const { return has_null_[i] != 0; }

  // ---- build ------------------------------------------------------------

  /// Builds the per-partition tables over staged keys [0, n). When `pool`
  /// has workers, partitions build concurrently; the result is identical
  /// either way. `skip_null_keys` leaves keys containing NULL without an
  /// entry (join semantics: NULL never matches); otherwise NULL is an
  /// ordinary value and NULLs compare equal — one NULL group, the
  /// SQLite-documented GROUP BY / DISTINCT rule.
  void Build(size_t n, bool skip_null_keys, ThreadPool* pool);

  // ---- post-build queries (read-only, thread-safe) ----------------------

  size_t width() const { return width_; }
  size_t entry_count() const { return total_entries_; }

  /// Dense global entry id for staged key `i` (entries are numbered by
  /// partition, then by first occurrence); kNoEntry for skipped NULL keys.
  uint32_t EntryOf(size_t i) const {
    uint32_t local = local_entry_[i];
    if (local == kNoEntry) return kNoEntry;
    return parts_[PartitionOf(i)].base + local;
  }

  /// True when staged key `i` is the first occurrence of its entry — the
  /// emission test that preserves the serial first-appearance output order.
  bool IsEntryLeader(size_t i) const {
    uint32_t local = local_entry_[i];
    return local != kNoEntry &&
           parts_[PartitionOf(i)].first_row[local] == static_cast<uint32_t>(i);
  }

  /// First staged index of global entry `e`.
  size_t LeaderRow(uint32_t entry) const;

  /// Staged occurrences of global entry `e` (rows under the key).
  size_t EntryRows(uint32_t entry) const;

  /// The staged key cells of key `i` (mutable so the aggregate finalize can
  /// move the leader's cells into the output row).
  const storage::Value* KeyCells(size_t i) const { return &arena_[i * width_]; }
  storage::Value* MutableKeyCells(size_t i) { return &arena_[i * width_]; }

  /// Probes with a key assembled in place — no Row copy, no allocation.
  /// Returns the global entry id or kNoEntry. A string cell absent from
  /// the partition dictionary is a definite miss before any slot is
  /// inspected (the dictionary-id fast path). Adds slot inspections to
  /// `*steps` (caller-local; fold into stats via AddProbeStats once per
  /// morsel, not per row).
  uint32_t FindRow(const storage::Row& row, uint64_t* steps) const;
  uint32_t FindCols(const storage::Row& row, const std::vector<size_t>& cols,
                    uint64_t* steps) const;
  uint32_t Find1(const storage::Value& cell, uint64_t* steps) const;

  /// Walks the RowRefList chain of global entry `e` in ascending staged
  /// order (requires build_chains); stops at the first non-OK status.
  template <typename Fn>
  Status ForEachEntryRow(uint32_t entry, Fn&& fn) const {
    const Partition& part = parts_[PartitionOfEntry(entry)];
    uint32_t local = entry - part.base;
    for (uint32_t b = part.head[local]; b != kNoEntry;
         b = part.batches[b].next) {
      const Batch& batch = part.batches[b];
      for (uint32_t k = 0; k < batch.count; ++k) {
        CR_RETURN_IF_ERROR(fn(batch.rows[k]));
      }
    }
    return Status::OK();
  }

  /// Folds caller-side probe counters into the shared stats (thread-safe).
  void AddProbeStats(uint64_t probes, uint64_t steps) const;

  /// Build-side stats plus everything folded in via AddProbeStats.
  HashTableStats stats() const;

  // ---- per-partition access (parallel aggregate accumulation) -----------

  static size_t NumPartitions() { return kNumPartitions; }
  /// Staged key indices owned by partition `p`, ascending.
  const std::vector<uint32_t>& PartitionKeys(size_t p) const {
    return parts_[p].keys;
  }
  size_t PartitionEntryCount(size_t p) const { return parts_[p].size; }
  size_t PartitionBase(size_t p) const { return parts_[p].base; }
  /// Partition-local entry id of staged key `i` (kNoEntry if skipped).
  uint32_t LocalEntryOf(size_t i) const { return local_entry_[i]; }
  size_t PartitionOf(size_t i) const {
    return static_cast<size_t>(hashes_[i] >> (64 - kRadixBits));
  }

 private:
  /// Canonical per-cell equality classes. Two cells are equal iff their
  /// tags match and (a) the codes match for exactly-coded tags, or (b)
  /// Value::Compare says so for kTagList (codes are only a hash there).
  enum CellTag : uint8_t {
    kTagNull = 0,
    kTagFalse,
    kTagTrue,
    kTagInt,   ///< int64, or a double holding an exact int64 (1 == 1.0)
    kTagReal,  ///< non-integral double; code = canonical bits (NaN unified)
    kTagStr,   ///< code = per-partition dictionary id
    kTagList,  ///< code = hash only; equality falls back to Value::Compare
  };

  /// One RowRefList batch: up to kBatchRows staged indices plus a forward
  /// link, bump-allocated per partition.
  struct Batch {
    static constexpr uint32_t kBatchRows = 6;
    uint32_t rows[kBatchRows];
    uint32_t count = 0;
    uint32_t next = kNoEntry;
  };

  struct Partition {
    // Open-addressing slots: parallel arrays, power-of-two size. entry+1
    // in slot_entry, 0 = empty.
    std::vector<uint64_t> slot_hash;
    std::vector<uint32_t> slot_entry;
    size_t mask = 0;
    size_t size = 0;  ///< entries

    std::vector<uint32_t> first_row;   ///< per entry: first staged index
    std::vector<uint32_t> entry_rows;  ///< per entry: staged occurrences
    std::vector<uint32_t> head;        ///< chain mode: first batch
    std::vector<uint32_t> tail;        ///< chain mode: last batch
    std::vector<Batch> batches;

    std::vector<uint32_t> keys;  ///< staged indices here, ascending
    storage::StringDictionary dict;

    uint32_t base = 0;  ///< global id of this partition's first entry
    uint64_t build_steps = 0;
    uint64_t resizes = 0;
  };

  static size_t PartitionOfHash(uint64_t h) {
    return static_cast<size_t>(h >> (64 - kRadixBits));
  }
  size_t PartitionOfEntry(uint32_t entry) const;

  /// Computes tag/code for one cell (strings get kTagStr with the code left
  /// for Build to intern).
  static void EncodeCell(const storage::Value& v, uint8_t* tag,
                         uint64_t* code);

  template <typename Assign>
  void StageImpl(size_t i, Assign&& assign);
  template <typename GetCell>
  uint32_t FindImpl(GetCell&& cell, uint64_t* steps) const;

  void BuildPartition(Partition& part, bool skip_null_keys);
  void GrowPartition(Partition& part);
  bool StagedKeysEqual(size_t i, size_t j) const;

  size_t width_;
  bool build_chains_;
  size_t staged_n_ = 0;
  size_t total_entries_ = 0;
  bool built_ = false;

  std::vector<storage::Value> arena_;  ///< width_ * n staged cells
  std::vector<uint64_t> hashes_;       ///< per key: canonical row hash
  std::vector<uint8_t> has_null_;      ///< per key
  std::vector<uint8_t> tags_;          ///< width_ * n
  std::vector<uint64_t> codes_;        ///< width_ * n
  std::vector<uint32_t> local_entry_;  ///< per key: partition-local entry

  Partition parts_[kNumPartitions];

  /// Probe counters folded in by AddProbeStats; padded-free simple atomics
  /// (one add per morsel, not per row).
  mutable std::atomic<uint64_t> probes_{0};
  mutable std::atomic<uint64_t> probe_steps_{0};
};

}  // namespace courserank::query

#endif  // COURSERANK_QUERY_HASH_TABLE_H_
