#include "query/sql_engine.h"

#include <algorithm>
#include <cctype>
#include <limits>
#include <string_view>

#include "common/strings.h"
#include "obs/metrics.h"
#include "obs/profile_recorder.h"
#include "obs/trace.h"
#include "query/sql_parser.h"

namespace courserank::query {

namespace {

/// SQL-engine metrics, resolved once per process. Statements are ms-scale,
/// so parse and execute are timed unconditionally (ScopedSpan kAlways) —
/// every statement lands in the histograms, not just trace-sampled ones.
struct SqlMetrics {
  obs::Histogram* parse_ns;
  obs::Histogram* execute_ns;
  obs::Counter* statements;
  obs::Counter* pushdown_rewrites;
};

const SqlMetrics& Metrics() {
  static const SqlMetrics m = [] {
    obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
    return SqlMetrics{reg.GetHistogram("cr_sql_parse_ns"),
                      reg.GetHistogram("cr_sql_execute_ns"),
                      reg.GetCounter("cr_sql_statements_total"),
                      reg.GetCounter("cr_exec_pushdown_rewrites_total")};
  }();
  return m;
}

/// Collects every column name an expression tree references.
class ColumnCollector : public ExprVisitor {
 public:
  std::vector<std::string> names;

  void VisitColumn(const std::string& name) override {
    names.push_back(name);
  }
  void VisitUnary(UnaryOp, const Expr& operand) override {
    operand.Accept(*this);
  }
  void VisitBinary(BinaryOp, const Expr& lhs, const Expr& rhs) override {
    lhs.Accept(*this);
    rhs.Accept(*this);
  }
  void VisitIsNull(const Expr& operand, bool) override {
    operand.Accept(*this);
  }
  void VisitInList(const Expr& operand,
                   const std::vector<storage::Value>&) override {
    operand.Accept(*this);
  }
  void VisitCall(const std::string&,
                 const std::vector<ExprPtr>& args) override {
    for (const ExprPtr& a : args) a->Accept(*this);
  }
};

/// Consumes a leading keyword (case-insensitive, whole word) plus the
/// whitespace after it. Leaves *s untouched and returns false otherwise.
bool ConsumeKeyword(std::string_view* s, std::string_view kw) {
  if (s->size() < kw.size()) return false;
  if (!EqualsIgnoreCase(s->substr(0, kw.size()), kw)) return false;
  std::string_view rest = s->substr(kw.size());
  if (!rest.empty() &&
      !std::isspace(static_cast<unsigned char>(rest.front()))) {
    return false;
  }
  *s = Trim(rest);
  return true;
}

/// Wraps rendered plan text as the EXPLAIN result relation: one `plan`
/// string column, one row per line.
Relation PlanLines(const std::string& text) {
  Relation out;
  out.schema = storage::Schema(
      {storage::Column("plan", storage::ValueType::kString, false)});
  size_t start = 0;
  while (start < text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    out.rows.push_back({storage::Value(text.substr(start, end - start))});
    start = end + 1;
  }
  return out;
}

}  // namespace

using storage::Column;
using storage::RowId;
using storage::Table;
using storage::Value;
using storage::ValueType;

namespace {

/// Upper bound on a pushable LIMIT + OFFSET (guards size_t overflow when
/// summing them).
constexpr size_t kMaxPushdownLimit = std::numeric_limits<size_t>::max() / 2;

/// One-row relation reporting a mutation's effect.
Relation AffectedRelation(int64_t n) {
  Relation rel;
  rel.schema = Schema({Column("affected", ValueType::kInt, false)});
  rel.rows.push_back({Value(n)});
  return rel;
}

std::string DefaultName(const SelectItem& item) {
  if (!item.alias.empty()) return item.alias;
  if (item.agg.has_value()) {
    std::string base = AggFnName(*item.agg);
    return base + "(" + (item.expr ? item.expr->ToString() : "*") + ")";
  }
  // Plain column references keep their (unqualified) names.
  std::string s = item.expr->ToString();
  return s;
}

}  // namespace

Result<PlanPtr> SqlEngine::PlanSelect(const SelectStmt& stmt) const {
  // In multi-table queries every scan gets an alias (explicit, or the table
  // name itself) so that qualified references like "Ratings.SuID" resolve
  // and same-named columns from different tables stay distinguishable.
  auto effective_alias = [&](const TableRef& ref) {
    if (!ref.alias.empty()) return ref.alias;
    return stmt.joins.empty() ? std::string() : ref.table;
  };

  bool has_agg = false;
  bool any_star = false;
  for (const SelectItem& item : stmt.items) {
    if (item.agg.has_value()) has_agg = true;
    if (item.star) any_star = true;
  }
  bool bare_star = stmt.items.size() == 1 && stmt.items[0].star;
  bool plain_rows = !has_agg && stmt.group_by.empty() && !any_star;

  // ---- scan pushdown (DESIGN.md §11) ----
  // Single-table queries push σ, the referenced-column subset π, and
  // ORDER-BY-free LIMITs into the scan so it never materializes rows the
  // plan would immediately drop. The rewrite is result-preserving: the
  // predicate is evaluated against the identical scan schema the Filter
  // node would have seen, and rows stream out in the same slot order.
  ScanPushdown push;
  bool where_pushed = false;
  int64_t pushed_components = 0;
  bool can_push = planner_.scan_pushdown && stmt.joins.empty();
  if (can_push && stmt.where != nullptr) {
    push.predicate = stmt.where->Clone();
    where_pushed = true;
    ++pushed_components;
  }
  if (can_push && plain_rows) {
    // Project only the columns the select list and ORDER BY actually
    // reference. ORDER BY keys naming a select alias resolve against the
    // projection, not the scan, so they are excluded; every collected name
    // must resolve against the scan schema or the pruning is skipped.
    ColumnCollector cc;
    for (const SelectItem& item : stmt.items) item.expr->Accept(cc);
    std::vector<std::string> visible;
    for (const SelectItem& item : stmt.items) {
      visible.push_back(DefaultName(item));
    }
    for (const OrderItem& oi : stmt.order_by) {
      bool is_alias = false;
      for (const std::string& name : visible) {
        if (EqualsIgnoreCase(name, oi.expr->ToString())) is_alias = true;
      }
      if (!is_alias) oi.expr->Accept(cc);
    }
    auto table = db_->GetTable(stmt.from.table);
    if (table.ok() && !cc.names.empty()) {
      const std::string alias = effective_alias(stmt.from);
      Schema scan_schema = alias.empty() ? (*table)->schema()
                                         : (*table)->schema().WithPrefix(alias);
      std::vector<size_t> kept;
      bool all_resolve = true;
      for (const std::string& name : cc.names) {
        auto idx = scan_schema.FindColumn(name);
        if (!idx.has_value()) {
          all_resolve = false;
          break;
        }
        if (std::find(kept.begin(), kept.end(), *idx) == kept.end()) {
          kept.push_back(*idx);
        }
      }
      if (all_resolve && kept.size() < scan_schema.num_columns()) {
        std::sort(kept.begin(), kept.end());
        for (size_t idx : kept) {
          push.columns.push_back(scan_schema.column(idx).name);
        }
        ++pushed_components;
      }
    }
  }
  if (can_push && plain_rows && !stmt.distinct && stmt.order_by.empty() &&
      stmt.limit.has_value() && *stmt.limit < kMaxPushdownLimit &&
      stmt.offset < kMaxPushdownLimit) {
    push.limit = *stmt.limit + stmt.offset;
    if (push.limit == 0) push.limit = 1;  // LIMIT 0: scan stops on row one
    ++pushed_components;
  }

  PlanPtr plan;
  // Pruned-column names in scan-output order, kept for the
  // identity-projection elision below (push itself is moved into the scan).
  std::vector<std::string> pushed_cols = push.columns;
  if (pushed_components > 0) {
    Metrics().pushdown_rewrites->Add(pushed_components);
    plan = MakePushdownScan(stmt.from.table, effective_alias(stmt.from),
                            std::move(push));
  } else {
    plan = MakeTableScan(stmt.from.table, effective_alias(stmt.from));
  }
  for (const JoinClause& jc : stmt.joins) {
    PlanPtr right = MakeTableScan(jc.table.table, effective_alias(jc.table));
    plan = MakeJoin(std::move(plan), std::move(right),
                    jc.on ? jc.on->Clone() : nullptr,
                    jc.left ? JoinType::kLeft : JoinType::kInner);
  }
  if (stmt.where != nullptr && !where_pushed) {
    plan = MakeFilter(std::move(plan), stmt.where->Clone());
  }

  if (has_agg || !stmt.group_by.empty()) {
    // Aggregate path.
    for (const SelectItem& item : stmt.items) {
      if (item.star) {
        return Status::InvalidArgument(
            "SELECT * cannot be combined with aggregation");
      }
    }
    // Group-by columns, named after matching select aliases when possible.
    std::vector<ProjectItem> group_by;
    for (const ExprPtr& g : stmt.group_by) {
      std::string name = g->ToString();
      for (const SelectItem& item : stmt.items) {
        if (!item.agg.has_value() && item.expr != nullptr &&
            item.expr->ToString() == g->ToString()) {
          name = DefaultName(item);
          break;
        }
      }
      group_by.push_back({g->Clone(), name});
    }
    std::vector<AggregateItem> aggs;
    for (const SelectItem& item : stmt.items) {
      if (!item.agg.has_value()) continue;
      AggregateItem agg;
      agg.fn = *item.agg;
      agg.arg = item.expr ? item.expr->Clone() : nullptr;
      agg.name = DefaultName(item);
      aggs.push_back(std::move(agg));
    }
    plan = MakeAggregate(std::move(plan), std::move(group_by),
                         std::move(aggs));
    if (stmt.having != nullptr) {
      plan = MakeFilter(std::move(plan), stmt.having->Clone());
    }
    // Reorder to the select-list order (aggregate output is group cols then
    // agg cols). Non-aggregate items must appear in GROUP BY.
    std::vector<ProjectItem> final_items;
    for (const SelectItem& item : stmt.items) {
      bool found = item.agg.has_value();
      if (!item.agg.has_value()) {
        bool in_group = false;
        for (const ExprPtr& g : stmt.group_by) {
          if (g->ToString() == item.expr->ToString()) in_group = true;
        }
        if (!in_group) {
          return Status::InvalidArgument(
              "select item '" + item.expr->ToString() +
              "' is neither aggregated nor in GROUP BY");
        }
        found = true;
      }
      (void)found;
      final_items.push_back({MakeColumn(DefaultName(item)),
                             DefaultName(item)});
    }
    plan = MakeProject(std::move(plan), std::move(final_items));
  } else if (!bare_star) {
    for (const SelectItem& item : stmt.items) {
      if (item.star) {
        return Status::InvalidArgument(
            "SELECT * cannot be combined with other select items");
      }
    }
    std::vector<ProjectItem> items;
    std::vector<std::string> visible_names;
    for (const SelectItem& item : stmt.items) {
      std::string name = DefaultName(item);
      visible_names.push_back(name);
      items.push_back({item.expr->Clone(), std::move(name)});
    }
    // ORDER BY may reference either a select alias or any expression over
    // the pre-projection schema; the latter are carried through as hidden
    // columns and dropped after the sort.
    std::vector<std::string> hidden;
    for (size_t i = 0; i < stmt.order_by.size(); ++i) {
      const std::string key = stmt.order_by[i].expr->ToString();
      bool is_alias = false;
      for (const std::string& name : visible_names) {
        if (EqualsIgnoreCase(name, key)) is_alias = true;
      }
      if (!is_alias) {
        std::string hname = "__sort_" + std::to_string(i);
        items.push_back({stmt.order_by[i].expr->Clone(), hname});
        hidden.push_back(hname);
      }
    }
    if (stmt.distinct && !hidden.empty()) {
      return Status::Unimplemented(
          "SELECT DISTINCT with ORDER BY on non-selected expressions");
    }
    // Identity-projection elision: when column pruning pushed exactly the
    // select list into the scan — same columns, same order, same output
    // spelling, every item a bare column reference — the Project would
    // copy every row to rebuild the relation the scan already produced.
    // A bare ColumnExpr renders as its unadorned name, so ToString
    // equality against the scan-schema spelling identifies the shape.
    bool identity = hidden.empty() && !pushed_cols.empty() &&
                    items.size() == pushed_cols.size();
    for (size_t i = 0; identity && i < items.size(); ++i) {
      if (items[i].name != pushed_cols[i] ||
          items[i].expr->ToString() != pushed_cols[i]) {
        identity = false;
      }
    }
    if (!identity) {
      plan = MakeProject(std::move(plan), std::move(items));
    }
    if (stmt.distinct) plan = MakeDistinct(std::move(plan));
    if (!stmt.order_by.empty()) {
      std::vector<SortKey> keys;
      size_t h = 0;
      for (const OrderItem& oi : stmt.order_by) {
        const std::string key = oi.expr->ToString();
        bool is_alias = false;
        for (const std::string& name : visible_names) {
          if (EqualsIgnoreCase(name, key)) is_alias = true;
        }
        SortKey sk;
        sk.ascending = oi.ascending;
        sk.expr = is_alias ? MakeColumn(key) : MakeColumn(hidden[h++]);
        keys.push_back(std::move(sk));
      }
      // ORDER BY + LIMIT fuses into a bounded top-k heap; output is
      // byte-identical to Sort + Limit (TopNNode ties break on row index,
      // matching the stable sort).
      if (stmt.limit.has_value() && planner_.bounded_topk) {
        plan = MakeTopN(std::move(plan), std::move(keys), *stmt.limit,
                        stmt.offset);
      } else {
        plan = MakeSort(std::move(plan), std::move(keys));
        if (stmt.limit.has_value()) {
          plan = MakeLimit(std::move(plan), *stmt.limit, stmt.offset);
        }
      }
    } else if (stmt.limit.has_value()) {
      plan = MakeLimit(std::move(plan), *stmt.limit, stmt.offset);
    }
    if (!hidden.empty()) {
      std::vector<ProjectItem> drop;
      for (const std::string& name : visible_names) {
        drop.push_back({MakeColumn(name), name});
      }
      plan = MakeProject(std::move(plan), std::move(drop));
    }
    return plan;
  }

  // Bare star or aggregate path: ORDER BY binds directly to the current
  // output schema. Sort + Limit fuses into TopN unless a DISTINCT sits
  // between them (bare-star DISTINCT dedupes after the sort, so bounding
  // the sort first would change the result).
  bool distinct_between = stmt.distinct && bare_star;
  if (!stmt.order_by.empty()) {
    std::vector<SortKey> keys;
    for (const OrderItem& oi : stmt.order_by) {
      keys.push_back({oi.expr->Clone(), oi.ascending});
    }
    if (stmt.limit.has_value() && planner_.bounded_topk &&
        !distinct_between) {
      plan = MakeTopN(std::move(plan), std::move(keys), *stmt.limit,
                      stmt.offset);
      return plan;
    }
    plan = MakeSort(std::move(plan), std::move(keys));
  }
  if (distinct_between) plan = MakeDistinct(std::move(plan));
  if (stmt.limit.has_value()) {
    plan = MakeLimit(std::move(plan), *stmt.limit, stmt.offset);
  }
  return plan;
}

Result<Relation> SqlEngine::Execute(const std::string& sql,
                                    const ParamMap& params) {
  // EXPLAIN [ANALYZE] is an engine-level prefix, not parser syntax: the
  // inner statement is parsed and planned exactly as it would run.
  std::string_view rest = Trim(std::string_view(sql));
  if (ConsumeKeyword(&rest, "EXPLAIN")) {
    std::string inner(rest);
    if (ConsumeKeyword(&rest, "ANALYZE")) {
      CR_ASSIGN_OR_RETURN(std::string text,
                          ExplainAnalyze(std::string(rest), params));
      return PlanLines(text);
    }
    CR_ASSIGN_OR_RETURN(std::string text, Explain(inner));
    return PlanLines(text);
  }
  if (profiling_) return ExecuteProfiled(sql, params);
  return ExecuteStatement(sql, params, nullptr);
}

Result<Relation> SqlEngine::Execute(const std::string& sql,
                                    const ParamMap& params,
                                    QueryProfile* profile) {
  profile->statement = sql;
  profile->root.reset();
  uint64_t t0 = obs::NowNs();
  Result<Relation> result = ExecuteStatement(sql, params, profile);
  // Full-statement wall time (parse + plan + execute), so the root
  // operator's self-percentage reads against what the caller actually paid.
  profile->total_ns = obs::NowNs() - t0;
  return result;
}

Result<Relation> SqlEngine::ExecuteProfiled(const std::string& sql,
                                            const ParamMap& params,
                                            QueryProfile* out) {
  QueryProfile local;
  QueryProfile* profile = out != nullptr ? out : &local;
  Result<Relation> result = Execute(sql, params, profile);
  obs::RecordedProfile rec;
  rec.kind = "sql";
  rec.query = sql;
  rec.total_ns = profile->total_ns;
  rec.text = profile->Render();
  rec.json = profile->RenderJson();
  obs::ProfileRecorder::Default().Submit(std::move(rec));
  return result;
}

Result<std::string> SqlEngine::ExplainAnalyze(const std::string& sql,
                                              const ParamMap& params) {
  QueryProfile profile;
  CR_RETURN_IF_ERROR(ExecuteProfiled(sql, params, &profile).status());
  return profile.Render();
}

Result<Relation> SqlEngine::ExecuteStatement(const std::string& sql,
                                             const ParamMap& params,
                                             QueryProfile* profile) {
  const SqlMetrics& m = Metrics();
  obs::ScopedSpan span(obs::stage::kSqlExec, m.execute_ns,
                       &obs::TraceSink::Default(),
                       obs::ScopedSpan::Mode::kAlways);
  m.statements->Add();
  Result<Statement> parsed = [&] {
    obs::ScopedSpan parse(obs::stage::kSqlParse, m.parse_ns,
                          &obs::TraceSink::Default(),
                          obs::ScopedSpan::Mode::kAlways);
    return ParseSql(sql);
  }();
  CR_ASSIGN_OR_RETURN(Statement stmt, std::move(parsed));
  if (validator_) CR_RETURN_IF_ERROR(validator_(stmt));
  if (stmt.select != nullptr) {
    CR_ASSIGN_OR_RETURN(PlanPtr plan, PlanSelect(*stmt.select));
    ExecContext ctx;
    ctx.db = db_;
    ctx.params = params;
    ctx.exec = exec_;
    if (profile == nullptr) return plan->Execute(ctx);
    ProfileCollector collector;
    ctx.profile = &collector;
    Result<Relation> result = plan->Execute(ctx);
    profile->root = collector.TakeRoot();
    return result;
  }
  if (stmt.insert != nullptr) return ExecuteInsert(*stmt.insert, params);
  if (stmt.update != nullptr) return ExecuteUpdate(*stmt.update, params);
  if (stmt.del != nullptr) return ExecuteDelete(*stmt.del, params);
  if (stmt.create_table != nullptr) {
    return ExecuteCreateTable(*stmt.create_table);
  }
  return Status::Internal("empty statement");
}

Result<std::string> SqlEngine::Explain(const std::string& sql) {
  CR_ASSIGN_OR_RETURN(Statement stmt, ParseSql(sql));
  if (stmt.select == nullptr) {
    return Status::InvalidArgument("EXPLAIN supports SELECT only");
  }
  CR_ASSIGN_OR_RETURN(PlanPtr plan, PlanSelect(*stmt.select));
  return plan->Explain(0);
}

Result<Relation> SqlEngine::ExecuteInsert(const InsertStmt& stmt,
                                          const ParamMap& params) {
  CR_ASSIGN_OR_RETURN(Table * table, db_->GetTable(stmt.table));
  const Schema& schema = table->schema();

  std::vector<size_t> targets;
  if (stmt.columns.empty()) {
    for (size_t i = 0; i < schema.num_columns(); ++i) targets.push_back(i);
  } else {
    for (const std::string& c : stmt.columns) {
      CR_ASSIGN_OR_RETURN(size_t ci, schema.ColumnIndex(c));
      targets.push_back(ci);
    }
  }

  const Schema empty_schema;
  const Row empty_row;
  int64_t affected = 0;
  for (const auto& exprs : stmt.rows) {
    if (exprs.size() != targets.size()) {
      return Status::InvalidArgument(
          "INSERT row has " + std::to_string(exprs.size()) +
          " values for " + std::to_string(targets.size()) + " columns");
    }
    Row row(schema.num_columns(), Value::Null());
    for (size_t i = 0; i < exprs.size(); ++i) {
      ExprPtr e = exprs[i]->Clone();
      CR_RETURN_IF_ERROR(e->Bind(empty_schema, &params));
      CR_ASSIGN_OR_RETURN(Value v, e->Eval(empty_row));
      row[targets[i]] = std::move(v);
    }
    CR_RETURN_IF_ERROR(db_->Insert(stmt.table, std::move(row)).status());
    ++affected;
  }
  return AffectedRelation(affected);
}

Result<Relation> SqlEngine::ExecuteUpdate(const UpdateStmt& stmt,
                                          const ParamMap& params) {
  CR_ASSIGN_OR_RETURN(Table * table, db_->GetTable(stmt.table));
  const Schema& schema = table->schema();

  ExprPtr where;
  if (stmt.where != nullptr) {
    where = stmt.where->Clone();
    CR_RETURN_IF_ERROR(where->Bind(schema, &params));
  }
  std::vector<std::pair<size_t, ExprPtr>> assigns;
  for (const auto& [col, expr] : stmt.assignments) {
    CR_ASSIGN_OR_RETURN(size_t ci, schema.ColumnIndex(col));
    ExprPtr e = expr->Clone();
    CR_RETURN_IF_ERROR(e->Bind(schema, &params));
    assigns.emplace_back(ci, std::move(e));
  }

  // Two-phase: evaluate all updates first (so index mutation during the
  // scan cannot skew predicate evaluation), then apply.
  std::vector<std::pair<RowId, Row>> updates;
  Status failure = Status::OK();
  table->Scan([&](RowId id, const Row& row) {
    if (!failure.ok()) return;
    if (where != nullptr) {
      auto v = where->Eval(row);
      if (!v.ok()) {
        failure = v.status();
        return;
      }
      if (v->is_null() || v->type() != ValueType::kBool || !v->AsBool()) {
        return;
      }
    }
    Row updated = row;
    for (const auto& [ci, e] : assigns) {
      auto v = e->Eval(row);
      if (!v.ok()) {
        failure = v.status();
        return;
      }
      updated[ci] = std::move(*v);
    }
    updates.emplace_back(id, std::move(updated));
  });
  CR_RETURN_IF_ERROR(failure);
  for (auto& [id, row] : updates) {
    CR_RETURN_IF_ERROR(table->Update(id, std::move(row)));
  }
  return AffectedRelation(static_cast<int64_t>(updates.size()));
}

Result<Relation> SqlEngine::ExecuteDelete(const DeleteStmt& stmt,
                                          const ParamMap& params) {
  CR_ASSIGN_OR_RETURN(Table * table, db_->GetTable(stmt.table));
  ExprPtr where;
  if (stmt.where != nullptr) {
    where = stmt.where->Clone();
    CR_RETURN_IF_ERROR(where->Bind(table->schema(), &params));
  }
  std::vector<RowId> doomed;
  Status failure = Status::OK();
  table->Scan([&](RowId id, const Row& row) {
    if (!failure.ok()) return;
    if (where != nullptr) {
      auto v = where->Eval(row);
      if (!v.ok()) {
        failure = v.status();
        return;
      }
      if (v->is_null() || v->type() != ValueType::kBool || !v->AsBool()) {
        return;
      }
    }
    doomed.push_back(id);
  });
  CR_RETURN_IF_ERROR(failure);
  for (RowId id : doomed) CR_RETURN_IF_ERROR(table->Delete(id));
  return AffectedRelation(static_cast<int64_t>(doomed.size()));
}

Result<Relation> SqlEngine::ExecuteCreateTable(const CreateTableStmt& stmt) {
  CR_RETURN_IF_ERROR(db_->CreateTable(stmt.table, Schema(stmt.columns),
                                      stmt.primary_key)
                         .status());
  return AffectedRelation(0);
}

}  // namespace courserank::query
