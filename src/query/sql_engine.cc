#include "query/sql_engine.h"

#include <algorithm>
#include <cctype>
#include <limits>
#include <string_view>

#include "common/strings.h"
#include "obs/metrics.h"
#include "obs/profile_recorder.h"
#include "obs/trace.h"
#include "query/sql_parser.h"
#include "query/vector_ops.h"

namespace courserank::query {

namespace {

/// SQL-engine metrics, resolved once per process. Statements are ms-scale,
/// so parse and execute are timed unconditionally (ScopedSpan kAlways) —
/// every statement lands in the histograms, not just trace-sampled ones.
struct SqlMetrics {
  obs::Histogram* parse_ns;
  obs::Histogram* execute_ns;
  obs::Counter* statements;
  obs::Counter* pushdown_rewrites;
  obs::Counter* distinct_elided;
  obs::Counter* join_build_left;
};

const SqlMetrics& Metrics() {
  static const SqlMetrics m = [] {
    obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
    return SqlMetrics{reg.GetHistogram("cr_sql_parse_ns"),
                      reg.GetHistogram("cr_sql_execute_ns"),
                      reg.GetCounter("cr_sql_statements_total"),
                      reg.GetCounter("cr_exec_pushdown_rewrites_total"),
                      reg.GetCounter("cr_planner_distinct_elided_total"),
                      reg.GetCounter("cr_planner_join_build_left_total")};
  }();
  return m;
}

/// Collects every column name an expression tree references.
class ColumnCollector : public ExprVisitor {
 public:
  std::vector<std::string> names;

  void VisitColumn(const std::string& name) override {
    names.push_back(name);
  }
  void VisitUnary(UnaryOp, const Expr& operand) override {
    operand.Accept(*this);
  }
  void VisitBinary(BinaryOp, const Expr& lhs, const Expr& rhs) override {
    lhs.Accept(*this);
    rhs.Accept(*this);
  }
  void VisitIsNull(const Expr& operand, bool) override {
    operand.Accept(*this);
  }
  void VisitInList(const Expr& operand,
                   const std::vector<storage::Value>&) override {
    operand.Accept(*this);
  }
  void VisitCall(const std::string&,
                 const std::vector<ExprPtr>& args) override {
    for (const ExprPtr& a : args) a->Accept(*this);
  }
};

/// Consumes a leading keyword (case-insensitive, whole word) plus the
/// whitespace after it. Leaves *s untouched and returns false otherwise.
bool ConsumeKeyword(std::string_view* s, std::string_view kw) {
  if (s->size() < kw.size()) return false;
  if (!EqualsIgnoreCase(s->substr(0, kw.size()), kw)) return false;
  std::string_view rest = s->substr(kw.size());
  if (!rest.empty() &&
      !std::isspace(static_cast<unsigned char>(rest.front()))) {
    return false;
  }
  *s = Trim(rest);
  return true;
}

/// Wraps rendered plan text as the EXPLAIN result relation: one `plan`
/// string column, one row per line.
Relation PlanLines(const std::string& text) {
  Relation out;
  out.schema = storage::Schema(
      {storage::Column("plan", storage::ValueType::kString, false)});
  size_t start = 0;
  while (start < text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    out.rows.push_back({storage::Value(text.substr(start, end - start))});
    start = end + 1;
  }
  return out;
}

}  // namespace

using storage::Column;
using storage::RowId;
using storage::Table;
using storage::Value;
using storage::ValueType;

namespace {

/// Upper bound on a pushable LIMIT + OFFSET (guards size_t overflow when
/// summing them).
constexpr size_t kMaxPushdownLimit = std::numeric_limits<size_t>::max() / 2;

/// One-row relation reporting a mutation's effect.
Relation AffectedRelation(int64_t n) {
  Relation rel;
  rel.schema = Schema({Column("affected", ValueType::kInt, false)});
  rel.rows.push_back({Value(n)});
  return rel;
}

std::string DefaultName(const SelectItem& item) {
  if (!item.alias.empty()) return item.alias;
  if (item.agg.has_value()) {
    std::string base = AggFnName(*item.agg);
    return base + "(" + (item.expr ? item.expr->ToString() : "*") + ")";
  }
  // Plain column references keep their (unqualified) names.
  std::string s = item.expr->ToString();
  return s;
}

// ---- planner-side property tracking (DESIGN.md §15) ----

/// Sound StaticClaims threaded bottom-up through plan construction — every
/// stamped fact is a runtime guarantee, asserted by
/// ExecOptions::check_static_claims — plus planner-only state: the full key
/// list (StaticClaims carries one key; heuristics want all of them) and an
/// UNSOUND row estimate from Table::size() used only for cost choices like
/// the join build side, never stamped as a claim.
struct PlanFacts {
  StaticClaims claims;
  std::vector<std::vector<std::string>> keys;
  size_t est_rows = StaticClaims::kUnbounded;
};

constexpr size_t kUnboundedCard = StaticClaims::kUnbounded;

size_t MinCard(size_t a, size_t b) { return a < b ? a : b; }

size_t SatMul(size_t a, size_t b) {
  if (a == 0 || b == 0) return 0;
  if (a == kUnboundedCard || b == kUnboundedCard) return kUnboundedCard;
  if (a > kUnboundedCard / b) return kUnboundedCard;
  return a * b;
}

/// Attaches facts to a node; the strongest (first-derived) key becomes the
/// node's uniqueness claim.
void Stamp(const PlanPtr& plan, const PlanFacts& f) {
  StaticClaims c = f.claims;
  if (!f.keys.empty()) c.key = f.keys.front();
  plan->set_claims(std::move(c));
}

/// Facts of a base-table scan: exact row count, NOT NULL columns, and
/// unique-index keys, alias-qualified like the scan's output schema. The
/// count is sound because plans execute immediately after planning under
/// the engine's single-writer discipline.
PlanFacts TableFacts(const storage::Database* db, const std::string& name,
                     const std::string& alias) {
  PlanFacts f;
  auto table = db->GetTable(name);
  if (!table.ok()) return f;  // execution will report the real error
  const Table& t = **table;
  auto qual = [&](const std::string& col) {
    return alias.empty() ? col : alias + "." + col;
  };
  f.claims.card_min = f.claims.card_max = t.size();
  f.est_rows = t.size();
  const Schema& schema = t.schema();
  for (const Column& c : schema.columns()) {
    if (!c.nullable) f.claims.non_null.push_back(qual(c.name));
  }
  for (const storage::HashIndex* idx : t.hash_indexes()) {
    if (!idx->unique()) continue;
    std::vector<std::string> key;
    for (size_t ci : idx->column_indices()) {
      key.push_back(qual(schema.columns()[ci].name));
    }
    if (!key.empty()) f.keys.push_back(std::move(key));
  }
  return f;
}

/// Join output facts. Matches stream grouped by left row in left-input
/// order (both hash orientations and the nested-loop path), so the left
/// sort order survives. A left-outer join emits every left row at least
/// once, so combined (left ∪ right) keys survive, but NULL padding voids
/// the right side's non-NULL guarantees.
PlanFacts JoinFacts(const PlanFacts& l, const PlanFacts& r, bool has_cond,
                    bool left_outer) {
  PlanFacts f;
  f.claims.card_max = SatMul(l.claims.card_max, r.claims.card_max);
  f.est_rows = SatMul(l.est_rows, r.est_rows);
  if (left_outer) {
    f.claims.card_min = l.claims.card_min;
  } else if (!has_cond) {
    f.claims.card_min = SatMul(l.claims.card_min, r.claims.card_min);
  }
  f.claims.sort = l.claims.sort;
  f.claims.non_null = l.claims.non_null;
  if (!left_outer) {
    f.claims.non_null.insert(f.claims.non_null.end(),
                             r.claims.non_null.begin(),
                             r.claims.non_null.end());
  }
  for (const std::vector<std::string>& lk : l.keys) {
    for (const std::vector<std::string>& rk : r.keys) {
      std::vector<std::string> combined = lk;
      combined.insert(combined.end(), rk.begin(), rk.end());
      f.keys.push_back(std::move(combined));
    }
  }
  return f;
}

/// Keeps only the claims fully expressible in the output columns `names`
/// (case-insensitive): surviving non-NULL entries, keys whose every column
/// survives, and the longest surviving sort prefix.
void FilterFactsToOutput(PlanFacts* f, const std::vector<std::string>& names) {
  auto has = [&](const std::string& n) {
    for (const std::string& name : names) {
      if (EqualsIgnoreCase(name, n)) return true;
    }
    return false;
  };
  std::vector<std::string> non_null;
  for (const std::string& n : f->claims.non_null) {
    if (has(n)) non_null.push_back(n);
  }
  f->claims.non_null = std::move(non_null);
  std::vector<std::vector<std::string>> keys;
  for (const std::vector<std::string>& key : f->keys) {
    bool all = true;
    for (const std::string& c : key) all = all && has(c);
    if (all && !key.empty()) keys.push_back(key);
  }
  f->keys = std::move(keys);
  size_t prefix = 0;
  while (prefix < f->claims.sort.size() &&
         has(f->claims.sort[prefix].column)) {
    ++prefix;
  }
  f->claims.sort.resize(prefix);
}

std::string Unqualify(const std::string& s) {
  size_t dot = s.rfind('.');
  return dot == std::string::npos ? s : s.substr(dot + 1);
}

/// Splits an expression at its top-level ANDs ("a AND b AND c" → {a, b, c});
/// anything else is a single conjunct. Used by the join-side conjunct
/// pushdown (DESIGN.md §16).
void SplitConjuncts(const Expr& e, std::vector<const Expr*>* out) {
  struct AndProbe final : ExprVisitor {
    const Expr* lhs = nullptr;
    const Expr* rhs = nullptr;
    void VisitBinary(BinaryOp op, const Expr& l, const Expr& r) override {
      if (op == BinaryOp::kAnd) {
        lhs = &l;
        rhs = &r;
      }
    }
  } probe;
  e.Accept(probe);
  if (probe.lhs != nullptr) {
    SplitConjuncts(*probe.lhs, out);
    SplitConjuncts(*probe.rhs, out);
  } else {
    out->push_back(&e);
  }
}

/// True when `s` renders like a bare (possibly qualified) column reference —
/// the shape ColumnExpr::ToString produces. Computed expressions render
/// with operators, parentheses, or quotes and never match.
bool LooksLikeColumnRef(const std::string& s) {
  if (s.empty()) return false;
  char first = s[0];
  if (!std::isalpha(static_cast<unsigned char>(first)) && first != '_') {
    return false;
  }
  for (char c : s) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_' &&
        c != '.') {
      return false;
    }
  }
  return !EqualsIgnoreCase(s, "TRUE") && !EqualsIgnoreCase(s, "FALSE") &&
         !EqualsIgnoreCase(s, "NULL");
}

/// Maps an input-claim column name to its projected output name via the
/// pass-through `pairs` (input spelling → output name). Exact match first;
/// the unqualified-suffix fallback bridges alias-prefix drift but is only
/// taken when `allow_suffix` (single-table statements — in joins a bare
/// name could bind to either side) and when one side is unqualified:
/// "A.x" never maps to "B.x".
std::optional<std::string> MapName(
    const std::vector<std::pair<std::string, std::string>>& pairs,
    const std::string& name, bool allow_suffix) {
  for (const auto& [src, dst] : pairs) {
    if (EqualsIgnoreCase(src, name)) return dst;
  }
  if (!allow_suffix) return std::nullopt;
  bool name_bare = name.find('.') == std::string::npos;
  std::optional<std::string> found;
  for (const auto& [src, dst] : pairs) {
    bool src_bare = src.find('.') == std::string::npos;
    if (!name_bare && !src_bare) continue;
    if (EqualsIgnoreCase(Unqualify(src), Unqualify(name))) {
      if (found.has_value()) return std::nullopt;  // ambiguous
      found = dst;
    }
  }
  return found;
}

/// Maps facts through a projection. `pairs` lists the pass-through columns
/// (bare column references only — computed expressions guarantee nothing).
/// Cardinality is preserved; claims whose source column is not passed
/// through are dropped.
PlanFacts ProjectFacts(
    const PlanFacts& in,
    const std::vector<std::pair<std::string, std::string>>& pairs,
    bool allow_suffix) {
  PlanFacts f;
  f.claims.card_min = in.claims.card_min;
  f.claims.card_max = in.claims.card_max;
  f.est_rows = in.est_rows;
  for (const std::string& n : in.claims.non_null) {
    if (auto dst = MapName(pairs, n, allow_suffix)) {
      f.claims.non_null.push_back(*dst);
    }
  }
  for (const std::vector<std::string>& key : in.keys) {
    std::vector<std::string> mapped;
    for (const std::string& c : key) {
      auto dst = MapName(pairs, c, allow_suffix);
      if (!dst.has_value()) break;
      mapped.push_back(*dst);
    }
    if (!key.empty() && mapped.size() == key.size()) {
      f.keys.push_back(std::move(mapped));
    }
  }
  for (const StaticClaims::SortBy& s : in.claims.sort) {
    auto dst = MapName(pairs, s.column, allow_suffix);
    if (!dst.has_value()) break;
    f.claims.sort.push_back({*dst, s.ascending});
  }
  return f;
}

/// EXPLAIN STATIC rendering: the Explain tree with each node's claims.
std::string RenderStatic(const PlanNode& node, int indent) {
  std::string out(static_cast<size_t>(indent) * 2, ' ');
  out += node.Describe();
  if (node.claims().has_value()) {
    out += "  " + node.claims()->ToString();
  }
  out += "\n";
  for (const PlanNode* c : node.Children()) {
    out += RenderStatic(*c, indent + 1);
  }
  return out;
}

}  // namespace

Result<PlanPtr> SqlEngine::PlanSelect(const SelectStmt& stmt) const {
  return PlanSelectWith(stmt, planner_);
}

Result<PlanPtr> SqlEngine::PlanSelectWith(const SelectStmt& stmt,
                                          const PlannerOptions& opts) const {
  // In multi-table queries every scan gets an alias (explicit, or the table
  // name itself) so that qualified references like "Ratings.SuID" resolve
  // and same-named columns from different tables stay distinguishable.
  auto effective_alias = [&](const TableRef& ref) {
    if (!ref.alias.empty()) return ref.alias;
    return stmt.joins.empty() ? std::string() : ref.table;
  };
  // Claim names map through projections by unqualified suffix only when a
  // bare name is unambiguous — i.e. single-table statements.
  const bool allow_suffix = stmt.joins.empty();
  // Tightens cardinality claims through a LIMIT/OFFSET.
  auto apply_limit = [](PlanFacts* f, size_t limit, size_t offset) {
    f->claims.card_max = MinCard(f->claims.card_max, limit);
    f->claims.card_min = f->claims.card_min > offset
                             ? MinCard(f->claims.card_min - offset, limit)
                             : 0;
    f->est_rows = MinCard(f->est_rows, limit);
  };

  bool has_agg = false;
  bool any_star = false;
  for (const SelectItem& item : stmt.items) {
    if (item.agg.has_value()) has_agg = true;
    if (item.star) any_star = true;
  }
  bool bare_star = stmt.items.size() == 1 && stmt.items[0].star;
  bool plain_rows = !has_agg && stmt.group_by.empty() && !any_star;

  // ---- scan pushdown (DESIGN.md §11) ----
  // Single-table queries push σ, the referenced-column subset π, and
  // ORDER-BY-free LIMITs into the scan so it never materializes rows the
  // plan would immediately drop. The rewrite is result-preserving: the
  // predicate is evaluated against the identical scan schema the Filter
  // node would have seen, and rows stream out in the same slot order.
  ScanPushdown push;
  bool where_pushed = false;
  int64_t pushed_components = 0;
  bool can_push = opts.scan_pushdown && stmt.joins.empty();
  if (can_push && stmt.where != nullptr) {
    push.predicate = stmt.where->Clone();
    where_pushed = true;
    ++pushed_components;
  }
  if (can_push && plain_rows) {
    // Project only the columns the select list and ORDER BY actually
    // reference. ORDER BY keys naming a select alias resolve against the
    // projection, not the scan, so they are excluded; every collected name
    // must resolve against the scan schema or the pruning is skipped.
    ColumnCollector cc;
    for (const SelectItem& item : stmt.items) item.expr->Accept(cc);
    std::vector<std::string> visible;
    for (const SelectItem& item : stmt.items) {
      visible.push_back(DefaultName(item));
    }
    for (const OrderItem& oi : stmt.order_by) {
      bool is_alias = false;
      for (const std::string& name : visible) {
        if (EqualsIgnoreCase(name, oi.expr->ToString())) is_alias = true;
      }
      if (!is_alias) oi.expr->Accept(cc);
    }
    auto table = db_->GetTable(stmt.from.table);
    if (table.ok() && !cc.names.empty()) {
      const std::string alias = effective_alias(stmt.from);
      Schema scan_schema = alias.empty() ? (*table)->schema()
                                         : (*table)->schema().WithPrefix(alias);
      std::vector<size_t> kept;
      bool all_resolve = true;
      for (const std::string& name : cc.names) {
        auto idx = scan_schema.FindColumn(name);
        if (!idx.has_value()) {
          all_resolve = false;
          break;
        }
        if (std::find(kept.begin(), kept.end(), *idx) == kept.end()) {
          kept.push_back(*idx);
        }
      }
      if (all_resolve && kept.size() < scan_schema.num_columns()) {
        std::sort(kept.begin(), kept.end());
        for (size_t idx : kept) {
          push.columns.push_back(scan_schema.column(idx).name);
        }
        ++pushed_components;
      }
    }
  }
  if (can_push && plain_rows && !stmt.distinct && stmt.order_by.empty() &&
      stmt.limit.has_value() && *stmt.limit < kMaxPushdownLimit &&
      stmt.offset < kMaxPushdownLimit) {
    push.limit = *stmt.limit + stmt.offset;
    if (push.limit == 0) push.limit = 1;  // LIMIT 0: scan stops on row one
    ++pushed_components;
  }

  // ---- join-side conjunct pushdown (fusion tier, DESIGN.md §16) ----
  // For all-inner joins, WHERE conjuncts whose columns resolve in exactly
  // one scan's (alias-prefixed) schema — and in no other scan's — and whose
  // shape lies in the compilable subset move into that scan's pushdown
  // slot, so rows a per-side σ would drop after the join are never
  // materialized, let alone joined. Filtering one input of an inner hash
  // join preserves the probe-order output contract, and the scan applies
  // the identical keep condition (tri-state TRUE) the post-join Filter
  // would, so the rewrite is byte-identical. Conjuncts that straddle scans,
  // reference no column, resolve ambiguously, or fall outside the
  // compilable shape stay in the residual post-join Filter.
  ExprPtr residual_where =
      stmt.where != nullptr && !where_pushed ? stmt.where->Clone() : nullptr;
  std::vector<ScanPushdown> join_push(stmt.joins.size() + 1);
  {
    bool all_inner = true;
    for (const JoinClause& jc : stmt.joins) all_inner = all_inner && !jc.left;
    std::vector<Schema> scan_schemas;
    bool schemas_ok =
        opts.scan_pushdown && opts.fuse_pipelines && !stmt.joins.empty() &&
        all_inner && residual_where != nullptr;
    if (schemas_ok) {
      auto add_schema = [&](const TableRef& ref) {
        auto table = db_->GetTable(ref.table);
        if (!table.ok()) return false;
        scan_schemas.push_back(
            (*table)->schema().WithPrefix(effective_alias(ref)));
        return true;
      };
      schemas_ok = add_schema(stmt.from);
      for (const JoinClause& jc : stmt.joins) {
        schemas_ok = schemas_ok && add_schema(jc.table);
      }
    }
    if (schemas_ok) {
      std::vector<const Expr*> conjuncts;
      SplitConjuncts(*residual_where, &conjuncts);
      std::vector<ExprPtr> kept;
      bool any_pushed = false;
      for (const Expr* c : conjuncts) {
        ColumnCollector cc;
        c->Accept(cc);
        int target = -1;
        bool unique = !cc.names.empty() && CompilableShape(*c);
        for (size_t s = 0; unique && s < scan_schemas.size(); ++s) {
          bool all = true;
          bool any = false;
          for (const std::string& n : cc.names) {
            bool resolves = scan_schemas[s].FindColumn(n).has_value();
            all = all && resolves;
            any = any || resolves;
          }
          if (all) {
            if (target >= 0) {
              unique = false;  // resolves in two scans: would be ambiguous
            } else {
              target = static_cast<int>(s);
            }
          } else if (any) {
            unique = false;  // straddles scans or partially resolves
          }
        }
        if (unique && target >= 0) {
          ExprPtr& slot = join_push[static_cast<size_t>(target)].predicate;
          slot = slot == nullptr ? c->Clone()
                                 : MakeBinary(BinaryOp::kAnd, std::move(slot),
                                              c->Clone());
          any_pushed = true;
        } else {
          kept.push_back(c->Clone());
        }
      }
      if (any_pushed) {
        residual_where = nullptr;
        for (ExprPtr& k : kept) {
          residual_where =
              residual_where == nullptr
                  ? std::move(k)
                  : MakeBinary(BinaryOp::kAnd, std::move(residual_where),
                               std::move(k));
        }
      }
    }
  }
  // A conjunct assigned to the base scan rides the ordinary pushdown slot.
  if (join_push[0].predicate != nullptr) {
    push.predicate = std::move(join_push[0].predicate);
    ++pushed_components;
  }

  PlanPtr plan;
  // Pruned-column names in scan-output order, kept for the
  // identity-projection elision below (push itself is moved into the scan).
  std::vector<std::string> pushed_cols = push.columns;
  size_t pushed_limit = push.limit;
  PlanFacts facts =
      TableFacts(db_, stmt.from.table, effective_alias(stmt.from));
  if (!pushed_cols.empty()) FilterFactsToOutput(&facts, pushed_cols);
  // Any predicate in the scan (whole WHERE or a fused-tier conjunct) can
  // drop rows, so the floor collapses.
  if (push.predicate != nullptr) facts.claims.card_min = 0;
  if (pushed_limit > 0) {
    facts.claims.card_max = MinCard(facts.claims.card_max, pushed_limit);
    facts.claims.card_min = MinCard(facts.claims.card_min, pushed_limit);
    facts.est_rows = MinCard(facts.est_rows, pushed_limit);
  }
  if (pushed_components > 0) {
    Metrics().pushdown_rewrites->Add(pushed_components);
    plan = MakePushdownScan(stmt.from.table, effective_alias(stmt.from),
                            std::move(push));
  } else {
    plan = MakeTableScan(stmt.from.table, effective_alias(stmt.from));
  }
  Stamp(plan, facts);
  for (size_t ji = 0; ji < stmt.joins.size(); ++ji) {
    const JoinClause& jc = stmt.joins[ji];
    PlanFacts right_facts =
        TableFacts(db_, jc.table.table, effective_alias(jc.table));
    // Build-side choice: hash the left input instead of the right when the
    // left is statically much smaller. The left bound uses the sound
    // card_max when finite (it reflects pushed limits); the right side is a
    // base table with an exact count.
    JoinBuildSide build = JoinBuildSide::kRight;
    if (opts.join_build_side && !jc.left && jc.on != nullptr) {
      size_t lrows = facts.claims.card_max != kUnboundedCard
                         ? facts.claims.card_max
                         : facts.est_rows;
      size_t rrows = right_facts.est_rows;
      if (lrows != kUnboundedCard && rrows != kUnboundedCard && rrows >= 8 &&
          lrows < rrows / 4) {
        build = JoinBuildSide::kLeft;
        Metrics().join_build_left->Add();
      }
    }
    PlanPtr right;
    if (join_push[ji + 1].predicate != nullptr) {
      // Right-side conjunct from the fusion tier: filter before the build.
      right_facts.claims.card_min = 0;
      Metrics().pushdown_rewrites->Add(1);
      right = MakePushdownScan(jc.table.table, effective_alias(jc.table),
                               std::move(join_push[ji + 1]));
    } else {
      right = MakeTableScan(jc.table.table, effective_alias(jc.table));
    }
    Stamp(right, right_facts);
    plan = MakeJoin(std::move(plan), std::move(right),
                    jc.on ? jc.on->Clone() : nullptr,
                    jc.left ? JoinType::kLeft : JoinType::kInner, build);
    facts = JoinFacts(facts, right_facts, jc.on != nullptr, jc.left);
    Stamp(plan, facts);
  }
  // Residual WHERE: whatever the pushdown passes above could not claim.
  // When the fusion tier is on, a compilable-shape residual over plain rows
  // is deferred — the projection branch below folds it and the project into
  // one FusedPipelineNode instead of emitting a standalone Filter.
  bool fuse_fp = false;
  if (residual_where != nullptr) {
    facts.claims.card_min = 0;
    fuse_fp = opts.fuse_pipelines && plain_rows &&
              CompilableShape(*residual_where);
    if (!fuse_fp) {
      plan = MakeFilter(std::move(plan), residual_where->Clone());
      Stamp(plan, facts);
    }
  }

  if (has_agg || !stmt.group_by.empty()) {
    // Aggregate path.
    for (const SelectItem& item : stmt.items) {
      if (item.star) {
        return Status::InvalidArgument(
            "SELECT * cannot be combined with aggregation");
      }
    }
    // Group-by columns, named after matching select aliases when possible.
    std::vector<ProjectItem> group_by;
    std::vector<std::pair<std::string, std::string>> group_pairs;
    for (const ExprPtr& g : stmt.group_by) {
      std::string name = g->ToString();
      for (const SelectItem& item : stmt.items) {
        if (!item.agg.has_value() && item.expr != nullptr &&
            item.expr->ToString() == g->ToString()) {
          name = DefaultName(item);
          break;
        }
      }
      if (LooksLikeColumnRef(g->ToString())) {
        group_pairs.emplace_back(g->ToString(), name);
      }
      group_by.push_back({g->Clone(), name});
    }
    std::vector<std::string> group_names;
    for (const ProjectItem& gi : group_by) group_names.push_back(gi.name);
    std::vector<AggregateItem> aggs;
    std::vector<std::string> count_names;
    for (const SelectItem& item : stmt.items) {
      if (!item.agg.has_value()) continue;
      AggregateItem agg;
      agg.fn = *item.agg;
      agg.arg = item.expr ? item.expr->Clone() : nullptr;
      agg.name = DefaultName(item);
      if (agg.fn == AggFn::kCountStar || agg.fn == AggFn::kCount) {
        count_names.push_back(agg.name);
      }
      aggs.push_back(std::move(agg));
    }
    PlanFacts agg_facts;
    if (group_names.empty()) {
      // Global aggregate: exactly one row, even on empty input.
      agg_facts.claims.card_min = agg_facts.claims.card_max = 1;
      agg_facts.est_rows = 1;
    } else {
      // One row per distinct group key: the group columns form a key, at
      // least one group exists when the input is provably non-empty, and a
      // NULL-free grouped column stays NULL-free.
      agg_facts.claims.card_min = facts.claims.card_min > 0 ? 1 : 0;
      agg_facts.claims.card_max = facts.claims.card_max;
      agg_facts.est_rows = facts.est_rows;
      agg_facts.keys.push_back(group_names);
      agg_facts.claims.non_null =
          ProjectFacts(facts, group_pairs, allow_suffix).claims.non_null;
    }
    // COUNT never yields NULL.
    for (const std::string& n : count_names) {
      agg_facts.claims.non_null.push_back(n);
    }
    facts = std::move(agg_facts);
    plan = MakeAggregate(std::move(plan), std::move(group_by),
                         std::move(aggs));
    Stamp(plan, facts);
    if (stmt.having != nullptr) {
      plan = MakeFilter(std::move(plan), stmt.having->Clone());
      facts.claims.card_min = 0;
      Stamp(plan, facts);
    }
    // Reorder to the select-list order (aggregate output is group cols then
    // agg cols). Non-aggregate items must appear in GROUP BY.
    std::vector<ProjectItem> final_items;
    for (const SelectItem& item : stmt.items) {
      bool found = item.agg.has_value();
      if (!item.agg.has_value()) {
        bool in_group = false;
        for (const ExprPtr& g : stmt.group_by) {
          if (g->ToString() == item.expr->ToString()) in_group = true;
        }
        if (!in_group) {
          return Status::InvalidArgument(
              "select item '" + item.expr->ToString() +
              "' is neither aggregated nor in GROUP BY");
        }
        found = true;
      }
      (void)found;
      final_items.push_back({MakeColumn(DefaultName(item)),
                             DefaultName(item)});
    }
    std::vector<std::string> final_names;
    for (const ProjectItem& fi : final_items) final_names.push_back(fi.name);
    plan = MakeProject(std::move(plan), std::move(final_items));
    // The reorder passes aggregate output columns through by name.
    FilterFactsToOutput(&facts, final_names);
    Stamp(plan, facts);
  } else if (!bare_star) {
    for (const SelectItem& item : stmt.items) {
      if (item.star) {
        return Status::InvalidArgument(
            "SELECT * cannot be combined with other select items");
      }
    }
    std::vector<ProjectItem> items;
    std::vector<std::string> visible_names;
    // Pass-through (input column → output name) pairs for fact mapping;
    // computed select items guarantee nothing and are left out.
    std::vector<std::pair<std::string, std::string>> pass;
    for (const SelectItem& item : stmt.items) {
      std::string name = DefaultName(item);
      std::string src = item.expr->ToString();
      if (LooksLikeColumnRef(src)) pass.emplace_back(std::move(src), name);
      visible_names.push_back(name);
      items.push_back({item.expr->Clone(), std::move(name)});
    }
    // ORDER BY may reference either a select alias or any expression over
    // the pre-projection schema; the latter are carried through as hidden
    // columns and dropped after the sort.
    std::vector<std::string> hidden;
    for (size_t i = 0; i < stmt.order_by.size(); ++i) {
      const std::string key = stmt.order_by[i].expr->ToString();
      bool is_alias = false;
      for (const std::string& name : visible_names) {
        if (EqualsIgnoreCase(name, key)) is_alias = true;
      }
      if (!is_alias) {
        std::string hname = "__sort_" + std::to_string(i);
        if (LooksLikeColumnRef(key)) pass.emplace_back(key, hname);
        items.push_back({stmt.order_by[i].expr->Clone(), hname});
        hidden.push_back(hname);
      }
    }
    if (stmt.distinct && !hidden.empty()) {
      return Status::Unimplemented(
          "SELECT DISTINCT with ORDER BY on non-selected expressions");
    }
    // Identity-projection elision: when column pruning pushed exactly the
    // select list into the scan — same columns, same order, same output
    // spelling, every item a bare column reference — the Project would
    // copy every row to rebuild the relation the scan already produced.
    // A bare ColumnExpr renders as its unadorned name, so ToString
    // equality against the scan-schema spelling identifies the shape.
    bool identity = hidden.empty() && !pushed_cols.empty() &&
                    items.size() == pushed_cols.size();
    for (size_t i = 0; identity && i < items.size(); ++i) {
      if (items[i].name != pushed_cols[i] ||
          items[i].expr->ToString() != pushed_cols[i]) {
        identity = false;
      }
    }
    bool fused_here = false;
    if (fuse_fp) {
      // Deferred residual filter: fuse it with the project into a single
      // chunk-at-a-time pass when every output item (hidden sort columns
      // included) is a bare column reference — the shape the fused π stage
      // executes as an index copy. Otherwise emit the ordinary Filter here
      // and fall through to the standalone Project.
      bool all_bare = true;
      for (const ProjectItem& it : items) {
        all_bare = all_bare && LooksLikeColumnRef(it.expr->ToString());
      }
      if (all_bare) {
        std::vector<FusedStage> stages(2);
        stages[0].kind = FusedStage::Kind::kFilter;
        stages[0].predicate = residual_where->Clone();
        stages[1].kind = FusedStage::Kind::kProject;
        for (const ProjectItem& it : items) {
          stages[1].items.push_back({it.expr->Clone(), it.name});
        }
        plan = MakeFusedPipeline(std::move(plan), std::move(stages));
        fused_here = true;
      } else {
        plan = MakeFilter(std::move(plan), residual_where->Clone());
        Stamp(plan, facts);
      }
    }
    if (!fused_here && !identity) {
      plan = MakeProject(std::move(plan), std::move(items));
    }
    facts = ProjectFacts(facts, pass, allow_suffix);
    Stamp(plan, facts);
    if (stmt.distinct) {
      // DISTINCT is a no-op when some uniqueness key already lies entirely
      // inside the output: rows unique on a column subset are unique as
      // whole rows. The key must cover visible columns only (hidden sort
      // columns cannot occur here — rejected above).
      bool provably_unique = false;
      for (const std::vector<std::string>& key : facts.keys) {
        bool covered = !key.empty();
        for (const std::string& c : key) {
          bool found = false;
          for (const std::string& v : visible_names) {
            if (EqualsIgnoreCase(v, c)) found = true;
          }
          covered = covered && found;
        }
        if (covered) {
          provably_unique = true;
          break;
        }
      }
      if (opts.distinct_elision && provably_unique) {
        Metrics().distinct_elided->Add();
      } else {
        plan = MakeDistinct(std::move(plan));
        if (facts.claims.card_min > 1) facts.claims.card_min = 1;
      }
      // Either way the output rows are now unique as whole rows.
      facts.keys.push_back(visible_names);
      Stamp(plan, facts);
    }
    if (!stmt.order_by.empty()) {
      std::vector<SortKey> keys;
      std::vector<StaticClaims::SortBy> sort_claims;
      size_t h = 0;
      for (const OrderItem& oi : stmt.order_by) {
        const std::string key = oi.expr->ToString();
        bool is_alias = false;
        for (const std::string& name : visible_names) {
          if (EqualsIgnoreCase(name, key)) is_alias = true;
        }
        SortKey sk;
        sk.ascending = oi.ascending;
        std::string col = is_alias ? key : hidden[h++];
        sk.expr = MakeColumn(col);
        sort_claims.push_back({std::move(col), oi.ascending});
        keys.push_back(std::move(sk));
      }
      facts.claims.sort = std::move(sort_claims);
      // ORDER BY + LIMIT fuses into a bounded top-k heap; output is
      // byte-identical to Sort + Limit (TopNNode ties break on row index,
      // matching the stable sort).
      if (stmt.limit.has_value() && opts.bounded_topk) {
        plan = MakeTopN(std::move(plan), std::move(keys), *stmt.limit,
                        stmt.offset);
        apply_limit(&facts, *stmt.limit, stmt.offset);
        Stamp(plan, facts);
      } else {
        plan = MakeSort(std::move(plan), std::move(keys));
        Stamp(plan, facts);
        if (stmt.limit.has_value()) {
          plan = MakeLimit(std::move(plan), *stmt.limit, stmt.offset);
          apply_limit(&facts, *stmt.limit, stmt.offset);
          Stamp(plan, facts);
        }
      }
    } else if (stmt.limit.has_value()) {
      plan = MakeLimit(std::move(plan), *stmt.limit, stmt.offset);
      apply_limit(&facts, *stmt.limit, stmt.offset);
      Stamp(plan, facts);
    }
    if (!hidden.empty()) {
      std::vector<ProjectItem> drop;
      for (const std::string& name : visible_names) {
        drop.push_back({MakeColumn(name), name});
      }
      plan = MakeProject(std::move(plan), std::move(drop));
      FilterFactsToOutput(&facts, visible_names);
      Stamp(plan, facts);
    }
    return plan;
  }

  // Bare star or aggregate path: ORDER BY binds directly to the current
  // output schema. Sort + Limit fuses into TopN unless a DISTINCT sits
  // between them (bare-star DISTINCT dedupes after the sort, so bounding
  // the sort first would change the result).
  bool distinct_between = stmt.distinct && bare_star;
  if (!stmt.order_by.empty()) {
    std::vector<SortKey> keys;
    std::vector<StaticClaims::SortBy> sort_claims;
    bool claimable = true;
    for (const OrderItem& oi : stmt.order_by) {
      const std::string key = oi.expr->ToString();
      // Claim the longest leading run of bare column keys; a computed key
      // ends the claimable prefix (still sorted by the prefix alone).
      if (claimable && LooksLikeColumnRef(key)) {
        sort_claims.push_back({key, oi.ascending});
      } else {
        claimable = false;
      }
      keys.push_back({oi.expr->Clone(), oi.ascending});
    }
    facts.claims.sort = std::move(sort_claims);
    if (stmt.limit.has_value() && opts.bounded_topk && !distinct_between) {
      plan = MakeTopN(std::move(plan), std::move(keys), *stmt.limit,
                      stmt.offset);
      apply_limit(&facts, *stmt.limit, stmt.offset);
      Stamp(plan, facts);
      return plan;
    }
    plan = MakeSort(std::move(plan), std::move(keys));
    Stamp(plan, facts);
  }
  if (distinct_between) {
    // Dedup keeps first occurrences in input order, so the sort claim
    // survives; the surviving rows are unique as whole rows, but with no
    // select list there are no output names to claim a key over.
    plan = MakeDistinct(std::move(plan));
    if (facts.claims.card_min > 1) facts.claims.card_min = 1;
    Stamp(plan, facts);
  }
  if (stmt.limit.has_value()) {
    plan = MakeLimit(std::move(plan), *stmt.limit, stmt.offset);
    apply_limit(&facts, *stmt.limit, stmt.offset);
    Stamp(plan, facts);
  }
  return plan;
}

Status SqlEngine::VerifyPlannedRewrites(const SelectStmt& stmt,
                                        const PlanNode& optimized) const {
  PlannerOptions off;
  off.scan_pushdown = false;
  off.bounded_topk = false;
  off.distinct_elision = false;
  off.join_build_side = false;
  off.fuse_pipelines = false;
  off.verify_rewrites = false;
  Result<PlanPtr> baseline = PlanSelectWith(stmt, off);
  // A statement the baseline cannot plan, or roots carrying no claims, have
  // nothing to compare — mirror the analyzer's leniency contract.
  if (!baseline.ok()) return Status::OK();
  const std::optional<StaticClaims>& base = (*baseline)->claims();
  const std::optional<StaticClaims>& opt = optimized.claims();
  if (!base.has_value() || !opt.has_value()) return Status::OK();
  auto fail = [&](const char* code, const std::string& what) {
    return Status::Internal(std::string(code) + " rewrite verification: " +
                            what + "; baseline " + base->ToString() +
                            " vs optimized " + opt->ToString());
  };
  if (opt->card_max > base->card_max) {
    return fail("CR502", "planner rewrite raised the cardinality bound");
  }
  if (opt->card_min < base->card_min) {
    return fail("CR502", "planner rewrite lowered the cardinality floor");
  }
  if (opt->sort.size() < base->sort.size()) {
    return fail("CR503", "planner rewrite lost the sort guarantee");
  }
  for (size_t i = 0; i < base->sort.size(); ++i) {
    if (!EqualsIgnoreCase(base->sort[i].column, opt->sort[i].column) ||
        base->sort[i].ascending != opt->sort[i].ascending) {
      return fail("CR503", "planner rewrite changed the sort guarantee");
    }
  }
  if (!base->key.empty()) {
    auto in_base = [&](const std::string& c) {
      for (const std::string& b : base->key) {
        if (EqualsIgnoreCase(b, c)) return true;
      }
      return false;
    };
    bool stronger_or_equal = !opt->key.empty();
    for (const std::string& c : opt->key) {
      stronger_or_equal = stronger_or_equal && in_base(c);
    }
    if (!stronger_or_equal) {
      return fail("CR504", "planner rewrite lost the uniqueness key");
    }
  }
  for (const std::string& n : base->non_null) {
    bool found = false;
    for (const std::string& o : opt->non_null) {
      if (EqualsIgnoreCase(o, n)) found = true;
    }
    if (!found) {
      return fail("CR505",
                  "planner rewrite lost the non-NULL guarantee on " + n);
    }
  }
  return Status::OK();
}

Result<Relation> SqlEngine::Execute(const std::string& sql,
                                    const ParamMap& params) {
  // EXPLAIN [ANALYZE|STATIC] is an engine-level prefix, not parser syntax:
  // the inner statement is parsed and planned exactly as it would run.
  std::string_view rest = Trim(std::string_view(sql));
  if (ConsumeKeyword(&rest, "EXPLAIN")) {
    std::string inner(rest);
    if (ConsumeKeyword(&rest, "ANALYZE")) {
      CR_ASSIGN_OR_RETURN(std::string text,
                          ExplainAnalyze(std::string(rest), params));
      return PlanLines(text);
    }
    if (ConsumeKeyword(&rest, "STATIC")) {
      CR_ASSIGN_OR_RETURN(std::string text, ExplainStatic(std::string(rest)));
      return PlanLines(text);
    }
    CR_ASSIGN_OR_RETURN(std::string text, Explain(inner));
    return PlanLines(text);
  }
  if (profiling_) return ExecuteProfiled(sql, params);
  return ExecuteStatement(sql, params, nullptr);
}

Result<Relation> SqlEngine::Execute(const std::string& sql,
                                    const ParamMap& params,
                                    QueryProfile* profile) {
  profile->statement = sql;
  profile->root.reset();
  uint64_t t0 = obs::NowNs();
  Result<Relation> result = ExecuteStatement(sql, params, profile);
  // Full-statement wall time (parse + plan + execute), so the root
  // operator's self-percentage reads against what the caller actually paid.
  profile->total_ns = obs::NowNs() - t0;
  return result;
}

Result<Relation> SqlEngine::ExecuteProfiled(const std::string& sql,
                                            const ParamMap& params,
                                            QueryProfile* out) {
  QueryProfile local;
  QueryProfile* profile = out != nullptr ? out : &local;
  Result<Relation> result = Execute(sql, params, profile);
  obs::RecordedProfile rec;
  rec.kind = "sql";
  rec.query = sql;
  rec.total_ns = profile->total_ns;
  rec.text = profile->Render();
  rec.json = profile->RenderJson();
  obs::ProfileRecorder::Default().Submit(std::move(rec));
  return result;
}

Result<std::string> SqlEngine::ExplainAnalyze(const std::string& sql,
                                              const ParamMap& params) {
  QueryProfile profile;
  CR_RETURN_IF_ERROR(ExecuteProfiled(sql, params, &profile).status());
  return profile.Render();
}

Result<Relation> SqlEngine::ExecuteStatement(const std::string& sql,
                                             const ParamMap& params,
                                             QueryProfile* profile) {
  const SqlMetrics& m = Metrics();
  obs::ScopedSpan span(obs::stage::kSqlExec, m.execute_ns,
                       &obs::TraceSink::Default(),
                       obs::ScopedSpan::Mode::kAlways);
  m.statements->Add();
  Result<Statement> parsed = [&] {
    obs::ScopedSpan parse(obs::stage::kSqlParse, m.parse_ns,
                          &obs::TraceSink::Default(),
                          obs::ScopedSpan::Mode::kAlways);
    return ParseSql(sql);
  }();
  CR_ASSIGN_OR_RETURN(Statement stmt, std::move(parsed));
  if (validator_) CR_RETURN_IF_ERROR(validator_(stmt));
  if (stmt.select != nullptr) {
    CR_ASSIGN_OR_RETURN(PlanPtr plan, PlanSelect(*stmt.select));
    if (planner_.verify_rewrites) {
      CR_RETURN_IF_ERROR(VerifyPlannedRewrites(*stmt.select, *plan));
    }
    ExecContext ctx;
    ctx.db = db_;
    ctx.params = params;
    ctx.exec = exec_;
    if (profile == nullptr) return plan->Execute(ctx);
    ProfileCollector collector;
    ctx.profile = &collector;
    Result<Relation> result = plan->Execute(ctx);
    profile->root = collector.TakeRoot();
    return result;
  }
  if (stmt.insert != nullptr) return ExecuteInsert(*stmt.insert, params);
  if (stmt.update != nullptr) return ExecuteUpdate(*stmt.update, params);
  if (stmt.del != nullptr) return ExecuteDelete(*stmt.del, params);
  if (stmt.create_table != nullptr) {
    return ExecuteCreateTable(*stmt.create_table);
  }
  return Status::Internal("empty statement");
}

Result<std::string> SqlEngine::Explain(const std::string& sql) {
  CR_ASSIGN_OR_RETURN(Statement stmt, ParseSql(sql));
  if (stmt.select == nullptr) {
    return Status::InvalidArgument("EXPLAIN supports SELECT only");
  }
  CR_ASSIGN_OR_RETURN(PlanPtr plan, PlanSelect(*stmt.select));
  return plan->Explain(0);
}

Result<std::string> SqlEngine::ExplainStatic(const std::string& sql) {
  CR_ASSIGN_OR_RETURN(Statement stmt, ParseSql(sql));
  if (stmt.select == nullptr) {
    return Status::InvalidArgument("EXPLAIN STATIC supports SELECT only");
  }
  CR_ASSIGN_OR_RETURN(PlanPtr plan, PlanSelect(*stmt.select));
  return RenderStatic(*plan, 0);
}

Result<Relation> SqlEngine::ExecuteInsert(const InsertStmt& stmt,
                                          const ParamMap& params) {
  CR_ASSIGN_OR_RETURN(Table * table, db_->GetTable(stmt.table));
  const Schema& schema = table->schema();

  std::vector<size_t> targets;
  if (stmt.columns.empty()) {
    for (size_t i = 0; i < schema.num_columns(); ++i) targets.push_back(i);
  } else {
    for (const std::string& c : stmt.columns) {
      CR_ASSIGN_OR_RETURN(size_t ci, schema.ColumnIndex(c));
      targets.push_back(ci);
    }
  }

  const Schema empty_schema;
  const Row empty_row;
  int64_t affected = 0;
  for (const auto& exprs : stmt.rows) {
    if (exprs.size() != targets.size()) {
      return Status::InvalidArgument(
          "INSERT row has " + std::to_string(exprs.size()) +
          " values for " + std::to_string(targets.size()) + " columns");
    }
    Row row(schema.num_columns(), Value::Null());
    for (size_t i = 0; i < exprs.size(); ++i) {
      ExprPtr e = exprs[i]->Clone();
      CR_RETURN_IF_ERROR(e->Bind(empty_schema, &params));
      CR_ASSIGN_OR_RETURN(Value v, e->Eval(empty_row));
      row[targets[i]] = std::move(v);
    }
    CR_RETURN_IF_ERROR(db_->Insert(stmt.table, std::move(row)).status());
    ++affected;
  }
  return AffectedRelation(affected);
}

Result<Relation> SqlEngine::ExecuteUpdate(const UpdateStmt& stmt,
                                          const ParamMap& params) {
  CR_ASSIGN_OR_RETURN(Table * table, db_->GetTable(stmt.table));
  const Schema& schema = table->schema();

  ExprPtr where;
  if (stmt.where != nullptr) {
    where = stmt.where->Clone();
    CR_RETURN_IF_ERROR(where->Bind(schema, &params));
  }
  std::vector<std::pair<size_t, ExprPtr>> assigns;
  for (const auto& [col, expr] : stmt.assignments) {
    CR_ASSIGN_OR_RETURN(size_t ci, schema.ColumnIndex(col));
    ExprPtr e = expr->Clone();
    CR_RETURN_IF_ERROR(e->Bind(schema, &params));
    assigns.emplace_back(ci, std::move(e));
  }

  // Two-phase: evaluate all updates first (so index mutation during the
  // scan cannot skew predicate evaluation), then apply.
  std::vector<std::pair<RowId, Row>> updates;
  Status failure = Status::OK();
  table->Scan([&](RowId id, const Row& row) {
    if (!failure.ok()) return;
    if (where != nullptr) {
      auto v = where->Eval(row);
      if (!v.ok()) {
        failure = v.status();
        return;
      }
      if (v->is_null() || v->type() != ValueType::kBool || !v->AsBool()) {
        return;
      }
    }
    Row updated = row;
    for (const auto& [ci, e] : assigns) {
      auto v = e->Eval(row);
      if (!v.ok()) {
        failure = v.status();
        return;
      }
      updated[ci] = std::move(*v);
    }
    updates.emplace_back(id, std::move(updated));
  });
  CR_RETURN_IF_ERROR(failure);
  for (auto& [id, row] : updates) {
    CR_RETURN_IF_ERROR(table->Update(id, std::move(row)));
  }
  return AffectedRelation(static_cast<int64_t>(updates.size()));
}

Result<Relation> SqlEngine::ExecuteDelete(const DeleteStmt& stmt,
                                          const ParamMap& params) {
  CR_ASSIGN_OR_RETURN(Table * table, db_->GetTable(stmt.table));
  ExprPtr where;
  if (stmt.where != nullptr) {
    where = stmt.where->Clone();
    CR_RETURN_IF_ERROR(where->Bind(table->schema(), &params));
  }
  std::vector<RowId> doomed;
  Status failure = Status::OK();
  table->Scan([&](RowId id, const Row& row) {
    if (!failure.ok()) return;
    if (where != nullptr) {
      auto v = where->Eval(row);
      if (!v.ok()) {
        failure = v.status();
        return;
      }
      if (v->is_null() || v->type() != ValueType::kBool || !v->AsBool()) {
        return;
      }
    }
    doomed.push_back(id);
  });
  CR_RETURN_IF_ERROR(failure);
  for (RowId id : doomed) CR_RETURN_IF_ERROR(table->Delete(id));
  return AffectedRelation(static_cast<int64_t>(doomed.size()));
}

Result<Relation> SqlEngine::ExecuteCreateTable(const CreateTableStmt& stmt) {
  CR_RETURN_IF_ERROR(db_->CreateTable(stmt.table, Schema(stmt.columns),
                                      stmt.primary_key)
                         .status());
  return AffectedRelation(0);
}

}  // namespace courserank::query
