#ifndef COURSERANK_QUERY_PLAN_H_
#define COURSERANK_QUERY_PLAN_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "query/expr.h"
#include "query/relation.h"
#include "storage/database.h"

namespace courserank {
class ThreadPool;
}  // namespace courserank

namespace courserank::query {

/// Knobs for morsel-driven parallel execution (DESIGN.md §11).
///
/// Determinism contract: the morsel partition is a pure function of the
/// input row count and `morsel_rows` — never of the worker count — and each
/// morsel fills its own output chunk, concatenated in morsel order. Parallel
/// results are therefore byte-identical to the serial path, and a failing
/// plan reports the error of the lowest-indexed failing morsel.
struct ExecOptions {
  /// Master switch; false forces every operator down the serial path.
  bool parallel = true;
  /// Rows per morsel. Inputs above `ThreadPool::kMaxMorsels * morsel_rows`
  /// get proportionally larger morsels.
  size_t morsel_rows = 1024;
  /// Inputs with fewer rows than this run serially — fan-out overhead beats
  /// the win on small relations.
  size_t min_parallel_rows = 4096;
  /// Pool to dispatch on; nullptr means `SharedThreadPool()`.
  ThreadPool* pool = nullptr;
  /// Use the columnar chunk path: vectorized predicate kernels over the
  /// table's ChunkedTable mirror, compiled filter fast paths, and the
  /// memoized recommend scorer (DESIGN.md §12). False = the row-at-a-time
  /// oracle, kept for differential testing and ablation benchmarks. Both
  /// paths are byte-identical by contract.
  bool columnar = true;
  /// Use the shared open-addressing RowKeyTable (radix-partitioned parallel
  /// build, RowRefList chains — DESIGN.md §14) for join / aggregate /
  /// distinct / union / ε-extend key state. False = the historical
  /// std::unordered_map<Row, ...> path, kept as the differential oracle.
  /// Both paths are byte-identical by contract.
  bool flat_hash = true;
  /// Debug invariant checker: after every operator whose node carries
  /// StaticClaims, assert the actual output against them (row count within
  /// the claimed cardinality bounds, claimed sort order holds, claimed
  /// non-NULL columns hold no NULL, claimed key columns are unique).
  /// Violations fail the query with a CR510-tagged InternalError. Off by
  /// default; tests and debug harnesses turn it on.
  bool check_static_claims = false;
  /// Execute FusedPipelineNode stages as one fused chunk-at-a-time pass
  /// (DESIGN.md §16). False runs the same stages as a chain of ordinary
  /// interpreted operators — the differential oracle. Both paths are
  /// byte-identical by contract.
  bool fuse = true;
};

class ProfileCollector;

/// Statically-derived facts about one operator's output relation, attached
/// by the SQL planner (and convertible from the analyzer's PlanProperties).
/// EXPLAIN STATIC renders them per node; ExecOptions::check_static_claims
/// re-checks them against actual rows after every execution. Columns are
/// referenced by output-schema name; a claim whose column does not resolve
/// is skipped rather than failed, mirroring the analyzer's leniency
/// contract (a false violation is worse than a miss).
struct StaticClaims {
  static constexpr size_t kUnbounded = static_cast<size_t>(-1);
  /// Output row count is always within [card_min, card_max].
  size_t card_min = 0;
  size_t card_max = kUnbounded;
  struct SortBy {
    std::string column;
    bool ascending = true;
  };
  /// Output rows are lexicographically ordered by these columns (empty =
  /// no ordering claim).
  std::vector<SortBy> sort;
  /// When non-empty, the named columns form a uniqueness key: no two output
  /// rows agree on all of them.
  std::vector<std::string> key;
  /// The named columns never hold NULL.
  std::vector<std::string> non_null;

  /// "{card=0..5 sort=(score desc) key=(SuID) nonnull=(score)}"; omits
  /// unclaimed dimensions, "*" renders an unbounded card_max.
  std::string ToString() const;
};

/// Validates an executed relation against `claims`. Violations return an
/// InternalError whose message carries the CR510 tag; claim columns that do
/// not resolve against `rel.schema` are skipped.
Status CheckStaticClaims(const Relation& rel, const StaticClaims& claims);

/// Per-execution state shared by all operators of a plan.
struct ExecContext {
  const storage::Database* db = nullptr;
  ParamMap params;
  ExecOptions exec;
  /// When non-null, Execute records a PlanProfileNode per operator into the
  /// collector (rows in/out, wall ns, morsel/columnar annotations —
  /// DESIGN.md §13). Null costs one branch per operator execution.
  ProfileCollector* profile = nullptr;
};

/// A physical operator. Execution is materialized: each node fully computes
/// its child relations, then produces its own. This keeps operators
/// composable with the FlexRecs recommend/extend operators, which need whole
/// relations to rank anyway.
class PlanNode {
 public:
  virtual ~PlanNode() = default;

  /// Runs the operator (children included). When `ctx.profile` is set, the
  /// execution is wrapped in a profile node carrying Describe() — the
  /// profile tree therefore has exactly the Explain() tree's shape.
  Result<Relation> Execute(ExecContext& ctx) const;

  /// One line per node, two spaces per `indent` level: Describe() for this
  /// node, then each child of Children() at indent + 1.
  std::string Explain(int indent = 0) const;

  /// This node's Explain line (no indent, no newline, no children).
  virtual std::string Describe() const = 0;

  /// Child operators in Explain order; leaves return {}.
  virtual std::vector<const PlanNode*> Children() const { return {}; }

  /// Static claims attached by whoever built the plan. Rendered by EXPLAIN
  /// STATIC and asserted after execution when
  /// ExecOptions::check_static_claims is set.
  void set_claims(StaticClaims claims) { claims_ = std::move(claims); }
  const std::optional<StaticClaims>& claims() const { return claims_; }

 protected:
  /// The operator body. Implementations execute children via the public
  /// Execute so nested profiling keeps working.
  virtual Result<Relation> ExecuteNode(ExecContext& ctx) const = 0;

 private:
  std::optional<StaticClaims> claims_;
};

using PlanPtr = std::unique_ptr<PlanNode>;

/// One output column of a projection.
struct ProjectItem {
  ExprPtr expr;
  std::string name;
};

/// ORDER BY key.
struct SortKey {
  ExprPtr expr;
  bool ascending = true;
};

enum class JoinType { kInner, kLeft };

enum class AggFn { kCountStar, kCount, kSum, kAvg, kMin, kMax };

/// One aggregate output ("AVG(rating) AS avg_rating"). `arg` is null for
/// COUNT(*).
struct AggregateItem {
  AggFn fn = AggFn::kCountStar;
  ExprPtr arg;
  std::string name;
};

const char* AggFnName(AggFn fn);

/// Scans a base table; when `alias` is non-empty, output columns are named
/// "alias.col".
PlanPtr MakeTableScan(std::string table, std::string alias = "");

/// Work pushed down into a table scan so σ/π/LIMIT directly above a scan
/// never materialize the full table.
struct ScanPushdown {
  /// Filter evaluated against the full (alias-prefixed) scan schema while
  /// scanning; non-matching rows are never materialized. May be null.
  ExprPtr predicate;
  /// Output column subset (names resolved against the scan schema, output
  /// in this order). Empty keeps every column.
  std::vector<std::string> columns;
  /// Stop scanning after this many post-predicate rows (0 = no limit).
  size_t limit = 0;
};

/// Table scan with pushed-down predicate / projection / limit.
PlanPtr MakePushdownScan(std::string table, std::string alias,
                         ScanPushdown push);

/// Wraps a literal relation (used for VALUES and for feeding precomputed
/// relations into plans).
PlanPtr MakeValues(Relation rel);

/// Like MakeValues, but the relation is moved out on first Execute instead
/// of copied — for single-shot plans feeding a large intermediate to its
/// last consumer. A second Execute of the same node yields an empty
/// relation, so only use in plans executed exactly once.
PlanPtr MakeValuesOnce(Relation rel);

PlanPtr MakeFilter(PlanPtr child, ExprPtr predicate);
PlanPtr MakeProject(PlanPtr child, std::vector<ProjectItem> items);

/// Which input an inner hash join materializes its hash table over. kRight
/// is the historical default (build right, probe left rows in order). kLeft
/// builds over the left input instead — picked by the planner when static
/// cardinality bounds say the left side is much smaller — then restores the
/// probe-order output by sorting matches on (left row, right row) index, so
/// the result stays byte-identical to the kRight path. Ignored for left
/// joins and non-equi joins.
enum class JoinBuildSide { kRight, kLeft };

/// Join with arbitrary condition. Equality conjuncts between the two sides
/// are executed as a hash join; any residual predicate is applied per
/// candidate pair. kLeft pads unmatched left rows with NULLs.
PlanPtr MakeJoin(PlanPtr left, PlanPtr right, ExprPtr condition,
                 JoinType type = JoinType::kInner,
                 JoinBuildSide build = JoinBuildSide::kRight);

/// GROUP BY `group_by` computing `aggs`; empty `group_by` aggregates the
/// whole input to one row.
PlanPtr MakeAggregate(PlanPtr child, std::vector<ProjectItem> group_by,
                      std::vector<AggregateItem> aggs);

PlanPtr MakeSort(PlanPtr child, std::vector<SortKey> keys);
PlanPtr MakeLimit(PlanPtr child, size_t limit, size_t offset = 0);

/// Bounded top-k: ORDER BY `keys` then keep rows [offset, offset+limit)
/// using an (offset+limit)-element heap instead of sorting the whole input.
/// Ties break on original row index, so the output is byte-identical to
/// MakeSort + MakeLimit (which stable-sorts).
PlanPtr MakeTopN(PlanPtr child, std::vector<SortKey> keys, size_t limit,
                 size_t offset = 0);
PlanPtr MakeDistinct(PlanPtr child);

/// UNION (set) or UNION ALL (bag) of two inputs with equal arity.
PlanPtr MakeUnion(PlanPtr left, PlanPtr right, bool all);

/// The FlexRecs ε (extend) operator: appends to each child row a LIST-typed
/// column collecting `collect` evaluated over the `source` rows whose
/// `source_key` equals the child row's `child_key`. With multiple collect
/// expressions each list element is itself a [v1, v2, ...] list.
PlanPtr MakeExtend(PlanPtr child, PlanPtr source, ExprPtr child_key,
                   ExprPtr source_key, std::vector<ExprPtr> collect,
                   std::string column_name);

/// One stage of a FusedPipelineNode (DESIGN.md §16). Exactly one of the
/// three shapes is populated:
///   kFilter  — `predicate` (must lie in the compilable-shape subset, see
///              CompilableShape(); a runtime CompilePredicate refusal makes
///              the whole node fall back to the interpreted stage chain);
///   kProject — `items`, every expr a bare column reference;
///   kExtend  — `source` plan + bare-column `child_key` / `source_key` /
///              `collect`, appending list column `column_name`.
struct FusedStage {
  enum class Kind { kFilter, kProject, kExtend };
  Kind kind = Kind::kFilter;
  ExprPtr predicate;                     // kFilter
  std::vector<ProjectItem> items;        // kProject
  PlanPtr source;                        // kExtend
  ExprPtr child_key;                     // kExtend
  ExprPtr source_key;                    // kExtend
  std::vector<ExprPtr> collect;          // kExtend
  std::string column_name;               // kExtend
};

/// A maximal fused σ/π/ε chain executed as one chunk-at-a-time pass over the
/// input: a selection vector threads through all fused filters, projections
/// rewrite surviving rows in place, and ε appends a shared list handle —
/// with no intermediate Relation materialized between stages. With
/// ExecOptions::fuse=false (or on a runtime compile bailout) the node runs
/// the identical stage chain through the ordinary interpreted operators.
/// Stage legality (bare columns, compilable-shape predicates, no σ after π)
/// is the caller's responsibility; see analysis::CheckFusedStage.
PlanPtr MakeFusedPipeline(PlanPtr input, std::vector<FusedStage> stages);

/// Executes a bound plan against `db` with no parameters — convenience for
/// tests and examples.
Result<Relation> Run(const PlanNode& plan, const storage::Database& db);

}  // namespace courserank::query

#endif  // COURSERANK_QUERY_PLAN_H_
