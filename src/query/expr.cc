#include "query/expr.h"

#include <cmath>

#include "common/strings.h"

namespace courserank::query {

using storage::ValueType;

const char* BinaryOpName(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd:
      return "+";
    case BinaryOp::kSub:
      return "-";
    case BinaryOp::kMul:
      return "*";
    case BinaryOp::kDiv:
      return "/";
    case BinaryOp::kMod:
      return "%";
    case BinaryOp::kEq:
      return "=";
    case BinaryOp::kNe:
      return "<>";
    case BinaryOp::kLt:
      return "<";
    case BinaryOp::kLe:
      return "<=";
    case BinaryOp::kGt:
      return ">";
    case BinaryOp::kGe:
      return ">=";
    case BinaryOp::kAnd:
      return "AND";
    case BinaryOp::kOr:
      return "OR";
    case BinaryOp::kLike:
      return "LIKE";
  }
  return "?";
}

namespace {

std::string QuoteSqlString(const std::string& s) {
  std::string out = "'";
  for (char c : s) {
    if (c == '\'') out += "''";
    else out += c;
  }
  out += "'";
  return out;
}

class LiteralExpr : public Expr {
 public:
  explicit LiteralExpr(Value v) : value_(std::move(v)) {}

  Status Bind(const Schema&, const ParamMap*) override {
    return Status::OK();
  }
  Result<Value> Eval(const Row&) const override { return value_; }
  std::string ToString() const override {
    if (value_.type() == ValueType::kString)
      return QuoteSqlString(value_.AsString());
    return value_.ToString();
  }
  ExprPtr Clone() const override {
    return std::make_unique<LiteralExpr>(value_);
  }

  void Accept(ExprVisitor& visitor) const override {
    visitor.VisitLiteral(value_);
  }

 private:
  Value value_;
};

class ColumnExpr : public Expr {
 public:
  explicit ColumnExpr(std::string name) : name_(std::move(name)) {}

  Status Bind(const Schema& schema, const ParamMap*) override {
    CR_ASSIGN_OR_RETURN(index_, schema.ColumnIndex(name_));
    return Status::OK();
  }
  Result<Value> Eval(const Row& row) const override {
    if (index_ >= row.size()) {
      return Status::Internal("column '" + name_ + "' unbound or row too short");
    }
    return row[index_];
  }
  std::string ToString() const override { return name_; }
  ExprPtr Clone() const override { return std::make_unique<ColumnExpr>(name_); }

  void Accept(ExprVisitor& visitor) const override {
    visitor.VisitColumn(name_);
  }

 private:
  std::string name_;
  size_t index_ = static_cast<size_t>(-1);
};

class ParamExpr : public Expr {
 public:
  explicit ParamExpr(std::string name) : name_(std::move(name)) {}

  Status Bind(const Schema&, const ParamMap* params) override {
    if (params == nullptr) {
      return Status::InvalidArgument("no parameters supplied for $" + name_);
    }
    auto it = params->find(name_);
    if (it == params->end()) {
      return Status::InvalidArgument("missing parameter $" + name_);
    }
    value_ = it->second;
    return Status::OK();
  }
  Result<Value> Eval(const Row&) const override { return value_; }
  std::string ToString() const override { return "$" + name_; }
  ExprPtr Clone() const override { return std::make_unique<ParamExpr>(name_); }

  void Accept(ExprVisitor& visitor) const override {
    visitor.VisitParam(name_);
  }

 private:
  std::string name_;
  Value value_;
};

class UnaryExpr : public Expr {
 public:
  UnaryExpr(UnaryOp op, ExprPtr operand)
      : op_(op), operand_(std::move(operand)) {}

  Status Bind(const Schema& schema, const ParamMap* params) override {
    return operand_->Bind(schema, params);
  }

  Result<Value> Eval(const Row& row) const override {
    CR_ASSIGN_OR_RETURN(Value v, operand_->Eval(row));
    if (v.is_null()) return Value::Null();
    switch (op_) {
      case UnaryOp::kNot:
        if (v.type() != ValueType::kBool) {
          return Status::InvalidArgument("NOT applied to non-boolean");
        }
        return Value(!v.AsBool());
      case UnaryOp::kNeg: {
        if (v.type() == ValueType::kInt) return Value(-v.AsInt());
        CR_ASSIGN_OR_RETURN(double d, v.ToDouble());
        return Value(-d);
      }
    }
    return Status::Internal("bad unary op");
  }

  std::string ToString() const override {
    return std::string(op_ == UnaryOp::kNot ? "NOT " : "-") + "(" +
           operand_->ToString() + ")";
  }
  ExprPtr Clone() const override {
    return std::make_unique<UnaryExpr>(op_, operand_->Clone());
  }

  void Accept(ExprVisitor& visitor) const override {
    visitor.VisitUnary(op_, *operand_);
  }

 private:
  UnaryOp op_;
  ExprPtr operand_;
};

class BinaryExpr : public Expr {
 public:
  BinaryExpr(BinaryOp op, ExprPtr lhs, ExprPtr rhs)
      : op_(op), lhs_(std::move(lhs)), rhs_(std::move(rhs)) {}

  Status Bind(const Schema& schema, const ParamMap* params) override {
    CR_RETURN_IF_ERROR(lhs_->Bind(schema, params));
    return rhs_->Bind(schema, params);
  }

  Result<Value> Eval(const Row& row) const override {
    // Three-valued AND/OR: short-circuit where sound.
    if (op_ == BinaryOp::kAnd || op_ == BinaryOp::kOr) {
      CR_ASSIGN_OR_RETURN(Value a, lhs_->Eval(row));
      bool is_and = op_ == BinaryOp::kAnd;
      if (!a.is_null() && a.type() == ValueType::kBool &&
          a.AsBool() != is_and) {
        return Value(!is_and);  // FALSE AND x -> FALSE; TRUE OR x -> TRUE
      }
      CR_ASSIGN_OR_RETURN(Value b, rhs_->Eval(row));
      if (!b.is_null() && b.type() == ValueType::kBool &&
          b.AsBool() != is_and) {
        return Value(!is_and);
      }
      if (a.is_null() || b.is_null()) return Value::Null();
      if (a.type() != ValueType::kBool || b.type() != ValueType::kBool) {
        return Status::InvalidArgument("AND/OR on non-boolean operands");
      }
      return Value(is_and ? (a.AsBool() && b.AsBool())
                          : (a.AsBool() || b.AsBool()));
    }

    CR_ASSIGN_OR_RETURN(Value a, lhs_->Eval(row));
    CR_ASSIGN_OR_RETURN(Value b, rhs_->Eval(row));
    if (a.is_null() || b.is_null()) return Value::Null();

    switch (op_) {
      case BinaryOp::kAdd:
      case BinaryOp::kSub:
      case BinaryOp::kMul:
      case BinaryOp::kDiv:
      case BinaryOp::kMod: {
        // String concatenation via '+'.
        if (op_ == BinaryOp::kAdd && a.type() == ValueType::kString &&
            b.type() == ValueType::kString) {
          return Value(a.AsString() + b.AsString());
        }
        if (a.type() == ValueType::kInt && b.type() == ValueType::kInt) {
          int64_t x = a.AsInt();
          int64_t y = b.AsInt();
          switch (op_) {
            case BinaryOp::kAdd:
              return Value(x + y);
            case BinaryOp::kSub:
              return Value(x - y);
            case BinaryOp::kMul:
              return Value(x * y);
            case BinaryOp::kDiv:
              if (y == 0) return Status::InvalidArgument("division by zero");
              return Value(x / y);
            case BinaryOp::kMod:
              if (y == 0) return Status::InvalidArgument("modulo by zero");
              return Value(x % y);
            default:
              break;
          }
        }
        CR_ASSIGN_OR_RETURN(double x, a.ToDouble());
        CR_ASSIGN_OR_RETURN(double y, b.ToDouble());
        switch (op_) {
          case BinaryOp::kAdd:
            return Value(x + y);
          case BinaryOp::kSub:
            return Value(x - y);
          case BinaryOp::kMul:
            return Value(x * y);
          case BinaryOp::kDiv:
            if (y == 0.0) return Status::InvalidArgument("division by zero");
            return Value(x / y);
          case BinaryOp::kMod:
            if (y == 0.0) return Status::InvalidArgument("modulo by zero");
            return Value(std::fmod(x, y));
          default:
            break;
        }
        return Status::Internal("bad arithmetic op");
      }
      case BinaryOp::kEq:
        return Value(a.Compare(b) == 0);
      case BinaryOp::kNe:
        return Value(a.Compare(b) != 0);
      case BinaryOp::kLt:
        return Value(a.Compare(b) < 0);
      case BinaryOp::kLe:
        return Value(a.Compare(b) <= 0);
      case BinaryOp::kGt:
        return Value(a.Compare(b) > 0);
      case BinaryOp::kGe:
        return Value(a.Compare(b) >= 0);
      case BinaryOp::kLike:
        if (a.type() != ValueType::kString ||
            b.type() != ValueType::kString) {
          return Status::InvalidArgument("LIKE requires string operands");
        }
        return Value(LikeMatch(a.AsString(), b.AsString()));
      default:
        break;
    }
    return Status::Internal("bad binary op");
  }

  std::string ToString() const override {
    return "(" + lhs_->ToString() + " " + BinaryOpName(op_) + " " +
           rhs_->ToString() + ")";
  }
  ExprPtr Clone() const override {
    return std::make_unique<BinaryExpr>(op_, lhs_->Clone(), rhs_->Clone());
  }

  void Accept(ExprVisitor& visitor) const override {
    visitor.VisitBinary(op_, *lhs_, *rhs_);
  }

 private:
  BinaryOp op_;
  ExprPtr lhs_;
  ExprPtr rhs_;
};

class IsNullExpr : public Expr {
 public:
  IsNullExpr(ExprPtr operand, bool negated)
      : operand_(std::move(operand)), negated_(negated) {}

  Status Bind(const Schema& schema, const ParamMap* params) override {
    return operand_->Bind(schema, params);
  }
  Result<Value> Eval(const Row& row) const override {
    CR_ASSIGN_OR_RETURN(Value v, operand_->Eval(row));
    return Value(negated_ ? !v.is_null() : v.is_null());
  }
  std::string ToString() const override {
    return "(" + operand_->ToString() + (negated_ ? " IS NOT NULL" : " IS NULL") +
           ")";
  }
  ExprPtr Clone() const override {
    return std::make_unique<IsNullExpr>(operand_->Clone(), negated_);
  }

  void Accept(ExprVisitor& visitor) const override {
    visitor.VisitIsNull(*operand_, negated_);
  }

 private:
  ExprPtr operand_;
  bool negated_;
};

class InListExpr : public Expr {
 public:
  InListExpr(ExprPtr operand, std::vector<Value> values)
      : operand_(std::move(operand)), values_(std::move(values)) {}

  Status Bind(const Schema& schema, const ParamMap* params) override {
    return operand_->Bind(schema, params);
  }
  Result<Value> Eval(const Row& row) const override {
    CR_ASSIGN_OR_RETURN(Value v, operand_->Eval(row));
    if (v.is_null()) return Value::Null();
    for (const Value& cand : values_) {
      if (v == cand) return Value(true);
    }
    return Value(false);
  }
  std::string ToString() const override {
    std::string out = "(" + operand_->ToString() + " IN (";
    for (size_t i = 0; i < values_.size(); ++i) {
      if (i > 0) out += ", ";
      if (values_[i].type() == ValueType::kString)
        out += QuoteSqlString(values_[i].AsString());
      else
        out += values_[i].ToString();
    }
    return out + "))";
  }
  ExprPtr Clone() const override {
    return std::make_unique<InListExpr>(operand_->Clone(), values_);
  }

  void Accept(ExprVisitor& visitor) const override {
    visitor.VisitInList(*operand_, values_);
  }

 private:
  ExprPtr operand_;
  std::vector<Value> values_;
};

class CallExpr : public Expr {
 public:
  CallExpr(std::string function, std::vector<ExprPtr> args)
      : function_(ToUpper(function)), args_(std::move(args)) {}

  Status Bind(const Schema& schema, const ParamMap* params) override {
    for (auto& a : args_) CR_RETURN_IF_ERROR(a->Bind(schema, params));
    return CheckArity();
  }

  Result<Value> Eval(const Row& row) const override {
    std::vector<Value> vals;
    vals.reserve(args_.size());
    for (const auto& a : args_) {
      CR_ASSIGN_OR_RETURN(Value v, a->Eval(row));
      vals.push_back(std::move(v));
    }
    return Apply(vals);
  }

  std::string ToString() const override {
    std::string out = function_ + "(";
    for (size_t i = 0; i < args_.size(); ++i) {
      if (i > 0) out += ", ";
      out += args_[i]->ToString();
    }
    return out + ")";
  }
  ExprPtr Clone() const override {
    std::vector<ExprPtr> args;
    args.reserve(args_.size());
    for (const auto& a : args_) args.push_back(a->Clone());
    return std::make_unique<CallExpr>(function_, std::move(args));
  }

  void Accept(ExprVisitor& visitor) const override {
    visitor.VisitCall(function_, args_);
  }

 private:
  Status CheckArity() const { return CheckScalarCall(function_, args_.size()); }

  Result<Value> Apply(const std::vector<Value>& v) const {
    if (function_ == "COALESCE") {
      for (const Value& x : v) {
        if (!x.is_null()) return x;
      }
      return Value::Null();
    }
    // All other functions are NULL-strict.
    for (const Value& x : v) {
      if (x.is_null()) return Value::Null();
    }
    if (function_ == "LOWER") return Value(ToLower(v[0].AsString()));
    if (function_ == "UPPER") return Value(ToUpper(v[0].AsString()));
    if (function_ == "LENGTH") {
      return Value(static_cast<int64_t>(v[0].AsString().size()));
    }
    if (function_ == "ABS") {
      if (v[0].type() == ValueType::kInt) return Value(std::abs(v[0].AsInt()));
      CR_ASSIGN_OR_RETURN(double d, v[0].ToDouble());
      return Value(std::fabs(d));
    }
    if (function_ == "ROUND") {
      CR_ASSIGN_OR_RETURN(double d, v[0].ToDouble());
      CR_ASSIGN_OR_RETURN(double digits, v[1].ToDouble());
      double scale = std::pow(10.0, static_cast<int>(digits));
      return Value(std::round(d * scale) / scale);
    }
    if (function_ == "CONTAINS") {
      return Value(ContainsIgnoreCase(v[0].AsString(), v[1].AsString()));
    }
    if (function_ == "SUBSTR") {
      CR_ASSIGN_OR_RETURN(double start_d, v[1].ToDouble());
      CR_ASSIGN_OR_RETURN(double len_d, v[2].ToDouble());
      const std::string& s = v[0].AsString();
      // SQL convention: 1-based start.
      int64_t start = static_cast<int64_t>(start_d) - 1;
      int64_t len = static_cast<int64_t>(len_d);
      if (start < 0) start = 0;
      if (start >= static_cast<int64_t>(s.size()) || len <= 0)
        return Value(std::string());
      return Value(s.substr(static_cast<size_t>(start),
                            static_cast<size_t>(len)));
    }
    if (function_ == "LIST_LEN") {
      if (v[0].type() != ValueType::kList) {
        return Status::InvalidArgument("LIST_LEN on non-list");
      }
      return Value(static_cast<int64_t>(v[0].AsList().size()));
    }
    return Status::NotFound("unknown function " + function_);
  }

  std::string function_;
  std::vector<ExprPtr> args_;
};

}  // namespace

ExprPtr MakeLiteral(Value v) { return std::make_unique<LiteralExpr>(std::move(v)); }
ExprPtr MakeColumn(std::string name) {
  return std::make_unique<ColumnExpr>(std::move(name));
}
ExprPtr MakeParam(std::string name) {
  return std::make_unique<ParamExpr>(std::move(name));
}
ExprPtr MakeUnary(UnaryOp op, ExprPtr operand) {
  return std::make_unique<UnaryExpr>(op, std::move(operand));
}
ExprPtr MakeBinary(BinaryOp op, ExprPtr lhs, ExprPtr rhs) {
  return std::make_unique<BinaryExpr>(op, std::move(lhs), std::move(rhs));
}
ExprPtr MakeIsNull(ExprPtr operand, bool negated) {
  return std::make_unique<IsNullExpr>(std::move(operand), negated);
}
ExprPtr MakeInList(ExprPtr operand, std::vector<Value> values) {
  return std::make_unique<InListExpr>(std::move(operand), std::move(values));
}
ExprPtr MakeCall(std::string function, std::vector<ExprPtr> args) {
  return std::make_unique<CallExpr>(std::move(function), std::move(args));
}
ExprPtr MakeColumnEquals(std::string column, Value v) {
  return MakeBinary(BinaryOp::kEq, MakeColumn(std::move(column)),
                    MakeLiteral(std::move(v)));
}

Status CheckScalarCall(const std::string& name, size_t arity) {
  auto need = [&](size_t n) -> Status {
    if (arity != n) {
      return Status::InvalidArgument(name + " expects " + std::to_string(n) +
                                     " arguments");
    }
    return Status::OK();
  };
  if (name == "LOWER" || name == "UPPER" || name == "LENGTH" ||
      name == "ABS" || name == "LIST_LEN") {
    return need(1);
  }
  if (name == "ROUND" || name == "CONTAINS") return need(2);
  if (name == "SUBSTR") return need(3);
  if (name == "COALESCE") {
    if (arity == 0) {
      return Status::InvalidArgument("COALESCE needs at least 1 argument");
    }
    return Status::OK();
  }
  return Status::NotFound("unknown function " + name);
}

std::optional<ValueType> ScalarFunctionResultType(const std::string& name) {
  if (name == "LOWER" || name == "UPPER" || name == "SUBSTR") {
    return ValueType::kString;
  }
  if (name == "LENGTH" || name == "LIST_LEN") return ValueType::kInt;
  if (name == "ROUND") return ValueType::kDouble;
  if (name == "CONTAINS") return ValueType::kBool;
  return std::nullopt;  // ABS/COALESCE depend on their arguments
}

}  // namespace courserank::query
