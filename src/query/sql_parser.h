#ifndef COURSERANK_QUERY_SQL_PARSER_H_
#define COURSERANK_QUERY_SQL_PARSER_H_

#include <string>

#include "common/status.h"
#include "query/sql_ast.h"

namespace courserank::query {

/// Parses one SQL statement from the dialect described in README.md:
/// SELECT [DISTINCT] items FROM t [alias] {[LEFT] JOIN t [alias] ON expr}
///   [WHERE expr] [GROUP BY exprs [HAVING expr]]
///   [ORDER BY expr [ASC|DESC], ...] [LIMIT n [OFFSET m]]
/// plus INSERT INTO / UPDATE / DELETE FROM / CREATE TABLE. String literals
/// use single quotes with '' escaping; named parameters are $name.
Result<Statement> ParseSql(const std::string& sql);

/// Parses a standalone scalar expression in the same dialect (used by the
/// workflow DSL and by tests).
Result<ExprPtr> ParseExpression(const std::string& text);

}  // namespace courserank::query

#endif  // COURSERANK_QUERY_SQL_PARSER_H_
