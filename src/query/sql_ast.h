#ifndef COURSERANK_QUERY_SQL_AST_H_
#define COURSERANK_QUERY_SQL_AST_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "query/expr.h"
#include "query/plan.h"
#include "storage/schema.h"

namespace courserank::query {

/// One item of a SELECT list. Exactly one of {star, agg, expr} is active:
/// `*`, an aggregate call, or a scalar expression.
struct SelectItem {
  bool star = false;
  std::optional<AggFn> agg;
  ExprPtr expr;        // aggregate argument when agg is set (null = COUNT(*))
  std::string alias;   // output name; derived from the expression if empty
};

struct TableRef {
  std::string table;
  std::string alias;
};

struct JoinClause {
  TableRef table;
  ExprPtr on;
  bool left = false;
};

struct OrderItem {
  ExprPtr expr;
  bool ascending = true;
};

struct SelectStmt {
  bool distinct = false;
  std::vector<SelectItem> items;
  TableRef from;
  std::vector<JoinClause> joins;
  ExprPtr where;
  std::vector<ExprPtr> group_by;
  ExprPtr having;
  std::vector<OrderItem> order_by;
  std::optional<size_t> limit;
  size_t offset = 0;
};

struct InsertStmt {
  std::string table;
  std::vector<std::string> columns;  // empty = schema order
  std::vector<std::vector<ExprPtr>> rows;
};

struct UpdateStmt {
  std::string table;
  std::vector<std::pair<std::string, ExprPtr>> assignments;
  ExprPtr where;
};

struct DeleteStmt {
  std::string table;
  ExprPtr where;
};

struct CreateTableStmt {
  std::string table;
  std::vector<storage::Column> columns;
  std::vector<std::string> primary_key;
};

/// A parsed SQL statement; exactly one member is set.
struct Statement {
  std::unique_ptr<SelectStmt> select;
  std::unique_ptr<InsertStmt> insert;
  std::unique_ptr<UpdateStmt> update;
  std::unique_ptr<DeleteStmt> del;
  std::unique_ptr<CreateTableStmt> create_table;
};

}  // namespace courserank::query

#endif  // COURSERANK_QUERY_SQL_AST_H_
