#ifndef COURSERANK_QUERY_EXPR_H_
#define COURSERANK_QUERY_EXPR_H_

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "query/relation.h"
#include "storage/schema.h"
#include "storage/value.h"

namespace courserank::query {

/// Named query parameters ("$student" in SQL / workflow text), bound at
/// execution time.
using ParamMap = std::map<std::string, Value>;

class Expr;
using ExprPtr = std::unique_ptr<Expr>;

/// Binary operators. Comparison ops return BOOL (or NULL); LIKE is
/// case-insensitive with %/_ wildcards.
enum class BinaryOp {
  kAdd,
  kSub,
  kMul,
  kDiv,
  kMod,
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kAnd,
  kOr,
  kLike,
};

enum class UnaryOp { kNot, kNeg };

/// Structural visitor over expression trees. Expr::Accept dispatches to
/// exactly one method per node; the visitor drives recursion itself by
/// calling Accept on the sub-expressions it is handed. Used by the static
/// analyzer (type inference, column collection, constant folding) — the
/// evaluator does not go through this.
class ExprVisitor {
 public:
  virtual ~ExprVisitor() = default;

  virtual void VisitLiteral(const storage::Value& value) { (void)value; }
  virtual void VisitColumn(const std::string& name) { (void)name; }
  virtual void VisitParam(const std::string& name) { (void)name; }
  virtual void VisitUnary(UnaryOp op, const Expr& operand) {
    (void)op;
    (void)operand;
  }
  virtual void VisitBinary(BinaryOp op, const Expr& lhs, const Expr& rhs) {
    (void)op;
    (void)lhs;
    (void)rhs;
  }
  virtual void VisitIsNull(const Expr& operand, bool negated) {
    (void)operand;
    (void)negated;
  }
  virtual void VisitInList(const Expr& operand,
                           const std::vector<storage::Value>& values) {
    (void)operand;
    (void)values;
  }
  virtual void VisitCall(const std::string& function,
                         const std::vector<ExprPtr>& args) {
    (void)function;
    (void)args;
  }
};

/// Scalar expression tree with SQL NULL semantics: comparisons and
/// arithmetic involving NULL yield NULL; AND/OR use three-valued logic; a
/// Filter keeps a row only when the predicate is exactly TRUE.
///
/// Lifecycle: build → Bind(schema, params) → Eval(row) per row. Bind
/// resolves column names to indices and parameter names to values; Eval is
/// then allocation-light.
class Expr {
 public:
  virtual ~Expr() = default;

  /// Resolves column references against `schema` and parameters against
  /// `params` (may be nullptr when the expression uses none).
  virtual Status Bind(const Schema& schema, const ParamMap* params) = 0;

  /// Evaluates against a row of the bound schema.
  virtual Result<Value> Eval(const Row& row) const = 0;

  /// SQL-ish rendering, used by EXPLAIN and the FlexRecs compiler.
  virtual std::string ToString() const = 0;

  /// Deep copy (unbound).
  virtual std::unique_ptr<Expr> Clone() const = 0;

  /// Single dispatch to the matching ExprVisitor method (no recursion).
  virtual void Accept(ExprVisitor& visitor) const = 0;
};

/// Factory helpers. All return unbound expressions.
ExprPtr MakeLiteral(Value v);
ExprPtr MakeColumn(std::string name);
ExprPtr MakeParam(std::string name);
ExprPtr MakeUnary(UnaryOp op, ExprPtr operand);
ExprPtr MakeBinary(BinaryOp op, ExprPtr lhs, ExprPtr rhs);
/// `IS NULL` / `IS NOT NULL`.
ExprPtr MakeIsNull(ExprPtr operand, bool negated);
/// `expr IN (v1, v2, ...)` over literal values.
ExprPtr MakeInList(ExprPtr operand, std::vector<Value> values);
/// Scalar function call; see kScalarFunctions in expr.cc for the registry
/// (LOWER, UPPER, LENGTH, ABS, ROUND, COALESCE, CONTAINS, SUBSTR,
/// LIST_LEN).
ExprPtr MakeCall(std::string function, std::vector<ExprPtr> args);

/// Convenience: column = literal.
ExprPtr MakeColumnEquals(std::string column, Value v);

/// Token for rendering a BinaryOp ("+", "AND", ...).
const char* BinaryOpName(BinaryOp op);

/// Arity/name validation for the scalar function registry, shared between
/// CallExpr::Bind and the static analyzer. `name` must already be
/// upper-cased. NotFound for unknown functions, InvalidArgument for wrong
/// arity.
Status CheckScalarCall(const std::string& name, size_t arity);

/// Static result type of a registry function when it has one (LENGTH →
/// INT, LOWER → STRING, ...). nullopt for functions whose type depends on
/// their arguments (ABS, COALESCE). `name` must already be upper-cased.
std::optional<storage::ValueType> ScalarFunctionResultType(
    const std::string& name);

}  // namespace courserank::query

#endif  // COURSERANK_QUERY_EXPR_H_
