#ifndef COURSERANK_QUERY_EXPR_H_
#define COURSERANK_QUERY_EXPR_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "query/relation.h"
#include "storage/schema.h"
#include "storage/value.h"

namespace courserank::query {

/// Named query parameters ("$student" in SQL / workflow text), bound at
/// execution time.
using ParamMap = std::map<std::string, Value>;

/// Scalar expression tree with SQL NULL semantics: comparisons and
/// arithmetic involving NULL yield NULL; AND/OR use three-valued logic; a
/// Filter keeps a row only when the predicate is exactly TRUE.
///
/// Lifecycle: build → Bind(schema, params) → Eval(row) per row. Bind
/// resolves column names to indices and parameter names to values; Eval is
/// then allocation-light.
class Expr {
 public:
  virtual ~Expr() = default;

  /// Resolves column references against `schema` and parameters against
  /// `params` (may be nullptr when the expression uses none).
  virtual Status Bind(const Schema& schema, const ParamMap* params) = 0;

  /// Evaluates against a row of the bound schema.
  virtual Result<Value> Eval(const Row& row) const = 0;

  /// SQL-ish rendering, used by EXPLAIN and the FlexRecs compiler.
  virtual std::string ToString() const = 0;

  /// Deep copy (unbound).
  virtual std::unique_ptr<Expr> Clone() const = 0;
};

using ExprPtr = std::unique_ptr<Expr>;

/// Binary operators. Comparison ops return BOOL (or NULL); LIKE is
/// case-insensitive with %/_ wildcards.
enum class BinaryOp {
  kAdd,
  kSub,
  kMul,
  kDiv,
  kMod,
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kAnd,
  kOr,
  kLike,
};

enum class UnaryOp { kNot, kNeg };

/// Factory helpers. All return unbound expressions.
ExprPtr MakeLiteral(Value v);
ExprPtr MakeColumn(std::string name);
ExprPtr MakeParam(std::string name);
ExprPtr MakeUnary(UnaryOp op, ExprPtr operand);
ExprPtr MakeBinary(BinaryOp op, ExprPtr lhs, ExprPtr rhs);
/// `IS NULL` / `IS NOT NULL`.
ExprPtr MakeIsNull(ExprPtr operand, bool negated);
/// `expr IN (v1, v2, ...)` over literal values.
ExprPtr MakeInList(ExprPtr operand, std::vector<Value> values);
/// Scalar function call; see kScalarFunctions in expr.cc for the registry
/// (LOWER, UPPER, LENGTH, ABS, ROUND, COALESCE, CONTAINS, SUBSTR,
/// LIST_LEN).
ExprPtr MakeCall(std::string function, std::vector<ExprPtr> args);

/// Convenience: column = literal.
ExprPtr MakeColumnEquals(std::string column, Value v);

/// Token for rendering a BinaryOp ("+", "AND", ...).
const char* BinaryOpName(BinaryOp op);

}  // namespace courserank::query

#endif  // COURSERANK_QUERY_EXPR_H_
