#include "query/relation.h"

#include <algorithm>

namespace courserank::query {

std::string Relation::ToString(size_t max_rows) const {
  size_t ncols = schema.num_columns();
  std::vector<size_t> widths(ncols);
  std::vector<std::vector<std::string>> cells;
  for (size_t i = 0; i < ncols; ++i) widths[i] = schema.column(i).name.size();

  size_t shown = std::min(max_rows, rows.size());
  cells.reserve(shown);
  for (size_t r = 0; r < shown; ++r) {
    std::vector<std::string> line;
    line.reserve(ncols);
    for (size_t c = 0; c < ncols; ++c) {
      std::string s = rows[r][c].ToString();
      if (s.size() > 48) s = s.substr(0, 45) + "...";
      widths[c] = std::max(widths[c], s.size());
      line.push_back(std::move(s));
    }
    cells.push_back(std::move(line));
  }

  auto hline = [&]() {
    std::string out = "+";
    for (size_t c = 0; c < ncols; ++c) {
      out.append(widths[c] + 2, '-');
      out += "+";
    }
    out += "\n";
    return out;
  };
  auto format_row = [&](const std::vector<std::string>& line) {
    std::string out = "|";
    for (size_t c = 0; c < ncols; ++c) {
      out += " " + line[c];
      out.append(widths[c] - line[c].size() + 1, ' ');
      out += "|";
    }
    out += "\n";
    return out;
  };

  std::vector<std::string> header;
  header.reserve(ncols);
  for (size_t c = 0; c < ncols; ++c) header.push_back(schema.column(c).name);

  std::string out = hline() + format_row(header) + hline();
  for (const auto& line : cells) out += format_row(line);
  out += hline();
  out += "(" + std::to_string(rows.size()) + " row" +
         (rows.size() == 1 ? "" : "s");
  if (shown < rows.size()) out += ", showing " + std::to_string(shown);
  out += ")\n";
  return out;
}

}  // namespace courserank::query
