#include "query/plan.h"

#include <algorithm>
#include <optional>
#include <unordered_map>

#include "common/strings.h"
#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "query/hash_table.h"
#include "query/profile.h"
#include "query/vector_ops.h"
#include "storage/chunked_table.h"
#include "storage/value.h"

namespace courserank::query {

using storage::Column;
using storage::RowHash;
using storage::ValueType;

const char* AggFnName(AggFn fn) {
  switch (fn) {
    case AggFn::kCountStar:
    case AggFn::kCount:
      return "COUNT";
    case AggFn::kSum:
      return "SUM";
    case AggFn::kAvg:
      return "AVG";
    case AggFn::kMin:
      return "MIN";
    case AggFn::kMax:
      return "MAX";
  }
  return "?";
}

namespace {

/// Executor-wide registry metrics, resolved once. Morsel counts include the
/// serial degenerate case (one morsel) so the counter tracks total operator
/// passes; `parallel_ops` counts operator executions that actually fanned
/// out over more than one morsel.
struct ExecMetrics {
  obs::Counter* morsels;
  obs::Counter* parallel_ops;
  obs::Counter* chunks;
  obs::Counter* dict_hits;
  // Morsel fan-out decisions, one increment per operator pass: ran
  // parallel, skipped because the input was under min_parallel_rows (or
  // split into a single morsel), skipped because the pool has <= 1 worker
  // (the 1-CPU caveat from BENCH runs), or parallelism was off in the
  // ExecOptions.
  obs::Counter* fanout_parallel;
  obs::Counter* fanout_small;
  obs::Counter* fanout_pool;
  obs::Counter* fanout_off;
  obs::Histogram* morsel_ns;
  obs::Histogram* scan_ns;
  obs::Histogram* filter_ns;
  obs::Histogram* project_ns;
  obs::Histogram* join_ns;
  obs::Histogram* aggregate_ns;
  obs::Histogram* sort_ns;
  obs::Histogram* topk_ns;
  obs::Histogram* extend_ns;
  // Parallel runs of the morselized operators record here instead of the
  // base series, so serial latencies are no longer diluted by fan-out runs
  // with different cost profiles.
  obs::Histogram* filter_par_ns;
  obs::Histogram* project_par_ns;
  obs::Histogram* join_par_ns;
  obs::Histogram* extend_par_ns;
  // RowKeyTable (flat_hash) totals across all hash-keyed operators:
  // distinct keys built, probe lookups, slot inspections (build + probe),
  // and saved-hash resizes.
  obs::Counter* hash_entries;
  obs::Counter* hash_probes;
  obs::Counter* hash_steps;
  obs::Counter* hash_resizes;
  // Fusion tier (DESIGN.md §16): fused pipeline executions, total stages
  // those pipelines collapsed, and bailouts — compile-time chain breaks
  // plus runtime falls back to the interpreted stage chain.
  obs::Counter* fused_pipelines;
  obs::Counter* fused_nodes;
  obs::Counter* fusion_bailouts;
  obs::Histogram* fused_ns;
};

const ExecMetrics& Exec() {
  static const ExecMetrics m = [] {
    obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
    return ExecMetrics{reg.GetCounter("cr_exec_morsels_total"),
                       reg.GetCounter("cr_exec_parallel_ops_total"),
                       reg.GetCounter("cr_exec_chunks_total"),
                       reg.GetCounter("cr_exec_dict_hits_total"),
                       reg.GetCounter("cr_exec_fanout_parallel_total"),
                       reg.GetCounter("cr_exec_fanout_skipped_small_total"),
                       reg.GetCounter("cr_exec_fanout_skipped_pool_total"),
                       reg.GetCounter("cr_exec_fanout_serial_config_total"),
                       reg.GetHistogram("cr_exec_morsel_ns"),
                       reg.GetHistogram("cr_exec_scan_ns"),
                       reg.GetHistogram("cr_exec_filter_ns"),
                       reg.GetHistogram("cr_exec_project_ns"),
                       reg.GetHistogram("cr_exec_join_ns"),
                       reg.GetHistogram("cr_exec_aggregate_ns"),
                       reg.GetHistogram("cr_exec_sort_ns"),
                       reg.GetHistogram("cr_exec_topk_ns"),
                       reg.GetHistogram("cr_exec_extend_ns"),
                       reg.GetHistogram("cr_exec_filter_parallel_ns"),
                       reg.GetHistogram("cr_exec_project_parallel_ns"),
                       reg.GetHistogram("cr_exec_join_parallel_ns"),
                       reg.GetHistogram("cr_exec_extend_parallel_ns"),
                       reg.GetCounter("cr_exec_hash_entries_total"),
                       reg.GetCounter("cr_exec_hash_probes_total"),
                       reg.GetCounter("cr_exec_hash_steps_total"),
                       reg.GetCounter("cr_exec_hash_resizes_total"),
                       reg.GetCounter("cr_exec_fused_pipelines_total"),
                       reg.GetCounter("cr_exec_fused_nodes_total"),
                       reg.GetCounter("cr_exec_fusion_bailouts_total"),
                       reg.GetHistogram("cr_exec_fused_ns")};
  }();
  return m;
}

/// Records an operator's own processing time (children excluded — construct
/// after the child Execute calls return).
class OpTimer {
 public:
  explicit OpTimer(obs::Histogram* h) : h_(h), t0_(obs::NowNs()) {}
  ~OpTimer() { h_->Record(obs::NowNs() - t0_); }
  OpTimer(const OpTimer&) = delete;
  OpTimer& operator=(const OpTimer&) = delete;

  /// Redirects the pending sample — operators switch to their parallel
  /// series once the morsel plan decides to fan out.
  void set_histogram(obs::Histogram* h) { h_ = h; }

 private:
  obs::Histogram* h_;
  uint64_t t0_;
};

/// The profile node of the operator currently executing, or null when
/// profiling is off. Valid only on the plan-execution thread (the morsel
/// contract keeps all Execute recursion there).
PlanProfileNode* Prof(ExecContext& ctx) {
  return ctx.profile == nullptr ? nullptr : ctx.profile->current();
}

/// How an operator should split `n` input rows. `morsels == 1` is the
/// serial path; the partition is a pure function of (n, exec options), so
/// chunk concatenation order — and thus the result — never depends on how
/// many workers the pool happens to have (ExecOptions determinism contract).
struct MorselPlan {
  size_t morsels = 1;
  bool parallel = false;
};

MorselPlan PlanMorsels(const ExecContext& ctx, size_t n) {
  const ExecOptions& o = ctx.exec;
  if (!o.parallel) {
    Exec().fanout_off->Add();
    return {1, false};
  }
  if (n < o.min_parallel_rows || n == 0) {
    Exec().fanout_small->Add();
    return {1, false};
  }
  // Fan-out over a 0/1-worker pool only adds task-queue and chunk-concat
  // overhead (BENCH shows *_parallel slower than serial on 1-CPU hosts);
  // run serially instead. Determinism is unaffected either way.
  ThreadPool& pool = o.pool != nullptr ? *o.pool : SharedThreadPool();
  if (pool.num_threads() <= 1) {
    Exec().fanout_pool->Add();
    return {1, false};
  }
  size_t m = ThreadPool::NumMorsels(n, o.morsel_rows);
  if (m <= 1) {
    Exec().fanout_small->Add();
    return {1, false};
  }
  Exec().fanout_parallel->Add();
  return {m, true};
}

/// Storage-level scan counters, shared with the row path in table.cc so the
/// columnar scan stays visible through the same dashboard series.
obs::Counter* StorageScans() {
  static obs::Counter* c =
      obs::MetricsRegistry::Default().GetCounter("cr_storage_scans_total");
  return c;
}
obs::Counter* StorageRowsScanned() {
  static obs::Counter* c = obs::MetricsRegistry::Default().GetCounter(
      "cr_storage_rows_scanned_total");
  return c;
}

/// Runs `body(morsel, begin, end)` over `[0, n)` per `plan` — inline when
/// serial, on the context's pool when parallel — and blocks until done.
/// Every morsel runs to completion even after another fails; the error
/// returned is the one from the lowest-indexed failing morsel, which is
/// exactly the error the serial loop would have hit first.
Status RunMorsels(ExecContext& ctx, size_t n, const MorselPlan& plan,
                  const std::function<Status(size_t, size_t, size_t)>& body) {
  Exec().morsels->Add(plan.morsels);
  if (PlanProfileNode* prof = Prof(ctx)) {
    prof->morsels = plan.morsels;
    prof->parallel = plan.parallel;
  }
  if (!plan.parallel) {
    if (n == 0) return Status::OK();
    return body(0, 0, n);
  }
  Exec().parallel_ops->Add();
  obs::ScopedSpan span(obs::stage::kExecMorsel, Exec().morsel_ns);
  ThreadPool& pool =
      ctx.exec.pool != nullptr ? *ctx.exec.pool : SharedThreadPool();
  std::vector<Status> status(plan.morsels);
  pool.ParallelForMorsels(n, ctx.exec.morsel_rows,
                          [&](size_t m, size_t begin, size_t end) {
                            status[m] = body(m, begin, end);
                          });
  for (Status& st : status) {
    if (!st.ok()) return std::move(st);
  }
  return Status::OK();
}

/// Concatenates per-morsel output chunks in morsel order; moves the single
/// chunk wholesale on the serial path.
void ConcatChunks(std::vector<std::vector<Row>>&& chunks,
                  std::vector<Row>* out) {
  if (chunks.size() == 1) {
    *out = std::move(chunks[0]);
    return;
  }
  size_t total = 0;
  for (const auto& c : chunks) total += c.size();
  out->reserve(total);
  for (auto& c : chunks) {
    for (Row& r : c) out->push_back(std::move(r));
  }
}

/// Pool to hand RowKeyTable::Build for partition-parallel construction, or
/// null when the build should stay serial — same gating as PlanMorsels so
/// the "did we fan out" decision matches the rest of the operator. (Build
/// itself is deterministic either way; this only decides who does the work.)
ThreadPool* BuildPool(const ExecContext& ctx, size_t n) {
  const ExecOptions& o = ctx.exec;
  if (!o.parallel || n < o.min_parallel_rows) return nullptr;
  ThreadPool& pool = o.pool != nullptr ? *o.pool : SharedThreadPool();
  return pool.num_threads() > 1 ? &pool : nullptr;
}

/// Folds a finished RowKeyTable's stats into the executor metrics and the
/// current profile node.
void RecordHashStats(ExecContext& ctx, const RowKeyTable& table) {
  HashTableStats s = table.stats();
  Exec().hash_entries->Add(s.entries);
  Exec().hash_probes->Add(s.probes);
  Exec().hash_steps->Add(s.build_steps + s.probe_steps);
  Exec().hash_resizes->Add(s.resizes);
  if (PlanProfileNode* prof = Prof(ctx)) {
    prof->hash_entries += s.entries;
    prof->hash_probes += s.probes;
    prof->hash_steps += s.build_steps + s.probe_steps;
    prof->hash_max_chain = std::max(prof->hash_max_chain, s.max_chain);
  }
}

/// Runs `fn(p)` over every radix partition — on `pool` when non-null — and
/// returns the first non-OK status in partition order. Callers treat any
/// error as "replay the serial oracle", so serial vs parallel error
/// selection here never reaches the user.
Status ForEachPartition(ThreadPool* pool,
                        const std::function<Status(size_t)>& fn) {
  if (pool == nullptr) {
    for (size_t p = 0; p < RowKeyTable::kNumPartitions; ++p) {
      CR_RETURN_IF_ERROR(fn(p));
    }
    return Status::OK();
  }
  Status status[RowKeyTable::kNumPartitions];
  pool->ParallelFor(RowKeyTable::kNumPartitions, 1,
                    [&](size_t, size_t begin, size_t end) {
                      for (size_t p = begin; p < end; ++p) status[p] = fn(p);
                    });
  for (Status& st : status) {
    if (!st.ok()) return std::move(st);
  }
  return Status::OK();
}

std::string Indent(int n) { return std::string(2 * n, ' '); }

/// Captures the name of a bare column-reference expression (and nothing
/// else) — the shape the Project fast path can execute as an index copy.
class ColumnOnly final : public ExprVisitor {
 public:
  std::optional<std::string> name;
  void VisitColumn(const std::string& n) override { name = n; }
};

/// Column type inferred from the values an expression produced; used to give
/// projected/aggregated relations usable schemas.
ValueType InferType(const std::vector<Row>& rows, size_t col) {
  for (const Row& r : rows) {
    if (!r[col].is_null()) return r[col].type();
  }
  return ValueType::kString;  // arbitrary but stable for all-NULL columns
}

class TableScanNode : public PlanNode {
 public:
  TableScanNode(std::string table, std::string alias)
      : table_(std::move(table)), alias_(std::move(alias)) {}
  TableScanNode(std::string table, std::string alias, ScanPushdown push)
      : table_(std::move(table)),
        alias_(std::move(alias)),
        push_(std::move(push)) {}

  Result<Relation> ExecuteNode(ExecContext& ctx) const override {
    if (ctx.db == nullptr) return Status::Internal("no database in context");
    CR_ASSIGN_OR_RETURN(const storage::Table* t, ctx.db->GetTable(table_));
    OpTimer timer(Exec().scan_ns);
    Schema full =
        alias_.empty() ? t->schema() : t->schema().WithPrefix(alias_);
    bool pushed = push_.predicate != nullptr || !push_.columns.empty() ||
                  push_.limit > 0;
    PlanProfileNode* prof = Prof(ctx);
    if (prof != nullptr) {
      // Scans report the rows they examined as rows_in — overwritten below
      // by the early-exit paths that examine fewer.
      prof->pushdown = pushed;
      prof->rows_in = t->size();
    }
    Relation out;
    if (!pushed) {
      out.schema = std::move(full);
      out.rows.reserve(t->size());
      t->Scan(
          [&](storage::RowId, const Row& row) { out.rows.push_back(row); });
      return out;
    }

    ExprPtr pred;
    if (push_.predicate != nullptr) {
      pred = push_.predicate->Clone();
      CR_RETURN_IF_ERROR(pred->Bind(full, &ctx.params));
    }
    std::vector<size_t> keep;  // full-schema indices of output columns
    if (push_.columns.empty()) {
      out.schema = full;
    } else {
      std::vector<Column> cols;
      keep.reserve(push_.columns.size());
      cols.reserve(push_.columns.size());
      for (const std::string& name : push_.columns) {
        auto idx = full.FindColumn(name);
        if (!idx.has_value()) {
          return Status::Internal("pushdown column '" + name +
                                  "' not in scan schema of '" + table_ + "'");
        }
        keep.push_back(*idx);
        cols.push_back(full.column(*idx));
      }
      out.schema = Schema(std::move(cols));
    }

    size_t cap = push_.limit > 0 ? std::min(push_.limit, t->size()) : t->size();
    out.rows.reserve(cap);

    // Columnar chunk path: when the pushed predicate compiles into the
    // error-free vectorized subset, evaluate it over the table's chunked
    // mirror — tight typed loops with dictionary-id string equality — and
    // materialize only the passing rows (straight from row storage, so the
    // output is byte-identical to the ScanWhile path below). Compile success
    // implies Bind success (same name resolution), so no error divergence.
    if (ctx.exec.columnar && pred != nullptr) {
      CompiledPredicatePtr cp = CompilePredicate(*push_.predicate, full,
                                                 ctx.params);
      if (cp != nullptr) {
        obs::ScopedSpan span(obs::stage::kExecChunk);
        const storage::ChunkedTable* ct = t->columnar();
        Exec().chunks->Add(ct->chunks().size() +
                           (ct->pending().empty() ? 0 : 1));
        VectorStats vstats;
        uint64_t examined = 0;
        bool done = false;
        auto emit = [&](const Row& row) {
          if (keep.empty()) {
            out.rows.push_back(row);
          } else {
            Row projected;
            projected.reserve(keep.size());
            for (size_t c : keep) projected.push_back(row[c]);
            out.rows.push_back(std::move(projected));
          }
          if (push_.limit > 0 && out.rows.size() >= push_.limit) done = true;
        };
        std::vector<uint8_t> sel;
        for (const storage::ColumnChunk& chunk : ct->chunks()) {
          if (done) break;
          sel.resize(chunk.size());
          cp->EvalChunk(chunk, ct->dict(), sel.data(), &vstats);
          examined += chunk.size();
          for (size_t i = 0; i < sel.size() && !done; ++i) {
            if (sel[i] == kSelTrue) emit(*t->Get(chunk.row_ids[i]));
          }
        }
        for (size_t i = 0; i < ct->pending().size() && !done; ++i) {
          ++examined;
          if (cp->EvalRow(ct->pending()[i]) == kSelTrue) {
            emit(ct->pending()[i]);
          }
        }
        Exec().dict_hits->Add(vstats.dict_hits);
        StorageScans()->Add();
        StorageRowsScanned()->Add(examined);
        if (prof != nullptr) {
          prof->columnar = true;
          prof->rows_in = examined;
          prof->dict_hits = vstats.dict_hits;
        }
        return out;
      }
    }

    size_t examined = 0;
    Status scan_status;
    t->ScanWhile([&](storage::RowId, const Row& row) -> bool {
      ++examined;
      if (pred != nullptr) {
        Result<Value> v = pred->Eval(row);
        if (!v.ok()) {
          scan_status = v.status();
          return false;
        }
        if (v->is_null() || v->type() != ValueType::kBool || !v->AsBool()) {
          return true;
        }
      }
      if (keep.empty()) {
        out.rows.push_back(row);
      } else {
        Row projected;
        projected.reserve(keep.size());
        for (size_t c : keep) projected.push_back(row[c]);
        out.rows.push_back(std::move(projected));
      }
      return push_.limit == 0 || out.rows.size() < push_.limit;
    });
    CR_RETURN_IF_ERROR(scan_status);
    if (prof != nullptr) prof->rows_in = examined;
    return out;
  }

  std::string Describe() const override {
    std::string out = "TableScan(" + table_;
    if (!alias_.empty()) out += " AS " + alias_;
    if (push_.predicate != nullptr) {
      out += ", pushed-filter=" + push_.predicate->ToString();
    }
    if (!push_.columns.empty()) {
      out += ", pushed-cols=[";
      for (size_t i = 0; i < push_.columns.size(); ++i) {
        if (i > 0) out += ", ";
        out += push_.columns[i];
      }
      out += "]";
    }
    if (push_.limit > 0) {
      out += ", pushed-limit=" + std::to_string(push_.limit);
    }
    return out + ")";
  }

 private:
  std::string table_;
  std::string alias_;
  ScanPushdown push_;
};

class ValuesNode : public PlanNode {
 public:
  explicit ValuesNode(Relation rel) : rel_(std::move(rel)) {}

  Result<Relation> ExecuteNode(ExecContext&) const override { return rel_; }

  std::string Describe() const override {
    return "Values(" + std::to_string(rel_.rows.size()) + " rows)";
  }

 private:
  Relation rel_;
};

/// MakeValues for single-shot plans: Execute moves the relation out instead
/// of copying. The FlexRecs engine uses this to feed a large intermediate to
/// its last consumer without duplicating every row.
class ValuesOnceNode : public PlanNode {
 public:
  explicit ValuesOnceNode(Relation rel)
      : size_(rel.rows.size()), rel_(std::move(rel)) {}

  Result<Relation> ExecuteNode(ExecContext&) const override {
    return std::move(rel_);
  }

  std::string Describe() const override {
    return "ValuesOnce(" + std::to_string(size_) + " rows)";
  }

 private:
  size_t size_;
  mutable Relation rel_;  // consumed by the single Execute
};

class FilterNode : public PlanNode {
 public:
  FilterNode(PlanPtr child, ExprPtr predicate)
      : child_(std::move(child)), predicate_(std::move(predicate)) {}

  Result<Relation> ExecuteNode(ExecContext& ctx) const override {
    CR_ASSIGN_OR_RETURN(Relation in, child_->Execute(ctx));
    OpTimer timer(Exec().filter_ns);
    // Bound once on this thread, then shared read-only across morsel
    // workers — Eval is const and stateless for every Expr subclass.
    ExprPtr pred = predicate_->Clone();
    CR_RETURN_IF_ERROR(pred->Bind(in.schema, &ctx.params));
    // Predicates in the vectorized subset skip the Expr tree walk (and its
    // Result<Value> temporaries) entirely; EvalRow's tri-state TRUE is
    // exactly the keep condition below.
    CompiledPredicatePtr cp;
    if (ctx.exec.columnar) {
      cp = CompilePredicate(*predicate_, in.schema, ctx.params);
    }
    if (PlanProfileNode* prof = Prof(ctx)) prof->columnar = cp != nullptr;
    Relation out;
    out.schema = in.schema;
    MorselPlan mp = PlanMorsels(ctx, in.rows.size());
    if (mp.parallel) timer.set_histogram(Exec().filter_par_ns);
    std::vector<std::vector<Row>> chunks(mp.morsels);
    CR_RETURN_IF_ERROR(RunMorsels(
        ctx, in.rows.size(), mp,
        [&](size_t m, size_t begin, size_t end) -> Status {
          std::vector<Row>& chunk = chunks[m];
          if (cp != nullptr) {
            for (size_t i = begin; i < end; ++i) {
              if (cp->EvalRow(in.rows[i]) == kSelTrue) {
                chunk.push_back(std::move(in.rows[i]));
              }
            }
            return Status::OK();
          }
          for (size_t i = begin; i < end; ++i) {
            CR_ASSIGN_OR_RETURN(Value v, pred->Eval(in.rows[i]));
            if (!v.is_null() && v.type() == ValueType::kBool && v.AsBool()) {
              chunk.push_back(std::move(in.rows[i]));
            }
          }
          return Status::OK();
        }));
    ConcatChunks(std::move(chunks), &out.rows);
    return out;
  }

  std::string Describe() const override {
    return "Filter(" + predicate_->ToString() + ")";
  }
  std::vector<const PlanNode*> Children() const override {
    return {child_.get()};
  }

 private:
  PlanPtr child_;
  ExprPtr predicate_;
};

class ProjectNode : public PlanNode {
 public:
  ProjectNode(PlanPtr child, std::vector<ProjectItem> items)
      : child_(std::move(child)), items_(std::move(items)) {}

  Result<Relation> ExecuteNode(ExecContext& ctx) const override {
    CR_ASSIGN_OR_RETURN(Relation in, child_->Execute(ctx));
    OpTimer timer(Exec().project_ns);
    std::vector<ExprPtr> exprs;
    exprs.reserve(items_.size());
    for (const auto& item : items_) {
      ExprPtr e = item.expr->Clone();
      CR_RETURN_IF_ERROR(e->Bind(in.schema, &ctx.params));
      exprs.push_back(std::move(e));
    }
    // Pure column-shuffle projections (SELECT a, b — the common pushdown
    // residue) index straight into the row, skipping Expr::Eval.
    std::vector<size_t> col_idx;
    bool all_columns = ctx.exec.columnar && !items_.empty();
    if (all_columns) {
      for (const auto& item : items_) {
        ColumnOnly c;
        item.expr->Accept(c);
        std::optional<size_t> idx;
        if (c.name.has_value()) idx = in.schema.FindColumn(*c.name);
        if (!idx.has_value()) {
          all_columns = false;
          break;
        }
        col_idx.push_back(*idx);
      }
    }
    if (PlanProfileNode* prof = Prof(ctx)) prof->columnar = all_columns;
    Relation out;
    MorselPlan mp = PlanMorsels(ctx, in.rows.size());
    if (mp.parallel) timer.set_histogram(Exec().project_par_ns);
    std::vector<std::vector<Row>> chunks(mp.morsels);
    CR_RETURN_IF_ERROR(RunMorsels(
        ctx, in.rows.size(), mp,
        [&](size_t m, size_t begin, size_t end) -> Status {
          std::vector<Row>& chunk = chunks[m];
          chunk.reserve(end - begin);
          if (all_columns) {
            for (size_t i = begin; i < end; ++i) {
              Row projected;
              projected.reserve(col_idx.size());
              for (size_t c : col_idx) projected.push_back(in.rows[i][c]);
              chunk.push_back(std::move(projected));
            }
            return Status::OK();
          }
          for (size_t i = begin; i < end; ++i) {
            Row projected;
            projected.reserve(exprs.size());
            for (const auto& e : exprs) {
              CR_ASSIGN_OR_RETURN(Value v, e->Eval(in.rows[i]));
              projected.push_back(std::move(v));
            }
            chunk.push_back(std::move(projected));
          }
          return Status::OK();
        }));
    ConcatChunks(std::move(chunks), &out.rows);
    std::vector<Column> cols;
    cols.reserve(items_.size());
    for (size_t i = 0; i < items_.size(); ++i) {
      cols.emplace_back(items_[i].name,
                        out.rows.empty() ? ValueType::kString
                                         : InferType(out.rows, i));
    }
    out.schema = Schema(std::move(cols));
    return out;
  }

  std::string Describe() const override {
    std::string list;
    for (size_t i = 0; i < items_.size(); ++i) {
      if (i > 0) list += ", ";
      list += items_[i].expr->ToString() + " AS " + items_[i].name;
    }
    return "Project(" + list + ")";
  }
  std::vector<const PlanNode*> Children() const override {
    return {child_.get()};
  }

 private:
  PlanPtr child_;
  std::vector<ProjectItem> items_;
};

/// Splits a join condition into hashable equality pairs (left column, right
/// column) and a residual predicate. Conservative: only recognizes
/// conjunctions of `col = col` with one side in each input schema.
struct EquiSplit {
  std::vector<std::pair<size_t, size_t>> pairs;  // (left idx, right idx)
  ExprPtr residual;                              // may be null
};

class JoinNode : public PlanNode {
 public:
  JoinNode(PlanPtr left, PlanPtr right, ExprPtr condition, JoinType type,
           JoinBuildSide build)
      : left_(std::move(left)),
        right_(std::move(right)),
        condition_(std::move(condition)),
        type_(type),
        build_(build) {}

  Result<Relation> ExecuteNode(ExecContext& ctx) const override {
    CR_ASSIGN_OR_RETURN(Relation l, left_->Execute(ctx));
    CR_ASSIGN_OR_RETURN(Relation r, right_->Execute(ctx));
    OpTimer timer(Exec().join_ns);
    Relation out;
    out.schema = Schema::Concat(l.schema, r.schema);

    // Bind the full condition against the concatenated schema. Shared
    // read-only by all probe morsels (Eval is const and stateless).
    ExprPtr cond;
    if (condition_ != nullptr) {
      cond = condition_->Clone();
      CR_RETURN_IF_ERROR(cond->Bind(out.schema, &ctx.params));
    }

    EquiSplit split = SplitEquiPairs(l.schema, r.schema);
    size_t rnull = r.schema.num_columns();

    auto emit_if_match = [&](const Row& lr, const Row& rr, bool* matched,
                             std::vector<Row>* sink) -> Status {
      Row combined;
      combined.reserve(lr.size() + rr.size());
      combined.insert(combined.end(), lr.begin(), lr.end());
      combined.insert(combined.end(), rr.begin(), rr.end());
      if (cond != nullptr) {
        CR_ASSIGN_OR_RETURN(Value v, cond->Eval(combined));
        if (v.is_null() || v.type() != ValueType::kBool || !v.AsBool()) {
          return Status::OK();
        }
      }
      if (matched != nullptr) *matched = true;
      sink->push_back(std::move(combined));
      return Status::OK();
    };
    auto pad_left = [&](const Row& lr, std::vector<Row>* sink) {
      Row combined;
      combined.reserve(lr.size() + rnull);
      combined.insert(combined.end(), lr.begin(), lr.end());
      combined.resize(combined.size() + rnull, Value::Null());
      sink->push_back(std::move(combined));
    };

    // The probe side (left rows) splits into morsels; the build table /
    // right relation is shared read-only. Per-morsel chunks concatenate in
    // morsel order, preserving the serial output order exactly.
    MorselPlan mp = PlanMorsels(ctx, l.rows.size());
    if (mp.parallel) timer.set_histogram(Exec().join_par_ns);
    std::vector<std::vector<Row>> chunks(mp.morsels);

    if (!split.pairs.empty() && type_ == JoinType::kInner &&
        build_ == JoinBuildSide::kLeft) {
      // Planner-hinted build-on-left: the left (probe-order) side is
      // statically much smaller, so hash it instead of the right relation.
      // Probing right rows yields matches in right-major order; sorting the
      // (left, right) index pairs restores the exact left-major,
      // chain-in-insertion-order sequence the build-right path emits, so
      // both orientations stay byte-identical.
      std::vector<size_t> lcols;
      std::vector<size_t> rcols;
      for (auto& [lc, rc] : split.pairs) {
        lcols.push_back(lc);
        rcols.push_back(rc);
      }
      std::vector<std::pair<size_t, size_t>> matches;
      if (ctx.exec.flat_hash) {
        RowKeyTable table(lcols.size(), /*build_chains=*/true);
        table.Reserve(l.rows.size());
        for (size_t i = 0; i < l.rows.size(); ++i) {
          table.StageCols(i, l.rows[i], lcols);
        }
        table.Build(l.rows.size(), /*skip_null_keys=*/true, nullptr);
        uint64_t probes = 0;
        uint64_t steps = 0;
        for (size_t ri = 0; ri < r.rows.size(); ++ri) {
          ++probes;
          uint32_t entry = table.FindCols(r.rows[ri], rcols, &steps);
          if (entry == RowKeyTable::kNoEntry) continue;
          CR_RETURN_IF_ERROR(
              table.ForEachEntryRow(entry, [&](uint32_t li) -> Status {
                matches.emplace_back(li, ri);
                return Status::OK();
              }));
        }
        table.AddProbeStats(probes, steps);
        RecordHashStats(ctx, table);
      } else {
        auto key_of = [&](const Row& row,
                          const std::vector<size_t>& cols) -> Row {
          Row key;
          key.reserve(cols.size());
          for (size_t c : cols) key.push_back(row[c]);
          return key;
        };
        std::unordered_map<Row, std::vector<size_t>, RowHash> table;
        table.reserve(l.rows.size());
        for (size_t i = 0; i < l.rows.size(); ++i) {
          Row key = key_of(l.rows[i], lcols);
          bool has_null = false;
          for (const Value& v : key) has_null |= v.is_null();
          if (!has_null) table[std::move(key)].push_back(i);
        }
        for (size_t ri = 0; ri < r.rows.size(); ++ri) {
          Row key = key_of(r.rows[ri], rcols);
          bool has_null = false;
          for (const Value& v : key) has_null |= v.is_null();
          if (has_null) continue;
          auto it = table.find(key);
          if (it == table.end()) continue;
          for (size_t li : it->second) matches.emplace_back(li, ri);
        }
      }
      std::sort(matches.begin(), matches.end());
      out.rows.reserve(matches.size());
      for (const auto& [li, ri] : matches) {
        CR_RETURN_IF_ERROR(
            emit_if_match(l.rows[li], r.rows[ri], nullptr, &out.rows));
      }
      return out;
    }

    if (!split.pairs.empty()) {
      // Hash join: build on right.
      std::vector<size_t> lcols;
      std::vector<size_t> rcols;
      for (auto& [lc, rc] : split.pairs) {
        lcols.push_back(lc);
        rcols.push_back(rc);
      }
      if (ctx.exec.flat_hash) {
        // RowKeyTable build: stage the right-side keys (morsel-parallel —
        // staging slots are disjoint per row), then build the radix
        // partitions (partition-parallel). NULL build keys get no entry and
        // a NULL probe cell's tag can never equal a non-NULL cell's, so the
        // no-match-on-NULL join rule needs no extra checks on either side.
        RowKeyTable table(rcols.size(), /*build_chains=*/true);
        table.Reserve(r.rows.size());
        ThreadPool* bpool = BuildPool(ctx, r.rows.size());
        if (bpool != nullptr) {
          bpool->ParallelForMorsels(r.rows.size(), ctx.exec.morsel_rows,
                                    [&](size_t, size_t begin, size_t end) {
                                      for (size_t i = begin; i < end; ++i) {
                                        table.StageCols(i, r.rows[i], rcols);
                                      }
                                    });
        } else {
          for (size_t i = 0; i < r.rows.size(); ++i) {
            table.StageCols(i, r.rows[i], rcols);
          }
        }
        table.Build(r.rows.size(), /*skip_null_keys=*/true, bpool);
        Status st = RunMorsels(
            ctx, l.rows.size(), mp,
            [&](size_t m, size_t begin, size_t end) -> Status {
              std::vector<Row>& chunk = chunks[m];
              chunk.reserve(end - begin);
              uint64_t probes = 0;
              uint64_t steps = 0;
              Status morsel_st;
              for (size_t i = begin; i < end; ++i) {
                const Row& lr = l.rows[i];
                bool matched = false;
                ++probes;
                uint32_t entry = table.FindCols(lr, lcols, &steps);
                if (entry != RowKeyTable::kNoEntry) {
                  morsel_st =
                      table.ForEachEntryRow(entry, [&](uint32_t ri) -> Status {
                        return emit_if_match(lr, r.rows[ri], &matched, &chunk);
                      });
                  if (!morsel_st.ok()) break;
                }
                if (!matched && type_ == JoinType::kLeft) pad_left(lr, &chunk);
              }
              table.AddProbeStats(probes, steps);
              return morsel_st;
            });
        RecordHashStats(ctx, table);
        CR_RETURN_IF_ERROR(std::move(st));
      } else {
        // Historical map-backed build, kept as the differential oracle
        // (ExecOptions::flat_hash = false).
        auto key_of = [&](const Row& row,
                          const std::vector<size_t>& cols) -> Row {
          Row key;
          key.reserve(cols.size());
          for (size_t c : cols) key.push_back(row[c]);
          return key;
        };
        std::unordered_map<Row, std::vector<size_t>, RowHash> table;
        table.reserve(r.rows.size());
        for (size_t i = 0; i < r.rows.size(); ++i) {
          Row key = key_of(r.rows[i], rcols);
          bool has_null = false;
          for (const Value& v : key) has_null |= v.is_null();
          if (!has_null) table[std::move(key)].push_back(i);
        }
        CR_RETURN_IF_ERROR(RunMorsels(
            ctx, l.rows.size(), mp,
            [&](size_t m, size_t begin, size_t end) -> Status {
              std::vector<Row>& chunk = chunks[m];
              chunk.reserve(end - begin);
              for (size_t i = begin; i < end; ++i) {
                const Row& lr = l.rows[i];
                bool matched = false;
                Row key = key_of(lr, lcols);
                bool has_null = false;
                for (const Value& v : key) has_null |= v.is_null();
                if (!has_null) {
                  auto it = table.find(key);
                  if (it != table.end()) {
                    for (size_t ri : it->second) {
                      CR_RETURN_IF_ERROR(
                          emit_if_match(lr, r.rows[ri], &matched, &chunk));
                    }
                  }
                }
                if (!matched && type_ == JoinType::kLeft) pad_left(lr, &chunk);
              }
              return Status::OK();
            }));
      }
    } else {
      // Nested loop.
      CR_RETURN_IF_ERROR(RunMorsels(
          ctx, l.rows.size(), mp,
          [&](size_t m, size_t begin, size_t end) -> Status {
            std::vector<Row>& chunk = chunks[m];
            for (size_t i = begin; i < end; ++i) {
              const Row& lr = l.rows[i];
              bool matched = false;
              for (const Row& rr : r.rows) {
                CR_RETURN_IF_ERROR(emit_if_match(lr, rr, &matched, &chunk));
              }
              if (!matched && type_ == JoinType::kLeft) pad_left(lr, &chunk);
            }
            return Status::OK();
          }));
    }
    ConcatChunks(std::move(chunks), &out.rows);
    return out;
  }

  std::string Describe() const override {
    return (type_ == JoinType::kInner ? std::string("Join(")
                                      : std::string("LeftJoin(")) +
           (condition_ ? condition_->ToString() : "true") + ")";
  }
  std::vector<const PlanNode*> Children() const override {
    return {left_.get(), right_.get()};
  }

 private:
  /// Recognizes equality conjuncts by re-binding column-only comparisons
  /// against each side's schema. Falls back to empty pairs (nested loop).
  EquiSplit SplitEquiPairs(const Schema& l, const Schema& r) const {
    EquiSplit split;
    if (condition_ == nullptr) return split;
    // We inspect the condition textually via conjunct decomposition on the
    // rendered tree; simpler and robust: try to decompose via ToString is
    // fragile, so instead probe: a condition of form (a = b) AND (...) is
    // produced by MakeBinary chains. We approximate by attempting to bind
    // "col" names: handled in CollectConjuncts below.
    CollectConjuncts(condition_.get(), l, r, &split);
    return split;
  }

  static void CollectConjuncts(const Expr* e, const Schema& l, const Schema& r,
                               EquiSplit* split);

  PlanPtr left_;
  PlanPtr right_;
  ExprPtr condition_;
  JoinType type_;
  JoinBuildSide build_;
};

// Equality-pair extraction needs structural access to the expression tree.
// Rather than expose internals of every Expr subclass, we re-parse the
// rendered conjuncts of the narrow shape "(col = col)". This recognizes the
// plans our SQL planner and FlexRecs compiler build (they always emit plain
// column-to-column equality joins) and safely degrades to a nested-loop join
// for anything fancier.
void JoinNode::CollectConjuncts(const Expr* e, const Schema& l,
                                const Schema& r, EquiSplit* split) {
  std::string s = e->ToString();
  // Split on top-level " AND ".
  std::vector<std::string> conjuncts;
  int depth = 0;
  size_t start = 0;
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '(') ++depth;
    else if (s[i] == ')') --depth;
    else if (depth == 1 && s.compare(i, 5, " AND ") == 0) {
      conjuncts.push_back(s.substr(start, i - start));
      start = i + 5;
      i += 4;
    }
  }
  conjuncts.push_back(s.substr(start));

  std::vector<std::string> residual_parts;
  for (std::string& c : conjuncts) {
    std::string_view cv = Trim(c);
    // Strip one layer of parens if balanced.
    while (cv.size() >= 2 && cv.front() == '(' && cv.back() == ')') {
      int d = 0;
      bool balanced = true;
      for (size_t i = 0; i < cv.size(); ++i) {
        if (cv[i] == '(') ++d;
        else if (cv[i] == ')') {
          --d;
          if (d == 0 && i + 1 != cv.size()) {
            balanced = false;
            break;
          }
        }
      }
      if (!balanced) break;
      cv = Trim(cv.substr(1, cv.size() - 2));
    }
    std::string body(cv);
    size_t eq = body.find(" = ");
    bool recognized = false;
    if (eq != std::string::npos && body.find('(') == std::string::npos) {
      std::string a(Trim(body.substr(0, eq)));
      std::string b(Trim(body.substr(eq + 3)));
      auto la = l.FindColumn(a);
      auto rb = r.FindColumn(b);
      auto lb = l.FindColumn(b);
      auto ra = r.FindColumn(a);
      if (la.has_value() && rb.has_value()) {
        split->pairs.emplace_back(*la, *rb);
        recognized = true;
      } else if (lb.has_value() && ra.has_value()) {
        split->pairs.emplace_back(*lb, *ra);
        recognized = true;
      }
    }
    if (!recognized) residual_parts.push_back(body);
  }
  // Residual predicate stays inside the bound full condition (we always
  // re-check the full condition per emitted row), so nothing to do here.
  (void)residual_parts;
}

class AggregateNode : public PlanNode {
 public:
  AggregateNode(PlanPtr child, std::vector<ProjectItem> group_by,
                std::vector<AggregateItem> aggs)
      : child_(std::move(child)),
        group_by_(std::move(group_by)),
        aggs_(std::move(aggs)) {}

  Result<Relation> ExecuteNode(ExecContext& ctx) const override {
    CR_ASSIGN_OR_RETURN(Relation in, child_->Execute(ctx));
    OpTimer timer(Exec().aggregate_ns);

    std::vector<ExprPtr> keys;
    for (const auto& g : group_by_) {
      ExprPtr e = g.expr->Clone();
      CR_RETURN_IF_ERROR(e->Bind(in.schema, &ctx.params));
      keys.push_back(std::move(e));
    }
    std::vector<ExprPtr> args;
    for (const auto& a : aggs_) {
      ExprPtr e;
      if (a.arg != nullptr) {
        e = a.arg->Clone();
        CR_RETURN_IF_ERROR(e->Bind(in.schema, &ctx.params));
      }
      args.push_back(std::move(e));
    }

    Relation out;
    if (ctx.exec.flat_hash) {
      CR_RETURN_IF_ERROR(FlatAggregate(ctx, in, keys, args, &out));
    } else {
      CR_RETURN_IF_ERROR(MapAggregate(in, keys, args, &out));
    }

    std::vector<Column> cols;
    for (size_t i = 0; i < group_by_.size(); ++i) {
      cols.emplace_back(group_by_[i].name,
                        out.rows.empty() ? ValueType::kString
                                         : InferType(out.rows, i));
    }
    for (size_t i = 0; i < aggs_.size(); ++i) {
      size_t ci = group_by_.size() + i;
      ValueType t =
          (aggs_[i].fn == AggFn::kCount || aggs_[i].fn == AggFn::kCountStar)
              ? ValueType::kInt
              : (out.rows.empty() ? ValueType::kDouble
                                  : InferType(out.rows, ci));
      cols.emplace_back(aggs_[i].name, t);
    }
    out.schema = Schema(std::move(cols));
    return out;
  }

  std::string Describe() const override {
    std::string list;
    for (size_t i = 0; i < group_by_.size(); ++i) {
      if (i > 0) list += ", ";
      list += group_by_[i].expr->ToString();
    }
    std::string agg_list;
    for (size_t i = 0; i < aggs_.size(); ++i) {
      if (i > 0) agg_list += ", ";
      agg_list += std::string(AggFnName(aggs_[i].fn)) + "(" +
                  (aggs_[i].arg ? aggs_[i].arg->ToString() : "*") + ")";
    }
    return "Aggregate(by=[" + list + "], aggs=[" + agg_list + "])";
  }
  std::vector<const PlanNode*> Children() const override {
    return {child_.get()};
  }

 private:
  /// Historical unordered_map accumulation, kept as the differential oracle
  /// (ExecOptions::flat_hash = false) and as the error-replay path: when the
  /// flat path hits an Eval error mid-stage, replaying this loop from
  /// scratch reproduces the exact error the serial order hits first (Eval is
  /// deterministic and row-local).
  Status MapAggregate(const Relation& in, const std::vector<ExprPtr>& keys,
                      const std::vector<ExprPtr>& args, Relation* out) const {
    struct GroupState {
      Row key;
      std::vector<int64_t> counts;
      std::vector<double> sums;
      std::vector<Value> mins;
      std::vector<Value> maxs;
    };
    std::unordered_map<Row, GroupState, RowHash> groups;
    // First-appearance emission order. Pointers into `groups` stay valid
    // across inserts (unordered_map never moves nodes); re-looking keys up
    // at finalize through operator[] used to default-construct an empty
    // GroupState whenever hash and equality disagreed (pre-canonical 1 vs
    // 1.0 keys) and then read counts[] out of bounds.
    std::vector<GroupState*> group_order;

    for (const Row& row : in.rows) {
      Row key;
      key.reserve(keys.size());
      for (const auto& k : keys) {
        CR_ASSIGN_OR_RETURN(Value v, k->Eval(row));
        key.push_back(std::move(v));
      }
      auto [it, inserted] = groups.try_emplace(key);
      GroupState& g = it->second;
      if (inserted) {
        g.key = std::move(key);
        g.counts.assign(aggs_.size(), 0);
        g.sums.assign(aggs_.size(), 0.0);
        g.mins.assign(aggs_.size(), Value::Null());
        g.maxs.assign(aggs_.size(), Value::Null());
        group_order.push_back(&g);
      }
      for (size_t i = 0; i < aggs_.size(); ++i) {
        if (aggs_[i].fn == AggFn::kCountStar) {
          ++g.counts[i];
          continue;
        }
        CR_ASSIGN_OR_RETURN(Value v, args[i]->Eval(row));
        if (v.is_null()) continue;
        ++g.counts[i];
        if (aggs_[i].fn == AggFn::kSum || aggs_[i].fn == AggFn::kAvg) {
          CR_ASSIGN_OR_RETURN(double d, v.ToDouble());
          g.sums[i] += d;
        }
        if (g.mins[i].is_null() || v < g.mins[i]) g.mins[i] = v;
        if (g.maxs[i].is_null() || g.maxs[i] < v) g.maxs[i] = v;
      }
    }

    // Global aggregate over empty input still yields one row: COUNT 0,
    // SUM/AVG/MIN/MAX NULL.
    if (group_by_.empty() && groups.empty()) {
      GroupState& g = groups[{}];
      g.counts.assign(aggs_.size(), 0);
      g.sums.assign(aggs_.size(), 0.0);
      g.mins.assign(aggs_.size(), Value::Null());
      g.maxs.assign(aggs_.size(), Value::Null());
      group_order.push_back(&g);
    }

    out->rows.reserve(group_order.size());
    for (GroupState* g : group_order) {
      Row row = std::move(g->key);
      for (size_t i = 0; i < aggs_.size(); ++i) {
        switch (aggs_[i].fn) {
          case AggFn::kCountStar:
          case AggFn::kCount:
            row.push_back(Value(g->counts[i]));
            break;
          case AggFn::kSum:
            row.push_back(g->counts[i] == 0 ? Value::Null()
                                            : Value(g->sums[i]));
            break;
          case AggFn::kAvg:
            row.push_back(g->counts[i] == 0
                              ? Value::Null()
                              : Value(g->sums[i] /
                                      static_cast<double>(g->counts[i])));
            break;
          case AggFn::kMin:
            row.push_back(g->mins[i]);
            break;
          case AggFn::kMax:
            row.push_back(g->maxs[i]);
            break;
        }
      }
      out->rows.push_back(std::move(row));
    }
    return Status::OK();
  }

  /// RowKeyTable path: morsel-parallel key staging, radix-partitioned
  /// build, then partition-parallel accumulation into flat per-entry state.
  /// Each group lives entirely in one partition and each partition visits
  /// its rows in ascending staged order, so per-group accumulation (and FP
  /// summation) order matches the serial loop exactly; emission iterates
  /// staged rows and emits at each entry's leader, which is first-appearance
  /// order. Byte-identical to MapAggregate by construction.
  Status FlatAggregate(ExecContext& ctx, const Relation& in,
                       const std::vector<ExprPtr>& keys,
                       const std::vector<ExprPtr>& args,
                       Relation* out) const {
    const size_t n = in.rows.size();
    const size_t width = keys.size();
    const size_t naggs = aggs_.size();

    RowKeyTable table(width, /*build_chains=*/false);
    table.Reserve(n);
    MorselPlan mp = PlanMorsels(ctx, n);
    Status staged = RunMorsels(
        ctx, n, mp, [&](size_t, size_t begin, size_t end) -> Status {
          Row key;
          for (size_t i = begin; i < end; ++i) {
            key.clear();
            key.reserve(width);
            for (const auto& k : keys) {
              CR_ASSIGN_OR_RETURN(Value v, k->Eval(in.rows[i]));
              key.push_back(std::move(v));
            }
            table.StageMove(i, key);
          }
          return Status::OK();
        });
    if (!staged.ok()) return MapAggregate(in, keys, args, out);

    ThreadPool* bpool = BuildPool(ctx, n);
    // GROUP BY / one-NULL-group semantics: NULL is an ordinary key value.
    table.Build(n, /*skip_null_keys=*/false, bpool);
    const size_t ne = table.entry_count();

    // Flat accumulator state, indexed entry * naggs + agg.
    std::vector<int64_t> counts(ne * naggs, 0);
    std::vector<double> sums(ne * naggs, 0.0);
    std::vector<Value> mins(ne * naggs);
    std::vector<Value> maxs(ne * naggs);

    auto accumulate = [&](size_t p) -> Status {
      for (uint32_t i : table.PartitionKeys(p)) {
        const Row& row = in.rows[i];
        size_t off = size_t{table.EntryOf(i)} * naggs;
        for (size_t a = 0; a < naggs; ++a) {
          if (aggs_[a].fn == AggFn::kCountStar) {
            ++counts[off + a];
            continue;
          }
          CR_ASSIGN_OR_RETURN(Value v, args[a]->Eval(row));
          if (v.is_null()) continue;
          ++counts[off + a];
          if (aggs_[a].fn == AggFn::kSum || aggs_[a].fn == AggFn::kAvg) {
            CR_ASSIGN_OR_RETURN(double d, v.ToDouble());
            sums[off + a] += d;
          }
          if (mins[off + a].is_null() || v < mins[off + a]) {
            mins[off + a] = v;
          }
          if (maxs[off + a].is_null() || maxs[off + a] < v) {
            maxs[off + a] = v;
          }
        }
      }
      return Status::OK();
    };
    if (!ForEachPartition(bpool, accumulate).ok()) {
      return MapAggregate(in, keys, args, out);
    }

    auto append_aggs = [&](Row& row, size_t off) {
      for (size_t a = 0; a < naggs; ++a) {
        switch (aggs_[a].fn) {
          case AggFn::kCountStar:
          case AggFn::kCount:
            row.push_back(Value(counts[off + a]));
            break;
          case AggFn::kSum:
            row.push_back(counts[off + a] == 0 ? Value::Null()
                                               : Value(sums[off + a]));
            break;
          case AggFn::kAvg:
            row.push_back(counts[off + a] == 0
                              ? Value::Null()
                              : Value(sums[off + a] /
                                      static_cast<double>(counts[off + a])));
            break;
          case AggFn::kMin:
            row.push_back(std::move(mins[off + a]));
            break;
          case AggFn::kMax:
            row.push_back(std::move(maxs[off + a]));
            break;
        }
      }
    };

    out->rows.reserve(ne);
    for (size_t i = 0; i < n; ++i) {
      if (!table.IsEntryLeader(i)) continue;
      Row row;
      row.reserve(width + naggs);
      Value* cells = table.MutableKeyCells(i);
      for (size_t c = 0; c < width; ++c) row.push_back(std::move(cells[c]));
      append_aggs(row, size_t{table.EntryOf(i)} * naggs);
      out->rows.push_back(std::move(row));
    }

    // Global aggregate over empty input still yields one row: COUNT 0,
    // SUM/AVG/MIN/MAX NULL (the state arrays are sized 0 here, so emit from
    // freshly defaulted state).
    if (group_by_.empty() && ne == 0) {
      counts.assign(naggs, 0);
      sums.assign(naggs, 0.0);
      mins.assign(naggs, Value());
      maxs.assign(naggs, Value());
      Row row;
      row.reserve(naggs);
      append_aggs(row, 0);
      out->rows.push_back(std::move(row));
    }
    RecordHashStats(ctx, table);
    return Status::OK();
  }

  PlanPtr child_;
  std::vector<ProjectItem> group_by_;
  std::vector<AggregateItem> aggs_;
};

class SortNode : public PlanNode {
 public:
  SortNode(PlanPtr child, std::vector<SortKey> keys)
      : child_(std::move(child)), keys_(std::move(keys)) {}

  Result<Relation> ExecuteNode(ExecContext& ctx) const override {
    CR_ASSIGN_OR_RETURN(Relation in, child_->Execute(ctx));
    OpTimer timer(Exec().sort_ns);
    std::vector<ExprPtr> exprs;
    for (const auto& k : keys_) {
      ExprPtr e = k.expr->Clone();
      CR_RETURN_IF_ERROR(e->Bind(in.schema, &ctx.params));
      exprs.push_back(std::move(e));
    }
    // Precompute key tuples so Eval errors surface before sorting.
    std::vector<std::pair<Row, size_t>> keyed(in.rows.size());
    for (size_t i = 0; i < in.rows.size(); ++i) {
      Row key;
      key.reserve(exprs.size());
      for (const auto& e : exprs) {
        CR_ASSIGN_OR_RETURN(Value v, e->Eval(in.rows[i]));
        key.push_back(std::move(v));
      }
      keyed[i] = {std::move(key), i};
    }
    std::stable_sort(keyed.begin(), keyed.end(),
                     [&](const auto& a, const auto& b) {
                       for (size_t k = 0; k < keys_.size(); ++k) {
                         int c = a.first[k].Compare(b.first[k]);
                         if (c != 0) return keys_[k].ascending ? c < 0 : c > 0;
                       }
                       return false;
                     });
    Relation out;
    out.schema = in.schema;
    out.rows.reserve(in.rows.size());
    for (const auto& [key, idx] : keyed) out.rows.push_back(in.rows[idx]);
    return out;
  }

  std::string Describe() const override {
    std::string list;
    for (size_t i = 0; i < keys_.size(); ++i) {
      if (i > 0) list += ", ";
      list += keys_[i].expr->ToString() +
              (keys_[i].ascending ? " ASC" : " DESC");
    }
    return "Sort(" + list + ")";
  }
  std::vector<const PlanNode*> Children() const override {
    return {child_.get()};
  }

 private:
  PlanPtr child_;
  std::vector<SortKey> keys_;
};

/// ORDER BY + LIMIT fused into a bounded heap: keeps the first
/// `limit + offset` rows of the sorted order in O(n log k) time and O(k)
/// extra space instead of sorting the whole input. The comparator breaks
/// key ties on original row index, which makes its total order identical to
/// what stable_sort produces — so TopN output is byte-identical to
/// Sort + Limit on the same input.
class TopNNode : public PlanNode {
 public:
  TopNNode(PlanPtr child, std::vector<SortKey> keys, size_t limit,
           size_t offset)
      : child_(std::move(child)),
        keys_(std::move(keys)),
        limit_(limit),
        offset_(offset) {}

  Result<Relation> ExecuteNode(ExecContext& ctx) const override {
    CR_ASSIGN_OR_RETURN(Relation in, child_->Execute(ctx));
    OpTimer timer(Exec().topk_ns);
    Relation out;
    out.schema = in.schema;
    size_t keep = limit_ + offset_;
    if (keep < limit_) keep = in.rows.size();  // overflow → keep everything

    std::vector<ExprPtr> exprs;
    exprs.reserve(keys_.size());
    for (const auto& k : keys_) {
      ExprPtr e = k.expr->Clone();
      CR_RETURN_IF_ERROR(e->Bind(in.schema, &ctx.params));
      exprs.push_back(std::move(e));
    }

    struct Keyed {
      Row key;
      size_t idx = 0;
    };
    // True when `a` comes strictly before `b` in the sorted output.
    auto comes_first = [this](const Keyed& a, const Keyed& b) {
      for (size_t k = 0; k < keys_.size(); ++k) {
        int c = a.key[k].Compare(b.key[k]);
        if (c != 0) return keys_[k].ascending ? c < 0 : c > 0;
      }
      return a.idx < b.idx;
    };

    // Max-heap under `comes_first`: the root is the kept row that sorts
    // last, i.e. the one a better candidate evicts.
    std::vector<Keyed> heap;
    heap.reserve(std::min(keep + 1, in.rows.size() + 1));
    for (size_t i = 0; i < in.rows.size(); ++i) {
      Keyed cand;
      cand.idx = i;
      cand.key.reserve(exprs.size());
      for (const auto& e : exprs) {
        CR_ASSIGN_OR_RETURN(Value v, e->Eval(in.rows[i]));
        cand.key.push_back(std::move(v));
      }
      if (keep == 0) continue;  // LIMIT 0: evaluate keys, keep nothing
      if (heap.size() < keep) {
        heap.push_back(std::move(cand));
        std::push_heap(heap.begin(), heap.end(), comes_first);
      } else if (comes_first(cand, heap.front())) {
        std::pop_heap(heap.begin(), heap.end(), comes_first);
        heap.back() = std::move(cand);
        std::push_heap(heap.begin(), heap.end(), comes_first);
      }
    }
    std::sort_heap(heap.begin(), heap.end(), comes_first);

    if (offset_ < heap.size()) {
      out.rows.reserve(std::min(limit_, heap.size() - offset_));
      for (size_t i = offset_; i < heap.size(); ++i) {
        out.rows.push_back(std::move(in.rows[heap[i].idx]));
      }
    }
    return out;
  }

  std::string Describe() const override {
    std::string list;
    for (size_t i = 0; i < keys_.size(); ++i) {
      if (i > 0) list += ", ";
      list += keys_[i].expr->ToString() +
              (keys_[i].ascending ? " ASC" : " DESC");
    }
    return "TopN(" + list + ", limit=" + std::to_string(limit_) +
           (offset_ > 0 ? ", offset=" + std::to_string(offset_) : "") + ")";
  }
  std::vector<const PlanNode*> Children() const override {
    return {child_.get()};
  }

 private:
  PlanPtr child_;
  std::vector<SortKey> keys_;
  size_t limit_;
  size_t offset_;
};

class LimitNode : public PlanNode {
 public:
  LimitNode(PlanPtr child, size_t limit, size_t offset)
      : child_(std::move(child)), limit_(limit), offset_(offset) {}

  Result<Relation> ExecuteNode(ExecContext& ctx) const override {
    CR_ASSIGN_OR_RETURN(Relation in, child_->Execute(ctx));
    Relation out;
    out.schema = in.schema;
    for (size_t i = offset_; i < in.rows.size() && out.rows.size() < limit_;
         ++i) {
      out.rows.push_back(std::move(in.rows[i]));
    }
    return out;
  }

  std::string Describe() const override {
    return "Limit(" + std::to_string(limit_) +
           (offset_ > 0 ? ", offset=" + std::to_string(offset_) : "") + ")";
  }
  std::vector<const PlanNode*> Children() const override {
    return {child_.get()};
  }

 private:
  PlanPtr child_;
  size_t limit_;
  size_t offset_;
};

/// First-occurrence dedup over whole rows, shared by Distinct and UNION.
/// SQL DISTINCT semantics: NULLs compare equal, so all-NULL duplicates
/// collapse to one row. The flat path stages every row into a RowKeyTable
/// (morsel-parallel), builds the radix partitions, and keeps each entry's
/// leader; the map path is the historical oracle.
void DedupRows(ExecContext& ctx, std::vector<Row>* rows) {
  if (rows->empty()) return;
  if (ctx.exec.flat_hash) {
    const size_t n = rows->size();
    RowKeyTable table((*rows)[0].size(), /*build_chains=*/false);
    table.Reserve(n);
    ThreadPool* bpool = BuildPool(ctx, n);
    if (bpool != nullptr) {
      bpool->ParallelForMorsels(n, ctx.exec.morsel_rows,
                                [&](size_t, size_t begin, size_t end) {
                                  for (size_t i = begin; i < end; ++i) {
                                    table.StageRow(i, (*rows)[i]);
                                  }
                                });
    } else {
      for (size_t i = 0; i < n; ++i) table.StageRow(i, (*rows)[i]);
    }
    table.Build(n, /*skip_null_keys=*/false, bpool);
    std::vector<Row> deduped;
    deduped.reserve(table.entry_count());
    for (size_t i = 0; i < n; ++i) {
      if (table.IsEntryLeader(i)) deduped.push_back(std::move((*rows)[i]));
    }
    *rows = std::move(deduped);
    RecordHashStats(ctx, table);
    return;
  }
  std::unordered_map<Row, bool, RowHash> seen;
  seen.reserve(rows->size());
  std::vector<Row> deduped;
  for (Row& row : *rows) {
    auto [it, inserted] = seen.try_emplace(row, true);
    if (inserted) deduped.push_back(std::move(row));
  }
  *rows = std::move(deduped);
}

class DistinctNode : public PlanNode {
 public:
  explicit DistinctNode(PlanPtr child) : child_(std::move(child)) {}

  Result<Relation> ExecuteNode(ExecContext& ctx) const override {
    CR_ASSIGN_OR_RETURN(Relation in, child_->Execute(ctx));
    Relation out;
    out.schema = in.schema;
    out.rows = std::move(in.rows);
    DedupRows(ctx, &out.rows);
    return out;
  }

  std::string Describe() const override { return "Distinct"; }
  std::vector<const PlanNode*> Children() const override {
    return {child_.get()};
  }

 private:
  PlanPtr child_;
};

class UnionNode : public PlanNode {
 public:
  UnionNode(PlanPtr left, PlanPtr right, bool all)
      : left_(std::move(left)), right_(std::move(right)), all_(all) {}

  Result<Relation> ExecuteNode(ExecContext& ctx) const override {
    CR_ASSIGN_OR_RETURN(Relation l, left_->Execute(ctx));
    CR_ASSIGN_OR_RETURN(Relation r, right_->Execute(ctx));
    if (l.schema.num_columns() != r.schema.num_columns()) {
      return Status::InvalidArgument("UNION inputs have different arity");
    }
    Relation out;
    out.schema = l.schema;
    out.rows = std::move(l.rows);
    for (Row& row : r.rows) out.rows.push_back(std::move(row));
    if (!all_) DedupRows(ctx, &out.rows);
    return out;
  }

  std::string Describe() const override { return all_ ? "UnionAll" : "Union"; }
  std::vector<const PlanNode*> Children() const override {
    return {left_.get(), right_.get()};
  }

 private:
  PlanPtr left_;
  PlanPtr right_;
  bool all_;
};

class ExtendNode : public PlanNode {
 public:
  ExtendNode(PlanPtr child, PlanPtr source, ExprPtr child_key,
             ExprPtr source_key, std::vector<ExprPtr> collect,
             std::string column_name)
      : child_(std::move(child)),
        source_(std::move(source)),
        child_key_(std::move(child_key)),
        source_key_(std::move(source_key)),
        collect_(std::move(collect)),
        column_name_(std::move(column_name)) {}

  Result<Relation> ExecuteNode(ExecContext& ctx) const override {
    CR_ASSIGN_OR_RETURN(Relation in, child_->Execute(ctx));
    CR_ASSIGN_OR_RETURN(Relation src, source_->Execute(ctx));
    OpTimer timer(Exec().extend_ns);

    ExprPtr ck = child_key_->Clone();
    CR_RETURN_IF_ERROR(ck->Bind(in.schema, &ctx.params));
    ExprPtr sk = source_key_->Clone();
    CR_RETURN_IF_ERROR(sk->Bind(src.schema, &ctx.params));
    std::vector<ExprPtr> collect;
    for (const auto& c : collect_) {
      ExprPtr e = c->Clone();
      CR_RETURN_IF_ERROR(e->Bind(src.schema, &ctx.params));
      collect.push_back(std::move(e));
    }

    // Group source rows by key. Flat path: stage each source row's key into
    // a width-1 RowKeyTable (morsel-parallel), build the radix partitions —
    // NULL source keys get no entry, the same skip the serial loop takes —
    // then accumulate each partition's collect lists; partitions visit rows
    // in ascending staged order and every key lives in exactly one
    // partition, so per-key element order matches the serial loop. Any Eval
    // error anywhere falls back to the serial map loop below, which
    // reproduces the exact serial-first error (Eval is deterministic and
    // row-local).
    bool flat = ctx.exec.flat_hash;
    std::optional<RowKeyTable> table;
    std::vector<Value::List> flat_groups;
    // Bare column-reference keys and collect lists (the common DSL shape:
    // `EXTEND ... ON SuID = SuID COLLECT CourseID, Score`) skip the
    // generic Eval machinery — a direct row[index] copy per cell instead
    // of a virtual call returning Result<Value>. A bare-column read on a
    // well-formed row cannot fail, so the fast path stays inside the flat
    // branch's no-error envelope; short rows divert to Eval, which
    // produces the same diagnostic the serial loop would.
    auto bare_col = [](const Expr& e, const Schema& schema,
                       size_t width) -> std::optional<size_t> {
      ColumnOnly v;
      e.Accept(v);
      if (!v.name.has_value()) return std::nullopt;
      Result<size_t> idx = schema.ColumnIndex(*v.name);
      if (!idx.ok() || *idx >= width) return std::nullopt;
      return *idx;
    };
    if (flat) {
      const size_t sn = src.rows.size();
      const size_t swidth = src.schema.columns().size();
      std::optional<size_t> sk_col = bare_col(*sk, src.schema, swidth);
      std::vector<size_t> ccols;
      bool collect_bare = true;
      for (const auto& c : collect) {
        std::optional<size_t> idx = bare_col(*c, src.schema, swidth);
        if (!idx.has_value()) {
          collect_bare = false;
          break;
        }
        ccols.push_back(*idx);
      }
      table.emplace(1, /*build_chains=*/false);
      table->Reserve(sn);
      MorselPlan smp = PlanMorsels(ctx, sn);
      Status st = RunMorsels(
          ctx, sn, smp, [&](size_t, size_t begin, size_t end) -> Status {
            for (size_t i = begin; i < end; ++i) {
              const Row& row = src.rows[i];
              if (sk_col.has_value() && *sk_col < row.size()) {
                table->StageMove1(i, Value(row[*sk_col]));
              } else {
                CR_ASSIGN_OR_RETURN(Value key, sk->Eval(row));
                table->StageMove1(i, std::move(key));
              }
            }
            return Status::OK();
          });
      if (st.ok()) {
        ThreadPool* bpool = BuildPool(ctx, sn);
        table->Build(sn, /*skip_null_keys=*/true, bpool);
        flat_groups.resize(table->entry_count());
        st = ForEachPartition(bpool, [&](size_t p) -> Status {
          // First pass sizes each group exactly, so the fill pass never
          // reallocates mid-growth. Entries of partition p are contiguous
          // from its base, so the counts live in a small local vector.
          const uint32_t pbase = table->PartitionBase(p);
          std::vector<uint32_t> counts(table->PartitionEntryCount(p), 0);
          for (uint32_t i : table->PartitionKeys(p)) {
            uint32_t local = table->LocalEntryOf(i);
            if (local != RowKeyTable::kNoEntry) ++counts[local];
          }
          for (size_t e = 0; e < counts.size(); ++e) {
            flat_groups[pbase + e].reserve(counts[e]);
          }
          for (uint32_t i : table->PartitionKeys(p)) {
            uint32_t e = table->EntryOf(i);
            if (e == RowKeyTable::kNoEntry) continue;
            const Row& row = src.rows[i];
            Value element;
            if (collect_bare && row.size() >= swidth) {
              if (ccols.size() == 1) {
                element = row[ccols[0]];
              } else {
                Value::List tuple;
                tuple.reserve(ccols.size());
                for (size_t c : ccols) tuple.push_back(row[c]);
                element = Value(std::move(tuple));
              }
            } else if (collect.size() == 1) {
              CR_ASSIGN_OR_RETURN(element, collect[0]->Eval(row));
            } else {
              Value::List tuple;
              tuple.reserve(collect.size());
              for (const auto& c : collect) {
                CR_ASSIGN_OR_RETURN(Value v, c->Eval(row));
                tuple.push_back(std::move(v));
              }
              element = Value(std::move(tuple));
            }
            flat_groups[table->EntryOf(i)].push_back(std::move(element));
          }
          return Status::OK();
        });
      }
      if (!st.ok()) {
        flat = false;
        table.reset();
        flat_groups.clear();
      }
    }

    std::unordered_map<Row, std::vector<Value>, RowHash> grouped;
    if (!flat) {
      grouped.reserve(src.rows.size());
      for (const Row& row : src.rows) {
        CR_ASSIGN_OR_RETURN(Value key, sk->Eval(row));
        if (key.is_null()) continue;
        Value element;
        if (collect.size() == 1) {
          CR_ASSIGN_OR_RETURN(element, collect[0]->Eval(row));
        } else {
          Value::List tuple;
          tuple.reserve(collect.size());
          for (const auto& c : collect) {
            CR_ASSIGN_OR_RETURN(Value v, c->Eval(row));
            tuple.push_back(std::move(v));
          }
          element = Value(std::move(tuple));
        }
        grouped[{key}].push_back(std::move(element));
      }
    }

    // List payloads are immutable behind a shared handle, so sealing each
    // group's list into one Value and copying that handle per child row is
    // byte-identical to rebuilding the list — minus the per-row deep copy
    // that used to dominate ε over large groups. Gated on `columnar` so the
    // row oracle keeps the historical allocation pattern for ablation.
    const bool share_lists = ctx.exec.columnar;
    std::vector<Value> flat_shared;
    std::unordered_map<Row, Value, RowHash> shared;
    if (share_lists) {
      if (flat) {
        flat_shared.reserve(flat_groups.size());
        for (Value::List& g : flat_groups) {
          flat_shared.push_back(Value(std::move(g)));
        }
      } else {
        shared.reserve(grouped.size());
        for (auto& [key, values] : grouped) {
          shared.emplace(key, Value(std::move(values)));
        }
      }
    }
    const Value empty_list{Value::List{}};

    Relation out;
    std::vector<Column> cols = in.schema.columns();
    cols.emplace_back(column_name_, ValueType::kList);
    out.schema = Schema(std::move(cols));
    // The probe over child rows splits into morsels; `grouped` and the
    // bound keys are shared read-only across workers.
    if (PlanProfileNode* prof = Prof(ctx)) prof->columnar = share_lists;
    MorselPlan mp = PlanMorsels(ctx, in.rows.size());
    if (mp.parallel) timer.set_histogram(Exec().extend_par_ns);
    const std::optional<size_t> ck_col =
        flat ? bare_col(*ck, in.schema, in.schema.columns().size())
             : std::nullopt;
    std::vector<std::vector<Row>> chunks(mp.morsels);
    CR_RETURN_IF_ERROR(RunMorsels(
        ctx, in.rows.size(), mp,
        [&](size_t m, size_t begin, size_t end) -> Status {
          std::vector<Row>& chunk = chunks[m];
          chunk.reserve(end - begin);
          uint64_t probes = 0;
          uint64_t steps = 0;
          for (size_t i = begin; i < end; ++i) {
            Row& row = in.rows[i];
            Value key;
            if (ck_col.has_value() && *ck_col < row.size()) {
              key = row[*ck_col];
            } else {
              CR_ASSIGN_OR_RETURN(key, ck->Eval(row));
            }
            if (flat) {
              uint32_t e = RowKeyTable::kNoEntry;
              if (!key.is_null()) {
                ++probes;
                e = table->Find1(key, &steps);
              }
              if (share_lists) {
                row.push_back(e == RowKeyTable::kNoEntry ? empty_list
                                                         : flat_shared[e]);
              } else {
                row.push_back(Value(e == RowKeyTable::kNoEntry
                                        ? Value::List{}
                                        : Value::List(flat_groups[e])));
              }
            } else if (share_lists) {
              auto it = key.is_null() ? shared.end() : shared.find({key});
              row.push_back(it == shared.end() ? empty_list : it->second);
            } else {
              auto it = key.is_null() ? grouped.end() : grouped.find({key});
              Value::List items = it == grouped.end()
                                      ? Value::List{}
                                      : Value::List(it->second);
              row.push_back(Value(std::move(items)));
            }
            chunk.push_back(std::move(row));
          }
          if (flat) table->AddProbeStats(probes, steps);
          return Status::OK();
        }));
    if (flat) RecordHashStats(ctx, *table);
    ConcatChunks(std::move(chunks), &out.rows);
    return out;
  }

  std::string Describe() const override {
    std::string list;
    for (size_t i = 0; i < collect_.size(); ++i) {
      if (i > 0) list += ", ";
      list += collect_[i]->ToString();
    }
    return "Extend(" + column_name_ + " = collect[" + list + "] where " +
           source_key_->ToString() + " = " + child_key_->ToString() + ")";
  }
  std::vector<const PlanNode*> Children() const override {
    return {child_.get(), source_.get()};
  }

 private:
  PlanPtr child_;
  PlanPtr source_;
  ExprPtr child_key_;
  ExprPtr source_key_;
  std::vector<ExprPtr> collect_;
  std::string column_name_;
};

/// The fusion tier (DESIGN.md §16): a maximal σ/π/ε chain executed as one
/// chunk-at-a-time pass over the input. Per morsel, a selection vector
/// threads through every fused filter (compiled predicates, EvalRow ==
/// kSelTrue — the exact FilterNode keep condition), projections rewrite
/// surviving rows in place (moving cells when each source column is used
/// once), and ε appends a shared sealed-list handle probed from a
/// RowKeyTable built over the stage's materialized source — with no
/// intermediate Relation between stages and dead rows dropped without ever
/// being copied forward.
///
/// Byte-identity with the interpreted stage chain:
///  - stage legality (analysis::CheckFusedStage) restricts filters to the
///    compilable shape subset and π/ε to bare column references, so the
///    fused pass cannot error where the interpreted chain would succeed;
///  - no filter stage follows a project stage, so every project stage sees
///    exactly the rows that survive the whole chain — the projected
///    columns' types are therefore inferred over the final output rows,
///    which is the same row set (and order) ProjectNode infers over;
///  - ε group element order is RowKeyTable staged order == source order,
///    and the shared-handle list append is byte-identical to rebuilding
///    the list (the ExtendNode share_lists contract).
/// Any compile-time refusal (unresolvable name, missing parameter) falls
/// back to the interpreted chain below, which surfaces the same bind error
/// — or the same rows — the unfused operators would.
class FusedPipelineNode : public PlanNode {
 public:
  FusedPipelineNode(PlanPtr input, std::vector<FusedStage> stages)
      : input_(std::move(input)), stages_(std::move(stages)) {}

  Result<Relation> ExecuteNode(ExecContext& ctx) const override {
    CR_ASSIGN_OR_RETURN(Relation in, input_->Execute(ctx));
    // Extend sources materialize exactly once, in stage order, in BOTH
    // modes — profiling shape and error ordering agree between them.
    std::vector<Relation> sources(stages_.size());
    for (size_t i = 0; i < stages_.size(); ++i) {
      if (stages_[i].kind == FusedStage::Kind::kExtend) {
        CR_ASSIGN_OR_RETURN(sources[i], stages_[i].source->Execute(ctx));
      }
    }
    if (!ctx.exec.fuse) {
      return ExecuteInterpreted(ctx, std::move(in), std::move(sources));
    }
    return ExecuteFused(ctx, std::move(in), std::move(sources));
  }

  std::string Describe() const override {
    std::string out = "FusedPipeline(";
    for (size_t s = 0; s < stages_.size(); ++s) {
      if (s > 0) out += " -> ";
      const FusedStage& st = stages_[s];
      switch (st.kind) {
        case FusedStage::Kind::kFilter:
          out += "Filter(" + st.predicate->ToString() + ")";
          break;
        case FusedStage::Kind::kProject: {
          std::string list;
          for (size_t i = 0; i < st.items.size(); ++i) {
            if (i > 0) list += ", ";
            list += st.items[i].expr->ToString() + " AS " + st.items[i].name;
          }
          out += "Project(" + list + ")";
          break;
        }
        case FusedStage::Kind::kExtend:
          out += "Extend(" + st.column_name + ")";
          break;
      }
    }
    return out + ")";
  }

  std::vector<const PlanNode*> Children() const override {
    std::vector<const PlanNode*> kids = {input_.get()};
    for (const auto& st : stages_) {
      if (st.source != nullptr) kids.push_back(st.source.get());
    }
    return kids;
  }

 private:
  Result<Relation> ExecuteFused(ExecContext& ctx, Relation in,
                                std::vector<Relation> sources) const {
    OpTimer timer(Exec().fused_ns);
    const size_t ns = stages_.size();
    // Compile every stage against the static chain schema. Only column
    // NAMES matter here — projected column types are data-dependent and
    // patched after the pass — so projections track placeholder types.
    std::vector<Column> cur = in.schema.columns();
    std::vector<CompiledPredicatePtr> filters(ns);
    std::vector<std::vector<size_t>> proj_cols(ns);
    std::vector<char> proj_move(ns, 0);
    std::vector<std::optional<size_t>> ext_ck(ns);
    std::vector<ExprPtr> ext_ck_expr(ns);
    std::vector<std::unique_ptr<RowKeyTable>> ext_table(ns);
    std::vector<std::vector<Value>> ext_groups(ns);
    int last_proj = -1;
    bool ok = true;
    for (size_t s = 0; s < ns && ok; ++s) {
      const FusedStage& st = stages_[s];
      Schema cur_schema(cur);
      switch (st.kind) {
        case FusedStage::Kind::kFilter: {
          filters[s] = CompilePredicate(*st.predicate, cur_schema, ctx.params);
          if (filters[s] == nullptr) ok = false;
          break;
        }
        case FusedStage::Kind::kProject: {
          std::vector<size_t> cols_idx;
          std::vector<size_t> uses(cur.size(), 0);
          for (const auto& item : st.items) {
            ColumnOnly c;
            item.expr->Accept(c);
            std::optional<size_t> idx;
            if (c.name.has_value()) idx = cur_schema.FindColumn(*c.name);
            if (!idx.has_value()) {
              ok = false;
              break;
            }
            ++uses[*idx];
            cols_idx.push_back(*idx);
          }
          if (!ok) break;
          proj_cols[s] = std::move(cols_idx);
          proj_move[s] = 1;
          for (size_t c : proj_cols[s]) {
            if (uses[c] > 1) proj_move[s] = 0;
          }
          last_proj = static_cast<int>(s);
          std::vector<Column> next;
          next.reserve(st.items.size());
          for (const auto& item : st.items) {
            next.emplace_back(item.name, ValueType::kString);
          }
          cur = std::move(next);
          break;
        }
        case FusedStage::Kind::kExtend: {
          const Relation& src = sources[s];
          const size_t swidth = src.schema.columns().size();
          ColumnOnly ckc;
          st.child_key->Accept(ckc);
          std::optional<size_t> ck;
          if (ckc.name.has_value()) ck = cur_schema.FindColumn(*ckc.name);
          ColumnOnly skc;
          st.source_key->Accept(skc);
          std::optional<size_t> sk;
          if (skc.name.has_value()) sk = src.schema.FindColumn(*skc.name);
          std::vector<size_t> ccols;
          bool collect_bare = true;
          for (const auto& c : st.collect) {
            ColumnOnly cc;
            c->Accept(cc);
            std::optional<size_t> idx;
            if (cc.name.has_value()) idx = src.schema.FindColumn(*cc.name);
            if (!idx.has_value()) {
              collect_bare = false;
              break;
            }
            ccols.push_back(*idx);
          }
          if (!ck.has_value() || !sk.has_value() || !collect_bare) {
            ok = false;
            break;
          }
          // Bound twins for the short-row Eval diversion (the ExtendNode
          // pattern) — a bind refusal falls back to the interpreted chain,
          // which surfaces the identical diagnostic.
          ExprPtr cke = st.child_key->Clone();
          ExprPtr ske = st.source_key->Clone();
          if (!cke->Bind(cur_schema, &ctx.params).ok() ||
              !ske->Bind(src.schema, &ctx.params).ok()) {
            ok = false;
            break;
          }
          std::vector<ExprPtr> collect;
          for (const auto& c : st.collect) {
            ExprPtr e = c->Clone();
            if (!e->Bind(src.schema, &ctx.params).ok()) {
              ok = false;
              break;
            }
            collect.push_back(std::move(e));
          }
          if (!ok) break;
          // Build the key → sealed-list table exactly the way ExtendNode's
          // flat path does: staged in source order, NULL source keys
          // skipped, per-key element order == source order.
          auto table = std::make_unique<RowKeyTable>(1, /*build_chains=*/false);
          const size_t sn = src.rows.size();
          table->Reserve(sn);
          MorselPlan smp = PlanMorsels(ctx, sn);
          Status bst = RunMorsels(
              ctx, sn, smp, [&](size_t, size_t begin, size_t end) -> Status {
                for (size_t i = begin; i < end; ++i) {
                  const Row& row = src.rows[i];
                  if (*sk < row.size()) {
                    table->StageMove1(i, Value(row[*sk]));
                  } else {
                    CR_ASSIGN_OR_RETURN(Value key, ske->Eval(row));
                    table->StageMove1(i, std::move(key));
                  }
                }
                return Status::OK();
              });
          if (!bst.ok()) {
            ok = false;
            break;
          }
          ThreadPool* bpool = BuildPool(ctx, sn);
          table->Build(sn, /*skip_null_keys=*/true, bpool);
          std::vector<Value::List> flat_groups(table->entry_count());
          Status fst = ForEachPartition(bpool, [&](size_t p) -> Status {
            const uint32_t pbase = table->PartitionBase(p);
            std::vector<uint32_t> counts(table->PartitionEntryCount(p), 0);
            for (uint32_t i : table->PartitionKeys(p)) {
              uint32_t local = table->LocalEntryOf(i);
              if (local != RowKeyTable::kNoEntry) ++counts[local];
            }
            for (size_t e = 0; e < counts.size(); ++e) {
              flat_groups[pbase + e].reserve(counts[e]);
            }
            for (uint32_t i : table->PartitionKeys(p)) {
              uint32_t e = table->EntryOf(i);
              if (e == RowKeyTable::kNoEntry) continue;
              const Row& row = src.rows[i];
              Value element;
              if (row.size() >= swidth) {
                if (ccols.size() == 1) {
                  element = row[ccols[0]];
                } else {
                  Value::List tuple;
                  tuple.reserve(ccols.size());
                  for (size_t c : ccols) tuple.push_back(row[c]);
                  element = Value(std::move(tuple));
                }
              } else if (collect.size() == 1) {
                CR_ASSIGN_OR_RETURN(element, collect[0]->Eval(row));
              } else {
                Value::List tuple;
                tuple.reserve(collect.size());
                for (const auto& c : collect) {
                  CR_ASSIGN_OR_RETURN(Value v, c->Eval(row));
                  tuple.push_back(std::move(v));
                }
                element = Value(std::move(tuple));
              }
              flat_groups[e].push_back(std::move(element));
            }
            return Status::OK();
          });
          if (!fst.ok()) {
            ok = false;
            break;
          }
          // Seal each group behind one shared handle — byte-identical to
          // rebuilding the list per row (the ExtendNode share contract).
          ext_groups[s].reserve(flat_groups.size());
          for (Value::List& g : flat_groups) {
            ext_groups[s].push_back(Value(std::move(g)));
          }
          ext_ck[s] = ck;
          ext_ck_expr[s] = std::move(cke);
          ext_table[s] = std::move(table);
          cur.emplace_back(st.column_name, ValueType::kList);
          break;
        }
      }
    }
    if (!ok) {
      Exec().fusion_bailouts->Add(1);
      return ExecuteInterpreted(ctx, std::move(in), std::move(sources));
    }
    Exec().fused_pipelines->Add(1);
    Exec().fused_nodes->Add(ns);
    if (PlanProfileNode* prof = Prof(ctx)) prof->columnar = true;

    const Value empty_list{Value::List{}};
    Relation out;
    MorselPlan mp = PlanMorsels(ctx, in.rows.size());
    std::vector<std::vector<Row>> chunks(mp.morsels);
    CR_RETURN_IF_ERROR(RunMorsels(
        ctx, in.rows.size(), mp,
        [&](size_t m, size_t begin, size_t end) -> Status {
          std::vector<Row>& chunk = chunks[m];
          const size_t n = end - begin;
          std::vector<uint8_t> sel(n, 1);
          for (size_t s = 0; s < ns; ++s) {
            switch (stages_[s].kind) {
              case FusedStage::Kind::kFilter: {
                const CompiledPredicate* cp = filters[s].get();
                for (size_t i = 0; i < n; ++i) {
                  if (sel[i] != 0) {
                    sel[i] = cp->EvalRow(in.rows[begin + i]) == kSelTrue;
                  }
                }
                break;
              }
              case FusedStage::Kind::kProject: {
                const std::vector<size_t>& cols_idx = proj_cols[s];
                for (size_t i = 0; i < n; ++i) {
                  if (sel[i] == 0) continue;
                  Row& row = in.rows[begin + i];
                  Row next;
                  next.reserve(cols_idx.size());
                  if (proj_move[s] != 0) {
                    for (size_t c : cols_idx) next.push_back(std::move(row[c]));
                  } else {
                    for (size_t c : cols_idx) next.push_back(row[c]);
                  }
                  row = std::move(next);
                }
                break;
              }
              case FusedStage::Kind::kExtend: {
                RowKeyTable* table = ext_table[s].get();
                const std::vector<Value>& groups = ext_groups[s];
                const size_t ck = *ext_ck[s];
                uint64_t probes = 0;
                uint64_t steps = 0;
                for (size_t i = 0; i < n; ++i) {
                  if (sel[i] == 0) continue;
                  Row& row = in.rows[begin + i];
                  Value key;
                  if (ck < row.size()) {
                    key = row[ck];
                  } else {
                    CR_ASSIGN_OR_RETURN(key, ext_ck_expr[s]->Eval(row));
                  }
                  uint32_t entry = RowKeyTable::kNoEntry;
                  if (!key.is_null()) {
                    ++probes;
                    entry = table->Find1(key, &steps);
                  }
                  row.push_back(entry == RowKeyTable::kNoEntry ? empty_list
                                                               : groups[entry]);
                }
                table->AddProbeStats(probes, steps);
                break;
              }
            }
          }
          size_t kept = 0;
          for (size_t i = 0; i < n; ++i) kept += sel[i];
          chunk.reserve(kept);
          for (size_t i = 0; i < n; ++i) {
            if (sel[i] != 0) chunk.push_back(std::move(in.rows[begin + i]));
          }
          return Status::OK();
        }));
    for (size_t s = 0; s < ns; ++s) {
      if (ext_table[s] != nullptr) RecordHashStats(ctx, *ext_table[s]);
    }
    ConcatChunks(std::move(chunks), &out.rows);

    // Output schema: names from the static chain; projected column types
    // inferred over the final rows (see class comment for why that matches
    // ProjectNode's inference exactly).
    std::vector<Column> final_cols;
    if (last_proj >= 0) {
      const auto& items = stages_[static_cast<size_t>(last_proj)].items;
      final_cols.reserve(cur.size());
      for (size_t i = 0; i < items.size(); ++i) {
        final_cols.emplace_back(items[i].name,
                                out.rows.empty() ? ValueType::kString
                                                 : InferType(out.rows, i));
      }
      for (size_t s = static_cast<size_t>(last_proj) + 1; s < ns; ++s) {
        if (stages_[s].kind == FusedStage::Kind::kExtend) {
          final_cols.emplace_back(stages_[s].column_name, ValueType::kList);
        }
      }
    } else {
      final_cols = in.schema.columns();
      for (const auto& st : stages_) {
        if (st.kind == FusedStage::Kind::kExtend) {
          final_cols.emplace_back(st.column_name, ValueType::kList);
        }
      }
    }
    out.schema = Schema(std::move(final_cols));
    return out;
  }

  /// The differential oracle (ExecOptions::fuse=false) and the bailout
  /// path: the identical stage chain through the ordinary interpreted
  /// operators, fed via ValuesOnce so nothing is copied.
  Result<Relation> ExecuteInterpreted(ExecContext& ctx, Relation in,
                                      std::vector<Relation> sources) const {
    PlanPtr plan = MakeValuesOnce(std::move(in));
    for (size_t s = 0; s < stages_.size(); ++s) {
      const FusedStage& st = stages_[s];
      switch (st.kind) {
        case FusedStage::Kind::kFilter:
          plan = MakeFilter(std::move(plan), st.predicate->Clone());
          break;
        case FusedStage::Kind::kProject: {
          std::vector<ProjectItem> items;
          items.reserve(st.items.size());
          for (const auto& item : st.items) {
            items.push_back({item.expr->Clone(), item.name});
          }
          plan = MakeProject(std::move(plan), std::move(items));
          break;
        }
        case FusedStage::Kind::kExtend: {
          std::vector<ExprPtr> collect;
          collect.reserve(st.collect.size());
          for (const auto& c : st.collect) collect.push_back(c->Clone());
          plan = MakeExtend(std::move(plan),
                            MakeValuesOnce(std::move(sources[s])),
                            st.child_key->Clone(), st.source_key->Clone(),
                            std::move(collect), st.column_name);
          break;
        }
      }
    }
    return plan->Execute(ctx);
  }

  PlanPtr input_;
  std::vector<FusedStage> stages_;
};

}  // namespace

Result<Relation> PlanNode::Execute(ExecContext& ctx) const {
  // Profiling and claim checking both off is the hot path: one branch,
  // then straight into the operator body.
  bool check = ctx.exec.check_static_claims && claims_.has_value();
  if (ctx.profile == nullptr && !check) return ExecuteNode(ctx);
  Result<Relation> result = [&]() -> Result<Relation> {
    if (ctx.profile == nullptr) return ExecuteNode(ctx);
    PlanProfileNode* node = ctx.profile->Push(Describe());
    uint64_t t0 = obs::NowNs();
    Result<Relation> r = ExecuteNode(ctx);
    ctx.profile->Pop(node, obs::NowNs() - t0, r.ok() ? r->rows.size() : 0,
                     !r.ok());
    return r;
  }();
  if (check && result.ok()) {
    Status st = CheckStaticClaims(*result, *claims_);
    if (!st.ok()) {
      return Status::Internal(st.message() + " [node: " + Describe() + "]");
    }
  }
  return result;
}

std::string PlanNode::Explain(int indent) const {
  std::string out = Indent(indent) + Describe() + "\n";
  for (const PlanNode* child : Children()) {
    out += child->Explain(indent + 1);
  }
  return out;
}

PlanPtr MakeTableScan(std::string table, std::string alias) {
  return std::make_unique<TableScanNode>(std::move(table), std::move(alias));
}
PlanPtr MakePushdownScan(std::string table, std::string alias,
                         ScanPushdown push) {
  return std::make_unique<TableScanNode>(std::move(table), std::move(alias),
                                         std::move(push));
}
PlanPtr MakeValues(Relation rel) {
  return std::make_unique<ValuesNode>(std::move(rel));
}
PlanPtr MakeValuesOnce(Relation rel) {
  return std::make_unique<ValuesOnceNode>(std::move(rel));
}
PlanPtr MakeFilter(PlanPtr child, ExprPtr predicate) {
  return std::make_unique<FilterNode>(std::move(child), std::move(predicate));
}
PlanPtr MakeProject(PlanPtr child, std::vector<ProjectItem> items) {
  return std::make_unique<ProjectNode>(std::move(child), std::move(items));
}
PlanPtr MakeJoin(PlanPtr left, PlanPtr right, ExprPtr condition,
                 JoinType type, JoinBuildSide build) {
  return std::make_unique<JoinNode>(std::move(left), std::move(right),
                                    std::move(condition), type, build);
}
PlanPtr MakeAggregate(PlanPtr child, std::vector<ProjectItem> group_by,
                      std::vector<AggregateItem> aggs) {
  return std::make_unique<AggregateNode>(std::move(child),
                                         std::move(group_by), std::move(aggs));
}
PlanPtr MakeSort(PlanPtr child, std::vector<SortKey> keys) {
  return std::make_unique<SortNode>(std::move(child), std::move(keys));
}
PlanPtr MakeLimit(PlanPtr child, size_t limit, size_t offset) {
  return std::make_unique<LimitNode>(std::move(child), limit, offset);
}
PlanPtr MakeTopN(PlanPtr child, std::vector<SortKey> keys, size_t limit,
                 size_t offset) {
  return std::make_unique<TopNNode>(std::move(child), std::move(keys), limit,
                                    offset);
}
PlanPtr MakeDistinct(PlanPtr child) {
  return std::make_unique<DistinctNode>(std::move(child));
}
PlanPtr MakeUnion(PlanPtr left, PlanPtr right, bool all) {
  return std::make_unique<UnionNode>(std::move(left), std::move(right), all);
}
PlanPtr MakeExtend(PlanPtr child, PlanPtr source, ExprPtr child_key,
                   ExprPtr source_key, std::vector<ExprPtr> collect,
                   std::string column_name) {
  return std::make_unique<ExtendNode>(
      std::move(child), std::move(source), std::move(child_key),
      std::move(source_key), std::move(collect), std::move(column_name));
}
PlanPtr MakeFusedPipeline(PlanPtr input, std::vector<FusedStage> stages) {
  return std::make_unique<FusedPipelineNode>(std::move(input),
                                             std::move(stages));
}

Result<Relation> Run(const PlanNode& plan, const storage::Database& db) {
  ExecContext ctx;
  ctx.db = &db;
  return plan.Execute(ctx);
}

namespace {

/// Lenient claim-column resolution: exact (case-insensitive) lookup, then a
/// unique last-dot-segment suffix match; nullopt means "skip this claim".
std::optional<size_t> ResolveClaimColumn(const Schema& schema,
                                         const std::string& name) {
  if (auto idx = schema.FindColumn(name)) return idx;
  auto suffix = [](const std::string& s) {
    size_t dot = s.rfind('.');
    return ToLower(dot == std::string::npos ? s : s.substr(dot + 1));
  };
  // The suffix fallback bridges alias-prefix drift only when one side is
  // unqualified: "A.x" must never resolve to "B.x".
  bool name_bare = name.find('.') == std::string::npos;
  std::string want = suffix(name);
  std::optional<size_t> match;
  for (size_t i = 0; i < schema.num_columns(); ++i) {
    const std::string& col = schema.column(i).name;
    if (!name_bare && col.find('.') != std::string::npos) continue;
    if (suffix(col) == want) {
      if (match.has_value()) return std::nullopt;  // ambiguous
      match = i;
    }
  }
  return match;
}

std::string CardString(size_t n) {
  return n == StaticClaims::kUnbounded ? std::string("*")
                                       : std::to_string(n);
}

}  // namespace

std::string StaticClaims::ToString() const {
  std::string out = "{card=" + CardString(card_min) + ".." +
                    CardString(card_max);
  if (!sort.empty()) {
    out += " sort=(";
    for (size_t i = 0; i < sort.size(); ++i) {
      if (i > 0) out += ", ";
      out += sort[i].column + (sort[i].ascending ? " asc" : " desc");
    }
    out += ")";
  }
  if (!key.empty()) {
    out += " key=(";
    for (size_t i = 0; i < key.size(); ++i) {
      if (i > 0) out += ", ";
      out += key[i];
    }
    out += ")";
  }
  if (!non_null.empty()) {
    out += " nonnull=(";
    for (size_t i = 0; i < non_null.size(); ++i) {
      if (i > 0) out += ", ";
      out += non_null[i];
    }
    out += ")";
  }
  out += "}";
  return out;
}

Status CheckStaticClaims(const Relation& rel, const StaticClaims& claims) {
  auto violation = [](std::string what) {
    return Status::Internal("CR510 static claim violated: " +
                            std::move(what));
  };
  size_t n = rel.rows.size();
  if (n < claims.card_min || n > claims.card_max) {
    return violation(std::to_string(n) + " rows outside claimed bounds " +
                     CardString(claims.card_min) + ".." +
                     CardString(claims.card_max));
  }

  std::vector<std::pair<size_t, bool>> sort_cols;  // (index, ascending)
  for (const StaticClaims::SortBy& s : claims.sort) {
    auto idx = ResolveClaimColumn(rel.schema, s.column);
    if (!idx.has_value()) break;  // prefix up to the first unresolved key
    sort_cols.emplace_back(*idx, s.ascending);
  }
  for (size_t i = 0; i + 1 < n && !sort_cols.empty(); ++i) {
    for (const auto& [c, asc] : sort_cols) {
      int cmp = rel.rows[i][c].Compare(rel.rows[i + 1][c]);
      if (cmp == 0) continue;
      bool ok = asc ? cmp < 0 : cmp > 0;
      if (!ok) {
        return violation("rows " + std::to_string(i) + " and " +
                         std::to_string(i + 1) +
                         " break the claimed sort order on column '" +
                         rel.schema.column(c).name + "'");
      }
      break;
    }
  }

  if (!claims.key.empty()) {
    std::vector<size_t> key_cols;
    bool resolved = true;
    for (const std::string& k : claims.key) {
      auto idx = ResolveClaimColumn(rel.schema, k);
      if (!idx.has_value()) {
        resolved = false;
        break;
      }
      key_cols.push_back(*idx);
    }
    if (resolved) {
      auto less = [&](const Row* a, const Row* b) {
        for (size_t c : key_cols) {
          int cmp = (*a)[c].Compare((*b)[c]);
          if (cmp != 0) return cmp < 0;
        }
        return false;
      };
      std::vector<const Row*> sorted;
      sorted.reserve(n);
      for (const Row& r : rel.rows) sorted.push_back(&r);
      std::sort(sorted.begin(), sorted.end(), less);
      for (size_t i = 0; i + 1 < n; ++i) {
        if (!less(sorted[i], sorted[i + 1]) &&
            !less(sorted[i + 1], sorted[i])) {
          return violation(
              "duplicate rows under the claimed key (" +
              [&] {
                std::string cols;
                for (size_t c : key_cols) {
                  if (!cols.empty()) cols += ", ";
                  cols += rel.schema.column(c).name;
                }
                return cols;
              }() +
              ")");
        }
      }
    }
  }

  for (const std::string& c : claims.non_null) {
    auto idx = ResolveClaimColumn(rel.schema, c);
    if (!idx.has_value()) continue;
    for (size_t i = 0; i < n; ++i) {
      if (rel.rows[i][*idx].is_null()) {
        return violation("NULL in claimed non-NULL column '" +
                         rel.schema.column(*idx).name + "' (row " +
                         std::to_string(i) + ")");
      }
    }
  }
  return Status::OK();
}

}  // namespace courserank::query
