#include "query/profile.h"

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>

#include "common/logging.h"
#include "obs/metrics.h"

namespace courserank::query {

namespace {

void AppendF(std::string* out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

void AppendF(std::string* out, const char* fmt, ...) {
  char buf[256];
  va_list ap;
  va_start(ap, fmt);
  int n = vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  if (n > 0) {
    out->append(buf, std::min(static_cast<size_t>(n), sizeof(buf) - 1));
  }
}

double Pct(uint64_t part, uint64_t whole) {
  if (whole == 0) return 0.0;
  return 100.0 * static_cast<double>(part) / static_cast<double>(whole);
}

}  // namespace

std::string PlanProfileNode::op() const {
  size_t paren = describe.find('(');
  return paren == std::string::npos ? describe : describe.substr(0, paren);
}

uint64_t PlanProfileNode::self_ns() const {
  uint64_t kids = 0;
  for (const auto& c : children) kids += c->wall_ns;
  return kids >= wall_ns ? 0 : wall_ns - kids;
}

PlanProfileNode* ProfileCollector::Push(std::string describe) {
  auto node = std::make_unique<PlanProfileNode>();
  node->describe = std::move(describe);
  PlanProfileNode* raw = node.get();
  if (stack_.empty()) {
    roots_.push_back(std::move(node));
  } else {
    stack_.back()->children.push_back(std::move(node));
  }
  stack_.push_back(raw);
  return raw;
}

void ProfileCollector::Pop(PlanProfileNode* node, uint64_t wall_ns,
                           uint64_t rows_out, bool error) {
  CR_CHECK(!stack_.empty() && stack_.back() == node);
  node->wall_ns = wall_ns;
  node->rows_out = rows_out;
  node->error = error;
  stack_.pop_back();
  // A parent's input is whatever its children produced; scans overwrite
  // rows_in themselves with the rows they examined.
  if (!stack_.empty()) stack_.back()->rows_in += rows_out;
}

std::unique_ptr<PlanProfileNode> ProfileCollector::TakeRoot() {
  if (roots_.empty()) return nullptr;
  std::unique_ptr<PlanProfileNode> root = std::move(roots_.back());
  roots_.pop_back();
  return root;
}

std::string FormatNs(uint64_t ns) {
  char buf[32];
  if (ns < 10'000) {
    snprintf(buf, sizeof(buf), "%" PRIu64 "ns", ns);
  } else if (ns < 10'000'000) {
    snprintf(buf, sizeof(buf), "%.1fus", static_cast<double>(ns) / 1e3);
  } else if (ns < 10'000'000'000ULL) {
    snprintf(buf, sizeof(buf), "%.1fms", static_cast<double>(ns) / 1e6);
  } else {
    snprintf(buf, sizeof(buf), "%.2fs", static_cast<double>(ns) / 1e9);
  }
  return buf;
}

void AppendProfileText(const PlanProfileNode& node, uint64_t total_ns,
                       int indent, std::string* out) {
  out->append(static_cast<size_t>(2 * indent), ' ');
  *out += node.describe;
  AppendF(out, "  [rows %" PRIu64 " -> %" PRIu64, node.rows_in,
          node.rows_out);
  if (node.rows_in > 0) {
    AppendF(out, " (sel %.1f%%)", Pct(node.rows_out, node.rows_in));
  }
  *out += ", self " + FormatNs(node.self_ns());
  AppendF(out, " (%.1f%%)", Pct(node.self_ns(), total_ns));
  if (node.morsels > 1) {
    AppendF(out, ", morsels=%" PRIu64 "%s", node.morsels,
            node.parallel ? " parallel" : "");
  }
  if (node.columnar) *out += ", columnar";
  if (node.pushdown) *out += ", pushdown";
  if (node.dict_hits > 0) {
    AppendF(out, ", dict_hits=%" PRIu64, node.dict_hits);
  }
  if (node.hash_entries > 0) {
    AppendF(out,
            ", hash=%" PRIu64 " entries/%" PRIu64 " probes/%" PRIu64
            " steps, maxchain=%" PRIu64,
            node.hash_entries, node.hash_probes, node.hash_steps,
            node.hash_max_chain);
  }
  if (node.error) *out += ", ERROR";
  *out += "]\n";
  for (const auto& c : node.children) {
    AppendProfileText(*c, total_ns, indent + 1, out);
  }
}

void AppendProfileJson(const PlanProfileNode& node, std::string* out) {
  *out += "{\"op\": " + obs::JsonEscaped(node.op());
  *out += ", \"describe\": " + obs::JsonEscaped(node.describe);
  AppendF(out,
          ", \"wall_ns\": %" PRIu64 ", \"self_ns\": %" PRIu64
          ", \"rows_in\": %" PRIu64 ", \"rows_out\": %" PRIu64
          ", \"morsels\": %" PRIu64,
          node.wall_ns, node.self_ns(), node.rows_in, node.rows_out,
          node.morsels);
  AppendF(out,
          ", \"parallel\": %s, \"columnar\": %s, \"pushdown\": %s"
          ", \"dict_hits\": %" PRIu64 ", \"error\": %s",
          node.parallel ? "true" : "false", node.columnar ? "true" : "false",
          node.pushdown ? "true" : "false", node.dict_hits,
          node.error ? "true" : "false");
  AppendF(out,
          ", \"hash_entries\": %" PRIu64 ", \"hash_probes\": %" PRIu64
          ", \"hash_steps\": %" PRIu64 ", \"hash_max_chain\": %" PRIu64,
          node.hash_entries, node.hash_probes, node.hash_steps,
          node.hash_max_chain);
  *out += ", \"children\": [";
  for (size_t i = 0; i < node.children.size(); ++i) {
    if (i > 0) *out += ", ";
    AppendProfileJson(*node.children[i], out);
  }
  *out += "]}";
}

std::string QueryProfile::Render() const {
  std::string out;
  if (!statement.empty()) out += statement + "  ";
  out += "[total " + FormatNs(total_ns) + "]\n";
  if (root != nullptr) AppendProfileText(*root, total_ns, 0, &out);
  return out;
}

std::string QueryProfile::RenderJson() const {
  std::string out = "{\"statement\": " + obs::JsonEscaped(statement);
  AppendF(&out, ", \"total_ns\": %" PRIu64, total_ns);
  out += ", \"plan\": ";
  if (root == nullptr) {
    out += "null";
  } else {
    AppendProfileJson(*root, &out);
  }
  out += "}";
  return out;
}

}  // namespace courserank::query
