#include "query/sql_parser.h"

#include <cctype>
#include <cstdlib>

#include "common/strings.h"

namespace courserank::query {

namespace {

using storage::Value;
using storage::ValueType;

enum class TokKind {
  kEnd,
  kIdent,    // bare or dotted identifier (possibly a keyword)
  kNumber,   // integer or decimal literal
  kString,   // single-quoted literal, unescaped
  kParam,    // $name
  kSymbol,   // punctuation / operator, text in `text`
};

struct Token {
  TokKind kind = TokKind::kEnd;
  std::string text;   // identifier name, symbol text, or string body
  double num = 0;     // number value
  bool is_int = false;
  size_t pos = 0;     // offset in input, for error messages
};

class Lexer {
 public:
  explicit Lexer(const std::string& input) : in_(input) {}

  Result<std::vector<Token>> Tokenize() {
    std::vector<Token> out;
    size_t i = 0;
    while (i < in_.size()) {
      char c = in_[i];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++i;
        continue;
      }
      Token t;
      t.pos = i;
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        size_t start = i;
        while (i < in_.size() &&
               (std::isalnum(static_cast<unsigned char>(in_[i])) ||
                in_[i] == '_' || in_[i] == '.')) {
          ++i;
        }
        t.kind = TokKind::kIdent;
        t.text = in_.substr(start, i - start);
      } else if (std::isdigit(static_cast<unsigned char>(c))) {
        size_t start = i;
        bool saw_dot = false;
        while (i < in_.size() &&
               (std::isdigit(static_cast<unsigned char>(in_[i])) ||
                (in_[i] == '.' && !saw_dot &&
                 i + 1 < in_.size() &&
                 std::isdigit(static_cast<unsigned char>(in_[i + 1]))))) {
          if (in_[i] == '.') saw_dot = true;
          ++i;
        }
        t.kind = TokKind::kNumber;
        t.text = in_.substr(start, i - start);
        t.num = std::strtod(t.text.c_str(), nullptr);
        t.is_int = !saw_dot;
      } else if (c == '\'') {
        ++i;
        std::string body;
        bool closed = false;
        while (i < in_.size()) {
          if (in_[i] == '\'') {
            if (i + 1 < in_.size() && in_[i + 1] == '\'') {
              body += '\'';
              i += 2;
            } else {
              ++i;
              closed = true;
              break;
            }
          } else {
            body += in_[i++];
          }
        }
        if (!closed) {
          return Status::InvalidArgument("unterminated string literal at " +
                                         std::to_string(t.pos));
        }
        t.kind = TokKind::kString;
        t.text = std::move(body);
      } else if (c == '$') {
        size_t start = ++i;
        while (i < in_.size() &&
               (std::isalnum(static_cast<unsigned char>(in_[i])) ||
                in_[i] == '_')) {
          ++i;
        }
        if (i == start) {
          return Status::InvalidArgument("bare '$' at " +
                                         std::to_string(t.pos));
        }
        t.kind = TokKind::kParam;
        t.text = in_.substr(start, i - start);
      } else {
        // Two-char operators first.
        static constexpr const char* kTwo[] = {"<>", "!=", "<=", ">="};
        t.kind = TokKind::kSymbol;
        bool matched = false;
        for (const char* op : kTwo) {
          if (in_.compare(i, 2, op) == 0) {
            t.text = op;
            i += 2;
            matched = true;
            break;
          }
        }
        if (!matched) {
          static const std::string kOne = "(),*=<>+-/%.";
          if (kOne.find(c) == std::string::npos) {
            return Status::InvalidArgument(
                std::string("unexpected character '") + c + "' at " +
                std::to_string(i));
          }
          t.text = std::string(1, c);
          ++i;
        }
      }
      out.push_back(std::move(t));
    }
    Token end;
    end.kind = TokKind::kEnd;
    end.pos = in_.size();
    out.push_back(end);
    return out;
  }

 private:
  const std::string& in_;
};

/// Recursive-descent parser over the token stream.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : toks_(std::move(tokens)) {}

  Result<Statement> ParseStatement() {
    Statement stmt;
    if (PeekKeyword("SELECT")) {
      CR_ASSIGN_OR_RETURN(auto sel, ParseSelect());
      stmt.select = std::move(sel);
    } else if (PeekKeyword("INSERT")) {
      CR_ASSIGN_OR_RETURN(auto ins, ParseInsert());
      stmt.insert = std::move(ins);
    } else if (PeekKeyword("UPDATE")) {
      CR_ASSIGN_OR_RETURN(auto upd, ParseUpdate());
      stmt.update = std::move(upd);
    } else if (PeekKeyword("DELETE")) {
      CR_ASSIGN_OR_RETURN(auto del, ParseDelete());
      stmt.del = std::move(del);
    } else if (PeekKeyword("CREATE")) {
      CR_ASSIGN_OR_RETURN(auto ct, ParseCreateTable());
      stmt.create_table = std::move(ct);
    } else {
      return Error("expected SELECT, INSERT, UPDATE, DELETE, or CREATE");
    }
    if (!AtEnd()) return Error("trailing tokens after statement");
    return stmt;
  }

  Result<ExprPtr> ParseStandaloneExpression() {
    CR_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
    if (!AtEnd()) return Error("trailing tokens after expression");
    return e;
  }

 private:
  // ---- token helpers -----------------------------------------------------

  const Token& Peek() const { return toks_[pos_]; }
  const Token& Advance() { return toks_[pos_++]; }
  bool AtEnd() const { return Peek().kind == TokKind::kEnd; }

  bool PeekKeyword(const char* kw) const {
    return Peek().kind == TokKind::kIdent && EqualsIgnoreCase(Peek().text, kw);
  }

  bool AcceptKeyword(const char* kw) {
    if (PeekKeyword(kw)) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ExpectKeyword(const char* kw) {
    if (AcceptKeyword(kw)) return Status::OK();
    return Error(std::string("expected ") + kw);
  }

  bool AcceptSymbol(const char* sym) {
    if (Peek().kind == TokKind::kSymbol && Peek().text == sym) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ExpectSymbol(const char* sym) {
    if (AcceptSymbol(sym)) return Status::OK();
    return Error(std::string("expected '") + sym + "'");
  }

  Result<std::string> ExpectIdent() {
    if (Peek().kind != TokKind::kIdent) return Error("expected identifier");
    return Advance().text;
  }

  Status Error(const std::string& msg) const {
    return Status::InvalidArgument("SQL parse error at offset " +
                                   std::to_string(Peek().pos) + ": " + msg +
                                   " (got '" + Peek().text + "')");
  }

  static bool IsKeyword(const std::string& s) {
    static constexpr const char* kKeywords[] = {
        "SELECT", "DISTINCT", "FROM",   "WHERE",  "GROUP", "BY",     "HAVING",
        "ORDER",  "LIMIT",    "OFFSET", "JOIN",   "LEFT",  "ON",     "AS",
        "AND",    "OR",       "NOT",    "LIKE",   "IN",    "IS",     "NULL",
        "TRUE",   "FALSE",    "ASC",    "DESC",   "INSERT", "INTO",  "VALUES",
        "UPDATE", "SET",      "DELETE", "CREATE", "TABLE", "PRIMARY", "KEY",
        "UNION",  "ALL",      "INNER"};
    for (const char* kw : kKeywords) {
      if (EqualsIgnoreCase(s, kw)) return true;
    }
    return false;
  }

  static std::optional<AggFn> AggFnByName(const std::string& s) {
    if (EqualsIgnoreCase(s, "COUNT")) return AggFn::kCount;
    if (EqualsIgnoreCase(s, "SUM")) return AggFn::kSum;
    if (EqualsIgnoreCase(s, "AVG")) return AggFn::kAvg;
    if (EqualsIgnoreCase(s, "MIN")) return AggFn::kMin;
    if (EqualsIgnoreCase(s, "MAX")) return AggFn::kMax;
    return std::nullopt;
  }

  // ---- statements ---------------------------------------------------------

  Result<std::unique_ptr<SelectStmt>> ParseSelect() {
    CR_RETURN_IF_ERROR(ExpectKeyword("SELECT"));
    auto stmt = std::make_unique<SelectStmt>();
    stmt->distinct = AcceptKeyword("DISTINCT");

    // Select list.
    do {
      SelectItem item;
      if (AcceptSymbol("*")) {
        item.star = true;
      } else if (Peek().kind == TokKind::kIdent &&
                 AggFnByName(Peek().text).has_value() &&
                 toks_[pos_ + 1].kind == TokKind::kSymbol &&
                 toks_[pos_ + 1].text == "(") {
        std::string fn = Advance().text;
        item.agg = AggFnByName(fn);
        CR_RETURN_IF_ERROR(ExpectSymbol("("));
        if (AcceptSymbol("*")) {
          if (*item.agg != AggFn::kCount) {
            return Error("only COUNT(*) supports '*'");
          }
          item.agg = AggFn::kCountStar;
        } else {
          CR_ASSIGN_OR_RETURN(item.expr, ParseExpr());
        }
        CR_RETURN_IF_ERROR(ExpectSymbol(")"));
      } else {
        CR_ASSIGN_OR_RETURN(item.expr, ParseExpr());
      }
      if (AcceptKeyword("AS")) {
        CR_ASSIGN_OR_RETURN(item.alias, ExpectIdent());
      } else if (Peek().kind == TokKind::kIdent && !IsKeyword(Peek().text) &&
                 !item.star) {
        item.alias = Advance().text;  // bare alias
      }
      stmt->items.push_back(std::move(item));
    } while (AcceptSymbol(","));

    CR_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    CR_ASSIGN_OR_RETURN(stmt->from, ParseTableRef());

    while (PeekKeyword("JOIN") || PeekKeyword("LEFT") ||
           PeekKeyword("INNER")) {
      JoinClause jc;
      if (AcceptKeyword("LEFT")) jc.left = true;
      else AcceptKeyword("INNER");
      CR_RETURN_IF_ERROR(ExpectKeyword("JOIN"));
      CR_ASSIGN_OR_RETURN(jc.table, ParseTableRef());
      CR_RETURN_IF_ERROR(ExpectKeyword("ON"));
      CR_ASSIGN_OR_RETURN(jc.on, ParseExpr());
      stmt->joins.push_back(std::move(jc));
    }

    if (AcceptKeyword("WHERE")) {
      CR_ASSIGN_OR_RETURN(stmt->where, ParseExpr());
    }
    if (AcceptKeyword("GROUP")) {
      CR_RETURN_IF_ERROR(ExpectKeyword("BY"));
      do {
        CR_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
        stmt->group_by.push_back(std::move(e));
      } while (AcceptSymbol(","));
      if (AcceptKeyword("HAVING")) {
        CR_ASSIGN_OR_RETURN(stmt->having, ParseExpr());
      }
    }
    if (AcceptKeyword("ORDER")) {
      CR_RETURN_IF_ERROR(ExpectKeyword("BY"));
      do {
        OrderItem oi;
        CR_ASSIGN_OR_RETURN(oi.expr, ParseExpr());
        if (AcceptKeyword("DESC")) oi.ascending = false;
        else AcceptKeyword("ASC");
        stmt->order_by.push_back(std::move(oi));
      } while (AcceptSymbol(","));
    }
    if (AcceptKeyword("LIMIT")) {
      if (Peek().kind != TokKind::kNumber || !Peek().is_int) {
        return Error("LIMIT needs an integer");
      }
      stmt->limit = static_cast<size_t>(Advance().num);
      if (AcceptKeyword("OFFSET")) {
        if (Peek().kind != TokKind::kNumber || !Peek().is_int) {
          return Error("OFFSET needs an integer");
        }
        stmt->offset = static_cast<size_t>(Advance().num);
      }
    }
    return stmt;
  }

  Result<TableRef> ParseTableRef() {
    TableRef ref;
    CR_ASSIGN_OR_RETURN(ref.table, ExpectIdent());
    if (AcceptKeyword("AS")) {
      CR_ASSIGN_OR_RETURN(ref.alias, ExpectIdent());
    } else if (Peek().kind == TokKind::kIdent && !IsKeyword(Peek().text)) {
      ref.alias = Advance().text;
    }
    return ref;
  }

  Result<std::unique_ptr<InsertStmt>> ParseInsert() {
    CR_RETURN_IF_ERROR(ExpectKeyword("INSERT"));
    CR_RETURN_IF_ERROR(ExpectKeyword("INTO"));
    auto stmt = std::make_unique<InsertStmt>();
    CR_ASSIGN_OR_RETURN(stmt->table, ExpectIdent());
    if (AcceptSymbol("(")) {
      do {
        CR_ASSIGN_OR_RETURN(std::string col, ExpectIdent());
        stmt->columns.push_back(std::move(col));
      } while (AcceptSymbol(","));
      CR_RETURN_IF_ERROR(ExpectSymbol(")"));
    }
    CR_RETURN_IF_ERROR(ExpectKeyword("VALUES"));
    do {
      CR_RETURN_IF_ERROR(ExpectSymbol("("));
      std::vector<ExprPtr> row;
      do {
        CR_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
        row.push_back(std::move(e));
      } while (AcceptSymbol(","));
      CR_RETURN_IF_ERROR(ExpectSymbol(")"));
      stmt->rows.push_back(std::move(row));
    } while (AcceptSymbol(","));
    return stmt;
  }

  Result<std::unique_ptr<UpdateStmt>> ParseUpdate() {
    CR_RETURN_IF_ERROR(ExpectKeyword("UPDATE"));
    auto stmt = std::make_unique<UpdateStmt>();
    CR_ASSIGN_OR_RETURN(stmt->table, ExpectIdent());
    CR_RETURN_IF_ERROR(ExpectKeyword("SET"));
    do {
      CR_ASSIGN_OR_RETURN(std::string col, ExpectIdent());
      CR_RETURN_IF_ERROR(ExpectSymbol("="));
      CR_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
      stmt->assignments.emplace_back(std::move(col), std::move(e));
    } while (AcceptSymbol(","));
    if (AcceptKeyword("WHERE")) {
      CR_ASSIGN_OR_RETURN(stmt->where, ParseExpr());
    }
    return stmt;
  }

  Result<std::unique_ptr<DeleteStmt>> ParseDelete() {
    CR_RETURN_IF_ERROR(ExpectKeyword("DELETE"));
    CR_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    auto stmt = std::make_unique<DeleteStmt>();
    CR_ASSIGN_OR_RETURN(stmt->table, ExpectIdent());
    if (AcceptKeyword("WHERE")) {
      CR_ASSIGN_OR_RETURN(stmt->where, ParseExpr());
    }
    return stmt;
  }

  Result<std::unique_ptr<CreateTableStmt>> ParseCreateTable() {
    CR_RETURN_IF_ERROR(ExpectKeyword("CREATE"));
    CR_RETURN_IF_ERROR(ExpectKeyword("TABLE"));
    auto stmt = std::make_unique<CreateTableStmt>();
    CR_ASSIGN_OR_RETURN(stmt->table, ExpectIdent());
    CR_RETURN_IF_ERROR(ExpectSymbol("("));
    do {
      if (PeekKeyword("PRIMARY")) {
        Advance();
        CR_RETURN_IF_ERROR(ExpectKeyword("KEY"));
        CR_RETURN_IF_ERROR(ExpectSymbol("("));
        do {
          CR_ASSIGN_OR_RETURN(std::string col, ExpectIdent());
          stmt->primary_key.push_back(std::move(col));
        } while (AcceptSymbol(","));
        CR_RETURN_IF_ERROR(ExpectSymbol(")"));
        continue;
      }
      storage::Column col;
      CR_ASSIGN_OR_RETURN(col.name, ExpectIdent());
      CR_ASSIGN_OR_RETURN(std::string type_name, ExpectIdent());
      if (EqualsIgnoreCase(type_name, "INT") ||
          EqualsIgnoreCase(type_name, "INTEGER") ||
          EqualsIgnoreCase(type_name, "BIGINT")) {
        col.type = ValueType::kInt;
      } else if (EqualsIgnoreCase(type_name, "DOUBLE") ||
                 EqualsIgnoreCase(type_name, "REAL") ||
                 EqualsIgnoreCase(type_name, "FLOAT")) {
        col.type = ValueType::kDouble;
      } else if (EqualsIgnoreCase(type_name, "TEXT") ||
                 EqualsIgnoreCase(type_name, "STRING") ||
                 EqualsIgnoreCase(type_name, "VARCHAR")) {
        col.type = ValueType::kString;
      } else if (EqualsIgnoreCase(type_name, "BOOL") ||
                 EqualsIgnoreCase(type_name, "BOOLEAN")) {
        col.type = ValueType::kBool;
      } else {
        return Error("unknown column type '" + type_name + "'");
      }
      if (AcceptKeyword("NOT")) {
        CR_RETURN_IF_ERROR(ExpectKeyword("NULL"));
        col.nullable = false;
      }
      stmt->columns.push_back(std::move(col));
    } while (AcceptSymbol(","));
    CR_RETURN_IF_ERROR(ExpectSymbol(")"));
    return stmt;
  }

  // ---- expressions (precedence climbing) ----------------------------------

  Result<ExprPtr> ParseExpr() { return ParseOr(); }

  Result<ExprPtr> ParseOr() {
    CR_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAnd());
    while (AcceptKeyword("OR")) {
      CR_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAnd());
      lhs = MakeBinary(BinaryOp::kOr, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseAnd() {
    CR_ASSIGN_OR_RETURN(ExprPtr lhs, ParseNot());
    while (AcceptKeyword("AND")) {
      CR_ASSIGN_OR_RETURN(ExprPtr rhs, ParseNot());
      lhs = MakeBinary(BinaryOp::kAnd, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseNot() {
    if (AcceptKeyword("NOT")) {
      CR_ASSIGN_OR_RETURN(ExprPtr operand, ParseNot());
      return MakeUnary(UnaryOp::kNot, std::move(operand));
    }
    return ParseComparison();
  }

  Result<ExprPtr> ParseComparison() {
    CR_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAdditive());
    // IS [NOT] NULL
    if (AcceptKeyword("IS")) {
      bool negated = AcceptKeyword("NOT");
      CR_RETURN_IF_ERROR(ExpectKeyword("NULL"));
      return MakeIsNull(std::move(lhs), negated);
    }
    // [NOT] IN (literals) / [NOT] LIKE
    bool negated = false;
    if (PeekKeyword("NOT") && (toks_[pos_ + 1].kind == TokKind::kIdent &&
                               (EqualsIgnoreCase(toks_[pos_ + 1].text, "IN") ||
                                EqualsIgnoreCase(toks_[pos_ + 1].text,
                                                 "LIKE")))) {
      Advance();
      negated = true;
    }
    if (AcceptKeyword("IN")) {
      CR_RETURN_IF_ERROR(ExpectSymbol("("));
      std::vector<Value> values;
      do {
        CR_ASSIGN_OR_RETURN(Value v, ParseLiteralValue());
        values.push_back(std::move(v));
      } while (AcceptSymbol(","));
      CR_RETURN_IF_ERROR(ExpectSymbol(")"));
      ExprPtr in = MakeInList(std::move(lhs), std::move(values));
      return negated ? MakeUnary(UnaryOp::kNot, std::move(in))
                     : std::move(in);
    }
    if (AcceptKeyword("LIKE")) {
      CR_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAdditive());
      ExprPtr like = MakeBinary(BinaryOp::kLike, std::move(lhs),
                                std::move(rhs));
      return negated ? MakeUnary(UnaryOp::kNot, std::move(like))
                     : std::move(like);
    }
    if (negated) return Error("expected IN or LIKE after NOT");

    struct OpMap {
      const char* sym;
      BinaryOp op;
    };
    static constexpr OpMap kOps[] = {
        {"<>", BinaryOp::kNe}, {"!=", BinaryOp::kNe}, {"<=", BinaryOp::kLe},
        {">=", BinaryOp::kGe}, {"=", BinaryOp::kEq},  {"<", BinaryOp::kLt},
        {">", BinaryOp::kGt}};
    for (const OpMap& m : kOps) {
      if (AcceptSymbol(m.sym)) {
        CR_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAdditive());
        return MakeBinary(m.op, std::move(lhs), std::move(rhs));
      }
    }
    return lhs;
  }

  Result<ExprPtr> ParseAdditive() {
    CR_ASSIGN_OR_RETURN(ExprPtr lhs, ParseMultiplicative());
    for (;;) {
      if (AcceptSymbol("+")) {
        CR_ASSIGN_OR_RETURN(ExprPtr rhs, ParseMultiplicative());
        lhs = MakeBinary(BinaryOp::kAdd, std::move(lhs), std::move(rhs));
      } else if (AcceptSymbol("-")) {
        CR_ASSIGN_OR_RETURN(ExprPtr rhs, ParseMultiplicative());
        lhs = MakeBinary(BinaryOp::kSub, std::move(lhs), std::move(rhs));
      } else {
        return lhs;
      }
    }
  }

  Result<ExprPtr> ParseMultiplicative() {
    CR_ASSIGN_OR_RETURN(ExprPtr lhs, ParseUnary());
    for (;;) {
      if (AcceptSymbol("*")) {
        CR_ASSIGN_OR_RETURN(ExprPtr rhs, ParseUnary());
        lhs = MakeBinary(BinaryOp::kMul, std::move(lhs), std::move(rhs));
      } else if (AcceptSymbol("/")) {
        CR_ASSIGN_OR_RETURN(ExprPtr rhs, ParseUnary());
        lhs = MakeBinary(BinaryOp::kDiv, std::move(lhs), std::move(rhs));
      } else if (AcceptSymbol("%")) {
        CR_ASSIGN_OR_RETURN(ExprPtr rhs, ParseUnary());
        lhs = MakeBinary(BinaryOp::kMod, std::move(lhs), std::move(rhs));
      } else {
        return lhs;
      }
    }
  }

  Result<ExprPtr> ParseUnary() {
    if (AcceptSymbol("-")) {
      CR_ASSIGN_OR_RETURN(ExprPtr operand, ParseUnary());
      return MakeUnary(UnaryOp::kNeg, std::move(operand));
    }
    return ParsePrimary();
  }

  Result<ExprPtr> ParsePrimary() {
    const Token& t = Peek();
    switch (t.kind) {
      case TokKind::kNumber: {
        Advance();
        if (t.is_int) return MakeLiteral(Value(static_cast<int64_t>(t.num)));
        return MakeLiteral(Value(t.num));
      }
      case TokKind::kString:
        Advance();
        return MakeLiteral(Value(t.text));
      case TokKind::kParam:
        Advance();
        return MakeParam(t.text);
      case TokKind::kSymbol:
        if (t.text == "(") {
          Advance();
          CR_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
          CR_RETURN_IF_ERROR(ExpectSymbol(")"));
          return e;
        }
        return Error("unexpected symbol in expression");
      case TokKind::kIdent: {
        if (AcceptKeyword("NULL")) return MakeLiteral(Value::Null());
        if (AcceptKeyword("TRUE")) return MakeLiteral(Value(true));
        if (AcceptKeyword("FALSE")) return MakeLiteral(Value(false));
        std::string name = Advance().text;
        if (AcceptSymbol("(")) {
          std::vector<ExprPtr> args;
          if (!AcceptSymbol(")")) {
            do {
              CR_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
              args.push_back(std::move(e));
            } while (AcceptSymbol(","));
            CR_RETURN_IF_ERROR(ExpectSymbol(")"));
          }
          return MakeCall(std::move(name), std::move(args));
        }
        return MakeColumn(std::move(name));
      }
      case TokKind::kEnd:
        return Error("unexpected end of input in expression");
    }
    return Error("unexpected token");
  }

  Result<Value> ParseLiteralValue() {
    const Token& t = Peek();
    if (t.kind == TokKind::kNumber) {
      Advance();
      if (t.is_int) return Value(static_cast<int64_t>(t.num));
      return Value(t.num);
    }
    if (t.kind == TokKind::kString) {
      Advance();
      return Value(t.text);
    }
    if (PeekKeyword("NULL")) {
      Advance();
      return Value::Null();
    }
    if (PeekKeyword("TRUE")) {
      Advance();
      return Value(true);
    }
    if (PeekKeyword("FALSE")) {
      Advance();
      return Value(false);
    }
    return Status::InvalidArgument("expected literal in IN list at offset " +
                                   std::to_string(t.pos));
  }

  std::vector<Token> toks_;
  size_t pos_ = 0;
};

}  // namespace

Result<Statement> ParseSql(const std::string& sql) {
  Lexer lexer(sql);
  CR_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Tokenize());
  Parser parser(std::move(tokens));
  return parser.ParseStatement();
}

Result<ExprPtr> ParseExpression(const std::string& text) {
  Lexer lexer(text);
  CR_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Tokenize());
  Parser parser(std::move(tokens));
  return parser.ParseStandaloneExpression();
}

}  // namespace courserank::query
