#ifndef COURSERANK_QUERY_VECTOR_OPS_H_
#define COURSERANK_QUERY_VECTOR_OPS_H_

#include <memory>
#include <vector>

#include "query/expr.h"
#include "storage/chunked_table.h"

namespace courserank::query {

/// SQL three-valued logic over a selection vector: one byte per row.
enum : uint8_t { kSelFalse = 0, kSelTrue = 1, kSelNull = 2 };

/// Counters a chunk evaluation reports back to the executor's metrics.
struct VectorStats {
  /// Rows whose string predicate was decided by dictionary-id equality
  /// without touching string bytes (cr_exec_dict_hits_total).
  uint64_t dict_hits = 0;
};

/// A predicate compiled out of the Expr tree into a branch-light form the
/// columnar scan can evaluate over whole chunks (DESIGN.md §12).
///
/// Only the error-free subset of the expression language compiles:
/// comparisons of a column against a constant (literal or bound
/// parameter), IS [NOT] NULL on a column, IN lists, and NOT/AND/OR over
/// those. Every such expression evaluates via Value::Compare semantics and
/// cannot raise — which is what makes the chunk path's result (and error
/// behavior) byte-identical to row-at-a-time Expr::Eval. Arithmetic, LIKE,
/// and function calls can error mid-row, so Compile refuses them and the
/// caller stays on the row oracle.
class CompiledPredicate {
 public:
  virtual ~CompiledPredicate() = default;

  /// Tri-state evaluation of one row-major row (the pending tail and the
  /// FilterNode fast path).
  virtual uint8_t EvalRow(const storage::Row& row) const = 0;

  /// Evaluates all rows of `chunk` into `out` (resized by the caller to
  /// chunk.size()).
  virtual void EvalChunk(const storage::ColumnChunk& chunk,
                         const storage::StringDictionary& dict,
                         uint8_t* out, VectorStats* stats) const = 0;
};

using CompiledPredicatePtr = std::unique_ptr<CompiledPredicate>;

/// Compiles an UNBOUND predicate against `schema` + `params`. Returns
/// nullptr when the expression falls outside the compilable subset (the
/// caller falls back to Bind + Eval, which also surfaces any bind errors
/// the normal way).
CompiledPredicatePtr CompilePredicate(const Expr& predicate,
                                      const Schema& schema,
                                      const ParamMap& params);

/// Structural (plan-time) mirror of CompilePredicate's accepted grammar:
/// true iff the expression's *shape* lies in the error-free compilable
/// subset — comparisons / IS NULL / IN over column-vs-constant leaves, and
/// NOT/AND/OR over those. Parameters are accepted without being resolved
/// (planning happens before parameters are bound), so CompilePredicate may
/// still refuse at runtime when a parameter is absent; it never *errors*
/// for a shape this function accepts, and neither does row-at-a-time Eval
/// of such a shape. Column names are NOT resolved against any schema.
bool CompilableShape(const Expr& predicate);

}  // namespace courserank::query

#endif  // COURSERANK_QUERY_VECTOR_OPS_H_
