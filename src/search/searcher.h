#ifndef COURSERANK_SEARCH_SEARCHER_H_
#define COURSERANK_SEARCH_SEARCHER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "search/inverted_index.h"

namespace courserank::search {

/// How matched entities are scored. kBm25f is the default field-weighted
/// ranking (title hits beat comment hits — the paper's §3.1 ranking
/// question); kTfIdf is the flat baseline used for the ablation.
enum class RankingMode { kBm25f, kTfIdf };

struct SearchOptions {
  RankingMode ranking = RankingMode::kBm25f;
  /// 0 = unlimited.
  size_t max_results = 0;
  /// BM25 parameters.
  double k1 = 1.2;
  double b = 0.75;
};

struct SearchHit {
  DocId doc = 0;
  double score = 0.0;
};

/// A ranked result set, retaining the analyzed query so data clouds can be
/// computed and refined against it.
struct ResultSet {
  /// Analyzed query terms. Unigram terms are index terms; phrase terms
  /// ("latin american" from a cloud click) contain a space and match
  /// against the document bigram vectors.
  std::vector<std::string> terms;
  std::vector<SearchHit> hits;  ///< descending score

  size_t size() const { return hits.size(); }
};

/// Conjunctive keyword search over an InvertedIndex: every query term must
/// appear somewhere in the entity (any field). This is the engine behind
/// Fig. 3/4.
class Searcher {
 public:
  explicit Searcher(const InvertedIndex* index, SearchOptions options = {})
      : index_(index), options_(options) {}

  /// Free-text query: analyzed into unigram terms; multi-word queries are
  /// conjunctive ("greek science" requires both terms).
  Result<ResultSet> Search(const std::string& query) const;

  /// Refinement (cloud click): conjoins `term` — a display-form term from a
  /// data cloud, possibly a two-word phrase — onto a previous result set.
  /// The intersection is computed on the prior hits, not from scratch
  /// (DESIGN.md ablation: refinement vs re-query).
  Result<ResultSet> Refine(const ResultSet& prior,
                           const std::string& term) const;

  /// Runs the full conjunctive query from scratch (used to cross-check
  /// Refine and by the refinement ablation bench).
  Result<ResultSet> SearchTerms(const std::vector<std::string>& terms) const;

  const SearchOptions& options() const { return options_; }

 private:
  /// True when the live document contains the (possibly phrase) term.
  bool DocContains(DocId doc, const std::string& term) const;

  /// Per-term score contribution of a document.
  double ScoreTerm(DocId doc, const std::string& term) const;

  /// Analyzes raw text to query terms; a phrase of two analyzed terms is
  /// kept as a bigram term when `as_phrase`.
  std::vector<std::string> AnalyzeTermText(const std::string& text,
                                           bool as_phrase) const;

  const InvertedIndex* index_;
  SearchOptions options_;
};

}  // namespace courserank::search

#endif  // COURSERANK_SEARCH_SEARCHER_H_
