#ifndef COURSERANK_SEARCH_SEARCHER_H_
#define COURSERANK_SEARCH_SEARCHER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "search/inverted_index.h"

namespace courserank::search {

/// How matched entities are scored. kBm25f is the default field-weighted
/// ranking (title hits beat comment hits — the paper's §3.1 ranking
/// question); kTfIdf is the flat baseline used for the ablation.
enum class RankingMode { kBm25f, kTfIdf };

/// How the conjunction is evaluated. kPostingsIntersection resolves every
/// term to a TermId once and gallop-intersects sorted postings lists from
/// rarest to most common, scoring during the merge. kPerDocFilter is the
/// original per-candidate `DocContains`/`ScoreTerm` loop, kept as the
/// ablation baseline; both produce byte-identical result sets.
enum class MatchStrategy { kPostingsIntersection, kPerDocFilter };

struct SearchOptions {
  RankingMode ranking = RankingMode::kBm25f;
  MatchStrategy strategy = MatchStrategy::kPostingsIntersection;
  /// 0 = unlimited.
  size_t max_results = 0;
  /// BM25 parameters.
  double k1 = 1.2;
  double b = 0.75;
};

struct SearchHit {
  DocId doc = 0;
  double score = 0.0;
};

/// A ranked result set, retaining the analyzed query so data clouds can be
/// computed and refined against it.
struct ResultSet {
  /// Analyzed query terms, deduplicated in first-occurrence order. Unigram
  /// terms are index terms; phrase terms ("latin american" from a cloud
  /// click) contain a space and match against the document bigram vectors.
  std::vector<std::string> terms;
  std::vector<SearchHit> hits;  ///< descending score
  /// Index epoch this set was computed at; lets caches and refinements
  /// detect that the index has changed underneath a held result.
  uint64_t epoch = 0;

  size_t size() const { return hits.size(); }
};

/// Conjunctive keyword search over an InvertedIndex: every query term must
/// appear somewhere in the entity (any field). This is the engine behind
/// Fig. 3/4.
class Searcher {
 public:
  explicit Searcher(const InvertedIndex* index, SearchOptions options = {})
      : index_(index), options_(options) {}

  /// Free-text query: analyzed into unigram terms; multi-word queries are
  /// conjunctive ("greek science" requires both terms).
  Result<ResultSet> Search(const std::string& query) const;

  /// Refinement (cloud click): conjoins `term` — a display-form term from a
  /// data cloud, possibly a two-word phrase — onto a previous result set.
  /// The intersection is computed on the prior hits, not from scratch
  /// (DESIGN.md ablation: refinement vs re-query). Refining by a term the
  /// query already contains returns the prior set unchanged.
  Result<ResultSet> Refine(const ResultSet& prior,
                           const std::string& term) const;

  /// Runs the full conjunctive query from scratch (used to cross-check
  /// Refine and by the refinement ablation bench). Repeated terms are
  /// deduplicated before evaluation so they are neither matched nor scored
  /// twice.
  Result<ResultSet> SearchTerms(const std::vector<std::string>& terms) const;

  const SearchOptions& options() const { return options_; }

 private:
  /// One query term resolved against the index for the intersection path.
  struct ResolvedTerm {
    bool is_phrase = false;
    TermId tid = kNoTerm;  ///< unigram id, or bigram id for phrases
    /// Postings list driving the intersection: the term's own for
    /// unigrams, its first component word's for phrases.
    const std::vector<Posting>* driver = nullptr;
    size_t cursor = 0;    ///< merge cursor into *driver
    size_t query_pos = 0; ///< position in the deduplicated query
  };

  void IntersectAndScore(std::vector<ResolvedTerm> terms,
                         ResultSet* out) const;

  /// Scoring for a term already resolved to a TermId. For unigrams,
  /// `begin/end` is the doc's run in the term's postings list.
  double ScoreUnigramRun(DocId doc, TermId tid, const Posting* begin,
                         const Posting* end) const;
  double ScorePhrase(DocId doc, TermId tid) const;

  /// True when the live document contains the (possibly phrase) term.
  /// Per-doc ablation path.
  bool DocContains(DocId doc, const std::string& term) const;

  /// Per-term score contribution of a document (per-doc ablation path and
  /// Refine).
  double ScoreTerm(DocId doc, const std::string& term) const;

  /// Analyzes raw text to query terms; a phrase of two analyzed terms is
  /// kept as a bigram term when `as_phrase`.
  std::vector<std::string> AnalyzeTermText(const std::string& text,
                                           bool as_phrase) const;

  const InvertedIndex* index_;
  SearchOptions options_;
};

}  // namespace courserank::search

#endif  // COURSERANK_SEARCH_SEARCHER_H_
