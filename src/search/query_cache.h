#ifndef COURSERANK_SEARCH_QUERY_CACHE_H_
#define COURSERANK_SEARCH_QUERY_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"
#include "search/searcher.h"

namespace courserank::search {

/// Canonical cache form of a query: terms sorted and deduplicated (the
/// conjunction is order-insensitive, so "greek science" and "science
/// greek" share one entry).
std::vector<std::string> NormalizedTerms(std::vector<std::string> terms);

/// Cache key text for a term set under given search options. Does not
/// include the epoch — epochs are validated per entry so one write
/// invalidates without rehashing every key.
std::string SearchKey(const std::vector<std::string>& terms,
                      const SearchOptions& options);

/// Epoch-validated LRU cache. An entry stores the index epoch it was
/// computed at; `Get` only returns it while that epoch is still current,
/// and evicts it otherwise — so a comment write (which bumps the index
/// epoch via Refresh) invalidates every cached result at once, with no
/// explicit flush call. Values are shared_ptr so hits are zero-copy and
/// survive concurrent eviction. Thread-safe, including the statistics
/// accessors: counts live in obs::Counter atomics, so benches and the
/// metrics exposition can poll them while other threads hit the cache
/// without touching the cache mutex.
///
/// When `metrics_prefix` is given, the same events also feed process-wide
/// registry counters `<prefix>_{hits,misses,evictions,stale_drops}_total`
/// and the `<prefix>_entries` gauge, aggregated across every instance
/// constructed with that prefix; the accessors stay per-instance.
template <typename V>
class EpochLru {
 public:
  explicit EpochLru(size_t capacity = 128,
                    const char* metrics_prefix = nullptr)
      : capacity_(capacity) {
    if (metrics_prefix != nullptr) {
      obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
      std::string prefix(metrics_prefix);
      reg_hits_ = reg.GetCounter(prefix + "_hits_total");
      reg_misses_ = reg.GetCounter(prefix + "_misses_total");
      reg_evictions_ = reg.GetCounter(prefix + "_evictions_total");
      reg_stale_drops_ = reg.GetCounter(prefix + "_stale_drops_total");
      reg_entries_ = reg.GetGauge(prefix + "_entries");
    }
  }

  std::shared_ptr<const V> Get(const std::string& key, uint64_t epoch) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = by_key_.find(key);
    if (it == by_key_.end()) {
      Count(misses_, reg_misses_);
      return nullptr;
    }
    if (it->second->epoch != epoch) {
      // Stale: computed against an index state that no longer exists.
      lru_.erase(it->second);
      by_key_.erase(it);
      Count(stale_drops_, reg_stale_drops_);
      Count(misses_, reg_misses_);
      if (reg_entries_ != nullptr) reg_entries_->Add(-1);
      return nullptr;
    }
    lru_.splice(lru_.begin(), lru_, it->second);
    Count(hits_, reg_hits_);
    return it->second->value;
  }

  std::shared_ptr<const V> Put(const std::string& key, uint64_t epoch,
                               V value) {
    auto shared = std::make_shared<const V>(std::move(value));
    std::lock_guard<std::mutex> lock(mu_);
    auto it = by_key_.find(key);
    if (it != by_key_.end()) {
      lru_.erase(it->second);
      by_key_.erase(it);
      if (reg_entries_ != nullptr) reg_entries_->Add(-1);
    }
    lru_.push_front(Entry{key, epoch, shared});
    by_key_[key] = lru_.begin();
    if (reg_entries_ != nullptr) reg_entries_->Add(1);
    while (by_key_.size() > capacity_) {
      by_key_.erase(lru_.back().key);
      lru_.pop_back();
      Count(evictions_, reg_evictions_);
      if (reg_entries_ != nullptr) reg_entries_->Add(-1);
    }
    return shared;
  }

  void Clear() {
    std::lock_guard<std::mutex> lock(mu_);
    if (reg_entries_ != nullptr) {
      reg_entries_->Add(-static_cast<int64_t>(by_key_.size()));
    }
    lru_.clear();
    by_key_.clear();
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return by_key_.size();
  }
  uint64_t hits() const { return hits_.value(); }
  uint64_t misses() const { return misses_.value(); }
  uint64_t evictions() const { return evictions_.value(); }
  uint64_t stale_drops() const { return stale_drops_.value(); }

 private:
  struct Entry {
    std::string key;
    uint64_t epoch;
    std::shared_ptr<const V> value;
  };

  static void Count(obs::Counter& local, obs::Counter* global) {
    local.Add();
    if (global != nullptr) global->Add();
  }

  mutable std::mutex mu_;
  size_t capacity_;
  std::list<Entry> lru_;  // front = most recent
  std::unordered_map<std::string, typename std::list<Entry>::iterator> by_key_;

  obs::Counter hits_;
  obs::Counter misses_;
  obs::Counter evictions_;
  obs::Counter stale_drops_;
  obs::Counter* reg_hits_ = nullptr;
  obs::Counter* reg_misses_ = nullptr;
  obs::Counter* reg_evictions_ = nullptr;
  obs::Counter* reg_stale_drops_ = nullptr;
  obs::Gauge* reg_entries_ = nullptr;
};

/// A Searcher with an epoch-validated result cache in front: repeated and
/// refined queries (the Fig. 4 cloud-click workload) are served from cache
/// until the next index write. Refinements land on the same cache entry a
/// from-scratch query of the combined term set would, so "american" +
/// click "politics" primes the cache for a later "american politics".
class CachingSearcher {
 public:
  explicit CachingSearcher(const InvertedIndex* index,
                           SearchOptions options = {}, size_t capacity = 256)
      : searcher_(index, options),
        index_(index),
        cache_(capacity, "cr_search_result_cache") {}

  Result<std::shared_ptr<const ResultSet>> Search(
      const std::string& query) const;
  Result<std::shared_ptr<const ResultSet>> SearchTerms(
      const std::vector<std::string>& terms) const;
  Result<std::shared_ptr<const ResultSet>> Refine(
      const ResultSet& prior, const std::string& term) const;

  const Searcher& searcher() const { return searcher_; }
  uint64_t cache_hits() const { return cache_.hits(); }
  uint64_t cache_misses() const { return cache_.misses(); }
  uint64_t cache_evictions() const { return cache_.evictions(); }
  uint64_t cache_stale_drops() const { return cache_.stale_drops(); }
  size_t cache_size() const { return cache_.size(); }

 private:
  /// Cache probe + miss path shared by Search/SearchTerms; callers own the
  /// root `search.cached_query` span so one query opens exactly one root.
  Result<std::shared_ptr<const ResultSet>> SearchTermsImpl(
      const std::vector<std::string>& terms) const;

  Searcher searcher_;
  const InvertedIndex* index_;
  mutable EpochLru<ResultSet> cache_;
};

}  // namespace courserank::search

#endif  // COURSERANK_SEARCH_QUERY_CACHE_H_
