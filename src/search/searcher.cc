#include "search/searcher.h"

#include <algorithm>
#include <cmath>

#include "common/strings.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace courserank::search {

namespace {

/// Search-path metrics, resolved once per process. Latency histograms are
/// split per match strategy so the ablation carries its own distribution;
/// `postings_advanced` is the total cursor movement across all postings
/// lists (the intersection's unit of work) and `docs_examined` the number
/// of candidate documents the driving list enumerated.
struct SearchMetrics {
  obs::Histogram* query_ns_intersection;
  obs::Histogram* query_ns_perdoc;
  obs::Histogram* refine_ns;
  obs::Counter* queries_intersection;
  obs::Counter* queries_perdoc;
  obs::Counter* refines;
  obs::Counter* postings_advanced;
  obs::Counter* docs_examined;
};

const SearchMetrics& Metrics() {
  static const SearchMetrics m = [] {
    obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
    return SearchMetrics{
        reg.GetHistogram("cr_search_query_ns_intersection"),
        reg.GetHistogram("cr_search_query_ns_perdoc"),
        reg.GetHistogram("cr_search_refine_ns"),
        reg.GetCounter("cr_search_queries_intersection_total"),
        reg.GetCounter("cr_search_queries_perdoc_total"),
        reg.GetCounter("cr_search_refines_total"),
        reg.GetCounter("cr_search_postings_advanced_total"),
        reg.GetCounter("cr_search_docs_examined_total")};
  }();
  return m;
}

/// Binary search in a sorted (TermId, count) vector.
uint32_t CountOf(const std::vector<std::pair<TermId, uint32_t>>& vec,
                 TermId term) {
  auto it = std::lower_bound(
      vec.begin(), vec.end(), term,
      [](const std::pair<TermId, uint32_t>& p, TermId t) { return p.first < t; });
  if (it == vec.end() || it->first != term) return 0;
  return it->second;
}

bool PostingDocLess(const Posting& p, DocId d) { return p.doc < d; }

/// Advances `idx` to the first entry of `v` with doc >= target. Gallops
/// from the current position, so a full merge over k lists costs
/// O(Σ log-gaps) instead of O(Σ len) — the win grows with the df skew
/// between the rarest and the most common term.
size_t GallopTo(const std::vector<Posting>& v, size_t idx, DocId target) {
  size_t n = v.size();
  if (idx >= n || v[idx].doc >= target) return idx;
  size_t step = 1;
  while (idx + step < n && v[idx + step].doc < target) {
    idx += step;
    step <<= 1;
  }
  size_t hi = std::min(n, idx + step + 1);
  return static_cast<size_t>(
      std::lower_bound(v.begin() + idx, v.begin() + hi, target,
                       PostingDocLess) -
      v.begin());
}

/// First-occurrence-order dedup ("database database" matches and scores
/// like "database").
std::vector<std::string> DedupTerms(const std::vector<std::string>& terms) {
  std::vector<std::string> out;
  out.reserve(terms.size());
  for (const std::string& t : terms) {
    if (std::find(out.begin(), out.end(), t) == out.end()) out.push_back(t);
  }
  return out;
}

void SortAndTruncate(std::vector<SearchHit>* hits, size_t max_results) {
  std::sort(hits->begin(), hits->end(),
            [](const SearchHit& a, const SearchHit& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.doc < b.doc;
            });
  if (max_results > 0 && hits->size() > max_results) {
    hits->resize(max_results);
  }
}

}  // namespace

std::vector<std::string> Searcher::AnalyzeTermText(const std::string& text,
                                                   bool as_phrase) const {
  std::vector<std::string> unigrams =
      index_->analyzer().AnalyzeQuery(text);
  if (!as_phrase || unigrams.size() < 2) return unigrams;
  // Cloud terms are at most two words; join the first two as a bigram term.
  return {unigrams[0] + " " + unigrams[1]};
}

bool Searcher::DocContains(DocId doc, const std::string& term) const {
  const DocTermVector& vec = index_->doc_terms(doc);
  bool is_phrase = term.find(' ') != std::string::npos;
  TermId tid = index_->LookupTerm(term);
  if (tid == kNoTerm) return false;
  return CountOf(is_phrase ? vec.bigrams : vec.unigrams, tid) > 0;
}

double Searcher::ScorePhrase(DocId doc, TermId tid) const {
  // Phrase terms come from cloud clicks; score them with a doc-level
  // saturating tf on the bigram statistics.
  uint32_t tf = CountOf(index_->doc_terms(doc).bigrams, tid);
  if (tf == 0) return 0.0;
  double tfd = static_cast<double>(tf);
  return index_->BigramIdf(tid) * tfd / (options_.k1 + tfd);
}

double Searcher::ScoreUnigramRun(DocId doc, TermId tid, const Posting* begin,
                                 const Posting* end) const {
  if (options_.ranking == RankingMode::kTfIdf) {
    uint32_t tf = 0;
    for (const Posting* it = begin; it != end; ++it) tf += it->tf;
    if (tf == 0) return 0.0;
    return index_->Idf(tid) * (1.0 + std::log(static_cast<double>(tf)));
  }

  // BM25F: per-field normalized tf, weighted, saturated once.
  double wtf = 0.0;
  const auto& fields = index_->definition().fields;
  for (const Posting* it = begin; it != end; ++it) {
    double len = static_cast<double>(index_->FieldLength(doc, it->field));
    double avg = index_->AvgFieldLength(it->field);
    double norm = 1.0 - options_.b + options_.b * (len / avg);
    wtf += fields[it->field].weight * static_cast<double>(it->tf) / norm;
  }
  if (wtf <= 0.0) return 0.0;
  return index_->Idf(tid) * wtf / (options_.k1 + wtf);
}

double Searcher::ScoreTerm(DocId doc, const std::string& term) const {
  TermId tid = index_->LookupTerm(term);
  if (tid == kNoTerm) return 0.0;
  if (term.find(' ') != std::string::npos) return ScorePhrase(doc, tid);

  const std::vector<Posting>* postings = index_->Postings(tid);
  if (postings == nullptr) return 0.0;
  size_t b = static_cast<size_t>(
      std::lower_bound(postings->begin(), postings->end(), doc,
                       PostingDocLess) -
      postings->begin());
  size_t e = b;
  while (e < postings->size() && (*postings)[e].doc == doc) ++e;
  return ScoreUnigramRun(doc, tid, postings->data() + b, postings->data() + e);
}

Result<ResultSet> Searcher::Search(const std::string& query) const {
  std::vector<std::string> terms;
  {
    obs::ScopedSpan span(obs::stage::kTokenize);
    terms = index_->analyzer().AnalyzeQuery(query);
  }
  return SearchTerms(terms);
}

void Searcher::IntersectAndScore(std::vector<ResolvedTerm> terms,
                                 ResultSet* out) const {
  obs::ScopedSpan span(obs::stage::kIntersect);
  // Rarest driver first: it enumerates the candidates, the rest only skip.
  std::stable_sort(terms.begin(), terms.end(),
                   [](const ResolvedTerm& a, const ResolvedTerm& b) {
                     return a.driver->size() < b.driver->size();
                   });

  const std::vector<Posting>& lead = *terms[0].driver;
  // Per-term contributions, summed in query order so scores are
  // byte-identical to the per-doc ablation path.
  std::vector<double> contrib(terms.size(), 0.0);
  uint64_t docs_examined = 0;  // flushed to counters once at the end
  size_t i = 0;
  while (i < lead.size()) {
    DocId doc = lead[i].doc;
    size_t lead_end = i + 1;
    while (lead_end < lead.size() && lead[lead_end].doc == doc) ++lead_end;
    ++docs_examined;

    if (!index_->IsLive(doc)) {
      i = lead_end;
      continue;
    }

    bool all = true;
    for (ResolvedTerm& t : terms) {
      const std::vector<Posting>& v = *t.driver;
      size_t b = (&t == &terms[0]) ? i : (t.cursor = GallopTo(v, t.cursor, doc));
      if (b >= v.size() || v[b].doc != doc) {
        all = false;
        break;
      }
      if (t.is_phrase) {
        // The driver only proves the first word is present; the phrase
        // itself is checked against the doc's bigram vector.
        double s = ScorePhrase(doc, t.tid);
        if (s == 0.0) {
          all = false;
          break;
        }
        contrib[t.query_pos] = s;
      } else {
        size_t e = b;
        while (e < v.size() && v[e].doc == doc) ++e;
        contrib[t.query_pos] =
            ScoreUnigramRun(doc, t.tid, v.data() + b, v.data() + e);
      }
    }
    if (all) {
      double score = 0.0;
      for (double c : contrib) score += c;
      out->hits.push_back({doc, score});
    }
    i = lead_end;
  }

  // Total cursor movement over all postings lists: the lead cursor walked
  // its whole list, every other cursor stopped where the merge left it.
  uint64_t advanced = i;
  for (const ResolvedTerm& t : terms) {
    if (&t != &terms[0]) advanced += t.cursor;
  }
  Metrics().postings_advanced->Add(advanced);
  Metrics().docs_examined->Add(docs_examined);
}

Result<ResultSet> Searcher::SearchTerms(
    const std::vector<std::string>& raw_terms) const {
  const SearchMetrics& m = Metrics();
  bool intersection =
      options_.strategy == MatchStrategy::kPostingsIntersection;
  obs::ScopedSpan span(
      obs::stage::kQuery,
      intersection ? m.query_ns_intersection : m.query_ns_perdoc);
  (intersection ? m.queries_intersection : m.queries_perdoc)->Add();

  ResultSet out;
  out.epoch = index_->epoch();
  out.terms = DedupTerms(raw_terms);
  const std::vector<std::string>& terms = out.terms;
  if (terms.empty()) return out;

  if (options_.strategy == MatchStrategy::kPostingsIntersection) {
    std::vector<ResolvedTerm> resolved(terms.size());
    for (size_t i = 0; i < terms.size(); ++i) {
      ResolvedTerm& rt = resolved[i];
      rt.query_pos = i;
      rt.is_phrase = terms[i].find(' ') != std::string::npos;
      rt.tid = index_->LookupTerm(terms[i]);
      if (rt.tid == kNoTerm) return out;  // conjunctive: a dead term empties all
      TermId driver_tid = rt.tid;
      if (rt.is_phrase) {
        driver_tid = index_->LookupTerm(terms[i].substr(0, terms[i].find(' ')));
        if (driver_tid == kNoTerm) return out;
      }
      rt.driver = index_->Postings(driver_tid);
      if (rt.driver == nullptr) return out;
    }
    IntersectAndScore(std::move(resolved), &out);
    {
      obs::ScopedSpan rank(obs::stage::kRank);
      SortAndTruncate(&out.hits, options_.max_results);
    }
    return out;
  }

  // ---- kPerDocFilter: the original per-candidate loop (ablation) ----

  // Pick the rarest term's postings as the candidate enumerator. For phrase
  // terms, enumerate on the first component word.
  size_t best = 0;
  size_t best_df = static_cast<size_t>(-1);
  std::vector<std::string> enum_words(terms.size());
  for (size_t i = 0; i < terms.size(); ++i) {
    size_t space = terms[i].find(' ');
    enum_words[i] =
        space == std::string::npos ? terms[i] : terms[i].substr(0, space);
    TermId tid = index_->LookupTerm(enum_words[i]);
    if (tid == kNoTerm) return out;  // conjunctive: a dead term empties all
    size_t df = index_->DocFrequency(tid);
    if (df < best_df) {
      best_df = df;
      best = i;
    }
  }

  TermId enum_tid = index_->LookupTerm(enum_words[best]);
  const std::vector<Posting>* postings = index_->Postings(enum_tid);
  if (postings == nullptr) return out;

  uint64_t docs_examined = 0;
  {
    obs::ScopedSpan filter(obs::stage::kFilter);
    DocId prev = static_cast<DocId>(-1);
    for (const Posting& p : *postings) {
      if (p.doc == prev) continue;  // postings grouped by doc
      prev = p.doc;
      ++docs_examined;
      if (!index_->IsLive(p.doc)) continue;
      bool all = true;
      for (const std::string& t : terms) {
        if (!DocContains(p.doc, t)) {
          all = false;
          break;
        }
      }
      if (!all) continue;
      double score = 0.0;
      for (const std::string& t : terms) score += ScoreTerm(p.doc, t);
      out.hits.push_back({p.doc, score});
    }
  }
  m.docs_examined->Add(docs_examined);

  {
    obs::ScopedSpan rank(obs::stage::kRank);
    SortAndTruncate(&out.hits, options_.max_results);
  }
  return out;
}

Result<ResultSet> Searcher::Refine(const ResultSet& prior,
                                   const std::string& term) const {
  obs::ScopedSpan span(obs::stage::kRefine, Metrics().refine_ns);
  Metrics().refines->Add();
  std::vector<std::string> analyzed = AnalyzeTermText(term, /*as_phrase=*/true);
  if (analyzed.empty()) {
    return Status::InvalidArgument("refinement term '" + term +
                                   "' has no content words");
  }
  const std::string& new_term = analyzed[0];
  if (std::find(prior.terms.begin(), prior.terms.end(), new_term) !=
      prior.terms.end()) {
    return prior;  // refining by an existing term is a no-op, not a re-score
  }

  ResultSet out;
  out.epoch = index_->epoch();
  out.terms = prior.terms;
  out.terms.push_back(new_term);

  // Resolve once; every prior hit then costs one binary search instead of a
  // string hash + lookup per DocContains/ScoreTerm call.
  TermId tid = index_->LookupTerm(new_term);
  if (tid == kNoTerm) return out;
  bool is_phrase = new_term.find(' ') != std::string::npos;

  for (const SearchHit& hit : prior.hits) {
    if (!index_->IsLive(hit.doc)) continue;
    double s;
    if (is_phrase) {
      s = ScorePhrase(hit.doc, tid);
      if (s == 0.0) continue;  // phrase absent from this doc
    } else {
      if (CountOf(index_->doc_terms(hit.doc).unigrams, tid) == 0) continue;
      s = ScoreTerm(hit.doc, new_term);
    }
    out.hits.push_back({hit.doc, hit.score + s});
  }
  SortAndTruncate(&out.hits, /*max_results=*/0);
  return out;
}

}  // namespace courserank::search
