#include "search/searcher.h"

#include <algorithm>
#include <cmath>

#include "common/strings.h"

namespace courserank::search {

namespace {

/// Binary search in a sorted (TermId, count) vector.
uint32_t CountOf(const std::vector<std::pair<TermId, uint32_t>>& vec,
                 TermId term) {
  auto it = std::lower_bound(
      vec.begin(), vec.end(), term,
      [](const std::pair<TermId, uint32_t>& p, TermId t) { return p.first < t; });
  if (it == vec.end() || it->first != term) return 0;
  return it->second;
}

}  // namespace

std::vector<std::string> Searcher::AnalyzeTermText(const std::string& text,
                                                   bool as_phrase) const {
  std::vector<std::string> unigrams =
      index_->analyzer().AnalyzeQuery(text);
  if (!as_phrase || unigrams.size() < 2) return unigrams;
  // Cloud terms are at most two words; join the first two as a bigram term.
  return {unigrams[0] + " " + unigrams[1]};
}

bool Searcher::DocContains(DocId doc, const std::string& term) const {
  const DocTermVector& vec = index_->doc_terms(doc);
  bool is_phrase = term.find(' ') != std::string::npos;
  TermId tid = index_->LookupTerm(term);
  if (tid == kNoTerm) return false;
  return CountOf(is_phrase ? vec.bigrams : vec.unigrams, tid) > 0;
}

double Searcher::ScoreTerm(DocId doc, const std::string& term) const {
  TermId tid = index_->LookupTerm(term);
  if (tid == kNoTerm) return 0.0;
  bool is_phrase = term.find(' ') != std::string::npos;

  if (is_phrase) {
    // Phrase terms come from cloud clicks; score them with a doc-level
    // saturating tf on the bigram statistics.
    uint32_t tf = CountOf(index_->doc_terms(doc).bigrams, tid);
    if (tf == 0) return 0.0;
    double tfd = static_cast<double>(tf);
    return index_->BigramIdf(tid) * tfd / (options_.k1 + tfd);
  }

  if (options_.ranking == RankingMode::kTfIdf) {
    uint32_t tf = CountOf(index_->doc_terms(doc).unigrams, tid);
    if (tf == 0) return 0.0;
    return index_->Idf(tid) * (1.0 + std::log(static_cast<double>(tf)));
  }

  // BM25F: per-field normalized tf, weighted, saturated once.
  const std::vector<Posting>* postings = index_->Postings(tid);
  if (postings == nullptr) return 0.0;
  auto it = std::lower_bound(
      postings->begin(), postings->end(), doc,
      [](const Posting& p, DocId d) { return p.doc < d; });
  double wtf = 0.0;
  const auto& fields = index_->definition().fields;
  for (; it != postings->end() && it->doc == doc; ++it) {
    double len = static_cast<double>(index_->FieldLength(doc, it->field));
    double avg = index_->AvgFieldLength(it->field);
    double norm = 1.0 - options_.b + options_.b * (len / avg);
    wtf += fields[it->field].weight * static_cast<double>(it->tf) / norm;
  }
  if (wtf <= 0.0) return 0.0;
  return index_->Idf(tid) * wtf / (options_.k1 + wtf);
}

Result<ResultSet> Searcher::Search(const std::string& query) const {
  return SearchTerms(index_->analyzer().AnalyzeQuery(query));
}

Result<ResultSet> Searcher::SearchTerms(
    const std::vector<std::string>& terms) const {
  ResultSet out;
  out.terms = terms;
  if (terms.empty()) return out;

  // Pick the rarest term's postings as the candidate enumerator. For phrase
  // terms, enumerate on the first component word.
  size_t best = 0;
  size_t best_df = static_cast<size_t>(-1);
  std::vector<std::string> enum_words(terms.size());
  for (size_t i = 0; i < terms.size(); ++i) {
    size_t space = terms[i].find(' ');
    enum_words[i] =
        space == std::string::npos ? terms[i] : terms[i].substr(0, space);
    TermId tid = index_->LookupTerm(enum_words[i]);
    if (tid == kNoTerm) return out;  // conjunctive: a dead term empties all
    size_t df = index_->DocFrequency(tid);
    if (df < best_df) {
      best_df = df;
      best = i;
    }
  }

  TermId enum_tid = index_->LookupTerm(enum_words[best]);
  const std::vector<Posting>* postings = index_->Postings(enum_tid);
  if (postings == nullptr) return out;

  DocId prev = static_cast<DocId>(-1);
  for (const Posting& p : *postings) {
    if (p.doc == prev) continue;  // postings grouped by doc
    prev = p.doc;
    if (!index_->IsLive(p.doc)) continue;
    bool all = true;
    for (const std::string& t : terms) {
      if (!DocContains(p.doc, t)) {
        all = false;
        break;
      }
    }
    if (!all) continue;
    double score = 0.0;
    for (const std::string& t : terms) score += ScoreTerm(p.doc, t);
    out.hits.push_back({p.doc, score});
  }

  std::sort(out.hits.begin(), out.hits.end(),
            [](const SearchHit& a, const SearchHit& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.doc < b.doc;
            });
  if (options_.max_results > 0 && out.hits.size() > options_.max_results) {
    out.hits.resize(options_.max_results);
  }
  return out;
}

Result<ResultSet> Searcher::Refine(const ResultSet& prior,
                                   const std::string& term) const {
  std::vector<std::string> analyzed = AnalyzeTermText(term, /*as_phrase=*/true);
  if (analyzed.empty()) {
    return Status::InvalidArgument("refinement term '" + term +
                                   "' has no content words");
  }
  const std::string& new_term = analyzed[0];

  ResultSet out;
  out.terms = prior.terms;
  out.terms.push_back(new_term);
  for (const SearchHit& hit : prior.hits) {
    if (!index_->IsLive(hit.doc)) continue;
    if (!DocContains(hit.doc, new_term)) continue;
    out.hits.push_back({hit.doc, hit.score + ScoreTerm(hit.doc, new_term)});
  }
  std::sort(out.hits.begin(), out.hits.end(),
            [](const SearchHit& a, const SearchHit& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.doc < b.doc;
            });
  return out;
}

}  // namespace courserank::search
