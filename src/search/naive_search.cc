#include "search/naive_search.h"

#include <algorithm>
#include <map>

namespace courserank::search {

Result<std::vector<NaiveSearcher::Hit>> NaiveSearcher::Search(
    const std::string& query) const {
  std::vector<std::string> terms = analyzer_.AnalyzeQuery(query);
  std::vector<Hit> hits;
  if (terms.empty()) return hits;

  CR_ASSIGN_OR_RETURN(std::vector<EntityDocument> docs,
                      extractor_.ExtractAll());
  for (const EntityDocument& doc : docs) {
    std::map<std::string, uint32_t> counts;
    for (const std::string& field : doc.field_texts) {
      for (const text::AnalyzedToken& t : analyzer_.Analyze(field)) {
        ++counts[t.term];
      }
    }
    double score = 0.0;
    bool all = true;
    for (const std::string& t : terms) {
      auto it = counts.find(t);
      if (it == counts.end()) {
        all = false;
        break;
      }
      score += it->second;
    }
    if (all) hits.push_back({doc.key, doc.display, score});
  }
  std::sort(hits.begin(), hits.end(), [](const Hit& a, const Hit& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.key < b.key;
  });
  return hits;
}

}  // namespace courserank::search
