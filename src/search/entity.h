#ifndef COURSERANK_SEARCH_ENTITY_H_
#define COURSERANK_SEARCH_ENTITY_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "storage/database.h"
#include "storage/value.h"

namespace courserank::search {

using storage::Database;
using storage::Value;

/// One text field of a search entity. The paper's course entity includes
/// "not just its title and description, but all the comments made by
/// students about the course" (§3.1) — so a field may live on the entity's
/// primary table or on a related table joined by key.
struct EntityField {
  std::string name;         ///< e.g. "title", "comments"
  double weight = 1.0;      ///< ranking weight (title > description > ...)
  std::string table;        ///< table holding the text
  std::string text_column;  ///< the text column in `table`
  /// Column of `table` that equals the entity key. For fields on the
  /// primary table this is the key column itself.
  std::string join_column;
  /// When non-empty, the join key is taken from this column of the primary
  /// row instead of the entity key — lets an entity pull text through a
  /// foreign key (e.g. a textbook's course title via Textbooks.CourseID).
  std::string key_from_column;
};

/// A search entity spanning multiple relations (paper §3.1).
struct EntityDefinition {
  std::string name;            ///< e.g. "course"
  std::string primary_table;   ///< e.g. "Courses"
  std::string key_column;      ///< e.g. "CourseID"
  std::string display_column;  ///< shown in result lists, e.g. "Title"
  std::vector<EntityField> fields;
};

/// One materialized entity: key, display string, and the concatenated text
/// of each field (parallel to EntityDefinition::fields).
struct EntityDocument {
  Value key;
  std::string display;
  std::vector<std::string> field_texts;
};

/// Materializes entity documents from the database by scanning the primary
/// table and gathering related-field text through indexed joins.
class EntityExtractor {
 public:
  EntityExtractor(const Database* db, EntityDefinition def)
      : db_(db), def_(std::move(def)) {}

  const EntityDefinition& definition() const { return def_; }

  /// All entities, in primary-table scan order.
  Result<std::vector<EntityDocument>> ExtractAll() const;

  /// One entity by key; NotFound when the key does not exist.
  Result<EntityDocument> ExtractOne(const Value& key) const;

 private:
  Result<EntityDocument> BuildDocument(const storage::Row& primary_row) const;

  const Database* db_;
  EntityDefinition def_;
};

/// The canonical CourseRank course entity over the standard schema: title
/// (weight 3), description (1.5), instructor names (2), student comments
/// (1). Matches the paper's example of what a course entity spans.
EntityDefinition MakeCourseEntity();

/// Textbook entity (§3.1: "We could easily expand searching with clouds to
/// other entities, such as books and instructors"): book title plus the
/// title and description of the course it was reported for (joined through
/// the book's CourseID via EntityField::key_from_column).
EntityDefinition MakeTextbookEntity();

}  // namespace courserank::search

#endif  // COURSERANK_SEARCH_ENTITY_H_
