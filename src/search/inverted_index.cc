#include "search/inverted_index.h"

#include <algorithm>
#include <cmath>
#include <map>

namespace courserank::search {

using storage::Row;

InvertedIndex::InvertedIndex(EntityDefinition def,
                             text::AnalyzerOptions analyzer_options)
    : def_(std::move(def)), analyzer_(analyzer_options) {
  field_length_sums_.assign(def_.fields.size(), 0.0);
}

Status InvertedIndex::Build(const Database& db, ThreadPool* pool) {
  if (!docs_.empty()) {
    return Status::FailedPrecondition("Build on non-empty index");
  }
  EntityExtractor extractor(&db, def_);
  CR_ASSIGN_OR_RETURN(std::vector<EntityDocument> docs,
                      extractor.ExtractAll());

  // Phase 1 (parallel): analyze every document into per-slot outputs. The
  // chunk partition depends only on the doc count, so any pool — including
  // a zero-worker inline one — fills the same slots with the same bytes.
  std::vector<AnalyzedDocument> analyzed(docs.size());
  auto analyze_range = [&](size_t, size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      if (docs[i].field_texts.size() == def_.fields.size()) {
        analyzed[i] = AnalyzeDocument(docs[i]);
      }
    }
  };
  if (pool == nullptr) {
    analyze_range(0, 0, docs.size());
  } else {
    pool->ParallelFor(docs.size(), /*min_chunk=*/64, analyze_range);
  }

  // Phase 2 (serial, doc order): intern terms and append postings. Term
  // ids come out in first-occurrence order, identical to a sequential
  // AddDocument loop.
  for (size_t i = 0; i < docs.size(); ++i) {
    CR_RETURN_IF_ERROR(
        AddAnalyzed(std::move(docs[i]), std::move(analyzed[i])).status());
  }
  return Status::OK();
}

InvertedIndex::AnalyzedDocument InvertedIndex::AnalyzeDocument(
    const EntityDocument& doc) const {
  AnalyzedDocument out;
  out.field_tokens.resize(def_.fields.size());
  out.field_bigrams.resize(def_.fields.size());
  for (size_t f = 0; f < def_.fields.size(); ++f) {
    out.field_tokens[f] = analyzer_.Analyze(doc.field_texts[f]);
    out.field_bigrams[f] = text::Analyzer::Bigrams(out.field_tokens[f]);
  }
  return out;
}

TermId InvertedIndex::InternTerm(const std::string& term) {
  auto it = term_ids_.find(term);
  if (it != term_ids_.end()) return it->second;
  TermId id = static_cast<TermId>(dictionary_.size());
  dictionary_.push_back(term);
  term_ids_.emplace(term, id);
  return id;
}

Result<DocId> InvertedIndex::AddDocument(EntityDocument doc) {
  if (doc.field_texts.size() != def_.fields.size()) {
    return Status::InvalidArgument("document has wrong field count");
  }
  AnalyzedDocument analyzed = AnalyzeDocument(doc);
  return AddAnalyzed(std::move(doc), std::move(analyzed));
}

Result<DocId> InvertedIndex::AddAnalyzed(EntityDocument doc,
                                         AnalyzedDocument analyzed) {
  if (doc.field_texts.size() != def_.fields.size()) {
    return Status::InvalidArgument("document has wrong field count");
  }
  Row key_row{doc.key};
  if (auto it = by_key_.find(key_row);
      it != by_key_.end() && !deleted_[it->second]) {
    return Status::AlreadyExists("entity key " + doc.key.ToString() +
                                 " already indexed");
  }

  DocId id = static_cast<DocId>(docs_.size());

  // Per-field term counts; also accumulate doc-level unigram/bigram counts.
  std::map<TermId, uint32_t> doc_unigrams;
  std::map<TermId, uint32_t> doc_bigrams;
  std::vector<uint32_t> lengths(def_.fields.size(), 0);

  for (size_t f = 0; f < def_.fields.size(); ++f) {
    const std::vector<text::AnalyzedToken>& tokens = analyzed.field_tokens[f];
    lengths[f] = static_cast<uint32_t>(tokens.size());

    std::map<TermId, uint32_t> field_counts;
    for (const text::AnalyzedToken& t : tokens) {
      TermId tid = InternTerm(t.term);
      ++field_counts[tid];
      ++doc_unigrams[tid];
      surfaces_.Record(t.term, t.surface);
    }
    for (const text::AnalyzedToken& bg : analyzed.field_bigrams[f]) {
      TermId tid = InternTerm(bg.term);
      ++doc_bigrams[tid];
      surfaces_.Record(bg.term, bg.surface);
    }
    for (const auto& [tid, tf] : field_counts) {
      postings_[tid].push_back({id, static_cast<uint16_t>(f), tf});
    }
  }

  DocTermVector vec;
  vec.unigrams.assign(doc_unigrams.begin(), doc_unigrams.end());
  vec.bigrams.assign(doc_bigrams.begin(), doc_bigrams.end());
  for (const auto& [tid, tf] : vec.unigrams) ++doc_freq_[tid];
  for (const auto& [tid, tf] : vec.bigrams) ++bigram_doc_freq_[tid];
  for (size_t f = 0; f < lengths.size(); ++f) {
    field_length_sums_[f] += lengths[f];
  }

  by_key_[key_row] = id;
  docs_.push_back(std::move(doc));
  doc_terms_.push_back(std::move(vec));
  field_lengths_.push_back(std::move(lengths));
  deleted_.push_back(false);
  ++live_docs_;
  ++epoch_;
  return id;
}

Status InvertedIndex::RemoveByKey(const Value& key) {
  auto it = by_key_.find(Row{key});
  if (it == by_key_.end() || deleted_[it->second]) {
    return Status::NotFound("entity key " + key.ToString() + " not indexed");
  }
  DocId id = it->second;
  deleted_[id] = true;
  --live_docs_;
  for (const auto& [tid, tf] : doc_terms_[id].unigrams) {
    auto df = doc_freq_.find(tid);
    if (df != doc_freq_.end() && df->second > 0) --df->second;
  }
  for (const auto& [tid, tf] : doc_terms_[id].bigrams) {
    auto df = bigram_doc_freq_.find(tid);
    if (df != bigram_doc_freq_.end() && df->second > 0) --df->second;
  }
  for (size_t f = 0; f < field_lengths_[id].size(); ++f) {
    field_length_sums_[f] -= field_lengths_[id][f];
  }
  by_key_.erase(it);
  ++epoch_;
  return Status::OK();
}

Status InvertedIndex::Refresh(const Database& db, const Value& key) {
  // Remove (if present) then re-extract and add.
  Status removed = RemoveByKey(key);
  if (!removed.ok() && removed.code() != StatusCode::kNotFound) {
    return removed;
  }
  EntityExtractor extractor(&db, def_);
  CR_ASSIGN_OR_RETURN(EntityDocument doc, extractor.ExtractOne(key));
  return AddDocument(std::move(doc)).status();
}

Result<DocId> InvertedIndex::FindByKey(const Value& key) const {
  auto it = by_key_.find(Row{key});
  if (it == by_key_.end() || deleted_[it->second]) {
    return Status::NotFound("entity key " + key.ToString() + " not indexed");
  }
  return it->second;
}

TermId InvertedIndex::LookupTerm(const std::string& term) const {
  auto it = term_ids_.find(term);
  return it == term_ids_.end() ? kNoTerm : it->second;
}

const std::vector<Posting>* InvertedIndex::Postings(TermId term) const {
  auto it = postings_.find(term);
  return it == postings_.end() ? nullptr : &it->second;
}

size_t InvertedIndex::DocFrequency(TermId term) const {
  auto it = doc_freq_.find(term);
  return it == doc_freq_.end() ? 0 : it->second;
}

size_t InvertedIndex::BigramDocFrequency(TermId term) const {
  auto it = bigram_doc_freq_.find(term);
  return it == bigram_doc_freq_.end() ? 0 : it->second;
}

double InvertedIndex::Idf(TermId term) const {
  double df = static_cast<double>(DocFrequency(term));
  double n = static_cast<double>(live_docs_);
  return std::log(1.0 + (n - df + 0.5) / (df + 0.5));
}

double InvertedIndex::BigramIdf(TermId term) const {
  double df = static_cast<double>(BigramDocFrequency(term));
  double n = static_cast<double>(live_docs_);
  return std::log(1.0 + (n - df + 0.5) / (df + 0.5));
}

double InvertedIndex::AvgFieldLength(size_t field) const {
  if (live_docs_ == 0) return 1.0;
  double avg = field_length_sums_[field] / static_cast<double>(live_docs_);
  return avg < 1.0 ? 1.0 : avg;
}

std::vector<DocId> InvertedIndex::AllLiveDocs() const {
  std::vector<DocId> out;
  out.reserve(live_docs_);
  for (DocId id = 0; id < docs_.size(); ++id) {
    if (!deleted_[id]) out.push_back(id);
  }
  return out;
}

}  // namespace courserank::search
