#include "search/entity.h"

#include "common/strings.h"

namespace courserank::search {

using storage::Row;
using storage::RowId;
using storage::Table;

Result<std::vector<EntityDocument>> EntityExtractor::ExtractAll() const {
  CR_ASSIGN_OR_RETURN(const Table* primary, db_->GetTable(def_.primary_table));
  std::vector<EntityDocument> docs;
  docs.reserve(primary->size());
  Status failure = Status::OK();
  primary->Scan([&](RowId, const Row& row) {
    if (!failure.ok()) return;
    auto doc = BuildDocument(row);
    if (!doc.ok()) {
      failure = doc.status();
      return;
    }
    docs.push_back(std::move(doc).value());
  });
  CR_RETURN_IF_ERROR(failure);
  return docs;
}

Result<EntityDocument> EntityExtractor::ExtractOne(const Value& key) const {
  CR_ASSIGN_OR_RETURN(const Table* primary, db_->GetTable(def_.primary_table));
  std::vector<RowId> hits = primary->LookupEqual({def_.key_column}, {key});
  if (hits.empty()) {
    return Status::NotFound("no " + def_.name + " with key " + key.ToString());
  }
  const Row* row = primary->Get(hits[0]);
  if (row == nullptr) return Status::Internal("stale row id from index");
  return BuildDocument(*row);
}

Result<EntityDocument> EntityExtractor::BuildDocument(
    const Row& primary_row) const {
  CR_ASSIGN_OR_RETURN(const Table* primary, db_->GetTable(def_.primary_table));
  CR_ASSIGN_OR_RETURN(size_t key_ci,
                      primary->schema().ColumnIndex(def_.key_column));
  CR_ASSIGN_OR_RETURN(size_t disp_ci,
                      primary->schema().ColumnIndex(def_.display_column));

  EntityDocument doc;
  doc.key = primary_row[key_ci];
  doc.display = primary_row[disp_ci].is_null()
                    ? std::string()
                    : primary_row[disp_ci].ToString();
  doc.field_texts.reserve(def_.fields.size());

  for (const EntityField& field : def_.fields) {
    std::string text;
    if (EqualsIgnoreCase(field.table, def_.primary_table) &&
        field.key_from_column.empty()) {
      CR_ASSIGN_OR_RETURN(size_t ci,
                          primary->schema().ColumnIndex(field.text_column));
      if (!primary_row[ci].is_null()) text = primary_row[ci].ToString();
    } else {
      // Join key: the entity key, or a foreign key held by the primary row.
      Value join_key = doc.key;
      if (!field.key_from_column.empty()) {
        CR_ASSIGN_OR_RETURN(
            size_t fk_ci,
            primary->schema().ColumnIndex(field.key_from_column));
        join_key = primary_row[fk_ci];
      }
      CR_ASSIGN_OR_RETURN(const Table* rel, db_->GetTable(field.table));
      CR_ASSIGN_OR_RETURN(size_t ci,
                          rel->schema().ColumnIndex(field.text_column));
      if (!join_key.is_null()) {
        for (RowId id : rel->LookupEqual({field.join_column}, {join_key})) {
          const Row* rel_row = rel->Get(id);
          if (rel_row == nullptr || (*rel_row)[ci].is_null()) continue;
          if (!text.empty()) text += "\n";
          text += (*rel_row)[ci].ToString();
        }
      }
    }
    doc.field_texts.push_back(std::move(text));
  }
  return doc;
}

EntityDefinition MakeCourseEntity() {
  EntityDefinition def;
  def.name = "course";
  def.primary_table = "Courses";
  def.key_column = "CourseID";
  def.display_column = "Title";
  def.fields = {
      {"title", 3.0, "Courses", "Title", "CourseID", ""},
      {"description", 1.5, "Courses", "Description", "CourseID", ""},
      {"instructors", 2.0, "Offerings", "Instructor", "CourseID", ""},
      {"comments", 1.0, "Comments", "Text", "CourseID", ""},
  };
  return def;
}

EntityDefinition MakeTextbookEntity() {
  EntityDefinition def;
  def.name = "textbook";
  def.primary_table = "Textbooks";
  def.key_column = "BookID";
  def.display_column = "Title";
  def.fields = {
      {"title", 3.0, "Textbooks", "Title", "BookID", ""},
      // The course the book was reported for, through Textbooks.CourseID.
      {"course_title", 2.0, "Courses", "Title", "CourseID", "CourseID"},
      {"course_description", 1.0, "Courses", "Description", "CourseID",
       "CourseID"},
  };
  return def;
}

}  // namespace courserank::search
