#include "search/query_cache.h"

#include <algorithm>

#include "obs/trace.h"

namespace courserank::search {

namespace {

/// Caching-layer metrics, resolved once per process.
struct CacheMetrics {
  obs::Histogram* cached_query_ns;
  obs::Histogram* cached_refine_ns;
};

const CacheMetrics& Metrics() {
  static const CacheMetrics m = [] {
    obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
    return CacheMetrics{reg.GetHistogram("cr_search_cached_query_ns"),
                        reg.GetHistogram("cr_search_cached_refine_ns")};
  }();
  return m;
}

}  // namespace

std::vector<std::string> NormalizedTerms(std::vector<std::string> terms) {
  std::sort(terms.begin(), terms.end());
  terms.erase(std::unique(terms.begin(), terms.end()), terms.end());
  return terms;
}

std::string SearchKey(const std::vector<std::string>& terms,
                      const SearchOptions& options) {
  std::string key;
  for (const std::string& t : NormalizedTerms(terms)) {
    key += t;
    key += '\x1f';  // unit separator: cannot occur in analyzed terms
  }
  key += '|';
  key += options.ranking == RankingMode::kBm25f ? 'b' : 't';
  key += options.strategy == MatchStrategy::kPostingsIntersection ? 'i' : 'f';
  key += std::to_string(options.max_results);
  key += ',';
  key += std::to_string(options.k1);
  key += ',';
  key += std::to_string(options.b);
  return key;
}

Result<std::shared_ptr<const ResultSet>> CachingSearcher::Search(
    const std::string& query) const {
  obs::ScopedSpan span(obs::stage::kCachedQuery, Metrics().cached_query_ns);
  std::vector<std::string> terms;
  {
    obs::ScopedSpan tok(obs::stage::kTokenize);
    terms = index_->analyzer().AnalyzeQuery(query);
  }
  return SearchTermsImpl(terms);
}

Result<std::shared_ptr<const ResultSet>> CachingSearcher::SearchTerms(
    const std::vector<std::string>& terms) const {
  obs::ScopedSpan span(obs::stage::kCachedQuery, Metrics().cached_query_ns);
  return SearchTermsImpl(terms);
}

Result<std::shared_ptr<const ResultSet>> CachingSearcher::SearchTermsImpl(
    const std::vector<std::string>& terms) const {
  std::string key = SearchKey(terms, searcher_.options());
  uint64_t epoch = index_->epoch();
  {
    obs::ScopedSpan probe(obs::stage::kCacheProbe);
    if (std::shared_ptr<const ResultSet> hit = cache_.Get(key, epoch)) {
      return hit;
    }
  }
  CR_ASSIGN_OR_RETURN(ResultSet computed, searcher_.SearchTerms(terms));
  return cache_.Put(key, epoch, std::move(computed));
}

Result<std::shared_ptr<const ResultSet>> CachingSearcher::Refine(
    const ResultSet& prior, const std::string& term) const {
  obs::ScopedSpan span(obs::stage::kCachedRefine, Metrics().cached_refine_ns);
  // A refinement of an untruncated result set equals the from-scratch
  // query over the combined term set (cross-checked in tests), so it can
  // share that cache entry: the Fig. 4 click sequence primes the cache for
  // later direct queries. Truncated sets refine only what was shown, which
  // is click-order dependent — those are computed fresh every time.
  if (searcher_.options().max_results != 0) {
    CR_ASSIGN_OR_RETURN(ResultSet refined, searcher_.Refine(prior, term));
    return std::make_shared<const ResultSet>(std::move(refined));
  }

  std::vector<std::string> analyzed =
      index_->analyzer().AnalyzeQuery(term);
  if (analyzed.empty()) {
    // Stopword-only refinement: surface the searcher's error unchanged.
    CR_ASSIGN_OR_RETURN(ResultSet refined, searcher_.Refine(prior, term));
    return std::make_shared<const ResultSet>(std::move(refined));
  }
  std::vector<std::string> combined = prior.terms;
  if (analyzed.size() >= 2) {
    combined.push_back(analyzed[0] + " " + analyzed[1]);
  } else {
    combined.push_back(analyzed[0]);
  }
  uint64_t epoch = index_->epoch();
  if (prior.epoch != epoch) {
    // The index changed under the prior set; narrowing a stale set could
    // miss documents added since, so run the combined query from scratch
    // (still under this refine's root span).
    return SearchTermsImpl(combined);
  }
  std::string key = SearchKey(combined, searcher_.options());
  {
    obs::ScopedSpan probe(obs::stage::kCacheProbe);
    if (std::shared_ptr<const ResultSet> hit = cache_.Get(key, epoch)) {
      return hit;
    }
  }
  CR_ASSIGN_OR_RETURN(ResultSet refined, searcher_.Refine(prior, term));
  return cache_.Put(key, epoch, std::move(refined));
}

}  // namespace courserank::search
