#ifndef COURSERANK_SEARCH_INVERTED_INDEX_H_
#define COURSERANK_SEARCH_INVERTED_INDEX_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "search/entity.h"
#include "text/analyzer.h"

namespace courserank::search {

/// Internal document number; dense, assigned at add time. Tombstoned on
/// removal (postings are filtered lazily at query time).
using DocId = uint32_t;

/// Interned term number.
using TermId = uint32_t;

constexpr TermId kNoTerm = static_cast<TermId>(-1);

/// One posting: a (document, field) pair with the term frequency in that
/// field.
struct Posting {
  DocId doc;
  uint16_t field;
  uint32_t tf;
};

/// Precomputed per-document term statistics used to build data clouds
/// without re-tokenizing result documents (DESIGN.md ablation E5).
struct DocTermVector {
  std::vector<std::pair<TermId, uint32_t>> unigrams;  ///< sorted by TermId
  std::vector<std::pair<TermId, uint32_t>> bigrams;   ///< sorted by TermId
};

/// Field-aware inverted index over one entity type. Supports incremental
/// add/remove so user-contributed content (comments) can update the course
/// entity without a full rebuild.
class InvertedIndex {
 public:
  InvertedIndex(EntityDefinition def,
                text::AnalyzerOptions analyzer_options = {});

  const EntityDefinition& definition() const { return def_; }
  const text::Analyzer& analyzer() const { return analyzer_; }

  /// Extracts every entity from `db` and indexes it. May be called on an
  /// empty index only. Document analysis (tokenize/stem/bigram) runs on
  /// `pool`; term interning stays serial in document order, so the built
  /// index is byte-identical for any pool size (including inline).
  Status Build(const Database& db, ThreadPool* pool = &SharedThreadPool());

  /// Indexes one document; fails on duplicate live key.
  Result<DocId> AddDocument(EntityDocument doc);

  /// Tombstones the document with the given entity key.
  Status RemoveByKey(const Value& key);

  /// Re-extracts one entity from `db` and replaces its indexed form (used
  /// when a comment is added to a course).
  Status Refresh(const Database& db, const Value& key);

  // ---- read API ----

  size_t num_docs() const { return live_docs_; }
  size_t num_terms() const { return dictionary_.size(); }

  /// Monotone content version: bumped by every successful AddDocument,
  /// RemoveByKey, and Refresh. Query caches key on it — an entry is valid
  /// only while the epoch it was computed at is still current.
  uint64_t epoch() const { return epoch_; }

  bool IsLive(DocId doc) const { return doc < docs_.size() && !deleted_[doc]; }

  /// Document metadata. Caller must check IsLive first for semantics;
  /// tombstoned docs still return their last content.
  const EntityDocument& doc(DocId id) const { return docs_[id]; }

  /// Doc id for a live entity key, or NotFound.
  Result<DocId> FindByKey(const Value& key) const;

  TermId LookupTerm(const std::string& term) const;
  const std::string& TermString(TermId id) const { return dictionary_[id]; }

  /// Postings for a term (includes tombstoned docs; filter with IsLive).
  /// nullptr when the term is absent.
  const std::vector<Posting>* Postings(TermId term) const;

  /// Number of live documents containing the term (any field). Maintained
  /// incrementally.
  size_t DocFrequency(TermId term) const;

  /// Smoothed idf: ln(1 + (N - df + 0.5) / (df + 0.5)).
  double Idf(TermId term) const;

  /// idf over bigram statistics (bigrams are tracked separately from the
  /// postings lists; they serve the data cloud, not retrieval scoring).
  double BigramIdf(TermId term) const;
  size_t BigramDocFrequency(TermId term) const;

  /// Per-document precomputed term vector (unigrams + bigrams).
  const DocTermVector& doc_terms(DocId id) const { return doc_terms_[id]; }

  /// Length (token count after analysis) of a document field.
  uint32_t FieldLength(DocId doc, size_t field) const {
    return field_lengths_[doc][field];
  }

  /// Mean analyzed length of `field` over live docs (>= 1 for stability).
  double AvgFieldLength(size_t field) const;

  /// Most frequent surface form for a term, for cloud display.
  const std::string& DisplayForm(const std::string& term) const {
    return surfaces_.DisplayForm(term);
  }

  /// All live doc ids.
  std::vector<DocId> AllLiveDocs() const;

 private:
  /// Analysis output for one document: per-field token and bigram streams.
  /// Producing it touches only the (stateless) analyzer, so Build runs it
  /// on the pool; consuming it (interning) is serial.
  struct AnalyzedDocument {
    std::vector<std::vector<text::AnalyzedToken>> field_tokens;
    std::vector<std::vector<text::AnalyzedToken>> field_bigrams;
  };

  AnalyzedDocument AnalyzeDocument(const EntityDocument& doc) const;
  Result<DocId> AddAnalyzed(EntityDocument doc, AnalyzedDocument analyzed);

  TermId InternTerm(const std::string& term);

  EntityDefinition def_;
  text::Analyzer analyzer_;

  std::vector<std::string> dictionary_;
  std::unordered_map<std::string, TermId> term_ids_;

  std::unordered_map<TermId, std::vector<Posting>> postings_;
  std::unordered_map<TermId, size_t> doc_freq_;         // live docs per term
  std::unordered_map<TermId, size_t> bigram_doc_freq_;  // live docs per bigram

  std::vector<EntityDocument> docs_;
  std::vector<DocTermVector> doc_terms_;
  std::vector<std::vector<uint32_t>> field_lengths_;
  std::vector<bool> deleted_;
  std::unordered_map<storage::Row, DocId, storage::RowHash> by_key_;
  size_t live_docs_ = 0;

  std::vector<double> field_length_sums_;  // over live docs

  uint64_t epoch_ = 0;

  text::SurfaceRegistry surfaces_;
};

}  // namespace courserank::search

#endif  // COURSERANK_SEARCH_INVERTED_INDEX_H_
