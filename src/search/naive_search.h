#ifndef COURSERANK_SEARCH_NAIVE_SEARCH_H_
#define COURSERANK_SEARCH_NAIVE_SEARCH_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "search/entity.h"
#include "text/analyzer.h"

namespace courserank::search {

/// The "traditional database application" baseline (DESIGN.md E5): a full
/// scan that re-extracts and re-tokenizes every entity per query, with no
/// index and no ranking beyond raw term frequency. Exists to quantify what
/// the inverted index buys on the paper-scale catalog.
class NaiveSearcher {
 public:
  NaiveSearcher(const Database* db, EntityDefinition def,
                text::AnalyzerOptions analyzer_options = {})
      : extractor_(db, std::move(def)), analyzer_(analyzer_options) {}

  struct Hit {
    Value key;
    std::string display;
    double score;  ///< total term frequency across fields
  };

  /// Conjunctive containment search; descending raw-tf order.
  Result<std::vector<Hit>> Search(const std::string& query) const;

 private:
  EntityExtractor extractor_;
  text::Analyzer analyzer_;
};

}  // namespace courserank::search

#endif  // COURSERANK_SEARCH_NAIVE_SEARCH_H_
