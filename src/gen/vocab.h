#ifndef COURSERANK_GEN_VOCAB_H_
#define COURSERANK_GEN_VOCAB_H_

#include <string>
#include <vector>

namespace courserank::gen {

/// Static description of one department used by the generator.
struct DeptSpec {
  const char* code;
  const char* name;
  const char* school;
  /// Topic words course titles/descriptions draw from.
  std::vector<const char*> topics;
  /// Whether this department's courses may join the "American" concept
  /// cluster (the Fig. 3/4 calibration).
  bool american_eligible;
};

/// The built-in department list (26 concrete departments). When the
/// generator needs more it synthesizes "Interdisciplinary Program N"
/// entries with generic topics.
const std::vector<DeptSpec>& Departments();

/// Sub-concepts of the "American" cluster with their mixture weights,
/// calibrated so "african american" covers ≈10.6% of American-flagged
/// courses (123/1160 in Fig. 4).
struct AmericanConcept {
  const char* phrase;   ///< e.g. "African American"
  double weight;
  std::vector<const char*> companions;  ///< co-occurring cloud words
};
const std::vector<AmericanConcept>& AmericanConcepts();

/// Generic academic words mixed into descriptions.
const std::vector<const char*>& AcademicWords();

/// Positive / neutral / negative comment fragments by sentiment bucket
/// (0 = negative, 1 = mixed, 2 = positive).
const std::vector<const char*>& CommentFragments(int sentiment);

/// Adjectives by sentiment bucket.
const std::vector<const char*>& Adjectives(int sentiment);

/// First and last name pools for students and instructors.
const std::vector<const char*>& FirstNames();
const std::vector<const char*>& LastNames();

/// Title prefixes ("Introduction to", "Advanced", ...).
const std::vector<const char*>& TitlePrefixes();

}  // namespace courserank::gen

#endif  // COURSERANK_GEN_VOCAB_H_
