#include "gen/vocab.h"

namespace courserank::gen {

const std::vector<DeptSpec>& Departments() {
  static const std::vector<DeptSpec>* kDepts = new std::vector<DeptSpec>{
      {"CS", "Computer Science", "Engineering",
       {"programming", "algorithms", "systems", "databases", "networks",
        "compilers", "graphics", "robotics", "java", "machine", "learning",
        "artificial", "intelligence", "software", "security", "theory",
        "architecture", "operating", "distributed", "logic"},
       false},
      {"EE", "Electrical Engineering", "Engineering",
       {"circuits", "signals", "electronics", "semiconductors", "control",
        "communication", "photonics", "microprocessors", "antennas",
        "filters", "power", "embedded", "devices", "waves", "lasers"},
       false},
      {"ME", "Mechanical Engineering", "Engineering",
       {"dynamics", "thermodynamics", "fluids", "design", "manufacturing",
        "mechatronics", "materials", "vibration", "heat", "transfer",
        "kinematics", "turbines", "combustion"},
       false},
      {"CHEMENG", "Chemical Engineering", "Engineering",
       {"reaction", "kinetics", "transport", "polymers", "catalysis",
        "separation", "biochemical", "processes", "reactors", "colloids"},
       false},
      {"MSE", "Management Science and Engineering", "Engineering",
       {"optimization", "decision", "analysis", "economics", "stochastic",
        "entrepreneurship", "organizations", "finance", "operations",
        "strategy", "innovation"},
       false},
      {"BIOE", "Bioengineering", "Engineering",
       {"biomechanics", "imaging", "tissue", "synthetic", "biology",
        "biodesign", "molecular", "cells", "devices", "genomics"},
       false},
      {"CEE", "Civil and Environmental Engineering", "Engineering",
       {"structures", "geotechnics", "hydrology", "construction",
        "environmental", "water", "infrastructure", "earthquake",
        "sustainable", "transportation"},
       false},
      {"AERO", "Aeronautics and Astronautics", "Engineering",
       {"aerodynamics", "propulsion", "spacecraft", "flight", "orbital",
        "mechanics", "composites", "guidance", "navigation", "satellites"},
       false},
      {"HISTORY", "History", "Humanities and Sciences",
       {"history", "empire", "revolution", "medieval", "modern", "war",
        "colonial", "slavery", "migration", "civil", "rights", "europe",
        "asia", "africa", "frontier", "reconstruction"},
       true},
      {"ENGLISH", "English", "Humanities and Sciences",
       {"literature", "poetry", "novel", "fiction", "drama", "rhetoric",
        "criticism", "renaissance", "romantic", "modernist", "writers",
        "narrative", "shakespeare"},
       true},
      {"PHIL", "Philosophy", "Humanities and Sciences",
       {"ethics", "metaphysics", "epistemology", "logic", "mind", "language",
        "kant", "ancient", "political", "philosophy", "justice",
        "aesthetics"},
       false},
      {"ART", "Art and Art History", "Humanities and Sciences",
       {"painting", "sculpture", "photography", "museums", "modernism",
        "baroque", "design", "visual", "culture", "architecture", "film"},
       true},
      {"MUSIC", "Music", "Humanities and Sciences",
       {"music", "jazz", "composition", "orchestra", "opera", "harmony",
        "counterpoint", "blues", "folk", "improvisation", "conducting"},
       true},
      {"CLASSICS", "Classics", "Humanities and Sciences",
       {"greek", "roman", "latin", "antiquity", "mythology", "homer",
        "epic", "archaeology", "athens", "rome", "philosophy", "science"},
       false},
      {"ECON", "Economics", "Humanities and Sciences",
       {"microeconomics", "macroeconomics", "econometrics", "markets",
        "trade", "labor", "development", "game", "theory", "finance",
        "taxation", "growth"},
       true},
      {"POLISCI", "Political Science", "Humanities and Sciences",
       {"politics", "democracy", "institutions", "elections", "policy",
        "international", "relations", "comparative", "government", "law",
        "constitution", "diplomacy"},
       true},
      {"PSYCH", "Psychology", "Humanities and Sciences",
       {"cognition", "perception", "memory", "development", "social",
        "behavior", "neuroscience", "emotion", "personality", "clinical",
        "psychology"},
       false},
      {"SOC", "Sociology", "Humanities and Sciences",
       {"society", "inequality", "race", "class", "gender", "urban",
        "communities", "immigration", "organizations", "networks",
        "culture", "movements"},
       true},
      {"COMM", "Communication", "Humanities and Sciences",
       {"media", "journalism", "rhetoric", "television", "press",
        "persuasion", "audiences", "technology", "public", "opinion"},
       true},
      {"MATH", "Mathematics", "Humanities and Sciences",
       {"calculus", "algebra", "analysis", "topology", "geometry",
        "probability", "equations", "combinatorics", "number", "theory",
        "differential"},
       false},
      {"PHYSICS", "Physics", "Humanities and Sciences",
       {"mechanics", "quantum", "relativity", "electromagnetism",
        "thermodynamics", "particles", "cosmology", "optics", "astrophysics",
        "statistical"},
       false},
      {"CHEM", "Chemistry", "Humanities and Sciences",
       {"organic", "inorganic", "physical", "chemistry", "spectroscopy",
        "synthesis", "quantum", "biochemistry", "kinetics", "structure"},
       false},
      {"BIO", "Biology", "Humanities and Sciences",
       {"genetics", "evolution", "ecology", "cell", "molecular",
        "physiology", "biodiversity", "microbiology", "development",
        "neurobiology"},
       false},
      {"STATS", "Statistics", "Humanities and Sciences",
       {"inference", "regression", "bayesian", "probability", "sampling",
        "experiments", "multivariate", "time", "series", "modeling"},
       false},
      {"EDUC", "Education", "Education",
       {"teaching", "learning", "schools", "curriculum", "assessment",
        "literacy", "policy", "childhood", "higher", "education"},
       true},
      {"EARTHSCI", "Earth Sciences", "Earth Sciences",
       {"geology", "climate", "oceans", "atmosphere", "minerals",
        "earthquakes", "energy", "resources", "environment", "ecosystems"},
       false},
  };
  return *kDepts;
}

const std::vector<AmericanConcept>& AmericanConcepts() {
  // Weights chosen so the Fig. 4 refinement ("african american") selects
  // ≈10.6% of the American-flagged courses.
  static const std::vector<AmericanConcept>* kConcepts =
      new std::vector<AmericanConcept>{
          {"African American",
           0.106,
           {"slavery", "civil", "rights", "harlem", "migration"}},
          {"Latin American",
           0.125,
           {"colonial", "revolution", "borderlands", "migration"}},
          {"Native American", 0.075, {"indians", "tribal", "frontier"}},
          {"American Indians", 0.045, {"tribal", "treaties", "frontier"}},
          {"Asian American", 0.055, {"immigration", "diaspora", "identity"}},
          {"American", 0.594, {"politics", "culture", "democracy", "west"}},
      };
  return *kConcepts;
}

const std::vector<const char*>& AcademicWords() {
  static const std::vector<const char*>* kWords = new std::vector<const char*>{
      "methods",   "research",  "analysis",  "practice",  "foundations",
      "models",    "theory",    "applications", "perspectives", "principles",
      "problems",  "projects",  "laboratory", "workshop",  "readings",
      "writing",   "debate",    "evidence",  "fieldwork",  "case"};
  return *kWords;
}

const std::vector<const char*>& CommentFragments(int sentiment) {
  static const std::vector<const char*>* kNeg = new std::vector<const char*>{
      "the lectures dragged and the grading felt arbitrary",
      "problem sets took forever and the material never clicked",
      "hard to stay engaged, the pace was brutal",
      "would not take again unless required",
      "midterm was far harder than the homework suggested"};
  static const std::vector<const char*>* kMixed = new std::vector<const char*>{
      "decent material although the workload is uneven",
      "some weeks were fascinating, others dragged",
      "fine as a requirement but not memorable",
      "lectures were fine but discussion sections saved it",
      "grading was fair though feedback came slowly"};
  static const std::vector<const char*>* kPos = new std::vector<const char*>{
      "easily the best lecturer i have had here",
      "changed how i think about the whole field",
      "the projects were genuinely fun and the staff cared",
      "take it early, it opens up everything else",
      "exams were fair and the readings were excellent"};
  if (sentiment <= 0) return *kNeg;
  if (sentiment == 1) return *kMixed;
  return *kPos;
}

const std::vector<const char*>& Adjectives(int sentiment) {
  static const std::vector<const char*>* kNeg = new std::vector<const char*>{
      "dry", "confusing", "tedious", "disorganized", "overwhelming"};
  static const std::vector<const char*>* kMixed = new std::vector<const char*>{
      "uneven", "reasonable", "standard", "dense", "manageable"};
  static const std::vector<const char*>* kPos = new std::vector<const char*>{
      "brilliant", "engaging", "inspiring", "rigorous", "rewarding"};
  if (sentiment <= 0) return *kNeg;
  if (sentiment == 1) return *kMixed;
  return *kPos;
}

const std::vector<const char*>& FirstNames() {
  static const std::vector<const char*>* kNames = new std::vector<const char*>{
      "Alex",   "Maria",  "Wei",    "Priya", "James", "Sofia",  "Daniel",
      "Aisha",  "Kenji",  "Elena",  "Omar",  "Grace", "Lucas",  "Hannah",
      "Diego",  "Naomi",  "Ethan",  "Lina",  "Victor", "Zoe",   "Ravi",
      "Clara",  "Felix",  "Ingrid", "Marcus", "Yuki",  "Nadia", "Paulo",
      "Tessa",  "Ahmed"};
  return *kNames;
}

const std::vector<const char*>& LastNames() {
  static const std::vector<const char*>* kNames = new std::vector<const char*>{
      "Chen",     "Garcia",   "Patel",    "Kim",      "Johnson",
      "Nguyen",   "Mueller",  "Rossi",    "Tanaka",   "Okafor",
      "Silva",    "Ivanov",   "Haddad",   "Larsen",   "Moreau",
      "Novak",    "Costa",    "Singh",    "Dubois",   "Sato",
      "Martinez", "Kowalski", "Ferrari",  "Andersen", "Lopez",
      "Weber",    "Nakamura", "OBrien",   "Castillo", "Petrov"};
  return *kNames;
}

const std::vector<const char*>& TitlePrefixes() {
  static const std::vector<const char*>* kPrefixes =
      new std::vector<const char*>{
          "Introduction to", "Advanced",       "Topics in",
          "Foundations of",  "Seminar on",     "Principles of",
          "Readings in",     "The History of", "Contemporary",
          "Methods in"};
  return *kPrefixes;
}

}  // namespace courserank::gen
