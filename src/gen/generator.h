#ifndef COURSERANK_GEN_GENERATOR_H_
#define COURSERANK_GEN_GENERATOR_H_

#include <map>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "social/site.h"

namespace courserank::gen {

using social::CourseId;
using social::DeptId;
using social::UserId;

/// Workload shape knobs. PaperScale() reproduces the corpus magnitudes the
/// paper reports for September 2008 (18,605 courses, 134,000 comments,
/// 50,300+ ratings, 9,000 of ~14,000 students active, ~6,500 undergrads)
/// plus the Fig. 3/4 selectivities ("american" ≈ 6.23% of course entities,
/// "african american" ≈ 10.6% of those). Everything is deterministic in
/// `seed`.
struct GenConfig {
  uint64_t seed = 42;

  size_t num_departments = 26;
  size_t num_courses = 800;
  size_t num_students = 600;
  size_t num_faculty = 60;
  size_t num_staff = 8;
  double active_fraction = 9000.0 / 14000.0;
  double undergrad_fraction = 6500.0 / 14000.0;

  size_t num_ratings = 2200;
  size_t num_comments = 5800;
  size_t num_questions = 25;
  double answers_per_question = 1.4;
  size_t plans_per_active = 3;
  double courses_per_active = 12.0;

  int start_year = 2005;
  int num_years = 3;

  /// Fraction of courses joining the "American" concept cluster.
  double american_fraction = 0.0623;
  /// Course-popularity skew.
  double zipf_theta = 0.9;
  /// Probability a student reports the grade with an enrollment.
  double grade_report_fraction = 0.85;
  /// Fraction of courses with a registrar grade release.
  double official_fraction = 0.6;

  /// The paper-scale corpus (slow to generate; used by benches).
  static GenConfig PaperScale(uint64_t seed = 42);
  /// Integration-test scale (~800 courses), the default above.
  static GenConfig Small(uint64_t seed = 42);
  /// Unit-test scale (~90 courses).
  static GenConfig Tiny(uint64_t seed = 42);
};

/// What the generator created, for tests and benches that need ground
/// truth.
struct GenArtifacts {
  std::vector<DeptId> departments;
  std::vector<CourseId> courses;
  std::vector<UserId> students;
  std::vector<UserId> active_students;
  std::vector<UserId> faculty;
  std::vector<UserId> staff;
  /// Courses carrying the "American" cluster phrase, by sub-concept phrase.
  std::map<std::string, std::vector<CourseId>> american_courses;
  /// Named special courses guaranteed to exist.
  CourseId intro_programming = 0;  ///< "Introduction to Programming" (CS)
  CourseId history_of_science = 0; ///< mentions Greek scientists
  CourseId calculus = 0;           ///< MATH calculus course
  DeptId cs_dept = 0;
  DeptId math_dept = 0;
  DeptId history_dept = 0;
};

/// Populates a fresh CourseRankSite with a synthetic community.
class Generator {
 public:
  explicit Generator(GenConfig config) : config_(config), rng_(config.seed) {}

  /// Runs all generation phases; returns the populated site. Call once.
  Result<std::unique_ptr<social::CourseRankSite>> Generate();

  const GenArtifacts& artifacts() const { return artifacts_; }

 private:
  Status GenDepartments(social::CourseRankSite& site);
  Status GenPeople(social::CourseRankSite& site);
  Status GenCourses(social::CourseRankSite& site);
  Status GenPrereqs(social::CourseRankSite& site);
  Status GenOfferings(social::CourseRankSite& site);
  Status GenEnrollment(social::CourseRankSite& site);
  Status GenRatings(social::CourseRankSite& site);
  Status GenComments(social::CourseRankSite& site);
  Status GenOfficialGrades(social::CourseRankSite& site);
  Status GenPlans(social::CourseRankSite& site);
  Status GenTextbooks(social::CourseRankSite& site);
  Status GenForum(social::CourseRankSite& site);

  std::string MakeName();
  std::string MakeCourseTitle(size_t dept_index, int number,
                              std::string* american_phrase);
  std::string MakeDescription(size_t dept_index,
                              const std::string& american_phrase);
  std::string MakeCommentText(CourseId course, int sentiment);

  /// Topic words for a department index (built-in or synthesized).
  const std::vector<const char*>& TopicsOf(size_t dept_index) const;
  bool AmericanEligible(size_t dept_index) const;

  GenConfig config_;
  Rng rng_;
  GenArtifacts artifacts_;

  // Internal cross-phase state.
  std::map<CourseId, size_t> course_dept_index_;
  std::map<CourseId, double> course_difficulty_;
  std::map<CourseId, double> course_quality_;
  std::map<CourseId, std::string> course_american_;
  std::map<UserId, double> student_aptitude_;
  std::map<UserId, std::vector<std::pair<CourseId, double>>> taken_;
  std::unique_ptr<ZipfSampler> popularity_;
  std::vector<CourseId> popularity_order_;
  int day_counter_ = 1;
};

}  // namespace courserank::gen

#endif  // COURSERANK_GEN_GENERATOR_H_
