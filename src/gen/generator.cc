#include "gen/generator.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "gen/vocab.h"
#include "social/forum.h"

namespace courserank::gen {

using social::CourseRankSite;
using social::Role;

namespace {

/// Generic topics for synthesized "Interdisciplinary Program" departments.
const std::vector<const char*>& GenericTopics() {
  static const std::vector<const char*>* kTopics =
      new std::vector<const char*>{
          "systems", "culture", "policy", "technology", "ethics",
          "globalization", "sustainability", "cities", "health", "data",
          "narrative", "design", "energy", "society", "innovation"};
  return *kTopics;
}

std::string Capitalize(const std::string& word) {
  std::string out = word;
  if (!out.empty() && out[0] >= 'a' && out[0] <= 'z') {
    out[0] = static_cast<char>(out[0] - 'a' + 'A');
  }
  return out;
}

/// Snaps a raw grade-point value to the nearest official bucket value.
double SnapGrade(double raw) {
  double best = social::kGradePoints[0];
  double best_d = 1e9;
  for (size_t i = 0; i < social::kNumGradeBuckets; ++i) {
    double d = std::fabs(social::kGradePoints[i] - raw);
    if (d < best_d) {
      best_d = d;
      best = social::kGradePoints[i];
    }
  }
  return best;
}

constexpr int kQuarterWeightsSize = 4;
constexpr double kQuarterWeights[kQuarterWeightsSize] = {0.33, 0.32, 0.31,
                                                         0.04};

}  // namespace

GenConfig GenConfig::PaperScale(uint64_t seed) {
  GenConfig c;
  c.seed = seed;
  c.num_departments = 70;
  c.num_courses = 18605;
  c.num_students = 14000;
  c.num_faculty = 900;
  c.num_staff = 60;
  c.num_ratings = 50300;
  c.num_comments = 134000;
  c.num_questions = 80;
  c.plans_per_active = 3;
  c.courses_per_active = 24.0;
  c.num_years = 4;
  return c;
}

GenConfig GenConfig::Small(uint64_t seed) {
  GenConfig c;
  c.seed = seed;
  return c;
}

GenConfig GenConfig::Tiny(uint64_t seed) {
  GenConfig c;
  c.seed = seed;
  c.num_departments = 8;
  c.num_courses = 90;
  c.num_students = 80;
  c.num_faculty = 12;
  c.num_staff = 3;
  c.num_ratings = 260;
  c.num_comments = 500;
  c.num_questions = 8;
  c.courses_per_active = 9.0;
  c.num_years = 2;
  return c;
}

const std::vector<const char*>& Generator::TopicsOf(size_t dept_index) const {
  const auto& builtins = Departments();
  if (dept_index < builtins.size() && dept_index < config_.num_departments) {
    // Safe reinterpretation: DeptSpec::topics is vector<const char*>.
    return builtins[dept_index].topics;
  }
  return GenericTopics();
}

bool Generator::AmericanEligible(size_t dept_index) const {
  const auto& builtins = Departments();
  if (dept_index < builtins.size() && dept_index < config_.num_departments) {
    return builtins[dept_index].american_eligible;
  }
  return false;
}

std::string Generator::MakeName() {
  const auto& firsts = FirstNames();
  const auto& lasts = LastNames();
  return std::string(firsts[rng_.NextBounded(firsts.size())]) + " " +
         lasts[rng_.NextBounded(lasts.size())];
}

std::string Generator::MakeCourseTitle(size_t dept_index, int number,
                                       std::string* american_phrase) {
  const auto& topics = TopicsOf(dept_index);
  const auto& prefixes = TitlePrefixes();
  std::string topic1 = Capitalize(topics[rng_.NextBounded(topics.size())]);
  std::string topic2 = Capitalize(topics[rng_.NextBounded(topics.size())]);

  std::string title;
  if (!american_phrase->empty()) {
    // e.g. "Topics in African American History" / "Latin American Politics".
    if (rng_.NextBool(0.5)) {
      title = std::string(prefixes[rng_.NextBounded(prefixes.size())]) + " " +
              *american_phrase + " " + topic1;
    } else {
      title = *american_phrase + " " + topic1;
      if (rng_.NextBool(0.4)) title += " and " + topic2;
    }
  } else {
    int pattern = static_cast<int>(rng_.NextBounded(3));
    if (pattern == 0) {
      title = std::string(prefixes[rng_.NextBounded(prefixes.size())]) + " " +
              topic1;
    } else if (pattern == 1 && topic1 != topic2) {
      title = topic1 + " and " + topic2;
    } else {
      title = Capitalize(topics[rng_.NextBounded(topics.size())]);
      title += " " + std::string(number >= 200 ? "II" : "I");
    }
  }
  return title;
}

std::string Generator::MakeDescription(size_t dept_index,
                                       const std::string& american_phrase) {
  const auto& topics = TopicsOf(dept_index);
  const auto& academic = AcademicWords();
  auto topic = [&]() {
    return std::string(topics[rng_.NextBounded(topics.size())]);
  };
  auto word = [&]() {
    return std::string(academic[rng_.NextBounded(academic.size())]);
  };
  std::string out = "Covers " + topic() + " and " + topic() +
                    " with emphasis on " + word() + " and " + word() + ".";
  if (!american_phrase.empty()) {
    // Pull in the concept's companion vocabulary so the data cloud surfaces
    // related terms (politics, civil rights, ...) like Fig. 3 does.
    for (const AmericanConcept& cluster : AmericanConcepts()) {
      if (cluster.phrase == american_phrase) {
        const auto& comp = cluster.companions;
        out += " Examines " + american_phrase + " " + topic() +
               " including " +
               std::string(comp[rng_.NextBounded(comp.size())]) + " and " +
               std::string(comp[rng_.NextBounded(comp.size())]) + ".";
        break;
      }
    }
  } else {
    out += " Includes " + topic() + " " + word() + " and a final " + word() +
           ".";
  }
  return out;
}

std::string Generator::MakeCommentText(CourseId course, int sentiment) {
  size_t dept_index = course_dept_index_[course];
  const auto& topics = TopicsOf(dept_index);
  const auto& fragments = CommentFragments(sentiment);
  const auto& adjectives = Adjectives(sentiment);
  std::string topic = topics[rng_.NextBounded(topics.size())];
  std::string text = "The " + topic + " material was " +
                     adjectives[rng_.NextBounded(adjectives.size())] + "; " +
                     fragments[rng_.NextBounded(fragments.size())] + ".";
  // American-flagged courses keep their concept words in comments too —
  // the paper notes the term may appear "in user comments that refer to
  // American-related courses".
  auto it = course_american_.find(course);
  if (it != course_american_.end() && rng_.NextBool(0.5)) {
    switch (rng_.NextBounded(3)) {
      case 0:
        text += " The " + it->second + " readings stood out.";
        break;
      case 1:
        text += " Strong treatment of " + it->second + " " + topic + ".";
        break;
      default:
        text += " Best unit was on " + it->second + " history.";
        break;
    }
  }
  return text;
}

Result<std::unique_ptr<CourseRankSite>> Generator::Generate() {
  CR_ASSIGN_OR_RETURN(std::unique_ptr<CourseRankSite> site,
                      CourseRankSite::Create());
  CR_RETURN_IF_ERROR(GenDepartments(*site));
  CR_RETURN_IF_ERROR(GenPeople(*site));
  CR_RETURN_IF_ERROR(GenCourses(*site));
  CR_RETURN_IF_ERROR(GenPrereqs(*site));
  CR_RETURN_IF_ERROR(GenOfferings(*site));
  CR_RETURN_IF_ERROR(GenEnrollment(*site));
  CR_RETURN_IF_ERROR(GenRatings(*site));
  CR_RETURN_IF_ERROR(GenComments(*site));
  CR_RETURN_IF_ERROR(GenOfficialGrades(*site));
  CR_RETURN_IF_ERROR(GenPlans(*site));
  CR_RETURN_IF_ERROR(GenTextbooks(*site));
  CR_RETURN_IF_ERROR(GenForum(*site));
  return site;
}

Status Generator::GenDepartments(CourseRankSite& site) {
  const auto& builtins = Departments();
  for (size_t i = 0; i < config_.num_departments; ++i) {
    std::string code;
    std::string name;
    std::string school;
    if (i < builtins.size()) {
      code = builtins[i].code;
      name = builtins[i].name;
      school = builtins[i].school;
    } else {
      code = "IDP" + std::to_string(i - builtins.size() + 1);
      name = "Interdisciplinary Program " +
             std::to_string(i - builtins.size() + 1);
      school = "Humanities and Sciences";
    }
    CR_ASSIGN_OR_RETURN(DeptId id, site.AddDepartment(code, name, school));
    artifacts_.departments.push_back(id);
    if (code == "CS") artifacts_.cs_dept = id;
    if (code == "MATH") artifacts_.math_dept = id;
    if (code == "HISTORY") artifacts_.history_dept = id;
  }
  // Tiny configs may omit some built-ins; fall back to dept 0.
  if (artifacts_.cs_dept == 0) artifacts_.cs_dept = artifacts_.departments[0];
  if (artifacts_.math_dept == 0) {
    artifacts_.math_dept = artifacts_.departments.back();
  }
  if (artifacts_.history_dept == 0) {
    artifacts_.history_dept =
        artifacts_.departments[artifacts_.departments.size() / 2];
  }
  return Status::OK();
}

Status Generator::GenPeople(CourseRankSite& site) {
  // Students get ids starting at 100001 (the paper's SuIDs).
  static constexpr UserId kStudentBase = 100000;
  static constexpr UserId kFacultyBase = 500000;
  static constexpr UserId kStaffBase = 900000;

  const char* kClasses[] = {"Freshman", "Sophomore", "Junior", "Senior",
                            "Graduate"};
  for (size_t i = 0; i < config_.num_students; ++i) {
    UserId id = kStudentBase + static_cast<UserId>(i) + 1;
    bool undergrad = rng_.NextBool(config_.undergrad_fraction);
    std::string class_year =
        undergrad ? kClasses[rng_.NextBounded(4)] : kClasses[4];
    std::optional<DeptId> major;
    // Freshmen mostly undeclared; everyone else mostly declared.
    bool declared = class_year == std::string("Freshman")
                        ? rng_.NextBool(0.25)
                        : rng_.NextBool(0.85);
    if (declared) {
      major = artifacts_.departments[rng_.NextBounded(
          artifacts_.departments.size())];
    }
    CR_RETURN_IF_ERROR(site.RegisterStudent(id, MakeName(), class_year,
                                            major));
    artifacts_.students.push_back(id);
    student_aptitude_[id] = rng_.NextGaussian(0.0, 0.25);
  }
  // The first active_fraction of a shuffled copy are the "active" users.
  std::vector<UserId> shuffled = artifacts_.students;
  rng_.Shuffle(shuffled);
  size_t num_active = static_cast<size_t>(
      config_.active_fraction * static_cast<double>(shuffled.size()));
  artifacts_.active_students.assign(shuffled.begin(),
                                    shuffled.begin() + num_active);

  for (size_t i = 0; i < config_.num_faculty; ++i) {
    UserId id = kFacultyBase + static_cast<UserId>(i) + 1;
    CR_RETURN_IF_ERROR(site.RegisterFaculty(id, "Prof. " + MakeName()));
    artifacts_.faculty.push_back(id);
  }
  for (size_t i = 0; i < config_.num_staff; ++i) {
    UserId id = kStaffBase + static_cast<UserId>(i) + 1;
    CR_RETURN_IF_ERROR(site.RegisterStaff(id, MakeName()));
    artifacts_.staff.push_back(id);
  }
  return Status::OK();
}

Status Generator::GenCourses(CourseRankSite& site) {
  size_t num_depts = artifacts_.departments.size();
  size_t eligible = 0;
  for (size_t d = 0; d < num_depts; ++d) {
    if (AmericanEligible(d)) ++eligible;
  }
  // Per-eligible-course probability that hits the global target fraction.
  double p_american =
      eligible == 0 ? 0.0
                    : config_.american_fraction *
                          static_cast<double>(num_depts) /
                          static_cast<double>(eligible);

  // Specials first (they count toward num_courses).
  {
    size_t cs_index = 0;
    for (size_t d = 0; d < num_depts; ++d) {
      if (artifacts_.departments[d] == artifacts_.cs_dept) cs_index = d;
    }
    CR_ASSIGN_OR_RETURN(
        artifacts_.intro_programming,
        site.AddCourse(artifacts_.cs_dept, 106, "Introduction to Programming",
                       "Covers programming methodology in java with emphasis "
                       "on problem decomposition, software engineering "
                       "practice, and data abstraction.",
                       5));
    course_dept_index_[artifacts_.intro_programming] = cs_index;

    size_t hist_index = 0;
    for (size_t d = 0; d < num_depts; ++d) {
      if (artifacts_.departments[d] == artifacts_.history_dept) hist_index = d;
    }
    CR_ASSIGN_OR_RETURN(
        artifacts_.history_of_science,
        site.AddCourse(artifacts_.history_dept, 120, "The History of Science",
                       "Surveys science from antiquity to the present, "
                       "including the famous greek scientists, the "
                       "scientific revolution, and modern physics.",
                       4));
    course_dept_index_[artifacts_.history_of_science] = hist_index;

    size_t math_index = 0;
    for (size_t d = 0; d < num_depts; ++d) {
      if (artifacts_.departments[d] == artifacts_.math_dept) math_index = d;
    }
    CR_ASSIGN_OR_RETURN(
        artifacts_.calculus,
        site.AddCourse(artifacts_.math_dept, 41, "Calculus",
                       "Differential and integral calculus of a single "
                       "variable with applications and problem sessions.",
                       5));
    course_dept_index_[artifacts_.calculus] = math_index;

    artifacts_.courses.push_back(artifacts_.intro_programming);
    artifacts_.courses.push_back(artifacts_.history_of_science);
    artifacts_.courses.push_back(artifacts_.calculus);
    for (CourseId id : artifacts_.courses) {
      course_difficulty_[id] = 3.2;
      course_quality_[id] = 0.4;
    }
  }

  const auto& concepts = AmericanConcepts();
  std::vector<double> concept_weights;
  for (const AmericanConcept& c : concepts) concept_weights.push_back(c.weight);

  for (size_t i = artifacts_.courses.size(); i < config_.num_courses; ++i) {
    size_t dept_index = i % num_depts;
    DeptId dept = artifacts_.departments[dept_index];
    int number = 100 + static_cast<int>((i / num_depts) % 380);

    std::string american_phrase;
    if (AmericanEligible(dept_index) && rng_.NextBool(p_american)) {
      american_phrase = concepts[rng_.NextWeighted(concept_weights)].phrase;
    }
    std::string title = MakeCourseTitle(dept_index, number, &american_phrase);
    std::string description = MakeDescription(dept_index, american_phrase);
    int units = 3 + static_cast<int>(rng_.NextBounded(3));

    CR_ASSIGN_OR_RETURN(CourseId id,
                        site.AddCourse(dept, number, title, description,
                                       units));
    artifacts_.courses.push_back(id);
    course_dept_index_[id] = dept_index;
    course_difficulty_[id] =
        std::clamp(rng_.NextGaussian(3.25, 0.25), 2.2, 4.1);
    course_quality_[id] = rng_.NextGaussian(0.0, 0.5);
    if (!american_phrase.empty()) {
      course_american_[id] = american_phrase;
      artifacts_.american_courses[american_phrase].push_back(id);
    }
  }

  // Popularity ranking for Zipfian sampling.
  popularity_order_ = artifacts_.courses;
  rng_.Shuffle(popularity_order_);
  popularity_ = std::make_unique<ZipfSampler>(popularity_order_.size(),
                                              config_.zipf_theta);
  return Status::OK();
}

Status Generator::GenPrereqs(CourseRankSite& site) {
  // Group courses by department, ordered by insertion (ascending numbers
  // roughly). A course numbered >= 200 requires 1-2 lower courses.
  std::map<size_t, std::vector<CourseId>> by_dept;
  for (CourseId id : artifacts_.courses) {
    by_dept[course_dept_index_[id]].push_back(id);
  }
  CR_ASSIGN_OR_RETURN(const storage::Table* courses,
                      site.db().GetTable("Courses"));
  CR_ASSIGN_OR_RETURN(size_t num_ci, courses->schema().ColumnIndex("Number"));
  auto number_of = [&](CourseId id) -> int {
    auto rid = courses->FindByPrimaryKey({storage::Value(id)});
    return static_cast<int>(courses->Get(*rid)->at(num_ci).AsInt());
  };
  for (auto& [dept, ids] : by_dept) {
    std::vector<CourseId> sorted = ids;
    std::sort(sorted.begin(), sorted.end(),
              [&](CourseId a, CourseId b) { return number_of(a) < number_of(b); });
    for (size_t i = 0; i < sorted.size(); ++i) {
      if (number_of(sorted[i]) < 200 || i == 0) continue;
      if (!rng_.NextBool(0.4)) continue;
      size_t n = 1 + rng_.NextBounded(2);
      std::set<CourseId> chosen;
      for (size_t k = 0; k < n; ++k) {
        CourseId prereq = sorted[rng_.NextBounded(i)];
        if (!chosen.insert(prereq).second) continue;
        CR_RETURN_IF_ERROR(site.AddPrereq(sorted[i], prereq));
      }
    }
  }
  return Status::OK();
}

Status Generator::GenOfferings(CourseRankSite& site) {
  // Each course is offered in two quarters per year, every year including
  // one future year (so generated plans reference real offerings).
  const auto& lasts = LastNames();
  for (CourseId id : artifacts_.courses) {
    std::string instructor =
        "Prof. " + std::string(lasts[rng_.NextBounded(lasts.size())]);
    for (int year = config_.start_year;
         year <= config_.start_year + config_.num_years; ++year) {
      std::set<int> quarters;
      quarters.insert(static_cast<int>(rng_.NextBounded(3)));  // Aut/Win/Spr
      quarters.insert(static_cast<int>(rng_.NextBounded(3)));
      for (int q : quarters) {
        TimeSlot slot;
        bool mwf = rng_.NextBool(0.5);
        slot.days = mwf ? (kMon | kWed | kFri) : (kTue | kThu);
        slot.start_min =
            static_cast<int16_t>((8 + rng_.NextBounded(9)) * 60);
        slot.end_min =
            static_cast<int16_t>(slot.start_min + (mwf ? 50 : 80));
        CR_RETURN_IF_ERROR(
            site.AddOffering(id, year, static_cast<Quarter>(q), instructor,
                             slot)
                .status());
      }
    }
  }
  return Status::OK();
}

Status Generator::GenEnrollment(CourseRankSite& site) {
  std::map<DeptId, std::vector<CourseId>> by_dept;
  for (CourseId id : artifacts_.courses) {
    by_dept[artifacts_.departments[course_dept_index_[id]]].push_back(id);
  }
  CR_ASSIGN_OR_RETURN(const storage::Table* students,
                      site.db().GetTable("Students"));
  CR_ASSIGN_OR_RETURN(size_t major_ci,
                      students->schema().ColumnIndex("Major"));

  for (UserId student : artifacts_.active_students) {
    auto srow = students->FindByPrimaryKey({storage::Value(student)});
    std::optional<DeptId> major;
    if (srow.ok()) {
      const storage::Value& v = students->Get(*srow)->at(major_ci);
      if (!v.is_null()) major = v.AsInt();
    }
    int n = std::max(
        3, static_cast<int>(rng_.NextGaussian(config_.courses_per_active,
                                              config_.courses_per_active / 4)));
    std::set<CourseId> mine;
    for (int k = 0; k < n * 3 && static_cast<int>(mine.size()) < n; ++k) {
      CourseId course;
      if (major.has_value() && rng_.NextBool(0.45) &&
          !by_dept[*major].empty()) {
        const auto& pool = by_dept[*major];
        course = pool[rng_.NextBounded(pool.size())];
      } else {
        course = popularity_order_[popularity_->Sample(rng_)];
      }
      if (!mine.insert(course).second) continue;

      int year = config_.start_year +
                 static_cast<int>(rng_.NextBounded(
                     static_cast<uint64_t>(config_.num_years)));
      std::vector<double> qw(kQuarterWeights,
                             kQuarterWeights + kQuarterWeightsSize);
      Quarter quarter = static_cast<Quarter>(rng_.NextWeighted(qw));

      double raw = course_difficulty_[course] + student_aptitude_[student] +
                   rng_.NextGaussian(0.0, 0.3);
      double grade = SnapGrade(std::clamp(raw, 0.0, 4.3));
      std::optional<double> reported;
      if (rng_.NextBool(config_.grade_report_fraction)) reported = grade;

      CR_RETURN_IF_ERROR(
          site.ReportCourseTaken(student, course, year, quarter, reported));
      taken_[student].emplace_back(course, grade);
    }
  }
  return Status::OK();
}

Status Generator::GenRatings(CourseRankSite& site) {
  std::set<std::pair<UserId, CourseId>> rated;
  size_t attempts = 0;
  const size_t max_attempts = config_.num_ratings * 30;
  while (rated.size() < config_.num_ratings && attempts++ < max_attempts) {
    UserId student = artifacts_.active_students[rng_.NextBounded(
        artifacts_.active_students.size())];
    auto it = taken_.find(student);
    if (it == taken_.end() || it->second.empty()) continue;
    const auto& [course, grade] =
        it->second[rng_.NextBounded(it->second.size())];
    if (rated.count({student, course}) > 0) continue;
    double raw = 3.0 + (grade - 3.2) * 1.2 + course_quality_[course] +
                 rng_.NextGaussian(0.0, 0.7);
    double score = std::clamp(std::round(raw), 1.0, 5.0);
    CR_RETURN_IF_ERROR(
        site.RateCourse(student, course, score, day_counter_));
    day_counter_ = day_counter_ % 720 + 1;
    rated.insert({student, course});
  }
  return Status::OK();
}

Status Generator::GenComments(CourseRankSite& site) {
  size_t written = 0;
  size_t attempts = 0;
  const size_t max_attempts = config_.num_comments * 10;
  while (written < config_.num_comments && attempts++ < max_attempts) {
    UserId student = artifacts_.active_students[rng_.NextBounded(
        artifacts_.active_students.size())];
    auto it = taken_.find(student);
    if (it == taken_.end() || it->second.empty()) continue;
    const auto& [course, grade] =
        it->second[rng_.NextBounded(it->second.size())];
    double tone = course_quality_[course] + (grade - 3.2) +
                  rng_.NextGaussian(0.0, 0.4);
    int sentiment = tone < -0.35 ? 0 : (tone < 0.45 ? 1 : 2);
    CR_RETURN_IF_ERROR(
        site.AddComment(student, course, MakeCommentText(course, sentiment),
                        day_counter_)
            .status());
    day_counter_ = day_counter_ % 720 + 1;
    ++written;
  }
  return Status::OK();
}

Status Generator::GenOfficialGrades(CourseRankSite& site) {
  // Official distributions are sampled from the same per-course grade model
  // as the self-reported grades, so the two distributions are close — the
  // paper's §2.2 observation for the Engineering release.
  for (CourseId id : artifacts_.courses) {
    if (!rng_.NextBool(config_.official_fraction)) continue;
    size_t n = 20 + rng_.NextBounded(120);
    std::array<int64_t, social::kNumGradeBuckets> counts{};
    for (size_t k = 0; k < n; ++k) {
      double raw = course_difficulty_[id] + rng_.NextGaussian(0.0, 0.4);
      counts[social::GradeBucket(std::clamp(raw, 0.0, 4.3))] += 1;
    }
    for (size_t b = 0; b < social::kNumGradeBuckets; ++b) {
      if (counts[b] == 0) continue;
      CR_RETURN_IF_ERROR(site.LoadOfficialGrades(
          id, social::kGradeLetters[b], counts[b]));
    }
  }
  return Status::OK();
}

Status Generator::GenPlans(CourseRankSite& site) {
  int future_year = config_.start_year + config_.num_years;
  // Plans must reference real offerings, or the planner would flag every
  // generated plan as "not offered".
  CR_ASSIGN_OR_RETURN(const storage::Table* offerings,
                      site.db().GetTable("Offerings"));
  CR_ASSIGN_OR_RETURN(size_t term_ci,
                      offerings->schema().ColumnIndex("Term"));
  for (UserId student : artifacts_.active_students) {
    std::set<CourseId> mine;
    for (const auto& [course, grade] : taken_[student]) mine.insert(course);
    size_t planned = 0;
    size_t guard = 0;
    while (planned < config_.plans_per_active && guard++ < 50) {
      CourseId course = popularity_order_[popularity_->Sample(rng_)];
      if (mine.count(course) > 0) continue;
      std::vector<storage::RowId> future = offerings->LookupEqual(
          {"CourseID", "Year"},
          {storage::Value(course), storage::Value(future_year)});
      if (future.empty()) continue;
      const storage::Row* offering =
          offerings->Get(future[rng_.NextBounded(future.size())]);
      CR_ASSIGN_OR_RETURN(Quarter quarter,
                          ParseQuarter((*offering)[term_ci].AsString()));
      Status added = site.PlanCourse(student, course, future_year, quarter);
      if (added.code() == StatusCode::kAlreadyExists) continue;
      CR_RETURN_IF_ERROR(added);
      mine.insert(course);
      ++planned;
    }
  }
  return Status::OK();
}

Status Generator::GenTextbooks(CourseRankSite& site) {
  // Volunteers report textbooks for the popular fifth of the catalog
  // (paper §2.2: the bookstore would not release the official list).
  size_t top = popularity_order_.size() / 5;
  for (size_t i = 0; i < top; ++i) {
    CourseId course = popularity_order_[i];
    const auto& topics = TopicsOf(course_dept_index_[course]);
    size_t books = 1 + rng_.NextBounded(2);
    for (size_t b = 0; b < books; ++b) {
      UserId reporter = artifacts_.active_students[rng_.NextBounded(
          artifacts_.active_students.size())];
      std::string title =
          Capitalize(topics[rng_.NextBounded(topics.size())]) + ": " +
          (b == 0 ? "A First Course" : "Advanced Perspectives");
      CR_RETURN_IF_ERROR(
          site.ReportTextbook(reporter, course, title, day_counter_)
              .status());
      day_counter_ = day_counter_ % 720 + 1;
    }
  }
  return Status::OK();
}

Status Generator::GenForum(CourseRankSite& site) {
  if (!artifacts_.staff.empty()) {
    CR_RETURN_IF_ERROR(site.SeedFaqs(artifacts_.staff[0],
                                     social::DefaultFaqSeeds(), 1));
  }
  for (size_t i = 0; i < config_.num_questions; ++i) {
    UserId asker = artifacts_.active_students[rng_.NextBounded(
        artifacts_.active_students.size())];
    size_t dept_index = rng_.NextBounded(artifacts_.departments.size());
    const auto& topics = TopicsOf(dept_index);
    std::string text =
        "How hard is the " +
        std::string(topics[rng_.NextBounded(topics.size())]) +
        " material, and is " +
        std::string(topics[rng_.NextBounded(topics.size())]) +
        " background required?";
    CR_ASSIGN_OR_RETURN(
        social::QuestionId qid,
        site.AskQuestion(asker, text, day_counter_,
                         artifacts_.departments[dept_index]));
    day_counter_ = day_counter_ % 720 + 1;

    // The paper's forum has "little traffic": most questions get 0-3
    // answers, many none.
    size_t answers = rng_.NextBounded(
        static_cast<uint64_t>(config_.answers_per_question * 2 + 1));
    social::AnswerId first_answer = 0;
    for (size_t a = 0; a < answers; ++a) {
      UserId answerer = artifacts_.active_students[rng_.NextBounded(
          artifacts_.active_students.size())];
      if (answerer == asker) continue;
      CR_ASSIGN_OR_RETURN(
          social::AnswerId aid,
          site.AnswerQuestion(answerer, qid,
                              "Plan for the problem sets early and it is "
                              "manageable.",
                              day_counter_));
      if (first_answer == 0) first_answer = aid;
      day_counter_ = day_counter_ % 720 + 1;
    }
    if (first_answer != 0 && rng_.NextBool(0.5)) {
      CR_RETURN_IF_ERROR(site.AcceptAnswer(asker, first_answer, day_counter_));
    }
  }
  return Status::OK();
}

}  // namespace courserank::gen
