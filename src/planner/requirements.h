#ifndef COURSERANK_PLANNER_REQUIREMENTS_H_
#define COURSERANK_PLANNER_REQUIREMENTS_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "social/model.h"
#include "storage/database.h"

namespace courserank::planner {

using social::CourseId;
using social::DeptId;
using social::UserId;

struct RequirementNode;
using ReqPtr = std::unique_ptr<RequirementNode>;

/// A node of a degree-requirement tree (the paper's Requirement Tracker,
/// §2.1). Leaves consume courses; combinators aggregate children. A course
/// can satisfy at most one leaf — assignment is solved by maximum bipartite
/// matching so overlapping requirement sets don't double-count.
struct RequirementNode {
  enum class Kind {
    kCourse,        ///< one specific course
    kNOfSet,        ///< need_n distinct courses from `set`
    kUnitsFromDept, ///< ≥ min_units of courses in dept numbered ≥ min_number
    kAllOf,         ///< every child satisfied
    kAnyN,          ///< at least need_n children satisfied
  };

  Kind kind = Kind::kAllOf;
  std::string name;

  CourseId course = 0;            // kCourse
  size_t need_n = 0;              // kNOfSet / kAnyN
  std::vector<CourseId> set;      // kNOfSet
  DeptId dept = 0;                // kUnitsFromDept
  int min_number = 0;             // kUnitsFromDept
  int min_units = 0;              // kUnitsFromDept

  std::vector<ReqPtr> children;

  // Factory helpers.
  static ReqPtr Course(std::string name, CourseId course);
  static ReqPtr NOfSet(std::string name, size_t n, std::vector<CourseId> set);
  static ReqPtr UnitsFromDept(std::string name, DeptId dept, int min_number,
                              int min_units);
  static ReqPtr AllOf(std::string name, std::vector<ReqPtr> children);
  static ReqPtr AnyN(std::string name, size_t n, std::vector<ReqPtr> children);

  ReqPtr Clone() const;
};

/// Progress of one leaf requirement.
struct LeafProgress {
  std::string name;
  bool satisfied = false;
  std::vector<CourseId> used;  ///< courses consumed by this leaf
  size_t have = 0;             ///< matched count (or units for unit leaves)
  size_t need = 0;             ///< target count (or units)
};

/// Full tracker report.
struct RequirementReport {
  bool satisfied = false;
  std::vector<LeafProgress> leaves;

  std::string ToString() const;
};

/// Course-to-requirement assignment strategy (DESIGN.md E7 ablation).
enum class MatchStrategy {
  kMaximumMatching,  ///< augmenting-path bipartite matching (correct)
  kGreedy,           ///< first-fit in tree order (under-counts on overlap)
};

/// Evaluates requirement trees against a set of taken courses and keeps the
/// per-major program registry that staff maintain (paper §2.2: a dedicated
/// interface for department managers to define program requirements).
class RequirementTracker {
 public:
  explicit RequirementTracker(const storage::Database* db) : db_(db) {}

  /// Checks `root` against `taken`.
  Result<RequirementReport> Check(
      const RequirementNode& root, const std::vector<CourseId>& taken,
      MatchStrategy strategy = MatchStrategy::kMaximumMatching) const;

  /// Staff-defined program for a major (replaces any existing definition).
  Status DefineProgram(DeptId major, ReqPtr root);
  bool HasProgram(DeptId major) const;

  /// Checks a student's Enrollment history against their major's program.
  Result<RequirementReport> CheckStudent(
      DeptId major, UserId student,
      MatchStrategy strategy = MatchStrategy::kMaximumMatching) const;

 private:
  const storage::Database* db_;
  std::map<DeptId, ReqPtr> programs_;
};

}  // namespace courserank::planner

#endif  // COURSERANK_PLANNER_REQUIREMENTS_H_
