#include "planner/scheduler.h"

#include <algorithm>
#include <map>

#include "storage/value.h"

namespace courserank::planner {

using storage::Row;
using storage::RowId;
using storage::Table;
using storage::Value;

namespace {

struct Section {
  TimeSlot slot;
};

Result<std::vector<Section>> SectionsOf(const storage::Database& db,
                                        CourseId course, Term term) {
  CR_ASSIGN_OR_RETURN(const Table* offerings, db.GetTable("Offerings"));
  const auto& schema = offerings->schema();
  CR_ASSIGN_OR_RETURN(size_t days_ci, schema.ColumnIndex("Days"));
  CR_ASSIGN_OR_RETURN(size_t start_ci, schema.ColumnIndex("StartMin"));
  CR_ASSIGN_OR_RETURN(size_t end_ci, schema.ColumnIndex("EndMin"));
  std::vector<Section> out;
  for (RowId rid : offerings->LookupEqual(
           {"CourseID", "Year", "Term"},
           {Value(course), Value(static_cast<int64_t>(term.year)),
            Value(std::string(QuarterName(term.quarter)))})) {
    const Row* row = offerings->Get(rid);
    if (row == nullptr) continue;
    Section section;
    if (!(*row)[days_ci].is_null()) {
      section.slot.days = static_cast<uint8_t>((*row)[days_ci].AsInt());
      section.slot.start_min =
          static_cast<int16_t>((*row)[start_ci].AsInt());
      section.slot.end_min = static_cast<int16_t>((*row)[end_ci].AsInt());
    }
    out.push_back(section);
  }
  return out;
}

Result<int> UnitsOf(const storage::Database& db, CourseId course) {
  CR_ASSIGN_OR_RETURN(const Table* courses, db.GetTable("Courses"));
  CR_ASSIGN_OR_RETURN(RowId rid, courses->FindByPrimaryKey({Value(course)}));
  CR_ASSIGN_OR_RETURN(size_t ci, courses->schema().ColumnIndex("Units"));
  return static_cast<int>(courses->Get(rid)->at(ci).AsInt());
}

}  // namespace

Result<ScheduleSuggestion> SuggestSchedule(
    const storage::Database& db, const PrereqGraph& prereqs,
    const std::set<CourseId>& completed, const ScheduleRequest& request) {
  ScheduleSuggestion out;

  // Terms in the window.
  std::vector<Term> terms;
  for (int i = 0; i < request.num_terms; ++i) {
    terms.push_back(request.first_term.Plus(i));
  }

  // Order wanted courses so prerequisites are attempted first: topological
  // rank where available, insertion order otherwise.
  std::vector<CourseId> order = request.wanted;
  {
    std::map<CourseId, size_t> rank;
    std::vector<CourseId> topo = prereqs.TopologicalOrder();
    for (size_t i = 0; i < topo.size(); ++i) rank[topo[i]] = i;
    std::stable_sort(order.begin(), order.end(),
                     [&](CourseId a, CourseId b) {
                       auto ra = rank.find(a);
                       auto rb = rank.find(b);
                       size_t va = ra == rank.end() ? 0 : ra->second;
                       size_t vb = rb == rank.end() ? 0 : rb->second;
                       return va < vb;
                     });
  }

  // Per-term committed sections and units.
  std::map<int, std::vector<TimeSlot>> term_slots;
  std::map<int, int> term_units;
  std::map<CourseId, int> placed_term;  // course -> Term::Index()

  for (CourseId course : order) {
    if (completed.count(course) > 0) {
      out.unplaced.push_back({course, "already completed"});
      continue;
    }
    CR_ASSIGN_OR_RETURN(int units, UnitsOf(db, course));

    std::string reason = "not offered in the window";
    bool placed = false;
    for (const Term& term : terms) {
      // Prerequisites must be completed, or placed strictly earlier.
      bool prereqs_ok = true;
      for (CourseId p : prereqs.PrereqsOf(course)) {
        if (completed.count(p) > 0) continue;
        auto it = placed_term.find(p);
        if (it == placed_term.end() || it->second >= term.Index()) {
          prereqs_ok = false;
          break;
        }
      }
      if (!prereqs_ok) {
        reason = "prerequisites not satisfiable in the window";
        continue;
      }
      if (term_units[term.Index()] + units > request.max_units_per_term) {
        reason = "unit cap reached in every feasible term";
        continue;
      }
      CR_ASSIGN_OR_RETURN(std::vector<Section> sections,
                          SectionsOf(db, course, term));
      if (sections.empty()) continue;  // keep "not offered" reason
      // Pick the first section compatible with everything already placed.
      bool found_section = false;
      for (const Section& section : sections) {
        bool clashes = false;
        for (const TimeSlot& other : term_slots[term.Index()]) {
          if (section.slot.ConflictsWith(other)) {
            clashes = true;
            break;
          }
        }
        if (!clashes) {
          term_slots[term.Index()].push_back(section.slot);
          found_section = true;
          break;
        }
      }
      if (!found_section) {
        reason = "every section conflicts with the placed schedule";
        continue;
      }
      term_units[term.Index()] += units;
      placed_term[course] = term.Index();
      out.placements.push_back({course, term});
      placed = true;
      break;
    }
    if (!placed) out.unplaced.push_back({course, reason});
  }
  return out;
}

}  // namespace courserank::planner
