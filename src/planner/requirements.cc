#include "planner/requirements.h"

#include <algorithm>
#include <set>

#include "storage/value.h"

namespace courserank::planner {

using storage::Row;
using storage::RowId;
using storage::Table;
using storage::Value;

ReqPtr RequirementNode::Course(std::string name, CourseId course) {
  auto node = std::make_unique<RequirementNode>();
  node->kind = Kind::kCourse;
  node->name = std::move(name);
  node->course = course;
  return node;
}

ReqPtr RequirementNode::NOfSet(std::string name, size_t n,
                               std::vector<CourseId> set) {
  auto node = std::make_unique<RequirementNode>();
  node->kind = Kind::kNOfSet;
  node->name = std::move(name);
  node->need_n = n;
  node->set = std::move(set);
  return node;
}

ReqPtr RequirementNode::UnitsFromDept(std::string name, DeptId dept,
                                      int min_number, int min_units) {
  auto node = std::make_unique<RequirementNode>();
  node->kind = Kind::kUnitsFromDept;
  node->name = std::move(name);
  node->dept = dept;
  node->min_number = min_number;
  node->min_units = min_units;
  return node;
}

ReqPtr RequirementNode::AllOf(std::string name, std::vector<ReqPtr> children) {
  auto node = std::make_unique<RequirementNode>();
  node->kind = Kind::kAllOf;
  node->name = std::move(name);
  node->children = std::move(children);
  return node;
}

ReqPtr RequirementNode::AnyN(std::string name, size_t n,
                             std::vector<ReqPtr> children) {
  auto node = std::make_unique<RequirementNode>();
  node->kind = Kind::kAnyN;
  node->name = std::move(name);
  node->need_n = n;
  node->children = std::move(children);
  return node;
}

ReqPtr RequirementNode::Clone() const {
  auto node = std::make_unique<RequirementNode>();
  node->kind = kind;
  node->name = name;
  node->course = course;
  node->need_n = need_n;
  node->set = set;
  node->dept = dept;
  node->min_number = min_number;
  node->min_units = min_units;
  for (const ReqPtr& child : children) {
    node->children.push_back(child->Clone());
  }
  return node;
}

std::string RequirementReport::ToString() const {
  std::string out = satisfied ? "SATISFIED\n" : "NOT SATISFIED\n";
  for (const LeafProgress& leaf : leaves) {
    out += "  [" + std::string(leaf.satisfied ? "x" : " ") + "] " +
           leaf.name + " (" + std::to_string(leaf.have) + "/" +
           std::to_string(leaf.need) + ")\n";
  }
  return out;
}

namespace {

struct CourseInfo {
  CourseId id = 0;
  DeptId dept = 0;
  int number = 0;
  int units = 0;
};

/// One count-based matching slot.
struct Slot {
  const RequirementNode* leaf = nullptr;
};

bool LeafAccepts(const RequirementNode& leaf, const CourseInfo& course) {
  switch (leaf.kind) {
    case RequirementNode::Kind::kCourse:
      return leaf.course == course.id;
    case RequirementNode::Kind::kNOfSet:
      return std::find(leaf.set.begin(), leaf.set.end(), course.id) !=
             leaf.set.end();
    case RequirementNode::Kind::kUnitsFromDept:
      return leaf.dept == course.dept && course.number >= leaf.min_number;
    default:
      return false;
  }
}

/// Kuhn's augmenting-path maximum bipartite matching: courses (left) to
/// slots (right).
class Matcher {
 public:
  Matcher(size_t num_courses, size_t num_slots)
      : adj_(num_courses), slot_match_(num_slots, -1) {}

  void AddEdge(size_t course, size_t slot) { adj_[course].push_back(slot); }

  /// Runs matching; returns course→slot assignment (-1 = unmatched).
  std::vector<int> Solve() {
    std::vector<int> course_match(adj_.size(), -1);
    for (size_t c = 0; c < adj_.size(); ++c) {
      std::vector<bool> visited(slot_match_.size(), false);
      TryAugment(c, visited, course_match);
    }
    return course_match;
  }

 private:
  bool TryAugment(size_t course, std::vector<bool>& visited,
                  std::vector<int>& course_match) {
    for (size_t slot : adj_[course]) {
      if (visited[slot]) continue;
      visited[slot] = true;
      if (slot_match_[slot] == -1 ||
          TryAugment(static_cast<size_t>(slot_match_[slot]), visited,
                     course_match)) {
        slot_match_[slot] = static_cast<int>(course);
        course_match[course] = static_cast<int>(slot);
        return true;
      }
    }
    return false;
  }

  std::vector<std::vector<size_t>> adj_;
  std::vector<int> slot_match_;
};

/// Evaluates combinator satisfaction given per-leaf results.
bool Satisfied(const RequirementNode& node,
               const std::map<const RequirementNode*, bool>& leaf_ok) {
  switch (node.kind) {
    case RequirementNode::Kind::kCourse:
    case RequirementNode::Kind::kNOfSet:
    case RequirementNode::Kind::kUnitsFromDept:
      return leaf_ok.at(&node);
    case RequirementNode::Kind::kAllOf: {
      for (const ReqPtr& child : node.children) {
        if (!Satisfied(*child, leaf_ok)) return false;
      }
      return true;
    }
    case RequirementNode::Kind::kAnyN: {
      size_t ok = 0;
      for (const ReqPtr& child : node.children) {
        if (Satisfied(*child, leaf_ok)) ++ok;
      }
      return ok >= node.need_n;
    }
  }
  return false;
}

void CollectLeaves(const RequirementNode& node,
                   std::vector<const RequirementNode*>* leaves) {
  switch (node.kind) {
    case RequirementNode::Kind::kCourse:
    case RequirementNode::Kind::kNOfSet:
    case RequirementNode::Kind::kUnitsFromDept:
      leaves->push_back(&node);
      return;
    default:
      for (const ReqPtr& child : node.children) {
        CollectLeaves(*child, leaves);
      }
  }
}

size_t SlotsNeeded(const RequirementNode& leaf) {
  switch (leaf.kind) {
    case RequirementNode::Kind::kCourse:
      return 1;
    case RequirementNode::Kind::kNOfSet:
      return leaf.need_n;
    default:
      return 0;  // unit leaves handled after matching
  }
}

}  // namespace

Result<RequirementReport> RequirementTracker::Check(
    const RequirementNode& root, const std::vector<CourseId>& taken,
    MatchStrategy strategy) const {
  // Resolve course info for distinct taken courses.
  CR_ASSIGN_OR_RETURN(const Table* courses, db_->GetTable("Courses"));
  const auto& schema = courses->schema();
  CR_ASSIGN_OR_RETURN(size_t dep_ci, schema.ColumnIndex("DepID"));
  CR_ASSIGN_OR_RETURN(size_t num_ci, schema.ColumnIndex("Number"));
  CR_ASSIGN_OR_RETURN(size_t units_ci, schema.ColumnIndex("Units"));

  std::vector<CourseInfo> infos;
  {
    std::set<CourseId> distinct(taken.begin(), taken.end());
    for (CourseId id : distinct) {
      CR_ASSIGN_OR_RETURN(RowId rid, courses->FindByPrimaryKey({Value(id)}));
      const Row* row = courses->Get(rid);
      infos.push_back({id, (*row)[dep_ci].AsInt(),
                       static_cast<int>((*row)[num_ci].AsInt()),
                       static_cast<int>((*row)[units_ci].AsInt())});
    }
  }

  std::vector<const RequirementNode*> leaves;
  CollectLeaves(root, &leaves);

  // Per-course consumption and per-leaf usage.
  std::vector<bool> used(infos.size(), false);
  std::map<const RequirementNode*, std::vector<size_t>> leaf_used;

  if (strategy == MatchStrategy::kMaximumMatching) {
    // Count-based slots.
    std::vector<Slot> slots;
    for (const RequirementNode* leaf : leaves) {
      for (size_t s = 0; s < SlotsNeeded(*leaf); ++s) slots.push_back({leaf});
    }
    Matcher matcher(infos.size(), slots.size());
    for (size_t c = 0; c < infos.size(); ++c) {
      for (size_t s = 0; s < slots.size(); ++s) {
        if (LeafAccepts(*slots[s].leaf, infos[c])) matcher.AddEdge(c, s);
      }
    }
    std::vector<int> assignment = matcher.Solve();
    for (size_t c = 0; c < infos.size(); ++c) {
      if (assignment[c] < 0) continue;
      used[c] = true;
      leaf_used[slots[static_cast<size_t>(assignment[c])].leaf].push_back(c);
    }
  } else {
    // Greedy first-fit in tree order (the baseline the ablation compares).
    for (const RequirementNode* leaf : leaves) {
      size_t need = SlotsNeeded(*leaf);
      for (size_t c = 0; c < infos.size() && leaf_used[leaf].size() < need;
           ++c) {
        if (used[c] || !LeafAccepts(*leaf, infos[c])) continue;
        used[c] = true;
        leaf_used[leaf].push_back(c);
      }
    }
  }

  // Unit leaves consume leftover qualifying courses, largest units first.
  for (const RequirementNode* leaf : leaves) {
    if (leaf->kind != RequirementNode::Kind::kUnitsFromDept) continue;
    std::vector<size_t> candidates;
    for (size_t c = 0; c < infos.size(); ++c) {
      if (!used[c] && LeafAccepts(*leaf, infos[c])) candidates.push_back(c);
    }
    std::sort(candidates.begin(), candidates.end(), [&](size_t a, size_t b) {
      return infos[a].units > infos[b].units;
    });
    int units = 0;
    for (size_t c : candidates) {
      if (units >= leaf->min_units) break;
      used[c] = true;
      leaf_used[leaf].push_back(c);
      units += infos[c].units;
    }
  }

  // Assemble per-leaf progress and combinator satisfaction.
  RequirementReport report;
  std::map<const RequirementNode*, bool> leaf_ok;
  for (const RequirementNode* leaf : leaves) {
    LeafProgress progress;
    progress.name = leaf->name;
    for (size_t c : leaf_used[leaf]) progress.used.push_back(infos[c].id);
    switch (leaf->kind) {
      case RequirementNode::Kind::kCourse:
        progress.need = 1;
        progress.have = leaf_used[leaf].size();
        break;
      case RequirementNode::Kind::kNOfSet:
        progress.need = leaf->need_n;
        progress.have = leaf_used[leaf].size();
        break;
      case RequirementNode::Kind::kUnitsFromDept: {
        progress.need = static_cast<size_t>(leaf->min_units);
        int units = 0;
        for (size_t c : leaf_used[leaf]) units += infos[c].units;
        progress.have = static_cast<size_t>(units);
        break;
      }
      default:
        break;
    }
    progress.satisfied = progress.have >= progress.need;
    leaf_ok[leaf] = progress.satisfied;
    report.leaves.push_back(std::move(progress));
  }
  report.satisfied = Satisfied(root, leaf_ok);
  return report;
}

Status RequirementTracker::DefineProgram(DeptId major, ReqPtr root) {
  if (root == nullptr) {
    return Status::InvalidArgument("null requirement tree");
  }
  programs_[major] = std::move(root);
  return Status::OK();
}

bool RequirementTracker::HasProgram(DeptId major) const {
  return programs_.count(major) > 0;
}

Result<RequirementReport> RequirementTracker::CheckStudent(
    DeptId major, UserId student, MatchStrategy strategy) const {
  auto it = programs_.find(major);
  if (it == programs_.end()) {
    return Status::NotFound("no program defined for department " +
                            std::to_string(major));
  }
  CR_ASSIGN_OR_RETURN(const Table* enrollment, db_->GetTable("Enrollment"));
  CR_ASSIGN_OR_RETURN(size_t course_ci,
                      enrollment->schema().ColumnIndex("CourseID"));
  std::vector<CourseId> taken;
  for (RowId rid : enrollment->LookupEqual({"SuID"}, {Value(student)})) {
    const Row* row = enrollment->Get(rid);
    if (row != nullptr) taken.push_back((*row)[course_ci].AsInt());
  }
  return Check(*it->second, taken, strategy);
}

}  // namespace courserank::planner
