#ifndef COURSERANK_PLANNER_SCHEDULER_H_
#define COURSERANK_PLANNER_SCHEDULER_H_

#include <vector>

#include "common/status.h"
#include "planner/plan.h"
#include "planner/prereq.h"

namespace courserank::planner {

/// Input to the schedule suggester: courses the student wants, and the
/// window of terms to place them into.
struct ScheduleRequest {
  std::vector<CourseId> wanted;
  Term first_term;
  int num_terms = 4;
  int max_units_per_term = 18;
};

/// One placement decision.
struct Placement {
  CourseId course = 0;
  Term term;
};

/// Result of a suggestion run: the placements found and the courses that
/// could not be placed (with a reason string per course).
struct ScheduleSuggestion {
  std::vector<Placement> placements;
  struct Unplaced {
    CourseId course = 0;
    std::string reason;
  };
  std::vector<Unplaced> unplaced;
};

/// Greedy schedule suggester behind the Planner's "shop for classes ...
/// organize your classes into a quarterly schedule" flow (§2): places the
/// wanted courses into the earliest feasible term, honoring
///
///  * offerings — a course only lands in a term with a section;
///  * time conflicts — the chosen section must not clash with sections
///    already placed in that term (section choice is part of the search);
///  * prerequisites — a course is placed only after all prereqs are either
///    already completed or placed in a strictly earlier term (wanted
///    prereqs are ordered automatically via topological sort);
///  * unit caps per term.
///
/// `completed` is the set of courses the student already finished.
Result<ScheduleSuggestion> SuggestSchedule(
    const storage::Database& db, const PrereqGraph& prereqs,
    const std::set<CourseId>& completed, const ScheduleRequest& request);

}  // namespace courserank::planner

#endif  // COURSERANK_PLANNER_SCHEDULER_H_
