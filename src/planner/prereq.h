#ifndef COURSERANK_PLANNER_PREREQ_H_
#define COURSERANK_PLANNER_PREREQ_H_

#include <set>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "social/model.h"
#include "storage/database.h"

namespace courserank::planner {

using social::CourseId;

/// The prerequisite DAG over courses (paper §2.1: "Courses, unlike books or
/// videos, have to be taken in a certain order"). Built from the Prereqs
/// table; validates acyclicity and answers eligibility queries for the
/// planner.
class PrereqGraph {
 public:
  /// Loads all edges. Fails with FailedPrecondition when the graph has a
  /// cycle (corrupt catalog data).
  static Result<PrereqGraph> Build(const storage::Database& db);

  /// Direct prerequisites of `course` (empty when none).
  const std::vector<CourseId>& PrereqsOf(CourseId course) const;

  /// All transitive prerequisites.
  std::set<CourseId> TransitivePrereqs(CourseId course) const;

  /// Prerequisites of `course` missing from `completed`.
  std::vector<CourseId> MissingPrereqs(
      CourseId course, const std::set<CourseId>& completed) const;

  /// Courses in a valid "prerequisites first" order (topological).
  std::vector<CourseId> TopologicalOrder() const;

  size_t num_edges() const { return num_edges_; }

 private:
  PrereqGraph() = default;

  Status CheckAcyclic() const;

  std::unordered_map<CourseId, std::vector<CourseId>> prereqs_;
  std::vector<CourseId> nodes_;  // every course id seen in any edge
  size_t num_edges_ = 0;
  static const std::vector<CourseId> kEmpty;
};

}  // namespace courserank::planner

#endif  // COURSERANK_PLANNER_PREREQ_H_
