#include "planner/plan.h"

#include <algorithm>
#include <set>

#include "common/strings.h"
#include "storage/value.h"

namespace courserank::planner {

using storage::Row;
using storage::RowId;
using storage::Table;
using storage::Value;

const char* PlanIssueKindName(PlanIssue::Kind kind) {
  switch (kind) {
    case PlanIssue::Kind::kDuplicate:
      return "duplicate";
    case PlanIssue::Kind::kNotOffered:
      return "not-offered";
    case PlanIssue::Kind::kTimeConflict:
      return "time-conflict";
    case PlanIssue::Kind::kMissingPrereq:
      return "missing-prereq";
    case PlanIssue::Kind::kOverload:
      return "overload";
  }
  return "?";
}

namespace {

/// Meeting slots of all sections of (course, term); empty when not offered.
Result<std::vector<TimeSlot>> SectionsOf(const storage::Database& db,
                                         CourseId course, Term term) {
  CR_ASSIGN_OR_RETURN(const Table* offerings, db.GetTable("Offerings"));
  const auto& schema = offerings->schema();
  CR_ASSIGN_OR_RETURN(size_t days_ci, schema.ColumnIndex("Days"));
  CR_ASSIGN_OR_RETURN(size_t start_ci, schema.ColumnIndex("StartMin"));
  CR_ASSIGN_OR_RETURN(size_t end_ci, schema.ColumnIndex("EndMin"));
  std::vector<TimeSlot> slots;
  for (RowId rid : offerings->LookupEqual(
           {"CourseID", "Year", "Term"},
           {Value(course), Value(static_cast<int64_t>(term.year)),
            Value(std::string(QuarterName(term.quarter)))})) {
    const Row* row = offerings->Get(rid);
    if (row == nullptr) continue;
    TimeSlot slot;
    if (!(*row)[days_ci].is_null()) {
      slot.days = static_cast<uint8_t>((*row)[days_ci].AsInt());
      slot.start_min = static_cast<int16_t>((*row)[start_ci].AsInt());
      slot.end_min = static_cast<int16_t>((*row)[end_ci].AsInt());
    }
    slots.push_back(slot);
  }
  return slots;
}

Result<int> UnitsOf(const storage::Database& db, CourseId course) {
  CR_ASSIGN_OR_RETURN(const Table* courses, db.GetTable("Courses"));
  CR_ASSIGN_OR_RETURN(RowId rid, courses->FindByPrimaryKey({Value(course)}));
  CR_ASSIGN_OR_RETURN(size_t units_ci, courses->schema().ColumnIndex("Units"));
  return static_cast<int>(courses->Get(rid)->at(units_ci).AsInt());
}

}  // namespace

Result<AcademicPlan> AcademicPlan::FromDatabase(const storage::Database& db,
                                                UserId student) {
  AcademicPlan plan(student);

  CR_ASSIGN_OR_RETURN(const Table* enrollment, db.GetTable("Enrollment"));
  {
    const auto& schema = enrollment->schema();
    CR_ASSIGN_OR_RETURN(size_t course_ci, schema.ColumnIndex("CourseID"));
    CR_ASSIGN_OR_RETURN(size_t year_ci, schema.ColumnIndex("Year"));
    CR_ASSIGN_OR_RETURN(size_t term_ci, schema.ColumnIndex("Term"));
    CR_ASSIGN_OR_RETURN(size_t grade_ci, schema.ColumnIndex("Grade"));
    for (RowId rid : enrollment->LookupEqual({"SuID"}, {Value(student)})) {
      const Row* row = enrollment->Get(rid);
      if (row == nullptr) continue;
      auto quarter = ParseQuarter((*row)[term_ci].AsString());
      if (!quarter.ok()) return quarter.status();
      Term term{static_cast<int>((*row)[year_ci].AsInt()), *quarter};
      std::optional<double> grade;
      if (!(*row)[grade_ci].is_null()) grade = (*row)[grade_ci].AsDouble();
      CR_RETURN_IF_ERROR(plan.Add((*row)[course_ci].AsInt(), term, grade));
    }
  }

  CR_ASSIGN_OR_RETURN(const Table* plans, db.GetTable("Plans"));
  {
    const auto& schema = plans->schema();
    CR_ASSIGN_OR_RETURN(size_t course_ci, schema.ColumnIndex("CourseID"));
    CR_ASSIGN_OR_RETURN(size_t year_ci, schema.ColumnIndex("Year"));
    CR_ASSIGN_OR_RETURN(size_t term_ci, schema.ColumnIndex("Term"));
    for (RowId rid : plans->LookupEqual({"SuID"}, {Value(student)})) {
      const Row* row = plans->Get(rid);
      if (row == nullptr) continue;
      auto quarter = ParseQuarter((*row)[term_ci].AsString());
      if (!quarter.ok()) return quarter.status();
      Term term{static_cast<int>((*row)[year_ci].AsInt()), *quarter};
      // A course both taken and planned keeps only the taken entry.
      Status added = plan.Add((*row)[course_ci].AsInt(), term, std::nullopt);
      if (!added.ok() && added.code() != StatusCode::kAlreadyExists) {
        return added;
      }
    }
  }
  return plan;
}

Status AcademicPlan::Add(CourseId course, Term term,
                         std::optional<double> grade) {
  for (const PlanEntry& e : entries_) {
    if (e.course == course && e.term == term) {
      return Status::AlreadyExists("course " + std::to_string(course) +
                                   " already planned in " + term.ToString());
    }
  }
  entries_.push_back({course, term, grade});
  return Status::OK();
}

Status AcademicPlan::Remove(CourseId course, Term term) {
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if (it->course == course && it->term == term) {
      entries_.erase(it);
      return Status::OK();
    }
  }
  return Status::NotFound("course " + std::to_string(course) +
                          " not planned in " + term.ToString());
}

std::vector<PlanEntry> AcademicPlan::EntriesIn(Term term) const {
  std::vector<PlanEntry> out;
  for (const PlanEntry& e : entries_) {
    if (e.term == term) out.push_back(e);
  }
  return out;
}

std::vector<Term> AcademicPlan::Terms() const {
  std::set<int> seen;
  std::vector<Term> out;
  for (const PlanEntry& e : entries_) {
    if (seen.insert(e.term.Index()).second) out.push_back(e.term);
  }
  std::sort(out.begin(), out.end());
  return out;
}

Result<std::vector<PlanIssue>> AcademicPlan::Validate(
    const storage::Database& db, const PrereqGraph& prereqs,
    PlanOptions options) const {
  std::vector<PlanIssue> issues;

  // Duplicates across terms (retakes are allowed within reason, but taking
  // the same course in two terms of one plan is flagged).
  std::map<CourseId, size_t> counts;
  for (const PlanEntry& e : entries_) ++counts[e.course];
  for (const auto& [course, n] : counts) {
    if (n > 1) {
      issues.push_back({PlanIssue::Kind::kDuplicate, course, Term{},
                        "course " + std::to_string(course) + " appears " +
                            std::to_string(n) + " times"});
    }
  }

  for (Term term : Terms()) {
    std::vector<PlanEntry> in_term = EntriesIn(term);

    // Offerings + conflicts.
    std::vector<std::vector<TimeSlot>> sections(in_term.size());
    for (size_t i = 0; i < in_term.size(); ++i) {
      CR_ASSIGN_OR_RETURN(sections[i],
                          SectionsOf(db, in_term[i].course, term));
      if (sections[i].empty()) {
        issues.push_back({PlanIssue::Kind::kNotOffered, in_term[i].course,
                          term,
                          "course " + std::to_string(in_term[i].course) +
                              " is not offered in " + term.ToString()});
      }
    }
    for (size_t i = 0; i < in_term.size(); ++i) {
      for (size_t j = i + 1; j < in_term.size(); ++j) {
        if (sections[i].empty() || sections[j].empty()) continue;
        bool any_compatible = false;
        for (const TimeSlot& a : sections[i]) {
          for (const TimeSlot& b : sections[j]) {
            if (!a.ConflictsWith(b)) {
              any_compatible = true;
              break;
            }
          }
          if (any_compatible) break;
        }
        if (!any_compatible) {
          issues.push_back(
              {PlanIssue::Kind::kTimeConflict, in_term[i].course, term,
               "courses " + std::to_string(in_term[i].course) + " and " +
                   std::to_string(in_term[j].course) +
                   " conflict in every section pairing in " +
                   term.ToString()});
        }
      }
    }

    // Unit load.
    int units = 0;
    for (const PlanEntry& e : in_term) {
      CR_ASSIGN_OR_RETURN(int u, UnitsOf(db, e.course));
      units += u;
    }
    if (units > options.max_units_per_term) {
      issues.push_back({PlanIssue::Kind::kOverload, 0, term,
                        term.ToString() + " has " + std::to_string(units) +
                            " units (cap " +
                            std::to_string(options.max_units_per_term) +
                            ")"});
    }

    // Prerequisites: completed in strictly earlier terms.
    std::set<CourseId> completed_before;
    for (const PlanEntry& e : entries_) {
      if (e.term < term) completed_before.insert(e.course);
    }
    for (const PlanEntry& e : in_term) {
      for (CourseId missing :
           prereqs.MissingPrereqs(e.course, completed_before)) {
        issues.push_back(
            {PlanIssue::Kind::kMissingPrereq, e.course, term,
             "course " + std::to_string(e.course) + " requires " +
                 std::to_string(missing) + " before " + term.ToString()});
      }
    }
  }
  return issues;
}

std::optional<double> AcademicPlan::TermGpa(Term term) const {
  double sum = 0.0;
  int n = 0;
  for (const PlanEntry& e : entries_) {
    if (e.term == term && e.grade.has_value()) {
      sum += *e.grade;
      ++n;
    }
  }
  if (n == 0) return std::nullopt;
  return sum / n;
}

std::optional<double> AcademicPlan::CumulativeGpa() const {
  double sum = 0.0;
  int n = 0;
  for (const PlanEntry& e : entries_) {
    if (e.grade.has_value()) {
      sum += *e.grade;
      ++n;
    }
  }
  if (n == 0) return std::nullopt;
  return sum / n;
}

Result<int> AcademicPlan::TermUnits(const storage::Database& db,
                                    Term term) const {
  int units = 0;
  for (const PlanEntry& e : EntriesIn(term)) {
    CR_ASSIGN_OR_RETURN(int u, UnitsOf(db, e.course));
    units += u;
  }
  return units;
}

Result<std::string> AcademicPlan::ToString(const storage::Database& db) const {
  CR_ASSIGN_OR_RETURN(const Table* courses, db.GetTable("Courses"));
  CR_ASSIGN_OR_RETURN(size_t title_ci, courses->schema().ColumnIndex("Title"));
  std::string out;
  for (Term term : Terms()) {
    out += term.ToString() + ":";
    for (const PlanEntry& e : EntriesIn(term)) {
      auto rid = courses->FindByPrimaryKey({Value(e.course)});
      std::string title = rid.ok()
                              ? courses->Get(*rid)->at(title_ci).AsString()
                              : ("#" + std::to_string(e.course));
      out += "\n  " + title;
      if (e.grade.has_value()) {
        out += " [" + std::string(social::GradeLetter(*e.grade)) + "]";
      }
    }
    CR_ASSIGN_OR_RETURN(int units, TermUnits(db, term));
    out += "\n  (" + std::to_string(units) + " units";
    if (auto gpa = TermGpa(term); gpa.has_value()) {
      out += ", GPA " + FormatDouble(*gpa, 2);
    }
    out += ")\n";
  }
  if (auto gpa = CumulativeGpa(); gpa.has_value()) {
    out += "Cumulative GPA: " + FormatDouble(*gpa, 2) + "\n";
  }
  return out;
}

}  // namespace courserank::planner
