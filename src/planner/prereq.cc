#include "planner/prereq.h"

#include <algorithm>

#include "storage/value.h"

namespace courserank::planner {

using storage::Row;
using storage::RowId;
using storage::Table;
using storage::Value;

const std::vector<CourseId> PrereqGraph::kEmpty;

Result<PrereqGraph> PrereqGraph::Build(const storage::Database& db) {
  PrereqGraph graph;
  CR_ASSIGN_OR_RETURN(const Table* prereqs, db.GetTable("Prereqs"));
  CR_ASSIGN_OR_RETURN(size_t c_ci, prereqs->schema().ColumnIndex("CourseID"));
  CR_ASSIGN_OR_RETURN(size_t p_ci, prereqs->schema().ColumnIndex("PrereqID"));
  std::set<CourseId> nodes;
  prereqs->Scan([&](RowId, const Row& row) {
    CourseId course = row[c_ci].AsInt();
    CourseId prereq = row[p_ci].AsInt();
    graph.prereqs_[course].push_back(prereq);
    ++graph.num_edges_;
    nodes.insert(course);
    nodes.insert(prereq);
  });
  graph.nodes_.assign(nodes.begin(), nodes.end());
  CR_RETURN_IF_ERROR(graph.CheckAcyclic());
  return graph;
}

const std::vector<CourseId>& PrereqGraph::PrereqsOf(CourseId course) const {
  auto it = prereqs_.find(course);
  return it == prereqs_.end() ? kEmpty : it->second;
}

std::set<CourseId> PrereqGraph::TransitivePrereqs(CourseId course) const {
  std::set<CourseId> out;
  std::vector<CourseId> stack{course};
  while (!stack.empty()) {
    CourseId cur = stack.back();
    stack.pop_back();
    for (CourseId p : PrereqsOf(cur)) {
      if (out.insert(p).second) stack.push_back(p);
    }
  }
  return out;
}

std::vector<CourseId> PrereqGraph::MissingPrereqs(
    CourseId course, const std::set<CourseId>& completed) const {
  std::vector<CourseId> missing;
  for (CourseId p : PrereqsOf(course)) {
    if (completed.count(p) == 0) missing.push_back(p);
  }
  return missing;
}

std::vector<CourseId> PrereqGraph::TopologicalOrder() const {
  // Kahn's algorithm over the "prereq -> course" direction.
  std::unordered_map<CourseId, size_t> indegree;
  for (CourseId n : nodes_) indegree[n] = 0;
  for (const auto& [course, prereqs] : prereqs_) {
    indegree[course] += prereqs.size();
  }
  std::vector<CourseId> ready;
  for (const auto& [node, deg] : indegree) {
    if (deg == 0) ready.push_back(node);
  }
  std::sort(ready.begin(), ready.end());

  // Reverse adjacency: prereq -> dependents.
  std::unordered_map<CourseId, std::vector<CourseId>> dependents;
  for (const auto& [course, prereqs] : prereqs_) {
    for (CourseId p : prereqs) dependents[p].push_back(course);
  }

  std::vector<CourseId> order;
  while (!ready.empty()) {
    CourseId cur = ready.back();
    ready.pop_back();
    order.push_back(cur);
    auto it = dependents.find(cur);
    if (it == dependents.end()) continue;
    for (CourseId dep : it->second) {
      if (--indegree[dep] == 0) ready.push_back(dep);
    }
  }
  return order;
}

Status PrereqGraph::CheckAcyclic() const {
  if (TopologicalOrder().size() != nodes_.size()) {
    return Status::FailedPrecondition(
        "prerequisite graph contains a cycle");
  }
  return Status::OK();
}

}  // namespace courserank::planner
