#ifndef COURSERANK_PLANNER_PLAN_H_
#define COURSERANK_PLANNER_PLAN_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/term.h"
#include "planner/prereq.h"
#include "social/model.h"
#include "storage/database.h"

namespace courserank::planner {

using social::UserId;

/// One entry of an academic plan: a course in a term, with the grade once
/// taken (grades come from the student's self-reported Enrollment rows;
/// future terms have no grade).
struct PlanEntry {
  CourseId course = 0;
  Term term;
  std::optional<double> grade;
};

/// A problem the validator found with a plan.
struct PlanIssue {
  enum class Kind {
    kDuplicate,       ///< same course twice
    kNotOffered,      ///< no offering in that term
    kTimeConflict,    ///< all section pairs of two courses overlap
    kMissingPrereq,   ///< prerequisite not completed in an earlier term
    kOverload,        ///< term unit load above the cap
  };
  Kind kind;
  CourseId course = 0;
  Term term;
  std::string message;
};

const char* PlanIssueKindName(PlanIssue::Kind kind);

struct PlanOptions {
  int max_units_per_term = 20;
};

/// The paper's Planner (§2.1): organize classes into quarterly schedules /
/// a four-year plan, check schedule conflicts and prerequisites, and
/// compute grade-point averages per quarter and cumulatively.
class AcademicPlan {
 public:
  explicit AcademicPlan(UserId student) : student_(student) {}

  UserId student() const { return student_; }

  /// Merges the student's Enrollment (taken, with grades) and Plans
  /// (future) rows into one plan.
  static Result<AcademicPlan> FromDatabase(const storage::Database& db,
                                           UserId student);

  /// Adds an entry; duplicates of (course, term) are rejected.
  Status Add(CourseId course, Term term,
             std::optional<double> grade = std::nullopt);
  Status Remove(CourseId course, Term term);

  const std::vector<PlanEntry>& entries() const { return entries_; }

  /// Entries of one term.
  std::vector<PlanEntry> EntriesIn(Term term) const;

  /// Distinct terms present, ascending.
  std::vector<Term> Terms() const;

  /// Validates the whole plan against the catalog: offerings, time
  /// conflicts (a conflict is reported when *every* pair of sections of the
  /// two courses overlaps), prerequisites (must be completed in a strictly
  /// earlier term), duplicates, and unit overloads.
  Result<std::vector<PlanIssue>> Validate(const storage::Database& db,
                                          const PrereqGraph& prereqs,
                                          PlanOptions options = {}) const;

  /// GPA over graded entries of one term; nullopt when none are graded.
  std::optional<double> TermGpa(Term term) const;

  /// GPA over all graded entries.
  std::optional<double> CumulativeGpa() const;

  /// Total units planned in a term (needs the catalog for unit counts).
  Result<int> TermUnits(const storage::Database& db, Term term) const;

  /// Renders the plan one term per line with unit and GPA summaries.
  Result<std::string> ToString(const storage::Database& db) const;

 private:
  UserId student_;
  std::vector<PlanEntry> entries_;
};

}  // namespace courserank::planner

#endif  // COURSERANK_PLANNER_PLAN_H_
