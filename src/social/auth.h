#ifndef COURSERANK_SOCIAL_AUTH_H_
#define COURSERANK_SOCIAL_AUTH_H_

#include <string>

#include "common/status.h"
#include "social/model.h"
#include "storage/database.h"

namespace courserank::social {

/// Role-based access control over the Users table. CourseRank validates
/// every user against official university ids (paper §2.1 "Restricted
/// Access"): there are no anonymous users, no fake ids, and each id carries
/// exactly one role.
class AuthService {
 public:
  explicit AuthService(storage::Database* db) : db_(db) {}

  /// Registers a user in the directory; ids are assigned by the caller
  /// (they come from the university registry, not from us).
  Status RegisterUser(UserId id, const std::string& name, Role role);

  /// True when the id is in the directory.
  bool IsMember(UserId id) const;

  /// Role of a member; NotFound for non-members.
  Result<Role> RoleOf(UserId id) const;

  /// OK only when the user exists and has `role` — the standard guard for
  /// constituency-specific features.
  Status Require(UserId id, Role role) const;

  /// OK when the user exists (any role).
  Status RequireMember(UserId id) const;

  /// Display name; NotFound for non-members.
  Result<std::string> NameOf(UserId id) const;

 private:
  storage::Database* db_;
};

}  // namespace courserank::social

#endif  // COURSERANK_SOCIAL_AUTH_H_
