#ifndef COURSERANK_SOCIAL_SITE_H_
#define COURSERANK_SOCIAL_SITE_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/term.h"
#include "core/flexrecs_engine.h"
#include "query/sql_engine.h"
#include "search/inverted_index.h"
#include "search/query_cache.h"
#include "search/searcher.h"
#include "social/auth.h"
#include "social/comments.h"
#include "social/forum.h"
#include "social/grades.h"
#include "social/incentives.h"
#include "social/model.h"
#include "social/privacy.h"
#include "storage/database.h"

namespace courserank::social {

/// The CourseRank system façade (paper Fig. 2): owns the database with the
/// canonical schema, role-based auth, incentives, the search index, and the
/// FlexRecs engine with the default strategies. Every user-facing action is
/// permission-checked against the caller's constituency.
class CourseRankSite {
 public:
  /// Builds an empty site with the schema installed and the default
  /// recommendation strategies registered.
  static Result<std::unique_ptr<CourseRankSite>> Create();

  CourseRankSite(const CourseRankSite&) = delete;
  CourseRankSite& operator=(const CourseRankSite&) = delete;

  // ---- subsystem access ----
  storage::Database& db() { return db_; }
  const storage::Database& db() const { return db_; }
  AuthService& auth() { return auth_; }
  IncentiveEngine& incentives() { return incentives_; }
  query::SqlEngine& sql() { return sql_; }
  flexrecs::FlexRecsEngine& flexrecs() { return flexrecs_; }
  PrivacyGuard& privacy() { return privacy_; }
  CommentRanker& comment_ranker() { return comment_ranker_; }
  QuestionRouter& router() { return router_; }

  // ---- official data (registrar / staff feeds) ----
  Result<DeptId> AddDepartment(const std::string& code,
                               const std::string& name,
                               const std::string& school);
  Result<CourseId> AddCourse(DeptId dept, int number, const std::string& title,
                             const std::string& description, int units);
  Status AddPrereq(CourseId course, CourseId prereq);
  Result<int64_t> AddOffering(CourseId course, int year, Quarter quarter,
                              const std::string& instructor, TimeSlot slot);
  /// Official per-course grade release: `letter` bucket had `count`
  /// students.
  Status LoadOfficialGrades(CourseId course, const std::string& letter,
                            int64_t count);

  // ---- directory ----
  Status RegisterStudent(UserId id, const std::string& name,
                         const std::string& class_year,
                         std::optional<DeptId> major);
  Status RegisterFaculty(UserId id, const std::string& name);
  Status RegisterStaff(UserId id, const std::string& name);

  // ---- student actions (role-checked) ----
  Status ReportCourseTaken(UserId student, CourseId course, int year,
                           Quarter quarter, std::optional<double> grade);
  /// Upserts the student's rating (one rating per student per course).
  Status RateCourse(UserId student, CourseId course, double score, int day);
  Result<CommentId> AddComment(UserId student, CourseId course,
                               const std::string& text, int day);
  /// One vote per voter per comment; voting on your own comment is denied.
  Status VoteComment(UserId voter, CommentId comment, bool helpful);
  Result<QuestionId> AskQuestion(UserId user, const std::string& text, int day,
                                 std::optional<DeptId> dept);
  Result<AnswerId> AnswerQuestion(UserId user, QuestionId question,
                                  const std::string& text, int day);
  /// Only the asker may accept; awards the best-answer bonus.
  Status AcceptAnswer(UserId asker, AnswerId answer, int day);
  Result<int64_t> ReportTextbook(UserId student, CourseId course,
                                 const std::string& title, int day);
  Status PlanCourse(UserId student, CourseId course, int year,
                    Quarter quarter);
  Status UnplanCourse(UserId student, CourseId course, int year,
                      Quarter quarter);
  Status SetSharePlans(UserId student, bool share);

  /// Staff seed the forum with FAQ question/answer pairs (paper §2.2).
  Status SeedFaqs(UserId staff, const std::vector<FaqSeed>& seeds, int day);

  // ---- faculty actions ----
  Status UpdateCourseDescription(UserId faculty, CourseId course,
                                 const std::string& description);

  // ---- privacy-guarded views ----
  Result<std::vector<UserId>> WhoIsPlanning(UserId viewer, CourseId course);
  Result<GradeDistribution> GradeDistributionFor(UserId viewer,
                                                 CourseId course);

  // ---- search & clouds ----
  /// Builds (or rebuilds) the course search index over the current data.
  Status BuildSearchIndex();
  bool HasSearchIndex() const { return index_ != nullptr; }
  const search::InvertedIndex& index() const { return *index_; }
  /// Searcher over the built index; FailedPrecondition before Build.
  Result<search::Searcher> MakeSearcher(search::SearchOptions opts = {}) const;
  /// Searcher with an epoch-validated result cache in front: repeated and
  /// refined queries hit cache until a comment/description write refreshes
  /// the index. FailedPrecondition before Build.
  Result<std::unique_ptr<search::CachingSearcher>> MakeCachingSearcher(
      search::SearchOptions opts = {}, size_t cache_capacity = 256) const;

  // ---- course descriptor (Fig. 1 left) ----

  /// Everything the course page shows, assembled with the viewer's
  /// permissions applied.
  struct CourseDescriptor {
    CourseId course = 0;
    std::string dept_code;
    int number = 0;
    std::string title;
    std::string description;
    int units = 0;
    std::vector<std::string> instructors;      ///< distinct, sorted
    size_t num_ratings = 0;
    std::optional<double> avg_rating;          ///< nullopt when unrated
    std::vector<ScoredComment> comments;       ///< trust-ranked
    /// Grade distribution, or the PermissionDenied reason when suppressed.
    Result<GradeDistribution> grades = GradeDistribution{};
    std::vector<std::string> textbooks;
    std::vector<UserId> planners;              ///< SharePlans honored
    std::vector<CourseId> prerequisites;

    std::string ToString() const;
  };

  /// Builds the descriptor page for `viewer` (must be a member).
  Result<CourseDescriptor> GetCourseDescriptor(UserId viewer,
                                               CourseId course);

  // ---- deployment statistics (paper §2 census) ----
  struct Stats {
    size_t departments = 0;
    size_t courses = 0;
    size_t offerings = 0;
    size_t students = 0;
    size_t faculty = 0;
    size_t staff = 0;
    size_t active_students = 0;  ///< students with ≥1 contribution
    size_t enrollments = 0;
    size_t ratings = 0;
    size_t comments = 0;
    size_t questions = 0;
    size_t answers = 0;
    size_t textbooks = 0;
    size_t plans = 0;
  };
  Result<Stats> GetStats() const;

 private:
  CourseRankSite();

  Status RequireCourse(CourseId course) const;
  Status RecomputeGpa(UserId student);
  /// Incrementally refreshes one course entity in the search index after a
  /// content change (comment added, description edited).
  void MaybeRefreshIndex(CourseId course);

  storage::Database db_;
  AuthService auth_;
  IncentiveEngine incentives_;
  query::SqlEngine sql_;
  flexrecs::FlexRecsEngine flexrecs_;
  PrivacyGuard privacy_;
  CommentRanker comment_ranker_;
  QuestionRouter router_;
  std::unique_ptr<search::InvertedIndex> index_;
};

}  // namespace courserank::social

#endif  // COURSERANK_SOCIAL_SITE_H_
