#ifndef COURSERANK_SOCIAL_MODEL_H_
#define COURSERANK_SOCIAL_MODEL_H_

#include <cstdint>
#include <string>

#include "common/status.h"

namespace courserank::social {

/// CourseRank's three constituencies (paper §2.1): the system knows which
/// one a user belongs to because access is authenticated against the
/// university directory.
enum class Role {
  kStudent,
  kFaculty,
  kStaff,
};

const char* RoleName(Role role);
Result<Role> ParseRole(const std::string& s);

/// Surrogate ids (all drawn from Database sequences).
using UserId = int64_t;
using CourseId = int64_t;
using DeptId = int64_t;
using CommentId = int64_t;
using QuestionId = int64_t;
using AnswerId = int64_t;

/// Letter-grade buckets in descending order of points.
/// Index into kGradeLetters / kGradePoints.
inline constexpr const char* kGradeLetters[] = {
    "A+", "A", "A-", "B+", "B", "B-", "C+", "C", "C-", "D+", "D", "F"};
inline constexpr double kGradePoints[] = {4.3, 4.0, 3.7, 3.3, 3.0, 2.7,
                                          2.3, 2.0, 1.7, 1.3, 1.0, 0.0};
inline constexpr size_t kNumGradeBuckets = 12;

/// Bucket index for a numeric grade (nearest bucket at or below; grades
/// above 4.3 clamp to A+).
size_t GradeBucket(double points);

/// Letter for a numeric grade.
const char* GradeLetter(double points);

/// Points for a letter; InvalidArgument on unknown letters.
Result<double> GradePointsFor(const std::string& letter);

}  // namespace courserank::social

#endif  // COURSERANK_SOCIAL_MODEL_H_
