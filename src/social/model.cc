#include "social/model.h"

#include "common/strings.h"

namespace courserank::social {

const char* RoleName(Role role) {
  switch (role) {
    case Role::kStudent:
      return "student";
    case Role::kFaculty:
      return "faculty";
    case Role::kStaff:
      return "staff";
  }
  return "?";
}

Result<Role> ParseRole(const std::string& s) {
  for (Role r : {Role::kStudent, Role::kFaculty, Role::kStaff}) {
    if (EqualsIgnoreCase(s, RoleName(r))) return r;
  }
  return Status::InvalidArgument("unknown role '" + s + "'");
}

size_t GradeBucket(double points) {
  for (size_t i = 0; i < kNumGradeBuckets; ++i) {
    // Midpoint thresholds between adjacent buckets.
    if (i + 1 == kNumGradeBuckets) return i;
    double threshold = (kGradePoints[i] + kGradePoints[i + 1]) / 2.0;
    if (points >= threshold) return i;
  }
  return kNumGradeBuckets - 1;
}

const char* GradeLetter(double points) {
  return kGradeLetters[GradeBucket(points)];
}

Result<double> GradePointsFor(const std::string& letter) {
  for (size_t i = 0; i < kNumGradeBuckets; ++i) {
    if (EqualsIgnoreCase(letter, kGradeLetters[i])) return kGradePoints[i];
  }
  return Status::InvalidArgument("unknown grade letter '" + letter + "'");
}

}  // namespace courserank::social
