#include "social/incentives.h"

#include <algorithm>

#include "common/strings.h"
#include "storage/value.h"

namespace courserank::social {

using storage::Row;
using storage::RowId;
using storage::Table;
using storage::Value;

IncentiveScheme IncentiveScheme::YahooAnswers() {
  IncentiveScheme s;
  s.rules["login"] = {1, 1};
  s.rules["answer"] = {2, 0};
  s.rules["best_answer"] = {10, 0};
  s.rules["vote_best"] = {1, 0};
  return s;
}

IncentiveScheme IncentiveScheme::CourseRank() {
  IncentiveScheme s;
  s.rules["comment"] = {3, 5};
  s.rules["rating"] = {1, 10};
  s.rules["answer"] = {2, 5};
  s.rules["best_answer"] = {5, 0};
  s.rules["report_textbook"] = {2, 5};
  return s;
}

Result<int> IncentiveEngine::Record(UserId user, const std::string& action,
                                    int day) {
  auto it = scheme_.rules.find(action);
  if (it == scheme_.rules.end()) return 0;
  const IncentiveScheme::ActionRule& rule = it->second;
  if (rule.daily_cap > 0) {
    CR_ASSIGN_OR_RETURN(int today, CountToday(user, action, day));
    if (today >= rule.daily_cap) return 0;
  }
  CR_ASSIGN_OR_RETURN(Table * ledger, db_->GetTable("PointsLedger"));
  (void)ledger;
  int64_t entry = db_->NextSequence("points_entry");
  CR_RETURN_IF_ERROR(db_->Insert("PointsLedger",
                                 {Value(entry), Value(user), Value(action),
                                  Value(rule.points), Value(day)})
                         .status());
  return rule.points;
}

Result<int64_t> IncentiveEngine::PointsOf(UserId user) const {
  CR_ASSIGN_OR_RETURN(const Table* ledger, db_->GetTable("PointsLedger"));
  CR_ASSIGN_OR_RETURN(size_t pts_ci, ledger->schema().ColumnIndex("Points"));
  int64_t total = 0;
  for (RowId id : ledger->LookupEqual({"UserID"}, {Value(user)})) {
    const Row* row = ledger->Get(id);
    if (row != nullptr) total += (*row)[pts_ci].AsInt();
  }
  return total;
}

Result<std::vector<std::pair<UserId, int64_t>>> IncentiveEngine::Leaderboard(
    size_t n) const {
  CR_ASSIGN_OR_RETURN(const Table* ledger, db_->GetTable("PointsLedger"));
  CR_ASSIGN_OR_RETURN(size_t user_ci, ledger->schema().ColumnIndex("UserID"));
  CR_ASSIGN_OR_RETURN(size_t pts_ci, ledger->schema().ColumnIndex("Points"));
  std::map<UserId, int64_t> totals;
  ledger->Scan([&](RowId, const Row& row) {
    totals[row[user_ci].AsInt()] += row[pts_ci].AsInt();
  });
  std::vector<std::pair<UserId, int64_t>> out(totals.begin(), totals.end());
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  if (out.size() > n) out.resize(n);
  return out;
}

Result<int> IncentiveEngine::CountToday(UserId user, const std::string& action,
                                        int day) const {
  CR_ASSIGN_OR_RETURN(const Table* ledger, db_->GetTable("PointsLedger"));
  CR_ASSIGN_OR_RETURN(size_t act_ci, ledger->schema().ColumnIndex("Action"));
  CR_ASSIGN_OR_RETURN(size_t day_ci, ledger->schema().ColumnIndex("Day"));
  int count = 0;
  for (RowId id : ledger->LookupEqual({"UserID"}, {Value(user)})) {
    const Row* row = ledger->Get(id);
    if (row == nullptr) continue;
    if ((*row)[day_ci].AsInt() == day &&
        EqualsIgnoreCase((*row)[act_ci].AsString(), action)) {
      ++count;
    }
  }
  return count;
}

}  // namespace courserank::social
