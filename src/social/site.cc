#include "social/site.h"

#include <algorithm>
#include <set>

#include "common/strings.h"
#include "core/strategies.h"
#include "search/entity.h"
#include "social/schema.h"
#include "storage/value.h"

namespace courserank::social {

using storage::Row;
using storage::RowId;
using storage::Table;
using storage::Value;

CourseRankSite::CourseRankSite()
    : auth_(&db_),
      incentives_(&db_, IncentiveScheme::CourseRank()),
      sql_(&db_),
      flexrecs_(&db_),
      privacy_(&db_),
      comment_ranker_(&db_),
      router_(&db_) {}

Result<std::unique_ptr<CourseRankSite>> CourseRankSite::Create() {
  auto site = std::unique_ptr<CourseRankSite>(new CourseRankSite());
  CR_RETURN_IF_ERROR(CreateCourseRankSchema(&site->db_));
  CR_RETURN_IF_ERROR(
      flexrecs::strategies::RegisterDefaults(site->flexrecs_));
  return site;
}

Status CourseRankSite::RequireCourse(CourseId course) const {
  CR_ASSIGN_OR_RETURN(const Table* courses, db_.GetTable("Courses"));
  return courses->FindByPrimaryKey({Value(course)}).status();
}

// ---- official data -------------------------------------------------------

Result<DeptId> CourseRankSite::AddDepartment(const std::string& code,
                                             const std::string& name,
                                             const std::string& school) {
  DeptId id = db_.NextSequence("dept");
  CR_RETURN_IF_ERROR(
      db_.Insert("Departments",
                 {Value(id), Value(code), Value(name), Value(school)})
          .status());
  return id;
}

Result<CourseId> CourseRankSite::AddCourse(DeptId dept, int number,
                                           const std::string& title,
                                           const std::string& description,
                                           int units) {
  CourseId id = db_.NextSequence("course");
  CR_RETURN_IF_ERROR(db_.Insert("Courses", {Value(id), Value(dept),
                                            Value(number), Value(title),
                                            Value(description), Value(units)})
                         .status());
  return id;
}

Status CourseRankSite::AddPrereq(CourseId course, CourseId prereq) {
  if (course == prereq) {
    return Status::InvalidArgument("a course cannot require itself");
  }
  return db_.Insert("Prereqs", {Value(course), Value(prereq)}).status();
}

Result<int64_t> CourseRankSite::AddOffering(CourseId course, int year,
                                            Quarter quarter,
                                            const std::string& instructor,
                                            TimeSlot slot) {
  int64_t id = db_.NextSequence("offering");
  CR_RETURN_IF_ERROR(
      db_.Insert("Offerings",
                 {Value(id), Value(course), Value(year),
                  Value(std::string(QuarterName(quarter))), Value(instructor),
                  Value(static_cast<int64_t>(slot.days)),
                  Value(static_cast<int64_t>(slot.start_min)),
                  Value(static_cast<int64_t>(slot.end_min))})
          .status());
  return id;
}

Status CourseRankSite::LoadOfficialGrades(CourseId course,
                                          const std::string& letter,
                                          int64_t count) {
  CR_RETURN_IF_ERROR(GradePointsFor(letter).status());  // validates letter
  return db_
      .Insert("OfficialGrades", {Value(course), Value(letter), Value(count)})
      .status();
}

// ---- directory ------------------------------------------------------------

Status CourseRankSite::RegisterStudent(UserId id, const std::string& name,
                                       const std::string& class_year,
                                       std::optional<DeptId> major) {
  CR_RETURN_IF_ERROR(auth_.RegisterUser(id, name, Role::kStudent));
  return db_
      .Insert("Students",
              {Value(id), Value(name), Value(class_year),
               major.has_value() ? Value(*major) : Value::Null(),
               Value::Null(), Value(true)})
      .status();
}

Status CourseRankSite::RegisterFaculty(UserId id, const std::string& name) {
  return auth_.RegisterUser(id, name, Role::kFaculty);
}

Status CourseRankSite::RegisterStaff(UserId id, const std::string& name) {
  return auth_.RegisterUser(id, name, Role::kStaff);
}

// ---- student actions -------------------------------------------------------

Status CourseRankSite::ReportCourseTaken(UserId student, CourseId course,
                                         int year, Quarter quarter,
                                         std::optional<double> grade) {
  CR_RETURN_IF_ERROR(auth_.Require(student, Role::kStudent));
  CR_RETURN_IF_ERROR(RequireCourse(course));
  CR_RETURN_IF_ERROR(
      db_.Insert("Enrollment",
                 {Value(student), Value(course), Value(year),
                  Value(std::string(QuarterName(quarter))),
                  grade.has_value() ? Value(*grade) : Value::Null()})
          .status());
  return RecomputeGpa(student);
}

Status CourseRankSite::RateCourse(UserId student, CourseId course,
                                  double score, int day) {
  CR_RETURN_IF_ERROR(auth_.Require(student, Role::kStudent));
  CR_RETURN_IF_ERROR(RequireCourse(course));
  if (score < 1.0 || score > 5.0) {
    return Status::InvalidArgument("rating must be in [1, 5]");
  }
  CR_ASSIGN_OR_RETURN(Table * ratings, db_.GetTable("Ratings"));
  auto existing = ratings->FindByPrimaryKey({Value(student), Value(course)});
  if (existing.ok()) {
    return ratings->Update(
        *existing, {Value(student), Value(course), Value(score), Value(day)});
  }
  CR_RETURN_IF_ERROR(
      db_.Insert("Ratings",
                 {Value(student), Value(course), Value(score), Value(day)})
          .status());
  return incentives_.Record(student, "rating", day).status();
}

Result<CommentId> CourseRankSite::AddComment(UserId student, CourseId course,
                                             const std::string& text,
                                             int day) {
  CR_RETURN_IF_ERROR(auth_.Require(student, Role::kStudent));
  CR_RETURN_IF_ERROR(RequireCourse(course));
  if (text.empty()) {
    return Status::InvalidArgument("comment text must not be empty");
  }
  CommentId id = db_.NextSequence("comment");
  CR_RETURN_IF_ERROR(
      db_.Insert("Comments", {Value(id), Value(student), Value(course),
                              Value(text), Value(day), Value(int64_t{0}),
                              Value(int64_t{0})})
          .status());
  CR_RETURN_IF_ERROR(incentives_.Record(student, "comment", day).status());
  MaybeRefreshIndex(course);
  return id;
}

Status CourseRankSite::VoteComment(UserId voter, CommentId comment,
                                   bool helpful) {
  CR_RETURN_IF_ERROR(auth_.RequireMember(voter));
  CR_ASSIGN_OR_RETURN(Table * comments, db_.GetTable("Comments"));
  CR_ASSIGN_OR_RETURN(RowId rid, comments->FindByPrimaryKey({Value(comment)}));
  const Row* row = comments->Get(rid);
  CR_ASSIGN_OR_RETURN(size_t su_ci, comments->schema().ColumnIndex("SuID"));
  if ((*row)[su_ci].AsInt() == voter) {
    return Status::PermissionDenied("cannot vote on your own comment");
  }
  // One vote per voter per comment, enforced by the CommentVotes PK.
  CR_RETURN_IF_ERROR(
      db_.Insert("CommentVotes",
                 {Value(comment), Value(voter), Value(helpful)})
          .status());
  CR_ASSIGN_OR_RETURN(size_t col, comments->schema().ColumnIndex(
                                      helpful ? "Helpful" : "Unhelpful"));
  return comments->UpdateColumn(rid, col,
                                Value((*row)[col].AsInt() + 1));
}

Result<QuestionId> CourseRankSite::AskQuestion(UserId user,
                                               const std::string& text,
                                               int day,
                                               std::optional<DeptId> dept) {
  CR_RETURN_IF_ERROR(auth_.RequireMember(user));
  QuestionId id = db_.NextSequence("question");
  CR_RETURN_IF_ERROR(
      db_.Insert("Questions",
                 {Value(id), Value(user),
                  dept.has_value() ? Value(*dept) : Value::Null(),
                  Value(text), Value(day), Value(false)})
          .status());
  return id;
}

Result<AnswerId> CourseRankSite::AnswerQuestion(UserId user,
                                                QuestionId question,
                                                const std::string& text,
                                                int day) {
  CR_RETURN_IF_ERROR(auth_.RequireMember(user));
  CR_ASSIGN_OR_RETURN(Table * questions, db_.GetTable("Questions"));
  CR_RETURN_IF_ERROR(
      questions->FindByPrimaryKey({Value(question)}).status());
  AnswerId id = db_.NextSequence("answer");
  CR_RETURN_IF_ERROR(
      db_.Insert("Answers", {Value(id), Value(question), Value(user),
                             Value(text), Value(day), Value(false)})
          .status());
  CR_RETURN_IF_ERROR(incentives_.Record(user, "answer", day).status());
  return id;
}

Status CourseRankSite::AcceptAnswer(UserId asker, AnswerId answer, int day) {
  CR_ASSIGN_OR_RETURN(Table * answers, db_.GetTable("Answers"));
  CR_ASSIGN_OR_RETURN(RowId arow_id,
                      answers->FindByPrimaryKey({Value(answer)}));
  const Row* arow = answers->Get(arow_id);
  CR_ASSIGN_OR_RETURN(size_t q_ci, answers->schema().ColumnIndex("QuestionID"));
  CR_ASSIGN_OR_RETURN(size_t u_ci, answers->schema().ColumnIndex("UserID"));
  CR_ASSIGN_OR_RETURN(size_t acc_ci, answers->schema().ColumnIndex("Accepted"));

  CR_ASSIGN_OR_RETURN(Table * questions, db_.GetTable("Questions"));
  CR_ASSIGN_OR_RETURN(RowId qrow_id,
                      questions->FindByPrimaryKey({(*arow)[q_ci]}));
  const Row* qrow = questions->Get(qrow_id);
  CR_ASSIGN_OR_RETURN(size_t asker_ci,
                      questions->schema().ColumnIndex("UserID"));
  if ((*qrow)[asker_ci].AsInt() != asker) {
    return Status::PermissionDenied("only the asker may accept an answer");
  }
  UserId answerer = (*arow)[u_ci].AsInt();
  CR_RETURN_IF_ERROR(answers->UpdateColumn(arow_id, acc_ci, Value(true)));
  return incentives_.Record(answerer, "best_answer", day).status();
}

Result<int64_t> CourseRankSite::ReportTextbook(UserId student, CourseId course,
                                               const std::string& title,
                                               int day) {
  CR_RETURN_IF_ERROR(auth_.Require(student, Role::kStudent));
  CR_RETURN_IF_ERROR(RequireCourse(course));
  int64_t id = db_.NextSequence("book");
  CR_RETURN_IF_ERROR(
      db_.Insert("Textbooks",
                 {Value(id), Value(course), Value(title), Value(student)})
          .status());
  CR_RETURN_IF_ERROR(
      incentives_.Record(student, "report_textbook", day).status());
  return id;
}

Status CourseRankSite::PlanCourse(UserId student, CourseId course, int year,
                                  Quarter quarter) {
  CR_RETURN_IF_ERROR(auth_.Require(student, Role::kStudent));
  CR_RETURN_IF_ERROR(RequireCourse(course));
  return db_
      .Insert("Plans", {Value(student), Value(course), Value(year),
                        Value(std::string(QuarterName(quarter)))})
      .status();
}

Status CourseRankSite::UnplanCourse(UserId student, CourseId course, int year,
                                    Quarter quarter) {
  CR_ASSIGN_OR_RETURN(Table * plans, db_.GetTable("Plans"));
  CR_ASSIGN_OR_RETURN(
      RowId rid,
      plans->FindByPrimaryKey({Value(student), Value(course), Value(year),
                               Value(std::string(QuarterName(quarter)))}));
  return plans->Delete(rid);
}

Status CourseRankSite::SetSharePlans(UserId student, bool share) {
  CR_RETURN_IF_ERROR(auth_.Require(student, Role::kStudent));
  CR_ASSIGN_OR_RETURN(Table * students, db_.GetTable("Students"));
  CR_ASSIGN_OR_RETURN(RowId rid, students->FindByPrimaryKey({Value(student)}));
  CR_ASSIGN_OR_RETURN(size_t ci, students->schema().ColumnIndex("SharePlans"));
  return students->UpdateColumn(rid, ci, Value(share));
}

Status CourseRankSite::SeedFaqs(UserId staff, const std::vector<FaqSeed>& seeds,
                                int day) {
  CR_RETURN_IF_ERROR(auth_.Require(staff, Role::kStaff));
  for (const FaqSeed& seed : seeds) {
    QuestionId qid = db_.NextSequence("question");
    CR_RETURN_IF_ERROR(
        db_.Insert("Questions", {Value(qid), Value(staff), Value::Null(),
                                 Value(seed.question), Value(day),
                                 Value(true)})
            .status());
    AnswerId aid = db_.NextSequence("answer");
    CR_RETURN_IF_ERROR(
        db_.Insert("Answers", {Value(aid), Value(qid), Value(staff),
                               Value(seed.answer), Value(day), Value(true)})
            .status());
  }
  return Status::OK();
}

// ---- faculty ---------------------------------------------------------------

Status CourseRankSite::UpdateCourseDescription(UserId faculty, CourseId course,
                                               const std::string& description) {
  CR_RETURN_IF_ERROR(auth_.Require(faculty, Role::kFaculty));
  CR_ASSIGN_OR_RETURN(Table * courses, db_.GetTable("Courses"));
  CR_ASSIGN_OR_RETURN(RowId rid, courses->FindByPrimaryKey({Value(course)}));
  CR_ASSIGN_OR_RETURN(size_t ci,
                      courses->schema().ColumnIndex("Description"));
  CR_RETURN_IF_ERROR(courses->UpdateColumn(rid, ci, Value(description)));
  MaybeRefreshIndex(course);
  return Status::OK();
}

// ---- privacy-guarded views ---------------------------------------------------

Result<std::vector<UserId>> CourseRankSite::WhoIsPlanning(UserId viewer,
                                                          CourseId course) {
  CR_RETURN_IF_ERROR(auth_.RequireMember(viewer));
  return privacy_.VisiblePlanners(course);
}

Result<GradeDistribution> CourseRankSite::GradeDistributionFor(
    UserId viewer, CourseId course) {
  CR_RETURN_IF_ERROR(auth_.RequireMember(viewer));
  return privacy_.VisibleDistribution(course);
}

// ---- search ------------------------------------------------------------------

Status CourseRankSite::BuildSearchIndex() {
  auto index =
      std::make_unique<search::InvertedIndex>(search::MakeCourseEntity());
  CR_RETURN_IF_ERROR(index->Build(db_));
  index_ = std::move(index);
  return Status::OK();
}

Result<search::Searcher> CourseRankSite::MakeSearcher(
    search::SearchOptions opts) const {
  if (index_ == nullptr) {
    return Status::FailedPrecondition("BuildSearchIndex not called");
  }
  return search::Searcher(index_.get(), opts);
}

Result<std::unique_ptr<search::CachingSearcher>>
CourseRankSite::MakeCachingSearcher(search::SearchOptions opts,
                                    size_t cache_capacity) const {
  if (index_ == nullptr) {
    return Status::FailedPrecondition("BuildSearchIndex not called");
  }
  // Writes that touch indexed content go through MaybeRefreshIndex, which
  // bumps the index epoch — cached results invalidate automatically.
  return std::make_unique<search::CachingSearcher>(index_.get(), opts,
                                                   cache_capacity);
}

void CourseRankSite::MaybeRefreshIndex(CourseId course) {
  if (index_ == nullptr) return;
  // Refresh failures leave the stale entry in place; content converges on
  // the next rebuild.
  (void)index_->Refresh(db_, Value(course));
}

// ---- course descriptor -------------------------------------------------------

std::string CourseRankSite::CourseDescriptor::ToString() const {
  std::string out = dept_code + " " + std::to_string(number) + ": " + title +
                    " (" + std::to_string(units) + " units)\n";
  out += description + "\n";
  if (!instructors.empty()) {
    out += "instructors: " + Join(instructors, ", ") + "\n";
  }
  if (avg_rating.has_value()) {
    out += "rating: " + FormatDouble(*avg_rating, 2) + "/5 from " +
           std::to_string(num_ratings) + " ratings\n";
  } else {
    out += "rating: not yet rated\n";
  }
  if (grades.ok()) {
    out += "grades: " + grades->ToString() + "\n";
  } else {
    out += "grades: " + grades.status().message() + "\n";
  }
  if (!textbooks.empty()) out += "textbooks: " + Join(textbooks, "; ") + "\n";
  out += std::to_string(planners.size()) + " student(s) planning to take "
         "this course\n";
  for (const ScoredComment& comment : comments) {
    out += "  [" + FormatDouble(comment.trust, 2) + "] " + comment.text +
           "\n";
  }
  return out;
}

Result<CourseRankSite::CourseDescriptor> CourseRankSite::GetCourseDescriptor(
    UserId viewer, CourseId course) {
  CR_RETURN_IF_ERROR(auth_.RequireMember(viewer));
  CR_ASSIGN_OR_RETURN(const Table* courses, db_.GetTable("Courses"));
  CR_ASSIGN_OR_RETURN(RowId rid, courses->FindByPrimaryKey({Value(course)}));
  const Row& row = *courses->Get(rid);

  CourseDescriptor page;
  page.course = course;
  page.number = static_cast<int>(row[2].AsInt());
  page.title = row[3].AsString();
  page.description = row[4].is_null() ? std::string() : row[4].AsString();
  page.units = static_cast<int>(row[5].AsInt());

  CR_ASSIGN_OR_RETURN(const Table* departments, db_.GetTable("Departments"));
  CR_ASSIGN_OR_RETURN(RowId drow, departments->FindByPrimaryKey({row[1]}));
  page.dept_code = departments->Get(drow)->at(1).AsString();

  // Distinct instructors across offerings.
  CR_ASSIGN_OR_RETURN(const Table* offerings, db_.GetTable("Offerings"));
  CR_ASSIGN_OR_RETURN(size_t instr_ci,
                      offerings->schema().ColumnIndex("Instructor"));
  std::set<std::string> instructors;
  for (RowId oid : offerings->LookupEqual({"CourseID"}, {Value(course)})) {
    const Row* orow = offerings->Get(oid);
    if (orow != nullptr && !(*orow)[instr_ci].is_null()) {
      instructors.insert((*orow)[instr_ci].AsString());
    }
  }
  page.instructors.assign(instructors.begin(), instructors.end());

  // Rating summary.
  CR_ASSIGN_OR_RETURN(const Table* ratings, db_.GetTable("Ratings"));
  CR_ASSIGN_OR_RETURN(size_t score_ci, ratings->schema().ColumnIndex("Score"));
  double sum = 0.0;
  for (RowId rrid : ratings->LookupEqual({"CourseID"}, {Value(course)})) {
    const Row* rrow = ratings->Get(rrid);
    if (rrow == nullptr) continue;
    sum += (*rrow)[score_ci].AsDouble();
    ++page.num_ratings;
  }
  if (page.num_ratings > 0) {
    page.avg_rating = sum / static_cast<double>(page.num_ratings);
  }

  CR_ASSIGN_OR_RETURN(page.comments,
                      comment_ranker_.RankedForCourse(course));
  page.grades = privacy_.VisibleDistribution(course);
  if (!page.grades.ok() &&
      page.grades.status().code() != StatusCode::kPermissionDenied) {
    return page.grades.status();  // only suppression is expected
  }

  CR_ASSIGN_OR_RETURN(const Table* textbooks, db_.GetTable("Textbooks"));
  CR_ASSIGN_OR_RETURN(size_t book_ci, textbooks->schema().ColumnIndex("Title"));
  std::set<std::string> books;
  for (RowId bid : textbooks->LookupEqual({"CourseID"}, {Value(course)})) {
    const Row* brow = textbooks->Get(bid);
    if (brow != nullptr) books.insert((*brow)[book_ci].AsString());
  }
  page.textbooks.assign(books.begin(), books.end());

  CR_ASSIGN_OR_RETURN(page.planners, privacy_.VisiblePlanners(course));

  CR_ASSIGN_OR_RETURN(const Table* prereqs, db_.GetTable("Prereqs"));
  CR_ASSIGN_OR_RETURN(size_t pre_ci, prereqs->schema().ColumnIndex("PrereqID"));
  for (RowId pid : prereqs->LookupEqual({"CourseID"}, {Value(course)})) {
    const Row* prow = prereqs->Get(pid);
    if (prow != nullptr) page.prerequisites.push_back((*prow)[pre_ci].AsInt());
  }
  std::sort(page.prerequisites.begin(), page.prerequisites.end());
  return page;
}

// ---- stats -------------------------------------------------------------------

Status CourseRankSite::RecomputeGpa(UserId student) {
  CR_ASSIGN_OR_RETURN(Table * enrollment, db_.GetTable("Enrollment"));
  CR_ASSIGN_OR_RETURN(size_t grade_ci,
                      enrollment->schema().ColumnIndex("Grade"));
  double sum = 0.0;
  int64_t n = 0;
  for (RowId rid : enrollment->LookupEqual({"SuID"}, {Value(student)})) {
    const Row* row = enrollment->Get(rid);
    if (row == nullptr || (*row)[grade_ci].is_null()) continue;
    sum += (*row)[grade_ci].AsDouble();
    ++n;
  }
  CR_ASSIGN_OR_RETURN(Table * students, db_.GetTable("Students"));
  CR_ASSIGN_OR_RETURN(RowId rid, students->FindByPrimaryKey({Value(student)}));
  CR_ASSIGN_OR_RETURN(size_t gpa_ci, students->schema().ColumnIndex("GPA"));
  return students->UpdateColumn(
      rid, gpa_ci,
      n == 0 ? Value::Null() : Value(sum / static_cast<double>(n)));
}

Result<CourseRankSite::Stats> CourseRankSite::GetStats() const {
  Stats stats;
  auto size_of = [&](const char* table) -> size_t {
    const Table* t = db_.FindTable(table);
    return t == nullptr ? 0 : t->size();
  };
  stats.departments = size_of("Departments");
  stats.courses = size_of("Courses");
  stats.offerings = size_of("Offerings");
  stats.students = size_of("Students");
  stats.enrollments = size_of("Enrollment");
  stats.ratings = size_of("Ratings");
  stats.comments = size_of("Comments");
  stats.questions = size_of("Questions");
  stats.answers = size_of("Answers");
  stats.textbooks = size_of("Textbooks");
  stats.plans = size_of("Plans");

  CR_ASSIGN_OR_RETURN(const Table* users, db_.GetTable("Users"));
  CR_ASSIGN_OR_RETURN(size_t role_ci, users->schema().ColumnIndex("Role"));
  users->Scan([&](RowId, const Row& row) {
    const std::string& role = row[role_ci].AsString();
    if (role == "faculty") ++stats.faculty;
    else if (role == "staff") ++stats.staff;
  });

  // Active students: contributed at least one rating, comment, enrollment,
  // plan, or textbook report.
  std::set<int64_t> active;
  for (const char* table : {"Ratings", "Comments", "Enrollment", "Plans"}) {
    const Table* t = db_.FindTable(table);
    if (t == nullptr) continue;
    auto su_ci = t->schema().FindColumn("SuID");
    if (!su_ci.has_value()) continue;
    t->Scan([&](RowId, const Row& row) {
      active.insert(row[*su_ci].AsInt());
    });
  }
  stats.active_students = active.size();
  return stats;
}

}  // namespace courserank::social
