#ifndef COURSERANK_SOCIAL_INCENTIVES_H_
#define COURSERANK_SOCIAL_INCENTIVES_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "social/model.h"
#include "storage/database.h"

namespace courserank::social {

/// A configurable point scheme in the style of Yahoo! Answers (paper §2.2
/// quotes its values: best answer 10, daily login 1, vote-for-best 1). The
/// paper's lesson is that such schemes are gameable; the engine therefore
/// supports per-action daily caps and records every award in a ledger so
/// gaming patterns are auditable.
struct IncentiveScheme {
  struct ActionRule {
    int points = 0;
    /// Max times this action earns points per user per day (0 = no cap).
    int daily_cap = 0;
  };
  std::map<std::string, ActionRule> rules;

  /// Yahoo! Answers-style scheme from the paper: login 1/day, answer 2,
  /// best answer 10, vote on best answer 1.
  static IncentiveScheme YahooAnswers();

  /// CourseRank's implicit scheme: contributions earn modest points,
  /// tool usage (planning) earns nothing — the tool itself is the incentive
  /// (paper: "the planner ... is also a sticky feature").
  static IncentiveScheme CourseRank();
};

/// Awards points per the active scheme and answers leaderboard queries.
class IncentiveEngine {
 public:
  IncentiveEngine(storage::Database* db, IncentiveScheme scheme)
      : db_(db), scheme_(std::move(scheme)) {}

  const IncentiveScheme& scheme() const { return scheme_; }

  /// Awards points for `action` on `day` if the scheme has a rule and the
  /// daily cap is not exhausted. Returns the points awarded (0 when capped
  /// or unknown action).
  Result<int> Record(UserId user, const std::string& action, int day);

  /// Total points of a user.
  Result<int64_t> PointsOf(UserId user) const;

  /// Top-n users by points, descending.
  Result<std::vector<std::pair<UserId, int64_t>>> Leaderboard(size_t n) const;

  /// Number of times `action` earned points for `user` on `day`.
  Result<int> CountToday(UserId user, const std::string& action,
                         int day) const;

 private:
  storage::Database* db_;
  IncentiveScheme scheme_;
};

}  // namespace courserank::social

#endif  // COURSERANK_SOCIAL_INCENTIVES_H_
