#ifndef COURSERANK_SOCIAL_GRADES_H_
#define COURSERANK_SOCIAL_GRADES_H_

#include <array>
#include <string>

#include "common/status.h"
#include "social/model.h"
#include "storage/database.h"

namespace courserank::social {

/// Counts per letter-grade bucket (A+ .. F, kNumGradeBuckets entries).
struct GradeDistribution {
  std::array<int64_t, kNumGradeBuckets> counts{};

  int64_t total() const;
  bool empty() const { return total() == 0; }

  /// Probability mass of bucket i (0 when empty).
  double Fraction(size_t i) const;

  /// "A+:12 A:30 ..." with zero buckets omitted.
  std::string ToString() const;
};

/// Total-variation distance between two distributions in [0,1]:
/// (1/2) Σ |p_i - q_i|. Used to check the paper's §2.2 observation that
/// "the official Engineering grade distributions seem to be very close to
/// the corresponding self-reported ones".
double TotalVariation(const GradeDistribution& a, const GradeDistribution& b);

/// The registrar's released distribution for a course (OfficialGrades).
Result<GradeDistribution> OfficialDistribution(const storage::Database& db,
                                               CourseId course);

/// Distribution of students' self-reported grades for a course
/// (Enrollment.Grade, NULLs skipped).
Result<GradeDistribution> SelfReportedDistribution(const storage::Database& db,
                                                   CourseId course);

/// Aggregated self-reported distribution over all courses of a department.
Result<GradeDistribution> DepartmentSelfReported(const storage::Database& db,
                                                 DeptId dept);

/// Aggregated official distribution over all courses of a department.
Result<GradeDistribution> DepartmentOfficial(const storage::Database& db,
                                             DeptId dept);

}  // namespace courserank::social

#endif  // COURSERANK_SOCIAL_GRADES_H_
