#include "social/auth.h"

#include "storage/value.h"

namespace courserank::social {

using storage::Row;
using storage::Table;
using storage::Value;

Status AuthService::RegisterUser(UserId id, const std::string& name,
                                 Role role) {
  return db_
      ->Insert("Users",
               {Value(id), Value(name), Value(std::string(RoleName(role)))})
      .status();
}

bool AuthService::IsMember(UserId id) const {
  const Table* users = db_->FindTable("Users");
  if (users == nullptr) return false;
  return users->FindByPrimaryKey({Value(id)}).ok();
}

Result<Role> AuthService::RoleOf(UserId id) const {
  CR_ASSIGN_OR_RETURN(const Table* users, db_->GetTable("Users"));
  CR_ASSIGN_OR_RETURN(storage::RowId rid,
                      users->FindByPrimaryKey({Value(id)}));
  const Row* row = users->Get(rid);
  CR_ASSIGN_OR_RETURN(size_t ci, users->schema().ColumnIndex("Role"));
  return ParseRole((*row)[ci].AsString());
}

Status AuthService::Require(UserId id, Role role) const {
  auto actual = RoleOf(id);
  if (!actual.ok()) {
    return Status::PermissionDenied("user " + std::to_string(id) +
                                    " is not a member of the community");
  }
  if (*actual != role) {
    return Status::PermissionDenied(
        "user " + std::to_string(id) + " is a " + RoleName(*actual) +
        "; this action requires role " + RoleName(role));
  }
  return Status::OK();
}

Status AuthService::RequireMember(UserId id) const {
  if (!IsMember(id)) {
    return Status::PermissionDenied("user " + std::to_string(id) +
                                    " is not a member of the community");
  }
  return Status::OK();
}

Result<std::string> AuthService::NameOf(UserId id) const {
  CR_ASSIGN_OR_RETURN(const Table* users, db_->GetTable("Users"));
  CR_ASSIGN_OR_RETURN(storage::RowId rid,
                      users->FindByPrimaryKey({Value(id)}));
  CR_ASSIGN_OR_RETURN(size_t ci, users->schema().ColumnIndex("Name"));
  return users->Get(rid)->at(ci).AsString();
}

}  // namespace courserank::social
