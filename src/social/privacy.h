#ifndef COURSERANK_SOCIAL_PRIVACY_H_
#define COURSERANK_SOCIAL_PRIVACY_H_

#include <vector>

#include "common/status.h"
#include "social/grades.h"
#include "social/model.h"
#include "storage/database.h"

namespace courserank::social {

/// The privacy rules §2.2 describes:
///  * grade distributions are suppressed for tiny cohorts "since that may
///    disclose information about individual students" (k-anonymity);
///  * official distributions are released per school — only Engineering
///    agreed — so visibility is school-gated;
///  * planned courses are shared by default but students "can opt out of
///    sharing".
struct PrivacyPolicy {
  /// Minimum cohort size before any grade distribution is shown.
  int64_t min_cohort = 5;
  /// Schools whose official distributions the registrar released.
  std::vector<std::string> official_release_schools = {"Engineering"};
};

/// Enforces the policy over the database. All user-visible aggregate views
/// go through here.
class PrivacyGuard {
 public:
  PrivacyGuard(const storage::Database* db, PrivacyPolicy policy = {})
      : db_(db), policy_(std::move(policy)) {}

  const PrivacyPolicy& policy() const { return policy_; }

  /// The grade distribution a student may see for a course: the official
  /// one when the course's school released it, else the self-reported one;
  /// PermissionDenied when the visible cohort is below min_cohort.
  Result<GradeDistribution> VisibleDistribution(CourseId course) const;

  /// Whether the official distribution of this course's school is released.
  Result<bool> OfficialReleased(CourseId course) const;

  /// Students planning to take `course` whose SharePlans flag is on — the
  /// Sally-and-Bob feature with opt-out honored.
  Result<std::vector<UserId>> VisiblePlanners(CourseId course) const;

 private:
  const storage::Database* db_;
  PrivacyPolicy policy_;
};

}  // namespace courserank::social

#endif  // COURSERANK_SOCIAL_PRIVACY_H_
