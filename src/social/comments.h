#ifndef COURSERANK_SOCIAL_COMMENTS_H_
#define COURSERANK_SOCIAL_COMMENTS_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "social/model.h"
#include "storage/database.h"

namespace courserank::social {

/// One comment with its computed quality/trust score. Students "rank the
/// accuracy of each others' comments" (paper §2); the score combines
/// community votes with author standing and content signals so comment
/// lists surface trustworthy reviews first.
struct ScoredComment {
  CommentId id = 0;
  UserId author = 0;
  CourseId course = 0;
  std::string text;
  int helpful = 0;
  int unhelpful = 0;
  double trust = 0.0;
};

/// Quality knobs.
struct TrustOptions {
  /// Wilson-style smoothing pseudo-votes.
  double vote_prior = 2.0;
  /// Weight of the author's historical helpfulness across all comments.
  double author_weight = 0.3;
  /// Comments shorter than this many characters are penalized (drive-by
  /// one-liners carry little information).
  size_t min_length = 40;
  double short_penalty = 0.5;
};

/// Computes trust scores and ranked comment lists.
class CommentRanker {
 public:
  CommentRanker(const storage::Database* db, TrustOptions options = {})
      : db_(db), options_(options) {}

  /// Comments of one course, highest trust first.
  Result<std::vector<ScoredComment>> RankedForCourse(CourseId course) const;

  /// The author's historical helpfulness ratio in [0,1] (smoothed); 0.5 for
  /// authors with no voted comments.
  Result<double> AuthorReputation(UserId author) const;

  /// Trust of a single comment given its vote counts and author reputation.
  double TrustScore(int helpful, int unhelpful, double author_reputation,
                    size_t text_length) const;

 private:
  const storage::Database* db_;
  TrustOptions options_;
};

}  // namespace courserank::social

#endif  // COURSERANK_SOCIAL_COMMENTS_H_
