#include "social/privacy.h"

#include <algorithm>

#include "common/strings.h"
#include "storage/value.h"

namespace courserank::social {

using storage::Row;
using storage::RowId;
using storage::Table;
using storage::Value;

Result<bool> PrivacyGuard::OfficialReleased(CourseId course) const {
  CR_ASSIGN_OR_RETURN(const Table* courses, db_->GetTable("Courses"));
  CR_ASSIGN_OR_RETURN(RowId rid, courses->FindByPrimaryKey({Value(course)}));
  CR_ASSIGN_OR_RETURN(size_t dep_ci, courses->schema().ColumnIndex("DepID"));
  Value dep = courses->Get(rid)->at(dep_ci);

  CR_ASSIGN_OR_RETURN(const Table* departments, db_->GetTable("Departments"));
  CR_ASSIGN_OR_RETURN(RowId drow, departments->FindByPrimaryKey({dep}));
  CR_ASSIGN_OR_RETURN(size_t school_ci,
                      departments->schema().ColumnIndex("School"));
  const std::string& school = departments->Get(drow)->at(school_ci).AsString();
  for (const std::string& released : policy_.official_release_schools) {
    if (EqualsIgnoreCase(school, released)) return true;
  }
  return false;
}

Result<GradeDistribution> PrivacyGuard::VisibleDistribution(
    CourseId course) const {
  CR_ASSIGN_OR_RETURN(bool released, OfficialReleased(course));
  GradeDistribution dist;
  if (released) {
    CR_ASSIGN_OR_RETURN(dist, OfficialDistribution(*db_, course));
  }
  if (!released || dist.empty()) {
    CR_ASSIGN_OR_RETURN(dist, SelfReportedDistribution(*db_, course));
  }
  if (dist.total() < policy_.min_cohort) {
    return Status::PermissionDenied(
        "grade distribution suppressed: cohort of " +
        std::to_string(dist.total()) + " is below the minimum of " +
        std::to_string(policy_.min_cohort));
  }
  return dist;
}

Result<std::vector<UserId>> PrivacyGuard::VisiblePlanners(
    CourseId course) const {
  CR_ASSIGN_OR_RETURN(const Table* plans, db_->GetTable("Plans"));
  CR_ASSIGN_OR_RETURN(const Table* students, db_->GetTable("Students"));
  CR_ASSIGN_OR_RETURN(size_t su_ci, plans->schema().ColumnIndex("SuID"));
  CR_ASSIGN_OR_RETURN(size_t share_ci,
                      students->schema().ColumnIndex("SharePlans"));
  std::vector<UserId> out;
  for (RowId rid : plans->LookupEqual({"CourseID"}, {Value(course)})) {
    const Row* row = plans->Get(rid);
    if (row == nullptr) continue;
    UserId su = (*row)[su_ci].AsInt();
    auto srow_id = students->FindByPrimaryKey({Value(su)});
    if (!srow_id.ok()) continue;
    const Row* srow = students->Get(*srow_id);
    if (srow == nullptr || !(*srow)[share_ci].AsBool()) continue;
    out.push_back(su);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace courserank::social
