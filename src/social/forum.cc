#include "social/forum.h"

#include <algorithm>
#include <cmath>

#include "storage/value.h"

namespace courserank::social {

using storage::Row;
using storage::RowId;
using storage::Table;
using storage::Value;

Status QuestionRouter::Build() {
  profiles_.clear();
  term_profiles_.clear();

  auto absorb = [&](UserId user, const std::string& text) {
    auto& profile = profiles_[user];
    for (const text::AnalyzedToken& t : analyzer_.Analyze(text)) {
      ++profile[t.term];
    }
  };

  // Comments text.
  CR_ASSIGN_OR_RETURN(const Table* comments, db_->GetTable("Comments"));
  CR_ASSIGN_OR_RETURN(size_t c_su, comments->schema().ColumnIndex("SuID"));
  CR_ASSIGN_OR_RETURN(size_t c_text, comments->schema().ColumnIndex("Text"));
  comments->Scan([&](RowId, const Row& row) {
    absorb(row[c_su].AsInt(), row[c_text].AsString());
  });

  // Titles of taken courses.
  CR_ASSIGN_OR_RETURN(const Table* enrollment, db_->GetTable("Enrollment"));
  CR_ASSIGN_OR_RETURN(const Table* courses, db_->GetTable("Courses"));
  CR_ASSIGN_OR_RETURN(size_t e_su, enrollment->schema().ColumnIndex("SuID"));
  CR_ASSIGN_OR_RETURN(size_t e_course,
                      enrollment->schema().ColumnIndex("CourseID"));
  CR_ASSIGN_OR_RETURN(size_t crs_title,
                      courses->schema().ColumnIndex("Title"));
  enrollment->Scan([&](RowId, const Row& row) {
    auto crow_id = courses->FindByPrimaryKey({row[e_course]});
    if (!crow_id.ok()) return;
    const Row* crow = courses->Get(*crow_id);
    if (crow == nullptr) return;
    absorb(row[e_su].AsInt(), (*crow)[crs_title].AsString());
  });

  for (const auto& [user, profile] : profiles_) {
    for (const auto& [term, count] : profile) {
      ++term_profiles_[term];
    }
  }
  built_ = true;
  return Status::OK();
}

Result<std::vector<QuestionRouter::Candidate>> QuestionRouter::Route(
    const std::string& question_text, size_t k) const {
  if (!built_) {
    return Status::FailedPrecondition("QuestionRouter::Build not called");
  }
  std::vector<std::string> terms = analyzer_.AnalyzeQuery(question_text);
  double n = static_cast<double>(profiles_.size());

  std::vector<Candidate> candidates;
  for (const auto& [user, profile] : profiles_) {
    double score = 0.0;
    for (const std::string& term : terms) {
      auto it = profile.find(term);
      if (it == profile.end()) continue;
      auto df_it = term_profiles_.find(term);
      double df = df_it == term_profiles_.end()
                      ? 1.0
                      : static_cast<double>(df_it->second);
      double idf = std::log(1.0 + n / df);
      score += (1.0 + std::log(static_cast<double>(it->second))) * idf;
    }
    if (score > 0.0) candidates.push_back({user, score});
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.user < b.user;
            });
  if (candidates.size() > k) candidates.resize(k);
  return candidates;
}

std::vector<FaqSeed> DefaultFaqSeeds() {
  return {
      {"Who do I see to have my program approved?",
       "Your department's student services manager approves program sheets; "
       "bring your planner printout."},
      {"What is a good introductory class in this department for "
       "non-majors?",
       "Look for 100-level courses with high ratings and no prerequisites; "
       "the course cloud for the department is a good starting point."},
      {"How do I declare or change my major?",
       "File the declaration form with the registrar, then have the "
       "department manager confirm your requirement sheet."},
      {"Can I take a required course at another university over the "
       "summer?",
       "Transfer credit petitions go through the registrar; check with your "
       "department whether the course satisfies the specific requirement."},
      {"How many units do I need to graduate?",
       "180 units total, with at least 60 in your major program; the "
       "requirement tracker shows your remaining units."},
      {"What happens if two of my classes overlap?",
       "The planner flags schedule conflicts; you need instructor consent "
       "for overlapping lectures."},
  };
}

}  // namespace courserank::social
