#ifndef COURSERANK_SOCIAL_FORUM_H_
#define COURSERANK_SOCIAL_FORUM_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "social/model.h"
#include "storage/database.h"
#include "text/analyzer.h"

namespace courserank::social {

/// Routes forum questions "to people who are likely to be able to answer
/// them" (paper §2.2). A user's expertise profile is the analyzed text of
/// their comments plus the titles of courses they have taken; a question is
/// scored against profiles by idf-weighted term overlap.
class QuestionRouter {
 public:
  explicit QuestionRouter(const storage::Database* db) : db_(db) {}

  /// (Re)builds expertise profiles from Comments and Enrollment × Courses.
  Status Build();

  struct Candidate {
    UserId user = 0;
    double score = 0.0;
  };

  /// Top-k candidate answerers for the question text; users with no term
  /// overlap are omitted. FailedPrecondition before Build().
  Result<std::vector<Candidate>> Route(const std::string& question_text,
                                       size_t k) const;

  size_t num_profiles() const { return profiles_.size(); }

 private:
  const storage::Database* db_;
  text::Analyzer analyzer_;
  bool built_ = false;
  /// user -> term -> count.
  std::unordered_map<UserId, std::unordered_map<std::string, uint32_t>>
      profiles_;
  /// term -> number of profiles containing it (for idf).
  std::unordered_map<std::string, size_t> term_profiles_;
};

/// A frequently-asked question seeded by staff, with the department it
/// belongs to (paper: '"who do I see to have my program approved?" ...
/// developed in conjunction with department managers').
struct FaqSeed {
  std::string question;
  std::string answer;
};

/// The built-in FAQ seed list used to bootstrap the forum.
std::vector<FaqSeed> DefaultFaqSeeds();

}  // namespace courserank::social

#endif  // COURSERANK_SOCIAL_FORUM_H_
