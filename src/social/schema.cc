#include "social/schema.h"

#include "storage/schema.h"

namespace courserank::social {

using storage::Column;
using storage::Schema;
using storage::Table;
using storage::ValueType;

namespace {

constexpr ValueType kInt = ValueType::kInt;
constexpr ValueType kDouble = ValueType::kDouble;
constexpr ValueType kString = ValueType::kString;
constexpr ValueType kBool = ValueType::kBool;

}  // namespace

Status CreateCourseRankSchema(storage::Database* db) {
  CR_ASSIGN_OR_RETURN(
      Table * departments,
      db->CreateTable("Departments",
                      Schema({{"DepID", kInt, false},
                              {"Code", kString, false},
                              {"Name", kString, false},
                              {"School", kString, false}}),
                      {"DepID"}));
  CR_RETURN_IF_ERROR(
      departments->CreateHashIndex("dep_code", {"Code"}, /*unique=*/true));

  CR_ASSIGN_OR_RETURN(
      Table * courses,
      db->CreateTable("Courses",
                      Schema({{"CourseID", kInt, false},
                              {"DepID", kInt, false},
                              {"Number", kInt, false},
                              {"Title", kString, false},
                              {"Description", kString, true},
                              {"Units", kInt, false}}),
                      {"CourseID"}));
  CR_RETURN_IF_ERROR(
      courses->CreateHashIndex("course_dep", {"DepID"}, /*unique=*/false));

  CR_ASSIGN_OR_RETURN(
      Table * prereqs,
      db->CreateTable("Prereqs",
                      Schema({{"CourseID", kInt, false},
                              {"PrereqID", kInt, false}}),
                      {"CourseID", "PrereqID"}));
  CR_RETURN_IF_ERROR(
      prereqs->CreateHashIndex("prereq_course", {"CourseID"}, false));

  CR_ASSIGN_OR_RETURN(
      Table * offerings,
      db->CreateTable("Offerings",
                      Schema({{"OfferingID", kInt, false},
                              {"CourseID", kInt, false},
                              {"Year", kInt, false},
                              {"Term", kString, false},
                              {"Instructor", kString, true},
                              {"Days", kInt, true},
                              {"StartMin", kInt, true},
                              {"EndMin", kInt, true}}),
                      {"OfferingID"}));
  CR_RETURN_IF_ERROR(
      offerings->CreateHashIndex("off_course", {"CourseID"}, false));
  CR_RETURN_IF_ERROR(offerings->CreateHashIndex(
      "off_course_year", {"CourseID", "Year"}, false));
  CR_RETURN_IF_ERROR(offerings->CreateHashIndex(
      "off_course_term", {"CourseID", "Year", "Term"}, false));

  CR_RETURN_IF_ERROR(db->CreateTable("Users",
                                     Schema({{"UserID", kInt, false},
                                             {"Name", kString, false},
                                             {"Role", kString, false}}),
                                     {"UserID"})
                         .status());

  CR_RETURN_IF_ERROR(db->CreateTable("Students",
                                     Schema({{"SuID", kInt, false},
                                             {"Name", kString, false},
                                             {"Class", kString, false},
                                             {"Major", kInt, true},
                                             {"GPA", kDouble, true},
                                             {"SharePlans", kBool, false}}),
                                     {"SuID"})
                         .status());

  CR_ASSIGN_OR_RETURN(
      Table * enrollment,
      db->CreateTable("Enrollment",
                      Schema({{"SuID", kInt, false},
                              {"CourseID", kInt, false},
                              {"Year", kInt, false},
                              {"Term", kString, false},
                              {"Grade", kDouble, true}}),
                      {"SuID", "CourseID", "Year", "Term"}));
  CR_RETURN_IF_ERROR(
      enrollment->CreateHashIndex("enr_student", {"SuID"}, false));
  CR_RETURN_IF_ERROR(
      enrollment->CreateHashIndex("enr_course", {"CourseID"}, false));

  CR_ASSIGN_OR_RETURN(
      Table * official,
      db->CreateTable("OfficialGrades",
                      Schema({{"CourseID", kInt, false},
                              {"GradeBucket", kString, false},
                              {"Count", kInt, false}}),
                      {"CourseID", "GradeBucket"}));
  CR_RETURN_IF_ERROR(
      official->CreateHashIndex("official_course", {"CourseID"}, false));

  CR_ASSIGN_OR_RETURN(
      Table * ratings,
      db->CreateTable("Ratings",
                      Schema({{"SuID", kInt, false},
                              {"CourseID", kInt, false},
                              {"Score", kDouble, false},
                              {"Day", kInt, false}}),
                      {"SuID", "CourseID"}));
  CR_RETURN_IF_ERROR(
      ratings->CreateHashIndex("rat_course", {"CourseID"}, false));
  CR_RETURN_IF_ERROR(ratings->CreateHashIndex("rat_student", {"SuID"}, false));

  CR_ASSIGN_OR_RETURN(
      Table * comments,
      db->CreateTable("Comments",
                      Schema({{"CommentID", kInt, false},
                              {"SuID", kInt, false},
                              {"CourseID", kInt, false},
                              {"Text", kString, false},
                              {"Day", kInt, false},
                              {"Helpful", kInt, false},
                              {"Unhelpful", kInt, false}}),
                      {"CommentID"}));
  CR_RETURN_IF_ERROR(
      comments->CreateHashIndex("com_course", {"CourseID"}, false));
  CR_RETURN_IF_ERROR(
      comments->CreateHashIndex("com_student", {"SuID"}, false));

  CR_RETURN_IF_ERROR(db->CreateTable("CommentVotes",
                                     Schema({{"CommentID", kInt, false},
                                             {"VoterID", kInt, false},
                                             {"Helpful", kBool, false}}),
                                     {"CommentID", "VoterID"})
                         .status());

  CR_ASSIGN_OR_RETURN(
      Table * questions,
      db->CreateTable("Questions",
                      Schema({{"QuestionID", kInt, false},
                              {"UserID", kInt, false},
                              {"DepID", kInt, true},
                              {"Text", kString, false},
                              {"Day", kInt, false},
                              {"IsFaq", kBool, false}}),
                      {"QuestionID"}));
  (void)questions;

  CR_ASSIGN_OR_RETURN(
      Table * answers,
      db->CreateTable("Answers",
                      Schema({{"AnswerID", kInt, false},
                              {"QuestionID", kInt, false},
                              {"UserID", kInt, false},
                              {"Text", kString, false},
                              {"Day", kInt, false},
                              {"Accepted", kBool, false}}),
                      {"AnswerID"}));
  CR_RETURN_IF_ERROR(
      answers->CreateHashIndex("ans_question", {"QuestionID"}, false));

  CR_ASSIGN_OR_RETURN(
      Table * textbooks,
      db->CreateTable("Textbooks",
                      Schema({{"BookID", kInt, false},
                              {"CourseID", kInt, false},
                              {"Title", kString, false},
                              {"ReporterID", kInt, true}}),
                      {"BookID"}));
  CR_RETURN_IF_ERROR(
      textbooks->CreateHashIndex("book_course", {"CourseID"}, false));

  CR_ASSIGN_OR_RETURN(Table * plans,
                      db->CreateTable("Plans",
                                      Schema({{"SuID", kInt, false},
                                              {"CourseID", kInt, false},
                                              {"Year", kInt, false},
                                              {"Term", kString, false}}),
                                      {"SuID", "CourseID", "Year", "Term"}));
  CR_RETURN_IF_ERROR(plans->CreateHashIndex("plan_student", {"SuID"}, false));
  CR_RETURN_IF_ERROR(plans->CreateHashIndex("plan_course", {"CourseID"}, false));

  CR_ASSIGN_OR_RETURN(
      Table * ledger,
      db->CreateTable("PointsLedger",
                      Schema({{"EntryID", kInt, false},
                              {"UserID", kInt, false},
                              {"Action", kString, false},
                              {"Points", kInt, false},
                              {"Day", kInt, false}}),
                      {"EntryID"}));
  CR_RETURN_IF_ERROR(ledger->CreateHashIndex("pts_user", {"UserID"}, false));

  // Referential integrity.
  CR_RETURN_IF_ERROR(
      db->AddForeignKey("Courses", "DepID", "Departments", "DepID"));
  CR_RETURN_IF_ERROR(
      db->AddForeignKey("Prereqs", "CourseID", "Courses", "CourseID"));
  CR_RETURN_IF_ERROR(
      db->AddForeignKey("Prereqs", "PrereqID", "Courses", "CourseID"));
  CR_RETURN_IF_ERROR(
      db->AddForeignKey("Offerings", "CourseID", "Courses", "CourseID"));
  CR_RETURN_IF_ERROR(
      db->AddForeignKey("Students", "Major", "Departments", "DepID"));
  CR_RETURN_IF_ERROR(
      db->AddForeignKey("Students", "SuID", "Users", "UserID"));
  CR_RETURN_IF_ERROR(
      db->AddForeignKey("Enrollment", "SuID", "Students", "SuID"));
  CR_RETURN_IF_ERROR(
      db->AddForeignKey("Enrollment", "CourseID", "Courses", "CourseID"));
  CR_RETURN_IF_ERROR(
      db->AddForeignKey("OfficialGrades", "CourseID", "Courses", "CourseID"));
  CR_RETURN_IF_ERROR(
      db->AddForeignKey("Ratings", "SuID", "Students", "SuID"));
  CR_RETURN_IF_ERROR(
      db->AddForeignKey("Ratings", "CourseID", "Courses", "CourseID"));
  CR_RETURN_IF_ERROR(
      db->AddForeignKey("Comments", "SuID", "Students", "SuID"));
  CR_RETURN_IF_ERROR(
      db->AddForeignKey("Comments", "CourseID", "Courses", "CourseID"));
  CR_RETURN_IF_ERROR(
      db->AddForeignKey("CommentVotes", "CommentID", "Comments", "CommentID"));
  CR_RETURN_IF_ERROR(
      db->AddForeignKey("CommentVotes", "VoterID", "Users", "UserID"));
  CR_RETURN_IF_ERROR(
      db->AddForeignKey("Questions", "UserID", "Users", "UserID"));
  CR_RETURN_IF_ERROR(
      db->AddForeignKey("Answers", "QuestionID", "Questions", "QuestionID"));
  CR_RETURN_IF_ERROR(
      db->AddForeignKey("Answers", "UserID", "Users", "UserID"));
  CR_RETURN_IF_ERROR(
      db->AddForeignKey("Textbooks", "CourseID", "Courses", "CourseID"));
  CR_RETURN_IF_ERROR(db->AddForeignKey("Plans", "SuID", "Students", "SuID"));
  CR_RETURN_IF_ERROR(
      db->AddForeignKey("Plans", "CourseID", "Courses", "CourseID"));
  CR_RETURN_IF_ERROR(
      db->AddForeignKey("PointsLedger", "UserID", "Users", "UserID"));
  return Status::OK();
}

}  // namespace courserank::social
