#ifndef COURSERANK_SOCIAL_SCHEMA_H_
#define COURSERANK_SOCIAL_SCHEMA_H_

#include "common/status.h"
#include "storage/database.h"

namespace courserank::social {

/// Creates the canonical CourseRank schema (Fig. 2's data layer) in `db`:
///
///   Departments(DepID, Code, Name, School)
///   Courses(CourseID, DepID, Number, Title, Description, Units)
///   Prereqs(CourseID, PrereqID)
///   Offerings(OfferingID, CourseID, Year, Term, Instructor,
///             Days, StartMin, EndMin)
///   Users(UserID, Name, Role)                       -- directory
///   Students(SuID, Name, Class, Major, GPA, SharePlans)
///   Enrollment(SuID, CourseID, Year, Term, Grade)   -- self-reported
///   OfficialGrades(CourseID, GradeBucket, Count)    -- registrar release
///   Ratings(SuID, CourseID, Score, Day)
///   Comments(CommentID, SuID, CourseID, Text, Day, Helpful, Unhelpful)
///   CommentVotes(CommentID, VoterID, Helpful)
///   Questions(QuestionID, UserID, DepID, Text, Day, IsFaq)
///   Answers(AnswerID, QuestionID, UserID, Text, Day, Accepted)
///   Textbooks(BookID, CourseID, Title, ReporterID)
///   Plans(SuID, CourseID, Year, Term)
///   PointsLedger(EntryID, UserID, Action, Points, Day)
///
/// plus primary keys, the secondary hash indexes the access paths need, and
/// foreign keys. Fails if any table already exists.
Status CreateCourseRankSchema(storage::Database* db);

}  // namespace courserank::social

#endif  // COURSERANK_SOCIAL_SCHEMA_H_
