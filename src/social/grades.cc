#include "social/grades.h"

#include <cmath>

#include "storage/value.h"

namespace courserank::social {

using storage::Row;
using storage::RowId;
using storage::Table;
using storage::Value;

int64_t GradeDistribution::total() const {
  int64_t t = 0;
  for (int64_t c : counts) t += c;
  return t;
}

double GradeDistribution::Fraction(size_t i) const {
  int64_t t = total();
  if (t == 0) return 0.0;
  return static_cast<double>(counts[i]) / static_cast<double>(t);
}

std::string GradeDistribution::ToString() const {
  std::string out;
  for (size_t i = 0; i < kNumGradeBuckets; ++i) {
    if (counts[i] == 0) continue;
    if (!out.empty()) out += " ";
    out += std::string(kGradeLetters[i]) + ":" + std::to_string(counts[i]);
  }
  return out.empty() ? "(empty)" : out;
}

double TotalVariation(const GradeDistribution& a, const GradeDistribution& b) {
  double acc = 0.0;
  for (size_t i = 0; i < kNumGradeBuckets; ++i) {
    acc += std::fabs(a.Fraction(i) - b.Fraction(i));
  }
  return acc / 2.0;
}

Result<GradeDistribution> OfficialDistribution(const storage::Database& db,
                                               CourseId course) {
  CR_ASSIGN_OR_RETURN(const Table* official, db.GetTable("OfficialGrades"));
  CR_ASSIGN_OR_RETURN(size_t bucket_ci,
                      official->schema().ColumnIndex("GradeBucket"));
  CR_ASSIGN_OR_RETURN(size_t count_ci,
                      official->schema().ColumnIndex("Count"));
  GradeDistribution dist;
  for (RowId id : official->LookupEqual({"CourseID"}, {Value(course)})) {
    const Row* row = official->Get(id);
    if (row == nullptr) continue;
    auto points = GradePointsFor((*row)[bucket_ci].AsString());
    if (!points.ok()) return points.status();
    dist.counts[GradeBucket(*points)] += (*row)[count_ci].AsInt();
  }
  return dist;
}

Result<GradeDistribution> SelfReportedDistribution(const storage::Database& db,
                                                   CourseId course) {
  CR_ASSIGN_OR_RETURN(const Table* enrollment, db.GetTable("Enrollment"));
  CR_ASSIGN_OR_RETURN(size_t grade_ci,
                      enrollment->schema().ColumnIndex("Grade"));
  GradeDistribution dist;
  for (RowId id : enrollment->LookupEqual({"CourseID"}, {Value(course)})) {
    const Row* row = enrollment->Get(id);
    if (row == nullptr || (*row)[grade_ci].is_null()) continue;
    CR_ASSIGN_OR_RETURN(double points, (*row)[grade_ci].ToDouble());
    dist.counts[GradeBucket(points)] += 1;
  }
  return dist;
}

namespace {

template <typename PerCourse>
Result<GradeDistribution> AggregateOverDept(const storage::Database& db,
                                            DeptId dept,
                                            PerCourse per_course) {
  CR_ASSIGN_OR_RETURN(const Table* courses, db.GetTable("Courses"));
  CR_ASSIGN_OR_RETURN(size_t id_ci, courses->schema().ColumnIndex("CourseID"));
  GradeDistribution dist;
  for (RowId rid : courses->LookupEqual({"DepID"}, {Value(dept)})) {
    const Row* row = courses->Get(rid);
    if (row == nullptr) continue;
    CR_ASSIGN_OR_RETURN(GradeDistribution one,
                        per_course((*row)[id_ci].AsInt()));
    for (size_t i = 0; i < kNumGradeBuckets; ++i) {
      dist.counts[i] += one.counts[i];
    }
  }
  return dist;
}

}  // namespace

Result<GradeDistribution> DepartmentSelfReported(const storage::Database& db,
                                                 DeptId dept) {
  return AggregateOverDept(db, dept, [&](CourseId c) {
    return SelfReportedDistribution(db, c);
  });
}

Result<GradeDistribution> DepartmentOfficial(const storage::Database& db,
                                             DeptId dept) {
  return AggregateOverDept(
      db, dept, [&](CourseId c) { return OfficialDistribution(db, c); });
}

}  // namespace courserank::social
