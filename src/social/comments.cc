#include "social/comments.h"

#include <algorithm>

#include "storage/value.h"

namespace courserank::social {

using storage::Row;
using storage::RowId;
using storage::Table;
using storage::Value;

double CommentRanker::TrustScore(int helpful, int unhelpful,
                                 double author_reputation,
                                 size_t text_length) const {
  double votes = static_cast<double>(helpful + unhelpful);
  // Smoothed helpfulness: prior mass votes split per author reputation.
  double smoothed =
      (static_cast<double>(helpful) + options_.vote_prior * author_reputation) /
      (votes + options_.vote_prior);
  // Confidence grows with vote volume.
  double confidence = votes / (votes + options_.vote_prior);
  double base = smoothed * (0.5 + 0.5 * confidence);
  double blended = (1.0 - options_.author_weight) * base +
                   options_.author_weight * author_reputation;
  if (text_length < options_.min_length) blended *= options_.short_penalty;
  return blended;
}

Result<double> CommentRanker::AuthorReputation(UserId author) const {
  CR_ASSIGN_OR_RETURN(const Table* comments, db_->GetTable("Comments"));
  CR_ASSIGN_OR_RETURN(size_t h_ci, comments->schema().ColumnIndex("Helpful"));
  CR_ASSIGN_OR_RETURN(size_t u_ci,
                      comments->schema().ColumnIndex("Unhelpful"));
  int64_t helpful = 0;
  int64_t total = 0;
  for (RowId id : comments->LookupEqual({"SuID"}, {Value(author)})) {
    const Row* row = comments->Get(id);
    if (row == nullptr) continue;
    helpful += (*row)[h_ci].AsInt();
    total += (*row)[h_ci].AsInt() + (*row)[u_ci].AsInt();
  }
  // Laplace smoothing toward 0.5 for unknown authors.
  return (static_cast<double>(helpful) + 1.0) /
         (static_cast<double>(total) + 2.0);
}

Result<std::vector<ScoredComment>> CommentRanker::RankedForCourse(
    CourseId course) const {
  CR_ASSIGN_OR_RETURN(const Table* comments, db_->GetTable("Comments"));
  const auto& schema = comments->schema();
  CR_ASSIGN_OR_RETURN(size_t id_ci, schema.ColumnIndex("CommentID"));
  CR_ASSIGN_OR_RETURN(size_t su_ci, schema.ColumnIndex("SuID"));
  CR_ASSIGN_OR_RETURN(size_t text_ci, schema.ColumnIndex("Text"));
  CR_ASSIGN_OR_RETURN(size_t h_ci, schema.ColumnIndex("Helpful"));
  CR_ASSIGN_OR_RETURN(size_t u_ci, schema.ColumnIndex("Unhelpful"));

  std::vector<ScoredComment> out;
  for (RowId rid : comments->LookupEqual({"CourseID"}, {Value(course)})) {
    const Row* row = comments->Get(rid);
    if (row == nullptr) continue;
    ScoredComment sc;
    sc.id = (*row)[id_ci].AsInt();
    sc.author = (*row)[su_ci].AsInt();
    sc.course = course;
    sc.text = (*row)[text_ci].AsString();
    sc.helpful = static_cast<int>((*row)[h_ci].AsInt());
    sc.unhelpful = static_cast<int>((*row)[u_ci].AsInt());
    CR_ASSIGN_OR_RETURN(double rep, AuthorReputation(sc.author));
    sc.trust = TrustScore(sc.helpful, sc.unhelpful, rep, sc.text.size());
    out.push_back(std::move(sc));
  }
  std::sort(out.begin(), out.end(),
            [](const ScoredComment& a, const ScoredComment& b) {
              if (a.trust != b.trust) return a.trust > b.trust;
              return a.id < b.id;
            });
  return out;
}

}  // namespace courserank::social
