#ifndef COURSERANK_STORAGE_DATABASE_H_
#define COURSERANK_STORAGE_DATABASE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/table.h"

namespace courserank::storage {

/// Declarative foreign-key constraint: `table.column` must reference an
/// existing value of `ref_table.ref_column` (NULLs are exempt).
struct ForeignKey {
  std::string table;
  std::string column;
  std::string ref_table;
  std::string ref_column;
};

/// The catalog: owns tables, enforces foreign keys, and hands out sequence
/// values for surrogate ids.
class Database {
 public:
  Database() = default;
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  /// Creates a table; name must be unique (case-insensitive).
  Result<Table*> CreateTable(std::string name, Schema schema,
                             std::vector<std::string> primary_key = {});

  /// Table by name; NotFound when absent.
  Result<Table*> GetTable(const std::string& name);
  Result<const Table*> GetTable(const std::string& name) const;

  /// nullptr when absent — convenience for hot paths.
  Table* FindTable(const std::string& name);
  const Table* FindTable(const std::string& name) const;

  /// Names of all tables, in creation order.
  std::vector<std::string> TableNames() const;

  /// Registers a foreign key. Both endpoints must exist; the referenced
  /// column must have an index or be the PK for efficient checks (a unique
  /// hash index is created on the referenced column when missing).
  Status AddForeignKey(const std::string& table, const std::string& column,
                       const std::string& ref_table,
                       const std::string& ref_column);

  const std::vector<ForeignKey>& foreign_keys() const { return foreign_keys_; }

  /// Inserts with FK enforcement (Table::Insert alone does not know about
  /// FKs). All domain-layer writes go through this.
  Result<RowId> Insert(const std::string& table, Row row);

  /// Full referential-integrity audit across all registered FKs. Returns the
  /// first violation found, or OK.
  Status CheckIntegrity() const;

  /// Next value of a named monotone sequence, starting at 1.
  int64_t NextSequence(const std::string& name);

  /// Attaches a write-ahead log to every table (existing and future): each
  /// mutation is appended to `wal` after validation and before it is
  /// applied, so the log is always a superset of the in-memory state.
  /// Non-owning; pass nullptr to detach. Attach only after recovery —
  /// replayed mutations must not be re-logged.
  void AttachWal(WalWriter* wal);
  WalWriter* wal() const { return wal_; }

 private:
  Status CheckForeignKeysForRow(const std::string& table, const Row& row);

  std::vector<std::unique_ptr<Table>> tables_;
  std::vector<ForeignKey> foreign_keys_;
  std::unordered_map<std::string, int64_t> sequences_;
  WalWriter* wal_ = nullptr;  // not owned; see AttachWal
};

}  // namespace courserank::storage

#endif  // COURSERANK_STORAGE_DATABASE_H_
