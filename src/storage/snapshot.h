#ifndef COURSERANK_STORAGE_SNAPSHOT_H_
#define COURSERANK_STORAGE_SNAPSHOT_H_

#include <memory>
#include <string>

#include "common/status.h"
#include "storage/database.h"
#include "storage/wal.h"

namespace courserank::storage {

/// Serializes a whole Database to a directory: one CSV per table plus a
/// `<table>.rowids` sidecar (live slot ids, so reload and WAL replay see the
/// original slot layout) and a `_manifest.txt` recording schemas, primary
/// keys, secondary indexes, foreign keys, and — when a WAL is attached —
/// the last WAL sequence number the snapshot includes (`wal_lsn`).
///
/// The snapshot is crash-safe: everything is written and fsynced into a
/// sibling `<dir>.tmp` directory which is atomically renamed (exchanged)
/// into place only once complete. A failed or killed save therefore leaves
/// any pre-existing snapshot at `dir` untouched. Sequence counters are not
/// persisted (callers re-seed them from max ids when needed).
///
/// LIST-typed columns are not supported (they only occur in transient
/// relations, never in stored tables).
Status SaveDatabase(const Database& db, const std::string& dir);

/// SaveDatabase, then truncates the attached WAL (if any): the snapshot now
/// owns everything up to its recorded `wal_lsn`, so the log restarts empty.
/// The truncation happens only after the snapshot is durably in place.
Status CheckpointDatabase(Database& db, const std::string& dir);

/// Rebuilds a Database from a SaveDatabase directory: recreates tables,
/// indexes, and foreign keys, then loads rows (at their original RowIds when
/// the sidecar is present). Fails with Corruption on a malformed manifest
/// and propagates any constraint violation found while re-inserting rows.
Result<std::unique_ptr<Database>> LoadDatabase(const std::string& dir);

/// A recovered database plus what recovery found.
struct RecoveredDatabase {
  std::unique_ptr<Database> db;
  uint64_t snapshot_lsn = 0;  ///< highest LSN the snapshot already includes
  WalReplayStats replay;      ///< what the WAL tail contributed

  /// Floor to pass as WalOptions::min_next_lsn when re-opening the log
  /// after recovery: one past everything the snapshot or the replayed tail
  /// owns. Relying on the log alone is not enough — if the WAL file was
  /// lost (or its post-checkpoint LSN-floor record torn), Open would
  /// restart LSNs at 1 and the *next* recovery would skip the new appends
  /// as already-snapshotted.
  uint64_t wal_min_next_lsn() const {
    return (snapshot_lsn > replay.last_lsn ? snapshot_lsn : replay.last_lsn) +
           1;
  }
};

/// Crash recovery: loads the snapshot at `dir` — the snapshot is the schema
/// baseline, so one must exist (save one right after creating tables) —
/// then replays every committed WAL record past the snapshot's `wal_lsn`
/// from `wal_path`, stopping cleanly at a torn tail.
/// The returned database has no WAL attached; the caller re-opens the log
/// (WalWriter::Open truncates the torn tail) with
/// `WalOptions::min_next_lsn = result.wal_min_next_lsn()` and calls
/// Database::AttachWal.
Result<RecoveredDatabase> RecoverDatabase(const std::string& dir,
                                          const std::string& wal_path);

}  // namespace courserank::storage

#endif  // COURSERANK_STORAGE_SNAPSHOT_H_
