#ifndef COURSERANK_STORAGE_SNAPSHOT_H_
#define COURSERANK_STORAGE_SNAPSHOT_H_

#include <memory>
#include <string>

#include "common/status.h"
#include "storage/database.h"

namespace courserank::storage {

/// Serializes a whole Database to a directory: one CSV per table plus a
/// `_manifest.txt` recording schemas, primary keys, secondary indexes, and
/// foreign keys. The directory is created if missing; existing files are
/// overwritten. Sequence counters are not persisted (callers re-seed them
/// from max ids when needed).
///
/// LIST-typed columns are not supported (they only occur in transient
/// relations, never in stored tables).
Status SaveDatabase(const Database& db, const std::string& dir);

/// Rebuilds a Database from a SaveDatabase directory: recreates tables,
/// indexes, and foreign keys, then loads rows. Fails with Corruption on a
/// malformed manifest and propagates any constraint violation found while
/// re-inserting rows.
Result<std::unique_ptr<Database>> LoadDatabase(const std::string& dir);

}  // namespace courserank::storage

#endif  // COURSERANK_STORAGE_SNAPSHOT_H_
