#ifndef COURSERANK_STORAGE_VALUE_H_
#define COURSERANK_STORAGE_VALUE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "common/status.h"

namespace courserank::storage {

/// Runtime type tags for Value. kList holds an immutable vector of Values and
/// exists to support the FlexRecs ε-extend operator, which nests a set of
/// related tuples into a single attribute.
enum class ValueType : uint8_t {
  kNull = 0,
  kBool,
  kInt,
  kDouble,
  kString,
  kList,
};

/// Returns a stable name: "NULL", "BOOL", "INT", "DOUBLE", "STRING", "LIST".
const char* ValueTypeName(ValueType t);

/// A dynamically typed SQL value. Small, copyable; list payloads are shared
/// immutably so copies stay cheap.
class Value {
 public:
  using List = std::vector<Value>;

  /// Constructs SQL NULL.
  Value() : v_(std::monostate{}) {}
  explicit Value(bool b) : v_(b) {}
  explicit Value(int64_t i) : v_(i) {}
  explicit Value(int i) : v_(static_cast<int64_t>(i)) {}
  explicit Value(double d) : v_(d) {}
  explicit Value(std::string s) : v_(std::move(s)) {}
  explicit Value(const char* s) : v_(std::string(s)) {}
  explicit Value(List items)
      : v_(std::make_shared<const List>(std::move(items))) {}

  static Value Null() { return Value(); }

  ValueType type() const;
  bool is_null() const { return type() == ValueType::kNull; }

  /// Typed accessors. Calling the wrong accessor is a checked programming
  /// error; use type() or the As* coercions for dynamic data.
  bool AsBool() const;
  int64_t AsInt() const;
  double AsDouble() const;
  const std::string& AsString() const;
  const List& AsList() const;

  /// True for kInt or kDouble.
  bool is_numeric() const {
    ValueType t = type();
    return t == ValueType::kInt || t == ValueType::kDouble;
  }

  /// Numeric coercion: int and double widen to double; bool becomes 0/1.
  /// Fails on null, string, list.
  Result<double> ToDouble() const;

  /// Renders the value for display ("NULL", "3.5", "abc", "[1, 2]").
  std::string ToString() const;

  /// Total ordering across types (NULL < BOOL < numerics < STRING < LIST);
  /// ints and doubles compare numerically with each other, exactly (no
  /// lossy conversion to double, so values beyond 2^53 order correctly).
  /// NaN sorts below every other numeric and equal to itself, giving a
  /// transitive total order hash tables can rely on. Returns -1/0/1.
  int Compare(const Value& other) const;

  bool operator==(const Value& other) const { return Compare(other) == 0; }
  bool operator<(const Value& other) const { return Compare(other) < 0; }

  /// Hash consistent with operator== (numeric cross-type equality included):
  /// 1 and 1.0 hash identically, -0.0 hashes as 0.0, and every NaN payload
  /// hashes to one fixed value (NaN == NaN under Compare).
  size_t Hash() const;

 private:
  using ListHandle = std::shared_ptr<const List>;
  std::variant<std::monostate, bool, int64_t, double, std::string, ListHandle>
      v_;
};

/// A tuple: one Value per schema column.
using Row = std::vector<Value>;

/// Exact comparison of an int64 against a double, SQLite-style: compares in
/// integer space when the double is within int64 range (so ints beyond 2^53
/// order correctly) and never loses precision. NaN compares below every
/// integer. Returns -1/0/1 for a <,==,> b. Shared by Value::Compare and the
/// vectorized predicate kernels so row and columnar paths agree bit-for-bit.
inline int CompareInt64Double(int64_t a, double b) {
  if (b != b) return 1;  // NaN: integers sort above it
  if (b < -9223372036854775808.0) return 1;
  if (b >= 9223372036854775808.0) return -1;
  // b is in int64 range; truncation is exact, and for |b| >= 2^53 the double
  // is integral so the fraction below is exactly 0.
  int64_t t = static_cast<int64_t>(b);
  if (a != t) return a < t ? -1 : 1;
  double frac = b - static_cast<double>(t);
  return frac > 0 ? -1 : (frac < 0 ? 1 : 0);
}

/// splitmix64 finalizer: the 64-bit mixer behind Value::Hash and the flat
/// hash table's slot hashing.
inline uint64_t HashMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Hash functor for composite keys (e.g. multi-column index keys). Mixes the
/// per-cell canonical hashes through splitmix64 so low bits avalanche (the
/// open-addressing table indexes slots by the low bits).
struct RowHash {
  size_t operator()(const Row& row) const {
    uint64_t h = 0xcbf29ce484222325ULL;
    for (const Value& v : row) h = HashMix64(h ^ v.Hash());
    return static_cast<size_t>(h);
  }
};

}  // namespace courserank::storage

#endif  // COURSERANK_STORAGE_VALUE_H_
