#ifndef COURSERANK_STORAGE_VALUE_H_
#define COURSERANK_STORAGE_VALUE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "common/status.h"

namespace courserank::storage {

/// Runtime type tags for Value. kList holds an immutable vector of Values and
/// exists to support the FlexRecs ε-extend operator, which nests a set of
/// related tuples into a single attribute.
enum class ValueType : uint8_t {
  kNull = 0,
  kBool,
  kInt,
  kDouble,
  kString,
  kList,
};

/// Returns a stable name: "NULL", "BOOL", "INT", "DOUBLE", "STRING", "LIST".
const char* ValueTypeName(ValueType t);

/// A dynamically typed SQL value. Small, copyable; list payloads are shared
/// immutably so copies stay cheap.
class Value {
 public:
  using List = std::vector<Value>;

  /// Constructs SQL NULL.
  Value() : v_(std::monostate{}) {}
  explicit Value(bool b) : v_(b) {}
  explicit Value(int64_t i) : v_(i) {}
  explicit Value(int i) : v_(static_cast<int64_t>(i)) {}
  explicit Value(double d) : v_(d) {}
  explicit Value(std::string s) : v_(std::move(s)) {}
  explicit Value(const char* s) : v_(std::string(s)) {}
  explicit Value(List items)
      : v_(std::make_shared<const List>(std::move(items))) {}

  static Value Null() { return Value(); }

  ValueType type() const;
  bool is_null() const { return type() == ValueType::kNull; }

  /// Typed accessors. Calling the wrong accessor is a checked programming
  /// error; use type() or the As* coercions for dynamic data.
  bool AsBool() const;
  int64_t AsInt() const;
  double AsDouble() const;
  const std::string& AsString() const;
  const List& AsList() const;

  /// True for kInt or kDouble.
  bool is_numeric() const {
    ValueType t = type();
    return t == ValueType::kInt || t == ValueType::kDouble;
  }

  /// Numeric coercion: int and double widen to double; bool becomes 0/1.
  /// Fails on null, string, list.
  Result<double> ToDouble() const;

  /// Renders the value for display ("NULL", "3.5", "abc", "[1, 2]").
  std::string ToString() const;

  /// Total ordering across types (NULL < BOOL < numerics < STRING < LIST);
  /// ints and doubles compare numerically with each other. Returns -1/0/1.
  int Compare(const Value& other) const;

  bool operator==(const Value& other) const { return Compare(other) == 0; }
  bool operator<(const Value& other) const { return Compare(other) < 0; }

  /// Hash consistent with operator== (numeric cross-type equality included).
  size_t Hash() const;

 private:
  using ListHandle = std::shared_ptr<const List>;
  std::variant<std::monostate, bool, int64_t, double, std::string, ListHandle>
      v_;
};

/// A tuple: one Value per schema column.
using Row = std::vector<Value>;

/// Hash functor for composite keys (e.g. multi-column index keys).
struct RowHash {
  size_t operator()(const Row& row) const {
    size_t h = 0xcbf29ce484222325ULL;
    for (const Value& v : row) {
      h ^= v.Hash();
      h *= 0x100000001b3ULL;
    }
    return h;
  }
};

}  // namespace courserank::storage

#endif  // COURSERANK_STORAGE_VALUE_H_
