#ifndef COURSERANK_STORAGE_FAULT_H_
#define COURSERANK_STORAGE_FAULT_H_

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>

#include "common/status.h"

namespace courserank::storage {

/// Deterministic write-fault injector for crash-safety tests. Every durable
/// write in the storage layer (WAL appends, snapshot file writes) consults
/// the process-wide injector before touching the disk, so a test — or the
/// `COURSERANK_FAULT` environment variable — can make the Nth write fail
/// outright or stop partway through, simulating a kill or a torn write.
///
/// Once a fault fires the injector goes "dead": every later instrumented
/// write fails too, the way a crashed process never writes again. `Disarm`
/// (the test's stand-in for restarting the process) clears everything.
///
/// Env syntax, read once at first use:
///   COURSERANK_FAULT=fail:<n>             fail the n-th write (1-based)
///   COURSERANK_FAULT=truncate:<n>:<bytes> write only <bytes> of the n-th
class FaultInjector {
 public:
  enum class Kind { kNone, kFail, kTruncate };

  /// What an instrumented write site must do: write `allowed` bytes, then
  /// return an error if `fail` is set.
  struct WriteDecision {
    bool fail = false;
    size_t allowed = 0;
  };

  FaultInjector() = default;
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// The process-wide injector (never destroyed). Parses COURSERANK_FAULT
  /// on first access.
  static FaultInjector& Default();

  /// Arms a fault at the `nth` (1-based) instrumented write from now.
  /// kTruncate allows `keep_bytes` of that write through before failing.
  void Arm(Kind kind, uint64_t nth, size_t keep_bytes = 0);

  /// Clears the armed fault and the dead state; resets the write count.
  void Disarm();

  /// Consulted by write sites before writing `n` bytes.
  WriteDecision BeforeWrite(size_t n);

  /// Instrumented writes observed since the last Arm/Disarm.
  uint64_t writes_seen() const;

  /// True once a fault has fired (and until Disarm).
  bool dead() const;

 private:
  void ParseEnv(const char* spec);

  mutable std::mutex mu_;
  Kind kind_ = Kind::kNone;
  uint64_t nth_ = 0;
  size_t keep_bytes_ = 0;
  uint64_t writes_seen_ = 0;
  bool dead_ = false;
};

/// Writes `contents` to `path` through the fault injector (create/truncate),
/// optionally fsyncing before close. Used for snapshot files so an injected
/// fault can abort a save mid-way; returns Internal on a real or injected
/// failure, in which case the file may be missing or partial.
Status WriteFileWithFaults(const std::string& path, std::string_view contents,
                           bool sync);

/// Appends `contents` to the already-open descriptor `fd` through the fault
/// injector. On an injected truncation, the allowed prefix is written before
/// the error returns — exactly the torn-write shape a crash leaves behind.
Status WriteFdWithFaults(int fd, std::string_view contents,
                         const std::string& what);

/// fsyncs a directory so entries created or renamed inside it survive a
/// crash (file data fsyncs alone do not make a *new* file's directory entry
/// durable on strictly-POSIX filesystems). Not fault-instrumented: it
/// carries no payload a torn write could corrupt.
Status SyncDir(const std::string& dir);

}  // namespace courserank::storage

#endif  // COURSERANK_STORAGE_FAULT_H_
