#include "storage/schema.h"

#include "common/strings.h"

namespace courserank::storage {

Schema::Schema(std::vector<Column> columns) : columns_(std::move(columns)) {}

std::optional<size_t> Schema::FindColumn(const std::string& name) const {
  // Exact (case-insensitive) match first.
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (EqualsIgnoreCase(columns_[i].name, name)) return i;
  }
  // Unqualified lookup against qualified columns: "title" matches "c.title"
  // when unambiguous.
  std::optional<size_t> found;
  for (size_t i = 0; i < columns_.size(); ++i) {
    const std::string& cn = columns_[i].name;
    size_t dot = cn.rfind('.');
    if (dot == std::string::npos) continue;
    if (EqualsIgnoreCase(cn.substr(dot + 1), name)) {
      if (found.has_value()) return std::nullopt;  // ambiguous
      found = i;
    }
  }
  return found;
}

Result<size_t> Schema::ColumnIndex(const std::string& name) const {
  auto idx = FindColumn(name);
  if (idx.has_value()) return *idx;
  return Status::NotFound("no column '" + name + "' in schema [" +
                          ToString() + "]");
}

Status Schema::ValidateRow(const Row& row) const {
  if (row.size() != columns_.size()) {
    return Status::InvalidArgument(
        "row has " + std::to_string(row.size()) + " values, schema has " +
        std::to_string(columns_.size()) + " columns");
  }
  for (size_t i = 0; i < row.size(); ++i) {
    const Column& col = columns_[i];
    const Value& v = row[i];
    if (v.is_null()) {
      if (!col.nullable) {
        return Status::InvalidArgument("NULL in NOT NULL column '" +
                                       col.name + "'");
      }
      continue;
    }
    bool type_ok = v.type() == col.type ||
                   (col.type == ValueType::kDouble &&
                    v.type() == ValueType::kInt);
    if (!type_ok) {
      return Status::InvalidArgument(
          std::string("type mismatch in column '") + col.name + "': got " +
          ValueTypeName(v.type()) + ", want " + ValueTypeName(col.type));
    }
  }
  return Status::OK();
}

Schema Schema::WithPrefix(const std::string& alias) const {
  std::vector<Column> cols;
  cols.reserve(columns_.size());
  for (const Column& c : columns_) {
    std::string base = c.name;
    size_t dot = base.rfind('.');
    if (dot != std::string::npos) base = base.substr(dot + 1);
    cols.emplace_back(alias + "." + base, c.type, c.nullable);
  }
  return Schema(std::move(cols));
}

Schema Schema::Concat(const Schema& a, const Schema& b) {
  std::vector<Column> cols = a.columns();
  cols.insert(cols.end(), b.columns().begin(), b.columns().end());
  return Schema(std::move(cols));
}

std::string Schema::ToString() const {
  std::string out;
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) out += ", ";
    out += columns_[i].name;
    out += ":";
    out += ValueTypeName(columns_[i].type);
    if (!columns_[i].nullable) out += " NOT NULL";
  }
  return out;
}

bool Schema::operator==(const Schema& other) const {
  if (columns_.size() != other.columns_.size()) return false;
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (!EqualsIgnoreCase(columns_[i].name, other.columns_[i].name) ||
        columns_[i].type != other.columns_[i].type) {
      return false;
    }
  }
  return true;
}

}  // namespace courserank::storage
