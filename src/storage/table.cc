#include "storage/table.h"

#include <algorithm>

#include "common/logging.h"
#include "common/strings.h"
#include "obs/metrics.h"
#include "storage/wal.h"

namespace courserank::storage {

namespace {

obs::Counter& RowsScannedCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Default().GetCounter("cr_storage_rows_scanned_total");
  return *c;
}

obs::Counter& ScansCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Default().GetCounter("cr_storage_scans_total");
  return *c;
}

}  // namespace

// ---------------------------------------------------------------- HashIndex

Row HashIndex::ExtractKey(const Row& row) const {
  Row key;
  key.reserve(column_indices_.size());
  for (size_t ci : column_indices_) key.push_back(row[ci]);
  return key;
}

const std::vector<RowId>* HashIndex::Lookup(const Row& key) const {
  auto it = map_.find(key);
  if (it == map_.end()) return nullptr;
  return &it->second;
}

Status HashIndex::Add(const Row& row, RowId id) {
  Row key = ExtractKey(row);
  auto& ids = map_[key];
  if (unique_ && !ids.empty()) {
    return Status::AlreadyExists("duplicate key in unique index '" + name_ +
                                 "'");
  }
  ids.push_back(id);
  return Status::OK();
}

void HashIndex::Remove(const Row& row, RowId id) {
  auto it = map_.find(ExtractKey(row));
  if (it == map_.end()) return;
  auto& ids = it->second;
  ids.erase(std::remove(ids.begin(), ids.end(), id), ids.end());
  if (ids.empty()) map_.erase(it);
}

// ------------------------------------------------------------- OrderedIndex

std::vector<RowId> OrderedIndex::Range(const Value& lo, const Value& hi) const {
  auto begin = lo.is_null() ? map_.begin() : map_.lower_bound(lo);
  auto end = hi.is_null() ? map_.end() : map_.upper_bound(hi);
  std::vector<RowId> out;
  for (auto it = begin; it != end; ++it) out.push_back(it->second);
  return out;
}

void OrderedIndex::Add(const Value& key, RowId id) {
  map_.emplace(key, id);
}

void OrderedIndex::Remove(const Value& key, RowId id) {
  auto range = map_.equal_range(key);
  for (auto it = range.first; it != range.second; ++it) {
    if (it->second == id) {
      map_.erase(it);
      return;
    }
  }
}

// -------------------------------------------------------------------- Table

Result<std::unique_ptr<Table>> Table::Create(
    std::string name, Schema schema, std::vector<std::string> primary_key) {
  std::vector<size_t> pk_indices;
  std::vector<Column> cols = schema.columns();
  for (const std::string& pk : primary_key) {
    auto idx = schema.FindColumn(pk);
    if (!idx.has_value()) {
      return Status::InvalidArgument("primary key column '" + pk +
                                     "' not in schema of table '" + name +
                                     "'");
    }
    pk_indices.push_back(*idx);
    cols[*idx].nullable = false;  // PK implies NOT NULL
  }
  auto table = std::unique_ptr<Table>(new Table(
      std::move(name), Schema(std::move(cols)), std::move(primary_key),
      std::move(pk_indices)));
  if (!table->pk_names_.empty()) {
    CR_RETURN_IF_ERROR(
        table->CreateHashIndex("__pk", table->pk_names_, /*unique=*/true));
    table->pk_index_ = table->hash_indexes_.back().get();
  }
  return table;
}

Table::Table(std::string name, Schema schema,
             std::vector<std::string> pk_names, std::vector<size_t> pk_indices)
    : name_(std::move(name)),
      schema_(std::move(schema)),
      pk_names_(std::move(pk_names)),
      pk_indices_(std::move(pk_indices)) {}

Result<RowId> Table::Insert(Row row) {
  CR_RETURN_IF_ERROR(schema_.ValidateRow(row));
  for (const auto& index : hash_indexes_) {
    if (index->unique()) {
      CR_RETURN_IF_ERROR(CheckUniqueForInsert(row, *index));
    }
  }
  RowId id = rows_.size();
  // Log-then-apply: once validation passes, the mutation reaches the WAL
  // before any in-memory state changes, so a crash never leaves an applied
  // but unlogged write.
  if (wal_ != nullptr) {
    CR_RETURN_IF_ERROR(
        wal_->AppendMutation(WalRecordType::kInsert, name_, id, row)
            .status());
  }
  AddToIndexes(row, id);
  rows_.push_back(std::move(row));
  deleted_.push_back(false);
  ++live_count_;
  AppendToColumnar(rows_.back(), id);
  return id;
}

Status Table::Update(RowId id, Row row) {
  const Row* old = Get(id);
  if (old == nullptr) {
    return Status::NotFound("row " + std::to_string(id) + " not in table '" +
                            name_ + "'");
  }
  CR_RETURN_IF_ERROR(schema_.ValidateRow(row));
  // Unique checks must ignore the row being replaced.
  for (const auto& index : hash_indexes_) {
    if (!index->unique()) continue;
    const std::vector<RowId>* ids = index->Lookup(index->ExtractKey(row));
    if (ids != nullptr && !(ids->size() == 1 && (*ids)[0] == id)) {
      return Status::AlreadyExists("duplicate key in unique index '" +
                                   index->name() + "'");
    }
  }
  if (wal_ != nullptr) {
    CR_RETURN_IF_ERROR(
        wal_->AppendMutation(WalRecordType::kUpdate, name_, id, row)
            .status());
  }
  RemoveFromIndexes(*old, id);
  rows_[id] = std::move(row);
  AddToIndexes(rows_[id], id);
  InvalidateColumnar();
  return Status::OK();
}

Status Table::UpdateColumn(RowId id, size_t column, Value value) {
  const Row* old = Get(id);
  if (old == nullptr) {
    return Status::NotFound("row " + std::to_string(id) + " not in table '" +
                            name_ + "'");
  }
  if (column >= schema_.num_columns()) {
    return Status::OutOfRange("column index out of range");
  }
  Row updated = *old;
  updated[column] = std::move(value);
  return Update(id, std::move(updated));
}

Status Table::Delete(RowId id) {
  const Row* row = Get(id);
  if (row == nullptr) {
    return Status::NotFound("row " + std::to_string(id) + " not in table '" +
                            name_ + "'");
  }
  if (wal_ != nullptr) {
    CR_RETURN_IF_ERROR(
        wal_->AppendMutation(WalRecordType::kDelete, name_, id, {}).status());
  }
  RemoveFromIndexes(*row, id);
  deleted_[id] = true;
  --live_count_;
  InvalidateColumnar();
  return Status::OK();
}

Status Table::RestoreRow(RowId id, Row row) {
  if (id < rows_.size()) {
    return Status::InvalidArgument(
        "RestoreRow id " + std::to_string(id) + " below capacity " +
        std::to_string(rows_.size()) + " of table '" + name_ + "'");
  }
  CR_RETURN_IF_ERROR(schema_.ValidateRow(row));
  for (const auto& index : hash_indexes_) {
    if (index->unique()) {
      CR_RETURN_IF_ERROR(CheckUniqueForInsert(row, *index));
    }
  }
  while (rows_.size() < id) {  // pad the gap with tombstones
    rows_.emplace_back();
    deleted_.push_back(true);
  }
  AddToIndexes(row, id);
  rows_.push_back(std::move(row));
  deleted_.push_back(false);
  ++live_count_;
  AppendToColumnar(rows_.back(), id);
  return Status::OK();
}

const ChunkedTable* Table::columnar() const {
  std::lock_guard<std::mutex> lock(columnar_mu_);
  if (columnar_ == nullptr) {
    auto mirror = std::make_unique<ChunkedTable>(schema_.num_columns());
    for (RowId id = 0; id < rows_.size(); ++id) {
      if (!deleted_[id]) mirror->Append(rows_[id], id);
    }
    columnar_ = std::move(mirror);
  }
  return columnar_.get();
}

void Table::AppendToColumnar(const Row& row, RowId id) {
  std::lock_guard<std::mutex> lock(columnar_mu_);
  if (columnar_ != nullptr) columnar_->Append(row, id);
}

void Table::InvalidateColumnar() {
  std::lock_guard<std::mutex> lock(columnar_mu_);
  columnar_.reset();
}

const Row* Table::Get(RowId id) const {
  if (id >= rows_.size() || deleted_[id]) return nullptr;
  return &rows_[id];
}

Result<RowId> Table::FindByPrimaryKey(const Row& key) const {
  if (pk_index_ == nullptr) {
    return Status::FailedPrecondition("table '" + name_ +
                                      "' has no primary key");
  }
  const std::vector<RowId>* ids = pk_index_->Lookup(key);
  if (ids == nullptr || ids->empty()) {
    Row k = key;
    std::string key_str;
    for (size_t i = 0; i < k.size(); ++i) {
      if (i > 0) key_str += ", ";
      key_str += k[i].ToString();
    }
    return Status::NotFound("no row with key (" + key_str + ") in table '" +
                            name_ + "'");
  }
  return (*ids)[0];
}

void Table::Scan(const std::function<void(RowId, const Row&)>& fn) const {
  // Counted once per scan, not per row — the Scan loop is a hot path for
  // un-indexed predicates and a per-row fetch_add would be visible there.
  for (RowId id = 0; id < rows_.size(); ++id) {
    if (!deleted_[id]) fn(id, rows_[id]);
  }
  ScansCounter().Add();
  RowsScannedCounter().Add(rows_.size());
}

void Table::ScanWhile(const std::function<bool(RowId, const Row&)>& fn) const {
  // Early-exit variant for pushed-down limits: stops as soon as `fn`
  // returns false. Rows-scanned accounting reflects the slots actually
  // visited, so pushdown wins show up in cr_storage_rows_scanned_total.
  RowId id = 0;
  for (; id < rows_.size(); ++id) {
    if (!deleted_[id] && !fn(id, rows_[id])) {
      ++id;
      break;
    }
  }
  ScansCounter().Add();
  RowsScannedCounter().Add(id);
}

std::vector<RowId> Table::LiveRowIds() const {
  std::vector<RowId> out;
  out.reserve(live_count_);
  for (RowId id = 0; id < rows_.size(); ++id) {
    if (!deleted_[id]) out.push_back(id);
  }
  return out;
}

Status Table::CreateHashIndex(const std::string& index_name,
                              const std::vector<std::string>& columns,
                              bool unique) {
  for (const auto& idx : hash_indexes_) {
    if (EqualsIgnoreCase(idx->name(), index_name)) {
      return Status::AlreadyExists("index '" + index_name + "' exists");
    }
  }
  std::vector<size_t> indices;
  for (const std::string& c : columns) {
    CR_ASSIGN_OR_RETURN(size_t ci, schema_.ColumnIndex(c));
    indices.push_back(ci);
  }
  auto index =
      std::make_unique<HashIndex>(index_name, std::move(indices), unique);
  for (RowId id = 0; id < rows_.size(); ++id) {
    if (deleted_[id]) continue;
    CR_RETURN_IF_ERROR(index->Add(rows_[id], id));
  }
  hash_indexes_.push_back(std::move(index));
  return Status::OK();
}

Status Table::CreateOrderedIndex(const std::string& index_name,
                                 const std::string& column) {
  for (const auto& idx : ordered_indexes_) {
    if (EqualsIgnoreCase(idx->name(), index_name)) {
      return Status::AlreadyExists("index '" + index_name + "' exists");
    }
  }
  CR_ASSIGN_OR_RETURN(size_t ci, schema_.ColumnIndex(column));
  auto index = std::make_unique<OrderedIndex>(index_name, ci);
  for (RowId id = 0; id < rows_.size(); ++id) {
    if (!deleted_[id]) index->Add(rows_[id][ci], id);
  }
  ordered_indexes_.push_back(std::move(index));
  return Status::OK();
}

const HashIndex* Table::FindHashIndex(
    const std::vector<std::string>& columns) const {
  std::vector<size_t> want;
  for (const std::string& c : columns) {
    auto ci = schema_.FindColumn(c);
    if (!ci.has_value()) return nullptr;
    want.push_back(*ci);
  }
  for (const auto& idx : hash_indexes_) {
    if (idx->column_indices() == want) return idx.get();
  }
  return nullptr;
}

const OrderedIndex* Table::FindOrderedIndex(const std::string& column) const {
  auto ci = schema_.FindColumn(column);
  if (!ci.has_value()) return nullptr;
  for (const auto& idx : ordered_indexes_) {
    if (idx->column_index() == *ci) return idx.get();
  }
  return nullptr;
}

std::vector<RowId> Table::LookupEqual(const std::vector<std::string>& columns,
                                      const Row& key) const {
  const HashIndex* index = FindHashIndex(columns);
  if (index != nullptr) {
    const std::vector<RowId>* ids = index->Lookup(key);
    if (ids == nullptr) return {};
    return *ids;
  }
  // Fallback: full scan.
  std::vector<size_t> indices;
  for (const std::string& c : columns) {
    auto ci = schema_.FindColumn(c);
    if (!ci.has_value()) return {};
    indices.push_back(*ci);
  }
  std::vector<RowId> out;
  Scan([&](RowId id, const Row& row) {
    for (size_t i = 0; i < indices.size(); ++i) {
      if (!(row[indices[i]] == key[i])) return;
    }
    out.push_back(id);
  });
  return out;
}

std::vector<const HashIndex*> Table::hash_indexes() const {
  std::vector<const HashIndex*> out;
  out.reserve(hash_indexes_.size());
  for (const auto& idx : hash_indexes_) out.push_back(idx.get());
  return out;
}

std::vector<const OrderedIndex*> Table::ordered_indexes() const {
  std::vector<const OrderedIndex*> out;
  out.reserve(ordered_indexes_.size());
  for (const auto& idx : ordered_indexes_) out.push_back(idx.get());
  return out;
}

Status Table::CheckUniqueForInsert(const Row& row,
                                   const HashIndex& index) const {
  const std::vector<RowId>* ids = index.Lookup(index.ExtractKey(row));
  if (ids != nullptr && !ids->empty()) {
    return Status::AlreadyExists("duplicate key in unique index '" +
                                 index.name() + "' of table '" + name_ + "'");
  }
  return Status::OK();
}

void Table::AddToIndexes(const Row& row, RowId id) {
  for (const auto& index : hash_indexes_) {
    Status s = index->Add(row, id);
    CR_CHECK(s.ok());  // uniqueness pre-checked by callers
  }
  for (const auto& index : ordered_indexes_) {
    index->Add(row[index->column_index()], id);
  }
}

void Table::RemoveFromIndexes(const Row& row, RowId id) {
  for (const auto& index : hash_indexes_) index->Remove(row, id);
  for (const auto& index : ordered_indexes_) {
    index->Remove(row[index->column_index()], id);
  }
}

}  // namespace courserank::storage
