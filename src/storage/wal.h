#ifndef COURSERANK_STORAGE_WAL_H_
#define COURSERANK_STORAGE_WAL_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>

#include "common/status.h"
#include "storage/table.h"

namespace courserank::storage {

/// CRC-32 (IEEE 802.3, reflected) of `n` bytes; `seed` chains partial
/// computations. Standard check value: Crc32("123456789", 9) == 0xCBF43926.
uint32_t Crc32(const void* data, size_t n, uint32_t seed = 0);

/// What a WAL record describes. Mutations carry a table name and the RowId
/// the mutation targeted, so replay reproduces the exact slot layout; kEpoch
/// marks an index-epoch advance (PR 1 caches key on epochs), letting
/// recovery correlate a log position with the cache generation that was
/// current when it was written. kLsnFloor is written by Reset() as the first
/// record of a freshly-truncated log: it carries only its LSN — the last LSN
/// the just-published snapshot absorbed — so a later Open() resumes LSNs
/// past everything the snapshot owns instead of restarting at 1 (which
/// would make post-checkpoint appends invisible to the next recovery).
enum class WalRecordType : uint8_t {
  kInsert = 1,
  kUpdate = 2,
  kDelete = 3,
  kEpoch = 4,
  kLsnFloor = 5,
};

/// One logical WAL entry. LSNs are assigned by WalWriter, start at 1, and
/// strictly increase within one log file (gapless except across a recovery
/// reopen that raised the floor, see WalOptions::min_next_lsn).
struct WalRecord {
  WalRecordType type = WalRecordType::kInsert;
  uint64_t lsn = 0;
  std::string table;  ///< mutations only
  RowId row_id = 0;   ///< mutations only
  Row row;            ///< insert/update payload; empty for delete
  uint64_t epoch = 0; ///< kEpoch only
};

/// Serializes a record's payload (everything but the framing header).
/// LIST-typed values are rejected — stored tables never hold them.
Result<std::string> EncodeWalPayload(const WalRecord& record);

/// Decodes a payload produced by EncodeWalPayload. Corruption on any
/// malformed byte (unknown type tag, truncated field, trailing garbage).
Result<WalRecord> DecodeWalPayload(std::string_view payload);

/// fsync policy and LSN floor for WalWriter.
struct WalOptions {
  /// fsync after every append. Off by default: group-commit callers fsync
  /// explicitly via Sync(); crash tests exercise torn tails either way.
  bool sync_each_append = false;

  /// Lower bound for the LSN Open() resumes at: next_lsn starts at
  /// max(last LSN in the log + 1, min_next_lsn). Recovery callers pass
  /// RecoveredDatabase::wal_min_next_lsn() so new appends can never reuse
  /// LSNs the snapshot already owns, even when the log file itself was
  /// lost (its kLsnFloor record gone with it).
  uint64_t min_next_lsn = 0;
};

/// Append-only writer over a binary log file. On-disk framing per record:
///
///   [u32 payload_len][u32 crc32(payload)][payload bytes]
///
/// all little-endian. A record is committed iff its frame is fully on disk
/// with a matching CRC; replay stops at the first frame that is short or
/// fails its checksum (a torn tail), which is exactly the state a crash
/// mid-append leaves behind.
///
/// Open() scans any existing log, truncates a torn tail so new appends
/// start on a clean boundary, and resumes LSNs after the last valid record
/// (kLsnFloor records count, so a checkpoint-truncated log keeps its
/// numbering) or at Options::min_next_lsn, whichever is higher. Creating
/// the file also fsyncs its parent directory, so a log that survived an
/// fsynced append cannot itself vanish in a crash.
/// All file writes go through the FaultInjector (storage/fault.h).
///
/// Not thread-safe: writes are expected to be serialized by the owner, as
/// Table mutations already are.
class WalWriter {
 public:
  using Options = WalOptions;

  static Result<std::unique_ptr<WalWriter>> Open(const std::string& path,
                                                 Options options = {});
  ~WalWriter();
  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Appends a mutation record; assigns and returns its LSN. On any error
  /// (including an injected fault) nothing is considered committed and the
  /// writer refuses further appends until reopened — matching the crash
  /// the fault simulates.
  Result<uint64_t> AppendMutation(WalRecordType type, const std::string& table,
                                  RowId row_id, const Row& row);

  /// Appends an epoch marker (see WalRecordType::kEpoch).
  Result<uint64_t> AppendEpoch(uint64_t epoch);

  /// fsyncs the log file.
  Status Sync();

  /// Truncates the log after a successful snapshot, leaving a single
  /// kLsnFloor record carrying last_lsn() so the numbering survives a
  /// process restart; the in-memory counter keeps counting from where it
  /// was. On any failure (including an injected fault) the writer is
  /// poisoned like a failed append — the log may hold a torn floor frame,
  /// which recovery treats as an empty log.
  Status Reset();

  /// LSN the next append will get.
  uint64_t next_lsn() const { return next_lsn_; }
  /// LSN of the last appended record (0 when none).
  uint64_t last_lsn() const { return next_lsn_ - 1; }

  const std::string& path() const { return path_; }

 private:
  WalWriter(std::string path, int fd, Options options, uint64_t next_lsn)
      : path_(std::move(path)), fd_(fd), options_(options),
        next_lsn_(next_lsn) {}

  Result<uint64_t> Append(WalRecord record);

  /// Frames `record` (whose lsn must already be set) and writes it to fd_.
  Status WriteFrame(const WalRecord& record);

  std::string path_;
  int fd_ = -1;
  Options options_;
  uint64_t next_lsn_ = 1;
  bool failed_ = false;
};

/// Outcome of a replay pass.
struct WalReplayStats {
  uint64_t applied = 0;      ///< records delivered to the callback
  uint64_t skipped = 0;      ///< records at or below `after_lsn`
  uint64_t last_lsn = 0;     ///< highest LSN seen, incl. kLsnFloor markers
  bool torn_tail = false;    ///< log ended in a short or corrupt frame
  uint64_t valid_bytes = 0;  ///< prefix length ending at the last good frame
};

/// Streams every committed record with LSN > `after_lsn` through `apply`, in
/// log order. kLsnFloor markers advance `last_lsn` but are never delivered
/// (nor counted as applied/skipped). A missing file is an empty log. A torn
/// or corrupt tail frame ends replay cleanly (torn_tail set); an error from
/// `apply` aborts and propagates — that is state corruption, not a torn
/// write.
Result<WalReplayStats> ReplayWal(
    const std::string& path, uint64_t after_lsn,
    const std::function<Status(const WalRecord&)>& apply);

}  // namespace courserank::storage

#endif  // COURSERANK_STORAGE_WAL_H_
