#ifndef COURSERANK_STORAGE_DICTIONARY_H_
#define COURSERANK_STORAGE_DICTIONARY_H_

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace courserank::storage {

/// Append-only string dictionary backing dictionary-encoded columns
/// (DESIGN.md §12). Ids are assigned in first-intern order and never
/// change or disappear, so encoded column vectors stay valid as the
/// dictionary grows — a chunk encoded early keeps its ids when later
/// chunks intern new strings.
///
/// Ids are NOT ordered like the strings they encode: equality predicates
/// may compare ids directly, but ordered comparisons must go through
/// At(). The empty string is an ordinary entry, distinct from SQL NULL
/// (which lives in the column's null mask, never in the dictionary).
class StringDictionary {
 public:
  using Id = uint32_t;

  /// Returns the id of `s`, interning it first if absent.
  Id Intern(const std::string& s) {
    auto it = ids_.find(s);
    if (it != ids_.end()) return it->second;
    Id id = static_cast<Id>(strings_.size());
    strings_.push_back(s);
    ids_.emplace(s, id);
    return id;
  }

  /// The string for an id previously returned by Intern.
  const std::string& At(Id id) const { return strings_[id]; }

  /// Id of `s` if already interned; nullopt otherwise (the probe for
  /// equality predicates over dictionary columns — an absent constant
  /// matches no row).
  std::optional<Id> Find(const std::string& s) const {
    auto it = ids_.find(s);
    if (it == ids_.end()) return std::nullopt;
    return it->second;
  }

  size_t size() const { return strings_.size(); }

 private:
  std::vector<std::string> strings_;
  std::unordered_map<std::string, Id> ids_;
};

}  // namespace courserank::storage

#endif  // COURSERANK_STORAGE_DICTIONARY_H_
