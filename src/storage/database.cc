#include "storage/database.h"

#include "common/strings.h"

namespace courserank::storage {

Result<Table*> Database::CreateTable(std::string name, Schema schema,
                                     std::vector<std::string> primary_key) {
  if (FindTable(name) != nullptr) {
    return Status::AlreadyExists("table '" + name + "' exists");
  }
  CR_ASSIGN_OR_RETURN(
      std::unique_ptr<Table> table,
      Table::Create(std::move(name), std::move(schema),
                    std::move(primary_key)));
  Table* ptr = table.get();
  ptr->set_wal(wal_);
  tables_.push_back(std::move(table));
  return ptr;
}

void Database::AttachWal(WalWriter* wal) {
  wal_ = wal;
  for (const auto& t : tables_) t->set_wal(wal);
}

Result<Table*> Database::GetTable(const std::string& name) {
  Table* t = FindTable(name);
  if (t == nullptr) return Status::NotFound("no table '" + name + "'");
  return t;
}

Result<const Table*> Database::GetTable(const std::string& name) const {
  const Table* t = FindTable(name);
  if (t == nullptr) return Status::NotFound("no table '" + name + "'");
  return t;
}

Table* Database::FindTable(const std::string& name) {
  for (const auto& t : tables_) {
    if (EqualsIgnoreCase(t->name(), name)) return t.get();
  }
  return nullptr;
}

const Table* Database::FindTable(const std::string& name) const {
  for (const auto& t : tables_) {
    if (EqualsIgnoreCase(t->name(), name)) return t.get();
  }
  return nullptr;
}

std::vector<std::string> Database::TableNames() const {
  std::vector<std::string> out;
  out.reserve(tables_.size());
  for (const auto& t : tables_) out.push_back(t->name());
  return out;
}

Status Database::AddForeignKey(const std::string& table,
                               const std::string& column,
                               const std::string& ref_table,
                               const std::string& ref_column) {
  CR_ASSIGN_OR_RETURN(Table * src, GetTable(table));
  CR_ASSIGN_OR_RETURN(Table * dst, GetTable(ref_table));
  CR_RETURN_IF_ERROR(src->schema().ColumnIndex(column).status());
  CR_RETURN_IF_ERROR(dst->schema().ColumnIndex(ref_column).status());
  // Ensure the referenced side is probe-able.
  if (dst->FindHashIndex({ref_column}) == nullptr) {
    CR_RETURN_IF_ERROR(dst->CreateHashIndex("__fk_" + table + "_" + column,
                                            {ref_column}, /*unique=*/false));
  }
  foreign_keys_.push_back({table, column, ref_table, ref_column});
  return Status::OK();
}

Result<RowId> Database::Insert(const std::string& table, Row row) {
  CR_ASSIGN_OR_RETURN(Table * t, GetTable(table));
  CR_RETURN_IF_ERROR(CheckForeignKeysForRow(table, row));
  return t->Insert(std::move(row));
}

Status Database::CheckForeignKeysForRow(const std::string& table,
                                        const Row& row) {
  for (const ForeignKey& fk : foreign_keys_) {
    if (!EqualsIgnoreCase(fk.table, table)) continue;
    Table* src = FindTable(fk.table);
    Table* dst = FindTable(fk.ref_table);
    CR_ASSIGN_OR_RETURN(size_t ci, src->schema().ColumnIndex(fk.column));
    if (ci >= row.size() || row[ci].is_null()) continue;
    std::vector<RowId> hits = dst->LookupEqual({fk.ref_column}, {row[ci]});
    if (hits.empty()) {
      return Status::FailedPrecondition(
          "foreign key violation: " + fk.table + "." + fk.column + " = " +
          row[ci].ToString() + " has no match in " + fk.ref_table + "." +
          fk.ref_column);
    }
  }
  return Status::OK();
}

Status Database::CheckIntegrity() const {
  for (const ForeignKey& fk : foreign_keys_) {
    const Table* src = FindTable(fk.table);
    const Table* dst = FindTable(fk.ref_table);
    if (src == nullptr || dst == nullptr) {
      return Status::Corruption("foreign key references missing table");
    }
    auto ci = src->schema().FindColumn(fk.column);
    if (!ci.has_value()) {
      return Status::Corruption("foreign key references missing column");
    }
    Status bad = Status::OK();
    src->Scan([&](RowId, const Row& row) {
      if (!bad.ok() || row[*ci].is_null()) return;
      if (dst->LookupEqual({fk.ref_column}, {row[*ci]}).empty()) {
        bad = Status::FailedPrecondition(
            "integrity violation: " + fk.table + "." + fk.column + " = " +
            row[*ci].ToString() + " dangling");
      }
    });
    if (!bad.ok()) return bad;
  }
  return Status::OK();
}

int64_t Database::NextSequence(const std::string& name) {
  return ++sequences_[ToLower(name)];
}

}  // namespace courserank::storage
