#ifndef COURSERANK_STORAGE_SCHEMA_H_
#define COURSERANK_STORAGE_SCHEMA_H_

#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/value.h"

namespace courserank::storage {

/// One column definition. Column names are matched case-insensitively,
/// following SQL identifier convention.
struct Column {
  std::string name;
  ValueType type = ValueType::kNull;
  bool nullable = true;

  Column() = default;
  Column(std::string n, ValueType t, bool null_ok = true)
      : name(std::move(n)), type(t), nullable(null_ok) {}
};

/// An ordered list of columns with by-name lookup.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Column> columns);

  size_t num_columns() const { return columns_.size(); }
  const Column& column(size_t i) const { return columns_[i]; }
  const std::vector<Column>& columns() const { return columns_; }

  /// Case-insensitive column lookup; nullopt when absent. Also accepts
  /// "alias.name" qualified forms when columns were named that way.
  std::optional<size_t> FindColumn(const std::string& name) const;

  /// Like FindColumn but returns a Status mentioning the available columns.
  Result<size_t> ColumnIndex(const std::string& name) const;

  /// Validates arity, column types (NULL passes any type; INT accepted where
  /// DOUBLE declared), and NOT NULL constraints.
  Status ValidateRow(const Row& row) const;

  /// Schema whose column names are prefixed "alias.name"; used by joins.
  Schema WithPrefix(const std::string& alias) const;

  /// Concatenation of two schemas (join output).
  static Schema Concat(const Schema& a, const Schema& b);

  /// "name:TYPE, name:TYPE, ...".
  std::string ToString() const;

  bool operator==(const Schema& other) const;

 private:
  std::vector<Column> columns_;
};

}  // namespace courserank::storage

#endif  // COURSERANK_STORAGE_SCHEMA_H_
