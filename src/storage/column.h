#ifndef COURSERANK_STORAGE_COLUMN_H_
#define COURSERANK_STORAGE_COLUMN_H_

#include <cstdint>
#include <vector>

#include "storage/dictionary.h"
#include "storage/value.h"

namespace courserank::storage {

/// True when `v` survives int64 → double → int64 unchanged. Ints beyond
/// 2^53 can lose bits; both the kDouble encoding and the vectorized
/// numeric comparison loops must exclude them to stay exact.
bool Int64RoundTripsDouble(int64_t v);

/// Physical layout of one column within a chunk. Encodings are chosen per
/// chunk from the values actually present, so a column declared DOUBLE but
/// holding only ints in some chunk still gets an exact representation.
enum class ColumnEncoding : uint8_t {
  kInt64,   ///< all non-null values are INT
  kDouble,  ///< INT/DOUBLE mix; `is_int` preserves the original type tag
  kBool,    ///< all non-null values are BOOL
  kDict,    ///< all non-null values are STRING, stored as dictionary ids
  kValue,   ///< fallback: LIST values, mixed types, or non-round-tripping
            ///< ints — stored as plain Values
};

/// A typed, null-mask-carrying column vector for one chunk of rows.
/// Decoding through Get() reproduces the original Value exactly —
/// including the INT-vs-DOUBLE type tag — which is what keeps the
/// columnar execution path byte-identical to the row oracle.
class ColumnVector {
 public:
  /// Encodes `rows[begin, end)` column `col`. String values intern into
  /// `dict` (shared per table, append-only).
  static ColumnVector Encode(const std::vector<Row>& rows, size_t begin,
                             size_t end, size_t col, StringDictionary* dict);

  ColumnEncoding encoding() const { return encoding_; }
  size_t size() const { return nulls_.size(); }
  bool IsNull(size_t i) const { return nulls_[i] != 0; }

  /// Reconstructs the original Value at row `i`.
  Value Get(size_t i, const StringDictionary& dict) const;

  /// Three-way comparison of row `i` (non-null) against `other`, with
  /// exactly Value::Compare semantics but without materializing a Value
  /// for the common encodings. Caller handles NULL rows.
  int CompareCell(size_t i, const Value& other,
                  const StringDictionary& dict) const;

  // Raw accessors for the vectorized kernels in query/vector_ops.cc.
  const std::vector<uint8_t>& nulls() const { return nulls_; }
  const std::vector<int64_t>& ints() const { return ints_; }
  const std::vector<double>& doubles() const { return doubles_; }
  const std::vector<uint8_t>& is_int() const { return is_int_; }
  const std::vector<uint8_t>& bools() const { return bools_; }
  const std::vector<StringDictionary::Id>& ids() const { return ids_; }
  const std::vector<Value>& values() const { return values_; }

 private:
  ColumnEncoding encoding_ = ColumnEncoding::kValue;
  std::vector<uint8_t> nulls_;  ///< one byte per row; 1 = SQL NULL

  // Exactly one payload vector is populated, per `encoding_`. Null rows
  // hold a zero placeholder in the payload so indexes line up.
  std::vector<int64_t> ints_;
  std::vector<double> doubles_;
  std::vector<uint8_t> is_int_;  ///< kDouble only: original tag was INT
  std::vector<uint8_t> bools_;
  std::vector<StringDictionary::Id> ids_;
  std::vector<Value> values_;
};

}  // namespace courserank::storage

#endif  // COURSERANK_STORAGE_COLUMN_H_
