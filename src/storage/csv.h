#ifndef COURSERANK_STORAGE_CSV_H_
#define COURSERANK_STORAGE_CSV_H_

#include <string>

#include "common/status.h"
#include "storage/table.h"

namespace courserank::storage {

/// Serializes a table to RFC-4180-style CSV with a header row. LIST values
/// are rendered with Value::ToString (lossy; intended for reports, not
/// round-tripping nested data).
Status WriteCsv(const Table& table, const std::string& path);

/// Renders a table (or any schema+rows pair) as CSV text. NULL is written as
/// an empty cell; an empty non-null STRING is written quoted (`""`) so the
/// two stay distinguishable on reload. DOUBLE cells use the shortest
/// representation that parses back to the same bits.
std::string ToCsv(const Schema& schema, const std::vector<Row>& rows);

/// Parses CSV text produced by ToCsv back into rows of `schema`, coercing
/// each cell to the declared column type. Only *unquoted* empty cells become
/// NULL; quoted empty cells are empty strings. Out-of-range INT/DOUBLE
/// cells, stray characters after a closing quote, and unterminated quotes
/// are errors rather than silently mangled data.
Result<std::vector<Row>> ParseCsv(const Schema& schema,
                                  const std::string& text);

}  // namespace courserank::storage

#endif  // COURSERANK_STORAGE_CSV_H_
