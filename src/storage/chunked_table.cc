#include "storage/chunked_table.h"

#include <utility>

namespace courserank::storage {

void ChunkedTable::Append(const Row& row, uint64_t id) {
  pending_.push_back(row);
  pending_ids_.push_back(id);
  if (pending_.size() < kChunkRows) return;

  ColumnChunk chunk;
  chunk.columns.reserve(num_columns_);
  for (size_t c = 0; c < num_columns_; ++c) {
    chunk.columns.push_back(
        ColumnVector::Encode(pending_, 0, pending_.size(), c, &dict_));
  }
  chunk.row_ids = std::move(pending_ids_);
  sealed_rows_ += chunk.size();
  chunks_.push_back(std::move(chunk));
  pending_.clear();
  pending_ids_.clear();
}

}  // namespace courserank::storage
