#include "storage/snapshot.h"

#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/strings.h"
#include "storage/csv.h"

namespace courserank::storage {

namespace {

namespace fs = std::filesystem;

Result<ValueType> ParseTypeName(const std::string& name) {
  for (ValueType t : {ValueType::kBool, ValueType::kInt, ValueType::kDouble,
                      ValueType::kString}) {
    if (EqualsIgnoreCase(name, ValueTypeName(t))) return t;
  }
  return Status::Corruption("unknown column type '" + name +
                            "' in manifest");
}

Result<std::string> ReadFile(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f.is_open()) {
    return Status::NotFound("cannot open '" + path + "'");
  }
  std::ostringstream out;
  out << f.rdbuf();
  return out.str();
}

}  // namespace

Status SaveDatabase(const Database& db, const std::string& dir) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    return Status::Internal("cannot create directory '" + dir +
                            "': " + ec.message());
  }

  std::ofstream manifest(fs::path(dir) / "_manifest.txt");
  if (!manifest.is_open()) {
    return Status::Internal("cannot write manifest in '" + dir + "'");
  }

  for (const std::string& name : db.TableNames()) {
    CR_ASSIGN_OR_RETURN(const Table* table, db.GetTable(name));
    manifest << "table " << table->name() << "\n";
    for (const Column& col : table->schema().columns()) {
      if (col.type == ValueType::kList || col.type == ValueType::kNull) {
        return Status::Unimplemented(
            "cannot snapshot column '" + col.name + "' of type " +
            ValueTypeName(col.type));
      }
      manifest << "column " << col.name << " " << ValueTypeName(col.type)
               << " " << (col.nullable ? 1 : 0) << "\n";
    }
    if (!table->primary_key().empty()) {
      manifest << "pk";
      for (const std::string& col : table->primary_key()) {
        manifest << " " << col;
      }
      manifest << "\n";
    }
    for (const HashIndex* index : table->hash_indexes()) {
      if (index->name() == "__pk") continue;  // recreated with the table
      manifest << "hashindex " << index->name() << " "
               << (index->unique() ? 1 : 0);
      for (size_t ci : index->column_indices()) {
        manifest << " " << table->schema().column(ci).name;
      }
      manifest << "\n";
    }
    for (const OrderedIndex* index : table->ordered_indexes()) {
      manifest << "orderedindex " << index->name() << " "
               << table->schema().column(index->column_index()).name << "\n";
    }
    manifest << "endtable\n";

    CR_RETURN_IF_ERROR(
        WriteCsv(*table, (fs::path(dir) / (table->name() + ".csv")).string()));
  }
  for (const ForeignKey& fk : db.foreign_keys()) {
    manifest << "fk " << fk.table << " " << fk.column << " " << fk.ref_table
             << " " << fk.ref_column << "\n";
  }
  return manifest.good()
             ? Status::OK()
             : Status::Internal("manifest write failed in '" + dir + "'");
}

Result<std::unique_ptr<Database>> LoadDatabase(const std::string& dir) {
  CR_ASSIGN_OR_RETURN(std::string manifest,
                      ReadFile((fs::path(dir) / "_manifest.txt").string()));
  auto db = std::make_unique<Database>();

  struct PendingIndex {
    std::string table;
    std::string name;
    bool unique = false;
    bool ordered = false;
    std::vector<std::string> columns;
  };
  std::vector<PendingIndex> indexes;
  struct PendingFk {
    std::string table, column, ref_table, ref_column;
  };
  std::vector<PendingFk> fks;
  std::vector<std::string> table_order;

  std::string current_table;
  std::vector<Column> columns;
  std::vector<std::string> pk;

  auto flush_table = [&]() -> Status {
    if (current_table.empty()) return Status::OK();
    CR_RETURN_IF_ERROR(
        db->CreateTable(current_table, Schema(columns), pk).status());
    table_order.push_back(current_table);
    current_table.clear();
    columns.clear();
    pk.clear();
    return Status::OK();
  };

  for (const std::string& raw : Split(manifest, '\n')) {
    std::vector<std::string> parts = SplitWhitespace(raw);
    if (parts.empty()) continue;
    const std::string& kind = parts[0];
    if (kind == "table" && parts.size() == 2) {
      current_table = parts[1];
    } else if (kind == "column" && parts.size() == 4) {
      CR_ASSIGN_OR_RETURN(ValueType type, ParseTypeName(parts[2]));
      columns.emplace_back(parts[1], type, parts[3] == "1");
    } else if (kind == "pk" && parts.size() >= 2) {
      pk.assign(parts.begin() + 1, parts.end());
    } else if (kind == "hashindex" && parts.size() >= 4) {
      PendingIndex index;
      index.table = current_table;
      index.name = parts[1];
      index.unique = parts[2] == "1";
      index.columns.assign(parts.begin() + 3, parts.end());
      indexes.push_back(std::move(index));
    } else if (kind == "orderedindex" && parts.size() == 3) {
      PendingIndex index;
      index.table = current_table;
      index.name = parts[1];
      index.ordered = true;
      index.columns.push_back(parts[2]);
      indexes.push_back(std::move(index));
    } else if (kind == "endtable") {
      CR_RETURN_IF_ERROR(flush_table());
    } else if (kind == "fk" && parts.size() == 5) {
      fks.push_back({parts[1], parts[2], parts[3], parts[4]});
    } else {
      return Status::Corruption("bad manifest line: '" + raw + "'");
    }
  }
  CR_RETURN_IF_ERROR(flush_table());

  // Load rows before secondary indexes exist? Either order works; create
  // indexes first so unique violations in the data surface immediately.
  for (const PendingIndex& index : indexes) {
    CR_ASSIGN_OR_RETURN(Table * table, db->GetTable(index.table));
    if (index.ordered) {
      CR_RETURN_IF_ERROR(
          table->CreateOrderedIndex(index.name, index.columns[0]));
    } else {
      CR_RETURN_IF_ERROR(
          table->CreateHashIndex(index.name, index.columns, index.unique));
    }
  }

  for (const std::string& name : table_order) {
    CR_ASSIGN_OR_RETURN(Table * table, db->GetTable(name));
    CR_ASSIGN_OR_RETURN(std::string csv,
                        ReadFile((fs::path(dir) / (name + ".csv")).string()));
    CR_ASSIGN_OR_RETURN(std::vector<Row> rows,
                        ParseCsv(table->schema(), csv));
    for (Row& row : rows) {
      CR_RETURN_IF_ERROR(table->Insert(std::move(row)).status());
    }
  }

  for (const PendingFk& fk : fks) {
    CR_RETURN_IF_ERROR(
        db->AddForeignKey(fk.table, fk.column, fk.ref_table, fk.ref_column));
  }
  return db;
}

}  // namespace courserank::storage
