#include "storage/snapshot.h"

#include <fcntl.h>
#include <stdio.h>
#include <unistd.h>

#include <cerrno>
#include <charconv>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/strings.h"
#include "storage/csv.h"
#include "storage/fault.h"

namespace courserank::storage {

namespace {

namespace fs = std::filesystem;

Result<ValueType> ParseTypeName(const std::string& name) {
  for (ValueType t : {ValueType::kBool, ValueType::kInt, ValueType::kDouble,
                      ValueType::kString}) {
    if (EqualsIgnoreCase(name, ValueTypeName(t))) return t;
  }
  return Status::Corruption("unknown column type '" + name +
                            "' in manifest");
}

Result<std::string> ReadFile(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f.is_open()) {
    return Status::NotFound("cannot open '" + path + "'");
  }
  std::ostringstream out;
  out << f.rdbuf();
  return out.str();
}

/// Strict decimal parse for manifest/sidecar numbers: the whole string must
/// be a base-10 uint64, else Corruption — strtoull-style silent zeros would
/// surface much later as bogus replay or RestoreRow failures.
Result<uint64_t> ParseU64(const std::string& s, const std::string& what) {
  uint64_t v = 0;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v, 10);
  if (ec != std::errc() || ptr != s.data() + s.size() || s.empty()) {
    return Status::Corruption("malformed " + what + " '" + s +
                              "' in snapshot");
  }
  return v;
}

/// Publishes the fully-written `tmp` directory at `dir` atomically. When a
/// snapshot already exists the two are swapped with RENAME_EXCHANGE — a
/// crash at any instant leaves either the old or the new snapshot at `dir`,
/// never a mix — and the displaced old snapshot (now at `tmp`) is removed.
Status PublishDir(const std::string& tmp, const std::string& dir) {
  std::error_code ec;
  Status renamed = Status::OK();
  if (fs::exists(dir)) {
    if (::renameat2(AT_FDCWD, tmp.c_str(), AT_FDCWD, dir.c_str(),
                    RENAME_EXCHANGE) != 0) {
      // Old kernel / filesystem without exchange support: fall back to
      // replace-by-rename. The window where `dir` is missing is the price
      // of the fallback; Linux ≥ 3.15 never takes this path.
      if (errno != ENOSYS && errno != EINVAL) {
        return Status::Internal("cannot exchange '" + tmp + "' with '" + dir +
                                "': " + std::strerror(errno));
      }
      fs::remove_all(dir, ec);
      if (std::rename(tmp.c_str(), dir.c_str()) != 0) {
        return Status::Internal("cannot rename '" + tmp + "' to '" + dir +
                                "': " + std::strerror(errno));
      }
    }
  } else if (std::rename(tmp.c_str(), dir.c_str()) != 0) {
    return Status::Internal("cannot rename '" + tmp + "' to '" + dir +
                            "': " + std::strerror(errno));
  }
  fs::remove_all(tmp, ec);  // displaced old snapshot (or nothing)
  fs::path parent = fs::path(dir).parent_path();
  return SyncDir(parent.empty() ? "." : parent.string());
}

std::string TmpDirFor(const std::string& dir) { return dir + ".tmp"; }

}  // namespace

Status SaveDatabase(const Database& db, const std::string& dir) {
  const std::string tmp = TmpDirFor(dir);
  std::error_code ec;
  fs::remove_all(tmp, ec);  // stale leftover from a crashed save
  fs::create_directories(tmp, ec);
  if (ec) {
    return Status::Internal("cannot create directory '" + tmp +
                            "': " + ec.message());
  }

  // Build the manifest and per-table files in memory, then write each file
  // durably into the temp directory. Any failure — including an injected
  // fault — aborts before the rename, leaving a pre-existing snapshot at
  // `dir` untouched.
  auto save = [&]() -> Status {
    std::string manifest;
    if (db.wal() != nullptr) {
      manifest += "wal_lsn " + std::to_string(db.wal()->last_lsn()) + "\n";
    }
    for (const std::string& name : db.TableNames()) {
      CR_ASSIGN_OR_RETURN(const Table* table, db.GetTable(name));
      manifest += "table " + table->name() + "\n";
      for (const Column& col : table->schema().columns()) {
        if (col.type == ValueType::kList || col.type == ValueType::kNull) {
          return Status::Unimplemented(
              "cannot snapshot column '" + col.name + "' of type " +
              ValueTypeName(col.type));
        }
        manifest += "column " + col.name + " " + ValueTypeName(col.type) +
                    " " + (col.nullable ? "1" : "0") + "\n";
      }
      if (!table->primary_key().empty()) {
        manifest += "pk";
        for (const std::string& col : table->primary_key()) {
          manifest += " " + col;
        }
        manifest += "\n";
      }
      for (const HashIndex* index : table->hash_indexes()) {
        if (index->name() == "__pk") continue;  // recreated with the table
        manifest += "hashindex " + index->name() + " " +
                    (index->unique() ? "1" : "0");
        for (size_t ci : index->column_indices()) {
          manifest += " " + table->schema().column(ci).name;
        }
        manifest += "\n";
      }
      for (const OrderedIndex* index : table->ordered_indexes()) {
        manifest += "orderedindex " + index->name() + " " +
                    table->schema().column(index->column_index()).name + "\n";
      }
      manifest += "endtable\n";

      std::vector<Row> rows;
      rows.reserve(table->size());
      std::string rowids;
      table->Scan([&](RowId id, const Row& row) {
        rows.push_back(row);
        rowids += std::to_string(id) + "\n";
      });
      CR_RETURN_IF_ERROR(WriteFileWithFaults(
          (fs::path(tmp) / (table->name() + ".csv")).string(),
          ToCsv(table->schema(), rows), /*sync=*/true));
      CR_RETURN_IF_ERROR(WriteFileWithFaults(
          (fs::path(tmp) / (table->name() + ".rowids")).string(), rowids,
          /*sync=*/true));
    }
    for (const ForeignKey& fk : db.foreign_keys()) {
      manifest += "fk " + fk.table + " " + fk.column + " " + fk.ref_table +
                  " " + fk.ref_column + "\n";
    }
    CR_RETURN_IF_ERROR(
        WriteFileWithFaults((fs::path(tmp) / "_manifest.txt").string(),
                            manifest, /*sync=*/true));
    CR_RETURN_IF_ERROR(SyncDir(tmp));
    return PublishDir(tmp, dir);
  };

  Status s = save();
  if (!s.ok()) fs::remove_all(tmp, ec);  // best effort; stale tmp is benign
  return s;
}

Status CheckpointDatabase(Database& db, const std::string& dir) {
  CR_RETURN_IF_ERROR(SaveDatabase(db, dir));
  if (db.wal() != nullptr) {
    CR_RETURN_IF_ERROR(db.wal()->Reset());
  }
  return Status::OK();
}

namespace {

/// Parses the manifest and loads rows; `snapshot_lsn` receives the recorded
/// `wal_lsn` (0 for snapshots that predate the WAL).
Result<std::unique_ptr<Database>> LoadDatabaseImpl(const std::string& dir,
                                                   uint64_t* snapshot_lsn) {
  CR_ASSIGN_OR_RETURN(std::string manifest,
                      ReadFile((fs::path(dir) / "_manifest.txt").string()));
  auto db = std::make_unique<Database>();

  struct PendingIndex {
    std::string table;
    std::string name;
    bool unique = false;
    bool ordered = false;
    std::vector<std::string> columns;
  };
  std::vector<PendingIndex> indexes;
  struct PendingFk {
    std::string table, column, ref_table, ref_column;
  };
  std::vector<PendingFk> fks;
  std::vector<std::string> table_order;

  std::string current_table;
  std::vector<Column> columns;
  std::vector<std::string> pk;

  auto flush_table = [&]() -> Status {
    if (current_table.empty()) return Status::OK();
    CR_RETURN_IF_ERROR(
        db->CreateTable(current_table, Schema(columns), pk).status());
    table_order.push_back(current_table);
    current_table.clear();
    columns.clear();
    pk.clear();
    return Status::OK();
  };

  for (const std::string& raw : Split(manifest, '\n')) {
    std::vector<std::string> parts = SplitWhitespace(raw);
    if (parts.empty()) continue;
    const std::string& kind = parts[0];
    if (kind == "table" && parts.size() == 2) {
      current_table = parts[1];
    } else if (kind == "column" && parts.size() == 4) {
      CR_ASSIGN_OR_RETURN(ValueType type, ParseTypeName(parts[2]));
      columns.emplace_back(parts[1], type, parts[3] == "1");
    } else if (kind == "pk" && parts.size() >= 2) {
      pk.assign(parts.begin() + 1, parts.end());
    } else if (kind == "hashindex" && parts.size() >= 4) {
      PendingIndex index;
      index.table = current_table;
      index.name = parts[1];
      index.unique = parts[2] == "1";
      index.columns.assign(parts.begin() + 3, parts.end());
      indexes.push_back(std::move(index));
    } else if (kind == "orderedindex" && parts.size() == 3) {
      PendingIndex index;
      index.table = current_table;
      index.name = parts[1];
      index.ordered = true;
      index.columns.push_back(parts[2]);
      indexes.push_back(std::move(index));
    } else if (kind == "endtable") {
      CR_RETURN_IF_ERROR(flush_table());
    } else if (kind == "fk" && parts.size() == 5) {
      fks.push_back({parts[1], parts[2], parts[3], parts[4]});
    } else if (kind == "wal_lsn" && parts.size() == 2) {
      CR_ASSIGN_OR_RETURN(uint64_t lsn, ParseU64(parts[1], "wal_lsn"));
      if (snapshot_lsn != nullptr) *snapshot_lsn = lsn;
    } else {
      return Status::Corruption("bad manifest line: '" + raw + "'");
    }
  }
  CR_RETURN_IF_ERROR(flush_table());

  // Load rows before secondary indexes exist? Either order works; create
  // indexes first so unique violations in the data surface immediately.
  for (const PendingIndex& index : indexes) {
    CR_ASSIGN_OR_RETURN(Table * table, db->GetTable(index.table));
    if (index.ordered) {
      CR_RETURN_IF_ERROR(
          table->CreateOrderedIndex(index.name, index.columns[0]));
    } else {
      CR_RETURN_IF_ERROR(
          table->CreateHashIndex(index.name, index.columns, index.unique));
    }
  }

  for (const std::string& name : table_order) {
    CR_ASSIGN_OR_RETURN(Table * table, db->GetTable(name));
    CR_ASSIGN_OR_RETURN(std::string csv,
                        ReadFile((fs::path(dir) / (name + ".csv")).string()));
    CR_ASSIGN_OR_RETURN(std::vector<Row> rows,
                        ParseCsv(table->schema(), csv));
    // Restore rows at their original slot ids when the sidecar is present
    // (WAL records address rows by RowId); otherwise insert sequentially,
    // which keeps pre-WAL snapshots loadable.
    auto rowids = ReadFile((fs::path(dir) / (name + ".rowids")).string());
    if (rowids.ok()) {
      std::vector<std::string> ids = SplitWhitespace(*rowids);
      if (ids.size() != rows.size()) {
        return Status::Corruption("rowid sidecar of table '" + name +
                                  "' has " + std::to_string(ids.size()) +
                                  " ids for " + std::to_string(rows.size()) +
                                  " rows");
      }
      for (size_t i = 0; i < rows.size(); ++i) {
        CR_ASSIGN_OR_RETURN(
            uint64_t id, ParseU64(ids[i], "rowid of table '" + name + "'"));
        CR_RETURN_IF_ERROR(
            table->RestoreRow(static_cast<RowId>(id), std::move(rows[i])));
      }
    } else {
      for (Row& row : rows) {
        CR_RETURN_IF_ERROR(table->Insert(std::move(row)).status());
      }
    }
  }

  for (const PendingFk& fk : fks) {
    CR_RETURN_IF_ERROR(
        db->AddForeignKey(fk.table, fk.column, fk.ref_table, fk.ref_column));
  }
  return db;
}

}  // namespace

Result<std::unique_ptr<Database>> LoadDatabase(const std::string& dir) {
  return LoadDatabaseImpl(dir, nullptr);
}

Result<RecoveredDatabase> RecoverDatabase(const std::string& dir,
                                          const std::string& wal_path) {
  RecoveredDatabase out;
  CR_ASSIGN_OR_RETURN(out.db, LoadDatabaseImpl(dir, &out.snapshot_lsn));
  Database& db = *out.db;
  CR_ASSIGN_OR_RETURN(
      out.replay,
      ReplayWal(wal_path, out.snapshot_lsn,
                [&db](const WalRecord& record) -> Status {
                  if (record.type == WalRecordType::kEpoch) {
                    return Status::OK();  // cache-generation marker only
                  }
                  CR_ASSIGN_OR_RETURN(Table * table,
                                      db.GetTable(record.table));
                  switch (record.type) {
                    case WalRecordType::kInsert:
                      return table->RestoreRow(record.row_id, record.row);
                    case WalRecordType::kUpdate:
                      return table->Update(record.row_id, record.row);
                    case WalRecordType::kDelete:
                      return table->Delete(record.row_id);
                    default:
                      return Status::Corruption("unexpected WAL record type");
                  }
                }));
  return out;
}

}  // namespace courserank::storage
