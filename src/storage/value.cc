#include "storage/value.h"

#include <cmath>
#include <cstring>
#include <functional>

#include "common/logging.h"
#include "common/strings.h"

namespace courserank::storage {

const char* ValueTypeName(ValueType t) {
  switch (t) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kBool:
      return "BOOL";
    case ValueType::kInt:
      return "INT";
    case ValueType::kDouble:
      return "DOUBLE";
    case ValueType::kString:
      return "STRING";
    case ValueType::kList:
      return "LIST";
  }
  return "?";
}

ValueType Value::type() const {
  return static_cast<ValueType>(v_.index());
}

bool Value::AsBool() const {
  CR_CHECK(std::holds_alternative<bool>(v_));
  return std::get<bool>(v_);
}

int64_t Value::AsInt() const {
  CR_CHECK(std::holds_alternative<int64_t>(v_));
  return std::get<int64_t>(v_);
}

double Value::AsDouble() const {
  CR_CHECK(std::holds_alternative<double>(v_));
  return std::get<double>(v_);
}

const std::string& Value::AsString() const {
  CR_CHECK(std::holds_alternative<std::string>(v_));
  return std::get<std::string>(v_);
}

const Value::List& Value::AsList() const {
  CR_CHECK(std::holds_alternative<ListHandle>(v_));
  return *std::get<ListHandle>(v_);
}

Result<double> Value::ToDouble() const {
  switch (type()) {
    case ValueType::kBool:
      return AsBool() ? 1.0 : 0.0;
    case ValueType::kInt:
      return static_cast<double>(AsInt());
    case ValueType::kDouble:
      return AsDouble();
    default:
      return Status::InvalidArgument(std::string("cannot convert ") +
                                     ValueTypeName(type()) + " to DOUBLE");
  }
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kBool:
      return AsBool() ? "true" : "false";
    case ValueType::kInt:
      return std::to_string(AsInt());
    case ValueType::kDouble:
      return FormatDouble(AsDouble());
    case ValueType::kString:
      return AsString();
    case ValueType::kList: {
      std::string out = "[";
      const List& items = AsList();
      for (size_t i = 0; i < items.size(); ++i) {
        if (i > 0) out += ", ";
        out += items[i].ToString();
      }
      out += "]";
      return out;
    }
  }
  return "?";
}

namespace {

/// Rank used for cross-type ordering; int and double share a rank so they
/// compare numerically.
int TypeRank(ValueType t) {
  switch (t) {
    case ValueType::kNull:
      return 0;
    case ValueType::kBool:
      return 1;
    case ValueType::kInt:
    case ValueType::kDouble:
      return 2;
    case ValueType::kString:
      return 3;
    case ValueType::kList:
      return 4;
  }
  return 5;
}

/// Doubles at or beyond these bounds are outside int64 range. The lower
/// bound is exactly representable (-2^63); the upper is 2^63, the first
/// double past INT64_MAX.
constexpr double kInt64Lo = -9223372036854775808.0;
constexpr double kInt64Hi = 9223372036854775808.0;

int CompareDoubles(double a, double b) {
  // NaN forms one equivalence class below every other numeric, so the
  // ordering stays transitive (IEEE comparisons would make NaN unordered
  // and break hash-table equality).
  if (std::isnan(a)) return std::isnan(b) ? 0 : -1;
  if (std::isnan(b)) return 1;
  return a < b ? -1 : (a > b ? 1 : 0);
}

/// Per-type hash tags; arbitrary odd constants feeding HashMix64.
constexpr uint64_t kHashNull = 0x7b1dcb5c631f40adULL;
constexpr uint64_t kHashFalse = 0xa24baed4963ee407ULL;
constexpr uint64_t kHashTrue = 0x9fb21c651e98df25ULL;
constexpr uint64_t kHashNumeric = 0xd6e8feb86659fd93ULL;
constexpr uint64_t kHashReal = 0xc2b2ae3d27d4eb4fULL;
constexpr uint64_t kHashNaN = 0x5851f42d4c957f2dULL;
constexpr uint64_t kHashString = 0x8cb92ba72f3d8dd7ULL;
constexpr uint64_t kHashList = 0xff51afd7ed558ccdULL;

uint64_t HashInt64(int64_t i) {
  return HashMix64(kHashNumeric ^ static_cast<uint64_t>(i));
}

uint64_t HashDouble(double d) {
  if (std::isnan(d)) return kHashNaN;    // every NaN payload, one hash
  if (d == 0.0) d = 0.0;                 // -0.0 == 0.0, so same hash
  // Integral doubles inside int64 range compare equal to the matching int
  // (1 == 1.0), so they must share its hash.
  if (d >= kInt64Lo && d < kInt64Hi) {
    int64_t i = static_cast<int64_t>(d);
    if (static_cast<double>(i) == d) return HashInt64(i);
  }
  uint64_t bits;
  std::memcpy(&bits, &d, sizeof(bits));
  return HashMix64(kHashReal ^ bits);
}

}  // namespace

int Value::Compare(const Value& other) const {
  int ra = TypeRank(type());
  int rb = TypeRank(other.type());
  if (ra != rb) return ra < rb ? -1 : 1;
  switch (type()) {
    case ValueType::kNull:
      return 0;
    case ValueType::kBool:
      return static_cast<int>(AsBool()) - static_cast<int>(other.AsBool());
    case ValueType::kInt:
      if (other.type() == ValueType::kInt) {
        int64_t a = AsInt();
        int64_t b = other.AsInt();
        return a < b ? -1 : (a > b ? 1 : 0);
      }
      return CompareInt64Double(AsInt(), other.AsDouble());
    case ValueType::kDouble:
      if (other.type() == ValueType::kInt) {
        return -CompareInt64Double(other.AsInt(), AsDouble());
      }
      return CompareDoubles(AsDouble(), other.AsDouble());
    case ValueType::kString:
      return AsString().compare(other.AsString());
    case ValueType::kList: {
      const List& a = AsList();
      const List& b = other.AsList();
      for (size_t i = 0; i < a.size() && i < b.size(); ++i) {
        int c = a[i].Compare(b[i]);
        if (c != 0) return c;
      }
      if (a.size() == b.size()) return 0;
      return a.size() < b.size() ? -1 : 1;
    }
  }
  return 0;
}

size_t Value::Hash() const {
  switch (type()) {
    case ValueType::kNull:
      return static_cast<size_t>(kHashNull);
    case ValueType::kBool:
      return static_cast<size_t>(AsBool() ? kHashTrue : kHashFalse);
    case ValueType::kInt:
      return static_cast<size_t>(HashInt64(AsInt()));
    case ValueType::kDouble:
      return static_cast<size_t>(HashDouble(AsDouble()));
    case ValueType::kString: {
      // FNV-1a-64 over the bytes, then mixed so low bits avalanche.
      uint64_t h = 0xcbf29ce484222325ULL;
      for (unsigned char c : AsString()) {
        h ^= c;
        h *= 0x100000001b3ULL;
      }
      return static_cast<size_t>(HashMix64(kHashString ^ h));
    }
    case ValueType::kList: {
      uint64_t h = kHashList;
      for (const Value& v : AsList()) h = HashMix64(h ^ v.Hash());
      return static_cast<size_t>(h);
    }
  }
  return 0;
}

}  // namespace courserank::storage
