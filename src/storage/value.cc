#include "storage/value.h"

#include <functional>

#include "common/logging.h"
#include "common/strings.h"

namespace courserank::storage {

const char* ValueTypeName(ValueType t) {
  switch (t) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kBool:
      return "BOOL";
    case ValueType::kInt:
      return "INT";
    case ValueType::kDouble:
      return "DOUBLE";
    case ValueType::kString:
      return "STRING";
    case ValueType::kList:
      return "LIST";
  }
  return "?";
}

ValueType Value::type() const {
  return static_cast<ValueType>(v_.index());
}

bool Value::AsBool() const {
  CR_CHECK(std::holds_alternative<bool>(v_));
  return std::get<bool>(v_);
}

int64_t Value::AsInt() const {
  CR_CHECK(std::holds_alternative<int64_t>(v_));
  return std::get<int64_t>(v_);
}

double Value::AsDouble() const {
  CR_CHECK(std::holds_alternative<double>(v_));
  return std::get<double>(v_);
}

const std::string& Value::AsString() const {
  CR_CHECK(std::holds_alternative<std::string>(v_));
  return std::get<std::string>(v_);
}

const Value::List& Value::AsList() const {
  CR_CHECK(std::holds_alternative<ListHandle>(v_));
  return *std::get<ListHandle>(v_);
}

Result<double> Value::ToDouble() const {
  switch (type()) {
    case ValueType::kBool:
      return AsBool() ? 1.0 : 0.0;
    case ValueType::kInt:
      return static_cast<double>(AsInt());
    case ValueType::kDouble:
      return AsDouble();
    default:
      return Status::InvalidArgument(std::string("cannot convert ") +
                                     ValueTypeName(type()) + " to DOUBLE");
  }
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kBool:
      return AsBool() ? "true" : "false";
    case ValueType::kInt:
      return std::to_string(AsInt());
    case ValueType::kDouble:
      return FormatDouble(AsDouble());
    case ValueType::kString:
      return AsString();
    case ValueType::kList: {
      std::string out = "[";
      const List& items = AsList();
      for (size_t i = 0; i < items.size(); ++i) {
        if (i > 0) out += ", ";
        out += items[i].ToString();
      }
      out += "]";
      return out;
    }
  }
  return "?";
}

namespace {

/// Rank used for cross-type ordering; int and double share a rank so they
/// compare numerically.
int TypeRank(ValueType t) {
  switch (t) {
    case ValueType::kNull:
      return 0;
    case ValueType::kBool:
      return 1;
    case ValueType::kInt:
    case ValueType::kDouble:
      return 2;
    case ValueType::kString:
      return 3;
    case ValueType::kList:
      return 4;
  }
  return 5;
}

int Sign(double d) { return d < 0 ? -1 : (d > 0 ? 1 : 0); }

}  // namespace

int Value::Compare(const Value& other) const {
  int ra = TypeRank(type());
  int rb = TypeRank(other.type());
  if (ra != rb) return ra < rb ? -1 : 1;
  switch (type()) {
    case ValueType::kNull:
      return 0;
    case ValueType::kBool:
      return static_cast<int>(AsBool()) - static_cast<int>(other.AsBool());
    case ValueType::kInt:
      if (other.type() == ValueType::kInt) {
        int64_t a = AsInt();
        int64_t b = other.AsInt();
        return a < b ? -1 : (a > b ? 1 : 0);
      }
      return Sign(static_cast<double>(AsInt()) - other.AsDouble());
    case ValueType::kDouble: {
      double b = other.type() == ValueType::kInt
                     ? static_cast<double>(other.AsInt())
                     : other.AsDouble();
      return Sign(AsDouble() - b);
    }
    case ValueType::kString:
      return AsString().compare(other.AsString());
    case ValueType::kList: {
      const List& a = AsList();
      const List& b = other.AsList();
      for (size_t i = 0; i < a.size() && i < b.size(); ++i) {
        int c = a[i].Compare(b[i]);
        if (c != 0) return c;
      }
      if (a.size() == b.size()) return 0;
      return a.size() < b.size() ? -1 : 1;
    }
  }
  return 0;
}

size_t Value::Hash() const {
  switch (type()) {
    case ValueType::kNull:
      return 0x9e3779b9u;
    case ValueType::kBool:
      return AsBool() ? 0x11u : 0x22u;
    case ValueType::kInt:
      // Hash ints as doubles when exactly representable so 1 == 1.0 hashes
      // consistently with Compare().
      return std::hash<double>()(static_cast<double>(AsInt()));
    case ValueType::kDouble:
      return std::hash<double>()(AsDouble());
    case ValueType::kString:
      return std::hash<std::string>()(AsString());
    case ValueType::kList: {
      size_t h = 0xcbf29ce484222325ULL;
      for (const Value& v : AsList()) {
        h ^= v.Hash();
        h *= 0x100000001b3ULL;
      }
      return h;
    }
  }
  return 0;
}

}  // namespace courserank::storage
