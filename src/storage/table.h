#ifndef COURSERANK_STORAGE_TABLE_H_
#define COURSERANK_STORAGE_TABLE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "storage/chunked_table.h"
#include "storage/schema.h"
#include "storage/value.h"

namespace courserank::storage {

class WalWriter;

/// Stable identifier of a row within one table (slot position; slots are
/// never reused, deleted slots are tombstoned).
using RowId = uint64_t;

/// Hash index over one or more columns. Maintained by Table; exposed
/// read-only to query execution for index lookups.
class HashIndex {
 public:
  HashIndex(std::string name, std::vector<size_t> column_indices, bool unique)
      : name_(std::move(name)),
        column_indices_(std::move(column_indices)),
        unique_(unique) {}

  const std::string& name() const { return name_; }
  const std::vector<size_t>& column_indices() const {
    return column_indices_;
  }
  bool unique() const { return unique_; }

  /// Row ids whose key equals `key` (key = values of the indexed columns in
  /// index order). Missing keys yield an empty vector.
  const std::vector<RowId>* Lookup(const Row& key) const;

 private:
  friend class Table;

  Row ExtractKey(const Row& row) const;
  Status Add(const Row& row, RowId id);
  void Remove(const Row& row, RowId id);

  std::string name_;
  std::vector<size_t> column_indices_;
  bool unique_;
  std::unordered_map<Row, std::vector<RowId>, RowHash> map_;
};

/// Ordered (multimap) index over a single column, for range scans.
class OrderedIndex {
 public:
  OrderedIndex(std::string name, size_t column_index)
      : name_(std::move(name)), column_index_(column_index) {}

  const std::string& name() const { return name_; }
  size_t column_index() const { return column_index_; }

  /// Row ids whose key lies in [lo, hi]; a null bound is unbounded on that
  /// side. Results are in key order.
  std::vector<RowId> Range(const Value& lo, const Value& hi) const;

 private:
  friend class Table;

  void Add(const Value& key, RowId id);
  void Remove(const Value& key, RowId id);

  std::string name_;
  size_t column_index_;
  std::multimap<Value, RowId> map_;
};

/// An in-memory heap table with optional primary key and secondary indexes.
/// Rows live in append-only slots; deletion tombstones the slot so RowIds
/// stay stable for index postings and external references.
class Table {
 public:
  /// `primary_key`: names of the PK columns (may be empty for no PK). PK
  /// columns are implicitly NOT NULL and backed by a unique hash index.
  static Result<std::unique_ptr<Table>> Create(
      std::string name, Schema schema,
      std::vector<std::string> primary_key = {});

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  const std::vector<std::string>& primary_key() const { return pk_names_; }

  /// Number of live (non-deleted) rows.
  size_t size() const { return live_count_; }
  /// Number of slots including tombstones; RowIds range over [0, capacity).
  size_t capacity() const { return rows_.size(); }

  /// Validates against the schema and PK/unique constraints, then appends.
  /// With a WAL attached, the mutation is logged after validation and
  /// before it is applied; a failed log append rejects the mutation.
  Result<RowId> Insert(Row row);

  /// Replaces the row at `id`. Re-validates constraints and indexes.
  Status Update(RowId id, Row row);

  /// Sets a single column of an existing row.
  Status UpdateColumn(RowId id, size_t column, Value value);

  /// Tombstones the row at `id`.
  Status Delete(RowId id);

  /// Recovery-only insert at an explicit slot: re-creates the row at exactly
  /// `id` (which must be at or past the current capacity), padding any gap
  /// with tombstoned slots so snapshot reload and WAL replay reproduce the
  /// original slot layout. Never WAL-logged.
  Status RestoreRow(RowId id, Row row);

  /// Attaches (or detaches, with nullptr) a write-ahead log. Non-owning;
  /// normally set for all tables at once via Database::AttachWal.
  void set_wal(WalWriter* wal) { wal_ = wal; }
  WalWriter* wal() const { return wal_; }

  /// Returns the live row at `id`, or nullptr if deleted / out of range.
  const Row* Get(RowId id) const;

  /// Looks up by full primary key. NotFound when absent.
  Result<RowId> FindByPrimaryKey(const Row& key) const;

  /// Calls `fn(id, row)` for every live row, in slot order.
  void Scan(const std::function<void(RowId, const Row&)>& fn) const;

  /// Like Scan, but stops (after the current row) once `fn` returns false —
  /// the early-exit path for pushed-down scan limits.
  void ScanWhile(const std::function<bool(RowId, const Row&)>& fn) const;

  /// All live row ids in slot order.
  std::vector<RowId> LiveRowIds() const;

  /// Column-major mirror of the live rows, built lazily on first use
  /// (DESIGN.md §12). Inserts append through so the mirror stays warm
  /// across the common load-then-query lifecycle; Update/Delete drop it
  /// and the next call rebuilds. The pointer stays valid until the next
  /// mutation of this table — callers must not hold it across mutations.
  const ChunkedTable* columnar() const;

  /// Creates a (possibly unique) hash index over `columns`. Fails if any
  /// existing rows violate a unique constraint.
  Status CreateHashIndex(const std::string& index_name,
                         const std::vector<std::string>& columns, bool unique);

  /// Creates an ordered index over one column.
  Status CreateOrderedIndex(const std::string& index_name,
                            const std::string& column);

  /// Looks up a hash index usable for an equality probe on exactly
  /// `columns`; nullptr when none exists.
  const HashIndex* FindHashIndex(const std::vector<std::string>& columns) const;

  /// Ordered index on `column`, or nullptr.
  const OrderedIndex* FindOrderedIndex(const std::string& column) const;

  /// Equality probe through an index on `columns`; falls back to a scan when
  /// no suitable index exists. Returns live row ids.
  std::vector<RowId> LookupEqual(const std::vector<std::string>& columns,
                                 const Row& key) const;

  /// All hash indexes (including the implicit "__pk" index when a primary
  /// key exists), for catalog introspection and snapshots.
  std::vector<const HashIndex*> hash_indexes() const;
  std::vector<const OrderedIndex*> ordered_indexes() const;

 private:
  Table(std::string name, Schema schema, std::vector<std::string> pk_names,
        std::vector<size_t> pk_indices);

  Status CheckUniqueForInsert(const Row& row, const HashIndex& index) const;
  void AddToIndexes(const Row& row, RowId id);
  void RemoveFromIndexes(const Row& row, RowId id);
  void AppendToColumnar(const Row& row, RowId id);
  void InvalidateColumnar();

  std::string name_;
  Schema schema_;
  std::vector<std::string> pk_names_;
  std::vector<size_t> pk_indices_;

  std::vector<Row> rows_;
  std::vector<bool> deleted_;
  size_t live_count_ = 0;

  // Lazily-built columnar mirror; the mutex guards only build/invalidate
  // races between concurrent readers (mutations are single-threaded by the
  // existing Table contract).
  mutable std::mutex columnar_mu_;
  mutable std::unique_ptr<ChunkedTable> columnar_;

  std::vector<std::unique_ptr<HashIndex>> hash_indexes_;
  std::vector<std::unique_ptr<OrderedIndex>> ordered_indexes_;
  HashIndex* pk_index_ = nullptr;  // owned by hash_indexes_
  WalWriter* wal_ = nullptr;       // not owned; see set_wal
};

}  // namespace courserank::storage

#endif  // COURSERANK_STORAGE_TABLE_H_
