#include "storage/column.h"

namespace courserank::storage {

bool Int64RoundTripsDouble(int64_t v) {
  double d = static_cast<double>(v);
  if (d < -9223372036854775808.0 || d >= 9223372036854775808.0) return false;
  return static_cast<int64_t>(d) == v;
}

ColumnVector ColumnVector::Encode(const std::vector<Row>& rows, size_t begin,
                                  size_t end, size_t col,
                                  StringDictionary* dict) {
  ColumnVector out;
  size_t n = end - begin;
  out.nulls_.resize(n, 0);

  bool has_int = false;
  bool has_double = false;
  bool has_bool = false;
  bool has_string = false;
  bool has_other = false;
  bool ints_roundtrip = true;
  for (size_t i = 0; i < n; ++i) {
    const Value& v = rows[begin + i][col];
    switch (v.type()) {
      case ValueType::kNull:
        out.nulls_[i] = 1;
        break;
      case ValueType::kInt:
        has_int = true;
        ints_roundtrip = ints_roundtrip && Int64RoundTripsDouble(v.AsInt());
        break;
      case ValueType::kDouble:
        has_double = true;
        break;
      case ValueType::kBool:
        has_bool = true;
        break;
      case ValueType::kString:
        has_string = true;
        break;
      default:
        has_other = true;
        break;
    }
  }

  int categories = (has_int || has_double ? 1 : 0) + (has_bool ? 1 : 0) +
                   (has_string ? 1 : 0) + (has_other ? 1 : 0);
  if (has_other || categories > 1 || (has_double && !ints_roundtrip)) {
    out.encoding_ = ColumnEncoding::kValue;
  } else if (has_string) {
    out.encoding_ = ColumnEncoding::kDict;
  } else if (has_bool) {
    out.encoding_ = ColumnEncoding::kBool;
  } else if (has_double) {
    out.encoding_ = ColumnEncoding::kDouble;
  } else {
    out.encoding_ = ColumnEncoding::kInt64;  // all-INT, or all-NULL
  }

  switch (out.encoding_) {
    case ColumnEncoding::kInt64:
      out.ints_.resize(n, 0);
      for (size_t i = 0; i < n; ++i) {
        if (!out.nulls_[i]) out.ints_[i] = rows[begin + i][col].AsInt();
      }
      break;
    case ColumnEncoding::kDouble:
      out.doubles_.resize(n, 0.0);
      out.is_int_.resize(n, 0);
      for (size_t i = 0; i < n; ++i) {
        if (out.nulls_[i]) continue;
        const Value& v = rows[begin + i][col];
        if (v.type() == ValueType::kInt) {
          out.doubles_[i] = static_cast<double>(v.AsInt());
          out.is_int_[i] = 1;
        } else {
          out.doubles_[i] = v.AsDouble();
        }
      }
      break;
    case ColumnEncoding::kBool:
      out.bools_.resize(n, 0);
      for (size_t i = 0; i < n; ++i) {
        if (!out.nulls_[i]) {
          out.bools_[i] = rows[begin + i][col].AsBool() ? 1 : 0;
        }
      }
      break;
    case ColumnEncoding::kDict:
      out.ids_.resize(n, 0);
      for (size_t i = 0; i < n; ++i) {
        if (!out.nulls_[i]) {
          out.ids_[i] = dict->Intern(rows[begin + i][col].AsString());
        }
      }
      break;
    case ColumnEncoding::kValue:
      out.values_.resize(n);
      for (size_t i = 0; i < n; ++i) {
        if (!out.nulls_[i]) out.values_[i] = rows[begin + i][col];
      }
      break;
  }
  return out;
}

Value ColumnVector::Get(size_t i, const StringDictionary& dict) const {
  if (nulls_[i]) return Value::Null();
  switch (encoding_) {
    case ColumnEncoding::kInt64:
      return Value(ints_[i]);
    case ColumnEncoding::kDouble:
      // `is_int` restores the original INT tag; the cast is exact because
      // non-round-tripping ints never take this encoding.
      return is_int_[i] ? Value(static_cast<int64_t>(doubles_[i]))
                        : Value(doubles_[i]);
    case ColumnEncoding::kBool:
      return Value(bools_[i] != 0);
    case ColumnEncoding::kDict:
      return Value(dict.At(ids_[i]));
    case ColumnEncoding::kValue:
      return values_[i];
  }
  return Value::Null();
}

int ColumnVector::CompareCell(size_t i, const Value& other,
                              const StringDictionary& dict) const {
  switch (encoding_) {
    case ColumnEncoding::kInt64:
      return Value(ints_[i]).Compare(other);
    case ColumnEncoding::kDouble:
      return is_int_[i] ? Value(static_cast<int64_t>(doubles_[i])).Compare(other)
                        : Value(doubles_[i]).Compare(other);
    case ColumnEncoding::kBool:
      return Value(bools_[i] != 0).Compare(other);
    case ColumnEncoding::kDict: {
      if (other.type() == ValueType::kString) {
        int c = dict.At(ids_[i]).compare(other.AsString());
        return c < 0 ? -1 : (c > 0 ? 1 : 0);
      }
      // Cross-type: STRING ranks above everything but LIST.
      return other.type() == ValueType::kList ? -1 : 1;
    }
    case ColumnEncoding::kValue:
      return values_[i].Compare(other);
  }
  return 0;
}

}  // namespace courserank::storage
