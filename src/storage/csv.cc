#include "storage/csv.h"

#include <cerrno>
#include <charconv>
#include <cmath>
#include <cstdlib>
#include <fstream>

namespace courserank::storage {

namespace {

std::string EscapeCell(const std::string& cell) {
  // An empty cell is quoted so it stays distinguishable from NULL (which is
  // written as nothing at all).
  bool needs_quote =
      cell.empty() || cell.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quote) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += "\"";
  return out;
}

/// Renders one value as a CSV cell. Doubles use the shortest representation
/// that parses back to the same bits (std::to_chars), not the display-oriented
/// Value::ToString, so snapshots round-trip exactly.
std::string RenderCell(const Value& v) {
  if (v.type() == ValueType::kDouble) {
    char buf[32];
    auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), v.AsDouble());
    if (ec == std::errc()) return std::string(buf, end);
  }
  return v.ToString();
}

/// One parsed cell plus whether it was quoted in the input; ParseCsv needs
/// quotedness to tell an empty STRING ("") from NULL (nothing).
struct CsvCell {
  std::string text;
  bool quoted = false;
};

/// Splits one CSV record starting at `pos`; advances `pos` past the record's
/// trailing newline. Exactly one line terminator (`\n`, `\r`, or `\r\n`) is
/// consumed, so an empty line is an empty single-cell record, not part of the
/// previous one. Characters after a closing quote that are not a separator
/// are Corruption (`"a"b` is malformed, not "ab").
Result<std::vector<CsvCell>> ParseRecord(const std::string& text,
                                         size_t& pos) {
  std::vector<CsvCell> cells;
  CsvCell cell;
  bool in_quotes = false;
  bool was_quoted = false;  // cell had a closing quote already
  auto end_record = [&]() {
    if (pos < text.size() && text[pos] == '\r') ++pos;
    if (pos < text.size() && text[pos] == '\n') ++pos;
    cells.push_back(std::move(cell));
    return cells;
  };
  while (pos < text.size()) {
    char c = text[pos];
    if (in_quotes) {
      if (c == '"') {
        if (pos + 1 < text.size() && text[pos + 1] == '"') {
          cell.text += '"';
          ++pos;
        } else {
          in_quotes = false;
          was_quoted = true;
        }
      } else {
        cell.text += c;
      }
    } else if (c == ',') {
      cells.push_back(std::move(cell));
      cell = CsvCell{};
      was_quoted = false;
    } else if (c == '\n' || c == '\r') {
      return end_record();
    } else if (was_quoted) {
      return Status::Corruption(
          "stray character after closing quote in CSV record");
    } else if (c == '"') {
      if (!cell.text.empty()) {
        return Status::Corruption("quote inside unquoted CSV cell");
      }
      in_quotes = true;
      cell.quoted = true;
    } else {
      cell.text += c;
    }
    ++pos;
  }
  if (in_quotes) {
    return Status::Corruption("unterminated quote in CSV record");
  }
  cells.push_back(std::move(cell));
  return cells;
}

Result<Value> CoerceCell(const CsvCell& cell, ValueType type) {
  // Only an *unquoted* empty cell is NULL; a quoted empty cell ("") is a
  // genuine empty value (meaningful for STRING, malformed for the rest).
  if (cell.text.empty() && !cell.quoted) return Value::Null();
  switch (type) {
    case ValueType::kBool:
      if (cell.text == "true" || cell.text == "1") return Value(true);
      if (cell.text == "false" || cell.text == "0") return Value(false);
      return Status::InvalidArgument("bad BOOL cell: '" + cell.text + "'");
    case ValueType::kInt: {
      char* end = nullptr;
      errno = 0;
      long long v = std::strtoll(cell.text.c_str(), &end, 10);
      if (end == nullptr || *end != '\0' || end == cell.text.c_str()) {
        return Status::InvalidArgument("bad INT cell: '" + cell.text + "'");
      }
      if (errno == ERANGE) {
        return Status::InvalidArgument("INT cell out of int64 range: '" +
                                       cell.text + "'");
      }
      return Value(static_cast<int64_t>(v));
    }
    case ValueType::kDouble: {
      char* end = nullptr;
      errno = 0;
      double v = std::strtod(cell.text.c_str(), &end);
      if (end == nullptr || *end != '\0' || end == cell.text.c_str()) {
        return Status::InvalidArgument("bad DOUBLE cell: '" + cell.text +
                                       "'");
      }
      // Overflow clamps to ±HUGE_VAL with ERANGE set; underflow (also
      // ERANGE) yields the nearest denormal and is accepted.
      if (errno == ERANGE && std::abs(v) == HUGE_VAL) {
        return Status::InvalidArgument("DOUBLE cell out of range: '" +
                                       cell.text + "'");
      }
      return Value(v);
    }
    case ValueType::kString:
      return Value(cell.text);
    default:
      return Status::Unimplemented("cannot parse CSV cell of type " +
                                   std::string(ValueTypeName(type)));
  }
}

}  // namespace

std::string ToCsv(const Schema& schema, const std::vector<Row>& rows) {
  std::string out;
  for (size_t i = 0; i < schema.num_columns(); ++i) {
    if (i > 0) out += ",";
    out += EscapeCell(schema.column(i).name);
  }
  out += "\n";
  for (const Row& row : rows) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out += ",";
      if (!row[i].is_null()) out += EscapeCell(RenderCell(row[i]));
    }
    out += "\n";
  }
  return out;
}

Status WriteCsv(const Table& table, const std::string& path) {
  std::ofstream f(path);
  if (!f.is_open()) {
    return Status::Internal("cannot open '" + path + "' for writing");
  }
  std::vector<Row> rows;
  rows.reserve(table.size());
  table.Scan([&](RowId, const Row& row) { rows.push_back(row); });
  f << ToCsv(table.schema(), rows);
  return f.good() ? Status::OK()
                  : Status::Internal("write to '" + path + "' failed");
}

Result<std::vector<Row>> ParseCsv(const Schema& schema,
                                  const std::string& text) {
  std::vector<Row> rows;
  size_t pos = 0;
  bool first = true;
  while (pos < text.size()) {
    CR_ASSIGN_OR_RETURN(std::vector<CsvCell> cells, ParseRecord(text, pos));
    if (first) {  // header row
      first = false;
      continue;
    }
    // A single unquoted empty cell is a blank line — except for one-column
    // schemas, where it is a legitimate record (a NULL cell).
    if (cells.size() == 1 && cells[0].text.empty() && !cells[0].quoted &&
        schema.num_columns() != 1) {
      continue;
    }
    if (cells.size() != schema.num_columns()) {
      return Status::Corruption(
          "CSV record has " + std::to_string(cells.size()) +
          " cells, schema has " + std::to_string(schema.num_columns()));
    }
    Row row;
    row.reserve(cells.size());
    for (size_t i = 0; i < cells.size(); ++i) {
      CR_ASSIGN_OR_RETURN(Value v,
                          CoerceCell(cells[i], schema.column(i).type));
      row.push_back(std::move(v));
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

}  // namespace courserank::storage
