#include "storage/csv.h"

#include <cstdlib>
#include <fstream>

namespace courserank::storage {

namespace {

std::string EscapeCell(const std::string& cell) {
  bool needs_quote = cell.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quote) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += "\"";
  return out;
}

/// Splits one CSV record starting at `pos`; advances `pos` past the record's
/// trailing newline.
std::vector<std::string> ParseRecord(const std::string& text, size_t& pos) {
  std::vector<std::string> cells;
  std::string cell;
  bool in_quotes = false;
  while (pos < text.size()) {
    char c = text[pos];
    if (in_quotes) {
      if (c == '"') {
        if (pos + 1 < text.size() && text[pos + 1] == '"') {
          cell += '"';
          ++pos;
        } else {
          in_quotes = false;
        }
      } else {
        cell += c;
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      cells.push_back(std::move(cell));
      cell.clear();
    } else if (c == '\n' || c == '\r') {
      while (pos < text.size() && (text[pos] == '\n' || text[pos] == '\r'))
        ++pos;
      cells.push_back(std::move(cell));
      return cells;
    } else {
      cell += c;
    }
    ++pos;
  }
  cells.push_back(std::move(cell));
  return cells;
}

Result<Value> CoerceCell(const std::string& cell, ValueType type) {
  if (cell.empty()) return Value::Null();
  switch (type) {
    case ValueType::kBool:
      if (cell == "true" || cell == "1") return Value(true);
      if (cell == "false" || cell == "0") return Value(false);
      return Status::InvalidArgument("bad BOOL cell: '" + cell + "'");
    case ValueType::kInt: {
      char* end = nullptr;
      long long v = std::strtoll(cell.c_str(), &end, 10);
      if (end == nullptr || *end != '\0') {
        return Status::InvalidArgument("bad INT cell: '" + cell + "'");
      }
      return Value(static_cast<int64_t>(v));
    }
    case ValueType::kDouble: {
      char* end = nullptr;
      double v = std::strtod(cell.c_str(), &end);
      if (end == nullptr || *end != '\0') {
        return Status::InvalidArgument("bad DOUBLE cell: '" + cell + "'");
      }
      return Value(v);
    }
    case ValueType::kString:
      return Value(cell);
    default:
      return Status::Unimplemented("cannot parse CSV cell of type " +
                                   std::string(ValueTypeName(type)));
  }
}

}  // namespace

std::string ToCsv(const Schema& schema, const std::vector<Row>& rows) {
  std::string out;
  for (size_t i = 0; i < schema.num_columns(); ++i) {
    if (i > 0) out += ",";
    out += EscapeCell(schema.column(i).name);
  }
  out += "\n";
  for (const Row& row : rows) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out += ",";
      if (!row[i].is_null()) out += EscapeCell(row[i].ToString());
    }
    out += "\n";
  }
  return out;
}

Status WriteCsv(const Table& table, const std::string& path) {
  std::ofstream f(path);
  if (!f.is_open()) {
    return Status::Internal("cannot open '" + path + "' for writing");
  }
  std::vector<Row> rows;
  rows.reserve(table.size());
  table.Scan([&](RowId, const Row& row) { rows.push_back(row); });
  f << ToCsv(table.schema(), rows);
  return f.good() ? Status::OK()
                  : Status::Internal("write to '" + path + "' failed");
}

Result<std::vector<Row>> ParseCsv(const Schema& schema,
                                  const std::string& text) {
  std::vector<Row> rows;
  size_t pos = 0;
  bool first = true;
  while (pos < text.size()) {
    std::vector<std::string> cells = ParseRecord(text, pos);
    if (first) {  // header row
      first = false;
      continue;
    }
    if (cells.size() == 1 && cells[0].empty()) continue;  // blank line
    if (cells.size() != schema.num_columns()) {
      return Status::Corruption(
          "CSV record has " + std::to_string(cells.size()) +
          " cells, schema has " + std::to_string(schema.num_columns()));
    }
    Row row;
    row.reserve(cells.size());
    for (size_t i = 0; i < cells.size(); ++i) {
      CR_ASSIGN_OR_RETURN(Value v,
                          CoerceCell(cells[i], schema.column(i).type));
      row.push_back(std::move(v));
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

}  // namespace courserank::storage
