#include "storage/fault.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "common/logging.h"
#include "common/strings.h"
#include "obs/metrics.h"

namespace courserank::storage {

namespace {

obs::Counter& InjectedCounter() {
  static obs::Counter* c = obs::MetricsRegistry::Default().GetCounter(
      "cr_storage_faults_injected_total");
  return *c;
}

}  // namespace

FaultInjector& FaultInjector::Default() {
  static FaultInjector* injector = [] {
    auto* f = new FaultInjector();
    if (const char* spec = std::getenv("COURSERANK_FAULT")) f->ParseEnv(spec);
    return f;
  }();
  return *injector;
}

void FaultInjector::ParseEnv(const char* spec) {
  std::vector<std::string> parts = Split(spec, ':');
  if (parts.size() >= 2 && parts[0] == "fail") {
    Arm(Kind::kFail, std::strtoull(parts[1].c_str(), nullptr, 10));
  } else if (parts.size() >= 3 && parts[0] == "truncate") {
    Arm(Kind::kTruncate, std::strtoull(parts[1].c_str(), nullptr, 10),
        std::strtoull(parts[2].c_str(), nullptr, 10));
  } else {
    CR_LOG(WARN, "ignoring malformed COURSERANK_FAULT spec '%s'", spec);
  }
}

void FaultInjector::Arm(Kind kind, uint64_t nth, size_t keep_bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  kind_ = kind;
  nth_ = nth;
  keep_bytes_ = keep_bytes;
  writes_seen_ = 0;
  dead_ = false;
}

void FaultInjector::Disarm() {
  std::lock_guard<std::mutex> lock(mu_);
  kind_ = Kind::kNone;
  nth_ = 0;
  keep_bytes_ = 0;
  writes_seen_ = 0;
  dead_ = false;
}

FaultInjector::WriteDecision FaultInjector::BeforeWrite(size_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  if (dead_) return {true, 0};
  if (kind_ == Kind::kNone) return {false, n};
  if (++writes_seen_ != nth_) return {false, n};
  dead_ = true;
  InjectedCounter().Add();
  if (kind_ == Kind::kTruncate) return {true, std::min(keep_bytes_, n)};
  return {true, 0};
}

uint64_t FaultInjector::writes_seen() const {
  std::lock_guard<std::mutex> lock(mu_);
  return writes_seen_;
}

bool FaultInjector::dead() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dead_;
}

Status WriteFdWithFaults(int fd, std::string_view contents,
                         const std::string& what) {
  FaultInjector::WriteDecision d =
      FaultInjector::Default().BeforeWrite(contents.size());
  size_t want = d.allowed;
  size_t done = 0;
  while (done < want) {
    ssize_t n = ::write(fd, contents.data() + done, want - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal("write to " + what +
                              " failed: " + std::strerror(errno));
    }
    done += static_cast<size_t>(n);
  }
  if (d.fail) {
    return Status::Internal("injected fault while writing " + what);
  }
  return Status::OK();
}

Status SyncDir(const std::string& dir) {
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) {
    return Status::Internal("cannot open directory '" + dir +
                            "': " + std::strerror(errno));
  }
  Status s = Status::OK();
  if (::fsync(fd) != 0) {
    s = Status::Internal("fsync of directory '" + dir +
                         "' failed: " + std::strerror(errno));
  }
  ::close(fd);
  return s;
}

Status WriteFileWithFaults(const std::string& path, std::string_view contents,
                           bool sync) {
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                  0644);
  if (fd < 0) {
    return Status::Internal("cannot open '" + path +
                            "' for writing: " + std::strerror(errno));
  }
  Status s = WriteFdWithFaults(fd, contents, "'" + path + "'");
  if (s.ok() && sync && ::fsync(fd) != 0) {
    s = Status::Internal("fsync of '" + path +
                         "' failed: " + std::strerror(errno));
  }
  ::close(fd);
  return s;
}

}  // namespace courserank::storage
