#ifndef COURSERANK_STORAGE_CHUNKED_TABLE_H_
#define COURSERANK_STORAGE_CHUNKED_TABLE_H_

#include <cstdint>
#include <vector>

#include "storage/column.h"
#include "storage/dictionary.h"
#include "storage/value.h"

namespace courserank::storage {

/// A sealed run of rows in column-major layout: one ColumnVector per schema
/// column plus the originating slot ids (live rows only, in slot order).
struct ColumnChunk {
  std::vector<ColumnVector> columns;
  std::vector<uint64_t> row_ids;

  size_t size() const { return row_ids.size(); }
};

/// Column-major mirror of a Table's live rows (DESIGN.md §12): rows
/// accumulate into a row-major pending tail and seal into typed
/// ColumnChunks of `kChunkRows`, sharing one append-only per-table string
/// dictionary. The chunk sequence covers live rows in slot order, so a scan
/// over chunks-then-pending visits rows exactly as Table::Scan does.
///
/// The mirror is derived state: Table builds it lazily, appends through on
/// Insert/RestoreRow, and drops it wholesale on Update/Delete (mutating a
/// sealed chunk in place is not supported).
class ChunkedTable {
 public:
  /// ~4k rows amortizes per-chunk dispatch while keeping a chunk's working
  /// set cache-resident (SNIPPETS.md Snippet 3 uses the same shape).
  static constexpr size_t kChunkRows = 4096;

  explicit ChunkedTable(size_t num_columns) : num_columns_(num_columns) {}

  /// Appends a live row (copies); seals a chunk when the pending tail
  /// reaches kChunkRows. Ids must arrive in increasing slot order.
  void Append(const Row& row, uint64_t id);

  const StringDictionary& dict() const { return dict_; }
  const std::vector<ColumnChunk>& chunks() const { return chunks_; }

  /// Rows not yet sealed into a chunk, row-major, in slot order after the
  /// last chunk. Scans must cover chunks() then pending().
  const std::vector<Row>& pending() const { return pending_; }
  const std::vector<uint64_t>& pending_ids() const { return pending_ids_; }

  size_t num_columns() const { return num_columns_; }
  size_t size() const { return sealed_rows_ + pending_.size(); }

 private:
  size_t num_columns_;
  StringDictionary dict_;
  std::vector<ColumnChunk> chunks_;
  size_t sealed_rows_ = 0;
  std::vector<Row> pending_;
  std::vector<uint64_t> pending_ids_;
};

}  // namespace courserank::storage

#endif  // COURSERANK_STORAGE_CHUNKED_TABLE_H_
