#include "storage/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "storage/fault.h"

namespace courserank::storage {

namespace {

// ------------------------------------------------------------------ metrics

obs::Counter& AppendsCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Default().GetCounter("cr_wal_appends_total");
  return *c;
}

obs::Counter& AppendBytesCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Default().GetCounter("cr_wal_append_bytes_total");
  return *c;
}

obs::Counter& FsyncsCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Default().GetCounter("cr_wal_fsyncs_total");
  return *c;
}

obs::Counter& ReplaysCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Default().GetCounter("cr_wal_replays_total");
  return *c;
}

obs::Counter& ReplayedRecordsCounter() {
  static obs::Counter* c = obs::MetricsRegistry::Default().GetCounter(
      "cr_wal_replayed_records_total");
  return *c;
}

obs::Counter& TornTailsCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Default().GetCounter("cr_wal_torn_tails_total");
  return *c;
}

obs::Histogram& AppendNsHistogram() {
  static obs::Histogram* h =
      obs::MetricsRegistry::Default().GetHistogram("cr_wal_append_ns");
  return *h;
}

obs::Histogram& FsyncNsHistogram() {
  static obs::Histogram* h =
      obs::MetricsRegistry::Default().GetHistogram("cr_wal_fsync_ns");
  return *h;
}

// ------------------------------------------------------- binary en/decoding

void PutU32(std::string& out, uint32_t v) {
  out.push_back(static_cast<char>(v & 0xff));
  out.push_back(static_cast<char>((v >> 8) & 0xff));
  out.push_back(static_cast<char>((v >> 16) & 0xff));
  out.push_back(static_cast<char>((v >> 24) & 0xff));
}

void PutU64(std::string& out, uint64_t v) {
  PutU32(out, static_cast<uint32_t>(v & 0xffffffffu));
  PutU32(out, static_cast<uint32_t>(v >> 32));
}

void PutString(std::string& out, std::string_view s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out.append(s.data(), s.size());
}

/// Bounds-checked little-endian reader over a payload.
class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  bool ReadU8(uint8_t* v) {
    if (pos_ + 1 > data_.size()) return false;
    *v = static_cast<uint8_t>(data_[pos_++]);
    return true;
  }

  bool ReadU32(uint32_t* v) {
    if (pos_ + 4 > data_.size()) return false;
    *v = 0;
    for (int i = 0; i < 4; ++i) {
      *v |= static_cast<uint32_t>(static_cast<uint8_t>(data_[pos_ + i]))
            << (8 * i);
    }
    pos_ += 4;
    return true;
  }

  bool ReadU64(uint64_t* v) {
    uint32_t lo = 0, hi = 0;
    if (!ReadU32(&lo) || !ReadU32(&hi)) return false;
    *v = (static_cast<uint64_t>(hi) << 32) | lo;
    return true;
  }

  bool ReadString(std::string* s) {
    uint32_t len = 0;
    if (!ReadU32(&len)) return false;
    if (pos_ + len > data_.size()) return false;
    s->assign(data_.data() + pos_, len);
    pos_ += len;
    return true;
  }

  bool at_end() const { return pos_ == data_.size(); }

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

Status EncodeValue(std::string& out, const Value& v) {
  ValueType t = v.type();
  out.push_back(static_cast<char>(t));
  switch (t) {
    case ValueType::kNull:
      return Status::OK();
    case ValueType::kBool:
      out.push_back(v.AsBool() ? 1 : 0);
      return Status::OK();
    case ValueType::kInt:
      PutU64(out, static_cast<uint64_t>(v.AsInt()));
      return Status::OK();
    case ValueType::kDouble: {
      uint64_t bits;
      double d = v.AsDouble();
      std::memcpy(&bits, &d, sizeof(bits));
      PutU64(out, bits);
      return Status::OK();
    }
    case ValueType::kString:
      PutString(out, v.AsString());
      return Status::OK();
    case ValueType::kList:
      return Status::Unimplemented("LIST values cannot be WAL-logged");
  }
  return Status::Internal("unhandled value type");
}

Result<Value> DecodeValue(Reader& r) {
  uint8_t tag = 0;
  if (!r.ReadU8(&tag)) return Status::Corruption("truncated value tag");
  switch (static_cast<ValueType>(tag)) {
    case ValueType::kNull:
      return Value::Null();
    case ValueType::kBool: {
      uint8_t b = 0;
      if (!r.ReadU8(&b)) return Status::Corruption("truncated BOOL value");
      return Value(b != 0);
    }
    case ValueType::kInt: {
      uint64_t v = 0;
      if (!r.ReadU64(&v)) return Status::Corruption("truncated INT value");
      return Value(static_cast<int64_t>(v));
    }
    case ValueType::kDouble: {
      uint64_t bits = 0;
      if (!r.ReadU64(&bits)) {
        return Status::Corruption("truncated DOUBLE value");
      }
      double d;
      std::memcpy(&d, &bits, sizeof(d));
      return Value(d);
    }
    case ValueType::kString: {
      std::string s;
      if (!r.ReadString(&s)) {
        return Status::Corruption("truncated STRING value");
      }
      return Value(std::move(s));
    }
    default:
      return Status::Corruption("unknown value tag " + std::to_string(tag));
  }
}

constexpr size_t kFrameHeaderBytes = 8;  // u32 length + u32 crc
constexpr uint32_t kMaxPayloadBytes = 1u << 30;

/// One frame scanned off the log. `frame_end` is the offset just past it.
struct ScannedFrame {
  std::string_view payload;
  size_t frame_end = 0;
};

/// Reads the frame at `pos`; nullopt when the bytes from `pos` do not form a
/// complete, checksum-valid frame (a torn tail).
std::optional<ScannedFrame> ReadFrame(std::string_view log, size_t pos) {
  if (pos + kFrameHeaderBytes > log.size()) return std::nullopt;
  Reader header(log.substr(pos, kFrameHeaderBytes));
  uint32_t len = 0, crc = 0;
  header.ReadU32(&len);
  header.ReadU32(&crc);
  if (len > kMaxPayloadBytes) return std::nullopt;
  if (pos + kFrameHeaderBytes + len > log.size()) return std::nullopt;
  std::string_view payload = log.substr(pos + kFrameHeaderBytes, len);
  if (Crc32(payload.data(), payload.size()) != crc) return std::nullopt;
  return ScannedFrame{payload, pos + kFrameHeaderBytes + len};
}

}  // namespace

uint32_t Crc32(const void* data, size_t n, uint32_t seed) {
  static const uint32_t* table = [] {
    auto* t = new uint32_t[256];
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  uint32_t crc = seed ^ 0xFFFFFFFFu;
  const auto* p = static_cast<const uint8_t*>(data);
  for (size_t i = 0; i < n; ++i) {
    crc = table[(crc ^ p[i]) & 0xff] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

Result<std::string> EncodeWalPayload(const WalRecord& record) {
  std::string out;
  out.push_back(static_cast<char>(record.type));
  PutU64(out, record.lsn);
  switch (record.type) {
    case WalRecordType::kInsert:
    case WalRecordType::kUpdate:
    case WalRecordType::kDelete:
      PutString(out, record.table);
      PutU64(out, record.row_id);
      PutU32(out, static_cast<uint32_t>(record.row.size()));
      for (const Value& v : record.row) {
        CR_RETURN_IF_ERROR(EncodeValue(out, v));
      }
      return out;
    case WalRecordType::kEpoch:
      PutU64(out, record.epoch);
      return out;
    case WalRecordType::kLsnFloor:
      return out;  // the LSN itself is the whole message
  }
  return Status::InvalidArgument("unknown WAL record type");
}

Result<WalRecord> DecodeWalPayload(std::string_view payload) {
  Reader r(payload);
  uint8_t type = 0;
  WalRecord record;
  if (!r.ReadU8(&type) || !r.ReadU64(&record.lsn)) {
    return Status::Corruption("truncated WAL record header");
  }
  record.type = static_cast<WalRecordType>(type);
  switch (record.type) {
    case WalRecordType::kInsert:
    case WalRecordType::kUpdate:
    case WalRecordType::kDelete: {
      uint32_t count = 0;
      if (!r.ReadString(&record.table) || !r.ReadU64(&record.row_id) ||
          !r.ReadU32(&count)) {
        return Status::Corruption("truncated WAL mutation record");
      }
      record.row.reserve(count);
      for (uint32_t i = 0; i < count; ++i) {
        CR_ASSIGN_OR_RETURN(Value v, DecodeValue(r));
        record.row.push_back(std::move(v));
      }
      break;
    }
    case WalRecordType::kEpoch:
      if (!r.ReadU64(&record.epoch)) {
        return Status::Corruption("truncated WAL epoch record");
      }
      break;
    case WalRecordType::kLsnFloor:
      break;
    default:
      return Status::Corruption("unknown WAL record type " +
                                std::to_string(type));
  }
  if (!r.at_end()) {
    return Status::Corruption("trailing bytes in WAL record");
  }
  return record;
}

// ---------------------------------------------------------------- WalWriter

Result<std::unique_ptr<WalWriter>> WalWriter::Open(const std::string& path,
                                                   Options options) {
  // Scan any existing log: resume LSNs after the last committed record
  // (kLsnFloor markers included) and drop a torn tail so the next append
  // starts on a frame boundary.
  CR_ASSIGN_OR_RETURN(WalReplayStats stats,
                      ReplayWal(path, UINT64_MAX,
                                [](const WalRecord&) { return Status::OK(); }));
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_CLOEXEC, 0644);
  if (fd < 0) {
    return Status::Internal("cannot open WAL '" + path +
                            "': " + std::strerror(errno));
  }
  if (::ftruncate(fd, static_cast<off_t>(stats.valid_bytes)) != 0 ||
      ::lseek(fd, 0, SEEK_END) < 0) {
    Status s = Status::Internal("cannot truncate WAL '" + path +
                                "' to its valid prefix: " +
                                std::strerror(errno));
    ::close(fd);
    return s;
  }
  // O_CREAT may have made a new directory entry; fsync the parent so the
  // file — and with it any record a later Sync() makes durable — cannot
  // itself vanish after a crash.
  {
    std::filesystem::path parent = std::filesystem::path(path).parent_path();
    Status s = SyncDir(parent.empty() ? "." : parent.string());
    if (!s.ok()) {
      ::close(fd);
      return s;
    }
  }
  uint64_t next_lsn = std::max(stats.last_lsn + 1, options.min_next_lsn);
  return std::unique_ptr<WalWriter>(
      new WalWriter(path, fd, options, next_lsn));
}

WalWriter::~WalWriter() {
  if (fd_ >= 0) ::close(fd_);
}

Status WalWriter::WriteFrame(const WalRecord& record) {
  CR_ASSIGN_OR_RETURN(std::string payload, EncodeWalPayload(record));
  std::string frame;
  frame.reserve(kFrameHeaderBytes + payload.size());
  PutU32(frame, static_cast<uint32_t>(payload.size()));
  PutU32(frame, Crc32(payload.data(), payload.size()));
  frame += payload;
  CR_RETURN_IF_ERROR(WriteFdWithFaults(fd_, frame, "WAL '" + path_ + "'"));
  AppendBytesCounter().Add(frame.size());
  return Status::OK();
}

Result<uint64_t> WalWriter::Append(WalRecord record) {
  if (failed_) {
    return Status::FailedPrecondition(
        "WAL '" + path_ + "' is failed; reopen to resume appends");
  }
  record.lsn = next_lsn_;
  uint64_t start = obs::NowNs();
  Status s = WriteFrame(record);
  if (!s.ok()) {
    failed_ = true;
    return s;
  }
  if (options_.sync_each_append) {
    Status sync = Sync();
    if (!sync.ok()) {
      failed_ = true;
      return sync;
    }
  }
  AppendNsHistogram().Record(obs::NowNs() - start);
  AppendsCounter().Add();
  return next_lsn_++;
}

Result<uint64_t> WalWriter::AppendMutation(WalRecordType type,
                                           const std::string& table,
                                           RowId row_id, const Row& row) {
  WalRecord record;
  record.type = type;
  record.table = table;
  record.row_id = row_id;
  record.row = row;
  return Append(std::move(record));
}

Result<uint64_t> WalWriter::AppendEpoch(uint64_t epoch) {
  WalRecord record;
  record.type = WalRecordType::kEpoch;
  record.epoch = epoch;
  return Append(std::move(record));
}

Status WalWriter::Sync() {
  uint64_t start = obs::NowNs();
  if (::fsync(fd_) != 0) {
    return Status::Internal("fsync of WAL '" + path_ +
                            "' failed: " + std::strerror(errno));
  }
  FsyncNsHistogram().Record(obs::NowNs() - start);
  FsyncsCounter().Add();
  return Status::OK();
}

Status WalWriter::Reset() {
  if (::ftruncate(fd_, 0) != 0 || ::lseek(fd_, 0, SEEK_SET) < 0) {
    failed_ = true;
    return Status::Internal("cannot reset WAL '" + path_ +
                            "': " + std::strerror(errno));
  }
  // Seed the empty log with an LSN floor so a process restart resumes the
  // numbering past what the snapshot owns; without it, Open() would restart
  // at 1 and the next recovery would skip every post-checkpoint append as
  // "already in the snapshot".
  if (last_lsn() > 0) {
    WalRecord floor;
    floor.type = WalRecordType::kLsnFloor;
    floor.lsn = last_lsn();
    Status s = WriteFrame(floor);
    if (!s.ok()) {
      failed_ = true;
      return s;
    }
  }
  if (::fsync(fd_) != 0) {
    failed_ = true;
    return Status::Internal("fsync of WAL '" + path_ +
                            "' failed: " + std::strerror(errno));
  }
  failed_ = false;
  return Status::OK();
}

// ----------------------------------------------------------------- ReplayWal

Result<WalReplayStats> ReplayWal(
    const std::string& path, uint64_t after_lsn,
    const std::function<Status(const WalRecord&)>& apply) {
  WalReplayStats stats;
  std::ifstream f(path, std::ios::binary);
  if (!f.is_open()) return stats;  // no log yet: empty history
  std::ostringstream buf;
  buf << f.rdbuf();
  std::string log = buf.str();

  ReplaysCounter().Add();
  size_t pos = 0;
  while (pos < log.size()) {
    std::optional<ScannedFrame> frame = ReadFrame(log, pos);
    if (!frame.has_value()) {
      stats.torn_tail = true;
      TornTailsCounter().Add();
      break;
    }
    CR_ASSIGN_OR_RETURN(WalRecord record, DecodeWalPayload(frame->payload));
    if (record.lsn <= stats.last_lsn) {
      return Status::Corruption("WAL LSNs not increasing at byte offset " +
                                std::to_string(pos));
    }
    stats.last_lsn = record.lsn;
    if (record.type == WalRecordType::kLsnFloor) {
      // Pure LSN bookkeeping (written by Reset); nothing to deliver.
    } else if (record.lsn > after_lsn) {
      CR_RETURN_IF_ERROR(apply(record));
      ++stats.applied;
      ReplayedRecordsCounter().Add();
    } else {
      ++stats.skipped;
    }
    pos = frame->frame_end;
    stats.valid_bytes = pos;
  }
  return stats;
}

}  // namespace courserank::storage
