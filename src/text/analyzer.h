#ifndef COURSERANK_TEXT_ANALYZER_H_
#define COURSERANK_TEXT_ANALYZER_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace courserank::text {

/// One analyzed token: the index term (stem), the surface form it came from,
/// and its position in the original token stream (positions keep gaps where
/// stopwords were removed, so bigram adjacency is faithful to the text).
struct AnalyzedToken {
  std::string term;
  std::string surface;
  size_t position = 0;
};

/// Analysis pipeline: tokenize → drop stopwords → Porter-stem. This is the
/// shared normalization used by the inverted index, the data cloud, and the
/// forum question router, so all of them agree on what a "term" is.
struct AnalyzerOptions {
  bool remove_stopwords = true;
  bool stem = true;
  /// Drop bare numbers ("2008") — they clutter clouds.
  bool drop_numeric = true;
};

class Analyzer {
 public:
  explicit Analyzer(AnalyzerOptions options = {}) : options_(options) {}

  /// Full pipeline over free text.
  std::vector<AnalyzedToken> Analyze(std::string_view text) const;

  /// Analyzes a query string into index terms (same pipeline; a query term
  /// that is all stopwords yields an empty vector).
  std::vector<std::string> AnalyzeQuery(std::string_view query) const;

  /// Adjacent pairs from an analyzed stream: returns "stemA stemB" terms
  /// with their combined surface "surfA surfB". Only truly adjacent source
  /// tokens pair up.
  static std::vector<AnalyzedToken> Bigrams(
      const std::vector<AnalyzedToken>& tokens);

  const AnalyzerOptions& options() const { return options_; }

 private:
  AnalyzerOptions options_;
};

/// Maps index terms (stems / stem pairs) back to the most frequent surface
/// form seen, for display in data clouds ("politi" → "politics").
class SurfaceRegistry {
 public:
  /// Records one sighting of `surface` for `term`.
  void Record(const std::string& term, const std::string& surface);

  /// Most frequently recorded surface; falls back to the term itself.
  const std::string& DisplayForm(const std::string& term) const;

  size_t size() const { return by_term_.size(); }

 private:
  struct SurfaceCounts {
    std::unordered_map<std::string, size_t> counts;
    std::string best;
    size_t best_count = 0;
  };
  std::unordered_map<std::string, SurfaceCounts> by_term_;
};

}  // namespace courserank::text

#endif  // COURSERANK_TEXT_ANALYZER_H_
