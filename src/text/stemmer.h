#ifndef COURSERANK_TEXT_STEMMER_H_
#define COURSERANK_TEXT_STEMMER_H_

#include <string>
#include <string_view>

namespace courserank::text {

/// Porter stemming algorithm (M.F. Porter, 1980), the classic IR stemmer.
/// Input must be a lowercase alphabetic token; tokens shorter than three
/// characters are returned unchanged, matching the original definition.
std::string PorterStem(std::string_view word);

}  // namespace courserank::text

#endif  // COURSERANK_TEXT_STEMMER_H_
