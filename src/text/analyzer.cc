#include "text/analyzer.h"

#include <cctype>

#include "text/stemmer.h"
#include "text/stopwords.h"
#include "text/tokenizer.h"

namespace courserank::text {

namespace {

bool IsNumeric(std::string_view s) {
  for (char c : s) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return false;
  }
  return !s.empty();
}

}  // namespace

std::vector<AnalyzedToken> Analyzer::Analyze(std::string_view text) const {
  std::vector<PositionedToken> raw = TokenizePositioned(text);
  std::vector<AnalyzedToken> out;
  out.reserve(raw.size());
  for (const PositionedToken& tok : raw) {
    if (options_.remove_stopwords && IsStopword(tok.text)) continue;
    if (options_.drop_numeric && IsNumeric(tok.text)) continue;
    AnalyzedToken at;
    at.surface = tok.text;
    at.term = options_.stem ? PorterStem(tok.text) : tok.text;
    at.position = tok.position;
    out.push_back(std::move(at));
  }
  return out;
}

std::vector<std::string> Analyzer::AnalyzeQuery(std::string_view query) const {
  std::vector<std::string> terms;
  for (AnalyzedToken& t : Analyze(query)) {
    terms.push_back(std::move(t.term));
  }
  return terms;
}

std::vector<AnalyzedToken> Analyzer::Bigrams(
    const std::vector<AnalyzedToken>& tokens) {
  std::vector<AnalyzedToken> out;
  for (size_t i = 0; i + 1 < tokens.size(); ++i) {
    if (tokens[i + 1].position != tokens[i].position + 1) continue;
    AnalyzedToken bg;
    bg.term = tokens[i].term + " " + tokens[i + 1].term;
    bg.surface = tokens[i].surface + " " + tokens[i + 1].surface;
    bg.position = tokens[i].position;
    out.push_back(std::move(bg));
  }
  return out;
}

void SurfaceRegistry::Record(const std::string& term,
                             const std::string& surface) {
  SurfaceCounts& sc = by_term_[term];
  size_t n = ++sc.counts[surface];
  if (n > sc.best_count) {
    sc.best_count = n;
    sc.best = surface;
  }
}

const std::string& SurfaceRegistry::DisplayForm(const std::string& term) const {
  auto it = by_term_.find(term);
  if (it == by_term_.end() || it->second.best.empty()) return term;
  return it->second.best;
}

}  // namespace courserank::text
