#ifndef COURSERANK_TEXT_STOPWORDS_H_
#define COURSERANK_TEXT_STOPWORDS_H_

#include <string_view>

namespace courserank::text {

/// True when `token` (already lowercase) is an English stopword from the
/// built-in list (classic SMART-derived set plus course-catalog boilerplate
/// such as "course", "students", "topics" that would otherwise dominate
/// every data cloud).
bool IsStopword(std::string_view token);

/// Number of entries in the built-in list (exposed for tests).
size_t StopwordCount();

}  // namespace courserank::text

#endif  // COURSERANK_TEXT_STOPWORDS_H_
