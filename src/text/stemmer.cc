#include "text/stemmer.h"

namespace courserank::text {

namespace {

/// Working buffer for one stemming run. Implements the consonant/vowel
/// classification, the measure m(), and the condition helpers from the
/// original paper, operating on word_[0..end_].
class Stemmer {
 public:
  explicit Stemmer(std::string word) : word_(std::move(word)) {
    end_ = word_.empty() ? 0 : word_.size() - 1;
  }

  std::string Run() {
    if (word_.size() <= 2) return word_;
    Step1a();
    Step1b();
    Step1c();
    Step2();
    Step3();
    Step4();
    Step5a();
    Step5b();
    return word_.substr(0, end_ + 1);
  }

 private:
  /// True if word_[i] is a consonant per Porter's definition ('y' is a
  /// consonant when word-initial or preceded by a vowel).
  bool IsConsonant(size_t i) const {
    char c = word_[i];
    if (c == 'a' || c == 'e' || c == 'i' || c == 'o' || c == 'u') return false;
    if (c == 'y') return i == 0 ? true : !IsConsonant(i - 1);
    return true;
  }

  /// Porter's measure m of word_[0..j]: the number of VC sequences.
  int Measure(size_t j) const {
    int m = 0;
    size_t i = 0;
    // Skip initial consonants.
    while (i <= j && IsConsonant(i)) ++i;
    for (;;) {
      if (i > j) return m;
      // Vowel run.
      while (i <= j && !IsConsonant(i)) ++i;
      if (i > j) return m;
      ++m;
      // Consonant run.
      while (i <= j && IsConsonant(i)) ++i;
    }
  }

  /// True when word_[0..j] contains a vowel.
  bool HasVowel(size_t j) const {
    for (size_t i = 0; i <= j; ++i) {
      if (!IsConsonant(i)) return true;
    }
    return false;
  }

  /// True when word_[0..j] ends in a double consonant.
  bool DoubleConsonant(size_t j) const {
    if (j < 1) return false;
    return word_[j] == word_[j - 1] && IsConsonant(j);
  }

  /// cvc test at j: consonant-vowel-consonant where the final consonant is
  /// not w, x, or y. Used to decide whether to restore a final 'e'.
  bool CvcEnd(size_t j) const {
    if (j < 2 || !IsConsonant(j) || IsConsonant(j - 1) || !IsConsonant(j - 2))
      return false;
    char c = word_[j];
    return c != 'w' && c != 'x' && c != 'y';
  }

  /// True when the live word ends with `suffix`. On success `stem_end_` is
  /// set to the index of the character before the suffix.
  bool EndsWith(std::string_view suffix) {
    if (suffix.size() > end_ + 1) return false;
    size_t start = end_ + 1 - suffix.size();
    if (word_.compare(start, suffix.size(), suffix) != 0) return false;
    if (start == 0) return false;  // suffix must leave a non-empty stem
    stem_end_ = start - 1;
    return true;
  }

  /// Replaces the matched suffix with `repl`.
  void SetSuffix(std::string_view repl) {
    word_.resize(stem_end_ + 1);
    word_.append(repl);
    end_ = word_.size() - 1;
  }

  /// Replaces the matched suffix when m(stem) > 0.
  bool ReplaceIfM0(std::string_view suffix, std::string_view repl) {
    if (EndsWith(suffix)) {
      if (Measure(stem_end_) > 0) SetSuffix(repl);
      return true;  // suffix matched (rule consumed), even if not applied
    }
    return false;
  }

  void Step1a() {
    if (EndsWith("sses")) {
      SetSuffix("ss");
    } else if (EndsWith("ies")) {
      SetSuffix("i");
    } else if (EndsWith("ss")) {
      // no-op
    } else if (EndsWith("s")) {
      SetSuffix("");
    }
  }

  void Step1b() {
    bool cleanup = false;
    if (EndsWith("eed")) {
      if (Measure(stem_end_) > 0) SetSuffix("ee");
    } else if (EndsWith("ed")) {
      if (HasVowel(stem_end_)) {
        SetSuffix("");
        cleanup = true;
      }
    } else if (EndsWith("ing")) {
      if (HasVowel(stem_end_)) {
        SetSuffix("");
        cleanup = true;
      }
    }
    if (!cleanup) return;
    if (EndsWith("at") || EndsWith("bl") || EndsWith("iz")) {
      word_.resize(end_ + 1);
      word_ += 'e';
      end_ = word_.size() - 1;
    } else if (DoubleConsonant(end_)) {
      char c = word_[end_];
      if (c != 'l' && c != 's' && c != 'z') {
        --end_;
        word_.resize(end_ + 1);
      }
    } else if (Measure(end_) == 1 && CvcEnd(end_)) {
      word_.resize(end_ + 1);
      word_ += 'e';
      end_ = word_.size() - 1;
    }
  }

  void Step1c() {
    if (EndsWith("y") && HasVowel(stem_end_)) SetSuffix("i");
  }

  void Step2() {
    if (end_ < 1) return;
    // Dispatch on the penultimate character, per Porter's program.
    switch (word_[end_ - 1]) {
      case 'a':
        if (ReplaceIfM0("ational", "ate")) return;
        if (ReplaceIfM0("tional", "tion")) return;
        break;
      case 'c':
        if (ReplaceIfM0("enci", "ence")) return;
        if (ReplaceIfM0("anci", "ance")) return;
        break;
      case 'e':
        if (ReplaceIfM0("izer", "ize")) return;
        break;
      case 'l':
        if (ReplaceIfM0("abli", "able")) return;
        if (ReplaceIfM0("alli", "al")) return;
        if (ReplaceIfM0("entli", "ent")) return;
        if (ReplaceIfM0("eli", "e")) return;
        if (ReplaceIfM0("ousli", "ous")) return;
        break;
      case 'o':
        if (ReplaceIfM0("ization", "ize")) return;
        if (ReplaceIfM0("ation", "ate")) return;
        if (ReplaceIfM0("ator", "ate")) return;
        break;
      case 's':
        if (ReplaceIfM0("alism", "al")) return;
        if (ReplaceIfM0("iveness", "ive")) return;
        if (ReplaceIfM0("fulness", "ful")) return;
        if (ReplaceIfM0("ousness", "ous")) return;
        break;
      case 't':
        if (ReplaceIfM0("aliti", "al")) return;
        if (ReplaceIfM0("iviti", "ive")) return;
        if (ReplaceIfM0("biliti", "ble")) return;
        break;
      default:
        break;
    }
  }

  void Step3() {
    switch (word_[end_]) {
      case 'e':
        if (ReplaceIfM0("icate", "ic")) return;
        if (ReplaceIfM0("ative", "")) return;
        if (ReplaceIfM0("alize", "al")) return;
        break;
      case 'i':
        if (ReplaceIfM0("iciti", "ic")) return;
        break;
      case 'l':
        if (ReplaceIfM0("ical", "ic")) return;
        if (ReplaceIfM0("ful", "")) return;
        break;
      case 's':
        if (ReplaceIfM0("ness", "")) return;
        break;
      default:
        break;
    }
  }

  /// Step 4 drops a suffix when m(stem) > 1.
  bool DropIfM1(std::string_view suffix) {
    if (EndsWith(suffix)) {
      if (Measure(stem_end_) > 1) SetSuffix("");
      return true;
    }
    return false;
  }

  void Step4() {
    if (end_ < 1) return;
    switch (word_[end_ - 1]) {
      case 'a':
        if (DropIfM1("al")) return;
        break;
      case 'c':
        if (DropIfM1("ance")) return;
        if (DropIfM1("ence")) return;
        break;
      case 'e':
        if (DropIfM1("er")) return;
        break;
      case 'i':
        if (DropIfM1("ic")) return;
        break;
      case 'l':
        if (DropIfM1("able")) return;
        if (DropIfM1("ible")) return;
        break;
      case 'n':
        if (DropIfM1("ant")) return;
        if (DropIfM1("ement")) return;
        if (DropIfM1("ment")) return;
        if (DropIfM1("ent")) return;
        break;
      case 'o':
        // (m>1 and (*S or *T)) ION
        if (EndsWith("ion")) {
          if (Measure(stem_end_) > 1 &&
              (word_[stem_end_] == 's' || word_[stem_end_] == 't')) {
            SetSuffix("");
          }
          return;
        }
        if (DropIfM1("ou")) return;
        break;
      case 's':
        if (DropIfM1("ism")) return;
        break;
      case 't':
        if (DropIfM1("ate")) return;
        if (DropIfM1("iti")) return;
        break;
      case 'u':
        if (DropIfM1("ous")) return;
        break;
      case 'v':
        if (DropIfM1("ive")) return;
        break;
      case 'z':
        if (DropIfM1("ize")) return;
        break;
      default:
        break;
    }
  }

  void Step5a() {
    if (word_[end_] != 'e') return;
    int m = Measure(end_ - 1);
    if (m > 1 || (m == 1 && !CvcEnd(end_ - 1))) {
      --end_;
      word_.resize(end_ + 1);
    }
  }

  void Step5b() {
    if (word_[end_] == 'l' && DoubleConsonant(end_) && Measure(end_) > 1) {
      --end_;
      word_.resize(end_ + 1);
    }
  }

  std::string word_;
  size_t end_ = 0;
  size_t stem_end_ = 0;
};

}  // namespace

std::string PorterStem(std::string_view word) {
  return Stemmer(std::string(word)).Run();
}

}  // namespace courserank::text
