#include "text/stopwords.h"

#include <algorithm>
#include <array>
#include <string_view>

namespace courserank::text {

namespace {

// Sorted for binary search. Keep sorted when editing.
constexpr std::array<std::string_view, 151> kStopwords = {
    "a",        "about",   "above",   "after",    "again",     "against",
    "all",      "also",    "am",      "an",       "and",       "any",
    "are",      "as",      "at",      "be",       "because",   "been",
    "before",   "being",   "below",   "between",  "both",      "but",
    "by",       "can",     "cannot",  "class",    "could",     "course",
    "courses",  "covers",  "did",     "do",       "does",      "doing",
    "down",     "during",  "each",    "emphasis", "examines",  "few",
    "focus",
    "for",      "from",    "further", "had",      "has",       "have",
    "having",   "he",      "her",     "here",     "hers",      "him",
    "his",      "how",     "i",       "if",       "in",        "includes",
    "including","into",    "introduction", "is",  "it",        "its",
    "itself",   "may",     "me",      "more",     "most",      "must",
    "my",       "no",      "nor",     "not",      "of",        "off",
    "on",       "once",    "only",    "or",       "other",     "ought",
    "our",      "ours",    "out",     "over",     "own",       "prerequisite",
    "prerequisites", "prof", "professor", "quarter", "same",   "section",
    "seminar",  "she",
    "should",   "so",      "some",    "students", "study",     "such",
    "taught",   "than",    "that",    "the",      "their",     "theirs",
    "them",     "then",    "there",   "these",    "they",      "this",
    "those",    "through", "to",      "too",      "topics",    "under",
    "undergraduate", "units", "until", "up",      "upon",      "use",
    "used",     "very",    "was",     "we",       "were",      "what",
    "when",     "where",   "which",   "while",    "who",       "whom",
    "why",      "will",    "with",    "within",   "would",     "you",
    "your",     "yours",   "yourself"};

}  // namespace

bool IsStopword(std::string_view token) {
  return std::binary_search(kStopwords.begin(), kStopwords.end(), token);
}

size_t StopwordCount() { return kStopwords.size(); }

}  // namespace courserank::text
