#ifndef COURSERANK_TEXT_TOKENIZER_H_
#define COURSERANK_TEXT_TOKENIZER_H_

#include <string>
#include <string_view>
#include <vector>

namespace courserank::text {

/// Splits text into lowercase alphanumeric tokens. A token is a maximal run
/// of ASCII letters/digits; apostrophes inside words are dropped ("don't" →
/// "dont") so possessives and contractions normalize consistently.
std::vector<std::string> Tokenize(std::string_view input);

/// A token plus its position in the stream. Positions advance by one per
/// token and skip an extra slot at sentence boundaries (. ! ? ; : and
/// newlines), so bigram extraction never pairs words across sentences.
struct PositionedToken {
  std::string text;
  size_t position = 0;
};

/// Tokenize with sentence-aware positions.
std::vector<PositionedToken> TokenizePositioned(std::string_view input);

/// Single-token normalization: lowercases and strips non-alphanumerics.
/// Returns an empty string when nothing survives.
std::string NormalizeToken(std::string_view token);

}  // namespace courserank::text

#endif  // COURSERANK_TEXT_TOKENIZER_H_
