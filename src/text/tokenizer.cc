#include "text/tokenizer.h"

namespace courserank::text {

namespace {

inline bool IsAlnum(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9');
}

inline char Lower(char c) {
  return (c >= 'A' && c <= 'Z') ? static_cast<char>(c - 'A' + 'a') : c;
}

}  // namespace

std::vector<std::string> Tokenize(std::string_view input) {
  std::vector<std::string> tokens;
  std::string current;
  for (size_t i = 0; i < input.size(); ++i) {
    char c = input[i];
    if (IsAlnum(c)) {
      current += Lower(c);
    } else if (c == '\'' && !current.empty() && i + 1 < input.size() &&
               IsAlnum(input[i + 1])) {
      // Drop in-word apostrophes: "don't" -> "dont".
      continue;
    } else if (!current.empty()) {
      tokens.push_back(std::move(current));
      current.clear();
    }
  }
  if (!current.empty()) tokens.push_back(std::move(current));
  return tokens;
}

std::vector<PositionedToken> TokenizePositioned(std::string_view input) {
  std::vector<PositionedToken> tokens;
  std::string current;
  size_t position = 0;
  bool pending_break = false;
  auto flush = [&]() {
    if (current.empty()) return;
    if (pending_break && !tokens.empty()) ++position;  // sentence gap
    pending_break = false;
    tokens.push_back({std::move(current), position++});
    current.clear();
  };
  for (size_t i = 0; i < input.size(); ++i) {
    char c = input[i];
    if (IsAlnum(c)) {
      current += Lower(c);
    } else if (c == '\'' && !current.empty() && i + 1 < input.size() &&
               IsAlnum(input[i + 1])) {
      continue;
    } else {
      flush();
      if (c == '.' || c == '!' || c == '?' || c == ';' || c == ':' ||
          c == '\n') {
        pending_break = true;
      }
    }
  }
  flush();
  return tokens;
}

std::string NormalizeToken(std::string_view token) {
  std::string out;
  out.reserve(token.size());
  for (char c : token) {
    if (IsAlnum(c)) out += Lower(c);
  }
  return out;
}

}  // namespace courserank::text
