#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>

namespace courserank::obs {

std::string JsonEscaped(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  out += '"';
  return out;
}

size_t Histogram::BucketIndexFor(uint64_t v) {
  if (v <= 1) return 0;
  // Smallest i with v <= 2^i is bit_width(v - 1); exact powers of two stay
  // in their own bound's bucket.
  size_t i = static_cast<size_t>(std::bit_width(v - 1));
  return i < kNumBuckets - 1 ? i : kNumBuckets - 1;
}

uint64_t Histogram::BucketUpperBound(size_t i) {
  if (i >= kNumBuckets - 1) return UINT64_MAX;
  return uint64_t{1} << i;
}

uint64_t Histogram::Quantile(double q) const {
  uint64_t total = 0;
  uint64_t counts[kNumBuckets];
  for (size_t i = 0; i < kNumBuckets; ++i) {
    counts[i] = bucket_count(i);
    total += counts[i];
  }
  if (total == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the quantile sample, 1-based; q=0 maps to the first sample.
  uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(total - 1)) + 1;
  uint64_t cum = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    cum += counts[i];
    if (cum >= rank) return BucketUpperBound(i);
  }
  return BucketUpperBound(kNumBuckets - 1);
}

MetricsRegistry& MetricsRegistry::Default() {
  static MetricsRegistry* registry = new MetricsRegistry();  // never destroyed
  return *registry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Counter>& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Gauge>& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Histogram>& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return slot.get();
}

namespace {

void AppendF(std::string* out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

void AppendF(std::string* out, const char* fmt, ...) {
  char buf[256];
  va_list ap;
  va_start(ap, fmt);
  int n = vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  if (n > 0) out->append(buf, std::min(static_cast<size_t>(n), sizeof(buf) - 1));
}

/// [first, last] covering every non-empty bucket; [0, 0] when all empty.
std::pair<size_t, size_t> NonEmptyBucketRange(const Histogram& h) {
  size_t first = Histogram::kNumBuckets, last = 0;
  for (size_t i = 0; i < Histogram::kNumBuckets; ++i) {
    if (h.bucket_count(i) == 0) continue;
    if (first == Histogram::kNumBuckets) first = i;
    last = i;
  }
  if (first == Histogram::kNumBuckets) first = last = 0;
  return {first, last};
}

}  // namespace

std::string MetricsRegistry::RenderPrometheus() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const auto& [name, c] : counters_) {
    AppendF(&out, "# TYPE %s counter\n", name.c_str());
    AppendF(&out, "%s %" PRIu64 "\n", name.c_str(), c->value());
  }
  for (const auto& [name, g] : gauges_) {
    AppendF(&out, "# TYPE %s gauge\n", name.c_str());
    AppendF(&out, "%s %" PRId64 "\n", name.c_str(), g->value());
  }
  for (const auto& [name, h] : histograms_) {
    AppendF(&out, "# TYPE %s histogram\n", name.c_str());
    auto [first, last] = NonEmptyBucketRange(*h);
    uint64_t cum = 0;
    for (size_t i = 0; i < Histogram::kNumBuckets; ++i) {
      cum += h->bucket_count(i);
      if (i < first || i > last) continue;
      if (i == Histogram::kNumBuckets - 1) break;  // +Inf printed below
      AppendF(&out, "%s_bucket{le=\"%" PRIu64 "\"} %" PRIu64 "\n",
              name.c_str(), Histogram::BucketUpperBound(i), cum);
    }
    AppendF(&out, "%s_bucket{le=\"+Inf\"} %" PRIu64 "\n", name.c_str(),
            h->count());
    AppendF(&out, "%s_sum %" PRIu64 "\n", name.c_str(), h->sum());
    AppendF(&out, "%s_count %" PRIu64 "\n", name.c_str(), h->count());
  }
  return out;
}

std::string MetricsRegistry::RenderJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\n  \"counters\": {";
  bool sep = false;
  for (const auto& [name, c] : counters_) {
    AppendF(&out, "%s\n    \"%s\": %" PRIu64, sep ? "," : "", name.c_str(),
            c->value());
    sep = true;
  }
  out += sep ? "\n  },\n" : "},\n";
  out += "  \"gauges\": {";
  sep = false;
  for (const auto& [name, g] : gauges_) {
    AppendF(&out, "%s\n    \"%s\": %" PRId64, sep ? "," : "", name.c_str(),
            g->value());
    sep = true;
  }
  out += sep ? "\n  },\n" : "},\n";
  out += "  \"histograms\": {";
  sep = false;
  for (const auto& [name, h] : histograms_) {
    uint64_t count = h->count();
    uint64_t sum = h->sum();
    AppendF(&out, "%s\n    \"%s\": {\"count\": %" PRIu64 ", \"sum\": %" PRIu64,
            sep ? "," : "", name.c_str(), count, sum);
    AppendF(&out, ", \"mean\": %.1f",
            count == 0 ? 0.0
                       : static_cast<double>(sum) / static_cast<double>(count));
    AppendF(&out, ", \"p50\": %" PRIu64 ", \"p90\": %" PRIu64
                  ", \"p99\": %" PRIu64,
            h->Quantile(0.5), h->Quantile(0.9), h->Quantile(0.99));
    out += ", \"buckets\": [";
    bool bsep = false;
    for (size_t i = 0; i < Histogram::kNumBuckets; ++i) {
      uint64_t bc = h->bucket_count(i);
      if (bc == 0) continue;
      if (i == Histogram::kNumBuckets - 1) {
        AppendF(&out, "%s{\"le\": \"+Inf\", \"count\": %" PRIu64 "}",
                bsep ? ", " : "", bc);
      } else {
        AppendF(&out, "%s{\"le\": %" PRIu64 ", \"count\": %" PRIu64 "}",
                bsep ? ", " : "", Histogram::BucketUpperBound(i), bc);
      }
      bsep = true;
    }
    out += "]}";
    sep = true;
  }
  out += sep ? "\n  }\n}" : "}\n}";
  return out;
}

}  // namespace courserank::obs
