#ifndef COURSERANK_OBS_TRACE_H_
#define COURSERANK_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <vector>

#include "obs/metrics.h"

namespace courserank::obs {

/// Stage names recorded into traces. These are a stable contract: dashboards
/// and the verify-obs fixture match on them, so renaming one is a breaking
/// change (DESIGN.md §7).
namespace stage {
inline constexpr char kTokenize[] = "search.tokenize";
inline constexpr char kQuery[] = "search.query";
inline constexpr char kIntersect[] = "search.intersect";
inline constexpr char kFilter[] = "search.filter";
inline constexpr char kRank[] = "search.rank";
inline constexpr char kRefine[] = "search.refine";
inline constexpr char kCachedQuery[] = "search.cached_query";
inline constexpr char kCachedRefine[] = "search.cached_refine";
inline constexpr char kCacheProbe[] = "search.cache_probe";
inline constexpr char kCloudBuild[] = "cloud.build";
inline constexpr char kCloudAccumulate[] = "cloud.accumulate";
inline constexpr char kCloudTopK[] = "cloud.topk";
inline constexpr char kCloudCachedBuild[] = "cloud.cached_build";
inline constexpr char kCloudCacheProbe[] = "cloud.cache_probe";
inline constexpr char kSqlParse[] = "sql.parse";
inline constexpr char kSqlExec[] = "sql.exec";
inline constexpr char kFlexCompile[] = "flexrecs.compile";
inline constexpr char kFlexRun[] = "flexrecs.run";
inline constexpr char kFlexSqlStep[] = "flexrecs.step.sql";
inline constexpr char kFlexValuesStep[] = "flexrecs.step.values";
inline constexpr char kFlexPhysicalStep[] = "flexrecs.step.physical";
inline constexpr char kAnalysis[] = "analysis.run";
inline constexpr char kExecMorsel[] = "exec.morsel";
inline constexpr char kExecChunk[] = "exec.chunk";
}  // namespace stage

/// Monotonic nanoseconds (steady clock); the time base of all spans.
inline uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// One closed span. Events are recorded when the span *closes*, so within a
/// thread an inner span always precedes its enclosing span in the buffer,
/// and `depth` reconstructs the nesting.
struct TraceEvent {
  const char* stage = nullptr;  ///< one of obs::stage — static storage only
  uint64_t seq = 0;             ///< global close order, starts at 1
  uint64_t start_ns = 0;        ///< NowNs() at open
  uint64_t dur_ns = 0;
  uint32_t depth = 0;  ///< nesting depth at open; roots are 0
};

/// Fixed-capacity ring buffer of the most recent spans. `period` is the
/// root-span sampling stride ScopedSpan applies per thread: only every
/// `period`-th root span on a thread (the first one always) times itself
/// and its children, which keeps steady-state tracing off the ns-scale warm
/// cache paths. Recording takes a mutex — sampled spans are a handful per
/// traced query, so contention is not a concern.
class TraceSink {
 public:
  static constexpr size_t kDefaultCapacity = 4096;
  static constexpr uint32_t kDefaultPeriod = 16;

  explicit TraceSink(size_t capacity = kDefaultCapacity,
                     uint32_t period = kDefaultPeriod);
  TraceSink(const TraceSink&) = delete;
  TraceSink& operator=(const TraceSink&) = delete;

  /// The process-wide sink. Capacity 4096; period from the
  /// COURSERANK_TRACE_PERIOD env var (0 disables tracing entirely,
  /// 1 traces every query). Never destroyed.
  static TraceSink& Default();

  uint32_t period() const { return period_.load(std::memory_order_relaxed); }
  void set_period(uint32_t p) {
    period_.store(p, std::memory_order_relaxed);
  }

  void Record(const char* stage, uint64_t start_ns, uint64_t dur_ns,
              uint32_t depth);

  /// The retained events, oldest first.
  std::vector<TraceEvent> Snapshot() const;

  /// Spans ever recorded (>= Snapshot().size() once the ring wraps).
  uint64_t total_recorded() const;

  /// Events evicted by the ring before any reader saw them — the "silent
  /// drop" of a full ring made visible. Also exported as the
  /// cr_trace_dropped_total registry counter.
  uint64_t dropped() const;

  /// The sink state as one JSON object:
  /// {"period","total_recorded","dropped","events":[{stage,seq,start_ns,
  /// dur_ns,depth}...]} with events oldest first.
  std::string RenderJson() const;

  void Clear();

 private:
  std::atomic<uint32_t> period_;

  mutable std::mutex mu_;
  std::vector<TraceEvent> ring_;  // capacity-sized, written round-robin
  size_t next_ = 0;
  uint64_t seq_ = 0;
  uint64_t dropped_ = 0;  ///< events overwritten by the wrapping ring
};

/// RAII span. Opens a stage on construction, and on destruction records the
/// duration into `hist` (when given) and the trace sink.
///
/// Sampling: a root span (nesting depth 0) with mode kSampled consumes a
/// thread-local countdown — the first root on a thread is sampled, then
/// every `sink->period()`-th after. The decision is ambient for the thread,
/// so nested spans of a sampled query are all timed, while unsampled roots
/// and their children pay only a few thread-local ops per span — no shared
/// atomics, no clock reads, no histogram write. Mode kAlways times and
/// records the histogram unconditionally (for ms-scale operations like SQL
/// statements where the sample matters more than the ~50ns of clock reads)
/// and traces whenever tracing is on at all (period != 0), without
/// consuming the countdown.
class ScopedSpan {
 public:
  enum class Mode { kSampled, kAlways };

  explicit ScopedSpan(const char* stage, Histogram* hist = nullptr,
                      TraceSink* sink = &TraceSink::Default(),
                      Mode mode = Mode::kSampled)
      : stage_(stage), hist_(hist), sink_(sink) {
    Tls& tls = tls_;
    if (tls.depth == 0) {
      root_ = true;
      if (sink_ == nullptr) {
        tls.active = false;
      } else if (mode == Mode::kAlways) {
        tls.active = sink_->period() != 0;
      } else if (tls.countdown == 0) {
        uint32_t p = sink_->period();
        tls.active = p != 0;
        if (p > 0) tls.countdown = p - 1;
      } else {
        --tls.countdown;
        tls.active = false;
      }
    }
    timed_ = tls.active || mode == Mode::kAlways;
    depth_ = tls.depth++;
    if (timed_) start_ = NowNs();
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  ~ScopedSpan() {
    Tls& tls = tls_;
    --tls.depth;
    if (timed_) {
      uint64_t dur = NowNs() - start_;
      if (hist_ != nullptr) hist_->Record(dur);
      if (tls.active && sink_ != nullptr) {
        sink_->Record(stage_, start_, dur, depth_);
      }
    }
    if (root_) tls.active = false;
  }

  /// True while the calling thread is inside a sampled (traced) span tree.
  static bool active() { return tls_.active; }

  /// Resets the calling thread's sampling countdown so its next root span
  /// is sampled. Test support: lets sampling-pattern assertions start from
  /// a known state regardless of spans earlier tests opened.
  static void ResetSamplingForTest() { tls_.countdown = 0; }

 private:
  struct Tls {
    uint32_t depth = 0;
    bool active = false;
    uint32_t countdown = 0;  ///< roots to skip before the next sample
  };
  static thread_local Tls tls_;

  const char* stage_;
  Histogram* hist_;
  TraceSink* sink_;
  uint64_t start_ = 0;
  uint32_t depth_ = 0;
  bool timed_ = false;
  bool root_ = false;
};

}  // namespace courserank::obs

#endif  // COURSERANK_OBS_TRACE_H_
