#include "obs/http_endpoint.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/profile_recorder.h"
#include "obs/trace.h"

namespace courserank::obs {

namespace {

constexpr size_t kMaxRequestBytes = 8192;

Counter* RequestCounter() {
  static Counter* c =
      MetricsRegistry::Default().GetCounter("cr_http_requests_total");
  return c;
}

const char* StatusText(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    default:
      return "Internal Server Error";
  }
}

}  // namespace

HttpResponse HandleDebugRoute(const std::string& target) {
  std::string path = target.substr(0, target.find('?'));
  HttpResponse resp;
  if (path == "/healthz") {
    resp.body = "ok\n";
  } else if (path == "/metrics") {
    resp.content_type = "text/plain; version=0.0.4; charset=utf-8";
    resp.body = MetricsRegistry::Default().RenderPrometheus();
  } else if (path == "/debug/profiles") {
    resp.content_type = "application/json";
    resp.body = ProfileRecorder::Default().RenderJson();
  } else if (path == "/debug/traces") {
    resp.content_type = "application/json";
    resp.body = TraceSink::Default().RenderJson();
  } else if (path == "/") {
    resp.body =
        "courserank debug endpoint\n"
        "  /healthz          liveness\n"
        "  /metrics          Prometheus exposition\n"
        "  /debug/profiles   query profile flight recorder (JSON)\n"
        "  /debug/traces     trace ring buffer (JSON)\n";
  } else {
    resp.status = 404;
    resp.body = "not found: " + path + "\n";
  }
  return resp;
}

Result<std::unique_ptr<DebugHttpServer>> DebugHttpServer::Start(
    const Options& options) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options.port);
  if (::inet_pton(AF_INET, options.host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad bind address: " + options.host);
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status st =
        Status::Internal(std::string("bind: ") + std::strerror(errno));
    ::close(fd);
    return st;
  }
  if (::listen(fd, 16) != 0) {
    Status st =
        Status::Internal(std::string("listen: ") + std::strerror(errno));
    ::close(fd);
    return st;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    Status st =
        Status::Internal(std::string("getsockname: ") + std::strerror(errno));
    ::close(fd);
    return st;
  }

  auto server = std::unique_ptr<DebugHttpServer>(new DebugHttpServer());
  server->listen_fd_ = fd;
  server->port_ = ntohs(bound.sin_port);
  server->accept_thread_ = std::thread([s = server.get()] { s->AcceptLoop(); });
  CR_LOG(INFO, "debug http endpoint listening on %s:%u", options.host.c_str(),
         static_cast<unsigned>(server->port_));
  return server;
}

DebugHttpServer::~DebugHttpServer() { Stop(); }

void DebugHttpServer::Stop() {
  if (stopping_.exchange(true)) {
    if (accept_thread_.joinable()) accept_thread_.join();
    return;
  }
  // shutdown() wakes the blocking accept(); close() follows after the join
  // so the fd number can't be recycled under the accept thread.
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
}

void DebugHttpServer::AcceptLoop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    int conn = ::accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) {
      if (stopping_.load(std::memory_order_relaxed)) break;
      if (errno == EINTR || errno == ECONNABORTED) continue;
      break;  // listen socket is gone; nothing sane to do but exit
    }
    ServeConnection(conn);
    ::close(conn);
  }
}

void DebugHttpServer::ServeConnection(int fd) {
  // A stalled client should not wedge the single accept thread.
  timeval timeout{};
  timeout.tv_sec = 5;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));

  std::string request;
  char buf[1024];
  while (request.find("\r\n\r\n") == std::string::npos &&
         request.size() < kMaxRequestBytes) {
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    request.append(buf, static_cast<size_t>(n));
  }

  RequestCounter()->Add();

  // Request line: METHOD SP TARGET SP VERSION.
  HttpResponse resp;
  size_t line_end = request.find("\r\n");
  size_t sp1 = request.find(' ');
  size_t sp2 = sp1 == std::string::npos ? std::string::npos
                                        : request.find(' ', sp1 + 1);
  if (line_end == std::string::npos || sp1 == std::string::npos ||
      sp2 == std::string::npos || sp2 > line_end || sp1 == 0 ||
      sp2 == sp1 + 1) {
    resp.status = 400;
    resp.body = "malformed request\n";
  } else {
    std::string method = request.substr(0, sp1);
    std::string target = request.substr(sp1 + 1, sp2 - sp1 - 1);
    if (method != "GET") {
      resp.status = 405;
      resp.body = "method not allowed: " + method + "\n";
    } else {
      resp = HandleDebugRoute(target);
    }
  }

  char header[256];
  int n = snprintf(header, sizeof(header),
                   "HTTP/1.0 %d %s\r\n"
                   "Content-Type: %s\r\n"
                   "Content-Length: %zu\r\n"
                   "Connection: close\r\n"
                   "\r\n",
                   resp.status, StatusText(resp.status),
                   resp.content_type.c_str(), resp.body.size());
  std::string out(header, static_cast<size_t>(n));
  out += resp.body;
  size_t sent = 0;
  while (sent < out.size()) {
    ssize_t w = ::send(fd, out.data() + sent, out.size() - sent, MSG_NOSIGNAL);
    if (w <= 0) break;
    sent += static_cast<size_t>(w);
  }
}

}  // namespace courserank::obs
