#ifndef COURSERANK_OBS_HTTP_ENDPOINT_H_
#define COURSERANK_OBS_HTTP_ENDPOINT_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>

#include "common/status.h"

namespace courserank::obs {

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

/// Routes one GET target to a debug page. Pure function of target + the
/// process-wide obs singletons, so it is unit-testable without sockets:
///   /healthz          liveness probe ("ok")
///   /metrics          MetricsRegistry::Default() in Prometheus exposition
///   /debug/profiles   ProfileRecorder::Default().RenderJson()
///   /debug/traces     TraceSink::Default().RenderJson()
///   /                 plain-text index of the above
/// Anything else is a 404. A query string ("?x=y") is stripped and ignored.
HttpResponse HandleDebugRoute(const std::string& target);

/// Minimal blocking HTTP/1.0 server for the debug routes above. One accept
/// thread, one request per connection, connection closed after the
/// response — deliberately not a production server, just enough for
/// curl / Prometheus scrapes against a dev or test process.
class DebugHttpServer {
 public:
  struct Options {
    /// Bind address. Loopback by default: the debug surface exposes query
    /// text, so opting into a wider bind is explicit.
    std::string host = "127.0.0.1";
    /// 0 picks an ephemeral port; see port() for the one chosen.
    uint16_t port = 0;
  };

  /// Binds, listens, and starts the accept thread. Fails with
  /// kInternal if the socket can't be set up (e.g. port in use).
  static Result<std::unique_ptr<DebugHttpServer>> Start(const Options& options);
  static Result<std::unique_ptr<DebugHttpServer>> Start() {
    return Start(Options{});
  }

  ~DebugHttpServer();
  DebugHttpServer(const DebugHttpServer&) = delete;
  DebugHttpServer& operator=(const DebugHttpServer&) = delete;

  /// The bound port (the chosen one when Options.port was 0).
  uint16_t port() const { return port_; }

  /// Stops accepting and joins the accept thread. Idempotent; also run by
  /// the destructor.
  void Stop();

 private:
  DebugHttpServer() = default;
  void AcceptLoop();
  void ServeConnection(int fd);

  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  std::thread accept_thread_;
};

}  // namespace courserank::obs

#endif  // COURSERANK_OBS_HTTP_ENDPOINT_H_
