#ifndef COURSERANK_OBS_METRICS_H_
#define COURSERANK_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

namespace courserank::obs {

/// `s` as a double-quoted JSON string literal: quotes and backslashes
/// escaped, control characters rendered as \uXXXX. Shared by every JSON
/// exposition in the obs and query layers.
std::string JsonEscaped(std::string_view s);

/// Monotonically increasing event count. All operations are relaxed atomics:
/// counters order nothing, they only have to end up with the right totals,
/// so a hot-path `Add` costs one uncontended fetch_add.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Add(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Instantaneous signed level (queue depth, live cache entries).
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Log-bucketed histogram over non-negative integer samples (latencies in
/// ns, sizes in rows). Buckets are fixed powers of two — bucket `i` holds
/// samples with `2^(i-1) < v <= 2^i` (bucket 0 holds v <= 1) and the last
/// bucket is +Inf — so recording is one shift-class computation plus three
/// relaxed fetch_adds, and quantile estimation walks a fixed array with no
/// allocation. ~55% worst-case relative quantile error is the price of a
/// branch-free hot path; per-stage latency work only needs the decade.
class Histogram {
 public:
  /// 47 finite buckets (upper bounds 2^0 .. 2^46 ≈ 19.5h in ns) + overflow.
  static constexpr size_t kNumBuckets = 48;

  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  /// Bucket index a value lands in: smallest i with v <= 2^i, clamped to
  /// the overflow bucket. Exact powers of two land in their own bound's
  /// bucket (`le` semantics, matching Prometheus exposition).
  static size_t BucketIndexFor(uint64_t v);

  /// Inclusive upper bound of bucket `i`; UINT64_MAX for the overflow
  /// bucket.
  static uint64_t BucketUpperBound(size_t i);

  void Record(uint64_t v) {
    buckets_[BucketIndexFor(v)].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
  }

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t bucket_count(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

  /// Upper bound of the bucket containing the q-quantile sample
  /// (0 <= q <= 1), or 0 when empty. Within one bucket width of the true
  /// value by construction; allocation-free.
  uint64_t Quantile(double q) const;

 private:
  std::atomic<uint64_t> buckets_[kNumBuckets] = {};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> count_{0};
};

/// Process-wide named-metric registry. `Get*` interns by name and returns a
/// pointer that stays valid for the registry's lifetime, so hot paths
/// resolve a metric once (function-local static) and then touch only the
/// atomic. Thread-safe; exposition renders a consistent-enough snapshot
/// (each value is read atomically, the set of metrics under the lock).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry every subsystem instruments into. Never
  /// destroyed: worker threads may increment counters during shutdown.
  static MetricsRegistry& Default();

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  /// Prometheus text exposition format 0.0.4: counters/gauges as single
  /// samples, histograms as cumulative `_bucket{le="..."}` series (empty
  /// leading/trailing buckets elided) plus `_sum` and `_count`.
  std::string RenderPrometheus() const;

  /// The same snapshot as one JSON object:
  /// {"counters":{...},"gauges":{...},"histograms":{name:{count,sum,mean,
  /// p50,p90,p99,buckets:[{"le":...,"count":...}]}}}. Histogram buckets are
  /// non-cumulative and only non-empty ones appear; the overflow bucket's
  /// "le" is the string "+Inf".
  std::string RenderJson() const;

 private:
  mutable std::mutex mu_;
  // std::map for deterministic exposition order.
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace courserank::obs

#endif  // COURSERANK_OBS_METRICS_H_
