#include "obs/profile_recorder.h"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>

#include "common/logging.h"
#include "obs/metrics.h"

namespace courserank::obs {

namespace {

Counter* ProfiledCounter() {
  static Counter* c =
      MetricsRegistry::Default().GetCounter("cr_exec_profiled_queries_total");
  return c;
}

Counter* SlowCounter() {
  static Counter* c =
      MetricsRegistry::Default().GetCounter("cr_slow_queries_total");
  return c;
}

int64_t UnixMsNow() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

void AppendEntry(const RecordedProfile& p, bool first, std::string* out) {
  char buf[128];
  if (!first) *out += ",";
  *out += "\n  {\"id\": ";
  snprintf(buf, sizeof(buf), "%" PRIu64, p.id);
  *out += buf;
  *out += ", \"kind\": " + JsonEscaped(p.kind);
  *out += ", \"query\": " + JsonEscaped(p.query);
  snprintf(buf, sizeof(buf),
           ", \"total_ns\": %" PRIu64 ", \"unix_ms\": %" PRId64
           ", \"profile\": ",
           p.total_ns, p.unix_ms);
  *out += buf;
  *out += p.json.empty() ? "null" : p.json;
  *out += "}";
}

}  // namespace

ProfileRecorder::ProfileRecorder(size_t recent_capacity,
                                 size_t slowest_capacity)
    : recent_cap_(recent_capacity == 0 ? 1 : recent_capacity),
      slowest_cap_(slowest_capacity == 0 ? 1 : slowest_capacity) {}

ProfileRecorder& ProfileRecorder::Default() {
  static ProfileRecorder* recorder = [] {
    auto* r = new ProfileRecorder();  // never destroyed
    if (const char* env = std::getenv("COURSERANK_SLOW_QUERY_MS")) {
      char* end = nullptr;
      unsigned long v = std::strtoul(env, &end, 10);
      if (end != env && *end == '\0') {
        r->set_slow_threshold_ns(static_cast<uint64_t>(v) * 1'000'000);
      } else {
        std::fprintf(stderr,
                     "[obs] ignoring malformed COURSERANK_SLOW_QUERY_MS=%s\n",
                     env);
      }
    }
    return r;
  }();
  return *recorder;
}

void ProfileRecorder::Submit(RecordedProfile profile) {
  ProfiledCounter()->Add();
  if (profile.unix_ms == 0) profile.unix_ms = UnixMsNow();

  uint64_t threshold = slow_threshold_ns();
  bool slow = threshold != 0 && profile.total_ns >= threshold;
  // Copied under the lock, logged after releasing it: LogMessage does I/O.
  std::string slow_query;
  std::string slow_text;
  uint64_t slow_ns = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    profile.id = ++submitted_;
    if (slow) {
      slow_query = profile.query;
      slow_text = profile.text;
      slow_ns = profile.total_ns;
    }

    // Slowest set: insert sorted (slowest first, earlier id wins ties),
    // then truncate. Linear over <= slowest_cap_ entries.
    auto it = std::upper_bound(
        slowest_.begin(), slowest_.end(), profile,
        [](const RecordedProfile& a, const RecordedProfile& b) {
          return a.total_ns > b.total_ns;
        });
    if (it != slowest_.end() || slowest_.size() < slowest_cap_) {
      slowest_.insert(it, profile);
      if (slowest_.size() > slowest_cap_) slowest_.resize(slowest_cap_);
    }

    recent_.push_back(std::move(profile));
    if (recent_.size() > recent_cap_) recent_.pop_front();
  }

  if (slow) {
    SlowCounter()->Add();
    CR_LOG(WARN, "slow query (%.1fms >= %.1fms): %s\n%s",
           static_cast<double>(slow_ns) / 1e6,
           static_cast<double>(threshold) / 1e6, slow_query.c_str(),
           slow_text.c_str());
  }
}

std::vector<RecordedProfile> ProfileRecorder::Recent() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {recent_.begin(), recent_.end()};
}

std::vector<RecordedProfile> ProfileRecorder::Slowest() const {
  std::lock_guard<std::mutex> lock(mu_);
  return slowest_;
}

uint64_t ProfileRecorder::total_submitted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return submitted_;
}

void ProfileRecorder::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  recent_.clear();
  slowest_.clear();
  submitted_ = 0;
}

std::string ProfileRecorder::RenderJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  char buf[96];
  std::string out;
  snprintf(buf, sizeof(buf),
           "{\"total_submitted\": %" PRIu64 ", \"slow_threshold_ns\": %" PRIu64
           ", \"recent\": [",
           submitted_, slow_threshold_ns());
  out += buf;
  bool first = true;
  for (const RecordedProfile& p : recent_) {
    AppendEntry(p, first, &out);
    first = false;
  }
  out += first ? "], \"slowest\": [" : "\n], \"slowest\": [";
  first = true;
  for (const RecordedProfile& p : slowest_) {
    AppendEntry(p, first, &out);
    first = false;
  }
  out += first ? "]}" : "\n]}";
  return out;
}

}  // namespace courserank::obs
