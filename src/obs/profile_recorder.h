#ifndef COURSERANK_OBS_PROFILE_RECORDER_H_
#define COURSERANK_OBS_PROFILE_RECORDER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

namespace courserank::obs {

/// One recorded query profile, fully rendered at submit time so readers
/// (the debug endpoint, the slow-query log) never touch live plan
/// structures. `text` / `json` are the QueryProfile / WorkflowProfile
/// renderings.
struct RecordedProfile {
  uint64_t id = 0;       ///< 1-based submission order, recorder-assigned
  std::string kind;      ///< "sql" or "flexrecs"
  std::string query;     ///< statement text or strategy name
  uint64_t total_ns = 0;
  int64_t unix_ms = 0;   ///< wall-clock submit time, recorder-stamped
  std::string text;
  std::string json;
};

/// Flight recorder for query profiles (DESIGN.md §13): a bounded ring of
/// the most recent profiles plus a separate bounded set of the slowest ever
/// seen, both queryable at runtime. Submissions take one short mutex —
/// profiles arrive at query rate (ms-scale), so contention is irrelevant —
/// and feed the slow-query log: any profile at or above the threshold is
/// CR_LOG(WARN)-ed with its rendered plan.
class ProfileRecorder {
 public:
  static constexpr size_t kDefaultRecentCapacity = 128;
  static constexpr size_t kDefaultSlowestCapacity = 16;

  explicit ProfileRecorder(size_t recent_capacity = kDefaultRecentCapacity,
                           size_t slowest_capacity = kDefaultSlowestCapacity);
  ProfileRecorder(const ProfileRecorder&) = delete;
  ProfileRecorder& operator=(const ProfileRecorder&) = delete;

  /// The process-wide recorder every profiled engine submits to. Slow-query
  /// threshold from the COURSERANK_SLOW_QUERY_MS env var (unset or 0
  /// disables the log). Never destroyed.
  static ProfileRecorder& Default();

  /// Slow-query log threshold; 0 disables logging.
  uint64_t slow_threshold_ns() const {
    return slow_ns_.load(std::memory_order_relaxed);
  }
  void set_slow_threshold_ns(uint64_t ns) {
    slow_ns_.store(ns, std::memory_order_relaxed);
  }

  /// Records one profile: assigns its id, stamps unix_ms, inserts it into
  /// the recent ring (evicting the oldest) and the slowest set (evicting
  /// the fastest), and emits the slow-query log line when it crosses the
  /// threshold.
  void Submit(RecordedProfile profile);

  /// The retained recent profiles, oldest first.
  std::vector<RecordedProfile> Recent() const;

  /// The slowest profiles ever submitted, slowest first (ties: earlier
  /// submission first).
  std::vector<RecordedProfile> Slowest() const;

  /// Profiles ever submitted (>= Recent().size() once the ring wraps).
  uint64_t total_submitted() const;

  void Clear();

  /// Recorder contents as one JSON object: {"total_submitted",
  /// "slow_threshold_ns","recent":[...],"slowest":[...]} where each entry
  /// carries id/kind/query/total_ns/unix_ms and the profile JSON.
  std::string RenderJson() const;

 private:
  const size_t recent_cap_;
  const size_t slowest_cap_;
  std::atomic<uint64_t> slow_ns_{0};

  mutable std::mutex mu_;
  std::deque<RecordedProfile> recent_;
  std::vector<RecordedProfile> slowest_;  // sorted: slowest first
  uint64_t submitted_ = 0;
};

}  // namespace courserank::obs

#endif  // COURSERANK_OBS_PROFILE_RECORDER_H_
