#include "obs/trace.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>

namespace courserank::obs {

namespace {

Counter* DroppedCounter() {
  static Counter* c =
      MetricsRegistry::Default().GetCounter("cr_trace_dropped_total");
  return c;
}

}  // namespace

thread_local ScopedSpan::Tls ScopedSpan::tls_;

TraceSink::TraceSink(size_t capacity, uint32_t period)
    : period_(period), ring_(capacity == 0 ? 1 : capacity) {}

TraceSink& TraceSink::Default() {
  static TraceSink* sink = [] {
    uint32_t period = kDefaultPeriod;
    if (const char* env = std::getenv("COURSERANK_TRACE_PERIOD")) {
      char* end = nullptr;
      unsigned long v = std::strtoul(env, &end, 10);
      if (end != env && *end == '\0' && v <= UINT32_MAX) {
        period = static_cast<uint32_t>(v);
      } else {
        std::fprintf(stderr,
                     "[obs] ignoring malformed COURSERANK_TRACE_PERIOD=%s\n",
                     env);
      }
    }
    return new TraceSink(kDefaultCapacity, period);  // never destroyed
  }();
  return *sink;
}

void TraceSink::Record(const char* stage, uint64_t start_ns, uint64_t dur_ns,
                       uint32_t depth) {
  std::lock_guard<std::mutex> lock(mu_);
  TraceEvent& ev = ring_[next_];
  if (ev.stage != nullptr) {
    // The ring wraps by overwriting its oldest event; account for it
    // instead of dropping silently.
    ++dropped_;
    DroppedCounter()->Add();
  }
  ev.stage = stage;
  ev.seq = ++seq_;
  ev.start_ns = start_ns;
  ev.dur_ns = dur_ns;
  ev.depth = depth;
  next_ = (next_ + 1) % ring_.size();
}

std::vector<TraceEvent> TraceSink::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  // Oldest event sits at `next_` once the ring has wrapped.
  for (size_t i = 0; i < ring_.size(); ++i) {
    const TraceEvent& ev = ring_[(next_ + i) % ring_.size()];
    if (ev.stage != nullptr) out.push_back(ev);
  }
  return out;
}

uint64_t TraceSink::total_recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return seq_;
}

uint64_t TraceSink::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

std::string TraceSink::RenderJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  char buf[160];
  std::string out;
  snprintf(buf, sizeof(buf),
           "{\"period\": %" PRIu32 ", \"total_recorded\": %" PRIu64
           ", \"dropped\": %" PRIu64 ", \"events\": [",
           period_.load(std::memory_order_relaxed), seq_, dropped_);
  out += buf;
  bool sep = false;
  for (size_t i = 0; i < ring_.size(); ++i) {
    const TraceEvent& ev = ring_[(next_ + i) % ring_.size()];
    if (ev.stage == nullptr) continue;
    snprintf(buf, sizeof(buf),
             "%s\n  {\"stage\": \"%s\", \"seq\": %" PRIu64
             ", \"start_ns\": %" PRIu64 ", \"dur_ns\": %" PRIu64
             ", \"depth\": %" PRIu32 "}",
             sep ? "," : "", ev.stage, ev.seq, ev.start_ns, ev.dur_ns,
             ev.depth);
    out += buf;
    sep = true;
  }
  out += sep ? "\n]}" : "]}";
  return out;
}

void TraceSink::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  for (TraceEvent& ev : ring_) ev = TraceEvent{};
  next_ = 0;
  dropped_ = 0;
}

}  // namespace courserank::obs
