#ifndef COURSERANK_COMMON_SOURCE_SPAN_H_
#define COURSERANK_COMMON_SOURCE_SPAN_H_

#include <string>

namespace courserank {

/// A half-open character range in a source text (workflow DSL or SQL),
/// 1-based like every compiler's. Line 0 means "no location" — diagnostics
/// on nodes built programmatically (fluent builder, hand-built trees) carry
/// no span and render without one.
struct SourceSpan {
  int line = 0;  ///< 1-based physical line; 0 = unknown
  int col = 0;   ///< 1-based byte column of the first character
  int len = 0;   ///< number of bytes covered (0 = point)

  bool valid() const { return line > 0; }

  /// "line:col" or "" when unknown.
  std::string ToString() const {
    if (!valid()) return std::string();
    return std::to_string(line) + ":" + std::to_string(col);
  }

  bool operator==(const SourceSpan& other) const {
    return line == other.line && col == other.col && len == other.len;
  }
};

}  // namespace courserank

#endif  // COURSERANK_COMMON_SOURCE_SPAN_H_
