#ifndef COURSERANK_COMMON_RNG_H_
#define COURSERANK_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace courserank {

/// Deterministic 64-bit PRNG (xoshiro256** seeded via splitmix64). Every
/// generator, simulation, and benchmark in the repo draws from this so runs
/// are exactly reproducible from a seed.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x5eed5eedULL);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform integer in [0, bound). `bound` must be > 0.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// True with probability `p` (clamped to [0,1]).
  bool NextBool(double p);

  /// Standard normal via Box-Muller.
  double NextGaussian();

  /// Normal with the given mean and standard deviation.
  double NextGaussian(double mean, double stddev) {
    return mean + stddev * NextGaussian();
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(NextBounded(i));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Picks one index from a non-empty discrete weight vector; weights need
  /// not be normalized. Returns weights.size()-1 on degenerate input.
  size_t NextWeighted(const std::vector<double>& weights);

 private:
  uint64_t s_[4];
  bool has_spare_gaussian_ = false;
  double spare_gaussian_ = 0.0;
};

/// Samples ranks 1..n with P(k) proportional to 1/k^theta. Precomputes the
/// CDF once; sampling is a binary search. This drives course popularity and
/// user activity skew in the synthetic workload.
class ZipfSampler {
 public:
  ZipfSampler(size_t n, double theta);

  /// Returns a rank in [0, n).
  size_t Sample(Rng& rng) const;

  size_t n() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace courserank

#endif  // COURSERANK_COMMON_RNG_H_
