#include "common/logging.h"

#include <atomic>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>

#include <chrono>

namespace courserank {

namespace {

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

int ParseLevelEnv() {
  const char* env = std::getenv("COURSERANK_LOG_LEVEL");
  if (env == nullptr || *env == '\0') {
    return COURSERANK_LOG_LEVEL_INFO;
  }
  if (std::strcmp(env, "INFO") == 0 || std::strcmp(env, "0") == 0) {
    return COURSERANK_LOG_LEVEL_INFO;
  }
  if (std::strcmp(env, "WARN") == 0 || std::strcmp(env, "1") == 0) {
    return COURSERANK_LOG_LEVEL_WARN;
  }
  if (std::strcmp(env, "ERROR") == 0 || std::strcmp(env, "2") == 0) {
    return COURSERANK_LOG_LEVEL_ERROR;
  }
  std::fprintf(stderr, "[log] ignoring malformed COURSERANK_LOG_LEVEL=%s\n",
               env);
  return COURSERANK_LOG_LEVEL_INFO;
}

std::atomic<int>& LevelVar() {
  static std::atomic<int> level{ParseLevelEnv()};
  return level;
}

}  // namespace

LogLevel RuntimeLogLevel() {
  return static_cast<LogLevel>(LevelVar().load(std::memory_order_relaxed));
}

void SetLogLevel(LogLevel level) {
  LevelVar().store(static_cast<int>(level), std::memory_order_relaxed);
}

void LogMessage(LogLevel level, const char* file, int line, const char* fmt,
                ...) {
  using Clock = std::chrono::system_clock;
  Clock::time_point now = Clock::now();
  std::time_t secs = Clock::to_time_t(now);
  int ms = static_cast<int>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          now.time_since_epoch())
          .count() %
      1000);
  std::tm tm_buf;
  localtime_r(&secs, &tm_buf);
  char ts[32];
  std::strftime(ts, sizeof(ts), "%Y-%m-%d %H:%M:%S", &tm_buf);

  const char* base = std::strrchr(file, '/');
  base = base != nullptr ? base + 1 : file;

  char msg[1024];
  va_list ap;
  va_start(ap, fmt);
  vsnprintf(msg, sizeof(msg), fmt, ap);
  va_end(ap);

  std::fprintf(stderr, "%s.%03d %s %s:%d] %s\n", ts, ms, LevelName(level),
               base, line, msg);
}

void CheckFailed(const char* file, int line, const char* expr) {
  LogMessage(LogLevel::kError, file, line, "CHECK failed: %s", expr);
  std::abort();
}

}  // namespace courserank
