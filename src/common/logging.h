#ifndef COURSERANK_COMMON_LOGGING_H_
#define COURSERANK_COMMON_LOGGING_H_

#include <cstdio>
#include <cstdlib>

namespace courserank {

/// Prints the failure location and aborts. Used by CR_CHECK; not intended to
/// be called directly.
[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr) {
  std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", file, line, expr);
  std::abort();
}

}  // namespace courserank

/// Aborts the process when `cond` is false. For internal invariants only —
/// user-facing errors go through Status.
#define CR_CHECK(cond)                                        \
  do {                                                        \
    if (!(cond)) ::courserank::CheckFailed(__FILE__, __LINE__, #cond); \
  } while (false)

#ifdef NDEBUG
#define CR_DCHECK(cond) \
  do {                  \
  } while (false)
#else
#define CR_DCHECK(cond) CR_CHECK(cond)
#endif

#endif  // COURSERANK_COMMON_LOGGING_H_
