#ifndef COURSERANK_COMMON_LOGGING_H_
#define COURSERANK_COMMON_LOGGING_H_

namespace courserank {

/// Severity of a CR_LOG statement, ordered so numeric comparison works.
enum class LogLevel : int { kInfo = 0, kWarn = 1, kError = 2 };

/// The runtime log threshold: statements below it are skipped. Initialized
/// once from the COURSERANK_LOG_LEVEL env var (INFO/WARN/ERROR or 0/1/2;
/// default INFO), adjustable afterwards for tests and tools.
LogLevel RuntimeLogLevel();
void SetLogLevel(LogLevel level);

/// Formats and writes one log line to stderr:
///   2026-08-05 14:03:07.123 WARN searcher.cc:42] message
/// The line is assembled into one buffer and written with a single stdio
/// call, so concurrent log statements do not interleave mid-line. Not
/// intended to be called directly — use CR_LOG.
void LogMessage(LogLevel level, const char* file, int line, const char* fmt,
                ...) __attribute__((format(printf, 4, 5)));

/// Prints the failure location through the logging backend and aborts. Used
/// by CR_CHECK; not intended to be called directly.
[[noreturn]] void CheckFailed(const char* file, int line, const char* expr);

}  // namespace courserank

// Compile-time floor: CR_LOG statements strictly below it cost nothing, not
// even the runtime level check. Release builds drop INFO; override with
// -DCOURSERANK_MIN_LOG_LEVEL=n for release debugging.
#define COURSERANK_LOG_LEVEL_INFO 0
#define COURSERANK_LOG_LEVEL_WARN 1
#define COURSERANK_LOG_LEVEL_ERROR 2
#ifndef COURSERANK_MIN_LOG_LEVEL
#ifdef NDEBUG
#define COURSERANK_MIN_LOG_LEVEL COURSERANK_LOG_LEVEL_WARN
#else
#define COURSERANK_MIN_LOG_LEVEL COURSERANK_LOG_LEVEL_INFO
#endif
#endif

/// Leveled printf-style logging: CR_LOG(WARN, "refresh failed: %s", msg).
/// Levels below COURSERANK_MIN_LOG_LEVEL compile away entirely; the rest
/// are filtered at runtime against RuntimeLogLevel().
#define CR_LOG(severity, ...)                                             \
  do {                                                                    \
    if constexpr (COURSERANK_LOG_LEVEL_##severity >=                      \
                  COURSERANK_MIN_LOG_LEVEL) {                             \
      if (COURSERANK_LOG_LEVEL_##severity >=                              \
          static_cast<int>(::courserank::RuntimeLogLevel())) {            \
        ::courserank::LogMessage(                                         \
            static_cast<::courserank::LogLevel>(                          \
                COURSERANK_LOG_LEVEL_##severity),                         \
            __FILE__, __LINE__, __VA_ARGS__);                             \
      }                                                                   \
    }                                                                     \
  } while (false)

/// Aborts the process when `cond` is false. For internal invariants only —
/// user-facing errors go through Status.
#define CR_CHECK(cond)                                        \
  do {                                                        \
    if (!(cond)) ::courserank::CheckFailed(__FILE__, __LINE__, #cond); \
  } while (false)

#ifdef NDEBUG
#define CR_DCHECK(cond) \
  do {                  \
  } while (false)
#else
#define CR_DCHECK(cond) CR_CHECK(cond)
#endif

#endif  // COURSERANK_COMMON_LOGGING_H_
