#ifndef COURSERANK_COMMON_THREAD_POOL_H_
#define COURSERANK_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace courserank {

/// A fixed pool of worker threads shared by the read-side query path
/// (index build, cloud accumulation) and any later scaling work.
///
/// Determinism contract: `ParallelFor` partitions work into chunks as a
/// function of the item count only — never of the worker count — and every
/// chunk writes to caller-provided disjoint slots. A pool with zero workers
/// (the `hardware_concurrency() <= 1` container case) therefore runs the
/// exact same chunks inline in order, and produces byte-identical results.
class ThreadPool {
 public:
  /// `num_threads == 0` means no workers: all work runs inline on the
  /// calling thread.
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size(); }

  /// Runs `fn(chunk_index, begin, end)` over `[0, n)` split into
  /// `NumChunks(n, min_chunk)` contiguous ranges and blocks until all
  /// chunks finish. Chunk boundaries depend only on `n` and `min_chunk`.
  /// Called from a worker thread (nested parallelism) it degrades to
  /// inline execution rather than deadlocking on its own pool.
  void ParallelFor(size_t n, size_t min_chunk,
                   const std::function<void(size_t, size_t, size_t)>& fn);

  /// The fixed chunk partition ParallelFor uses; exposed so callers can
  /// pre-size per-chunk output slots.
  static size_t NumChunks(size_t n, size_t min_chunk);

  /// Maximum number of chunks any ParallelFor produces (bounds per-chunk
  /// scratch memory).
  static constexpr size_t kMaxChunks = 16;

  /// Morsel-driven variant for the query executor: splits `[0, n)` into
  /// `NumMorsels(n, morsel_rows)` fixed-size ranges of `morsel_rows` items
  /// each (the last may be short) and runs `fn(morsel_index, begin, end)`
  /// for every one, blocking until all finish. Unlike ParallelFor, the
  /// morsel size — not the morsel count — is fixed, so a big input yields
  /// many small morsels that late workers can steal for load balance. The
  /// partition depends only on `(n, morsel_rows)`, never on worker count,
  /// preserving the determinism contract above.
  void ParallelForMorsels(size_t n, size_t morsel_rows,
                          const std::function<void(size_t, size_t, size_t)>& fn);

  /// The fixed morsel partition ParallelForMorsels uses; exposed so callers
  /// can pre-size per-morsel output chunks.
  static size_t NumMorsels(size_t n, size_t morsel_rows);

  /// Maximum number of morsels any ParallelForMorsels produces. Above this
  /// the morsel size grows so per-morsel bookkeeping stays bounded.
  static constexpr size_t kMaxMorsels = 256;

 private:
  void WorkerLoop();
  /// Shared dispatch: enqueues `parts` tasks with the given bounds, lets the
  /// caller help drain, and blocks until every part has run.
  void Dispatch(size_t parts,
                const std::function<std::pair<size_t, size_t>(size_t)>& bounds,
                const std::function<void(size_t, size_t, size_t)>& fn);

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

/// Process-wide pool sized to the hardware, created on first use. Holds
/// zero workers (inline execution) when `hardware_concurrency() <= 1`.
ThreadPool& SharedThreadPool();

}  // namespace courserank

#endif  // COURSERANK_COMMON_THREAD_POOL_H_
