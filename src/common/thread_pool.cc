#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace courserank {

namespace {

/// Set while a thread is executing pool work, so nested ParallelFor calls
/// run inline instead of blocking on a queue they are supposed to drain.
thread_local bool t_in_pool_worker = false;

/// Pool-wide registry metrics, resolved once. `queue_depth` counts enqueued
/// but not yet started chunks; `caller_drained` counts chunks the submitting
/// thread stole back while helping drain; `worker_idle` counts transitions
/// of a worker into the idle wait.
struct PoolMetrics {
  obs::Gauge* queue_depth;
  obs::Histogram* task_ns;
  obs::Counter* tasks;
  obs::Counter* inline_chunks;
  obs::Counter* caller_drained;
  obs::Counter* worker_idle;
  obs::Counter* parallel_fors;
};

const PoolMetrics& Metrics() {
  static const PoolMetrics m = [] {
    obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
    return PoolMetrics{reg.GetGauge("cr_pool_queue_depth"),
                       reg.GetHistogram("cr_pool_task_ns"),
                       reg.GetCounter("cr_pool_tasks_total"),
                       reg.GetCounter("cr_pool_inline_chunks_total"),
                       reg.GetCounter("cr_pool_caller_drained_total"),
                       reg.GetCounter("cr_pool_worker_idle_total"),
                       reg.GetCounter("cr_pool_parallel_fors_total")};
  }();
  return m;
}

/// Runs one dequeued task with latency accounting.
void RunTimed(const std::function<void()>& task) {
  uint64_t t0 = obs::NowNs();
  task();
  Metrics().task_ns->Record(obs::NowNs() - t0);
  Metrics().tasks->Add();
}

}  // namespace

ThreadPool::ThreadPool(size_t num_threads) {
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::WorkerLoop() {
  t_in_pool_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (queue_.empty() && !stop_) Metrics().worker_idle->Add();
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    Metrics().queue_depth->Add(-1);
    RunTimed(task);
  }
}

size_t ThreadPool::NumChunks(size_t n, size_t min_chunk) {
  if (n == 0) return 0;
  if (min_chunk == 0) min_chunk = 1;
  return std::min(kMaxChunks, (n + min_chunk - 1) / min_chunk);
}

void ThreadPool::ParallelFor(
    size_t n, size_t min_chunk,
    const std::function<void(size_t, size_t, size_t)>& fn) {
  size_t chunks = NumChunks(n, min_chunk);
  if (chunks == 0) return;

  // The partition below is a pure function of (n, chunks).
  auto chunk_bounds = [n, chunks](size_t c) {
    size_t begin = n * c / chunks;
    size_t end = n * (c + 1) / chunks;
    return std::pair<size_t, size_t>(begin, end);
  };

  Metrics().parallel_fors->Add();
  Dispatch(chunks, chunk_bounds, fn);
}

size_t ThreadPool::NumMorsels(size_t n, size_t morsel_rows) {
  if (n == 0) return 0;
  if (morsel_rows == 0) morsel_rows = 1;
  return std::min(kMaxMorsels, (n + morsel_rows - 1) / morsel_rows);
}

void ThreadPool::ParallelForMorsels(
    size_t n, size_t morsel_rows,
    const std::function<void(size_t, size_t, size_t)>& fn) {
  size_t morsels = NumMorsels(n, morsel_rows);
  if (morsels == 0) return;

  // Same even partition as ParallelFor, but the part count comes from the
  // morsel size so inputs far above `morsel_rows * kMaxMorsels` simply get
  // proportionally larger morsels. Pure function of (n, morsels).
  auto morsel_bounds = [n, morsels](size_t m) {
    size_t begin = n * m / morsels;
    size_t end = n * (m + 1) / morsels;
    return std::pair<size_t, size_t>(begin, end);
  };

  Metrics().parallel_fors->Add();
  Dispatch(morsels, morsel_bounds, fn);
}

void ThreadPool::Dispatch(
    size_t parts,
    const std::function<std::pair<size_t, size_t>(size_t)>& bounds,
    const std::function<void(size_t, size_t, size_t)>& fn) {
  if (parts == 1 || workers_.empty() || t_in_pool_worker) {
    Metrics().inline_chunks->Add(parts);
    for (size_t c = 0; c < parts; ++c) {
      auto [begin, end] = bounds(c);
      fn(c, begin, end);
    }
    return;
  }
  std::atomic<size_t> remaining(parts);
  std::mutex done_mu;
  std::condition_variable done_cv;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (size_t c = 0; c < parts; ++c) {
      auto [begin, end] = bounds(c);
      queue_.push_back([&, c, begin, end] {
        fn(c, begin, end);
        if (remaining.fetch_sub(1) == 1) {
          std::lock_guard<std::mutex> done_lock(done_mu);
          done_cv.notify_all();
        }
      });
    }
    // Inside the lock so the gauge never reads negative: workers decrement
    // only after they pop, which requires this lock.
    Metrics().queue_depth->Add(static_cast<int64_t>(parts));
  }
  cv_.notify_all();
  // The caller helps drain its own chunks so a small pool never stalls a
  // large ParallelFor.
  for (;;) {
    std::function<void()> task;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (!queue_.empty()) {
        task = std::move(queue_.front());
        queue_.pop_front();
      }
    }
    if (!task) break;
    Metrics().queue_depth->Add(-1);
    Metrics().caller_drained->Add();
    RunTimed(task);
  }
  std::unique_lock<std::mutex> done_lock(done_mu);
  done_cv.wait(done_lock, [&] { return remaining.load() == 0; });
}

ThreadPool& SharedThreadPool() {
  static ThreadPool* pool = [] {
    unsigned hc = std::thread::hardware_concurrency();
    return new ThreadPool(hc <= 1 ? 0 : hc - 1);
  }();
  return *pool;
}

}  // namespace courserank
