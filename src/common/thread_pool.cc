#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>

namespace courserank {

namespace {

/// Set while a thread is executing pool work, so nested ParallelFor calls
/// run inline instead of blocking on a queue they are supposed to drain.
thread_local bool t_in_pool_worker = false;

}  // namespace

ThreadPool::ThreadPool(size_t num_threads) {
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::WorkerLoop() {
  t_in_pool_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

size_t ThreadPool::NumChunks(size_t n, size_t min_chunk) {
  if (n == 0) return 0;
  if (min_chunk == 0) min_chunk = 1;
  return std::min(kMaxChunks, (n + min_chunk - 1) / min_chunk);
}

void ThreadPool::ParallelFor(
    size_t n, size_t min_chunk,
    const std::function<void(size_t, size_t, size_t)>& fn) {
  size_t chunks = NumChunks(n, min_chunk);
  if (chunks == 0) return;

  // The partition below is a pure function of (n, chunks).
  auto chunk_bounds = [n, chunks](size_t c) {
    size_t begin = n * c / chunks;
    size_t end = n * (c + 1) / chunks;
    return std::pair<size_t, size_t>(begin, end);
  };

  if (chunks == 1 || workers_.empty() || t_in_pool_worker) {
    for (size_t c = 0; c < chunks; ++c) {
      auto [begin, end] = chunk_bounds(c);
      fn(c, begin, end);
    }
    return;
  }

  std::atomic<size_t> remaining(chunks);
  std::mutex done_mu;
  std::condition_variable done_cv;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (size_t c = 0; c < chunks; ++c) {
      auto [begin, end] = chunk_bounds(c);
      queue_.push_back([&, c, begin, end] {
        fn(c, begin, end);
        if (remaining.fetch_sub(1) == 1) {
          std::lock_guard<std::mutex> done_lock(done_mu);
          done_cv.notify_all();
        }
      });
    }
  }
  cv_.notify_all();
  // The caller helps drain its own chunks so a small pool never stalls a
  // large ParallelFor.
  for (;;) {
    std::function<void()> task;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (!queue_.empty()) {
        task = std::move(queue_.front());
        queue_.pop_front();
      }
    }
    if (!task) break;
    task();
  }
  std::unique_lock<std::mutex> done_lock(done_mu);
  done_cv.wait(done_lock, [&] { return remaining.load() == 0; });
}

ThreadPool& SharedThreadPool() {
  static ThreadPool* pool = [] {
    unsigned hc = std::thread::hardware_concurrency();
    return new ThreadPool(hc <= 1 ? 0 : hc - 1);
  }();
  return *pool;
}

}  // namespace courserank
