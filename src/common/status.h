#ifndef COURSERANK_COMMON_STATUS_H_
#define COURSERANK_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <utility>

namespace courserank {

/// Error categories used across the library. Mirrors the usual database
/// Status taxonomy (RocksDB / Abseil style) so call sites can branch on the
/// broad class of failure without parsing messages.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kPermissionDenied,
  kCorruption,
  kUnimplemented,
  kInternal,
};

/// Returns a stable human-readable name for `code` (e.g. "NotFound").
const char* StatusCodeName(StatusCode code);

/// Lightweight success-or-error value. The library does not use exceptions;
/// every fallible operation returns a Status (or a Result<T>, below).
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status PermissionDenied(std::string msg) {
    return Status(StatusCode::kPermissionDenied, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Returns "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Holds either a value of type T or an error Status. Modeled on
/// absl::StatusOr. Accessing the value of an error Result is a programming
/// error checked in debug builds.
template <typename T>
class Result {
 public:
  /// Implicit from value: lets `return value;` work in functions returning
  /// Result<T>, matching StatusOr convention.
  Result(T value) : value_(std::move(value)) {}
  /// Implicit from error status: lets `return Status::NotFound(...)` work.
  Result(Status status) : status_(std::move(status)) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return std::move(*value_); }

  const T& operator*() const& { return *value_; }
  T& operator*() & { return *value_; }
  const T* operator->() const { return &*value_; }
  T* operator->() { return &*value_; }

  /// Returns the contained value or `fallback` when this holds an error.
  T value_or(T fallback) const& {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagates a non-OK Status from an expression to the caller.
#define CR_RETURN_IF_ERROR(expr)                   \
  do {                                             \
    ::courserank::Status _cr_status = (expr);      \
    if (!_cr_status.ok()) return _cr_status;       \
  } while (false)

#define CR_STATUS_CONCAT_INNER_(x, y) x##y
#define CR_STATUS_CONCAT_(x, y) CR_STATUS_CONCAT_INNER_(x, y)

/// Evaluates a Result<T> expression; on error returns the Status, otherwise
/// moves the value into `lhs` (which may be a declaration).
#define CR_ASSIGN_OR_RETURN(lhs, expr)                                 \
  CR_ASSIGN_OR_RETURN_IMPL_(CR_STATUS_CONCAT_(_cr_result_, __LINE__), \
                            lhs, expr)

#define CR_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                              \
  if (!tmp.ok()) return tmp.status();             \
  lhs = std::move(tmp).value()

}  // namespace courserank

#endif  // COURSERANK_COMMON_STATUS_H_
