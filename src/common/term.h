#ifndef COURSERANK_COMMON_TERM_H_
#define COURSERANK_COMMON_TERM_H_

#include <compare>
#include <cstdint>
#include <string>

#include "common/status.h"

namespace courserank {

/// Stanford-style academic quarters, in within-year order.
enum class Quarter : uint8_t {
  kAutumn = 0,
  kWinter = 1,
  kSpring = 2,
  kSummer = 3,
};

/// Returns "Autumn", "Winter", "Spring", or "Summer".
const char* QuarterName(Quarter q);

/// Parses a quarter name (case-insensitive, full name or first two letters).
Result<Quarter> ParseQuarter(const std::string& s);

/// One academic term, e.g. Autumn 2008. Ordered chronologically: the academic
/// year starts in Autumn, so Autumn 2008 < Winter 2008 < Spring 2008 <
/// Summer 2008 < Autumn 2009 (terms are labeled by academic year).
struct Term {
  int year = 0;  ///< Academic year label, e.g. 2008 for AY 2008-09.
  Quarter quarter = Quarter::kAutumn;

  /// Monotone index used for ordering and arithmetic.
  int Index() const { return year * 4 + static_cast<int>(quarter); }

  /// Term `n` quarters after this one.
  Term Plus(int n) const;

  auto operator<=>(const Term& other) const {
    return Index() <=> other.Index();
  }
  bool operator==(const Term& other) const { return Index() == other.Index(); }

  /// "Autumn 2008".
  std::string ToString() const;

  /// Parses "Autumn 2008" or "2008 Autumn".
  static Result<Term> Parse(const std::string& s);
};

/// Bitmask of weekdays a class meets. Monday = bit 0 .. Sunday = bit 6.
enum Weekday : uint8_t {
  kMon = 1 << 0,
  kTue = 1 << 1,
  kWed = 1 << 2,
  kThu = 1 << 3,
  kFri = 1 << 4,
  kSat = 1 << 5,
  kSun = 1 << 6,
};

/// Weekly meeting time: a set of weekdays plus a [start, end) window in
/// minutes after midnight. Used by the planner for conflict checking.
struct TimeSlot {
  uint8_t days = 0;        ///< OR of Weekday bits; 0 means "no meetings".
  int16_t start_min = 0;   ///< Minutes after midnight, inclusive.
  int16_t end_min = 0;     ///< Minutes after midnight, exclusive.

  bool empty() const { return days == 0 || end_min <= start_min; }

  /// True if the two slots share a weekday and their minute windows overlap.
  bool ConflictsWith(const TimeSlot& other) const;

  /// "MWF 09:00-09:50", or "TBA" for an empty slot.
  std::string ToString() const;

  bool operator==(const TimeSlot& other) const = default;
};

}  // namespace courserank

#endif  // COURSERANK_COMMON_TERM_H_
