#ifndef COURSERANK_COMMON_STRINGS_H_
#define COURSERANK_COMMON_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace courserank {

/// Returns a lowercase copy of `s` (ASCII only).
std::string ToLower(std::string_view s);

/// Returns an uppercase copy of `s` (ASCII only).
std::string ToUpper(std::string_view s);

/// Strips leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// Splits `s` on `sep`, keeping empty pieces.
std::vector<std::string> Split(std::string_view s, char sep);

/// Splits `s` on any ASCII whitespace run, dropping empty pieces.
std::vector<std::string> SplitWhitespace(std::string_view s);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// Case-insensitive equality (ASCII).
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// True if `haystack` contains `needle` ignoring ASCII case.
bool ContainsIgnoreCase(std::string_view haystack, std::string_view needle);

/// SQL LIKE matching with % (any run) and _ (any one char) wildcards,
/// case-insensitive to match our engine's collation.
bool LikeMatch(std::string_view text, std::string_view pattern);

/// Formats a double with `digits` fractional digits (no trailing zeros kept).
std::string FormatDouble(double v, int digits = 6);

}  // namespace courserank

#endif  // COURSERANK_COMMON_STRINGS_H_
