#include "common/term.h"

#include <cstdio>

#include "common/strings.h"

namespace courserank {

const char* QuarterName(Quarter q) {
  switch (q) {
    case Quarter::kAutumn:
      return "Autumn";
    case Quarter::kWinter:
      return "Winter";
    case Quarter::kSpring:
      return "Spring";
    case Quarter::kSummer:
      return "Summer";
  }
  return "?";
}

Result<Quarter> ParseQuarter(const std::string& s) {
  std::string low = ToLower(Trim(s));
  for (Quarter q : {Quarter::kAutumn, Quarter::kWinter, Quarter::kSpring,
                    Quarter::kSummer}) {
    std::string name = ToLower(QuarterName(q));
    if (low == name || (low.size() >= 2 && low == name.substr(0, low.size())))
      return q;
  }
  return Status::InvalidArgument("unknown quarter: '" + s + "'");
}

Term Term::Plus(int n) const {
  int idx = Index() + n;
  Term t;
  t.year = idx / 4;
  t.quarter = static_cast<Quarter>(idx % 4);
  return t;
}

std::string Term::ToString() const {
  return std::string(QuarterName(quarter)) + " " + std::to_string(year);
}

Result<Term> Term::Parse(const std::string& s) {
  auto parts = SplitWhitespace(s);
  if (parts.size() != 2) {
    return Status::InvalidArgument("expected '<Quarter> <year>': '" + s + "'");
  }
  // Accept either order.
  for (int qi : {0, 1}) {
    auto q = ParseQuarter(parts[qi]);
    if (!q.ok()) continue;
    const std::string& year_str = parts[1 - qi];
    char* end = nullptr;
    long year = std::strtol(year_str.c_str(), &end, 10);
    if (end == nullptr || *end != '\0' || year < 1900 || year > 3000) continue;
    Term t;
    t.year = static_cast<int>(year);
    t.quarter = *q;
    return t;
  }
  return Status::InvalidArgument("cannot parse term: '" + s + "'");
}

bool TimeSlot::ConflictsWith(const TimeSlot& other) const {
  if (empty() || other.empty()) return false;
  if ((days & other.days) == 0) return false;
  return start_min < other.end_min && other.start_min < end_min;
}

std::string TimeSlot::ToString() const {
  if (empty()) return "TBA";
  static constexpr const char* kNames[] = {"M", "T", "W", "Th", "F", "Sa",
                                           "Su"};
  std::string out;
  for (int i = 0; i < 7; ++i) {
    if (days & (1 << i)) out += kNames[i];
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), " %02d:%02d-%02d:%02d", start_min / 60,
                start_min % 60, end_min / 60, end_min % 60);
  out += buf;
  return out;
}

}  // namespace courserank
