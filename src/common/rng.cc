#include "common/rng.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace courserank {

namespace {

inline uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  CR_DCHECK(bound > 0);
  // Rejection sampling to avoid modulo bias.
  uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  CR_DCHECK(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<int64_t>(Next());  // full 64-bit range
  return lo + static_cast<int64_t>(NextBounded(span));
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::NextBool(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

double Rng::NextGaussian() {
  if (has_spare_gaussian_) {
    has_spare_gaussian_ = false;
    return spare_gaussian_;
  }
  double u1 = 0.0;
  do {
    u1 = NextDouble();
  } while (u1 <= 1e-300);
  double u2 = NextDouble();
  double mag = std::sqrt(-2.0 * std::log(u1));
  spare_gaussian_ = mag * std::sin(2.0 * M_PI * u2);
  has_spare_gaussian_ = true;
  return mag * std::cos(2.0 * M_PI * u2);
}

size_t Rng::NextWeighted(const std::vector<double>& weights) {
  CR_DCHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) total += (w > 0 ? w : 0);
  if (total <= 0.0) return weights.size() - 1;
  double r = NextDouble() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += (weights[i] > 0 ? weights[i] : 0);
    if (r < acc) return i;
  }
  return weights.size() - 1;
}

ZipfSampler::ZipfSampler(size_t n, double theta) {
  CR_CHECK(n > 0);
  cdf_.resize(n);
  double acc = 0.0;
  for (size_t k = 1; k <= n; ++k) {
    acc += 1.0 / std::pow(static_cast<double>(k), theta);
    cdf_[k - 1] = acc;
  }
  for (auto& c : cdf_) c /= acc;
}

size_t ZipfSampler::Sample(Rng& rng) const {
  double u = rng.NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return cdf_.size() - 1;
  return static_cast<size_t>(it - cdf_.begin());
}

}  // namespace courserank
