#include "common/strings.h"

#include <algorithm>
#include <cctype>
#include <cstdio>

namespace courserank {

namespace {

inline char AsciiLower(char c) {
  return (c >= 'A' && c <= 'Z') ? static_cast<char>(c - 'A' + 'a') : c;
}

inline char AsciiUpper(char c) {
  return (c >= 'a' && c <= 'z') ? static_cast<char>(c - 'a' + 'A') : c;
}

inline bool IsSpace(char c) {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f' ||
         c == '\v';
}

}  // namespace

std::string ToLower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), AsciiLower);
  return out;
}

std::string ToUpper(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), AsciiUpper);
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && IsSpace(s[b])) ++b;
  while (e > b && IsSpace(s[e - 1])) --e;
  return s.substr(b, e - b);
}

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> SplitWhitespace(std::string_view s) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && IsSpace(s[i])) ++i;
    size_t start = i;
    while (i < s.size() && !IsSpace(s[i])) ++i;
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (AsciiLower(a[i]) != AsciiLower(b[i])) return false;
  }
  return true;
}

bool ContainsIgnoreCase(std::string_view haystack, std::string_view needle) {
  if (needle.empty()) return true;
  if (needle.size() > haystack.size()) return false;
  for (size_t i = 0; i + needle.size() <= haystack.size(); ++i) {
    bool match = true;
    for (size_t j = 0; j < needle.size(); ++j) {
      if (AsciiLower(haystack[i + j]) != AsciiLower(needle[j])) {
        match = false;
        break;
      }
    }
    if (match) return true;
  }
  return false;
}

bool LikeMatch(std::string_view text, std::string_view pattern) {
  // Iterative two-pointer matcher with backtracking over the last '%'.
  size_t t = 0;
  size_t p = 0;
  size_t star_p = std::string_view::npos;
  size_t star_t = 0;
  while (t < text.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '_' || AsciiLower(pattern[p]) == AsciiLower(text[t]))) {
      ++t;
      ++p;
    } else if (p < pattern.size() && pattern[p] == '%') {
      star_p = p++;
      star_t = t;
    } else if (star_p != std::string_view::npos) {
      p = star_p + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '%') ++p;
  return p == pattern.size();
}

std::string FormatDouble(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  std::string s(buf);
  if (s.find('.') != std::string::npos) {
    size_t last = s.find_last_not_of('0');
    if (s[last] == '.') --last;
    s.erase(last + 1);
  }
  return s;
}

}  // namespace courserank
