#ifndef COURSERANK_CORE_FLEXRECS_ENGINE_H_
#define COURSERANK_CORE_FLEXRECS_ENGINE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "analysis/analyzer.h"
#include "analysis/diagnostics.h"
#include "common/status.h"
#include "core/similarity.h"
#include "core/workflow.h"
#include "query/profile.h"
#include "query/sql_engine.h"

namespace courserank::flexrecs {

using query::ParamMap;

/// Profile of one executed workflow step. SQL and physical steps carry the
/// per-operator plan tree their execution produced; values steps have none.
struct WorkflowStepProfile {
  std::string label;  ///< SQL text, row count, or physical operator line
  std::string kind;   ///< "sql" | "values" | "physical"
  uint64_t wall_ns = 0;
  uint64_t rows_out = 0;
  std::unique_ptr<query::PlanProfileNode> plan;  ///< may be null
};

/// Profile of one workflow run: the executed step sequence (the compiled
/// workflow's Explain() order) annotated with wall time, output rows, and
/// nested operator trees (DESIGN.md §13).
struct WorkflowProfile {
  std::string name;  ///< strategy name or "<workflow>"
  uint64_t total_ns = 0;
  std::vector<WorkflowStepProfile> steps;

  /// Human-readable rendering: one header line, then per step the kind,
  /// label, wall time (% of total), and rows, with the operator tree
  /// indented underneath.
  std::string Render() const;

  /// {"name","total_ns","steps":[{label,kind,wall_ns,rows_out,plan}...]}.
  std::string RenderJson() const;
};

/// One step of a compiled workflow, executed in order. Relational subtrees
/// compile into SQL text run by the conventional engine (paper §3.2: "The
/// engine executes a workflow by 'compiling' it into a sequence of SQL
/// calls"); recommend/extend and non-canonical relational shapes run as
/// physical operators over the materialized intermediate relations.
struct CompiledStep {
  enum class Kind { kSql, kValues, kPhysical };
  Kind kind = Kind::kSql;
  std::string sql;                    ///< kSql
  Relation values;                    ///< kValues
  const WorkflowNode* node = nullptr; ///< kPhysical (owned by the workflow)
  std::vector<size_t> inputs;         ///< indices of earlier steps
  std::string label;                  ///< for Explain()
};

/// A run of adjacent physical σ/π/ε steps the executor collapses into one
/// query::FusedPipelineNode (DESIGN.md §16). Members are step indices in
/// producer-first order; the fused node executes at the last member's
/// position and earlier members are skipped.
struct FusionGroup {
  std::vector<size_t> members;
};

/// Why a physical σ/π/ε step stayed out of every fusion group — surfaced by
/// Explain() so admins can see where a chain broke.
struct FusionNote {
  size_t step = 0;
  std::string reason;
};

/// A compiled workflow: owns a clone of the operator tree plus the ordered
/// step list referencing into it.
class CompiledWorkflow {
 public:
  CompiledWorkflow() = default;
  CompiledWorkflow(CompiledWorkflow&&) = default;
  CompiledWorkflow& operator=(CompiledWorkflow&&) = default;

  const std::vector<CompiledStep>& steps() const { return steps_; }

  /// Fused σ/π/ε runs the executor collapses (empty when nothing fuses).
  const std::vector<FusionGroup>& fusion_groups() const { return groups_; }

  /// Per-step bailout reasons for σ/π/ε steps left out of every group.
  const std::vector<FusionNote>& fusion_notes() const { return notes_; }

  /// The sequence of SQL calls and physical operators, numbered, followed
  /// by the fusion groups and bailout notes when any exist.
  std::string Explain() const;

 private:
  friend class FlexRecsEngine;

  NodePtr root_;
  std::vector<CompiledStep> steps_;
  std::vector<FusionGroup> groups_;
  std::vector<FusionNote> notes_;
};

/// The FlexRecs engine: compiles and executes recommendation workflows and
/// keeps a registry of named strategies that end users select and
/// personalize with parameters (paper §2.1: "recommendation strategies that
/// can be then selected (and personalized) by a student").
class FlexRecsEngine {
 public:
  explicit FlexRecsEngine(storage::Database* db);

  SimilarityLibrary& library() { return library_; }
  const SimilarityLibrary& library() const { return library_; }

  /// Execution options for every plan this engine runs — forwarded to the
  /// embedded SQL engine and used by the physical operators (including the
  /// morsel-parallel recommend scoring loop).
  void set_exec_options(const query::ExecOptions& o) {
    exec_ = o;
    sql_.set_exec_options(o);
  }
  const query::ExecOptions& exec_options() const { return exec_; }

  /// Planner rewrites for every SQL step this engine runs — forwarded to
  /// the embedded SQL engine. Ablation harnesses toggle the fusion tier
  /// (PlannerOptions::fuse_pipelines) here; workflows recompile their SQL
  /// steps per run, so a toggle takes effect immediately.
  void set_planner_options(const query::PlannerOptions& o) {
    sql_.set_planner_options(o);
  }
  const query::PlannerOptions& planner_options() const {
    return sql_.planner_options();
  }

  /// Analyzer options for every static pass this engine runs (Compile's
  /// pre-execution analysis, the CR5xx rewrite verifier, and the
  /// check_static_claims property inference).
  void set_analyzer_options(const analysis::AnalyzerOptions& o) {
    analyzer_ = o;
  }
  const analysis::AnalyzerOptions& analyzer_options() const {
    return analyzer_;
  }

  /// Runs the static analyzer over a workflow against this engine's
  /// catalog and similarity library; findings accumulate in `diags`.
  void Analyze(const WorkflowNode& root,
               analysis::DiagnosticBag* diags) const;

  /// Compiles the workflow into steps. Runs static analysis first and
  /// returns the error diagnostics as a Status — invalid plans are
  /// rejected here, never aborted on mid-execution. Under
  /// AnalyzerOptions::verify_rewrites (debug default) it also runs the
  /// workflow optimizer over a throwaway clone and fails with CR5xx
  /// diagnostics if any shipped rewrite weakens the plan's inferred
  /// properties.
  Result<CompiledWorkflow> Compile(const WorkflowNode& root) const;

  /// Always-on profiling: every Run/RunStrategy collects a WorkflowProfile
  /// and submits it to the process-wide ProfileRecorder (feeding
  /// /debug/profiles and the slow-query log). Off by default.
  void set_profiling(bool on) { profiling_ = on; }
  bool profiling() const { return profiling_; }

  /// Executes a compiled workflow with the given parameters.
  Result<Relation> Execute(const CompiledWorkflow& compiled,
                           const ParamMap& params = {});

  /// Executes a compiled workflow, collecting per-step profiles into
  /// `profile`. Collect-only: nothing is submitted to the ProfileRecorder.
  Result<Relation> Execute(const CompiledWorkflow& compiled,
                           const ParamMap& params, WorkflowProfile* profile);

  /// Compile + execute in one call.
  Result<Relation> Run(const WorkflowNode& root, const ParamMap& params = {});

  /// Compile + execute with profiling; submits the profile to
  /// ProfileRecorder::Default(). `out` optionally receives the profile.
  Result<Relation> RunProfiled(const WorkflowNode& root,
                               const ParamMap& params = {},
                               WorkflowProfile* out = nullptr);

  // ---- strategy registry ----

  /// Registers a named strategy; replaces silently (admins iterate).
  Status RegisterStrategy(const std::string& name, NodePtr workflow);

  Result<Relation> RunStrategy(const std::string& name,
                               const ParamMap& params = {});

  /// RunStrategy with profiling; the profile's name is the strategy name.
  Result<Relation> RunStrategyProfiled(const std::string& name,
                                       const ParamMap& params = {},
                                       WorkflowProfile* out = nullptr);

  /// Compiled view of a registered strategy.
  Result<std::string> ExplainStrategy(const std::string& name) const;

  std::vector<std::string> StrategyNames() const;

 private:
  /// Compiles one node into `steps`, reusing an existing step when an
  /// identical subtree was already compiled (`memo` maps a structural
  /// signature to its step index). The DSL clones a variable's subtree
  /// into every use site, so a workflow like user_cf re-derives `ext`
  /// under both `target` and `others`; deduplication makes the step list
  /// a DAG again and the executor's remaining_uses accounting shares the
  /// materialized relation between consumers.
  size_t CompileNode(const WorkflowNode* node,
                     std::vector<CompiledStep>* steps,
                     std::map<std::string, size_t>* memo) const;
  /// The step loop behind both Execute overloads; `profile` may be null.
  Result<Relation> ExecuteImpl(const CompiledWorkflow& compiled,
                               const ParamMap& params,
                               WorkflowProfile* profile);
  /// `remaining_uses[i]` counts how many later step inputs still read step
  /// i's result; the executor decrements it per consumed input and moves
  /// (rather than copies) a result into its last consumer. With `collector`
  /// non-null the executed plan records a profile tree into it.
  Result<Relation> ExecutePhysical(const WorkflowNode& node,
                                   std::vector<Relation>& results,
                                   const std::vector<size_t>& inputs,
                                   std::vector<size_t>& remaining_uses,
                                   const ParamMap& params,
                                   query::ProfileCollector* collector);
  Result<Relation> ExecuteRecommend(const WorkflowNode& node, Relation input,
                                    Relation reference, const ParamMap& params,
                                    query::PlanProfileNode* prof);

  storage::Database* db_;
  query::SqlEngine sql_;
  SimilarityLibrary library_;
  query::ExecOptions exec_;
  analysis::AnalyzerOptions analyzer_;
  std::map<std::string, NodePtr> strategies_;
  bool profiling_ = false;
};

}  // namespace courserank::flexrecs

#endif  // COURSERANK_CORE_FLEXRECS_ENGINE_H_
