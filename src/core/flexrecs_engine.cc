#include "core/flexrecs_engine.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <optional>

#include "analysis/analyzer.h"
#include "analysis/fusion.h"
#include "common/strings.h"
#include "common/thread_pool.h"
#include "core/workflow_optimizer.h"
#include "obs/metrics.h"
#include "obs/profile_recorder.h"
#include "obs/trace.h"
#include "query/hash_table.h"
#include "query/plan.h"
#include "query/profile.h"
#include "storage/value.h"

namespace courserank::flexrecs {

using query::PlanPtr;
using storage::Column;
using storage::Row;
using storage::RowHash;
using storage::Value;
using storage::ValueType;

namespace {

/// Result of trying to render a Table/Select/Join subtree as a SQL FROM
/// clause plus WHERE conjuncts.
struct FromClause {
  bool ok = false;
  std::string text;
  std::vector<std::string> where;
};

FromClause TryFromClause(const WorkflowNode* node) {
  FromClause out;
  switch (node->kind) {
    case NodeKind::kTable:
      out.ok = true;
      out.text = node->table;
      return out;
    case NodeKind::kSelect: {
      FromClause inner = TryFromClause(node->children[0].get());
      if (!inner.ok) return out;
      inner.where.push_back(node->predicate->ToString());
      return inner;
    }
    case NodeKind::kJoin: {
      FromClause left = TryFromClause(node->children[0].get());
      if (!left.ok) return out;
      // The right side must reduce to a single table (its filters are safe
      // to hoist into the global WHERE of an inner join).
      FromClause right = TryFromClause(node->children[1].get());
      if (!right.ok || right.text.find(' ') != std::string::npos) return out;
      out.ok = true;
      out.text = left.text + " JOIN " + right.text + " ON " +
                 (node->predicate ? node->predicate->ToString() : "TRUE");
      out.where = left.where;
      out.where.insert(out.where.end(), right.where.begin(),
                       right.where.end());
      return out;
    }
    default:
      return out;
  }
}

/// Attempts to render a canonical relational chain — TopK? Project? Select*
/// over Table/Join — as one SELECT statement. Empty optional on mismatch.
std::optional<std::string> TryBuildSql(const WorkflowNode* node) {
  const WorkflowNode* cur = node;

  std::string order_limit;
  if (cur->kind == NodeKind::kTopK) {
    order_limit = " ORDER BY " + cur->order_column +
                  (cur->descending ? " DESC" : " ASC") + " LIMIT " +
                  std::to_string(cur->k);
    cur = cur->children[0].get();
  }

  std::string select_list = "*";
  if (cur->kind == NodeKind::kProject) {
    select_list.clear();
    for (size_t i = 0; i < cur->items.size(); ++i) {
      if (i > 0) select_list += ", ";
      select_list += cur->items[i].expr->ToString() + " AS " +
                     cur->items[i].name;
    }
    cur = cur->children[0].get();
  }

  FromClause from = TryFromClause(cur);
  if (!from.ok) return std::nullopt;

  std::string sql = "SELECT " + select_list + " FROM " + from.text;
  if (!from.where.empty()) {
    sql += " WHERE ";
    for (size_t i = 0; i < from.where.size(); ++i) {
      if (i > 0) sql += " AND ";
      sql += from.where[i];
    }
  }
  sql += order_limit;
  return sql;
}

Result<size_t> FindColumn(const query::Schema& schema,
                          const std::string& name, const char* what) {
  auto idx = schema.FindColumn(name);
  if (!idx.has_value()) {
    return Status::InvalidArgument(std::string("recommend ") + what +
                                   " attribute '" + name +
                                   "' not found in schema [" +
                                   schema.ToString() + "]");
  }
  return *idx;
}

/// First line of the node rendering — the same label Compile() gives the
/// step, reused as the profile node's describe text.
std::string NodeLabel(const WorkflowNode& node) {
  std::string repr = node.ToString(0);
  size_t nl = repr.find('\n');
  return nl == std::string::npos ? repr : repr.substr(0, nl);
}

const char* StepKindName(CompiledStep::Kind kind) {
  switch (kind) {
    case CompiledStep::Kind::kSql:
      return "sql";
    case CompiledStep::Kind::kValues:
      return "values";
    case CompiledStep::Kind::kPhysical:
      return "physical";
  }
  return "?";
}

}  // namespace

std::string CompiledWorkflow::Explain() const {
  std::string out;
  for (size_t i = 0; i < steps_.size(); ++i) {
    const CompiledStep& s = steps_[i];
    out += "step " + std::to_string(i + 1) + " ";
    switch (s.kind) {
      case CompiledStep::Kind::kSql:
        out += "[SQL]      " + s.sql;
        break;
      case CompiledStep::Kind::kValues:
        out += "[VALUES]   " + std::to_string(s.values.rows.size()) + " rows";
        break;
      case CompiledStep::Kind::kPhysical:
        out += "[PHYSICAL] " + s.label;
        break;
    }
    if (!s.inputs.empty()) {
      out += "  <- steps(";
      for (size_t j = 0; j < s.inputs.size(); ++j) {
        if (j > 0) out += ", ";
        out += std::to_string(s.inputs[j] + 1);
      }
      out += ")";
    }
    out += "\n";
  }
  if (!groups_.empty() || !notes_.empty()) {
    out += "fusion groups:";
    out += groups_.empty() ? " (none)\n" : "\n";
    for (size_t g = 0; g < groups_.size(); ++g) {
      out += "  group " + std::to_string(g + 1) + ": steps(";
      for (size_t i = 0; i < groups_[g].members.size(); ++i) {
        if (i > 0) out += ", ";
        out += std::to_string(groups_[g].members[i] + 1);
      }
      out += ")  ";
      for (size_t i = 0; i < groups_[g].members.size(); ++i) {
        if (i > 0) out += " -> ";
        out += analysis::FusionStageLabel(*steps_[groups_[g].members[i]].node);
      }
      out += "\n";
    }
    for (const FusionNote& note : notes_) {
      out += "  step " + std::to_string(note.step + 1) +
             " not fused: " + note.reason + "\n";
    }
  }
  return out;
}

std::string WorkflowProfile::Render() const {
  char buf[64];
  std::string out = name.empty() ? "<workflow>" : name;
  out += "  [total " + query::FormatNs(total_ns) + "]\n";
  for (size_t i = 0; i < steps.size(); ++i) {
    const WorkflowStepProfile& s = steps[i];
    double pct = total_ns == 0
                     ? 0.0
                     : 100.0 * static_cast<double>(s.wall_ns) /
                           static_cast<double>(total_ns);
    out += "step " + std::to_string(i + 1) + " [" + s.kind + "] " + s.label;
    snprintf(buf, sizeof(buf), "  [wall %s (%.1f%%), rows=%" PRIu64 "]\n",
             query::FormatNs(s.wall_ns).c_str(), pct, s.rows_out);
    out += buf;
    // Per-node percentages read against the whole workflow, so a hot
    // operator stands out across steps, not just within its own.
    if (s.plan != nullptr) {
      query::AppendProfileText(*s.plan, total_ns, 1, &out);
    }
  }
  return out;
}

std::string WorkflowProfile::RenderJson() const {
  char buf[48];
  std::string out = "{\"name\": " + obs::JsonEscaped(name);
  snprintf(buf, sizeof(buf), ", \"total_ns\": %" PRIu64, total_ns);
  out += buf;
  out += ", \"steps\": [";
  for (size_t i = 0; i < steps.size(); ++i) {
    const WorkflowStepProfile& s = steps[i];
    if (i > 0) out += ", ";
    out += "{\"label\": " + obs::JsonEscaped(s.label);
    out += ", \"kind\": " + obs::JsonEscaped(s.kind);
    snprintf(buf, sizeof(buf), ", \"wall_ns\": %" PRIu64 ", \"rows_out\": %" PRIu64,
             s.wall_ns, s.rows_out);
    out += buf;
    out += ", \"plan\": ";
    if (s.plan != nullptr) {
      query::AppendProfileJson(*s.plan, &out);
    } else {
      out += "null";
    }
    out += "}";
  }
  out += "]}";
  return out;
}

FlexRecsEngine::FlexRecsEngine(storage::Database* db) : db_(db), sql_(db) {
  // Compiled SQL steps go through the same pre-execution analysis as
  // workflow plans. The hook captures only the database pointer (not
  // `this`) so it stays valid however the engine object moves.
  sql_.set_validator([db](const query::Statement& stmt) {
    analysis::DiagnosticBag diags;
    analysis::Analyzer(db, nullptr).AnalyzeStatement(stmt, &diags);
    return diags.ToStatus();
  });
}

namespace {

/// Structural signature of a physical node's own operation — every field
/// that affects its result, rendered exactly. Children are not included;
/// CompileNode appends the (already deduplicated) input step indices, so
/// two nodes merge only when their subtrees merged first. Parameters
/// render as `$name`, which is correct: one run binds one ParamMap.
/// (WorkflowNode::ToString is not reusable here — it elides the Extend
/// collect expressions and renders Values as a row count.)
std::string NodeSignature(const WorkflowNode& node) {
  std::string s = std::to_string(static_cast<int>(node.kind));
  s += '|';
  s += node.table;
  if (node.predicate != nullptr) {
    s += '|';
    s += node.predicate->ToString();
  }
  for (const auto& item : node.items) {
    s += '|';
    s += item.expr->ToString();
    s += " AS ";
    s += item.name;
  }
  if (node.child_key != nullptr) s += '|' + node.child_key->ToString();
  if (node.source_key != nullptr) s += '|' + node.source_key->ToString();
  for (const auto& c : node.collect) s += '|' + c->ToString();
  s += '|' + node.column_name;
  s += '|' + node.recommend.similarity + '/' + node.recommend.input_attr +
       '/' + node.recommend.reference_attr + '/' +
       std::to_string(static_cast<int>(node.recommend.agg)) + '/' +
       node.recommend.weight_attr + '/' + node.recommend.score_column + '/' +
       std::to_string(node.recommend.top_k) + '/' +
       std::to_string(node.recommend.min_score);
  s += '|' + node.order_column + (node.descending ? "D" : "A") +
       std::to_string(node.k);
  return s;
}

}  // namespace

namespace {

/// Forms the maximal runs of adjacent physical σ/π/ε steps the executor
/// collapses into single FusedPipelineNodes. A step extends the run ending
/// at its spine input when the stage passes analysis::CheckFusedStage, the
/// intermediate is consumed by no other step (a shared CSE result must stay
/// materialized), and no σ follows a π in the run (projected column types
/// are data-dependent, so a fused filter cannot compile against them).
/// Eligible-but-isolated steps are normal and get no note; steps that fail
/// a check get one, so Explain() can say where and why a chain broke.
void FormFusionGroups(const std::vector<CompiledStep>& steps,
                      std::vector<FusionGroup>* groups,
                      std::vector<FusionNote>* notes) {
  std::vector<size_t> uses(steps.size(), 0);
  for (const CompiledStep& s : steps) {
    for (size_t idx : s.inputs) ++uses[idx];
  }
  struct OpenRun {
    std::vector<size_t> members;
    bool seen_project = false;
  };
  std::map<size_t, OpenRun> open;  // keyed by the run's tail step index
  for (size_t j = 0; j < steps.size(); ++j) {
    const CompiledStep& s = steps[j];
    if (s.kind != CompiledStep::Kind::kPhysical) continue;
    NodeKind k = s.node->kind;
    if (k != NodeKind::kSelect && k != NodeKind::kProject &&
        k != NodeKind::kExtend) {
      continue;
    }
    analysis::FusedStageCheck check = analysis::CheckFusedStage(*s.node);
    if (!check.eligible) {
      notes->push_back({j, std::move(check.reason)});
      continue;
    }
    bool extended = false;
    if (!s.inputs.empty()) {
      size_t in = s.inputs[0];
      if (auto it = open.find(in); it != open.end()) {
        if (uses[in] > 1) {
          notes->push_back({j, "shared intermediate (CSE)"});
        } else if (k == NodeKind::kSelect && it->second.seen_project) {
          notes->push_back({j, "filter over a computed projection schema"});
        } else {
          OpenRun run = std::move(it->second);
          open.erase(it);
          run.members.push_back(j);
          run.seen_project = run.seen_project || k == NodeKind::kProject;
          open.emplace(j, std::move(run));
          extended = true;
        }
      }
    }
    if (!extended) open.emplace(j, OpenRun{{j}, k == NodeKind::kProject});
  }
  for (auto& [tail, run] : open) {
    if (run.members.size() >= 2) groups->push_back({std::move(run.members)});
  }
}

}  // namespace

size_t FlexRecsEngine::CompileNode(const WorkflowNode* node,
                                   std::vector<CompiledStep>* steps,
                                   std::map<std::string, size_t>* memo) const {
  // Whole-subtree SQL compilation first.
  if (std::optional<std::string> sql = TryBuildSql(node); sql.has_value()) {
    if (auto it = memo->find("S|" + *sql); it != memo->end()) {
      return it->second;
    }
    CompiledStep step;
    step.kind = CompiledStep::Kind::kSql;
    step.sql = *sql;
    steps->push_back(std::move(step));
    return (*memo)["S|" + steps->back().sql] = steps->size() - 1;
  }
  if (node->kind == NodeKind::kSql) {
    if (auto it = memo->find("S|" + node->sql); it != memo->end()) {
      return it->second;
    }
    CompiledStep step;
    step.kind = CompiledStep::Kind::kSql;
    step.sql = node->sql;
    steps->push_back(std::move(step));
    return (*memo)["S|" + node->sql] = steps->size() - 1;
  }
  if (node->kind == NodeKind::kValues) {
    // Literal relations are not deduplicated: their contents don't render
    // into a signature cheaply, and the step is a plain copy anyway.
    CompiledStep step;
    step.kind = CompiledStep::Kind::kValues;
    step.values = node->values;
    steps->push_back(std::move(step));
    return steps->size() - 1;
  }
  // Physical operator over compiled children.
  CompiledStep step;
  step.kind = CompiledStep::Kind::kPhysical;
  step.node = node;
  {
    // First line of the node rendering as the label.
    std::string repr = node->ToString(0);
    size_t nl = repr.find('\n');
    step.label = nl == std::string::npos ? repr : repr.substr(0, nl);
  }
  for (const NodePtr& child : node->children) {
    step.inputs.push_back(CompileNode(child.get(), steps, memo));
  }
  std::string key = "P|" + NodeSignature(*node);
  for (size_t idx : step.inputs) key += ',' + std::to_string(idx);
  if (auto it = memo->find(key); it != memo->end()) return it->second;
  steps->push_back(std::move(step));
  return (*memo)[key] = steps->size() - 1;
}

void FlexRecsEngine::Analyze(const WorkflowNode& root,
                             analysis::DiagnosticBag* diags) const {
  analysis::Analyzer(db_, &library_, analyzer_).AnalyzeWorkflow(root, diags);
}

Result<CompiledWorkflow> FlexRecsEngine::Compile(
    const WorkflowNode& root) const {
  // Static analysis up front so admins get errors at definition time, not
  // when a student asks for recommendations. Warnings don't block.
  analysis::DiagnosticBag diags;
  analysis::Analyzer analyzer(db_, &library_, analyzer_);
  analyzer.AnalyzeWorkflow(root, &diags);
  CR_RETURN_IF_ERROR(diags.ToStatus());
  if (analyzer_.verify_rewrites) {
    // CR5xx rewrite soundness: run the workflow optimizer over a throwaway
    // clone and re-analyze — a shipped rewrite that changes the inferred
    // schema or weakens a cardinality/sort/key/non-NULL guarantee fails
    // compilation here instead of corrupting results downstream.
    NodePtr optimized = OptimizeWorkflow(root.Clone());
    analyzer.VerifyWorkflowRewrite(root, *optimized, &diags);
    CR_RETURN_IF_ERROR(diags.ToStatus());
  }

  CompiledWorkflow compiled;
  compiled.root_ = root.Clone();
  std::map<std::string, size_t> memo;
  CompileNode(compiled.root_.get(), &compiled.steps_, &memo);
  FormFusionGroups(compiled.steps_, &compiled.groups_, &compiled.notes_);
  return compiled;
}

namespace {

/// Workflow-engine metrics, resolved once per process. Steps run at ms
/// scale, so each operator kind is timed unconditionally (kAlways spans):
/// the per-operator histograms are what shows whether a slow strategy
/// spends its time in compiled SQL or in the recommend/extend operators.
struct FlexMetrics {
  obs::Histogram* run_ns;
  obs::Histogram* sql_step_ns;
  obs::Histogram* values_step_ns;
  obs::Histogram* physical_step_ns;
  obs::Histogram* recommend_ns;
  obs::Counter* runs;
  obs::Counter* steps;
  // Shared with the plan executor's morsel accounting (same registry
  // entries) so recommend fan-out shows up alongside operator fan-out —
  // including the fan-out decision counters.
  obs::Counter* exec_morsels;
  obs::Counter* exec_parallel_ops;
  obs::Counter* fanout_parallel;
  obs::Counter* fanout_small;
  obs::Counter* fanout_pool;
  obs::Counter* fanout_off;
};

const FlexMetrics& Metrics() {
  static const FlexMetrics m = [] {
    obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
    return FlexMetrics{reg.GetHistogram("cr_flexrecs_run_ns"),
                       reg.GetHistogram("cr_flexrecs_sql_step_ns"),
                       reg.GetHistogram("cr_flexrecs_values_step_ns"),
                       reg.GetHistogram("cr_flexrecs_physical_step_ns"),
                       reg.GetHistogram("cr_exec_recommend_ns"),
                       reg.GetCounter("cr_flexrecs_runs_total"),
                       reg.GetCounter("cr_flexrecs_steps_total"),
                       reg.GetCounter("cr_exec_morsels_total"),
                       reg.GetCounter("cr_exec_parallel_ops_total"),
                       reg.GetCounter("cr_exec_fanout_parallel_total"),
                       reg.GetCounter("cr_exec_fanout_skipped_small_total"),
                       reg.GetCounter("cr_exec_fanout_skipped_pool_total"),
                       reg.GetCounter("cr_exec_fanout_serial_config_total")};
  }();
  return m;
}

}  // namespace

Result<Relation> FlexRecsEngine::ExecuteImpl(const CompiledWorkflow& compiled,
                                             const ParamMap& params,
                                             WorkflowProfile* profile) {
  const FlexMetrics& m = Metrics();
  obs::ScopedSpan run_span(obs::stage::kFlexRun, m.run_ns,
                           &obs::TraceSink::Default(),
                           obs::ScopedSpan::Mode::kAlways);
  m.runs->Add();
  std::vector<Relation> results;
  results.reserve(compiled.steps().size());
  // How many later steps read each step's result; lets the physical
  // executor move an intermediate into its last consumer instead of
  // copying it (move vs copy is unobservable in the output).
  std::vector<size_t> remaining_uses(compiled.steps().size(), 0);
  for (const CompiledStep& step : compiled.steps()) {
    for (size_t idx : step.inputs) ++remaining_uses[idx];
  }
  // Fusion groups (DESIGN.md §16): non-last members are skipped and the
  // whole run executes as one FusedPipelineNode at the last member's
  // position. Each member's inputs are consumed at the member's own step —
  // the same decrement order the unfused execution uses — and parked here
  // until the fused plan is built.
  constexpr size_t kNoGroup = static_cast<size_t>(-1);
  std::vector<size_t> group_of(compiled.steps().size(), kNoGroup);
  for (size_t g = 0; g < compiled.fusion_groups().size(); ++g) {
    for (size_t idx : compiled.fusion_groups()[g].members) group_of[idx] = g;
  }
  struct PendingGroup {
    Relation chain_input;
    std::vector<Relation> sources;  // one per ε member, in member order
  };
  std::vector<PendingGroup> pending(compiled.fusion_groups().size());
  // Consumes one step result: the last consumer moves it out, earlier
  // consumers copy (same contract as ExecutePhysical's take_input).
  auto consume = [&](size_t idx) -> Relation {
    if (--remaining_uses[idx] == 0) return std::move(results[idx]);
    return results[idx];
  };
  for (size_t si = 0; si < compiled.steps().size(); ++si) {
    const CompiledStep& step = compiled.steps()[si];
    m.steps->Add();
    WorkflowStepProfile sp;
    uint64_t step_t0 = profile != nullptr ? obs::NowNs() : 0;
    switch (step.kind) {
      case CompiledStep::Kind::kSql: {
        obs::ScopedSpan step_span(obs::stage::kFlexSqlStep, m.sql_step_ns,
                                  &obs::TraceSink::Default(),
                                  obs::ScopedSpan::Mode::kAlways);
        if (profile == nullptr) {
          CR_ASSIGN_OR_RETURN(Relation rel, sql_.Execute(step.sql, params));
          results.push_back(std::move(rel));
        } else {
          query::QueryProfile qp;
          CR_ASSIGN_OR_RETURN(Relation rel,
                              sql_.Execute(step.sql, params, &qp));
          sp.label = step.sql;
          sp.plan = std::move(qp.root);
          results.push_back(std::move(rel));
        }
        break;
      }
      case CompiledStep::Kind::kValues: {
        obs::ScopedSpan step_span(obs::stage::kFlexValuesStep,
                                  m.values_step_ns,
                                  &obs::TraceSink::Default(),
                                  obs::ScopedSpan::Mode::kAlways);
        if (profile != nullptr) {
          sp.label = std::to_string(step.values.rows.size()) + " rows";
        }
        results.push_back(step.values);
        break;
      }
      case CompiledStep::Kind::kPhysical: {
        obs::ScopedSpan step_span(obs::stage::kFlexPhysicalStep,
                                  m.physical_step_ns,
                                  &obs::TraceSink::Default(),
                                  obs::ScopedSpan::Mode::kAlways);
        if (size_t g = group_of[si]; g != kNoGroup) {
          const FusionGroup& grp = compiled.fusion_groups()[g];
          PendingGroup& pg = pending[g];
          if (grp.members.front() == si) {
            pg.chain_input = consume(step.inputs[0]);
          }
          if (step.node->kind == NodeKind::kExtend) {
            pg.sources.push_back(consume(step.inputs[1]));
          }
          if (grp.members.back() != si) {
            // Skipped member: its work happens inside the fused node at the
            // last member's position. The placeholder keeps step indices
            // aligned; nothing reads it (the intermediate had exactly one
            // consumer — the next member — or the run would not have formed).
            if (profile != nullptr) {
              sp.label = step.label + "  [fused -> step " +
                         std::to_string(grp.members.back() + 1) + "]";
            }
            results.push_back(Relation{});
            break;
          }
          std::vector<query::FusedStage> stages;
          std::string label = "Fused[";
          size_t src = 0;
          for (size_t i = 0; i < grp.members.size(); ++i) {
            const WorkflowNode* n = compiled.steps()[grp.members[i]].node;
            if (i > 0) label += " -> ";
            label += analysis::FusionStageLabel(*n);
            query::FusedStage stage;
            switch (n->kind) {
              case NodeKind::kSelect:
                stage.kind = query::FusedStage::Kind::kFilter;
                stage.predicate = n->predicate->Clone();
                break;
              case NodeKind::kProject:
                stage.kind = query::FusedStage::Kind::kProject;
                for (const auto& item : n->items) {
                  stage.items.push_back({item.expr->Clone(), item.name});
                }
                break;
              case NodeKind::kExtend:
                stage.kind = query::FusedStage::Kind::kExtend;
                stage.source =
                    query::MakeValuesOnce(std::move(pg.sources[src++]));
                stage.child_key = n->child_key->Clone();
                stage.source_key = n->source_key->Clone();
                for (const auto& c : n->collect) {
                  stage.collect.push_back(c->Clone());
                }
                stage.column_name = n->column_name;
                break;
              default:
                return Status::Internal("non-pipeline node in fusion group");
            }
            stages.push_back(std::move(stage));
          }
          label += "]";
          query::ExecContext ctx;
          ctx.db = db_;
          ctx.params = params;
          ctx.exec = exec_;
          query::ProfileCollector collector;
          ctx.profile = profile != nullptr ? &collector : nullptr;
          PlanPtr plan = query::MakeFusedPipeline(
              query::MakeValuesOnce(std::move(pg.chain_input)),
              std::move(stages));
          CR_ASSIGN_OR_RETURN(Relation rel, plan->Execute(ctx));
          if (profile != nullptr) {
            sp.label = std::move(label);
            sp.plan = collector.TakeRoot();
          }
          results.push_back(std::move(rel));
          break;
        }
        query::ProfileCollector collector;
        CR_ASSIGN_OR_RETURN(
            Relation rel,
            ExecutePhysical(*step.node, results, step.inputs, remaining_uses,
                            params, profile != nullptr ? &collector : nullptr));
        if (profile != nullptr) {
          sp.label = step.label;
          sp.plan = collector.TakeRoot();
        }
        results.push_back(std::move(rel));
        break;
      }
    }
    if (profile != nullptr) {
      sp.kind = StepKindName(step.kind);
      sp.wall_ns = obs::NowNs() - step_t0;
      sp.rows_out = results.back().rows.size();
      profile->steps.push_back(std::move(sp));
    }
  }
  if (results.empty()) return Status::Internal("empty workflow");
  if (exec_.check_static_claims) {
    // Runtime invariant check: re-infer the root's static properties and
    // assert the actual result against them (CR510 on violation). Analysis
    // happens here — not at compile time — so cardinality bounds read the
    // tables as they are now.
    analysis::DiagnosticBag diags;
    analysis::Analyzer analyzer(db_, &library_, analyzer_);
    analysis::Analyzer::WorkflowAnalysis wa =
        analyzer.AnalyzeWorkflowProperties(*compiled.root_, &diags);
    if (wa.schema.has_value()) {
      CR_RETURN_IF_ERROR(
          query::CheckStaticClaims(results.back(), wa.props.ToStaticClaims()));
    }
  }
  return std::move(results.back());
}

namespace {

/// Renders a finished WorkflowProfile into the flight recorder's entry form.
obs::RecordedProfile ToRecorded(const WorkflowProfile& wp) {
  obs::RecordedProfile rec;
  rec.kind = "flexrecs";
  rec.query = wp.name.empty() ? "<workflow>" : wp.name;
  rec.total_ns = wp.total_ns;
  rec.text = wp.Render();
  rec.json = wp.RenderJson();
  return rec;
}

}  // namespace

Result<Relation> FlexRecsEngine::Execute(const CompiledWorkflow& compiled,
                                         const ParamMap& params) {
  if (!profiling_) return ExecuteImpl(compiled, params, nullptr);
  WorkflowProfile wp;
  wp.name = "<workflow>";
  uint64_t t0 = obs::NowNs();
  Result<Relation> result = ExecuteImpl(compiled, params, &wp);
  wp.total_ns = obs::NowNs() - t0;
  obs::ProfileRecorder::Default().Submit(ToRecorded(wp));
  return result;
}

Result<Relation> FlexRecsEngine::Execute(const CompiledWorkflow& compiled,
                                         const ParamMap& params,
                                         WorkflowProfile* profile) {
  uint64_t t0 = obs::NowNs();
  Result<Relation> result = ExecuteImpl(compiled, params, profile);
  profile->total_ns = obs::NowNs() - t0;
  return result;
}

Result<Relation> FlexRecsEngine::Run(const WorkflowNode& root,
                                     const ParamMap& params) {
  if (profiling_) return RunProfiled(root, params);
  CR_ASSIGN_OR_RETURN(CompiledWorkflow compiled, Compile(root));
  return ExecuteImpl(compiled, params, nullptr);
}

Result<Relation> FlexRecsEngine::RunProfiled(const WorkflowNode& root,
                                             const ParamMap& params,
                                             WorkflowProfile* out) {
  WorkflowProfile local;
  WorkflowProfile* wp = out != nullptr ? out : &local;
  if (wp->name.empty()) wp->name = "<workflow>";
  // Compile time counts toward the total: a strategy that is slow to
  // compile is slow, and the step percentages should say so.
  uint64_t t0 = obs::NowNs();
  CR_ASSIGN_OR_RETURN(CompiledWorkflow compiled, Compile(root));
  Result<Relation> result = ExecuteImpl(compiled, params, wp);
  wp->total_ns = obs::NowNs() - t0;
  obs::ProfileRecorder::Default().Submit(ToRecorded(*wp));
  return result;
}

Result<Relation> FlexRecsEngine::ExecutePhysical(
    const WorkflowNode& node, std::vector<Relation>& results,
    const std::vector<size_t>& inputs, std::vector<size_t>& remaining_uses,
    const ParamMap& params, query::ProfileCollector* collector) {
  query::ExecContext ctx;
  ctx.db = db_;
  ctx.params = params;
  ctx.exec = exec_;
  ctx.profile = collector;

  // Consumes one declared input: the last consumer of a step's result moves
  // it out, earlier consumers copy. Decrement-before-read makes the lambda
  // safe under unspecified argument evaluation order, including a step
  // listing the same input twice (one copy, one move, either order).
  auto take_input = [&](size_t i) -> Relation {
    size_t idx = inputs[i];
    if (--remaining_uses[idx] == 0) return std::move(results[idx]);
    return results[idx];
  };

  switch (node.kind) {
    case NodeKind::kTable: {
      PlanPtr plan = query::MakeTableScan(node.table);
      return plan->Execute(ctx);
    }
    case NodeKind::kSelect: {
      PlanPtr plan = query::MakeFilter(query::MakeValuesOnce(take_input(0)),
                                       node.predicate->Clone());
      return plan->Execute(ctx);
    }
    case NodeKind::kProject: {
      std::vector<query::ProjectItem> items;
      for (const auto& item : node.items) {
        items.push_back({item.expr->Clone(), item.name});
      }
      PlanPtr plan = query::MakeProject(query::MakeValuesOnce(take_input(0)),
                                        std::move(items));
      return plan->Execute(ctx);
    }
    case NodeKind::kJoin: {
      PlanPtr plan = query::MakeJoin(
          query::MakeValuesOnce(take_input(0)),
          query::MakeValuesOnce(take_input(1)),
          node.predicate ? node.predicate->Clone() : nullptr);
      return plan->Execute(ctx);
    }
    case NodeKind::kExtend: {
      std::vector<query::ExprPtr> collect;
      for (const auto& c : node.collect) collect.push_back(c->Clone());
      PlanPtr plan = query::MakeExtend(
          query::MakeValuesOnce(take_input(0)),
          query::MakeValuesOnce(take_input(1)), node.child_key->Clone(),
          node.source_key->Clone(), std::move(collect), node.column_name);
      return plan->Execute(ctx);
    }
    case NodeKind::kTopK: {
      std::vector<query::SortKey> keys;
      keys.push_back({query::MakeColumn(node.order_column), !node.descending});
      // Bounded top-k heap; byte-identical to Sort + Limit (plan.h).
      PlanPtr plan = query::MakeTopN(query::MakeValuesOnce(take_input(0)),
                                     std::move(keys), node.k);
      return plan->Execute(ctx);
    }
    case NodeKind::kAntiJoin: {
      Relation child = take_input(0);
      Relation source = take_input(1);
      // AntiJoin has no PlanNode, so it books its profile node by hand —
      // same push/time/pop PlanNode::Execute does.
      query::PlanProfileNode* pn = nullptr;
      if (collector != nullptr) {
        pn = collector->Push(NodeLabel(node));
        pn->rows_in = child.rows.size() + source.rows.size();
      }
      uint64_t t0 = pn != nullptr ? obs::NowNs() : 0;
      Result<Relation> res = [&]() -> Result<Relation> {
        query::ExprPtr ck = node.child_key->Clone();
        CR_RETURN_IF_ERROR(ck->Bind(child.schema, &ctx.params));
        query::ExprPtr sk = node.source_key->Clone();
        CR_RETURN_IF_ERROR(sk->Bind(source.schema, &ctx.params));
        Relation out;
        out.schema = child.schema;
        if (ctx.exec.flat_hash) {
          // Width-1 RowKeyTable; join-style NULL semantics on both sides
          // (NULL source keys get no entry, NULL child keys never match).
          // Both loops stay serial-ascending, so error selection is
          // identical to the map oracle with no replay needed.
          query::RowKeyTable keys(1, /*build_chains=*/false);
          keys.Reserve(source.rows.size());
          for (size_t i = 0; i < source.rows.size(); ++i) {
            CR_ASSIGN_OR_RETURN(Value v, sk->Eval(source.rows[i]));
            keys.StageMove1(i, std::move(v));
          }
          keys.Build(source.rows.size(), /*skip_null_keys=*/true, nullptr);
          uint64_t probes = 0;
          uint64_t steps = 0;
          for (Row& row : child.rows) {
            CR_ASSIGN_OR_RETURN(Value v, ck->Eval(row));
            if (!v.is_null()) {
              ++probes;
              if (keys.Find1(v, &steps) != query::RowKeyTable::kNoEntry) {
                continue;
              }
            }
            out.rows.push_back(std::move(row));
          }
          keys.AddProbeStats(probes, steps);
          if (pn != nullptr) {
            query::HashTableStats s = keys.stats();
            pn->hash_entries += s.entries;
            pn->hash_probes += s.probes;
            pn->hash_steps += s.build_steps + s.probe_steps;
            pn->hash_max_chain = std::max(pn->hash_max_chain, s.max_chain);
          }
          return out;
        }
        std::unordered_map<Row, bool, RowHash> keys;
        for (const Row& row : source.rows) {
          CR_ASSIGN_OR_RETURN(Value v, sk->Eval(row));
          if (!v.is_null()) keys[{v}] = true;
        }
        for (Row& row : child.rows) {
          CR_ASSIGN_OR_RETURN(Value v, ck->Eval(row));
          if (!v.is_null() && keys.count({v}) > 0) continue;
          out.rows.push_back(std::move(row));
        }
        return out;
      }();
      if (pn != nullptr) {
        collector->Pop(pn, obs::NowNs() - t0,
                       res.ok() ? res->rows.size() : 0, !res.ok());
      }
      return res;
    }
    case NodeKind::kRecommend: {
      Relation input = take_input(0);
      Relation reference = take_input(1);
      query::PlanProfileNode* pn =
          collector != nullptr ? collector->Push(NodeLabel(node)) : nullptr;
      uint64_t t0 = pn != nullptr ? obs::NowNs() : 0;
      Result<Relation> res = ExecuteRecommend(node, std::move(input),
                                              std::move(reference), params, pn);
      if (pn != nullptr) {
        collector->Pop(pn, obs::NowNs() - t0,
                       res.ok() ? res->rows.size() : 0, !res.ok());
      }
      return res;
    }
    case NodeKind::kSql:
    case NodeKind::kValues:
      return Status::Internal("SQL/Values node reached physical executor");
  }
  return Status::Internal("unhandled node kind");
}

Result<Relation> FlexRecsEngine::ExecuteRecommend(
    const WorkflowNode& node, Relation input, Relation reference,
    const ParamMap& params, query::PlanProfileNode* prof) {
  (void)params;
  const RecommendSpec& spec = node.recommend;
  CR_ASSIGN_OR_RETURN(SimilarityFn fn, library_.Get(spec.similarity));
  const SimKernel kernel = library_.GetKernel(spec.similarity);
  CR_ASSIGN_OR_RETURN(size_t in_attr,
                      FindColumn(input.schema, spec.input_attr, "input"));
  CR_ASSIGN_OR_RETURN(
      size_t ref_attr,
      FindColumn(reference.schema, spec.reference_attr, "reference"));
  size_t weight_attr = 0;
  if (spec.agg == RecommendAgg::kWeightedAvg) {
    CR_ASSIGN_OR_RETURN(weight_attr, FindColumn(reference.schema,
                                                spec.weight_attr, "weight"));
  }

  Relation out;
  std::vector<Column> cols = input.schema.columns();
  cols.emplace_back(spec.score_column, ValueType::kDouble);
  out.schema = query::Schema(std::move(cols));

  obs::ScopedSpan score_span(obs::stage::kExecMorsel,
                             Metrics().recommend_ns,
                             &obs::TraceSink::Default(),
                             obs::ScopedSpan::Mode::kAlways);

  // Two-phase scoring: phase one records (score, input-row index) pairs and
  // never touches the rows; phase two materializes only the rows that
  // survive min_score + top_k, each with one exact-capacity allocation.
  // The old single-phase loop appended the score to every scored row — a
  // reallocation (plus a full row of Value moves) per candidate, paid even
  // for rows the top-k cut immediately threw away (EXPERIMENTS.md E16/E18).
  struct Scored {
    double score;
    size_t idx;  // index into input.rows
  };

  // Per-candidate scoring fans out over morsels of input rows. Every
  // similarity function is reentrant (similarity.h contract) and the
  // reference relation is shared read-only; each morsel accumulates into
  // its own chunk — the per-thread scratch — and chunks concatenate in
  // morsel order, so the scored sequence is byte-identical to the serial
  // loop's (ExecOptions determinism contract).
  size_t n_rows = input.rows.size();
  const query::ExecOptions& eo = exec_;
  ThreadPool& pool = eo.pool != nullptr ? *eo.pool : SharedThreadPool();
  // Same fan-out decision ladder (and decision counters) as the plan
  // executor's PlanMorsels, so recommend scoring shows up in the
  // ran-parallel vs skipped-why breakdown alongside the plan operators.
  // A pool with zero or one workers runs morsels inline anyway, so fan-out
  // would only pay partitioning overhead — take the serial path outright.
  size_t morsels = 1;
  if (!eo.parallel) {
    Metrics().fanout_off->Add();
  } else if (n_rows < eo.min_parallel_rows || n_rows == 0) {
    Metrics().fanout_small->Add();
  } else if (pool.num_threads() <= 1) {
    Metrics().fanout_pool->Add();
  } else {
    morsels = ThreadPool::NumMorsels(n_rows, eo.morsel_rows);
    if (morsels <= 1) {
      morsels = 1;
      Metrics().fanout_small->Add();
    } else {
      Metrics().fanout_parallel->Add();
    }
  }
  std::vector<std::vector<Scored>> chunks(morsels);

  // Built-in similarity kernels score through a decode-memoizing
  // PairwiseScorer (similarity.h): each reference operand is decoded once
  // per morsel and each input operand once per row, instead of per pair.
  // Byte-identical to the per-pair calls by the scorer's contract. Custom
  // functions (and built-in names the application overrode) keep the
  // opaque per-pair path, as does the row-oracle mode used by the
  // differential tests.
  const bool use_scorer = eo.columnar && kernel != SimKernel::kCustom;
  if (prof != nullptr) {
    prof->rows_in = n_rows + reference.rows.size();
    prof->morsels = morsels;
    prof->parallel = morsels > 1;
    prof->columnar = use_scorer;
  }
  std::vector<const Value*> ref_vals;
  if (use_scorer) {
    ref_vals.reserve(reference.rows.size());
    for (const Row& ref : reference.rows) ref_vals.push_back(&ref[ref_attr]);
  }

  auto score_range = [&](size_t m, size_t begin, size_t end) -> Status {
    std::vector<Scored>& chunk = chunks[m];
    chunk.reserve(end - begin);
    std::optional<PairwiseScorer> scorer;
    if (use_scorer) scorer.emplace(kernel, fn, ref_vals);
    const size_t n_refs = reference.rows.size();
    for (size_t i = begin; i < end; ++i) {
      const Row& row = input.rows[i];
      double acc = 0.0;
      double weight_sum = 0.0;
      double best = 0.0;
      size_t n = 0;
      if (scorer.has_value()) scorer->BeginRow(row[in_attr]);
      for (size_t j = 0; j < n_refs; ++j) {
        std::optional<double> sim;
        if (scorer.has_value()) {
          CR_ASSIGN_OR_RETURN(sim, scorer->ScorePair(j));
        } else {
          CR_ASSIGN_OR_RETURN(
              sim, fn(row[in_attr], reference.rows[j][ref_attr]));
        }
        if (!sim.has_value()) continue;
        ++n;
        switch (spec.agg) {
          case RecommendAgg::kMax:
            best = n == 1 ? *sim : std::max(best, *sim);
            break;
          case RecommendAgg::kAvg:
          case RecommendAgg::kSum:
            acc += *sim;
            break;
          case RecommendAgg::kWeightedAvg: {
            CR_ASSIGN_OR_RETURN(
                double w, reference.rows[j][weight_attr].ToDouble());
            acc += w * *sim;
            weight_sum += w;
            break;
          }
        }
      }
      if (n == 0) continue;  // not comparable to any reference tuple
      double score = 0.0;
      switch (spec.agg) {
        case RecommendAgg::kMax:
          score = best;
          break;
        case RecommendAgg::kAvg:
          score = acc / static_cast<double>(n);
          break;
        case RecommendAgg::kSum:
          score = acc;
          break;
        case RecommendAgg::kWeightedAvg:
          if (weight_sum <= 0.0) continue;
          score = acc / weight_sum;
          break;
      }
      if (score < spec.min_score) continue;
      chunk.push_back({score, i});
    }
    return Status::OK();
  };

  Metrics().exec_morsels->Add(static_cast<int64_t>(morsels));
  if (morsels == 1) {
    if (n_rows > 0) CR_RETURN_IF_ERROR(score_range(0, 0, n_rows));
  } else {
    Metrics().exec_parallel_ops->Add();
    std::vector<Status> status(morsels);
    pool.ParallelForMorsels(n_rows, eo.morsel_rows,
                            [&](size_t m, size_t begin, size_t end) {
                              status[m] = score_range(m, begin, end);
                            });
    // Deterministic error merge: the lowest-indexed failing morsel wins —
    // the same error the serial loop would have hit first.
    for (Status& st : status) CR_RETURN_IF_ERROR(std::move(st));
  }

  std::vector<Scored> scored;
  if (chunks.size() == 1) {
    scored = std::move(chunks[0]);
  } else {
    size_t total = 0;
    for (const auto& c : chunks) total += c.size();
    scored.reserve(total);
    for (auto& c : chunks) {
      for (Scored& s : c) scored.push_back(std::move(s));
    }
  }

  // Phase two: materialize a winner as its input row plus the score column,
  // reserved to exact width so the append never reallocates.
  auto materialize = [&](const Scored& s) {
    Row& src = input.rows[s.idx];
    Row out_row;
    out_row.reserve(src.size() + 1);
    for (Value& v : src) out_row.push_back(std::move(v));
    out_row.push_back(Value(s.score));
    out.rows.push_back(std::move(out_row));
  };

  size_t keep = spec.top_k > 0 ? std::min(spec.top_k, scored.size())
                               : scored.size();
  if (keep < scored.size()) {
    // Bounded top-k: keep the `keep` best under (score desc, index asc) in
    // a heap instead of sorting everything. The index tiebreak makes this
    // byte-identical to the stable sort below.
    struct Ranked {
      double score;
      size_t idx;
    };
    auto comes_first = [](const Ranked& a, const Ranked& b) {
      if (a.score != b.score) return a.score > b.score;
      return a.idx < b.idx;
    };
    std::vector<Ranked> heap;
    heap.reserve(keep + 1);
    for (size_t i = 0; i < scored.size(); ++i) {
      Ranked cand{scored[i].score, i};
      if (heap.size() < keep) {
        heap.push_back(cand);
        std::push_heap(heap.begin(), heap.end(), comes_first);
      } else if (comes_first(cand, heap.front())) {
        std::pop_heap(heap.begin(), heap.end(), comes_first);
        heap.back() = cand;
        std::push_heap(heap.begin(), heap.end(), comes_first);
      }
    }
    std::sort_heap(heap.begin(), heap.end(), comes_first);
    out.rows.reserve(keep);
    for (const Ranked& r : heap) materialize(scored[r.idx]);
    return out;
  }

  std::stable_sort(scored.begin(), scored.end(),
                   [](const Scored& a, const Scored& b) {
                     return a.score > b.score;
                   });
  out.rows.reserve(keep);
  for (size_t i = 0; i < keep; ++i) materialize(scored[i]);
  return out;
}

Status FlexRecsEngine::RegisterStrategy(const std::string& name,
                                        NodePtr workflow) {
  if (workflow == nullptr) {
    return Status::InvalidArgument("null workflow for strategy '" + name +
                                   "'");
  }
  // Validate at registration time.
  CR_RETURN_IF_ERROR(Compile(*workflow).status());
  strategies_[ToLower(name)] = std::move(workflow);
  return Status::OK();
}

Result<Relation> FlexRecsEngine::RunStrategy(const std::string& name,
                                             const ParamMap& params) {
  if (profiling_) return RunStrategyProfiled(name, params);
  auto it = strategies_.find(ToLower(name));
  if (it == strategies_.end()) {
    return Status::NotFound("no strategy '" + name + "'");
  }
  return Run(*it->second, params);
}

Result<Relation> FlexRecsEngine::RunStrategyProfiled(const std::string& name,
                                                     const ParamMap& params,
                                                     WorkflowProfile* out) {
  auto it = strategies_.find(ToLower(name));
  if (it == strategies_.end()) {
    return Status::NotFound("no strategy '" + name + "'");
  }
  WorkflowProfile local;
  WorkflowProfile* wp = out != nullptr ? out : &local;
  wp->name = it->first;
  return RunProfiled(*it->second, params, wp);
}

Result<std::string> FlexRecsEngine::ExplainStrategy(
    const std::string& name) const {
  auto it = strategies_.find(ToLower(name));
  if (it == strategies_.end()) {
    return Status::NotFound("no strategy '" + name + "'");
  }
  CR_ASSIGN_OR_RETURN(CompiledWorkflow compiled, Compile(*it->second));
  return it->second->ToString(0) + "\n" + compiled.Explain();
}

std::vector<std::string> FlexRecsEngine::StrategyNames() const {
  std::vector<std::string> out;
  out.reserve(strategies_.size());
  for (const auto& [name, wf] : strategies_) out.push_back(name);
  return out;
}

}  // namespace courserank::flexrecs
